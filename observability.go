package aequitas

import (
	"io"
	"sync"
	"time"

	"aequitas/internal/obs"
	"aequitas/internal/obs/flight"
)

// ObsConfig configures the per-run observability layer: the structured
// RPC-lifecycle tracer (NDJSON and Chrome trace-event output), and the
// metrics registry sampling per-port queue occupancy, per-(dst, class)
// admission state, and per-connection transport state on a simulated-time
// ticker. The zero value disables everything at zero hot-path cost.
//
// Each run owns its tracer and registry and writes output at the end of
// Run, so the streams are deterministic for a fixed SimConfig regardless
// of sweep parallelism; configurations run concurrently must not share
// writers.
type ObsConfig struct {
	// TraceNDJSON receives the lifecycle event stream as NDJSON (see
	// internal/obs for the schema). Setting it enables the tracer.
	TraceNDJSON io.Writer
	// TraceChrome receives the same events as Chrome trace-event JSON,
	// loadable in Perfetto (ui.perfetto.dev).
	TraceChrome io.Writer
	// MetricsCSV receives the wide-format metrics time series (column
	// t_s plus one column per metric). Setting it enables the registry.
	MetricsCSV io.Writer
	// MetricsEvery is the sampling interval (default 100 µs).
	MetricsEvery time.Duration
	// MetricsHosts restricts per-host samplers (admission state,
	// transport connections) to these host ids; nil samples every host.
	// Per-port queue metrics are always network-wide.
	MetricsHosts []int
	// Export, when set, streams live snapshots of the run into the given
	// exporter on every metrics tick: lifecycle counters, registry
	// gauges, per-probe admit probability, and per-class RNL histograms.
	// Serve them with Export.Handler() (/metrics Prometheus text,
	// /snapshot JSON, /debug/pprof). The snapshot pump is an ordinary
	// simulator event, so enabling export changes event interleaving like
	// any other sampler would, but publishes never block on HTTP readers
	// and the per-completion hot path stays allocation-free. Disabled
	// (nil), the run's event stream is untouched. One exporter may be
	// shared across sequential runs (cmd/figures does); runs executing
	// concurrently should use separate exporters.
	Export *obs.Exporter
	// ExportLabel names the run in exported snapshots (e.g. the figure
	// or sweep-point name). Defaults to the system name.
	ExportLabel string
	// TailSeries adds a windowed tail time-series to the metrics CSV:
	// per (destination, run-class) channel, each registry tick emits the
	// window's completed-RPC count and RNL p50/p90/p99/p99.9
	// ("tail.d<dst>.q<class>.{n,p50_us,p90_us,p99_us,p999_us}" columns)
	// from a log-linear histogram that resets every window. Requires
	// MetricsCSV; the window length is MetricsEvery.
	TailSeries bool

	// FlightNDJSON receives flight-recorder dumps as schema-tagged NDJSON
	// ("aequitas.flight/v1"). Setting it attaches one shared flight ring
	// to every host's admission controller: each decision and SLO
	// observation becomes a fixed-size record, and the ring is dumped on
	// every fault onset in the run's fault plan (resetting afterwards, so
	// consecutive dumps partition the timeline), on every anomaly-engine
	// trigger when FlightEngine is set, and once more when the run ends.
	// Recording draws no randomness and reads only simulated time, so for
	// a fixed SimConfig the dump bytes are identical regardless of sweep
	// parallelism.
	FlightNDJSON io.Writer
	// FlightRecords is the flight ring's capacity in records (default
	// 16384).
	FlightRecords int
	// FlightSampleAdmits keeps 1 in N admit and SLO-met records (rounded
	// up to a power of two; default 8; values <= 1 keep everything).
	// Downgrades, drops and SLO misses are always kept.
	FlightSampleAdmits int
	// FlightEngine, when set alongside FlightNDJSON, runs the SLO
	// burn-rate anomaly engine on the metrics cadence (MetricsEvery):
	// cumulative SLO counters and the minimum live admit probability are
	// fed to the engine each tick, and a trigger dumps and resets the
	// ring.
	FlightEngine *flight.EngineConfig

	// Attribution enables per-RPC latency decomposition: every completed
	// RPC's RNL is split into admission, sender-host queueing, transport
	// (window/CC), pacing stalls, NIC and switch queue residency, and a
	// wire residual. Per-class mean breakdowns land in
	// Results.Attribution.
	Attribution bool
	// AttributionCSV, when set, additionally receives one wide CSV row
	// per completed RPC's decomposition (implies Attribution). The stream
	// is deterministic for a fixed SimConfig regardless of sweep
	// parallelism.
	AttributionCSV io.Writer
	// Audit enables the online QoS-bound auditor (implies Attribution):
	// observed per-hop queue residencies and per-RPC fabric queueing are
	// checked against the per-class worst-case bounds of the
	// network-calculus model, and violations are recorded with the
	// offending RPC ids in Results.Audit.
	Audit bool
	// AuditBoundsUS overrides the per-class queueing bounds in
	// microseconds (highest class first). nil derives them from the first
	// Traffic entry's mix and load via QueueingBoundsUS, which assumes
	// the per-port load matches that entry's AvgLoad/BurstLoad (true for
	// the uniform all-to-all pattern); set explicit bounds for other
	// patterns.
	AuditBoundsUS []float64
	// AuditSlackUS is headroom added to every bound before flagging,
	// absorbing the packet-vs-fluid gap between the discrete simulator
	// and the fluid model (EXPERIMENTS.md's Fig-10 table puts it at
	// 0.03-0.04 of a burst period). Default: 10% of BurstPeriod.
	AuditSlackUS float64
	// AuditMaxViolations caps the retained violation list (default 64).
	AuditMaxViolations int
}

// attributionOn reports whether the run needs an attributor.
func (o *ObsConfig) attributionOn() bool {
	return o.Attribution || o.AttributionCSV != nil || o.Audit
}

// enabled reports whether any observability output is requested.
func (o *ObsConfig) enabled() bool {
	return o.TraceNDJSON != nil || o.TraceChrome != nil || o.MetricsCSV != nil ||
		o.Export != nil || o.FlightNDJSON != nil || o.attributionOn()
}

// tracer returns the run's tracer, or nil when tracing is off.
func (o *ObsConfig) tracer() *obs.Tracer {
	if o.TraceNDJSON == nil && o.TraceChrome == nil {
		return nil
	}
	return obs.NewTracer()
}

// registry returns the run's metrics registry, or nil when metrics are
// off. Live export also needs the registry: its snapshot gauges are the
// registry's latest sample row.
func (o *ObsConfig) registry() *obs.Registry {
	if o.MetricsCSV == nil && o.Export == nil {
		return nil
	}
	return obs.NewRegistry()
}

// metricsHost reports whether per-host samplers should cover host i.
func (o *ObsConfig) metricsHost(i int) bool {
	if o.MetricsHosts == nil {
		return true
	}
	for _, h := range o.MetricsHosts {
		if h == i {
			return true
		}
	}
	return false
}

// CSVTrace wraps a per-RPC CSV trace destination (SimConfig.TraceWriter)
// and guarantees the header line is written exactly once for the sink's
// lifetime — even when the same sink is reused across runs, as happens
// when a run is retried into one output file. Plain io.Writer sinks get
// one header per Run instead.
type CSVTrace struct {
	W io.Writer

	mu         sync.Mutex
	headerDone bool
}

// NewCSVTrace wraps w as a header-once trace sink.
func NewCSVTrace(w io.Writer) *CSVTrace { return &CSVTrace{W: w} }

// Write implements io.Writer.
func (t *CSVTrace) Write(p []byte) (int, error) { return t.W.Write(p) }

// claimHeader reports whether the caller should write the header,
// flipping the once-only latch.
func (t *CSVTrace) claimHeader() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.headerDone {
		return false
	}
	t.headerDone = true
	return true
}
