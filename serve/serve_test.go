package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aequitas"
	"aequitas/internal/obs"
)

// newController builds a controller whose SLO is impossible to meet, so
// sustained load drives the admit probability to the floor.
func newController(t testing.TB) *aequitas.AdmissionController {
	t.Helper()
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: time.Nanosecond},
			{Target: time.Nanosecond},
		},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func newAdmission(t testing.TB, reject bool) *Admission {
	t.Helper()
	a, err := New(Config{Controller: newController(t), RejectDowngraded: reject})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRequiresController(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil controller")
	}
}

func TestParseClass(t *testing.T) {
	cases := map[string]aequitas.Class{
		"QoSh": aequitas.High, "high": aequitas.High, "H": aequitas.High, "0": aequitas.High,
		"QoSm": aequitas.Medium, "medium": aequitas.Medium, "1": aequitas.Medium,
		"qosl": aequitas.Low, "Low": aequitas.Low, "2": aequitas.Low,
	}
	for in, want := range cases {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "urgent", "-1"} {
		if _, err := ParseClass(bad); err == nil {
			t.Errorf("ParseClass(%q) accepted", bad)
		}
	}
}

// TestServeOverloadSmoke is the end-to-end serving smoke: mixed-class load
// through the middleware on the wall clock, with an unmeetable SLO, must
// produce downgrades marked on the response, and the exported metrics must
// be valid Prometheus text.
func TestServeOverloadSmoke(t *testing.T) {
	a := newAdmission(t, false)
	var handled int
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := FromContext(r.Context()); !ok {
			t.Error("verdict missing from request context")
		}
		handled++
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	downgraded := 0
	classes := []string{"QoSh", "QoSm"}
	for i := 0; i < 600; i++ {
		req, _ := http.NewRequest("GET", srv.URL+"/backend", nil)
		req.Header.Set(HeaderClass, classes[i%len(classes)])
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if resp.Header.Get(HeaderDowngraded) == "1" {
			downgraded++
			if got := resp.Header.Get(HeaderClass); got != aequitas.Low.String() {
				t.Fatalf("downgraded request ran on %q, want %v", got, aequitas.Low)
			}
		}
	}
	if handled != 600 {
		t.Errorf("handled %d of 600 requests", handled)
	}
	if downgraded == 0 {
		t.Error("no downgrades under sustained overload of an unmeetable SLO")
	}

	// The exported metrics must be valid Prometheus text and reflect the
	// load just served.
	msrv := httptest.NewServer(a.Handler())
	defer msrv.Close()
	resp, err := http.Get(msrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := obs.ValidatePromText(resp.Body)
	if err != nil {
		t.Fatalf("invalid Prometheus exposition: %v", err)
	}
	if n == 0 {
		t.Error("no metric samples exported")
	}

	sresp, err := http.Get(msrv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("snapshot schema %q", snap.Schema)
	}
	counters := map[string]float64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["serve_completed"] != 600 {
		t.Errorf("serve_completed = %v, want 600", counters["serve_completed"])
	}
	if counters["serve_downgraded"] != float64(downgraded) {
		t.Errorf("serve_downgraded = %v, want %d", counters["serve_downgraded"], downgraded)
	}
	if counters["ctl_slo_misses"] == 0 {
		t.Error("no SLO misses recorded despite unmeetable SLO")
	}
	hasPadmit := false
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "padmit.") {
			hasPadmit = true
			if g.Value < 0 || g.Value > 1 {
				t.Errorf("gauge %s = %v out of [0, 1]", g.Name, g.Value)
			}
		}
	}
	if !hasPadmit {
		t.Error("no live admit-probability gauges exported")
	}
}

func TestMiddlewareReject(t *testing.T) {
	a := newAdmission(t, true)
	// Crush the admit probability directly.
	for i := 0; i < 300; i++ {
		a.Controller().Observe("/x", aequitas.High, time.Second, 1)
	}
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rejected := 0
	for i := 0; i < 100; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/x", nil)
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusServiceUnavailable {
			rejected++
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
		}
	}
	if rejected == 0 {
		t.Error("no rejections at floor admit probability with RejectDowngraded")
	}
	if a.m.rejected.Load() != int64(rejected) {
		t.Errorf("rejected counter %d, want %d", a.m.rejected.Load(), rejected)
	}
}

func TestUnaryInterceptor(t *testing.T) {
	a := newAdmission(t, false)
	icpt := a.UnaryInterceptor(nil)
	called := false
	resp, err := icpt(context.Background(), "ping", &UnaryServerInfo{FullMethod: "/svc/Get"},
		func(ctx context.Context, req any) (any, error) {
			called = true
			v, ok := FromContext(ctx)
			if !ok {
				t.Error("verdict missing from interceptor context")
			}
			if v.Request.Peer != "/svc/Get" {
				t.Errorf("peer %q, want method name", v.Request.Peer)
			}
			return "pong", nil
		})
	if err != nil || resp != "pong" || !called {
		t.Fatalf("interceptor: resp=%v err=%v called=%v", resp, err, called)
	}
}

func TestUnaryInterceptorReject(t *testing.T) {
	a := newAdmission(t, true)
	for i := 0; i < 300; i++ {
		a.Controller().Observe("/svc/Get", aequitas.High, time.Second, 1)
	}
	icpt := a.UnaryInterceptor(nil)
	rejections := 0
	for i := 0; i < 100; i++ {
		_, err := icpt(context.Background(), nil, &UnaryServerInfo{FullMethod: "/svc/Get"},
			func(ctx context.Context, req any) (any, error) { return nil, nil })
		if err == ErrRejected {
			rejections++
		}
	}
	if rejections == 0 {
		t.Error("interceptor never rejected at floor admit probability")
	}
}

// TestServeConcurrent hammers the middleware and the metrics endpoint from
// many goroutines; run under -race it is the serving path's data-race
// check.
func TestServeConcurrent(t *testing.T) {
	a := newAdmission(t, false)
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	metrics := a.Handler()
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peers := []string{"/a", "/b", "/c"}
			classes := []string{"QoSh", "QoSm", "QoSl"}
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("GET", peers[(w+i)%len(peers)], nil)
				req.Header.Set(HeaderClass, classes[i%len(classes)])
				h.ServeHTTP(rec, req)
				if i%50 == 0 {
					mrec := httptest.NewRecorder()
					metrics.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
					if _, err := obs.ValidatePromText(mrec.Body); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := a.m.admitted.Load() + a.m.downgraded.Load() + a.m.rejected.Load()
	if total != workers*perWorker {
		t.Errorf("decision counters sum to %d, want %d", total, workers*perWorker)
	}
	if a.m.done.Load() != workers*perWorker {
		t.Errorf("completions %d, want %d", a.m.done.Load(), workers*perWorker)
	}
}
