package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Schema tags every dump header line.
const Schema = "aequitas.flight/v1"

// Meta describes one dump: why it was taken and how to render it.
type Meta struct {
	// Trigger is the cause recorded in the header.
	Trigger Trigger
	// Label names the producing run or server (e.g. the sweep point).
	Label string
	// PeerName optionally resolves peer ids to names; resolved names are
	// emitted as a peer_name field alongside the numeric id.
	PeerName func(int32) string
}

// WriteDump writes one flight dump: a header line carrying the schema
// tag, the trigger, and the ring counters, followed by one NDJSON line
// per record in snapshot order. Multiple dumps may share a stream; each
// header starts a new dump.
func WriteDump(w io.Writer, meta Meta, recs []Record, st Stats) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var b []byte
	b = append(b, `{"schema":"`...)
	b = append(b, Schema...)
	b = append(b, `","trigger":`...)
	b = strconv.AppendQuote(b, meta.Trigger.Kind.String())
	if meta.Trigger.Detail != "" {
		b = append(b, `,"detail":`...)
		b = strconv.AppendQuote(b, meta.Trigger.Detail)
	}
	if meta.Label != "" {
		b = append(b, `,"label":`...)
		b = strconv.AppendQuote(b, meta.Label)
	}
	b = append(b, `,"ts_us":`...)
	b = strconv.AppendFloat(b, meta.Trigger.At.Micros(), 'f', 3, 64)
	b = append(b, `,"records":`...)
	b = strconv.AppendInt(b, int64(len(recs)), 10)
	b = append(b, `,"offered":`...)
	b = strconv.AppendUint(b, st.Offered, 10)
	b = append(b, `,"sampled_out":`...)
	b = strconv.AppendUint(b, st.SampledOut, 10)
	b = append(b, `,"dropped_frozen":`...)
	b = strconv.AppendUint(b, st.DroppedFrozen, 10)
	b = append(b, '}', '\n')
	if _, err := bw.Write(b); err != nil {
		return err
	}
	for i := range recs {
		b = appendRecord(b[:0], int64(i), &recs[i], meta.PeerName)
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendRecord renders one record as a dump line.
func appendRecord(b []byte, seq int64, r *Record, peerName func(int32) string) []byte {
	num := func(b []byte, key string, v int64) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		return strconv.AppendInt(b, v, 10)
	}
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, `,"ts_us":`...)
	b = strconv.AppendFloat(b, r.TS.Micros(), 'f', 3, 64)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, r.Kind.String())
	b = append(b, `,"verdict":`...)
	b = strconv.AppendQuote(b, r.Verdict.String())
	b = num(b, "src", int64(r.Src))
	b = num(b, "peer", int64(r.Peer))
	if peerName != nil {
		if name := peerName(r.Peer); name != "" {
			b = append(b, `,"peer_name":`...)
			b = strconv.AppendQuote(b, name)
		}
	}
	b = num(b, "req", int64(r.Requested))
	b = num(b, "class", int64(r.Class))
	b = append(b, `,"p_admit":`...)
	b = strconv.AppendFloat(b, r.PAdmit, 'g', -1, 64)
	b = num(b, "size_mtus", int64(r.SizeMTUs))
	if r.Kind == KindComplete {
		b = append(b, `,"lat_us":`...)
		b = strconv.AppendFloat(b, r.LatencyUS, 'f', 3, 64)
	}
	if r.Quota != QuotaNone {
		b = append(b, `,"quota":`...)
		b = strconv.AppendQuote(b, r.Quota.String())
	}
	return append(b, '}')
}

// decisionVerdicts and completeVerdicts are the verdict names legal for
// each record kind.
var (
	decisionVerdicts = map[string]bool{"admit": true, "downgrade": true, "drop": true, "expired": true}
	completeVerdicts = map[string]bool{"slo_met": true, "slo_miss": true}
)

// ValidateDump checks a flight-dump stream: every dump starts with an
// aequitas.flight/v1 header whose record count matches the lines that
// follow, record sequence numbers are contiguous from zero, timestamps
// are non-negative and non-decreasing within a dump, kinds and verdicts
// are known and consistent (decisions carry admission verdicts,
// completions carry SLO verdicts and a latency), probabilities lie in
// [0, 1], and the header's sampling counters satisfy the retention
// invariant records + sampled_out + dropped_frozen <= offered (the gap is
// ring-wrap eviction). It returns the number of dumps and records.
func ValidateDump(r io.Reader) (dumps, records int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	remaining := 0 // record lines still expected for the current dump
	nextSeq := int64(0)
	lastTS := -1.0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return dumps, records, fmt.Errorf("flight: line %d: invalid JSON: %w", lineNo, err)
		}
		if remaining == 0 {
			// Expect a header.
			schema, _ := m["schema"].(string)
			if schema != Schema {
				return dumps, records, fmt.Errorf("flight: line %d: expected %q header, got schema %q", lineNo, Schema, schema)
			}
			trig, _ := m["trigger"].(string)
			if _, ok := triggerKinds[trig]; !ok {
				return dumps, records, fmt.Errorf("flight: line %d: unknown trigger %q", lineNo, trig)
			}
			n, ok := m["records"].(float64)
			if !ok || n < 0 || n != float64(int(n)) {
				return dumps, records, fmt.Errorf("flight: line %d: field \"records\" missing or not a count", lineNo)
			}
			offered, ok1 := m["offered"].(float64)
			sampled, ok2 := m["sampled_out"].(float64)
			dropped, ok3 := m["dropped_frozen"].(float64)
			if !ok1 || !ok2 || !ok3 {
				return dumps, records, fmt.Errorf("flight: line %d: header missing sampling counters", lineNo)
			}
			if n+sampled+dropped > offered {
				return dumps, records, fmt.Errorf("flight: line %d: retention invariant violated: %g records + %g sampled_out + %g dropped_frozen > %g offered",
					lineNo, n, sampled, dropped, offered)
			}
			if _, ok := m["ts_us"].(float64); !ok {
				return dumps, records, fmt.Errorf("flight: line %d: header field \"ts_us\" missing", lineNo)
			}
			dumps++
			remaining = int(n)
			nextSeq = 0
			lastTS = -1.0
			continue
		}
		// Record line.
		seq, ok := m["seq"].(float64)
		if !ok || int64(seq) != nextSeq {
			return dumps, records, fmt.Errorf("flight: line %d: field \"seq\" missing or not contiguous (want %d)", lineNo, nextSeq)
		}
		nextSeq++
		ts, ok := m["ts_us"].(float64)
		if !ok || ts < 0 {
			return dumps, records, fmt.Errorf("flight: line %d: field \"ts_us\" missing or negative", lineNo)
		}
		if ts < lastTS {
			return dumps, records, fmt.Errorf("flight: line %d: field \"ts_us\" %.3f before previous %.3f", lineNo, ts, lastTS)
		}
		lastTS = ts
		kind, _ := m["kind"].(string)
		verdict, _ := m["verdict"].(string)
		switch kind {
		case "decision":
			if !decisionVerdicts[verdict] {
				return dumps, records, fmt.Errorf("flight: line %d: verdict %q invalid for a decision", lineNo, verdict)
			}
		case "complete":
			if !completeVerdicts[verdict] {
				return dumps, records, fmt.Errorf("flight: line %d: verdict %q invalid for a completion", lineNo, verdict)
			}
			if lat, ok := m["lat_us"].(float64); !ok || lat < 0 {
				return dumps, records, fmt.Errorf("flight: line %d: field \"lat_us\" missing or negative on completion", lineNo)
			}
		default:
			return dumps, records, fmt.Errorf("flight: line %d: unknown kind %q", lineNo, kind)
		}
		for _, f := range []string{"src", "peer", "req", "class", "size_mtus"} {
			if _, ok := m[f].(float64); !ok {
				return dumps, records, fmt.Errorf("flight: line %d: field %q missing", lineNo, f)
			}
		}
		p, ok := m["p_admit"].(float64)
		if !ok || p < 0 || p > 1 {
			return dumps, records, fmt.Errorf("flight: line %d: field \"p_admit\" missing or out of [0, 1]", lineNo)
		}
		remaining--
		records++
	}
	if err := sc.Err(); err != nil {
		return dumps, records, err
	}
	if remaining > 0 {
		return dumps, records, fmt.Errorf("flight: truncated dump: %d record lines missing", remaining)
	}
	return dumps, records, nil
}

// DumpSummary condenses one dump for reports.
type DumpSummary struct {
	Trigger string  `json:"trigger"`
	Detail  string  `json:"detail,omitempty"`
	TSUS    float64 `json:"ts_us"`
	Records int     `json:"records"`
}

// Summary condenses a flight-dump stream for obsreport: per-dump
// triggers plus verdict totals and extremes across all records.
type Summary struct {
	Schema     string         `json:"schema"`
	Dumps      []DumpSummary  `json:"dumps"`
	Records    int            `json:"records"`
	ByVerdict  map[string]int `json:"by_verdict"`
	MinPAdmit  float64        `json:"min_p_admit"`
	MaxLatUS   float64        `json:"max_lat_us"`
	SampledOut uint64         `json:"sampled_out"`
}

// Summarize validates and condenses a flight-dump stream.
func Summarize(r io.Reader) (*Summary, error) {
	// Buffer the stream so it can be validated first, then summarised
	// without re-reading the source.
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, err
	}
	if _, _, err := ValidateDump(bytes.NewReader(buf.Bytes())); err != nil {
		return nil, err
	}
	sum := &Summary{Schema: Schema, ByVerdict: map[string]int{}, MinPAdmit: 1}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, err
		}
		if schema, _ := m["schema"].(string); schema == Schema {
			ds := DumpSummary{}
			ds.Trigger, _ = m["trigger"].(string)
			ds.Detail, _ = m["detail"].(string)
			ds.TSUS, _ = m["ts_us"].(float64)
			if n, ok := m["records"].(float64); ok {
				ds.Records = int(n)
			}
			if so, ok := m["sampled_out"].(float64); ok {
				sum.SampledOut += uint64(so)
			}
			sum.Dumps = append(sum.Dumps, ds)
			continue
		}
		sum.Records++
		if v, ok := m["verdict"].(string); ok {
			sum.ByVerdict[v]++
		}
		if p, ok := m["p_admit"].(float64); ok && p < sum.MinPAdmit {
			sum.MinPAdmit = p
		}
		if lat, ok := m["lat_us"].(float64); ok && lat > sum.MaxLatUS {
			sum.MaxLatUS = lat
		}
	}
	return sum, sc.Err()
}

// DumpTo snapshots the ring and writes one dump — the freeze, gather,
// render sequence every trigger path shares. With reset true the ring
// restarts empty afterwards, so consecutive dumps partition the
// timeline.
func DumpTo(w io.Writer, r *Ring, meta Meta, reset bool) error {
	if r == nil || w == nil {
		return nil
	}
	recs := r.Snapshot(reset)
	return WriteDump(w, meta, recs, r.Stats())
}
