package serve

import (
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// HeaderDeadline carries a request's remaining deadline budget as a Go
// duration string ("250ms"). Budgets are durations, not absolute times,
// so client and server clocks need not agree; a request context deadline
// is honoured as a fallback.
const HeaderDeadline = "X-Aequitas-Deadline"

// HeaderExpired marks a response rejected because the request's deadline
// budget could not cover the observed per-class latency floor.
const HeaderExpired = "X-Aequitas-Expired"

// DeadlineConfig enables deadline-budget admission: requests whose
// remaining budget cannot cover the class's observed completion-latency
// floor are rejected before the admission draw ("expired before admit").
// Admitting such a request only burns server capacity on work the client
// will have abandoned by the time the response arrives.
type DeadlineConfig struct {
	// Header names the request header carrying the budget (default
	// HeaderDeadline). The context deadline applies when the header is
	// absent.
	Header string
	// MinBudget rejects any budget below this outright, even before a
	// latency floor has been learned. Zero disables the static check.
	MinBudget time.Duration
	// SafetyFactor scales the learned floor before comparison (default
	// 1.0): 2.0 rejects requests whose budget is under twice the floor.
	SafetyFactor float64
}

func (c DeadlineConfig) withDefaults() DeadlineConfig {
	if c.Header == "" {
		c.Header = HeaderDeadline
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 1
	}
	return c
}

// latFloor tracks the per-class completion-latency floor: the cheapest a
// request of that class has recently been observed to complete. Samples
// below the floor snap it down immediately; samples above drift it up
// slowly (gain 1/64) so a stale low from a quiet period ages out. The
// float64 bit patterns live in atomics; a lost update under a race only
// delays convergence by one sample.
type latFloor struct {
	ns [maxClasses]atomic.Uint64
}

// observe feeds one completion latency for class.
func (f *latFloor) observe(slot int, elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	s := float64(elapsed)
	cur := math.Float64frombits(f.ns[slot].Load())
	switch {
	case cur == 0 || s < cur:
		f.ns[slot].Store(math.Float64bits(s))
	default:
		f.ns[slot].Store(math.Float64bits(cur + (s-cur)/64))
	}
}

// floor reports the current estimate for class, or 0 when unlearned.
func (f *latFloor) floor(slot int) time.Duration {
	return time.Duration(math.Float64frombits(f.ns[slot].Load()))
}

// deadlineState is the Admission layer's budget checker.
type deadlineState struct {
	cfg   DeadlineConfig
	floor latFloor
}

func newDeadlineState(cfg DeadlineConfig) *deadlineState {
	return &deadlineState{cfg: cfg.withDefaults()}
}

// budgetFromRequest extracts the remaining budget: the deadline header
// (a Go duration) wins; otherwise the request context's deadline counts
// down on the wall clock. ok is false when the request carries neither.
func (d *deadlineState) budgetFromRequest(r *http.Request) (time.Duration, bool) {
	if s := r.Header.Get(d.cfg.Header); s != "" {
		if b, err := time.ParseDuration(s); err == nil {
			return b, true
		}
	}
	if dl, ok := r.Context().Deadline(); ok {
		return time.Until(dl), true
	}
	return 0, false
}

// expired reports whether budget cannot cover class slot's latency
// floor (or the static MinBudget).
func (d *deadlineState) expired(slot int, budget time.Duration) bool {
	if budget <= 0 {
		return true
	}
	if d.cfg.MinBudget > 0 && budget < d.cfg.MinBudget {
		return true
	}
	if fl := d.floor.floor(slot); fl > 0 &&
		float64(budget) < d.cfg.SafetyFactor*float64(fl) {
		return true
	}
	return false
}
