// Benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation. Each benchmark runs a reduced-scale version of the
// experiment (so the whole suite completes in minutes) and reports the
// figure's headline quantities as custom benchmark metrics; cmd/figures
// regenerates the full tables.
//
// Run with: go test -bench=Fig -benchmem .
package aequitas

import (
	"math/rand"
	"testing"
	"time"

	"aequitas/internal/calculus"
	"aequitas/internal/fleet"
	"aequitas/internal/workload"
)

// benchCluster is the reduced-scale all-to-all cluster configuration
// shared by the cluster benchmarks: 8 hosts standing in for the paper's
// 33-node experiments so the suite completes in minutes.
func benchCluster(system System, mix [3]float64, seed int64) SimConfig {
	return SimConfig{
		System:     system,
		Hosts:      8,
		Seed:       seed,
		Duration:   15 * time.Millisecond,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []SLO{
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.8,
			BurstLoad: 1.4,
			Classes: []TrafficClass{
				{Priority: PC, Share: mix[0], FixedBytes: 32 << 10},
				{Priority: NC, Share: mix[1], FixedBytes: 32 << 10},
				{Priority: BE, Share: mix[2], FixedBytes: 32 << 10},
			},
		}},
	}
}

func mustRun(b *testing.B, cfg SimConfig) *Results {
	b.Helper()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig01SizeDistributions samples the production-shaped RPC size
// CDFs (Figure 1).
func BenchmarkFig01SizeDistributions(b *testing.B) {
	dists := []workload.SizeDist{
		workload.ProductionPC(), workload.ProductionNC(), workload.ProductionBE(),
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += dists[i%3].Sample(rng)
	}
	_ = sink
}

// BenchmarkFig03OverloadEpisode regenerates the congestion-episode series
// (Figure 3).
func BenchmarkFig03OverloadEpisode(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		load, lat := fleet.OverloadEpisode(200, 8)
		peak = lat[argmax(load)]
	}
	b.ReportMetric(peak, "latency_peak_x")
}

// BenchmarkFig04Misalignment measures coarse-marking misalignment
// (Figure 4).
func BenchmarkFig04Misalignment(b *testing.B) {
	var pcWrong float64
	for i := 0; i < b.N; i++ {
		c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 200, Seed: int64(i + 1), UpgradeBias: 0.35})
		if err != nil {
			b.Fatal(err)
		}
		pcWrong = c.CoarseAlignment().Misalignment(PC)
	}
	b.ReportMetric(100*pcWrong, "PC_misaligned_%")
}

// BenchmarkFig05RaceToTop runs the marking-drift process (Figure 5).
func BenchmarkFig05RaceToTop(b *testing.B) {
	var drift float64
	for i := 0; i < b.N; i++ {
		c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 200, Seed: int64(i + 1), UpgradeBias: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		traj := c.RaceToTheTop(20, 0.25, 0.4)
		drift = traj[len(traj)-1][0] - traj[0][0]
	}
	b.ReportMetric(100*drift, "QoSh_share_drift_%")
}

// BenchmarkFig08TheoryDelay evaluates the closed-form 2-QoS delay bounds
// over the full share sweep (Figure 8).
func BenchmarkFig08TheoryDelay(b *testing.B) {
	p := calculus.TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		x := float64(i%999+1) / 1000
		sink += p.DelayHigh(x) + p.DelayLow(x)
	}
	_ = sink
	b.ReportMetric(p.InversionPoint(), "inversion_share")
}

// BenchmarkFig09ThreeQoSDelay runs the fluid 3-QoS worst-case sweep
// (Figure 9).
func BenchmarkFig09ThreeQoSDelay(b *testing.B) {
	mixAt := func(x float64) []float64 {
		rest := 1 - x
		return []float64{x, rest * 2 / 3, rest / 3}
	}
	var boundary8, boundary50 float64
	for i := 0; i < b.N; i++ {
		var err error
		boundary8, err = calculus.AdmissibleBoundary([]float64{8, 4, 1}, mixAt, 1.4, 0.8, 128)
		if err != nil {
			b.Fatal(err)
		}
		boundary50, err = calculus.AdmissibleBoundary([]float64{50, 4, 1}, mixAt, 1.4, 0.8, 128)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*boundary8, "boundary_8:4:1_%")
	b.ReportMetric(100*boundary50, "boundary_50:4:1_%")
}

// BenchmarkFig10SimVsTheory validates the packet simulator against the
// closed form at one representative share (Figure 10).
func BenchmarkFig10SimVsTheory(b *testing.B) {
	theory := calculus.TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	var gap float64
	for i := 0; i < b.N; i++ {
		cfg := SimConfig{
			System: SystemBaseline, Hosts: 3, Seed: int64(i + 7),
			Duration: 25 * time.Millisecond, Warmup: 5 * time.Millisecond,
			QoSWeights: []float64{4, 1}, PerClassBufferBytes: -1,
			DisableCC: true, FixedWindow: 512, BurstPeriod: time.Millisecond,
			RTOMin: 500 * time.Millisecond,
			Traffic: []HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: 0.4, BurstLoad: 0.6, Arrival: ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: 0.5, FixedBytes: 1436},
					{Priority: NC, Share: 0.5, FixedBytes: 1436},
				},
			}},
		}
		res := mustRun(b, cfg)
		sim := res.RNLRun[Medium].MaxUS / 1000
		gap = sim - theory.DelayLow(0.5)
	}
	b.ReportMetric(gap, "sim_minus_theory")
}

// BenchmarkFig11SLOCompliance checks that achieved tail RNL tracks the
// SLO knob in the 3-node overload (Figure 11).
func BenchmarkFig11SLOCompliance(b *testing.B) {
	var achieved, share float64
	for i := 0; i < b.N; i++ {
		cfg := SimConfig{
			System: SystemAequitas, Hosts: 3, Seed: int64(i + 1),
			Duration: 40 * time.Millisecond, Warmup: 15 * time.Millisecond,
			QoSWeights: []float64{4, 1},
			SLOs:       []SLO{{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9}},
			Traffic: []HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: 1.0, Arrival: ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: 0.7, FixedBytes: 32 << 10},
					{Priority: BE, Share: 0.3, FixedBytes: 32 << 10},
				},
			}},
		}
		res := mustRun(b, cfg)
		achieved = res.RNLQuantileUS(High, 0.999)
		share = 100 * res.AdmittedMix[0]
	}
	b.ReportMetric(achieved, "QoSh_p999_us")
	b.ReportMetric(share, "admitted_share_%")
}

// BenchmarkFig12ClusterSLO compares cluster tail RNL with and without
// Aequitas (Figure 12).
func BenchmarkFig12ClusterSLO(b *testing.B) {
	var base, aeq float64
	for i := 0; i < b.N; i++ {
		rb := mustRun(b, benchCluster(SystemBaseline, [3]float64{0.6, 0.3, 0.1}, int64(i+1)))
		ra := mustRun(b, benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1)))
		base = rb.RNLQuantileUS(High, 0.999)
		aeq = ra.RNLQuantileUS(High, 0.999)
	}
	b.ReportMetric(base, "baseline_QoSh_p999_us")
	b.ReportMetric(aeq, "aequitas_QoSh_p999_us")
}

// BenchmarkFig13OutstandingRPCs samples outstanding RPCs per switch port
// (Figure 13).
func BenchmarkFig13OutstandingRPCs(b *testing.B) {
	var hiP99 float64
	for i := 0; i < b.N; i++ {
		cfg := benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1))
		cfg.TrackOutstanding = true
		res := mustRun(b, cfg)
		for _, p := range res.OutstandingHighMed {
			if p.Y >= 0.99 {
				hiP99 = p.X
				break
			}
		}
	}
	b.ReportMetric(hiP99, "outstanding_himed_p99")
}

// BenchmarkFig14AdmissibleSweep probes the baseline latency-vs-share
// profile at one point past the knee (Figure 14).
func BenchmarkFig14AdmissibleSweep(b *testing.B) {
	var tail float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchCluster(SystemBaseline, [3]float64{0.55, 0.25, 0.2}, int64(i+1)))
		tail = res.RNLQuantileUS(High, 0.999)
	}
	b.ReportMetric(tail, "QoSh_p999_at_55pct_us")
}

// BenchmarkFig15QoSMixConvergence verifies the admitted mix is set by the
// SLOs, not the input mix (Figure 15).
func BenchmarkFig15QoSMixConvergence(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r1 := mustRun(b, benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1)))
		r2 := mustRun(b, benchCluster(SystemAequitas, [3]float64{0.3, 0.3, 0.4}, int64(i+1)))
		spread = 100 * abs(r1.AdmittedMix[0]-r2.AdmittedMix[0])
	}
	b.ReportMetric(spread, "admitted_share_spread_pp")
}

// BenchmarkFig16Burstiness measures admitted share at two burst loads
// (Figure 16: share ∝ 1/ρ).
func BenchmarkFig16Burstiness(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		lo := benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1))
		lo.Traffic[0].BurstLoad = 1.4
		hi := benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1))
		hi.Traffic[0].BurstLoad = 2.2
		rl := mustRun(b, lo)
		rh := mustRun(b, hi)
		if rh.AdmittedMix[0] > 0 {
			ratio = rl.AdmittedMix[0] / rh.AdmittedMix[0]
		}
	}
	b.ReportMetric(ratio, "share_ratio_1.4_vs_2.2")
}

// benchFairness is the Figure 17/18 configuration at benchmark scale.
func benchFairness(shareA, shareB, alpha, beta float64, seed int64) SimConfig {
	return SimConfig{
		System: SystemAequitas, Hosts: 3, Seed: seed,
		Duration: 120 * time.Millisecond, Warmup: 20 * time.Millisecond,
		QoSWeights: []float64{4, 1},
		SLOs:       []SLO{{Target: 15 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9}},
		Admission:  AdmissionParams{Alpha: alpha, Beta: beta},
		Traffic: []HostTraffic{
			{Hosts: []int{0}, Dsts: []int{2}, AvgLoad: 1, Arrival: ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: shareA, FixedBytes: 32 << 10},
					{Priority: BE, Share: 1 - shareA, FixedBytes: 32 << 10},
				}},
			{Hosts: []int{1}, Dsts: []int{2}, AvgLoad: 1, Arrival: ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: shareB, FixedBytes: 32 << 10},
					{Priority: BE, Share: 1 - shareB, FixedBytes: 32 << 10},
				}},
		},
		Probes: []Probe{
			{Src: 0, Dst: 2, Class: High},
			{Src: 1, Dst: 2, Class: High},
		},
		SampleEvery: time.Millisecond,
	}
}

// BenchmarkFig17Fairness measures the two channels' admit probabilities
// (Figure 17).
func BenchmarkFig17Fairness(b *testing.B) {
	var pA, pB float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchFairness(0.4, 0.8, 0.05, 0.01, int64(i+1)))
		pA = res.Probes[0].AdmitProbability.MeanAfter(0.06)
		pB = res.Probes[1].AdmitProbability.MeanAfter(0.06)
	}
	b.ReportMetric(pA, "p_admit_A")
	b.ReportMetric(pB, "p_admit_B")
}

// BenchmarkFig18MaxMinFairness: the in-quota channel keeps a high admit
// probability (Figure 18).
func BenchmarkFig18MaxMinFairness(b *testing.B) {
	var pInQuota float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchFairness(0.1, 0.8, 0.05, 0.01, int64(i+1)))
		pInQuota = res.Probes[0].AdmitProbability.MeanAfter(0.06)
	}
	b.ReportMetric(pInQuota, "p_admit_inquota")
}

// BenchmarkFig19SPQComparison: SPQ vs Aequitas at a high claimed QoSh
// share (Figure 19).
func BenchmarkFig19SPQComparison(b *testing.B) {
	var spqM, aeqM float64
	for i := 0; i < b.N; i++ {
		mix := [3]float64{0.7, 0.2, 0.1}
		rs := mustRun(b, benchCluster(SystemSPQ, mix, int64(i+1)))
		ra := mustRun(b, benchCluster(SystemAequitas, mix, int64(i+1)))
		spqM = rs.RNLQuantileUS(Medium, 0.999)
		aeqM = ra.RNLQuantileUS(Medium, 0.999)
	}
	b.ReportMetric(spqM, "SPQ_QoSm_p999_us")
	b.ReportMetric(aeqM, "AEQ_QoSm_p999_us")
}

// BenchmarkFig20MixedSizes: normalised SLOs with mixed 32/64 KB RPCs
// (Figure 20).
func BenchmarkFig20MixedSizes(b *testing.B) {
	var inSLO float64
	for i := 0; i < b.N; i++ {
		cfg := benchCluster(SystemAequitas, [3]float64{0.6, 0.3, 0.1}, int64(i+1))
		for j := range cfg.Traffic[0].Classes {
			cfg.Traffic[0].Classes[j].FixedBytes = 0
			cfg.Traffic[0].Classes[j].Size = SizeChoice([]int64{32 << 10, 64 << 10}, []float64{1, 1})
		}
		res := mustRun(b, cfg)
		inSLO = 100 * res.SLOMetRunBytesFraction[High]
	}
	b.ReportMetric(inSLO, "QoSh_in_SLO_%")
}

// BenchmarkFig21LargeScale: production sizes under extreme burst
// (Figure 21).
func BenchmarkFig21LargeScale(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		mk := func(system System) SimConfig {
			return SimConfig{
				System: system, Hosts: 10, Seed: int64(i + 1),
				Duration:   15 * time.Millisecond,
				QoSWeights: []float64{8, 4, 1},
				SLOs: []SLO{
					{Target: 20 * time.Microsecond, Percentile: 99.9},
					{Target: 40 * time.Microsecond, Percentile: 99.9},
				},
				BurstPeriod: 200 * time.Microsecond,
				Traffic: []HostTraffic{{
					AvgLoad: 0.8, BurstLoad: 2.0,
					Classes: []TrafficClass{
						{Priority: PC, Share: 0.6, Size: ProductionPCSizes()},
						{Priority: NC, Share: 0.3, Size: ProductionNCSizes()},
						{Priority: BE, Share: 0.1, Size: ProductionBESizes()},
					},
				}},
			}
		}
		rb := mustRun(b, mk(SystemBaseline))
		ra := mustRun(b, mk(SystemAequitas))
		if t := ra.RNLQuantileUS(High, 0.999); t > 0 {
			improvement = rb.RNLQuantileUS(High, 0.999) / t
		}
	}
	b.ReportMetric(improvement, "QoSh_tail_improvement_x")
}

// BenchmarkFig22RelatedWork runs the six-system comparison at benchmark
// scale (Figure 22).
func BenchmarkFig22RelatedWork(b *testing.B) {
	systems := []System{SystemAequitas, SystemPFabric, SystemQJump, SystemD3, SystemPDQ, SystemHoma}
	metrics := make([]float64, len(systems))
	for i := 0; i < b.N; i++ {
		for si, system := range systems {
			cfg := SimConfig{
				System: system, Hosts: 6, Seed: int64(i + 1),
				Duration:   10 * time.Millisecond,
				QoSWeights: []float64{8, 4, 1},
				SLOs: []SLO{
					{Target: 20 * time.Microsecond, Percentile: 99.9},
					{Target: 40 * time.Microsecond, Percentile: 99.9},
				},
				Traffic: []HostTraffic{{
					AvgLoad: 0.8, BurstLoad: 1.4,
					Classes: []TrafficClass{
						{Priority: PC, Share: 0.5, Size: ProductionPCSizes(), Deadline: 250 * time.Microsecond},
						{Priority: NC, Share: 0.3, Size: ProductionNCSizes(), Deadline: 300 * time.Microsecond},
						{Priority: BE, Share: 0.2, Size: ProductionBESizes()},
					},
				}},
			}
			res := mustRun(b, cfg)
			metrics[si] = 100 * res.SLOMetBytesFraction[PC]
		}
	}
	for si, system := range systems {
		b.ReportMetric(metrics[si], system.String()+"_PC_in_SLO_%")
	}
}

// BenchmarkFig23Testbed reproduces the 20-node testbed mix convergence
// (Figure 23) at reduced scale.
func BenchmarkFig23Testbed(b *testing.B) {
	var admitted float64
	for i := 0; i < b.N; i++ {
		cfg := benchCluster(SystemAequitas, [3]float64{0.5, 0.35, 0.15}, int64(i+1))
		cfg.Hosts = 10
		res := mustRun(b, cfg)
		admitted = 100 * res.AdmittedMix[0]
	}
	b.ReportMetric(admitted, "admitted_QoSh_share_%")
}

// BenchmarkFig24Production runs the 50-cluster Phase-1 deployment model
// (Figure 24).
func BenchmarkFig24Production(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for seed := int64(0); seed < 50; seed++ {
			c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 80, Seed: seed + int64(i), UpgradeBias: 0.35})
			if err != nil {
				b.Fatal(err)
			}
			sum += c.RNLImprovement([3]float64{1, 1.25, 1.8})
		}
		mean = 100 * sum / 50
	}
	b.ReportMetric(mean, "mean_99p_RNL_change_%")
}

// BenchmarkFigC_BetaSensitivity reruns Figure 18 with the appendix's
// smaller beta (Figures 28/29).
func BenchmarkFigC_BetaSensitivity(b *testing.B) {
	var pSmallBeta float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchFairness(0.1, 0.8, 0.05, 0.0015, int64(i+1)))
		pSmallBeta = res.Probes[0].AdmitProbability.MeanAfter(0.06)
	}
	b.ReportMetric(pSmallBeta, "p_admit_inquota_beta0.0015")
}

// BenchmarkGuaranteedAdmission evaluates the §5.2 bound.
func BenchmarkGuaranteedAdmission(b *testing.B) {
	var bound float64
	for i := 0; i < b.N; i++ {
		bound = GuaranteedShare([]float64{8, 4, 1}, 0, 0.8, 1.4)
	}
	b.ReportMetric(100*bound, "guaranteed_QoSh_share_%")
}

// Ablation benches (DESIGN.md §4): each removes one mechanism from
// Algorithm 1 on the 3-node overload and reports the resulting tail.

func benchAblation(b *testing.B, mod func(*SimConfig)) (tailUS, dropped float64) {
	var res *Results
	for i := 0; i < b.N; i++ {
		cfg := SimConfig{
			System: SystemAequitas, Hosts: 3, Seed: int64(i + 1),
			Duration: 40 * time.Millisecond, Warmup: 15 * time.Millisecond,
			QoSWeights: []float64{4, 1},
			SLOs:       []SLO{{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9}},
			Traffic: []HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: 1.0, Arrival: ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: 0.7, FixedBytes: 32 << 10},
					{Priority: BE, Share: 0.3, FixedBytes: 32 << 10},
				},
			}},
		}
		mod(&cfg)
		res = mustRun(b, cfg)
	}
	return res.RNLQuantileUS(High, 0.999), float64(res.Dropped)
}

func BenchmarkAblationNoIncrementWindow(b *testing.B) {
	tail, _ := benchAblation(b, func(c *SimConfig) { c.Admission.NoIncrementWindow = true })
	b.ReportMetric(tail, "QoSh_p999_us")
}

func BenchmarkAblationNoSizeScaledMD(b *testing.B) {
	tail, _ := benchAblation(b, func(c *SimConfig) { c.Admission.NoSizeScaledMD = true })
	b.ReportMetric(tail, "QoSh_p999_us")
}

func BenchmarkAblationHighFloor(b *testing.B) {
	tail, _ := benchAblation(b, func(c *SimConfig) { c.Admission.Floor = 0.4 })
	b.ReportMetric(tail, "QoSh_p999_us")
}

func BenchmarkAblationDropNotDowngrade(b *testing.B) {
	tail, dropped := benchAblation(b, func(c *SimConfig) { c.Admission.DropInsteadOfDowngrade = true })
	b.ReportMetric(tail, "QoSh_p999_us")
	b.ReportMetric(dropped, "rpcs_dropped")
}

// BenchmarkRun measures end-to-end simulation cost per scenario-engine
// composition: the uniform all-to-all default and the incast pattern. On
// top of the standard ns/op and allocs/op it reports simulator throughput
// (events/sec, packets/sec) and the per-completed-RPC cost (ns/RPC) —
// the headline quantities tracked PR over PR in BENCH_*.json.
// Run with: go test -bench=BenchmarkRun -benchmem .
func BenchmarkRun(b *testing.B) {
	base := func() SimConfig {
		cfg := benchCluster(SystemAequitas, [3]float64{0.5, 0.3, 0.2}, 1)
		cfg.Duration = 5 * time.Millisecond
		return cfg
	}
	run := func(b *testing.B, mod func(*SimConfig)) {
		b.ReportAllocs()
		var events, packets, rpcs int64
		for i := 0; i < b.N; i++ {
			cfg := base()
			cfg.Seed = int64(i + 1)
			if mod != nil {
				mod(&cfg)
			}
			res := mustRun(b, cfg)
			events += res.EventsProcessed
			packets += res.PacketsDelivered
			rpcs += res.Completed
		}
		secs := b.Elapsed().Seconds()
		if secs > 0 {
			b.ReportMetric(float64(events)/secs, "events/s")
			b.ReportMetric(float64(packets)/secs, "packets/s")
		}
		if rpcs > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rpcs), "ns/RPC")
		}
	}
	b.Run("uniform", func(b *testing.B) { run(b, nil) })
	b.Run("incast", func(b *testing.B) {
		run(b, func(cfg *SimConfig) { cfg.Traffic[0].Pattern = IncastPattern(0) })
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
