package aequitas

import (
	"io"
	"time"

	"aequitas/internal/faults"
	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// FaultPlan is a deterministic, seeded schedule of fault events injected
// into a run via SimConfig.Faults: link down/up, per-link random packet
// loss, and host crash/restart. See the faults package for semantics.
type FaultPlan = faults.Plan

// FaultEvent is one scheduled fault.
type FaultEvent = faults.Event

// FaultWindow is one interval during which a fault was active.
type FaultWindow = faults.Window

// LinkDownAt / LinkUpAt schedule a link blackhole and its repair. link
// is an egress link name ("up-2", "down-0") or HostLinkTarget(n) for
// both access links of host n.
func LinkDownAt(at time.Duration, link string) FaultEvent {
	return FaultEvent{At: sim.Duration(sim.FromStd(at)), Kind: faults.LinkDown, Link: link}
}

func LinkUpAt(at time.Duration, link string) FaultEvent {
	return FaultEvent{At: sim.Duration(sim.FromStd(at)), Kind: faults.LinkUp, Link: link}
}

// LinkLossAt sets an independent per-packet random loss probability on a
// link; rate 0 clears it.
func LinkLossAt(at time.Duration, link string, rate float64) FaultEvent {
	return FaultEvent{At: sim.Duration(sim.FromStd(at)), Kind: faults.LinkLoss, Link: link, Rate: rate}
}

// HostCrashAt / HostRestartAt schedule a host failure and its recovery:
// in-flight RPCs are lost, admission-controller state resets, transport
// and outstanding-RPC accounting clear, and peers tear down connections
// toward the host.
func HostCrashAt(at time.Duration, host int) FaultEvent {
	return FaultEvent{At: sim.Duration(sim.FromStd(at)), Kind: faults.HostCrash, Host: host}
}

func HostRestartAt(at time.Duration, host int) FaultEvent {
	return FaultEvent{At: sim.Duration(sim.FromStd(at)), Kind: faults.HostRestart, Host: host}
}

// HostLinkTarget names both access links (uplink and last-hop downlink)
// of host n as a fault target.
func HostLinkTarget(n int) string { return faults.Event{Kind: faults.HostCrash, Host: n}.Target() }

// ParseFaultPlan reads a plan file; see faults.ParsePlan for the format.
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.ParsePlan(r) }

// FaultPreset builds a named canonical plan ("flap", "crash",
// "flapcrash", "loss") scaled to a run of the given duration.
func FaultPreset(name string, duration time.Duration) (*FaultPlan, error) {
	return faults.Preset(name, duration)
}

// FaultPresetNames lists the built-in presets.
func FaultPresetNames() []string { return faults.PresetNames() }

// RetryParams configures client-side RPC robustness: per-attempt
// timeouts with capped exponential backoff and deterministic jitter, a
// bounded retry budget, and optional hedged duplicates on the scavenger
// class. The zero value disables everything and keeps the issue path
// identical to a build without this feature.
type RetryParams struct {
	// Timeout is the per-attempt deadline; 0 disables timeouts/retries.
	Timeout time.Duration
	// MaxRetries bounds retries after the first attempt.
	MaxRetries int
	// Backoff is the base retry delay, doubled per consecutive retry
	// (default Timeout/2). MaxBackoff caps it; 0 leaves it uncapped.
	Backoff, MaxBackoff time.Duration
	// JitterFrac adds a uniform [0, JitterFrac) fraction of the backoff,
	// drawn deterministically from the run seed.
	JitterFrac float64
	// HedgeAfter, when > 0, duplicates each still-incomplete RPC once
	// after that delay onto the scavenger class (RepFlow-style hedging);
	// the first completion wins.
	HedgeAfter time.Duration
	// HedgeMaxBytes hedges only RPCs of at most this payload size; 0
	// hedges all sizes.
	HedgeMaxBytes int64
}

// active reports whether the params enable any robustness behaviour.
func (p RetryParams) active() bool { return p.Timeout > 0 || p.HedgeAfter > 0 }

// retryPolicy converts the public params to the stack's policy. Hedges
// ride the scavenger (lowest) class so the duplicate takes an
// independent per-class connection and queue path.
func (c *SimConfig) retryPolicy() rpc.RetryPolicy {
	p := rpc.RetryPolicy{
		Timeout:    sim.FromStd(c.Retry.Timeout),
		MaxRetries: c.Retry.MaxRetries,
		Backoff:    sim.FromStd(c.Retry.Backoff),
		MaxBackoff: sim.FromStd(c.Retry.MaxBackoff),
		JitterFrac: c.Retry.JitterFrac,
		HedgeAfter: sim.FromStd(c.Retry.HedgeAfter),
		HedgeClass: qos.Class(c.levels() - 1),
	}
	if c.Retry.HedgeMaxBytes > 0 {
		p.HedgeMaxMTUs = netsim.MTUsFor(c.Retry.HedgeMaxBytes)
	}
	return p
}
