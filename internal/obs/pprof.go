package obs

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file. It is the shared
// implementation behind the -cpuprofile flag in cmd/figures and
// cmd/aequitas-sim.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after forcing a GC so
// the profile reflects live memory, the shared implementation behind the
// -memprofile flag.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// DoWorker runs f with the pprof label sweep_worker=<id> applied, so CPU
// profiles of parallel sweeps attribute samples to individual workers.
func DoWorker(id int, f func()) {
	pprof.Do(context.Background(), pprof.Labels("sweep_worker", strconv.Itoa(id)),
		func(context.Context) { f() })
}
