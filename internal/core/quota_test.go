package core

import (
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

func newServer() *QuotaServer {
	return NewQuotaServer(map[qos.Class]float64{
		qos.High:   10e9 / 8, // 10 Gbps in bytes/s
		qos.Medium: 20e9 / 8,
	})
}

func TestQuotaGrantAndCapacity(t *testing.T) {
	q := newServer()
	if err := q.Grant("tenant-a", qos.High, 5e8); err != nil {
		t.Fatal(err)
	}
	if err := q.Grant("tenant-b", qos.High, 7e8); err != nil {
		t.Fatal(err)
	}
	// Capacity is 1.25e9 B/s; 1.2e9 granted; 1e8 more must fail.
	if err := q.Grant("tenant-c", qos.High, 1e8); err == nil {
		t.Error("over-grant accepted")
	}
	if got := q.GrantedRate("tenant-a", qos.High); got != 5e8 {
		t.Errorf("GrantedRate = %v", got)
	}
	if got := q.Remaining(qos.High); got != 10e9/8-1.2e9 {
		t.Errorf("Remaining = %v", got)
	}
	// Unknown class rejected outright.
	if err := q.Grant("tenant-a", qos.Low, 1); err == nil {
		t.Error("grant on unprovisioned class accepted")
	}
	if err := q.Grant("tenant-a", qos.High, -1); err == nil {
		t.Error("negative grant accepted")
	}
}

func TestQuotaRevoke(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	q.Revoke("a", qos.High, 4e8)
	if got := q.GrantedRate("a", qos.High); got != 6e8 {
		t.Errorf("after revoke: %v", got)
	}
	// Revoking more than granted clamps to zero.
	q.Revoke("a", qos.High, 1e12)
	if got := q.GrantedRate("a", qos.High); got != 0 {
		t.Errorf("after over-revoke: %v", got)
	}
	// Revoking an unknown tenant is a no-op.
	q.Revoke("nobody", qos.High, 1)
}

func TestQuotaClientTokens(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil { // 1 MB/s
		t.Fatal(err)
	}
	c := q.Client("a")
	now := sim.Time(0)
	// Fresh bucket holds one burst: 1e6 × 0.01s = 10 KB.
	if !c.InQuotaAt(now, qos.High, 10_000) {
		t.Fatal("initial burst rejected")
	}
	if c.InQuotaAt(now, qos.High, 1_000) {
		t.Fatal("empty bucket admitted")
	}
	// After 5 ms, 5 KB of tokens accrue.
	now += 5 * sim.Millisecond
	if !c.InQuotaAt(now, qos.High, 4_000) {
		t.Error("refilled tokens rejected")
	}
	if c.InQuotaAt(now, qos.High, 4_000) {
		t.Error("tokens double spent")
	}
}

func TestQuotaClientNoGrant(t *testing.T) {
	q := newServer()
	c := q.Client("nobody")
	if c.InQuotaAt(0, qos.High, 1) {
		t.Error("tenant without grant admitted")
	}
}

func TestQuotaClientBurstCap(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	c := q.Client("a")
	c.BurstSeconds = 0.001 // 1 KB burst
	if c.InQuotaAt(sim.Time(10*sim.Second), qos.High, 5_000) {
		t.Error("burst cap not enforced after long idle")
	}
	if !c.InQuotaAt(sim.Time(10*sim.Second), qos.High, 900) {
		t.Error("within-burst request rejected")
	}
}

func TestQuotaAdmitterBypassesDraw(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	// Crush the admit probability.
	for i := 0; i < 1000; i++ {
		ctl.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	}
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	// In-quota RPCs are admitted despite p_admit at the floor.
	d := qa.Admit(1, qos.High, 1)
	if d.Downgraded || d.Class != qos.High {
		t.Fatalf("in-quota RPC not admitted: %+v", d)
	}
	if qa.InQuotaAdmits != 1 {
		t.Errorf("InQuotaAdmits = %d", qa.InQuotaAdmits)
	}
}

func TestQuotaAdmitterFallsThroughWhenExhausted(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 100); err != nil { // 100 B/s: negligible
		t.Fatal(err)
	}
	cfg := Defaults3(2*sim.Microsecond, 4*sim.Microsecond)
	cfg.Floor = 0
	s := sim.New(1)
	ctl := newCtlCfg(t, cfg, s)
	for i := 0; i < 1000; i++ {
		ctl.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	}
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	downgrades := 0
	for i := 0; i < 50; i++ {
		if d := qa.Admit(1, qos.High, 64); d.Downgraded {
			downgrades++
		}
	}
	if downgrades == 0 {
		t.Error("out-of-quota traffic bypassed the probabilistic path")
	}
}

func TestQuotaAdmitterScavengerPassThrough(t *testing.T) {
	q := newServer()
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	d := qa.Admit(1, qos.Low, 1)
	if d.Downgraded || d.Class != qos.Low {
		t.Errorf("scavenger RPC mishandled: %+v", d)
	}
}

func TestQuotaAdmitterObservePropagates(t *testing.T) {
	q := newServer()
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	qa.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	if ctl.Stats.SLOMisses != 1 {
		t.Error("Observe not propagated to the controller")
	}
}
