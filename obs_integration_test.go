package aequitas

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"aequitas/internal/obs"
)

// obsTestConfig is a small overloaded Aequitas run that exercises every
// lifecycle stage (issues, admission decisions with p_admit < 1,
// downgrades, enqueues, hops, completions).
func obsTestConfig(seed int64) SimConfig {
	return SimConfig{
		System:   SystemAequitas,
		Hosts:    4,
		Seed:     seed,
		Duration: 5 * time.Millisecond,
		Warmup:   time.Millisecond,
		SLOs: []SLO{
			{Target: 15 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.9,
			BurstLoad: 1.4,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.6, FixedBytes: 8 << 10},
				{Priority: BE, Share: 0.4, FixedBytes: 32 << 10},
			},
		}},
	}
}

// TestObsEndToEnd runs one instrumented simulation and checks the
// acceptance criterion: the NDJSON stream is schema-valid and the metrics
// CSV carries queue, admission, and transport time series.
func TestObsEndToEnd(t *testing.T) {
	var ndjson, chrome, metrics bytes.Buffer
	cfg := obsTestConfig(11)
	cfg.Obs = ObsConfig{
		TraceNDJSON: &ndjson,
		TraceChrome: &chrome,
		MetricsCSV:  &metrics,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	n, err := obs.ValidateNDJSON(bytes.NewReader(ndjson.Bytes()))
	if err != nil {
		t.Fatalf("NDJSON invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}

	// Every lifecycle stage except drop (load-dependent) must appear, and
	// per-RPC ordering must hold: issue first, complete last.
	kinds := map[string]int{}
	type bounds struct{ issue, admit, complete float64 }
	rpcs := map[uint64]*bounds{}
	for _, line := range strings.Split(strings.TrimSpace(ndjson.String()), "\n") {
		var e struct {
			TS   float64 `json:"ts_us"`
			Kind string  `json:"kind"`
			RPC  uint64  `json:"rpc"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		kinds[e.Kind]++
		b := rpcs[e.RPC]
		if b == nil {
			b = &bounds{issue: -1, admit: -1, complete: -1}
			rpcs[e.RPC] = b
		}
		switch e.Kind {
		case "issue":
			b.issue = e.TS
		case "admit":
			b.admit = e.TS
		case "complete":
			b.complete = e.TS
		}
	}
	for _, k := range []string{"issue", "admit", "enqueue", "hop", "complete"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events (kinds: %v)", k, kinds)
		}
	}
	checked := 0
	for id, b := range rpcs {
		if b.complete < 0 {
			continue // still in flight at the horizon
		}
		if b.issue < 0 || b.admit < 0 {
			t.Fatalf("rpc %d completed without issue/admit", id)
		}
		if b.issue > b.admit || b.admit > b.complete {
			t.Fatalf("rpc %d lifecycle out of order: issue %.3f admit %.3f complete %.3f",
				id, b.issue, b.admit, b.complete)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no completed RPC lifecycles to check")
	}

	// The Chrome trace is one JSON document with a traceEvents array.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("empty chrome trace")
	}

	// The metrics CSV must expose all three subsystem families.
	header := strings.SplitN(metrics.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "t_s,") {
		t.Fatalf("metrics header = %q", header)
	}
	for _, fam := range []string{"q.", "drop.", "padmit.", "incwin_us.", "cwnd.", "srtt_us."} {
		if !strings.Contains(header, ","+fam) {
			t.Errorf("metrics header missing %q columns: %q", fam, header)
		}
	}
	if rows := strings.Count(metrics.String(), "\n") - 1; rows < 10 {
		t.Errorf("metrics rows = %d, want >= 10", rows)
	}
}

// TestObsDeterministicUnderParallel: per-config observability output is
// byte-identical when a sweep runs on one worker and on GOMAXPROCS
// workers.
func TestObsDeterministicUnderParallel(t *testing.T) {
	const n = 3
	sweep := func(workers int) ([]string, []string) {
		nd := make([]bytes.Buffer, n)
		ms := make([]bytes.Buffer, n)
		_, err := Sweep(n, func(i int) SimConfig {
			cfg := obsTestConfig(int64(21 + i))
			cfg.Obs = ObsConfig{TraceNDJSON: &nd[i], MetricsCSV: &ms[i]}
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		outN := make([]string, n)
		outM := make([]string, n)
		for i := range nd {
			outN[i] = nd[i].String()
			outM[i] = ms[i].String()
		}
		return outN, outM
	}
	serialN, serialM := sweep(1)
	parN, parM := sweep(runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		if serialN[i] != parN[i] {
			t.Errorf("config %d: NDJSON differs between 1 and %d workers", i, runtime.GOMAXPROCS(0))
		}
		if serialM[i] != parM[i] {
			t.Errorf("config %d: metrics CSV differs between 1 and %d workers", i, runtime.GOMAXPROCS(0))
		}
		if serialN[i] == "" || serialM[i] == "" {
			t.Errorf("config %d: empty observability output", i)
		}
	}
}

// TestObsSchemaGolden pins the NDJSON schema: the exact per-kind required
// fields. Extending the schema is fine (update the golden); renaming or
// dropping fields breaks downstream consumers and must be deliberate.
func TestObsSchemaGolden(t *testing.T) {
	golden := map[string][]string{
		"issue":    {"src", "dst", "prio", "class", "bytes"},
		"admit":    {"src", "dst", "class", "decision", "p_admit"},
		"enqueue":  {"src", "dst", "class", "bytes"},
		"hop":      {"link", "class", "bytes", "resid_us", "qbytes"},
		"drop":     {"link", "class", "bytes"},
		"complete": {"src", "dst", "class", "bytes", "rnl_us"},
	}
	for kind, want := range golden {
		got := obs.SchemaFields(kind)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("schema for %q = %v, want %v", kind, got, want)
		}
	}
	if obs.SchemaFields("nope") != nil {
		t.Error("unknown kind has schema fields")
	}
}
