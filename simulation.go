package aequitas

import (
	"fmt"
	"io"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/scenario"
	"aequitas/internal/sim"
	"aequitas/internal/workload"
)

// SizeDist samples RPC payload sizes; see FixedSize, SizeChoice, and the
// Production* distributions.
type SizeDist = workload.SizeDist

// FixedSize returns a distribution that always yields n bytes.
func FixedSize(n int64) SizeDist { return workload.Fixed{Bytes: n} }

// SizeChoice returns a weighted mixture of fixed sizes.
func SizeChoice(sizes []int64, weights []float64) SizeDist {
	return workload.Choice{Sizes: sizes, Weights: weights}
}

// ProductionPCSizes, ProductionNCSizes and ProductionBESizes return
// production-shaped RPC size distributions following Figure 1.
func ProductionPCSizes() SizeDist { return workload.ProductionPC() }
func ProductionNCSizes() SizeDist { return workload.ProductionNC() }
func ProductionBESizes() SizeDist { return workload.ProductionBE() }

// System selects which end-to-end system the simulation runs.
type System int

const (
	// SystemBaseline is WFQ QoS with no admission control ("w/o
	// Aequitas").
	SystemBaseline System = iota
	// SystemAequitas is WFQ QoS plus the distributed admission
	// controller.
	SystemAequitas
	// SystemSPQ replaces WFQ with strict priority queuing (§6.7).
	SystemSPQ
	// SystemDWRR realises the QoS weights with deficit weighted round
	// robin instead of virtual-time WFQ.
	SystemDWRR
	// SystemPFabric is the pFabric baseline: SRPT via remaining-size
	// packet priorities and drop-least-urgent switch queues.
	SystemPFabric
	// SystemQJump is the QJump baseline: per-level host rate limits with
	// strict priority in the fabric.
	SystemQJump
	// SystemD3 is the D3 baseline: deadline-driven rate allocation with
	// early termination of hopeless RPCs.
	SystemD3
	// SystemPDQ is the PDQ baseline: preemptive earliest-deadline-first
	// scheduling with early termination.
	SystemPDQ
	// SystemHoma is the Homa baseline: receiver-driven grants with SRPT
	// priorities.
	SystemHoma
)

func (s System) String() string {
	switch s {
	case SystemBaseline:
		return "baseline"
	case SystemAequitas:
		return "aequitas"
	case SystemSPQ:
		return "spq"
	case SystemDWRR:
		return "dwrr"
	case SystemPFabric:
		return "pfabric"
	case SystemQJump:
		return "qjump"
	case SystemD3:
		return "d3"
	case SystemPDQ:
		return "pdq"
	case SystemHoma:
		return "homa"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Arrival selects the arrival process.
type Arrival int

const (
	// ArrivalPoisson uses exponential inter-arrival times (default).
	ArrivalPoisson Arrival = iota
	// ArrivalPeriodic uses deterministic spacing ("issue at line rate").
	ArrivalPeriodic
)

// TrafficClass describes one priority class's stream within a host's
// offered traffic.
type TrafficClass struct {
	Priority Priority
	// Share is the class's fraction of the host's offered bytes (the
	// input QoS-mix entry).
	Share float64
	// Size draws payload sizes; FixedBytes is a convenience alternative.
	Size       SizeDist
	FixedBytes int64
	// Deadline, when set, stamps RPCs with issue-time+Deadline for the
	// deadline-aware baselines.
	Deadline time.Duration
}

// HostTraffic assigns an offered-traffic specification to a set of
// sending hosts.
type HostTraffic struct {
	// Hosts lists sender host ids; nil means every host.
	Hosts []int
	// Dsts lists destination ids chosen uniformly per RPC; nil means
	// all-to-all (every other host).
	Dsts []int
	// Pattern, when set, generates the sender→destination matrix instead
	// of Hosts/Dsts (which must then stay nil). See UniformPattern,
	// IncastPattern, PermutationPattern and HotspotPattern.
	Pattern TrafficPattern
	// AvgLoad is µ, the mean offered load as a fraction of the link
	// rate. BurstLoad is ρ; when > AvgLoad the Figure 7 burst/idle
	// modulation is applied.
	AvgLoad, BurstLoad float64
	// Shape, when set, scales AvgLoad over simulated time (load steps,
	// ramps, on/off cycles); nil keeps the load constant. See
	// ConstantLoad, StepLoad, RampLoad and OnOffLoad.
	Shape LoadShape
	// Arrival selects Poisson (default) or Periodic arrivals.
	Arrival Arrival
	Classes []TrafficClass
}

// AdmissionParams tunes the Aequitas controller in a simulation.
type AdmissionParams struct {
	// Alpha, Beta, Floor default to 0.01 / 0.01 / 0.01 (§6.1).
	Alpha, Beta, Floor float64
	// Ablation switches; see the core package.
	NoIncrementWindow      bool
	NoSizeScaledMD         bool
	DropInsteadOfDowngrade bool
}

// Probe requests a time series of the admit probability and achieved
// goodput for one (src, dst, class) channel — the instrumentation behind
// Figures 17, 18, 28 and 29.
type Probe struct {
	Src, Dst int
	Class    Class
}

// SimConfig configures one simulation run.
type SimConfig struct {
	// System selects the end-to-end system (default SystemBaseline).
	System System
	// Hosts is the number of end hosts (≥ 2).
	Hosts int
	// Leaves and Spines, when non-zero, build a two-tier leaf-spine
	// fabric instead of the default single switch; hosts spread evenly
	// across leaves and overload can then occur in the core
	// (oversubscribe with SpineLinkRate below the host LinkRate or with
	// few spines).
	Leaves, Spines int
	// SpineLinkRate in bits/second (default: LinkRate).
	SpineLinkRate int64
	// LinkRate in bits/second (default 100 Gbps).
	LinkRate int64
	// PropDelay per link (default 500 ns).
	PropDelay time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Duration is the simulated time to run; Warmup (default 20% of
	// Duration) is excluded from all statistics.
	Duration, Warmup time.Duration
	// QoSWeights are the WFQ weights, highest class first (default
	// 8:4:1).
	QoSWeights []float64
	// PerClassBufferBytes bounds each switch-port class queue (default
	// 2 MiB; negative = unlimited, used for theory validation).
	PerClassBufferBytes int
	// SLOs per class, highest first, for every class except the lowest.
	// Required when System is SystemAequitas; optional otherwise (used
	// only for reporting SLO-met fractions).
	SLOs []SLO
	// Admission tunes the controller (SystemAequitas only).
	Admission AdmissionParams
	// Traffic is the offered workload (required).
	Traffic []HostTraffic
	// CCTarget is the Swift delay target (default 10 µs). DisableCC
	// replaces Swift with a fixed window of FixedWindow packets
	// (default 64).
	CCTarget    time.Duration
	DisableCC   bool
	FixedWindow float64
	// RTOMin floors the retransmission timeout (default 100 µs).
	RTOMin time.Duration
	// BurstPeriod is the Figure 7 modulation period (default 100 µs).
	BurstPeriod time.Duration
	// Probes request admit-probability/goodput series.
	Probes []Probe
	// SampleEvery sets the probe/outstanding sampling interval (default
	// 100 µs).
	SampleEvery time.Duration
	// TrackOutstanding samples per-switch-port outstanding RPC counts
	// (Figure 13).
	TrackOutstanding bool
	// MaxRNLSamples, when > 0, switches each per-class RNL series from
	// exact retained observations to a fixed-memory log-linear histogram:
	// Sum/Mean/N/Min/Max stay exact at any Duration while quantiles carry
	// a deterministic ≤1% relative-error bound (see stats.NewHistSample).
	// 0 keeps every observation (exact quantiles). The histogram needs no
	// RNG, so bounded runs are deterministic regardless of the value.
	MaxRNLSamples int
	// TraceWriter, when set, receives one CSV record per completed RPC
	// in the measurement window (header: complete_s, src, dst, priority,
	// requested, ran, downgraded, decision, p_admit, bytes, rnl_us) for
	// external analysis. Wrap the destination in a CSVTrace to keep the
	// header to exactly one line when the sink outlives a retried run.
	TraceWriter io.Writer
	// Obs configures the observability layer: RPC-lifecycle tracing
	// (NDJSON / Chrome trace-event) and periodic metrics sampling. The
	// zero value disables it with no hot-path cost.
	Obs ObsConfig

	// Faults, when non-nil and non-empty, injects a deterministic fault
	// plan into the run — link down/up, per-link random loss, host
	// crash/restart — and populates the degradation metrics in Results.
	// nil or an empty plan leaves every code path identical to a run
	// without fault support. Plans may be shared across sweep configs;
	// they are never mutated.
	Faults *FaultPlan
	// Retry configures client-side RPC robustness (timeouts, capped
	// exponential backoff with deterministic jitter, a retry budget,
	// optional hedged duplicates). The zero value disables it.
	Retry RetryParams

	// resolved is the traffic matrix after applyDefaults: one entry per
	// (Traffic entry, pattern assignment) pair, with destination slices
	// shared across senders.
	resolved []resolvedTraffic
}

// resolvedTraffic is one validated sender→destination assignment.
type resolvedTraffic struct {
	traffic     int // index into SimConfig.Traffic
	hosts       []int
	dsts        []int
	weights     []float64
	excludeSelf bool
}

func (c *SimConfig) applyDefaults() error {
	if c.Hosts < 2 {
		return fmt.Errorf("aequitas: need ≥ 2 hosts")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("aequitas: Duration required")
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 5
	}
	if c.Warmup >= c.Duration {
		return fmt.Errorf("aequitas: warmup %v ≥ duration %v", c.Warmup, c.Duration)
	}
	if c.LinkRate == 0 {
		c.LinkRate = 100e9
	}
	if c.PropDelay == 0 {
		c.PropDelay = 500 * time.Nanosecond
	}
	if len(c.QoSWeights) == 0 {
		c.QoSWeights = []float64{8, 4, 1}
	}
	if err := qos.Weights(c.QoSWeights).Validate(); err != nil {
		return err
	}
	if c.PerClassBufferBytes == 0 {
		c.PerClassBufferBytes = 2 << 20
	}
	if c.PerClassBufferBytes < 0 {
		c.PerClassBufferBytes = 0 // unlimited
	}
	if c.System == SystemAequitas && len(c.SLOs) == 0 {
		return fmt.Errorf("aequitas: SystemAequitas requires SLOs")
	}
	if len(c.SLOs) >= len(c.QoSWeights) {
		return fmt.Errorf("aequitas: %d SLOs for %d QoS levels (the lowest class has no SLO)", len(c.SLOs), len(c.QoSWeights))
	}
	if len(c.Traffic) == 0 {
		return fmt.Errorf("aequitas: Traffic required")
	}
	if _, err := scenario.Lookup(c.System.String()); err != nil {
		return fmt.Errorf("aequitas: %w", err)
	}
	if err := c.resolveTraffic(); err != nil {
		return err
	}
	if c.CCTarget == 0 {
		c.CCTarget = 10 * time.Microsecond
	}
	if c.FixedWindow == 0 {
		c.FixedWindow = 64
	}
	if c.RTOMin == 0 {
		c.RTOMin = 100 * time.Microsecond
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 100 * time.Microsecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 100 * time.Microsecond
	}
	if a := &c.Admission; true {
		if a.Alpha == 0 {
			a.Alpha = 0.01
		}
		if a.Beta == 0 {
			a.Beta = 0.01
		}
		if a.Floor == 0 {
			a.Floor = 0.01
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("aequitas: %w", err)
	}
	if r := c.Retry; r.Timeout < 0 || r.MaxRetries < 0 || r.Backoff < 0 ||
		r.MaxBackoff < 0 || r.HedgeAfter < 0 || r.HedgeMaxBytes < 0 {
		return fmt.Errorf("aequitas: Retry fields must be non-negative")
	}
	if f := c.Retry.JitterFrac; f < 0 || f >= 1 {
		return fmt.Errorf("aequitas: Retry.JitterFrac %v out of [0, 1)", f)
	}
	return nil
}

// resolveTraffic validates every Traffic entry and expands it into
// concrete sender→destination assignments, up front, so an out-of-range
// host id or a bad pattern fails before the fabric is built and the
// error names the offending entry. The all-to-all default shares one id
// slice across all senders (with self excluded at draw time) instead of
// materialising an "everyone but me" copy per host.
func (c *SimConfig) resolveTraffic() error {
	all := scenario.AllHosts(c.Hosts)
	c.resolved = c.resolved[:0]
	for i := range c.Traffic {
		ht := &c.Traffic[i]
		if ht.Pattern != nil {
			if ht.Hosts != nil || ht.Dsts != nil {
				return fmt.Errorf("aequitas: traffic entry %d: Pattern and explicit Hosts/Dsts are mutually exclusive", i)
			}
			as, err := ht.Pattern.Expand(c.Hosts)
			if err != nil {
				return fmt.Errorf("aequitas: traffic entry %d: %w", i, err)
			}
			for _, a := range as {
				c.resolved = append(c.resolved, resolvedTraffic{
					traffic: i, hosts: a.Hosts, dsts: a.Dsts,
					weights: a.Weights, excludeSelf: a.ExcludeSelf,
				})
			}
			continue
		}
		rt := resolvedTraffic{traffic: i, hosts: ht.Hosts, dsts: ht.Dsts}
		if rt.hosts == nil {
			rt.hosts = all
		}
		for _, h := range ht.Hosts {
			if h < 0 || h >= c.Hosts {
				return fmt.Errorf("aequitas: traffic entry %d: host %d out of range [0,%d)", i, h, c.Hosts)
			}
		}
		for _, d := range ht.Dsts {
			if d < 0 || d >= c.Hosts {
				return fmt.Errorf("aequitas: traffic entry %d: destination %d out of range [0,%d)", i, d, c.Hosts)
			}
		}
		if rt.dsts == nil {
			// All-to-all: every sender draws from the full id slice with
			// itself excluded at draw time.
			rt.dsts = all
			rt.excludeSelf = true
		}
		c.resolved = append(c.resolved, rt)
	}
	return nil
}

// levels reports the number of QoS classes.
func (c *SimConfig) levels() int { return len(c.QoSWeights) }

// coreConfig builds the Algorithm 1 configuration from the public SLOs.
func (c *SimConfig) coreConfig() core.Config {
	n := c.levels()
	cc := core.Config{
		Levels:            n,
		LatencyTargets:    make([]sim.Duration, n),
		TargetPercentiles: make([]float64, n),
		Alpha:             c.Admission.Alpha,
		Beta:              c.Admission.Beta,
		Floor:             c.Admission.Floor,

		NoIncrementWindow:      c.Admission.NoIncrementWindow,
		NoSizeScaledMD:         c.Admission.NoSizeScaledMD,
		DropInsteadOfDowngrade: c.Admission.DropInsteadOfDowngrade,
	}
	for i, s := range c.SLOs {
		cc.LatencyTargets[i] = s.perMTU()
		cc.TargetPercentiles[i] = s.Percentile
		if cc.TargetPercentiles[i] == 0 {
			cc.TargetPercentiles[i] = 99.9
		}
	}
	return cc
}

// schedFactory returns the switch scheduler builder for the system, as
// registered in the scenario registry.
func (c *SimConfig) schedFactory() netsim.SchedulerFactory {
	b, err := scenario.Lookup(c.System.String())
	if err != nil {
		// applyDefaults validates the system name; an unknown system here
		// means schedFactory was called on an unvalidated config.
		panic(err)
	}
	return b.Scheduler(c.QoSWeights, c.PerClassBufferBytes)
}
