package flight

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"aequitas/internal/sim"
)

// keepAll disables sampling so tests can count records exactly.
func keepAll() Config { return Config{Records: 1 << 12, SampleAdmits: 1} }

func TestNilRingNoOps(t *testing.T) {
	var r *Ring
	r.Decision(0, 0, 0, 0, 0, VerdictAdmit, 1, 1)
	r.Complete(0, 0, 0, 0, VerdictSLOMiss, 0.5, 1, 10)
	r.QuotaBypassDecision(0, 0, 0, 0, 1)
	if got := r.Snapshot(true); got != nil {
		t.Fatalf("nil ring snapshot = %v, want nil", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil ring stats = %+v, want zero", st)
	}
	if r.Cap() != 0 {
		t.Fatalf("nil ring cap = %d", r.Cap())
	}
}

func TestRingRecordsAndSnapshotOrder(t *testing.T) {
	r := NewRing(keepAll())
	// Record out of timestamp order across channels; the snapshot must
	// come back time-sorted.
	r.Decision(3*sim.Microsecond, 0, 2, 0, 0, VerdictAdmit, 0.9, 1)
	r.Decision(1*sim.Microsecond, 0, 1, 0, 2, VerdictDowngrade, 0.3, 1)
	r.Complete(2*sim.Microsecond, 0, 1, 0, VerdictSLOMiss, 0.29, 1, 42.5)
	recs := r.Snapshot(false)
	if len(recs) != 3 {
		t.Fatalf("snapshot has %d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TS < recs[i-1].TS {
			t.Fatalf("snapshot out of order at %d: %v before %v", i, recs[i].TS, recs[i-1].TS)
		}
	}
	if recs[0].Verdict != VerdictDowngrade || recs[1].Verdict != VerdictSLOMiss || recs[2].Verdict != VerdictAdmit {
		t.Fatalf("unexpected verdict order: %v %v %v", recs[0].Verdict, recs[1].Verdict, recs[2].Verdict)
	}
	if recs[1].LatencyUS != 42.5 {
		t.Fatalf("completion latency = %v, want 42.5", recs[1].LatencyUS)
	}
	// Snapshot(false) preserves the ring.
	if again := r.Snapshot(false); len(again) != 3 {
		t.Fatalf("second snapshot has %d records, want 3", len(again))
	}
	// Snapshot(true) resets it.
	if _ = r.Snapshot(true); len(r.Snapshot(false)) != 0 {
		t.Fatal("ring not empty after reset snapshot")
	}
	st := r.Stats()
	if st.Offered != 3 || st.SampledOut != 0 {
		t.Fatalf("stats = %+v, want 3 offered, 0 sampled", st)
	}
}

func TestRingWrapKeepsLatest(t *testing.T) {
	r := NewRing(Config{Records: 64, Shards: 1, SampleAdmits: 1})
	n := 10 * r.Cap()
	for i := 0; i < n; i++ {
		r.Decision(sim.Time(i)*sim.Microsecond, 0, 0, 0, 0, VerdictAdmit, 1, 1)
	}
	recs := r.Snapshot(false)
	if len(recs) != r.Cap() {
		t.Fatalf("wrapped ring holds %d records, want %d", len(recs), r.Cap())
	}
	// The survivors are the newest capacity records.
	if got, want := recs[0].TS, sim.Time(n-r.Cap())*sim.Microsecond; got != want {
		t.Fatalf("oldest surviving record at %v, want %v", got, want)
	}
}

func TestAdaptiveSamplingKeepsAnomalies(t *testing.T) {
	r := NewRing(Config{Records: 1 << 16, SampleAdmits: 8})
	const n = 4096
	for i := 0; i < n; i++ {
		r.Decision(sim.Time(i), 0, int32(i%7), 0, 0, VerdictAdmit, 1, 1)
		r.Decision(sim.Time(i), 0, int32(i%7), 0, 2, VerdictDowngrade, 0.2, 1)
		r.Complete(sim.Time(i), 0, int32(i%7), 0, VerdictSLOMiss, 0.19, 1, 99)
	}
	recs := r.Snapshot(false)
	var admits, downs, misses int
	for _, rec := range recs {
		switch rec.Verdict {
		case VerdictAdmit:
			admits++
		case VerdictDowngrade:
			downs++
		case VerdictSLOMiss:
			misses++
		}
	}
	if downs != n || misses != n {
		t.Fatalf("anomalous records sampled out: %d downgrades, %d misses, want %d each", downs, misses, n)
	}
	if admits == 0 || admits >= n/2 {
		t.Fatalf("admit sampling kept %d of %d, want roughly 1 in 8", admits, n)
	}
	st := r.Stats()
	if st.SampledOut != uint64(n-admits) {
		t.Fatalf("sampled_out = %d, want %d", st.SampledOut, n-admits)
	}
	if st.Offered != 3*n {
		t.Fatalf("offered = %d, want %d", st.Offered, 3*n)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	run := func() []Record {
		r := NewRing(Config{Records: 1 << 12, SampleAdmits: 8})
		for i := 0; i < 1000; i++ {
			r.Decision(sim.Time(i), 1, int32(i%5), 0, 0, VerdictAdmit, 0.8, 1)
		}
		return r.Snapshot(false)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs kept %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical runs", i)
		}
	}
}

func TestQuotaBypassAlwaysKept(t *testing.T) {
	r := NewRing(Config{Records: 1 << 12, SampleAdmits: 1 << 30})
	for i := 0; i < 100; i++ {
		r.QuotaBypassDecision(sim.Time(i), 0, 3, 0, 1)
	}
	recs := r.Snapshot(false)
	if len(recs) != 100 {
		t.Fatalf("kept %d quota bypass records, want 100", len(recs))
	}
	for _, rec := range recs {
		if rec.Quota != QuotaBypass || rec.Verdict != VerdictAdmit {
			t.Fatalf("quota record = %+v", rec)
		}
	}
}

// TestRecordPathNoAllocs pins the tentpole's core budget: recording a
// decision or completion allocates nothing.
func TestRecordPathNoAllocs(t *testing.T) {
	r := NewRing(Config{Records: 1 << 14})
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		r.Decision(sim.Time(i), 0, int32(i&7), 0, 0, VerdictAdmit, 1, 1)
		r.Complete(sim.Time(i), 0, int32(i&7), 0, VerdictSLOMiss, 0.5, 1, 10)
		i++
	}); n != 0 {
		t.Fatalf("record path allocates %v per op, want 0", n)
	}
}

// TestRingConcurrent exercises concurrent recorders against concurrent
// snapshots under -race. The ring is sized far above the written volume
// so no writer can lap another.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(Config{Records: 1 << 16, SampleAdmits: 1})
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Decision(sim.Time(i), int32(w), int32(i%9), 0, 0, VerdictDowngrade, 0.4, 1)
				if i%3 == 0 {
					r.Complete(sim.Time(i), int32(w), int32(i%9), 0, VerdictSLOMiss, 0.39, 1, 5)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot(false)
		}
	}()
	wg.Wait()
	<-done
	st := r.Stats()
	want := uint64(writers * (perWriter + (perWriter+2)/3))
	if st.Offered != want {
		t.Fatalf("offered = %d, want %d", st.Offered, want)
	}
	// Every record either landed, was sampled out (none: SampleAdmits 1,
	// all anomalous), or arrived during a freeze.
	recs := r.Snapshot(false)
	if uint64(len(recs))+st.DroppedFrozen != want {
		t.Fatalf("records %d + dropped %d != offered %d", len(recs), st.DroppedFrozen, want)
	}
}

// TestRingConcurrentSnapshots pins the fix for snapshots racing each
// other: /debug/flight can be hit from several HTTP requests while the
// anomaly engine fires, so Snapshot must serialize internally — without
// that, the first snapshot to finish unfreezes the ring while another is
// still copying (or resetting seq, letting two writers claim one slot;
// formerly a confirmed -race failure).
func TestRingConcurrentSnapshots(t *testing.T) {
	r := NewRing(Config{Records: 1 << 8, SampleAdmits: 1})
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Decision(sim.Time(i), int32(w), int32(i%9), 0, 0, VerdictDowngrade, 0.4, 1)
			}
		}(w)
	}
	var sg sync.WaitGroup
	for s := 0; s < 4; s++ {
		sg.Add(1)
		go func(s int) {
			defer sg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Snapshot(s%2 == 0)
			}
		}(s)
	}
	sg.Wait()
	close(stop)
	wg.Wait()
	// The ring must still be coherent after the churn: a quiescent
	// snapshot holds at most one record per slot.
	if got, c := len(r.Snapshot(false)), r.Cap(); got > c {
		t.Fatalf("quiescent snapshot holds %d records, capacity %d", got, c)
	}
}

func TestDumpWriteValidateRoundTrip(t *testing.T) {
	r := NewRing(keepAll())
	r.Decision(1*sim.Microsecond, 0, 1, 0, 0, VerdictAdmit, 0.95, 1)
	r.Decision(2*sim.Microsecond, 0, 1, 0, 2, VerdictDowngrade, 0.3, 4)
	r.Complete(3*sim.Microsecond, 0, 1, 0, VerdictSLOMiss, 0.29, 4, 123.4)
	r.QuotaBypassDecision(4*sim.Microsecond, 0, 2, 1, 2)

	var buf bytes.Buffer
	meta := Meta{
		Trigger:  Trigger{Kind: TriggerBurnRate, At: 5 * sim.Microsecond, Detail: "test"},
		Label:    "unit",
		PeerName: func(p int32) string { return map[int32]string{1: "checkout"}[p] },
	}
	if err := DumpTo(&buf, r, meta, true); err != nil {
		t.Fatal(err)
	}
	// Second dump on the same stream, post-reset.
	r.Complete(6*sim.Microsecond, 0, 2, 1, VerdictSLOMet, 1, 1, 7)
	if err := DumpTo(&buf, r, Meta{Trigger: Trigger{Kind: TriggerFinal, At: 7 * sim.Microsecond}}, false); err != nil {
		t.Fatal(err)
	}

	dumps, records, err := ValidateDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, buf.String())
	}
	if dumps != 2 || records != 5 {
		t.Fatalf("validated %d dumps / %d records, want 2 / 5", dumps, records)
	}
	if !strings.Contains(buf.String(), `"peer_name":"checkout"`) {
		t.Fatal("peer name not resolved in dump")
	}
	if !strings.Contains(buf.String(), `"quota":"bypass"`) {
		t.Fatal("quota bypass not marked in dump")
	}

	sum, err := Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Dumps) != 2 || sum.Records != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.ByVerdict["downgrade"] != 1 || sum.ByVerdict["slo_miss"] != 1 || sum.ByVerdict["admit"] != 2 {
		t.Fatalf("verdict totals = %v", sum.ByVerdict)
	}
	if sum.MinPAdmit != 0.29 {
		t.Fatalf("min p_admit = %v, want 0.29", sum.MinPAdmit)
	}
	if sum.MaxLatUS != 123.4 {
		t.Fatalf("max lat = %v, want 123.4", sum.MaxLatUS)
	}
}

func TestValidateDumpRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema":"nope","trigger":"final","ts_us":0,"records":0,"offered":0,"sampled_out":0,"dropped_frozen":0}`,
		"bad trigger":  `{"schema":"aequitas.flight/v1","trigger":"gremlin","ts_us":0,"records":0,"offered":0,"sampled_out":0,"dropped_frozen":0}`,
		"truncated": `{"schema":"aequitas.flight/v1","trigger":"final","ts_us":0,"records":2,"offered":2,"sampled_out":0,"dropped_frozen":0}
{"seq":0,"ts_us":1,"kind":"decision","verdict":"admit","src":0,"peer":0,"req":0,"class":0,"p_admit":1,"size_mtus":1}`,
		"retention violated": `{"schema":"aequitas.flight/v1","trigger":"final","ts_us":0,"records":1,"offered":0,"sampled_out":0,"dropped_frozen":0}
{"seq":0,"ts_us":1,"kind":"decision","verdict":"admit","src":0,"peer":0,"req":0,"class":0,"p_admit":1,"size_mtus":1}`,
		"time travel": `{"schema":"aequitas.flight/v1","trigger":"final","ts_us":0,"records":2,"offered":2,"sampled_out":0,"dropped_frozen":0}
{"seq":0,"ts_us":5,"kind":"decision","verdict":"admit","src":0,"peer":0,"req":0,"class":0,"p_admit":1,"size_mtus":1}
{"seq":1,"ts_us":4,"kind":"decision","verdict":"admit","src":0,"peer":0,"req":0,"class":0,"p_admit":1,"size_mtus":1}`,
		"mixed verdict": `{"schema":"aequitas.flight/v1","trigger":"final","ts_us":0,"records":1,"offered":1,"sampled_out":0,"dropped_frozen":0}
{"seq":0,"ts_us":1,"kind":"decision","verdict":"slo_miss","src":0,"peer":0,"req":0,"class":0,"p_admit":1,"size_mtus":1}`,
		"bad probability": `{"schema":"aequitas.flight/v1","trigger":"final","ts_us":0,"records":1,"offered":1,"sampled_out":0,"dropped_frozen":0}
{"seq":0,"ts_us":1,"kind":"decision","verdict":"admit","src":0,"peer":0,"req":0,"class":0,"p_admit":1.5,"size_mtus":1}`,
	}
	for name, in := range cases {
		if _, _, err := ValidateDump(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestCaptureProfiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := CaptureProfiles(dir, "trig")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d profiles, want 2", len(paths))
	}
}
