package workload

import (
	"aequitas/internal/sim"
)

// LoadShape varies a generator's offered load over simulated time. The
// generator multiplies each class's instantaneous arrival rate by the
// factor in effect when the next arrival is scheduled, so offered load
// tracks the shape at per-arrival granularity. A nil shape means constant
// load (factor 1) with zero scheduling overhead — the default path draws
// exactly the same random sequence as before shapes existed.
type LoadShape interface {
	// FactorAt returns the load multiplier in effect at t and the time at
	// which the factor may next change. The change time is consulted only
	// when the factor is ≤ 0, to resume a paused stream; shapes that never
	// pause may return sim.MaxTime.
	FactorAt(t sim.Time) (f float64, until sim.Time)
}

// Constant offers load at the base rate forever — the explicit form of a
// nil shape.
type Constant struct{}

// FactorAt implements LoadShape.
func (Constant) FactorAt(sim.Time) (float64, sim.Time) { return 1, sim.MaxTime }

// Step multiplies the offered load by Factor from time At onward — the
// load-step convergence scenario (§5.3): the admit probability must drop
// and re-stabilise after the step.
type Step struct {
	At     sim.Time
	Factor float64
}

// FactorAt implements LoadShape.
func (sh Step) FactorAt(t sim.Time) (float64, sim.Time) {
	if t < sh.At {
		return 1, sh.At
	}
	return sh.Factor, sim.MaxTime
}

// Ramp interpolates the load multiplier linearly from 1 at From to Factor
// at To, holding Factor afterwards.
type Ramp struct {
	From, To sim.Time
	Factor   float64
}

// FactorAt implements LoadShape.
func (sh Ramp) FactorAt(t sim.Time) (float64, sim.Time) {
	switch {
	case t < sh.From:
		return 1, sh.From
	case t >= sh.To || sh.To <= sh.From:
		return sh.Factor, sim.MaxTime
	default:
		frac := float64(t-sh.From) / float64(sh.To-sh.From)
		return 1 + frac*(sh.Factor-1), sh.To
	}
}

// OnOff gates the load with a square wave: full load for the first
// Duty fraction of every Period, silence for the rest. Duty outside
// (0, 1) degenerates to always-on.
type OnOff struct {
	Period sim.Duration
	Duty   float64
}

// FactorAt implements LoadShape.
func (sh OnOff) FactorAt(t sim.Time) (float64, sim.Time) {
	if sh.Period <= 0 || sh.Duty <= 0 || sh.Duty >= 1 {
		return 1, sim.MaxTime
	}
	offset := t % sh.Period
	on := sim.Duration(float64(sh.Period) * sh.Duty)
	if offset < on {
		return 1, t - offset + on
	}
	return 0, t - offset + sh.Period
}
