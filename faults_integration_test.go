package aequitas

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"aequitas/internal/sim"
)

// faultTestConfig is obsTestConfig plus a shared fault plan and a retry
// policy, the smallest run that exercises the whole chaos path: blackhole,
// crash, timeouts, retries, and degradation metrics.
func faultTestConfig(seed int64, plan *FaultPlan) SimConfig {
	cfg := obsTestConfig(seed)
	cfg.Faults = plan
	cfg.Retry = RetryParams{Timeout: 300 * time.Microsecond, MaxRetries: 2}
	return cfg
}

// TestFaultDeterministicUnderParallel is the tentpole's golden criterion:
// with a fault plan active, sweeping the same configs on 1, 4, and 8
// workers produces byte-identical attribution CSVs and identical fault
// records. The plan pointer is deliberately shared across all sweep
// entries — injection must never mutate it.
func TestFaultDeterministicUnderParallel(t *testing.T) {
	plan, err := FaultPreset("flapcrash", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	type golden struct {
		csv     []string
		faults  [][]FaultRecord
		counter []int64
	}
	sweep := func(workers int) golden {
		systems := []System{SystemAequitas, SystemBaseline}
		bufs := make([]bytes.Buffer, len(systems))
		res, err := Sweep(len(systems), func(i int) SimConfig {
			cfg := faultTestConfig(7, plan)
			cfg.System = systems[i]
			cfg.Obs.AttributionCSV = &bufs[i]
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		g := golden{}
		for i := range systems {
			g.csv = append(g.csv, bufs[i].String())
			g.faults = append(g.faults, res[i].Faults)
			g.counter = append(g.counter,
				res[i].TimedOut, res[i].Retried, res[i].FailedRPCs,
				res[i].CrashLostRPCs, res[i].NotIssuedRPCs, res[i].Completed)
		}
		return g
	}
	ref := sweep(1)
	for i, c := range ref.csv {
		if c == "" {
			t.Fatalf("config %d: empty attribution CSV", i)
		}
	}
	if len(ref.faults[0]) == 0 {
		t.Fatal("no fault records despite an active plan")
	}
	for _, workers := range []int{4, 8} {
		got := sweep(workers)
		for i := range ref.csv {
			if got.csv[i] != ref.csv[i] {
				t.Errorf("config %d: attribution CSV differs between 1 and %d workers", i, workers)
			}
		}
		if !reflect.DeepEqual(got.faults, ref.faults) {
			t.Errorf("fault records differ between 1 and %d workers", workers)
		}
		if !reflect.DeepEqual(got.counter, ref.counter) {
			t.Errorf("robustness counters differ between 1 and %d workers:\n 1: %v\n%2d: %v",
				workers, ref.counter, workers, got.counter)
		}
	}
}

// TestEmptyFaultPlanIsNoOp: an empty (but non-nil) plan must take exactly
// the pre-fault code path — byte-identical attribution output and
// identical results to a nil plan, with no robustness counters touched.
func TestEmptyFaultPlanIsNoOp(t *testing.T) {
	run := func(plan *FaultPlan) (string, *Results) {
		var csv bytes.Buffer
		cfg := obsTestConfig(7)
		cfg.Faults = plan
		cfg.Obs.AttributionCSV = &csv
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return csv.String(), res
	}
	nilCSV, nilRes := run(nil)
	emptyCSV, emptyRes := run(&FaultPlan{})
	if nilCSV != emptyCSV {
		t.Error("attribution CSV differs between nil and empty fault plans")
	}
	if nilRes.Completed != emptyRes.Completed || nilRes.GoodputFraction != emptyRes.GoodputFraction {
		t.Errorf("results differ: nil (%d, %g) vs empty (%d, %g)",
			nilRes.Completed, nilRes.GoodputFraction, emptyRes.Completed, emptyRes.GoodputFraction)
	}
	for _, res := range []*Results{nilRes, emptyRes} {
		if len(res.Faults) != 0 || res.GoodputAvailability != 0 {
			t.Error("degradation metrics populated without a fault plan")
		}
		if res.TimedOut != 0 || res.Retried != 0 || res.CrashLostRPCs != 0 {
			t.Error("robustness counters touched without retry policy or faults")
		}
	}
}

// TestFaultRecoveryConvergence is the figure's claim as a regression test,
// on a smaller fabric: after a link flap and after a host crash/restart,
// the Aequitas probe's p_admit toward the faulted host must come back
// within 10% of its pre-fault mean before the run ends, and the QoS-bound
// auditor must stay clean outside the fault windows.
func TestFaultRecoveryConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-ms fault-recovery horizon")
	}
	const horizon = 50 * time.Millisecond
	plan := &FaultPlan{Events: []FaultEvent{
		LinkDownAt(horizon/5, HostLinkTarget(1)),
		LinkUpAt(horizon/5+1500*time.Microsecond, HostLinkTarget(1)),
		HostCrashAt(horizon/2, 1),
		HostRestartAt(horizon/2+2*time.Millisecond, 1),
	}}
	cfg := SimConfig{
		System: SystemAequitas, Hosts: 8, Seed: 1,
		Duration: horizon, Warmup: horizon / 8,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []SLO{
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 90},
			{Target: 100 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 80},
		},
		Admission: AdmissionParams{Alpha: 0.05, Beta: 0.01, Floor: 0.08},
		Traffic: []HostTraffic{{
			AvgLoad: 0.5, BurstLoad: 0.9,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.5, FixedBytes: 32 << 10},
				{Priority: NC, Share: 0.3, FixedBytes: 32 << 10},
				{Priority: BE, Share: 0.2, FixedBytes: 32 << 10},
			},
		}},
		Probes:      []Probe{{Src: 0, Dst: 1, Class: High}},
		SampleEvery: horizon / 800,
		Faults:      plan,
		Retry:       RetryParams{Timeout: time.Millisecond, MaxRetries: 2},
	}
	// Audit against loose explicit bounds (the derived calculus bounds
	// assume an admissible share mix this chaos scenario doesn't claim):
	// ordinary congestion at this load stays well inside them, while a
	// 1.5ms blackhole's queue residencies exceed them by an order of
	// magnitude, so any fault leakage outside the windows would be caught.
	cfg.Obs.Audit = true
	cfg.Obs.AuditBoundsUS = []float64{100, 200}
	cfg.Obs.AuditSlackUS = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	onsets := 0
	for _, f := range res.Faults {
		if !f.Onset() {
			continue
		}
		onsets++
		if len(f.PAdmitRecoveryS) != 1 {
			t.Fatalf("fault %s: %d recovery entries, want 1 per probe", f.Event, len(f.PAdmitRecoveryS))
		}
		r := f.PAdmitRecoveryS[0]
		if math.IsNaN(r) {
			t.Errorf("%s at %.1fms: p_admit never re-converged to the pre-fault mean", f.Event, 1e3*f.TimeS)
		} else if r <= 0 {
			t.Errorf("%s: non-positive recovery time %g", f.Event, r)
		}
	}
	if onsets != 2 {
		t.Fatalf("recorded %d fault onsets, want 2 (linkdown, crash)", onsets)
	}
	if res.GoodputAvailability <= 0 || res.GoodputAvailability > 1 {
		t.Errorf("GoodputAvailability = %g", res.GoodputAvailability)
	}

	// The auditor may flag queueing during the outages (paused egress
	// queues legitimately hold packets for the whole blackhole) and
	// during the recovery transient just after, but the rest of the run
	// must respect the calculus bounds.
	if res.Audit == nil {
		t.Fatal("no audit report")
	}
	margin := sim.FromStd(5 * time.Millisecond)
	windows := plan.Windows()
	for _, v := range res.Audit.Violations {
		at := sim.FromMicros(v.TimeUS)
		inFault := false
		for _, w := range windows {
			if w.Contains(at, margin) {
				inFault = true
				break
			}
		}
		if !inFault {
			t.Errorf("audit violation outside fault windows: %+v", v)
		}
	}
}

// TestChaosFlapCrashSmoke is the CI chaos gate (run under -race): a seeded
// flap+crash preset with retries and hedging enabled must complete, emit
// fault records, and keep its degradation accounting self-consistent.
func TestChaosFlapCrashSmoke(t *testing.T) {
	plan, err := FaultPreset("flapcrash", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultTestConfig(3, plan)
	cfg.Retry.HedgeAfter = 500 * time.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed under the chaos plan")
	}
	if len(res.Faults) != 4 {
		t.Errorf("fault records = %d, want 4 (down, up, crash, restart)", len(res.Faults))
	}
	if res.TimedOut == 0 || res.Retried == 0 {
		t.Errorf("blackhole provoked no timeouts/retries: %+v", res)
	}
	if res.Hedged == 0 {
		t.Error("hedging enabled but nothing hedged")
	}
	if res.GoodputAvailability <= 0 || res.GoodputAvailability > 1 {
		t.Errorf("GoodputAvailability = %g", res.GoodputAvailability)
	}
	if res.HedgeWins > res.Hedged || res.Retried > res.TimedOut*int64(cfg.Retry.MaxRetries) {
		t.Errorf("inconsistent robustness counters: %+v", res)
	}
}
