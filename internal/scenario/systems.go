package scenario

import (
	"aequitas/internal/baselines"
	"aequitas/internal/core"
	"aequitas/internal/netsim"
	"aequitas/internal/transport"
	"aequitas/internal/wfq"
)

// The nine evaluated systems. Names match the public System.String()
// values in the root package and the -system CLI vocabulary.
func init() {
	Register("baseline", wfqSystem{})
	Register("aequitas", aequitasSystem{})
	Register("spq", spqSystem{})
	Register("dwrr", dwrrSystem{})
	Register("pfabric", pfabricSystem{})
	Register("qjump", qjumpSystem{})
	Register("d3", deadlineSystem{policy: baselines.PolicyD3})
	Register("pdq", deadlineSystem{policy: baselines.PolicyPDQ})
	Register("homa", homaSystem{})
}

// statelessInstance adapts a per-host build function for systems with no
// cross-host state.
type statelessInstance func(env *Env, i int) (HostStack, error)

func (f statelessInstance) Host(env *Env, i int) (HostStack, error) { return f(env, i) }
func (statelessInstance) Terminated() int64                         { return 0 }

// swiftHost is the shared host shape of the WFQ-family systems: standard
// transport, no admission control.
func swiftHost(env *Env, i int) (HostStack, error) {
	return HostStack{Sender: env.SwiftEndpoint(i)}, nil
}

// wfqSystem is plain WFQ QoS without admission control ("w/o Aequitas").
type wfqSystem struct{}

func (wfqSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	return func() wfq.Scheduler { return wfq.NewWFQ(weights, buf) }
}

func (wfqSystem) Build(*Env) (Instance, error) {
	return statelessInstance(swiftHost), nil
}

// aequitasSystem is WFQ QoS plus the distributed admission controller:
// every host runs its own Algorithm 1 state.
type aequitasSystem struct{}

func (aequitasSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	return func() wfq.Scheduler { return wfq.NewWFQ(weights, buf) }
}

func (aequitasSystem) Build(*Env) (Instance, error) {
	return statelessInstance(func(env *Env, i int) (HostStack, error) {
		ctl, err := core.NewWithClock(env.Core, env.Clock)
		if err != nil {
			return HostStack{}, err
		}
		return HostStack{Sender: env.SwiftEndpoint(i), Admitter: ctl, Controller: ctl}, nil
	}), nil
}

// spqSystem replaces WFQ with strict priority queuing (§6.7).
type spqSystem struct{}

func (spqSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	return func() wfq.Scheduler { return wfq.NewSPQ(len(weights), buf) }
}

func (spqSystem) Build(*Env) (Instance, error) {
	return statelessInstance(swiftHost), nil
}

// dwrrSystem realises the QoS weights with deficit weighted round robin.
type dwrrSystem struct{}

func (dwrrSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	return func() wfq.Scheduler { return wfq.NewDWRR(weights, netsim.MTU, buf) }
}

func (dwrrSystem) Build(*Env) (Instance, error) {
	return statelessInstance(swiftHost), nil
}

// pfabricSystem transmits aggressively and relies on the fabric's SRPT
// queues plus retransmission; a single urgency-ordered queue per port
// with capacity shared across classes, as in pFabric's shallow-buffer
// model.
type pfabricSystem struct{}

func (pfabricSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	total := buf * len(weights)
	return func() wfq.Scheduler { return wfq.NewPriorityQueue(total) }
}

func (pfabricSystem) Build(*Env) (Instance, error) {
	return statelessInstance(func(env *Env, i int) (HostStack, error) {
		ep := env.NewEndpoint(i, transport.Config{
			NewCC: func() transport.CC { return transport.Fixed{W: 128} },
		})
		return HostStack{Sender: ep}, nil
	}), nil
}

// qjumpSystem rate-limits each QoS level at the host and runs strict
// priority in the fabric.
type qjumpSystem struct{}

func (qjumpSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	return func() wfq.Scheduler { return wfq.NewSPQ(len(weights), buf) }
}

func (qjumpSystem) Build(*Env) (Instance, error) {
	return statelessInstance(func(env *Env, i int) (HostStack, error) {
		ep := env.NewEndpoint(i, transport.Config{
			NewCC: func() transport.CC { return transport.Fixed{W: 128} },
		})
		return HostStack{Sender: baselines.NewQJump(ep, baselines.QJumpConfig{
			LevelRates: baselines.QJumpRates(env.Levels, env.LineRate, env.Hosts),
		})}, nil
	}), nil
}

// deadlineSystem covers D3 and PDQ: a shared fabric allocates per-flow
// rates against deadlines and terminates hopeless RPCs.
type deadlineSystem struct {
	policy baselines.DeadlinePolicy
}

func (deadlineSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	total := buf * len(weights)
	return func() wfq.Scheduler { return wfq.NewFIFO(total) }
}

func (d deadlineSystem) Build(env *Env) (Instance, error) {
	return &deadlineInstance{fabric: baselines.NewDeadlineFabric(env.Hosts, baselines.DeadlineConfig{
		Policy:   d.policy,
		LineRate: env.LineRate,
	})}, nil
}

type deadlineInstance struct {
	fabric *baselines.DeadlineFabric
}

func (di *deadlineInstance) Host(env *Env, i int) (HostStack, error) {
	return HostStack{Sender: baselines.NewDeadlineSender(di.fabric, env.Net.Host(i))}, nil
}

func (di *deadlineInstance) Terminated() int64 { return di.fabric.Terminated }

// homaSystem is receiver-driven: grants pace senders, packets carry SRPT
// priorities, and the fabric runs urgency-ordered queues.
type homaSystem struct{}

func (homaSystem) Scheduler(weights []float64, buf int) netsim.SchedulerFactory {
	total := buf * len(weights)
	return func() wfq.Scheduler { return wfq.NewPriorityQueue(total) }
}

func (homaSystem) Build(*Env) (Instance, error) {
	return statelessInstance(func(env *Env, i int) (HostStack, error) {
		return HostStack{Sender: baselines.NewHoma(env.Net.Host(i), baselines.HomaConfig{
			LineRate: env.LineRate,
		})}, nil
	}), nil
}
