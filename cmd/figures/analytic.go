package main

import (
	"fmt"
	"math/rand"
	"os"

	"aequitas"
	"aequitas/internal/stats"
	"aequitas/internal/workload"
)

func init() {
	register("1", "RPC size CDFs per priority class (production-shaped)", figSizes)
	register("8", "theoretical 2-QoS worst-case delay, phi=4, mu=0.8, rho=1.2", figTheory2QoS)
	register("9", "3-QoS fluid worst-case delay, weights 8:4:1 and 50:4:1", figTheory3QoS)
	register("guarantee", "S5.2 guaranteed-admission bound vs burstiness", figGuarantee)
}

// figSizes prints the Figure 1 CDFs from the synthetic production-shaped
// distributions. Each distribution is sampled with its own seeded RNG so
// the per-class rows are independent of execution order.
func figSizes(o options) error {
	dists := []struct {
		name string
		d    workload.SizeDist
	}{
		{"PC", workload.ProductionPC()},
		{"NC", workload.ProductionNC()},
		{"BE", workload.ProductionBE()},
	}
	samples := make([]stats.Sample, len(dists))
	parallelFor(o.workers, len(dists), func(i int) {
		rng := rand.New(rand.NewSource(int64(1 + i)))
		for n := 0; n < 100000; n++ {
			samples[i].Add(float64(dists[i].d.Sample(rng)))
		}
	})
	tb := stats.NewTable("priority", "p10", "p50", "p90", "p99", "mean")
	for i, d := range dists {
		s := &samples[i]
		tb.AddRow(d.name,
			fmt.Sprintf("%.0fB", s.Quantile(0.10)),
			fmt.Sprintf("%.0fB", s.Quantile(0.50)),
			fmt.Sprintf("%.0fKB", s.Quantile(0.90)/1024),
			fmt.Sprintf("%.0fKB", s.Quantile(0.99)/1024),
			fmt.Sprintf("%.0fKB", s.Mean()/1024))
	}
	tb.Write(os.Stdout)
	return nil
}

// figTheory2QoS prints the Figure 8 closed-form delay curves.
func figTheory2QoS(options) error {
	const (
		phi = 4.0
		rho = 1.2
		mu  = 0.8
	)
	tb := stats.NewTable("QoSh-share(%)", "QoSh-bound", "QoSl-bound")
	for x := 0.05; x < 1.0; x += 0.05 {
		tb.AddRow(fmt.Sprintf("%.0f", 100*x),
			aequitas.DelayBoundHigh(phi, rho, mu, x),
			aequitas.DelayBoundLow(phi, rho, mu, x))
	}
	tb.Write(os.Stdout)
	fmt.Printf("priority inversion at QoSh-share = %.0f%% (phi/(phi+1))\n", 100*phi/(phi+1))
	return nil
}

// figTheory3QoS prints the Figure 9 fluid sweeps: QoSm:QoSl fixed at 2:1.
func figTheory3QoS(options) error {
	const (
		rho = 1.4
		mu  = 0.8
	)
	for _, weights := range [][]float64{{8, 4, 1}, {50, 4, 1}} {
		fmt.Printf("weights %v:\n", weights)
		tb := stats.NewTable("QoSh-share(%)", "QoSh", "QoSm", "QoSl", "admissible")
		for x := 0.05; x < 0.95; x += 0.05 {
			rest := 1 - x
			mix := []float64{x, rest * 2 / 3, rest / 3}
			d, err := aequitas.WorstCaseDelays(weights, mix, rho, mu)
			if err != nil {
				return err
			}
			adm := d[0] <= d[1]+1e-9 && d[1] <= d[2]+1e-9
			tb.AddRow(fmt.Sprintf("%.0f", 100*x), d[0], d[1], d[2], adm)
		}
		tb.Write(os.Stdout)
		boundary, err := aequitas.AdmissibleShare(weights, []float64{2.0 / 3, 1.0 / 3}, rho, mu)
		if err != nil {
			return err
		}
		fmt.Printf("admissible region boundary: QoSh-share %.0f%%\n\n", 100*boundary)
	}
	return nil
}

// figGuarantee prints the §5.2 bound X_i <= r*(phi_i/sum)*(mu/rho).
func figGuarantee(options) error {
	weights := []float64{8, 4, 1}
	tb := stats.NewTable("rho", "QoSh(%)", "QoSm(%)", "QoSl(%)")
	for _, rho := range []float64{1.4, 1.6, 1.8, 2.0, 2.2} {
		tb.AddRow(rho,
			100*aequitas.GuaranteedShare(weights, 0, 0.8, rho),
			100*aequitas.GuaranteedShare(weights, 1, 0.8, rho),
			100*aequitas.GuaranteedShare(weights, 2, 0.8, rho))
	}
	tb.Write(os.Stdout)
	fmt.Println("guaranteed admitted share scales as 1/rho (cf. figure 16)")
	return nil
}
