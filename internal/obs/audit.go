package obs

import (
	"aequitas/internal/sim"
	"aequitas/internal/stats"
)

// AuditConfig configures the online QoS-bound auditor.
type AuditConfig struct {
	// BoundUS is the per-class worst-case queueing bound in microseconds
	// (index = QoS class, highest first). Classes beyond the slice are
	// observed but never flagged. The bounds come from the network-calculus
	// model: normalized worst-case delay × burst period.
	BoundUS []float64
	// SlackUS is headroom added to every bound before flagging, absorbing
	// the packet-vs-fluid gap between the discrete simulator and the fluid
	// model (the simulator sits a few percent of a period above theory).
	SlackUS float64
	// MaxViolations caps the retained violation list (default 64); the
	// total count keeps counting past the cap.
	MaxViolations int
	// Levels, when positive, clamps audited classes to [0, Levels): the
	// fabric schedulers serve any out-of-range class from the lowest
	// queue, so its queueing is governed by the lowest class's bound and
	// must be audited there. Zero disables clamping (classes beyond
	// BoundUS are observed but never flagged).
	Levels int
}

// AuditViolation is one recorded bound violation with the offending RPC.
type AuditViolation struct {
	RPC   uint64
	Class int
	// Kind is "hop" (one egress-queue residency over bound) or "rpc"
	// (an RPC's total fabric queueing over bound).
	Kind string
	// Link names the offending egress port for hop violations.
	Link string
	// TimeUS is when the violation was observed, in simulated µs.
	TimeUS float64
	// ObservedUS is the offending value; BoundUS the raw bound it was
	// checked against (slack excluded).
	ObservedUS, BoundUS float64
}

// classAudit accumulates one class's observations.
type classAudit struct {
	rnl        stats.Sample // completed-RPC RNL, µs
	fabric     stats.Sample // completed-RPC total fabric queueing, µs
	hops       int64
	maxHopUS   float64
	violations int
}

// Auditor continuously checks observed queueing against the per-class
// worst-case bounds of the network-calculus model, turning the paper's
// Fig-10 theory-vs-simulation validation into a runtime invariant. A nil
// *Auditor is the disabled auditor: every method is a nil-checked no-op.
type Auditor struct {
	cfg     AuditConfig
	classes []*classAudit
	viol    []AuditViolation
	total   int
}

// NewAuditor returns an enabled auditor.
func NewAuditor(cfg AuditConfig) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	return &Auditor{cfg: cfg}
}

// Enabled reports whether the auditor checks bounds.
func (a *Auditor) Enabled() bool { return a != nil }

// clamp maps an audited class onto the scheduler-effective class: the
// fabric serves out-of-range classes from the lowest queue.
func (a *Auditor) clamp(cl int) int {
	if a.cfg.Levels > 0 && cl >= a.cfg.Levels {
		cl = a.cfg.Levels - 1
	}
	return cl
}

func (a *Auditor) class(cl int) *classAudit {
	if cl < 0 {
		cl = 0
	}
	for cl >= len(a.classes) {
		a.classes = append(a.classes, &classAudit{})
	}
	return a.classes[cl]
}

func (a *Auditor) bound(cl int) (float64, bool) {
	if cl < 0 || cl >= len(a.cfg.BoundUS) {
		return 0, false
	}
	return a.cfg.BoundUS[cl], true
}

func (a *Auditor) record(v AuditViolation) {
	a.total++
	if len(a.viol) < a.cfg.MaxViolations {
		a.viol = append(a.viol, v)
	}
}

// Hop checks one data packet's egress-queue residency against the
// packet's class bound. Called from the link dequeue path, so it does
// only comparisons; quantile state is per-RPC, not per-hop.
func (a *Auditor) Hop(now sim.Time, rpc uint64, link string, class int, resid sim.Duration) {
	if a == nil {
		return
	}
	class = a.clamp(class)
	c := a.class(class)
	c.hops++
	us := resid.Micros()
	if us > c.maxHopUS {
		c.maxHopUS = us
	}
	if b, ok := a.bound(class); ok && us > b+a.cfg.SlackUS {
		c.violations++
		a.record(AuditViolation{RPC: rpc, Class: class, Kind: "hop", Link: link,
			TimeUS: now.Micros(), ObservedUS: us, BoundUS: b})
	}
}

// RPCDone feeds one completed RPC's per-class tail statistics (total
// fabric queueing — the sum of its tail packet's queue residencies — and
// RNL) and checks the RPC's worst single queue residency against its
// class bound. The calculus bound is per queue, so on multi-hop paths the
// sum is compared hop by hop (see Hop), never in aggregate.
func (a *Auditor) RPCDone(now sim.Time, rpc uint64, class int, fabric, maxHop, rnl sim.Duration) {
	if a == nil {
		return
	}
	class = a.clamp(class)
	c := a.class(class)
	c.rnl.Add(rnl.Micros())
	c.fabric.Add(fabric.Micros())
	us := maxHop.Micros()
	if b, ok := a.bound(class); ok && us > b+a.cfg.SlackUS {
		c.violations++
		a.record(AuditViolation{RPC: rpc, Class: class, Kind: "rpc",
			TimeUS: now.Micros(), ObservedUS: us, BoundUS: b})
	}
}

// AuditClassReport is one class's audit summary.
type AuditClassReport struct {
	Class int
	// N is the number of audited (completed) RPCs.
	N int
	// RNL tail percentiles in µs over audited RPCs.
	RNLP99US, RNLP999US, RNLMaxUS float64
	// Per-RPC total fabric queueing tails in µs.
	QueueP99US, QueueMaxUS float64
	// MaxHopUS is the largest single queue residency seen; Hops the number
	// of audited dequeues.
	MaxHopUS float64
	Hops     int64
	// BoundUS is the class's raw bound; Bounded is false when the class
	// had no configured bound (observed only).
	BoundUS float64
	Bounded bool
	// Violations counts this class's bound violations (hop + rpc).
	Violations int
}

// AuditReport is the auditor's end-of-run summary.
type AuditReport struct {
	SlackUS float64
	Classes []AuditClassReport
	// Violations retains the first MaxViolations violations in
	// observation order; TotalViolations keeps the full count.
	Violations      []AuditViolation
	TotalViolations int
}

// Ok reports whether no bound was violated.
func (r *AuditReport) Ok() bool { return r != nil && r.TotalViolations == 0 }

// Report summarises the audit. Classes appear in class order; classes
// that saw no traffic are omitted.
func (a *Auditor) Report() *AuditReport {
	if a == nil {
		return nil
	}
	rep := &AuditReport{
		SlackUS:         a.cfg.SlackUS,
		Violations:      a.viol,
		TotalViolations: a.total,
	}
	for cl, c := range a.classes {
		if c.hops == 0 && c.rnl.N() == 0 {
			continue
		}
		cr := AuditClassReport{
			Class:      cl,
			N:          c.rnl.N(),
			MaxHopUS:   c.maxHopUS,
			Hops:       c.hops,
			Violations: c.violations,
		}
		cr.BoundUS, cr.Bounded = a.bound(cl)
		if c.rnl.N() > 0 {
			cr.RNLP99US = c.rnl.Quantile(0.99)
			cr.RNLP999US = c.rnl.Quantile(0.999)
			cr.RNLMaxUS = c.rnl.Max()
			cr.QueueP99US = c.fabric.Quantile(0.99)
			cr.QueueMaxUS = c.fabric.Max()
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}
