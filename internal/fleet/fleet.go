// Package fleet is a synthetic model of a production fleet, standing in
// for the paper's unobtainable production data (Figures 3, 4, 5 and 24).
// It models the mechanisms the paper describes rather than any particular
// dataset:
//
//   - Applications mark QoS at application granularity (coarse marking),
//     so an application's entire traffic — PC, NC and BE RPCs alike —
//     flows on one class, producing the priority/QoS misalignment of
//     Figure 4.
//
//   - Each overload-induced SLO miss pressures an application to upgrade
//     its marking ("race to the top", Figure 5).
//
//   - Congestion episodes: load surges multiply RPC latency through an
//     M/G/1-style queueing response at the cluster's bottleneck
//     (Figure 3).
//
//   - Phase 1 of Aequitas re-marks traffic at RPC granularity, driving
//     misalignment to ~zero and cutting tail RNL for high-priority
//     traffic (Figure 24).
package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"aequitas/internal/qos"
)

// App is one application in a cluster: a byte share and its true RPC
// priority composition.
type App struct {
	// Share of the cluster's traffic bytes.
	Share float64
	// PriorityMix is the application's true per-RPC composition: the
	// byte fraction of PC, NC and BE work inside the application.
	PriorityMix [3]float64
	// MarkedClass is the single QoS class the whole application is
	// marked with under coarse (application-granularity) marking.
	MarkedClass qos.Class
}

// Cluster is a population of applications.
type Cluster struct {
	Apps []App
	rng  *rand.Rand
}

// ClusterConfig controls synthesis.
type ClusterConfig struct {
	Apps int
	Seed int64
	// UpgradeBias is the probability that an application's coarse mark
	// equals the *highest* priority present in its mix rather than the
	// dominant one — the "race to the top" pressure already applied.
	UpgradeBias float64
}

// NewCluster synthesises a cluster: application shares follow a Zipf-like
// law (a few large applications dominate), and each application's true
// mix leans toward one dominant priority with minority components.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Apps <= 0 {
		return nil, fmt.Errorf("fleet: need at least one app")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Cluster{rng: rng}
	var tot float64
	shares := make([]float64, cfg.Apps)
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), 1.1)
		tot += shares[i]
	}
	for i := 0; i < cfg.Apps; i++ {
		dominant := qos.Priority(rng.Intn(3))
		mix := [3]float64{0.1, 0.1, 0.1}
		mix[dominant] = 0.8
		// Normalise.
		s := mix[0] + mix[1] + mix[2]
		for j := range mix {
			mix[j] /= s
		}
		app := App{Share: shares[i] / tot, PriorityMix: mix}
		// Coarse marking: either the dominant priority's class, or — with
		// UpgradeBias — the highest priority present.
		if rng.Float64() < cfg.UpgradeBias {
			app.MarkedClass = qos.High
		} else {
			app.MarkedClass = qos.MapPriorityToQoS(dominant)
		}
		c.Apps = append(c.Apps, app)
	}
	return c, nil
}

// Alignment is the joint distribution of (true priority, marked class) in
// bytes: Alignment[p][c] is the byte fraction of priority-p traffic
// flowing on class c.
type Alignment [3][3]float64

// CoarseAlignment computes the alignment under application-granularity
// marking.
func (c *Cluster) CoarseAlignment() Alignment {
	var a Alignment
	for _, app := range c.Apps {
		for p := 0; p < 3; p++ {
			a[p][app.MarkedClass] += app.Share * app.PriorityMix[p]
		}
	}
	return a.normalize()
}

// Phase1Alignment computes the alignment after Aequitas Phase 1: each RPC
// is marked at RPC granularity with its true priority's class.
func (c *Cluster) Phase1Alignment() Alignment {
	var a Alignment
	for _, app := range c.Apps {
		for p := 0; p < 3; p++ {
			a[p][qos.MapPriorityToQoS(qos.Priority(p))] += app.Share * app.PriorityMix[p]
		}
	}
	return a.normalize()
}

// normalize makes each priority row sum to 1.
func (a Alignment) normalize() Alignment {
	for p := 0; p < 3; p++ {
		var s float64
		for c := 0; c < 3; c++ {
			s += a[p][c]
		}
		if s > 0 {
			for c := 0; c < 3; c++ {
				a[p][c] /= s
			}
		}
	}
	return a
}

// Misalignment returns the byte fraction of priority p's traffic flowing
// on the wrong class (Figure 24's metric).
func (a Alignment) Misalignment(p qos.Priority) float64 {
	right := qos.MapPriorityToQoS(p)
	var wrong float64
	for c := 0; c < 3; c++ {
		if qos.Class(c) != right {
			wrong += a[p][c]
		}
	}
	return wrong
}

// TotalMisalignment is the byte-share-weighted misalignment across
// priorities.
func (a Alignment) TotalMisalignment(shares [3]float64) float64 {
	var tot, s float64
	for p := 0; p < 3; p++ {
		tot += shares[p] * a.Misalignment(qos.Priority(p))
		s += shares[p]
	}
	if s == 0 {
		return 0
	}
	return tot / s
}

// PriorityShares returns the fleet's byte share per true priority.
func (c *Cluster) PriorityShares() [3]float64 {
	var out [3]float64
	for _, app := range c.Apps {
		for p := 0; p < 3; p++ {
			out[p] += app.Share * app.PriorityMix[p]
		}
	}
	return out
}

// QoSShares returns the byte share per marked class under coarse marking.
func (c *Cluster) QoSShares() [3]float64 {
	var out [3]float64
	for _, app := range c.Apps {
		out[app.MarkedClass] += app.Share
	}
	return out
}

// RaceToTheTop simulates the marking drift of Figure 5: at each step, an
// application that would suffer an overload-induced SLO miss upgrades its
// marking one class with probability upgradeProb. It returns the QoS
// share trajectory (one [3]float64 per step, including the initial
// state).
func (c *Cluster) RaceToTheTop(steps int, overloadProb, upgradeProb float64) [][3]float64 {
	out := make([][3]float64, 0, steps+1)
	out = append(out, c.QoSShares())
	for i := 0; i < steps; i++ {
		for j := range c.Apps {
			app := &c.Apps[j]
			if app.MarkedClass == qos.High {
				continue
			}
			// Overload events hit lower classes harder.
			classRisk := 1.0
			if app.MarkedClass == qos.Medium {
				classRisk = 0.6
			}
			if c.rng.Float64() < overloadProb*classRisk && c.rng.Float64() < upgradeProb {
				app.MarkedClass--
			}
		}
		out = append(out, c.QoSShares())
	}
	return out
}

// OverloadEpisode models Figure 3: a congestion episode where cluster
// load ramps to peak× the baseline and back, and the latency tail
// responds superlinearly once load crosses the knee (an M/G/1-flavoured
// 1/(1−ρ) response capped for display). Returned series are normalised:
// load relative to baseline, latency relative to uncongested latency.
func OverloadEpisode(steps int, peak float64) (load, latency []float64) {
	if steps < 2 {
		steps = 2
	}
	load = make([]float64, steps)
	latency = make([]float64, steps)
	for i := 0; i < steps; i++ {
		// A smooth ramp up and down.
		phase := float64(i) / float64(steps-1)
		l := 1 + (peak-1)*math.Exp(-math.Pow((phase-0.5)*4, 2))
		load[i] = l
		// Normalise against the knee: latency explodes as utilisation
		// approaches 1. Map load ∈ [1, peak] to ρ ∈ [0.5, 0.99].
		rho := 0.5 * l / peak * 2
		if rho > 0.99 {
			rho = 0.99
		}
		latency[i] = (1 / (1 - rho)) / 2
	}
	return load, latency
}

// RNLImprovement estimates the 99th-percentile RNL change from Phase 1
// realignment for one cluster: misaligned high-priority bytes that move
// from a congested lower class back to the high class see the class
// latency gap; clusters with little misalignment see little change. The
// returned value is a fractional change (negative = improvement), the
// quantity plotted in Figure 24.
func (c *Cluster) RNLImprovement(classLatency [3]float64) float64 {
	coarse := c.CoarseAlignment()
	aligned := c.Phase1Alignment()
	var before, after float64
	for ci := 0; ci < 3; ci++ {
		before += coarse[int(qos.PC)][ci] * classLatency[ci]
		after += aligned[int(qos.PC)][ci] * classLatency[ci]
	}
	if before == 0 {
		return 0
	}
	return (after - before) / before
}
