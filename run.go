package aequitas

import (
	"fmt"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/faults"
	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/scenario"
	"aequitas/internal/sim"
	"aequitas/internal/stats"
	"aequitas/internal/transport"
	"aequitas/internal/workload"
)

// runState threads one simulation's pieces through the pipeline stages.
type runState struct {
	cfg *SimConfig
	s   *sim.Simulator

	builder scenario.SystemBuilder
	system  scenario.Instance
	env     *scenario.Env

	net      *netsim.Network
	tracer   *obs.Tracer
	registry *obs.Registry
	tails    *obs.TailTracker
	attr     *obs.Attributor
	audit    *obs.Auditor

	// flight is the run's shared flight-recorder ring (nil when
	// ObsConfig.FlightNDJSON is unset); flightErr carries a mid-run dump
	// failure out of event callbacks to runAndDrain.
	flight    *flight.Ring
	flightErr error

	col         *collector
	controllers []*core.Controller

	warm, end sim.Time
}

// Run executes one simulation and returns its measurements. All
// system-specific wiring comes from the internal/scenario builder
// registry; Run itself only composes the stages.
func Run(cfg SimConfig) (*Results, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	st := &runState{
		cfg:  &cfg,
		s:    sim.New(cfg.Seed + 1),
		warm: sim.FromStd(cfg.Warmup),
		end:  sim.FromStd(cfg.Duration),
	}
	for _, stage := range []func(*runState) error{
		buildFabric,
		buildHosts,
		buildWorkload,
		buildFaults,
		buildSamplers,
		runAndDrain,
	} {
		if err := stage(st); err != nil {
			return nil, err
		}
	}
	res := st.col.results(st.cfg, st.net)
	res.Terminated = st.system.Terminated()
	res.EventsProcessed = int64(st.s.Processed)
	pkts, _ := st.net.TotalDelivered()
	res.PacketsDelivered = pkts
	if st.attr != nil {
		res.Attribution = attributionSummary(st.attr)
	}
	if st.audit != nil {
		res.Audit = auditReport(st.audit)
	}
	return res, nil
}

// buildFabric looks up the system builder and constructs the network with
// that system's switch scheduling discipline, plus the per-run
// observability sinks.
func buildFabric(st *runState) error {
	cfg := st.cfg
	builder, err := scenario.Lookup(cfg.System.String())
	if err != nil {
		return err
	}
	st.builder = builder
	net, err := netsim.New(netsim.Config{
		Hosts:       cfg.Hosts,
		LinkRate:    sim.Rate(cfg.LinkRate),
		PropDelay:   sim.FromStd(cfg.PropDelay),
		SwitchSched: builder.Scheduler(cfg.QoSWeights, cfg.PerClassBufferBytes),
		Topology: netsim.Topology{
			Leaves:        cfg.Leaves,
			Spines:        cfg.Spines,
			SpineLinkRate: sim.Rate(cfg.SpineLinkRate),
		},
	})
	if err != nil {
		return err
	}
	st.net = net
	st.col = newCollector(cfg)

	// Observability: one tracer and one metrics registry per run, so
	// event and sample order depend only on this run's event sequence.
	st.tracer = cfg.Obs.tracer()
	st.registry = cfg.Obs.registry()
	if st.tracer != nil {
		net.SetTracer(st.tracer)
	}
	if cfg.Obs.TailSeries && st.registry != nil {
		st.tails = obs.NewTailTracker()
		st.col.tails = st.tails
	}
	if cfg.Obs.Export != nil {
		st.col.expRNL = make(map[qos.Class]*stats.Hist)
	}
	if cfg.Obs.FlightNDJSON != nil {
		st.flight = flight.NewRing(flight.Config{
			Records:      cfg.Obs.FlightRecords,
			SampleAdmits: cfg.Obs.FlightSampleAdmits,
		})
	}

	// Auditor first (the attributor feeds it per-RPC fabric queueing),
	// then the attributor, both attached to every link.
	if cfg.Obs.Audit {
		bounds := cfg.Obs.AuditBoundsUS
		if bounds == nil {
			bounds, err = cfg.deriveAuditBounds()
			if err != nil {
				return fmt.Errorf("aequitas: audit bounds: %w", err)
			}
		}
		slack := cfg.Obs.AuditSlackUS
		if slack == 0 {
			slack = float64(cfg.BurstPeriod) / float64(time.Microsecond) * 0.1
		}
		st.audit = obs.NewAuditor(obs.AuditConfig{
			BoundUS:       bounds,
			SlackUS:       slack,
			MaxViolations: cfg.Obs.AuditMaxViolations,
			Levels:        len(cfg.QoSWeights),
		})
		net.SetAuditor(st.audit)
	}
	if cfg.Obs.attributionOn() {
		st.attr = obs.NewAttributor(st.audit)
		net.SetAttributor(st.attr)
	}
	return nil
}

// buildHosts asks the system instance for each host's sender and
// admitter, then wraps them in the measurement stack.
func buildHosts(st *runState) error {
	cfg := st.cfg
	st.env = &scenario.Env{
		Net:         st.net,
		Hosts:       cfg.Hosts,
		Levels:      cfg.levels(),
		LineRate:    sim.Rate(cfg.LinkRate),
		RTOMin:      sim.FromStd(cfg.RTOMin),
		CCTarget:    sim.FromStd(cfg.CCTarget),
		DisableCC:   cfg.DisableCC,
		FixedWindow: cfg.FixedWindow,
		Core:        cfg.coreConfig(),
		Clock:       core.SimClock{S: st.s},
		Tracer:      st.tracer,
		Attr:        st.attr,
		Endpoints:   make([]*transport.Endpoint, cfg.Hosts),
	}
	system, err := st.builder.Build(st.env)
	if err != nil {
		return err
	}
	st.system = system
	st.controllers = make([]*core.Controller, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hs, err := system.Host(st.env, i)
		if err != nil {
			return err
		}
		st.controllers[i] = hs.Controller
		if st.flight != nil && hs.Controller != nil {
			hs.Controller.SetFlight(st.flight, i)
		}
		var adm rpc.Admitter = rpc.PassThrough{}
		if hs.Admitter != nil {
			adm = hs.Admitter
		}
		stack := rpc.NewStack(hs.Sender, &countingAdmitter{s: st.s, inner: adm, col: st.col})
		stack.Trace = st.tracer
		stack.Attr = st.attr
		stack.Src = i
		stack.RecordPAdmit = cfg.TraceWriter != nil
		if cfg.Retry.active() {
			stack.Retry = cfg.retryPolicy()
		}
		// In-flight tracking is what lets crashes fail RPCs and keep
		// Outstanding() exact; without a plan (or retries) the stack keeps
		// the plain issue path.
		stack.TrackInflight = !cfg.Faults.Empty()
		src := i
		col := st.col
		stack.OnComplete = func(s *sim.Simulator, r *rpc.RPC) {
			col.addProbeBytes(src, r.Dst, r.QoSRun, r.Bytes)
			col.onComplete(s, r)
			col.trace(s, src, r)
		}
		col.stacks = append(col.stacks, stack)
	}
	return nil
}

// buildWorkload turns the resolved traffic matrix into per-sender
// generators and starts their arrival streams.
func buildWorkload(st *runState) error {
	cfg := st.cfg
	for _, rt := range cfg.resolved {
		ht := &cfg.Traffic[rt.traffic]
		for _, hid := range rt.hosts {
			spec, err := toSpec(cfg, ht, rt, hid)
			if err != nil {
				return err
			}
			gen, err := workload.NewGenerator(st.col.stacks[hid], spec)
			if err != nil {
				return err
			}
			st.col.gens = append(st.col.gens, gen)
			gen.Start(st.s)
		}
	}
	return nil
}

// buildFaults schedules the fault plan, if any: link targets bind to the
// fabric's links (plus "host:N" aliases for each host's access links),
// host targets bind to a control that crashes the whole per-host slice —
// RPC stack, transport endpoint, admission state, and every peer's
// connections toward it. Applied events flow into the trace stream and
// the collector's degradation accounting.
func buildFaults(st *runState) error {
	plan := st.cfg.Faults
	if plan.Empty() {
		return nil
	}
	in := faults.NewInjector(plan, st.cfg.Seed)
	st.net.ForEachLink(func(l *netsim.Link) { in.BindLink(l.Name, l) })
	for i := 0; i < st.cfg.Hosts; i++ {
		in.BindLink(fmt.Sprintf("host:%d", i), st.net.Host(i).Uplink, st.net.Downlink(i))
		in.BindHost(i, &hostFaultControl{st: st, host: i})
	}
	tracer, col := st.tracer, st.col
	in.OnEvent = func(s *sim.Simulator, e faults.Event) {
		tracer.Fault(s.Now(), obsFaultKind(e.Kind), e.Target(), e.Rate)
		col.onFault(s, e)
		// Fault onsets dump and reset the flight ring: the dump holds the
		// decisions leading into the fault window, and the next dump
		// starts clean inside it.
		if st.flight != nil && faultOnset(e.Kind) {
			st.flightDump(flight.Trigger{
				Kind:   flight.TriggerFault,
				At:     s.Now(),
				Detail: obsFaultKind(e.Kind).String() + " " + e.Target(),
			}, true)
		}
	}
	return in.Schedule(st.s)
}

// faultOnset reports whether a fault event begins a degraded window (as
// opposed to recovering from one).
func faultOnset(k faults.Kind) bool {
	switch k {
	case faults.LinkDown, faults.LinkLoss, faults.HostCrash:
		return true
	default:
		return false
	}
}

// flightLabel names this run in dump headers.
func (st *runState) flightLabel() string {
	if st.cfg.Obs.ExportLabel != "" {
		return st.cfg.Obs.ExportLabel
	}
	return st.cfg.System.String()
}

// flightDump snapshots the ring into the configured NDJSON sink. Errors
// are latched into st.flightErr (callbacks have nowhere to return them)
// and surfaced by runAndDrain.
func (st *runState) flightDump(tr flight.Trigger, reset bool) {
	err := flight.DumpTo(st.cfg.Obs.FlightNDJSON, st.flight, flight.Meta{
		Trigger: tr,
		Label:   st.flightLabel(),
	}, reset)
	if err != nil && st.flightErr == nil {
		st.flightErr = err
	}
}

// obsFaultKind maps the faults package's event kinds onto the trace
// stream's enum.
func obsFaultKind(k faults.Kind) obs.FaultKind {
	switch k {
	case faults.LinkDown:
		return obs.FaultLinkDown
	case faults.LinkUp:
		return obs.FaultLinkUp
	case faults.LinkLoss:
		return obs.FaultLoss
	case faults.HostCrash:
		return obs.FaultCrash
	default:
		return obs.FaultRestart
	}
}

// hostFaultControl implements faults.HostControl over one host's slice
// of the run: its RPC stack, transport endpoint, and admission state,
// plus every peer endpoint's connections toward it.
type hostFaultControl struct {
	st   *runState
	host int
}

func (h *hostFaultControl) Crash(s *sim.Simulator) {
	st, i := h.st, h.host
	stack := st.col.stacks[i]
	stack.Crash(s)
	if r, ok := stack.Admitter().(interface{ Reset() }); ok {
		r.Reset()
	}
	// Baselines that bypass the standard transport (Homa, D3, PDQ) have
	// no endpoint; their in-flight state is cleared via the stack only.
	if ep := st.env.Endpoints[i]; ep != nil {
		ep.Crash(s)
	}
	for j, ep := range st.env.Endpoints {
		if j != i && ep != nil {
			ep.ResetPeer(s, i)
		}
	}
}

func (h *hostFaultControl) Restart(s *sim.Simulator) {
	if ep := h.st.env.Endpoints[h.host]; ep != nil {
		ep.Restart(s)
	}
	h.st.col.stacks[h.host].Restart()
}

// buildSamplers schedules the measurement-window boundary, the periodic
// metrics samplers, and the probe/outstanding sampling tick.
func buildSamplers(st *runState) error {
	cfg, s, col := st.cfg, st.s, st.col
	warm, end, net := st.warm, st.end, st.net

	// Warmup boundary: begin measurement.
	s.AtFunc(warm, func(s *sim.Simulator) { col.beginMeasurement(s, net) })

	// Periodic metrics sampling: per-port queue occupancy always, plus
	// per-host admission and transport state for the selected hosts.
	// Sampling starts at t=0 (before warmup) so convergence transients are
	// visible.
	if st.registry != nil {
		registry := st.registry
		registry.Register(net.MetricsSampler())
		for i := 0; i < cfg.Hosts; i++ {
			if !cfg.Obs.metricsHost(i) {
				continue
			}
			if st.controllers[i] != nil {
				registry.Register(st.controllers[i].MetricsSampler(i))
			}
			if st.env.Endpoints[i] != nil {
				registry.Register(st.env.Endpoints[i].MetricsSampler())
			}
		}
		// Tail time-series last, so its columns append after the built-in
		// samplers' and enabling it never reorders existing columns.
		if st.tails != nil {
			registry.Register(st.tails.Sampler())
		}
		interval := sim.FromStd(cfg.Obs.MetricsEvery)
		if interval <= 0 {
			interval = sim.FromStd(100 * time.Microsecond)
		}
		var mtick func(*sim.Simulator)
		mtick = func(s *sim.Simulator) {
			registry.Sample(s.Now())
			if s.Now() < end {
				s.AfterFunc(interval, mtick)
			}
		}
		s.AtFunc(0, mtick)
	}

	// Live-export pump: publish a fresh snapshot on the same cadence as
	// the metrics registry (and scheduled after it, so each snapshot's
	// gauges are the row just sampled).
	if exp := cfg.Obs.Export; exp != nil {
		interval := sim.FromStd(cfg.Obs.MetricsEvery)
		if interval <= 0 {
			interval = sim.FromStd(100 * time.Microsecond)
		}
		var etick func(*sim.Simulator)
		etick = func(s *sim.Simulator) {
			exp.Publish(st.snapshot(s.Now(), false))
			if s.Now() < end {
				s.AfterFunc(interval, etick)
			}
		}
		s.AtFunc(0, etick)
	}

	// Anomaly-engine pump: on the metrics cadence, feed the engine the
	// cumulative SLO counters and the minimum live admit probability
	// across every host. A trigger dumps and resets the flight ring.
	if st.flight != nil && cfg.Obs.FlightEngine != nil {
		eng := flight.NewEngine(*cfg.Obs.FlightEngine)
		interval := sim.FromStd(cfg.Obs.MetricsEvery)
		if interval <= 0 {
			interval = sim.FromStd(100 * time.Microsecond)
		}
		controllers := st.controllers
		var ftick func(*sim.Simulator)
		ftick = func(s *sim.Simulator) {
			var met, miss int64
			minP := 1.0
			now := s.Now()
			for _, ct := range controllers {
				if ct == nil {
					continue
				}
				cs := ct.Stats.Load()
				met += cs.SLOMet
				miss += cs.SLOMisses
				ct.ForEachState(now, func(_ int, _ qos.Class, p float64, _ sim.Duration) {
					if p < minP {
						minP = p
					}
				})
			}
			if tr, ok := eng.Tick(now, met, miss, minP); ok {
				st.flightDump(tr, true)
			}
			if now < end {
				s.AfterFunc(interval, ftick)
			}
		}
		s.AtFunc(0, ftick)
	}

	// Probe and outstanding sampling.
	if len(cfg.Probes) > 0 || cfg.TrackOutstanding {
		interval := sim.FromStd(cfg.SampleEvery)
		controllers := st.controllers
		var tick func(*sim.Simulator)
		tick = func(s *sim.Simulator) {
			col.sample(s, controllers)
			if s.Now() < end {
				s.AfterFunc(interval, tick)
			}
		}
		s.AtFunc(warm, tick)
	}
	return nil
}

// runAndDrain runs the offered load until end, then drains in-flight RPCs
// and flushes the observability sinks.
func runAndDrain(st *runState) error {
	cfg, s, col, end := st.cfg, st.s, st.col, st.end
	s.RunUntil(end)
	for _, g := range col.gens {
		g.Stop()
	}
	col.endMeasurement(s, st.net)
	drain := end / 5
	if drain > sim.FromStd(50*time.Millisecond) {
		drain = sim.FromStd(50 * time.Millisecond)
	}
	s.RunUntil(end + drain)

	// Flush observability output. The run is single-threaded and each run
	// owns its writers, so the streams are deterministic and race-free.
	if st.tracer != nil {
		if w := cfg.Obs.TraceNDJSON; w != nil {
			if err := st.tracer.WriteNDJSON(w); err != nil {
				return fmt.Errorf("aequitas: trace ndjson: %w", err)
			}
		}
		if w := cfg.Obs.TraceChrome; w != nil {
			if err := st.tracer.WriteChromeTrace(w); err != nil {
				return fmt.Errorf("aequitas: trace chrome: %w", err)
			}
		}
	}
	if st.registry != nil && cfg.Obs.MetricsCSV != nil {
		if err := st.registry.WriteCSV(cfg.Obs.MetricsCSV); err != nil {
			return fmt.Errorf("aequitas: metrics csv: %w", err)
		}
	}
	// Final snapshot after the drain, so a lingering /metrics endpoint
	// serves the finished run's totals.
	if cfg.Obs.Export != nil {
		cfg.Obs.Export.Publish(st.snapshot(s.Now(), true))
	}
	if w := cfg.Obs.AttributionCSV; w != nil {
		if err := st.attr.WriteCSV(w); err != nil {
			return fmt.Errorf("aequitas: attribution csv: %w", err)
		}
	}
	if st.flight != nil {
		if st.flightErr != nil {
			return fmt.Errorf("aequitas: flight dump: %w", st.flightErr)
		}
		st.flightDump(flight.Trigger{Kind: flight.TriggerFinal, At: s.Now()}, false)
		if st.flightErr != nil {
			return fmt.Errorf("aequitas: flight dump: %w", st.flightErr)
		}
	}
	return nil
}

// toSpec converts one resolved traffic assignment for one sender into a
// workload.Spec.
func toSpec(cfg *SimConfig, ht *HostTraffic, rt resolvedTraffic, self int) (workload.Spec, error) {
	if ht.AvgLoad <= 0 {
		return workload.Spec{}, fmt.Errorf("aequitas: traffic needs AvgLoad > 0")
	}
	spec := workload.Spec{
		Rate:        sim.Rate(cfg.LinkRate),
		Load:        ht.AvgLoad,
		Rho:         ht.BurstLoad,
		Period:      sim.FromStd(cfg.BurstPeriod),
		Dsts:        rt.dsts,
		DstWeights:  rt.weights,
		ExcludeSelf: rt.excludeSelf,
		Self:        self,
		Shape:       ht.Shape,
	}
	if ht.Arrival == ArrivalPeriodic {
		spec.Process = workload.Periodic
	}
	for _, tc := range ht.Classes {
		sz := tc.Size
		if sz == nil {
			if tc.FixedBytes <= 0 {
				return workload.Spec{}, fmt.Errorf("aequitas: class needs Size or FixedBytes")
			}
			sz = workload.Fixed{Bytes: tc.FixedBytes}
		}
		spec.Classes = append(spec.Classes, workload.ClassSpec{
			Priority: tc.Priority,
			Share:    tc.Share,
			Sizes:    sz,
			Deadline: sim.FromStd(tc.Deadline),
		})
	}
	return spec, nil
}
