package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"aequitas/internal/sim"
)

// Sampler reports a set of named gauge values at one simulated instant.
// Implementations must emit in a deterministic order (sorted keys or a
// fixed traversal), because the registry assigns CSV columns in
// first-appearance order.
type Sampler func(now sim.Time, emit func(name string, v float64))

// Registry collects periodic metric samples into a wide-format time
// series: one row per Sample call, one column per distinct metric name.
// Columns may appear mid-run (admission state and connections are created
// lazily); earlier rows hold NaN for late columns and the CSV writer
// emits those cells empty.
type Registry struct {
	samplers []Sampler
	colIndex map[string]int
	cols     []string
	times    []float64
	rows     [][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{colIndex: make(map[string]int)}
}

// Register adds a sampler invoked on every Sample tick, in registration
// order.
func (r *Registry) Register(s Sampler) {
	if r == nil || s == nil {
		return
	}
	r.samplers = append(r.samplers, s)
}

// Columns returns the metric names in column order.
func (r *Registry) Columns() []string {
	if r == nil {
		return nil
	}
	return r.cols
}

// Rows reports the number of sampled rows.
func (r *Registry) Rows() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// Value returns the sampled value at row i for the named column, or NaN.
func (r *Registry) Value(i int, name string) float64 {
	if r == nil || i < 0 || i >= len(r.rows) {
		return math.NaN()
	}
	idx, ok := r.colIndex[name]
	if !ok || idx >= len(r.rows[i]) {
		return math.NaN()
	}
	return r.rows[i][idx]
}

// LatestGauges calls f for every column holding a value in the most
// recent sample row, in column order. No rows yet → no calls.
func (r *Registry) LatestGauges(f func(name string, v float64)) {
	if r == nil || len(r.rows) == 0 {
		return
	}
	row := r.rows[len(r.rows)-1]
	for j := 0; j < len(row) && j < len(r.cols); j++ {
		if !math.IsNaN(row[j]) {
			f(r.cols[j], row[j])
		}
	}
}

// Sample runs every sampler and appends one row at now.
func (r *Registry) Sample(now sim.Time) {
	if r == nil {
		return
	}
	row := make([]float64, len(r.cols))
	for i := range row {
		row[i] = math.NaN()
	}
	emit := func(name string, v float64) {
		idx, ok := r.colIndex[name]
		if !ok {
			idx = len(r.cols)
			r.colIndex[name] = idx
			r.cols = append(r.cols, name)
			row = append(row, math.NaN())
		}
		row[idx] = v
	}
	for _, s := range r.samplers {
		s(now, emit)
	}
	r.times = append(r.times, now.Seconds())
	r.rows = append(r.rows, row)
}

// MetricFamilies lists the metric-name prefixes emitted by the built-in
// samplers (per-port queues and drops, admission state, transport
// connection state, windowed tail quantiles). ValidateMetricsCSV callers
// use it to reject columns no registered sampler could have produced.
var MetricFamilies = []string{"q.", "drop.", "padmit.", "incwin_us.", "cwnd.", "srtt_us.", "tail."}

// tailQuantileSuffixes are the per-channel tail columns in ascending
// quantile order; ValidateMetricsCSV checks each row's values are
// non-decreasing across them.
var tailQuantileSuffixes = []string{".p50_us", ".p90_us", ".p99_us", ".p999_us"}

// tailGroups maps header columns onto per-channel quantile column-index
// groups: for each "tail.<chan>" base present, the 1-based field indices
// of its p50/p90/p99/p99.9 columns (-1 where a column is absent).
func tailGroups(header []string) [][]int {
	byBase := make(map[string][]int)
	var order []string
	for i, name := range header {
		if !strings.HasPrefix(name, "tail.") {
			continue
		}
		for qi, suf := range tailQuantileSuffixes {
			if strings.HasSuffix(name, suf) {
				base := strings.TrimSuffix(name, suf)
				g, ok := byBase[base]
				if !ok {
					g = []int{-1, -1, -1, -1}
					byBase[base] = g
					order = append(order, base)
				}
				g[qi] = i
				break
			}
		}
	}
	groups := make([][]int, 0, len(order))
	for _, base := range order {
		groups = append(groups, byBase[base])
	}
	return groups
}

// ValidateMetricsCSV checks a wide-format metrics CSV as written by
// Registry.WriteCSV: the header starts with t_s followed by unique,
// non-empty column names (each matching one of the given family prefixes
// when families is non-nil), every row has the header's field count,
// t_s is a finite, non-decreasing float, and every other cell is empty or
// a finite float. Windowed tail columns get one extra structural check:
// within each "tail.<chan>" channel, a row's present quantile cells must
// be non-decreasing from p50 to p99.9. It returns the number of data
// rows. Errors name the physical line number and the offending column.
func ValidateMetricsCSV(r io.Reader, families []string) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("obs: metrics csv: empty (no header)")
	}
	header := strings.Split(sc.Text(), ",")
	if header[0] != "t_s" {
		return 0, fmt.Errorf("obs: metrics csv: line 1: first column must be \"t_s\", got %q", header[0])
	}
	seen := make(map[string]bool, len(header))
	for i, name := range header[1:] {
		col := i + 2 // 1-based, after t_s
		if name == "" {
			return 0, fmt.Errorf("obs: metrics csv: line 1: column %d: empty name", col)
		}
		if seen[name] {
			return 0, fmt.Errorf("obs: metrics csv: line 1: column %d: duplicate name %q", col, name)
		}
		seen[name] = true
		if families != nil && !inFamily(name, families) {
			return 0, fmt.Errorf("obs: metrics csv: line 1: column %d: name %q matches no known metric family", col, name)
		}
	}
	tails := tailGroups(header)
	rows := 0
	lineNo := 1
	lastT := math.Inf(-1)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return rows, fmt.Errorf("obs: metrics csv: line %d: %d fields, header has %d", lineNo, len(fields), len(header))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || math.IsNaN(t) || math.IsInf(t, 0) {
			return rows, fmt.Errorf("obs: metrics csv: line %d: column \"t_s\": not a finite float: %q", lineNo, fields[0])
		}
		if t < lastT {
			return rows, fmt.Errorf("obs: metrics csv: line %d: column \"t_s\": %g before previous %g", lineNo, t, lastT)
		}
		lastT = t
		for i, cell := range fields[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return rows, fmt.Errorf("obs: metrics csv: line %d: column %q: not a finite float: %q", lineNo, header[i+1], cell)
			}
		}
		for _, g := range tails {
			prev := math.Inf(-1)
			prevIdx := -1
			for _, idx := range g {
				if idx < 0 || fields[idx] == "" {
					continue
				}
				v, _ := strconv.ParseFloat(fields[idx], 64)
				if v < prev {
					return rows, fmt.Errorf("obs: metrics csv: line %d: column %q: tail quantile %g below %q's %g",
						lineNo, header[idx], v, header[prevIdx], prev)
				}
				prev, prevIdx = v, idx
			}
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return rows, err
	}
	return rows, nil
}

func inFamily(name string, families []string) bool {
	for _, f := range families {
		if strings.HasPrefix(name, f) {
			return true
		}
	}
	return false
}

// WriteCSV writes the sampled series as wide-format CSV: a t_s time
// column followed by one column per metric. Cells never sampled in a row
// (columns that appeared later) are left empty.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("t_s"); err != nil {
		return err
	}
	for _, c := range r.cols {
		bw.WriteByte(',')
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	var buf []byte
	for i, row := range r.rows {
		buf = strconv.AppendFloat(buf[:0], r.times[i], 'f', 9, 64)
		for j := 0; j < len(r.cols); j++ {
			buf = append(buf, ',')
			if j < len(row) && !math.IsNaN(row[j]) {
				buf = strconv.AppendFloat(buf, row[j], 'g', -1, 64)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
