package aequitas

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sweepCluster is a small, fast cluster config used by the parallel-engine
// tests; i varies the QoSh share so entries are genuinely distinct.
func sweepCluster(i int) SimConfig {
	share := 0.3 + 0.05*float64(i)
	return SimConfig{
		System:     SystemAequitas,
		Hosts:      4,
		Seed:       int64(i + 1),
		Duration:   6 * time.Millisecond,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []SLO{
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.8,
			BurstLoad: 1.4,
			Classes: []TrafficClass{
				{Priority: PC, Share: share, FixedBytes: 32 << 10},
				{Priority: NC, Share: 0.25, FixedBytes: 32 << 10},
				{Priority: BE, Share: 0.75 - share, FixedBytes: 32 << 10},
			},
		}},
	}
}

// TestRunManyDeterministic is the engine's core guarantee: the same
// configs and seeds produce identical Results at 1 worker and at
// GOMAXPROCS workers (and identical to plain sequential Run calls).
func TestRunManyDeterministic(t *testing.T) {
	const n = 4
	cfgs := make([]SimConfig, n)
	for i := range cfgs {
		cfgs[i] = sweepCluster(i)
	}
	seq, err := RunMany(cfgs, ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(cfgs, ParallelOptions{Workers: runtime.GOMAXPROCS(0) + 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		direct, err := Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("config %d: 1-worker and parallel Results differ", i)
		}
		if !reflect.DeepEqual(seq[i], direct) {
			t.Errorf("config %d: RunMany and direct Run Results differ", i)
		}
	}
}

// TestRunManyOrderAndErrors: results come back in input order, a bad
// config reports the lowest-index error, and good configs still complete.
func TestRunManyOrderAndErrors(t *testing.T) {
	cfgs := []SimConfig{
		sweepCluster(0),
		{Hosts: 1, Duration: time.Millisecond}, // invalid: needs >= 2 hosts
		sweepCluster(1),
		{Hosts: 1, Duration: time.Millisecond}, // invalid too; index 1 must win
	}
	res, err := RunMany(cfgs, ParallelOptions{Workers: 3})
	if err == nil {
		t.Fatal("want error from invalid config")
	}
	if want := "sweep config 1"; !contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
	if res[0] == nil || res[2] == nil {
		t.Error("valid configs did not produce results")
	}
	if res[1] != nil || res[3] != nil {
		t.Error("invalid configs produced results")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSweepBaseSeed: BaseSeed overrides per-entry seeds deterministically
// and decorrelates entries.
func TestSweepBaseSeed(t *testing.T) {
	mk := func(i int) SimConfig { cfg := sweepCluster(0); cfg.Seed = 0; return cfg }
	a, err := Sweep(2, mk, ParallelOptions{Workers: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(2, mk, ParallelOptions{Workers: 1, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("entry %d: BaseSeed sweep not reproducible", i)
		}
	}
	// Identical configs, different derived seeds: the entries should not
	// be byte-identical runs of each other.
	if reflect.DeepEqual(a[0], a[1]) {
		t.Error("BaseSeed produced identical runs for distinct indices")
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Error("DeriveSeed not a pure function")
	}
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Error("DeriveSeed ignores base")
	}
}

// TestConcurrentRun runs two simulations concurrently; under `go test
// -race` this fails loudly if Run touches any shared mutable state.
func TestConcurrentRun(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Run(sweepCluster(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestRawGoodputRatio: under a deterministic config the unclamped ratio
// must stay within [0, 1]; anything above 1 is an accounting error that
// the clamped GoodputFraction would otherwise hide.
func TestRawGoodputRatio(t *testing.T) {
	res, err := Run(sweepCluster(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.RawGoodputRatio <= 0 || res.RawGoodputRatio > 1.0 {
		t.Errorf("RawGoodputRatio = %v, want in (0, 1]", res.RawGoodputRatio)
	}
	if res.GoodputFraction != res.RawGoodputRatio {
		t.Errorf("clamp applied though raw ratio %v <= 1", res.RawGoodputRatio)
	}
}

// TestBoundedRNLSamples: MaxRNLSamples keeps memory bounded (log-linear
// histogram collection) while counts, means, and extremes stay exact and
// every reported quantile lands within the histogram's ≤1% relative-error
// bound of the exact order statistic, deterministically.
func TestBoundedRNLSamples(t *testing.T) {
	cfg := sweepCluster(0)
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxRNLSamples = 64
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("bounded runs with identical config differ")
	}
	within := func(got, want float64) bool {
		return want > 0 && math.Abs(got-want)/want <= 0.01
	}
	for cl, sum := range a.RNLRun {
		ex := exact.RNLRun[cl]
		if sum.N != ex.N {
			t.Errorf("class %v: bounded N = %d, exact N = %d", cl, sum.N, ex.N)
		}
		if sum.MeanUS != ex.MeanUS {
			t.Errorf("class %v: bounded mean %v != exact %v", cl, sum.MeanUS, ex.MeanUS)
		}
		if sum.MaxUS != ex.MaxUS {
			t.Errorf("class %v: bounded max %v != exact %v", cl, sum.MaxUS, ex.MaxUS)
		}
		for _, qq := range []struct {
			name      string
			got, want float64
		}{
			{"p50", sum.P50US, ex.P50US},
			{"p90", sum.P90US, ex.P90US},
			{"p99", sum.P99US, ex.P99US},
			{"p99.9", sum.P999US, ex.P999US},
		} {
			if !within(qq.got, qq.want) {
				t.Errorf("class %v %s: hist %v vs exact %v exceeds 1%% relative error",
					cl, qq.name, qq.got, qq.want)
			}
		}
	}
}

// BenchmarkRunManySequential and BenchmarkRunManyParallel time the same
// 8-config sweep at 1 worker and at GOMAXPROCS workers. On a multi-core
// runner the parallel variant must show near-linear speedup (the
// acceptance criterion is >= 2x at 8 configs).
func benchSweepConfigs() []SimConfig {
	cfgs := make([]SimConfig, 8)
	for i := range cfgs {
		cfgs[i] = sweepCluster(i % 4)
		cfgs[i].Seed = int64(i + 1)
	}
	return cfgs
}

func BenchmarkRunManySequential(b *testing.B) {
	cfgs := benchSweepConfigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(cfgs, ParallelOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunManyParallel(b *testing.B) {
	cfgs := benchSweepConfigs()
	b.ReportAllocs()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(cfgs, ParallelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
