package core

import (
	"testing"

	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// TestFlightTapRecordsDecisionsAndObservations checks the controller's
// flight tap end to end: decisions carry the p_admit consulted and the
// verdict, observations carry the measured latency and the SLO outcome.
func TestFlightTapRecordsDecisionsAndObservations(t *testing.T) {
	clk := &ManualClock{}
	ct, err := NewWithClock(Defaults3(2*sim.Microsecond, 4*sim.Microsecond), clk)
	if err != nil {
		t.Fatal(err)
	}
	ring := flight.NewRing(flight.Config{Records: 1 << 10, SampleAdmits: 1})
	ct.SetFlight(ring, 3)
	if ct.Flight() != ring {
		t.Fatal("Flight() did not return the attached ring")
	}

	clk.SetNow(1 * sim.Microsecond)
	clk.SetDraw(0.5)
	if d := ct.Admit(7, qos.High, 2); d.Downgraded || d.Drop {
		t.Fatalf("fresh channel should admit, got %+v", d)
	}
	// Miss the SLO hard so p_admit falls below the next draw.
	clk.SetNow(2 * sim.Microsecond)
	for i := 0; i < 60; i++ {
		ct.Observe(7, qos.High, 100*sim.Microsecond, 1)
	}
	clk.SetNow(3 * sim.Microsecond)
	if d := ct.Admit(7, qos.High, 1); !d.Downgraded {
		t.Fatalf("collapsed channel should downgrade, got %+v", d)
	}

	recs := ring.Snapshot(false)
	var admits, downs, misses int
	for _, r := range recs {
		if r.Src != 3 || r.Peer != 7 {
			t.Fatalf("record carries src %d peer %d, want 3/7", r.Src, r.Peer)
		}
		switch {
		case r.Kind == flight.KindDecision && r.Verdict == flight.VerdictAdmit:
			admits++
			if r.PAdmit != 1 || r.SizeMTUs != 2 {
				t.Fatalf("admit record = %+v", r)
			}
		case r.Kind == flight.KindDecision && r.Verdict == flight.VerdictDowngrade:
			downs++
			if r.PAdmit >= 0.5 {
				t.Fatalf("downgrade recorded p_admit %v, want the collapsed value", r.PAdmit)
			}
			if r.Class != int8(ct.lowest) || r.Requested != int8(qos.High) {
				t.Fatalf("downgrade classes = %+v", r)
			}
		case r.Kind == flight.KindComplete && r.Verdict == flight.VerdictSLOMiss:
			misses++
			if r.LatencyUS != 100 {
				t.Fatalf("miss latency = %v µs, want 100", r.LatencyUS)
			}
		}
	}
	if admits != 1 || downs != 1 || misses != 60 {
		t.Fatalf("recorded %d admits, %d downgrades, %d misses; want 1/1/60", admits, downs, misses)
	}
}

// TestFlightTapDropVerdict checks the drop-configured controller records
// drops rather than downgrades.
func TestFlightTapDropVerdict(t *testing.T) {
	cfg := Defaults3(2*sim.Microsecond, 4*sim.Microsecond)
	cfg.DropInsteadOfDowngrade = true
	clk := &ManualClock{}
	ct, err := NewWithClock(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	ring := flight.NewRing(flight.Config{Records: 1 << 10, SampleAdmits: 1})
	ct.SetFlight(ring, 0)
	for i := 0; i < 60; i++ {
		ct.Observe(0, qos.High, 100*sim.Microsecond, 1)
	}
	clk.SetDraw(0.9)
	if d := ct.Admit(0, qos.High, 1); !d.Drop {
		t.Fatalf("want drop, got %+v", d)
	}
	var drops int
	for _, r := range ring.Snapshot(false) {
		if r.Verdict == flight.VerdictDrop {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("recorded %d drops, want 1", drops)
	}
}

// TestQuotaBypassRecorded checks the QuotaAdmitter's bypass tap.
func TestQuotaBypassRecorded(t *testing.T) {
	clk := &ManualClock{}
	ct, err := NewWithClock(Defaults3(2*sim.Microsecond, 4*sim.Microsecond), clk)
	if err != nil {
		t.Fatal(err)
	}
	ring := flight.NewRing(flight.Config{Records: 1 << 10, SampleAdmits: 1})
	ct.SetFlight(ring, 0)
	qs := NewQuotaServer(map[qos.Class]float64{qos.High: 1e9})
	if err := qs.Grant("tenant", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	qa := &QuotaAdmitter{Controller: ct, Client: qs.ClientWithClock("tenant", clk)}
	if d := qa.Admit(1, qos.High, 1); d.Downgraded || d.Drop {
		t.Fatalf("in-quota RPC not admitted: %+v", d)
	}
	recs := ring.Snapshot(false)
	if len(recs) != 1 || recs[0].Quota != flight.QuotaBypass {
		t.Fatalf("quota bypass not recorded: %+v", recs)
	}
}

// TestAdmitFlightEnabledNoAllocs pins the acceptance criterion: with the
// flight recorder attached, the admit fast path still performs zero
// allocations per decision.
func TestAdmitFlightEnabledNoAllocs(t *testing.T) {
	ct := MustNew(Defaults3(2*sim.Microsecond, 4*sim.Microsecond))
	for dst := 0; dst < 64; dst++ {
		ct.Observe(dst, qos.High, sim.Microsecond, 1)
	}
	ct.SetFlight(flight.NewRing(flight.Config{}), 0)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		ct.Admit(i&63, qos.High, 1)
		i++
	}); n != 0 {
		t.Fatalf("admit with flight recording allocates %v per op, want 0", n)
	}
}

// TestObserveFlightEnabledNoAllocs pins the same budget on the AIMD
// feedback path.
func TestObserveFlightEnabledNoAllocs(t *testing.T) {
	ct := MustNew(Defaults3(2*sim.Microsecond, 4*sim.Microsecond))
	ct.SetFlight(flight.NewRing(flight.Config{}), 0)
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		ct.Observe(i&63, qos.High, sim.Microsecond, 1)
		i++
	}); n != 0 {
		t.Fatalf("observe with flight recording allocates %v per op, want 0", n)
	}
}
