// Command tracecheck validates observability output produced by the
// simulator: NDJSON lifecycle traces (aequitas-sim -trace,
// SimConfig.Obs.TraceNDJSON), wide-format metrics CSVs
// (aequitas-sim -metrics, SimConfig.Obs.MetricsCSV) — including the
// windowed tail-quantile columns added by -tail — and obsreport JSON
// documents (cmd/obsreport -json).
//
// NDJSON lines are checked against the schema in internal/obs — known
// kind, required fields present and correctly typed, timestamps
// non-decreasing, p_admit in [0, 1]. Metrics CSVs are checked for a t_s
// header with columns from the registered metric families, consistent
// field counts, and monotonically non-decreasing time. It exits non-zero
// on the first violation in each file, naming the line and field.
//
// Flight-recorder dumps (aequitas-sim -flight, serve's /debug/flight,
// aequitas-serve's shutdown dump) are validated with -flight against the
// aequitas.flight/v1 schema: per-dump headers with known triggers and
// consistent retention accounting, contiguous record sequence numbers,
// non-decreasing timestamps, and verdicts consistent with each record's
// kind.
//
// Usage:
//
//	tracecheck [-metrics metrics.csv ...] [-report report.json ...] [-flight flight.ndjson ...] [trace.ndjson ...]
//
// `make trace-check` runs a short instrumented simulation and feeds the
// results through this command.
package main

import (
	"flag"
	"fmt"
	"os"

	"aequitas/internal/obs"
	"aequitas/internal/obs/flight"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var metrics, reports, flights multiFlag
	flag.Var(&metrics, "metrics", "metrics CSV to validate (repeatable)")
	flag.Var(&reports, "report", "obsreport JSON to validate against the aequitas.obsreport/v1 schema (repeatable)")
	flag.Var(&flights, "flight", "flight-recorder NDJSON dump to validate against the aequitas.flight/v1 schema (repeatable)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics metrics.csv ...] [-report report.json ...] [-flight flight.ndjson ...] [trace.ndjson ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if len(metrics) == 0 && len(reports) == 0 && len(flights) == 0 && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	check := func(path, what string, validate func(f *os.File) (int, error)) {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			return
		}
		n, err := validate(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			return
		}
		fmt.Printf("%s: %d %s ok\n", path, n, what)
	}
	for _, path := range flag.Args() {
		check(path, "events", func(f *os.File) (int, error) { return obs.ValidateNDJSON(f) })
	}
	for _, path := range metrics {
		check(path, "rows", func(f *os.File) (int, error) { return obs.ValidateMetricsCSV(f, obs.MetricFamilies) })
	}
	for _, path := range flights {
		check(path, "flight records", func(f *os.File) (int, error) {
			dumps, records, err := flight.ValidateDump(f)
			if err != nil {
				return 0, err
			}
			fmt.Printf("%s: %d dumps ok\n", path, dumps)
			return records, nil
		})
	}
	for _, path := range reports {
		check(path, "sections", func(f *os.File) (int, error) {
			rep, err := obs.ValidateReportJSON(f)
			if err != nil {
				return 0, err
			}
			n := 0
			if rep.Trace != nil {
				n++
			}
			if rep.Metrics != nil {
				n++
			}
			if rep.Attribution != nil {
				n++
			}
			if rep.Flight != nil {
				n++
			}
			return n, nil
		})
	}
	if failed {
		os.Exit(1)
	}
}
