package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relErr is the |approx-exact|/exact relative error, treating exact 0
// specially (only an exact 0 answer is error-free there).
func relErr(approx, exact float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / math.Abs(exact)
}

// quantileInputs are the adversarial streams the ≤1% bound is pinned on:
// heavy-tailed (skewed) and bimodal shapes are exactly where reservoir
// subsampling loses the tail.
func quantileInputs(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	skewed := make([]float64, n)
	for i := range skewed {
		// Lognormal-ish: exp of a normal, scaled to microsecond latencies.
		skewed[i] = 12 * math.Exp(1.6*rng.NormFloat64())
	}
	bimodal := make([]float64, n)
	for i := range bimodal {
		if rng.Float64() < 0.8 {
			bimodal[i] = 20 + 5*rng.Float64() // fast mode ~20-25us
		} else {
			bimodal[i] = 4000 + 1500*rng.Float64() // congested mode ~4-5.5ms
		}
	}
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1 + 999*rng.Float64()
	}
	return map[string][]float64{"skewed": skewed, "bimodal": bimodal, "uniform": uniform}
}

// TestHistQuantileError pins the acceptance criterion: histogram
// quantiles are within 1% relative error of exact order statistics at
// p50/p90/p99/p99.9 on skewed and bimodal inputs.
func TestHistQuantileError(t *testing.T) {
	for name, xs := range quantileInputs(200_000) {
		exact := &Sample{}
		h := NewHist()
		for _, x := range xs {
			exact.Add(x)
			h.Record(x)
		}
		for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
			want := exact.Quantile(q)
			got := h.Quantile(q)
			if e := relErr(got, want); e > 0.01 {
				t.Errorf("%s q=%v: hist %.6g vs exact %.6g, rel err %.4f > 1%%",
					name, q, got, want, e)
			}
		}
		if h.N() != int64(exact.N()) {
			t.Errorf("%s: N %d != exact %d", name, h.N(), exact.N())
		}
		if h.Sum() != exact.Sum() {
			t.Errorf("%s: Sum %v != exact %v", name, h.Sum(), exact.Sum())
		}
		if h.Min() != exact.Min() || h.Max() != exact.Max() {
			t.Errorf("%s: min/max %v/%v != exact %v/%v",
				name, h.Min(), h.Max(), exact.Min(), exact.Max())
		}
	}
}

// TestHistSampleQuantileError covers the same bound through the Sample
// facade the collector uses for bounded RNL collection.
func TestHistSampleQuantileError(t *testing.T) {
	for name, xs := range quantileInputs(100_000) {
		exact := &Sample{}
		hs := NewHistSample()
		for _, x := range xs {
			exact.Add(x)
			hs.Add(x)
		}
		for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
			if e := relErr(hs.Quantile(q), exact.Quantile(q)); e > 0.01 {
				t.Errorf("%s q=%v: rel err %.4f > 1%%", name, q, e)
			}
		}
		if hs.N() != exact.N() || hs.Sum() != exact.Sum() || hs.Mean() != exact.Mean() {
			t.Errorf("%s: N/Sum/Mean not exact", name)
		}
		if hs.Retained() != 0 {
			t.Errorf("%s: hist-backed sample retained %d values", name, hs.Retained())
		}
		if e := relErr(hs.StdDev(), exact.StdDev()); e > 1e-9 {
			t.Errorf("%s: StdDev %v vs exact %v", name, hs.StdDev(), exact.StdDev())
		}
	}
}

// TestHistMergeDeterministic: merging shards in any order equals
// recording the concatenated stream directly.
func TestHistMergeDeterministic(t *testing.T) {
	xs := quantileInputs(30_000)["skewed"]
	whole := NewHist()
	for _, x := range xs {
		whole.Record(x)
	}
	shards := make([]*Hist, 4)
	for i := range shards {
		shards[i] = NewHist()
	}
	for i, x := range xs {
		shards[i%4].Record(x)
	}
	var first *Hist
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}} {
		m := NewHist()
		for _, i := range order {
			m.Merge(shards[i])
		}
		if m.N() != whole.N() || m.Min() != whole.Min() || m.Max() != whole.Max() {
			t.Fatalf("order %v: merged summary diverges", order)
		}
		// Bucket counts are integers, so quantiles must match the
		// direct-recording histogram exactly; Sum differs only by float
		// addition order.
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if m.Quantile(q) != whole.Quantile(q) {
				t.Errorf("order %v q=%v: merged %v != whole %v",
					order, q, m.Quantile(q), whole.Quantile(q))
			}
		}
		if relErr(m.Sum(), whole.Sum()) > 1e-12 {
			t.Errorf("order %v: merged sum %v far from whole %v", order, m.Sum(), whole.Sum())
		}
		if first == nil {
			first = m
		} else {
			for q := 0.0; q <= 1.0; q += 0.05 {
				if first.Quantile(q) != m.Quantile(q) {
					t.Errorf("q=%v: merge order changed quantile: %v vs %v",
						q, first.Quantile(q), m.Quantile(q))
				}
			}
		}
	}
}

// TestHistEdgeCases: empty, zero/negative (underflow), overflow, reset.
func TestHistEdgeCases(t *testing.T) {
	h := NewHist()
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Error("empty hist should answer NaN")
	}
	h.Record(0)
	h.Record(-5)
	h.Record(1e18) // above the tracked range
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Min() != -5 || h.Max() != 1e18 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.999); q != 1e18 {
		t.Errorf("overflow quantile = %v, want exact max", q)
	}
	if q := h.Quantile(0.01); q != -5 {
		t.Errorf("underflow quantile = %v, want exact min", q)
	}
	h.Reset()
	if h.N() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("reset did not empty the histogram")
	}
	h.Record(100)
	if h.Quantile(0.5) < 99 || h.Quantile(0.5) > 101 {
		t.Errorf("post-reset quantile = %v", h.Quantile(0.5))
	}
}

// TestHistRecordNoAlloc pins the 0 allocs/op record path.
func TestHistRecordNoAlloc(t *testing.T) {
	h := NewHist()
	v := 3.7
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v *= 1.01
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestHistBucketsCumulative: Buckets yields ascending upper bounds whose
// counts sum to N, which is what the Prometheus renderer depends on.
func TestHistBucketsCumulative(t *testing.T) {
	h := NewHist()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		h.Record(math.Exp(3 * rng.NormFloat64()))
	}
	var total int64
	last := math.Inf(-1)
	h.Buckets(func(upper float64, count int64) {
		if upper <= last {
			t.Fatalf("bucket bounds not ascending: %v after %v", upper, last)
		}
		last = upper
		total += count
	})
	if total != h.N() {
		t.Errorf("bucket counts sum to %d, N = %d", total, h.N())
	}
}

// BenchmarkHistRecord is the tracked 0 allocs/op record-path benchmark.
func BenchmarkHistRecord(b *testing.B) {
	h := NewHist()
	xs := quantileInputs(4096)["skewed"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(xs[i&4095])
	}
}

// BenchmarkHistQuantile measures a tail-quantile read on a well-filled
// histogram — the per-window cost of the tail time-series sampler.
func BenchmarkHistQuantile(b *testing.B) {
	h := NewHist()
	for _, x := range quantileInputs(200_000)["bimodal"] {
		h.Record(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.Quantile(0.999)
	}
	_ = sink
}
