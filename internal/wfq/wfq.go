// Package wfq implements the packet scheduling disciplines used at switch
// egress ports: weighted fair queuing (self-clocked virtual-time WFQ),
// deficit weighted round robin (DWRR), strict priority queuing (SPQ),
// FIFO, and the urgency-ordered priority queue used by pFabric- and
// Homa-style baselines.
//
// The paper treats WFQ as the general scheduling mechanism with
// Virtual-Time/PGPS and DWRR as implementations (§2.3, footnote 1); this
// package provides both so that experiments can check that results do not
// depend on the WFQ realisation.
package wfq

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
)

// validateWeights panics unless every class weight is a positive finite
// number. A zero or negative weight would make WFQ's finish-tag division
// produce +Inf/NaN virtual times (and DWRR a non-positive quantum), which
// silently corrupts scheduling order; failing loudly at construction
// mirrors the qos.Weights validation the public simulation config applies.
func validateWeights(weights []float64) {
	if len(weights) == 0 {
		panic("wfq: no class weights")
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			panic(fmt.Sprintf("wfq: weight[%d] = %v, must be positive and finite", i, w))
		}
	}
}

// Item is anything schedulable: a packet with a size, a QoS class, and an
// urgency metric used only by priority-based disciplines (lower urgency is
// served first, e.g. remaining flow size for pFabric's SRPT).
type Item interface {
	SizeBytes() int
	QoS() int
	Urgency() int64
}

// Scheduler is one egress port's queuing discipline. Enqueue returns the
// items dropped to make room, which may include the offered item itself
// (drop-tail) or previously queued items (pFabric drops the least urgent).
// Dequeue returns the next item to transmit, or nil when empty.
type Scheduler interface {
	Enqueue(it Item) (dropped []Item)
	Dequeue() Item
	QueuedBytes() int
	QueuedItems() int
	// BytesFor reports queued bytes for one QoS class, for occupancy
	// instrumentation.
	BytesFor(class int) int
}

// fifoQueue is a FIFO of items with byte accounting, backed by a
// power-of-two ring buffer so steady-state enqueue/dequeue cycles never
// allocate (a head-sliced Go slice would lose front capacity and force
// append to reallocate on every wrap).
type fifoQueue struct {
	items []Item // ring storage; len(items) is the capacity, a power of two
	head  int
	n     int
	bytes int
}

func (q *fifoQueue) push(it Item) {
	if q.n == len(q.items) {
		q.grow()
	}
	q.items[(q.head+q.n)&(len(q.items)-1)] = it
	q.n++
	q.bytes += it.SizeBytes()
}

func (q *fifoQueue) front() Item { return q.items[q.head] }

func (q *fifoQueue) pop() Item {
	if q.n == 0 {
		return nil
	}
	it := q.items[q.head]
	q.items[q.head] = nil
	q.head = (q.head + 1) & (len(q.items) - 1)
	q.n--
	q.bytes -= it.SizeBytes()
	return it
}

func (q *fifoQueue) grow() {
	newCap := 2 * len(q.items)
	if newCap == 0 {
		newCap = 8
	}
	grown := make([]Item, newCap)
	for i := 0; i < q.n; i++ {
		grown[i] = q.items[(q.head+i)&(len(q.items)-1)]
	}
	q.items = grown
	q.head = 0
}

func (q *fifoQueue) len() int { return q.n }

// WFQ is a self-clocked fair queueing (SCFQ) scheduler: each arriving
// packet receives a virtual finish tag F = max(F_prev(class), V) + L/φ and
// the packet with the smallest finish tag is served next, where V is the
// finish tag of the packet most recently dequeued. SCFQ approximates PGPS
// within one packet per queue, which is the fidelity the Figure 10
// validation relies on.
type WFQ struct {
	weights  []float64
	capBytes int // per-class byte capacity (0 = unlimited)

	virt   float64
	lastF  []float64
	queues []taggedQueue
	qBytes int
	qItems int
	// active is a bitmask of backlogged class queues (bit c set when
	// queues[c] is non-empty), so Dequeue visits only classes with work
	// instead of scanning every configured class. Maintained only when the
	// class count fits a word; wider configurations fall back to a scan.
	active uint64
}

type taggedItem struct {
	it     Item
	finish float64
}

// taggedQueue is a FIFO of tagged items backed by a power-of-two ring
// buffer; see fifoQueue for why a plain head-sliced slice is not used.
type taggedQueue struct {
	items []taggedItem
	head  int
	n     int
	bytes int
}

func (q *taggedQueue) push(ti taggedItem) {
	if q.n == len(q.items) {
		q.grow()
	}
	q.items[(q.head+q.n)&(len(q.items)-1)] = ti
	q.n++
	q.bytes += ti.it.SizeBytes()
}

func (q *taggedQueue) front() *taggedItem { return &q.items[q.head] }

func (q *taggedQueue) pop() taggedItem {
	ti := q.items[q.head]
	q.items[q.head] = taggedItem{}
	q.head = (q.head + 1) & (len(q.items) - 1)
	q.n--
	q.bytes -= ti.it.SizeBytes()
	return ti
}

func (q *taggedQueue) grow() {
	newCap := 2 * len(q.items)
	if newCap == 0 {
		newCap = 8
	}
	grown := make([]taggedItem, newCap)
	for i := 0; i < q.n; i++ {
		grown[i] = q.items[(q.head+i)&(len(q.items)-1)]
	}
	q.items = grown
	q.head = 0
}

// NewWFQ returns a WFQ over len(weights) classes. perClassBytes bounds
// each class queue (0 means unlimited, used for theory-validation runs).
// NewWFQ panics if any weight is zero, negative, or non-finite.
func NewWFQ(weights []float64, perClassBytes int) *WFQ {
	validateWeights(weights)
	w := &WFQ{
		weights:  append([]float64(nil), weights...),
		capBytes: perClassBytes,
		lastF:    make([]float64, len(weights)),
		queues:   make([]taggedQueue, len(weights)),
	}
	return w
}

// Enqueue implements Scheduler.
func (w *WFQ) Enqueue(it Item) []Item {
	c := it.QoS()
	if c < 0 || c >= len(w.queues) {
		c = len(w.queues) - 1
	}
	q := &w.queues[c]
	if w.capBytes > 0 && q.bytes+it.SizeBytes() > w.capBytes {
		return []Item{it}
	}
	start := w.lastF[c]
	if w.virt > start {
		start = w.virt
	}
	finish := start + float64(it.SizeBytes())/w.weights[c]
	w.lastF[c] = finish
	q.push(taggedItem{it, finish})
	if c < 64 {
		w.active |= 1 << uint(c)
	}
	w.qBytes += it.SizeBytes()
	w.qItems++
	return nil
}

// Dequeue implements Scheduler: serve the head-of-line packet with the
// smallest virtual finish tag.
func (w *WFQ) Dequeue() Item {
	best := -1
	var bestF float64
	if len(w.queues) <= 64 {
		// Visit only backlogged classes via the active mask.
		for m := w.active; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			if f := w.queues[c].front().finish; best < 0 || f < bestF {
				best, bestF = c, f
			}
		}
	} else {
		for c := range w.queues {
			q := &w.queues[c]
			if q.n == 0 {
				continue
			}
			if f := q.front().finish; best < 0 || f < bestF {
				best, bestF = c, f
			}
		}
	}
	if best < 0 {
		// All queues empty: reset virtual time so long idle periods do
		// not inflate future tags.
		w.virt = 0
		for i := range w.lastF {
			w.lastF[i] = 0
		}
		return nil
	}
	q := &w.queues[best]
	ti := q.pop()
	if q.n == 0 && best < 64 {
		w.active &^= 1 << uint(best)
	}
	w.qBytes -= ti.it.SizeBytes()
	w.qItems--
	w.virt = ti.finish
	return ti.it
}

func (w *WFQ) QueuedBytes() int { return w.qBytes }
func (w *WFQ) QueuedItems() int { return w.qItems }
func (w *WFQ) BytesFor(c int) int {
	if c < 0 || c >= len(w.queues) {
		return 0
	}
	return w.queues[c].bytes
}

// DWRR is deficit weighted round robin (Shreedhar & Varghese): each class
// has a quantum proportional to its weight; a round visits backlogged
// classes, adding the quantum to a deficit counter and transmitting
// packets while the deficit covers them.
type DWRR struct {
	weights  []float64
	quantum  int // bytes added per round for weight 1.0
	capBytes int

	deficit []int
	queues  []fifoQueue
	next    int
	qBytes  int
	qItems  int
}

// NewDWRR returns a DWRR scheduler; quantumBytes is the per-round byte
// quantum granted to a class of weight 1 (typically one MTU). NewDWRR
// panics if any weight is zero, negative, or non-finite.
func NewDWRR(weights []float64, quantumBytes, perClassBytes int) *DWRR {
	validateWeights(weights)
	return &DWRR{
		weights:  append([]float64(nil), weights...),
		quantum:  quantumBytes,
		capBytes: perClassBytes,
		deficit:  make([]int, len(weights)),
		queues:   make([]fifoQueue, len(weights)),
	}
}

// Enqueue implements Scheduler.
func (d *DWRR) Enqueue(it Item) []Item {
	c := it.QoS()
	if c < 0 || c >= len(d.queues) {
		c = len(d.queues) - 1
	}
	q := &d.queues[c]
	if d.capBytes > 0 && q.bytes+it.SizeBytes() > d.capBytes {
		return []Item{it}
	}
	q.push(it)
	d.qBytes += it.SizeBytes()
	d.qItems++
	return nil
}

// Dequeue implements Scheduler.
func (d *DWRR) Dequeue() Item {
	if d.qItems == 0 {
		for i := range d.deficit {
			d.deficit[i] = 0
		}
		return nil
	}
	n := len(d.queues)
	// At most two full rounds are needed: one to accumulate deficits, one
	// to serve; loop defensively with a bound.
	for scanned := 0; scanned < 4*n+4; {
		c := d.next
		q := &d.queues[c]
		if q.len() == 0 {
			d.deficit[c] = 0
			d.next = (d.next + 1) % n
			scanned++
			continue
		}
		head := q.front()
		if d.deficit[c] >= head.SizeBytes() {
			d.deficit[c] -= head.SizeBytes()
			it := q.pop()
			d.qBytes -= it.SizeBytes()
			d.qItems--
			return it
		}
		d.deficit[c] += int(float64(d.quantum) * d.weights[c])
		d.next = (d.next + 1) % n
		scanned++
	}
	// Quantum too small relative to packet size for any progress; grant
	// the head of the first backlogged queue to preserve liveness.
	for c := range d.queues {
		if d.queues[c].len() > 0 {
			it := d.queues[c].pop()
			d.qBytes -= it.SizeBytes()
			d.qItems--
			return it
		}
	}
	return nil
}

func (d *DWRR) QueuedBytes() int { return d.qBytes }
func (d *DWRR) QueuedItems() int { return d.qItems }
func (d *DWRR) BytesFor(c int) int {
	if c < 0 || c >= len(d.queues) {
		return 0
	}
	return d.queues[c].bytes
}

// SPQ is strict priority queuing: class 0 is always served before class 1,
// and so on. The paper evaluates SPQ as the discipline that fails the race
// to the top (§6.7).
type SPQ struct {
	capBytes int
	queues   []fifoQueue
	qBytes   int
	qItems   int
}

// NewSPQ returns a strict-priority scheduler over levels classes.
func NewSPQ(levels, perClassBytes int) *SPQ {
	return &SPQ{capBytes: perClassBytes, queues: make([]fifoQueue, levels)}
}

// Enqueue implements Scheduler.
func (s *SPQ) Enqueue(it Item) []Item {
	c := it.QoS()
	if c < 0 || c >= len(s.queues) {
		c = len(s.queues) - 1
	}
	q := &s.queues[c]
	if s.capBytes > 0 && q.bytes+it.SizeBytes() > s.capBytes {
		return []Item{it}
	}
	q.push(it)
	s.qBytes += it.SizeBytes()
	s.qItems++
	return nil
}

// Dequeue implements Scheduler.
func (s *SPQ) Dequeue() Item {
	for c := range s.queues {
		if s.queues[c].len() > 0 {
			it := s.queues[c].pop()
			s.qBytes -= it.SizeBytes()
			s.qItems--
			return it
		}
	}
	return nil
}

func (s *SPQ) QueuedBytes() int { return s.qBytes }
func (s *SPQ) QueuedItems() int { return s.qItems }
func (s *SPQ) BytesFor(c int) int {
	if c < 0 || c >= len(s.queues) {
		return 0
	}
	return s.queues[c].bytes
}

// FIFO is a single first-in-first-out queue ignoring QoS classes, the
// degenerate single-QoS discipline.
type FIFO struct {
	capBytes int
	q        fifoQueue
}

// NewFIFO returns a FIFO with the given byte capacity (0 = unlimited).
func NewFIFO(capBytes int) *FIFO { return &FIFO{capBytes: capBytes} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(it Item) []Item {
	if f.capBytes > 0 && f.q.bytes+it.SizeBytes() > f.capBytes {
		return []Item{it}
	}
	f.q.push(it)
	return nil
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() Item    { return f.q.pop() }
func (f *FIFO) QueuedBytes() int { return f.q.bytes }
func (f *FIFO) QueuedItems() int { return f.q.len() }
func (f *FIFO) BytesFor(int) int { return f.q.bytes }

// PriorityQueue serves the most urgent item first (smallest Urgency), with
// FIFO order among equal urgencies, and when full makes room by discarding
// the least urgent queued item if the arrival is more urgent (pFabric's
// enqueue/drop policy).
type PriorityQueue struct {
	capBytes int
	h        urgencyHeap
	bytes    int
}

// NewPriorityQueue returns a priority queue with the given byte capacity
// (0 = unlimited).
func NewPriorityQueue(capBytes int) *PriorityQueue {
	return &PriorityQueue{capBytes: capBytes}
}

type pqEntry struct {
	it  Item
	seq uint64
}

type urgencyHeap struct {
	entries []pqEntry
	seq     uint64
}

func (h urgencyHeap) Len() int { return len(h.entries) }
func (h urgencyHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.it.Urgency() != b.it.Urgency() {
		return a.it.Urgency() < b.it.Urgency()
	}
	return a.seq < b.seq
}
func (h urgencyHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *urgencyHeap) Push(x any)   { h.entries = append(h.entries, x.(pqEntry)) }
func (h *urgencyHeap) Pop() any {
	old := h.entries
	n := len(old)
	e := old[n-1]
	old[n-1] = pqEntry{}
	h.entries = old[:n-1]
	return e
}

// Enqueue implements Scheduler.
func (p *PriorityQueue) Enqueue(it Item) []Item {
	var dropped []Item
	for p.capBytes > 0 && p.bytes+it.SizeBytes() > p.capBytes {
		worst := p.leastUrgentIndex()
		if worst < 0 {
			return append(dropped, it)
		}
		w := p.h.entries[worst].it
		if w.Urgency() <= it.Urgency() {
			// Arrival is no more urgent than everything queued: drop it.
			return append(dropped, it)
		}
		heap.Remove(&p.h, worst)
		p.bytes -= w.SizeBytes()
		dropped = append(dropped, w)
	}
	p.h.seq++
	heap.Push(&p.h, pqEntry{it, p.h.seq})
	p.bytes += it.SizeBytes()
	return dropped
}

func (p *PriorityQueue) leastUrgentIndex() int {
	worst := -1
	for i, e := range p.h.entries {
		if worst < 0 {
			worst = i
			continue
		}
		w := p.h.entries[worst]
		if e.it.Urgency() > w.it.Urgency() ||
			(e.it.Urgency() == w.it.Urgency() && e.seq > w.seq) {
			worst = i
		}
	}
	return worst
}

// Dequeue implements Scheduler.
func (p *PriorityQueue) Dequeue() Item {
	if p.h.Len() == 0 {
		return nil
	}
	e := heap.Pop(&p.h).(pqEntry)
	p.bytes -= e.it.SizeBytes()
	return e.it
}

func (p *PriorityQueue) QueuedBytes() int { return p.bytes }
func (p *PriorityQueue) QueuedItems() int { return p.h.Len() }
func (p *PriorityQueue) BytesFor(c int) int {
	total := 0
	for _, e := range p.h.entries {
		if e.it.QoS() == c {
			total += e.it.SizeBytes()
		}
	}
	return total
}
