package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/sim"
)

// Brownout levels, from healthy to hard-shedding. Each level includes
// the measures of the ones below it.
const (
	// BrownoutOff: serve everything the controller admits.
	BrownoutOff int32 = iota
	// BrownoutThinScavenger: reject work running on the scavenger class
	// (downgraded or best-effort) instead of serving it — the cheapest
	// capacity to reclaim, since scavenger work has no SLO.
	BrownoutThinScavenger
	// BrownoutTighten: additionally tighten the effective admit
	// probability below the controller's p_admit by TightenFactor, biasing
	// Algorithm 1 toward shedding before queues grow.
	BrownoutTighten
	// BrownoutHardShed: reject all but HardShedKeep of inbound requests
	// before they reach the controller — the load-shedding of last resort.
	BrownoutHardShed
)

// brownoutLevelName names a level for logs and dump details.
func brownoutLevelName(l int32) string {
	switch l {
	case BrownoutThinScavenger:
		return "thin-scavenger"
	case BrownoutTighten:
		return "tighten"
	case BrownoutHardShed:
		return "hard-shed"
	default:
		return "off"
	}
}

// BrownoutConfig parameterises the overload brownout controller: a
// damage-limitation ladder the serving layer climbs when completion
// latency or concurrency says the process itself (not the network
// Algorithm 1 watches) is overloaded.
type BrownoutConfig struct {
	// LatencyThreshold is the completion latency above which a request
	// counts as slow. Required (zero disables the latency signal).
	LatencyThreshold time.Duration
	// BadFraction is the fraction of completions in a window that must be
	// slow for the window to count as overloaded (default 0.5).
	BadFraction float64
	// MaxInflight marks the process overloaded whenever more than this
	// many requests are in flight, regardless of latency (0 disables).
	MaxInflight int64
	// Window is the evaluation cadence (default 1s).
	Window time.Duration
	// StepUpAfter is how many consecutive overloaded windows precede an
	// escalation (default 1: react fast).
	StepUpAfter int
	// StepDownAfter is how many consecutive healthy windows precede a
	// de-escalation (default 3: recover cautiously). The asymmetry is the
	// hysteresis that keeps the controller from oscillating.
	StepDownAfter int
	// TightenFactor multiplies the effective admit probability at
	// BrownoutTighten and above (default 0.5).
	TightenFactor float64
	// HardShedKeep is the fraction of requests still accepted at
	// BrownoutHardShed (default 0.05), keeping a trickle of signal
	// flowing so recovery is observable.
	HardShedKeep float64
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.BadFraction <= 0 {
		c.BadFraction = 0.5
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.StepUpAfter <= 0 {
		c.StepUpAfter = 1
	}
	if c.StepDownAfter <= 0 {
		c.StepDownAfter = 3
	}
	if c.TightenFactor <= 0 || c.TightenFactor >= 1 {
		c.TightenFactor = 0.5
	}
	if c.HardShedKeep <= 0 || c.HardShedKeep >= 1 {
		c.HardShedKeep = 0.05
	}
	return c
}

// brownout is the level state machine. Completions feed the window
// counters; a CAS gate elects one request per window to run the
// evaluation, so there is no background goroutine and an idle process
// steps down only when traffic (and thus evidence of health) flows.
type brownout struct {
	cfg   BrownoutConfig
	clock core.Clock
	// onTransition (set once at construction) observes every level
	// change; level-ups freeze a flight dump.
	onTransition func(from, to int32, at sim.Time)

	level    atomic.Int32
	inflight atomic.Int64
	// Window accumulators, reset at each evaluation.
	total atomic.Int64
	slow  atomic.Int64

	// lastEval is the clock reading (sim.Time units) of the last
	// evaluation.
	lastEval atomic.Int64
	mu       sync.Mutex // serialises evaluations
	upStreak   int
	downStreak int

	transitions atomic.Int64
}

func newBrownout(cfg BrownoutConfig, clock core.Clock) *brownout {
	return &brownout{cfg: cfg.withDefaults(), clock: clock}
}

// Level reports the current brownout level.
func (b *brownout) Level() int32 {
	if b == nil {
		return BrownoutOff
	}
	return b.level.Load()
}

// enter/exit bracket one in-flight request.
func (b *brownout) enter() {
	if b != nil {
		b.inflight.Add(1)
	}
}

func (b *brownout) exit() {
	if b != nil {
		b.inflight.Add(-1)
	}
}

// completed feeds one completion latency and gives the evaluator a
// chance to run.
func (b *brownout) completed(elapsed time.Duration) {
	if b == nil {
		return
	}
	b.total.Add(1)
	if b.cfg.LatencyThreshold > 0 && elapsed > b.cfg.LatencyThreshold {
		b.slow.Add(1)
	}
	b.maybeEval()
}

// maybeEval runs at most one evaluation per Window: requests race to CAS
// the last-evaluation timestamp forward and the winner inspects the
// window counters under the mutex.
func (b *brownout) maybeEval() {
	now := int64(b.clock.Now())
	last := b.lastEval.Load()
	if now-last < int64(sim.FromStd(b.cfg.Window)) {
		return
	}
	if !b.lastEval.CompareAndSwap(last, now) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.total.Swap(0)
	slow := b.slow.Swap(0)
	overloaded := false
	if total > 0 && b.cfg.LatencyThreshold > 0 &&
		float64(slow)/float64(total) > b.cfg.BadFraction {
		overloaded = true
	}
	if b.cfg.MaxInflight > 0 && b.inflight.Load() > b.cfg.MaxInflight {
		overloaded = true
	}
	cur := b.level.Load()
	if overloaded {
		b.upStreak++
		b.downStreak = 0
		if b.upStreak >= b.cfg.StepUpAfter && cur < BrownoutHardShed {
			b.step(cur, cur+1, sim.Time(now))
			b.upStreak = 0
		}
		return
	}
	b.downStreak++
	b.upStreak = 0
	if b.downStreak >= b.cfg.StepDownAfter && cur > BrownoutOff {
		b.step(cur, cur-1, sim.Time(now))
		b.downStreak = 0
	}
}

// step moves the level (caller holds mu) and notifies the observer.
func (b *brownout) step(from, to int32, at sim.Time) {
	b.level.Store(to)
	b.transitions.Add(1)
	if b.onTransition != nil {
		b.onTransition(from, to, at)
	}
}

// shedResult says what the brownout ladder did to one request.
type shedResult uint8

const (
	shedNone shedResult = iota
	// shedHard: rejected before the admission draw (BrownoutHardShed).
	shedHard
	// shedScavenger: the request would run on the scavenger class, which
	// the current level is thinning.
	shedScavenger
)

// preAdmit runs the checks that precede the admission draw. A hard-shed
// verdict means the request must be rejected without consulting the
// controller at all.
func (b *brownout) preAdmit() shedResult {
	if b == nil || b.level.Load() < BrownoutHardShed {
		return shedNone
	}
	if b.clock.Float64() < b.cfg.HardShedKeep {
		return shedNone
	}
	return shedHard
}

// tightens reports whether an admitted SLO-class request loses the
// extra Bernoulli draw that pushes the effective admit probability to
// p_admit × TightenFactor.
func (b *brownout) tightens() bool {
	if b == nil || b.level.Load() < BrownoutTighten {
		return false
	}
	return b.clock.Float64() >= b.cfg.TightenFactor
}

// thinsScavenger reports whether scavenger-class work is being shed.
func (b *brownout) thinsScavenger() bool {
	return b != nil && b.level.Load() >= BrownoutThinScavenger
}
