// Package sim provides the discrete-event simulation kernel used by the
// packet-level network simulator: a picosecond-resolution clock, a binary
// event heap, and a deterministic random source.
//
// The kernel is deliberately single-threaded: a Simulator owns an event
// queue and advances virtual time by popping the earliest event. Given the
// same seed and the same sequence of scheduled events, two runs produce
// bit-identical results, which the test suite relies on.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in picoseconds since the start of the
// simulation. Picoseconds keep packet serialisation times exact at rates up
// to ~1 Tbps (one byte at 100 Gbps is exactly 80 ps) while an int64 still
// covers about 106 days of simulated time.
type Time int64

// Duration is a span of simulated time, in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = 1<<63 - 1

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Std converts t to a time.Duration. Precision below one nanosecond is
// truncated.
func (t Time) Std() time.Duration { return time.Duration(t / Nanosecond) }

// FromStd converts a time.Duration into a simulation Duration.
func FromStd(d time.Duration) Duration { return Duration(d) * Nanosecond }

// FromSeconds converts floating-point seconds into a simulation Duration,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Duration { return Duration(s*float64(Second) + 0.5) }

// FromMicros converts floating-point microseconds into a Duration.
func FromMicros(us float64) Duration { return Duration(us*float64(Microsecond) + 0.5) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t/Nanosecond))
	}
}
