package netsim

import (
	"math/rand"

	"aequitas/internal/obs"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

// Handler consumes packets delivered by a link.
type Handler interface {
	HandlePacket(s *sim.Simulator, p *Packet)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(s *sim.Simulator, p *Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(s *sim.Simulator, p *Packet) { f(s, p) }

// LinkStats counts traffic through a link.
type LinkStats struct {
	TxPackets   int64
	TxBytes     int64
	DropPackets int64
	DropBytes   int64
	// FaultDropPackets/FaultDropBytes count packets blackholed while the
	// link was down or lost to an injected random-loss rate. They are kept
	// separate from DropPackets (buffer overflow) so congestion and
	// injected chaos stay distinguishable in reports.
	FaultDropPackets int64
	FaultDropBytes   int64
	// BusyTime accumulates serialisation time, for utilisation reports.
	BusyTime sim.Duration
}

// Link is a unidirectional link with an egress scheduler at its sending
// side, a fixed line rate, and a propagation delay. Transmission is
// store-and-forward: a packet occupies the transmitter for Size/Rate, then
// arrives at the far end Prop later. Propagation is pipelined — the next
// packet starts serialising as soon as the previous one leaves the
// transmitter.
type Link struct {
	Name  string
	Rate  sim.Rate
	Prop  sim.Duration
	Sched wfq.Scheduler
	Stats LinkStats

	dst  Handler
	busy bool

	// Fault-injection state (internal/faults drives it). While down the
	// link blackholes arrivals and pauses its transmitter; lossRate drops
	// each arriving packet independently with that probability, drawn
	// from lossRNG (a dedicated stream, so the main simulation RNG
	// sequence is identical with and without loss).
	down     bool
	lossRate float64
	lossRNG  *rand.Rand

	// OnDrop, when set, is invoked for every packet the scheduler drops,
	// letting transports implement loss detection hooks and tests count
	// what was lost.
	OnDrop func(s *sim.Simulator, p *Packet)

	// Trace, when set, receives per-hop queue-residency and drop events.
	// nil disables tracing at zero cost on the transmit path.
	Trace *obs.Tracer

	// Attr, when set, receives tail-packet queue residencies for latency
	// attribution; Audit, when set, checks every data packet's residency
	// against its class bound. Both nil-disable at zero transmit-path
	// cost, like Trace.
	Attr  *obs.Attributor
	Audit *obs.Auditor

	// tx is the reusable serialisation-done event: a link serialises at
	// most one packet at a time, so a single node suffices and the transmit
	// path schedules no closures. Arrival events overlap (propagation is
	// pipelined), so they come from freeArr, a per-link free list.
	tx      txDoneEvent
	freeArr []*arrivalEvent
}

// txDoneEvent fires when the transmitter finishes serialising l.tx's
// packet: release the transmitter, start the packet's propagation, and pull
// the next packet from the scheduler.
type txDoneEvent struct {
	l *Link
	p *Packet
}

func (t *txDoneEvent) Run(s *sim.Simulator) {
	l, p := t.l, t.p
	t.p = nil
	l.busy = false
	a := l.allocArrival()
	a.p = p
	s.After(l.Prop, a)
	l.kick(s)
}

// arrivalEvent delivers a packet to the link's far end after propagation.
type arrivalEvent struct {
	l *Link
	p *Packet
}

func (a *arrivalEvent) Run(s *sim.Simulator) {
	l, p := a.l, a.p
	a.p = nil
	l.freeArr = append(l.freeArr, a)
	l.dst.HandlePacket(s, p)
}

func (l *Link) allocArrival() *arrivalEvent {
	if k := len(l.freeArr); k > 0 {
		a := l.freeArr[k-1]
		l.freeArr[k-1] = nil
		l.freeArr = l.freeArr[:k-1]
		return a
	}
	return &arrivalEvent{l: l}
}

// NewLink creates a link delivering packets to dst.
func NewLink(name string, rate sim.Rate, prop sim.Duration, sched wfq.Scheduler, dst Handler) *Link {
	l := &Link{Name: name, Rate: rate, Prop: prop, Sched: sched, dst: dst}
	l.tx.l = l
	return l
}

// Send enqueues p for transmission, applying the scheduler's drop policy.
// Packets arriving while the link is down, or losing the random-loss
// draw, vanish silently — no OnDrop notification, matching real blackhole
// and corruption semantics; recovery must come from timeouts upstream.
func (l *Link) Send(s *sim.Simulator, p *Packet) {
	if l.down || (l.lossRate > 0 && l.lossRNG.Float64() < l.lossRate) {
		l.Stats.FaultDropPackets++
		l.Stats.FaultDropBytes += int64(p.Size)
		if l.Trace != nil {
			l.Trace.Drop(s.Now(), p.MsgID, l.Name, int(p.Class), p.Size)
		}
		return
	}
	p.EnqueuedAt = s.Now()
	dropped := l.Sched.Enqueue(p)
	for _, d := range dropped {
		dp := d.(*Packet)
		l.Stats.DropPackets++
		l.Stats.DropBytes += int64(dp.Size)
		if l.Trace != nil {
			l.Trace.Drop(s.Now(), dp.MsgID, l.Name, int(dp.Class), dp.Size)
		}
		if l.OnDrop != nil {
			l.OnDrop(s, dp)
		}
	}
	l.kick(s)
}

// kick starts the transmitter if it is idle, up, and work is queued.
func (l *Link) kick(s *sim.Simulator) {
	if l.busy || l.down {
		return
	}
	it := l.Sched.Dequeue()
	if it == nil {
		return
	}
	p := it.(*Packet)
	l.busy = true
	if !p.Ack && (l.Trace != nil || l.Audit != nil || l.Attr != nil) {
		resid := s.Now() - p.EnqueuedAt
		if l.Trace != nil {
			l.Trace.Hop(s.Now(), p.MsgID, l.Name, int(p.Class), p.Size,
				resid, l.Sched.QueuedBytes())
		}
		if l.Audit != nil {
			l.Audit.Hop(s.Now(), p.MsgID, l.Name, int(p.Class), resid)
		}
		if l.Attr != nil && p.Tail {
			l.Attr.TailHop(s.Now(), p.Src, p.MsgID, resid)
		}
	}
	tx := l.Rate.TxTime(p.Size)
	l.Stats.BusyTime += tx
	l.Stats.TxPackets++
	l.Stats.TxBytes += int64(p.Size)
	// Arrival is scheduled from the tx-done event after propagation;
	// serialisation of the next packet overlaps with this packet's flight
	// time.
	l.tx.p = p
	s.After(tx, &l.tx)
}

// SetDown flips the link's fault state. Going down freezes the egress
// queue (packets mid-serialisation finish and propagate); coming back up
// restarts the transmitter on whatever survived in the queue.
func (l *Link) SetDown(s *sim.Simulator, down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down {
		l.kick(s)
	}
}

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// SetLoss sets the link's independent per-packet random loss probability;
// rate 0 clears it. rng supplies the draws and may be nil only when rate
// is 0.
func (l *Link) SetLoss(rate float64, rng *rand.Rand) {
	l.lossRate = rate
	l.lossRNG = rng
}

// QueuedBytes reports bytes currently waiting in the egress scheduler.
func (l *Link) QueuedBytes() int { return l.Sched.QueuedBytes() }

// Utilization reports the fraction of the interval [0, now] the
// transmitter spent serialising packets.
func (l *Link) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(l.Stats.BusyTime) / float64(now)
}
