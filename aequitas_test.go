package aequitas

import (
	"math"
	"testing"
	"time"

	"aequitas/internal/calculus"
)

// threeNodeOverload is the §6.2 microbenchmark: two senders issue 32 KB
// RPCs at line rate to one receiver, 70% PC / 30% BE, so the receiver's
// downlink is persistently 2× overloaded.
func threeNodeOverload(system System, sloUS float64, seed int64) SimConfig {
	return SimConfig{
		System:     system,
		Hosts:      3,
		Seed:       seed,
		Duration:   80 * time.Millisecond,
		Warmup:     30 * time.Millisecond,
		QoSWeights: []float64{4, 1},
		SLOs: []SLO{{
			Target:         time.Duration(sloUS * float64(time.Microsecond)),
			ReferenceBytes: 32 << 10,
			Percentile:     99.9,
		}},
		Traffic: []HostTraffic{{
			Hosts:   []int{0, 1},
			Dsts:    []int{2},
			AvgLoad: 1.0,
			Arrival: ArrivalPeriodic,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.7, FixedBytes: 32 << 10},
				{Priority: BE, Share: 0.3, FixedBytes: 32 << 10},
			},
		}},
	}
}

func TestRunValidation(t *testing.T) {
	bad := []SimConfig{
		{},
		{Hosts: 1, Duration: time.Millisecond},
		{Hosts: 3, Duration: time.Millisecond, Warmup: 2 * time.Millisecond},
		{Hosts: 3, Duration: time.Millisecond},                                                     // no traffic
		{Hosts: 3, Duration: time.Millisecond, System: SystemAequitas, Traffic: []HostTraffic{{}}}, // no SLOs
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBaselineOverloadViolatesSLO(t *testing.T) {
	cfg := threeNodeOverload(SystemBaseline, 15, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without admission control the 2× overload drives QoSh tail RNL far
	// beyond the 15 µs SLO.
	p999 := res.RNLQuantileUS(High, 0.999)
	if p999 < 30 {
		t.Errorf("baseline QoSh 99.9p = %.1fus; expected gross SLO violation", p999)
	}
	if res.Downgraded != 0 {
		t.Errorf("baseline downgraded %d RPCs", res.Downgraded)
	}
}

func TestAequitasMeetsSLOUnderOverload(t *testing.T) {
	cfg := threeNodeOverload(SystemAequitas, 25, 1)
	cfg.Probes = []Probe{{Src: 0, Dst: 2, Class: High}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p999 := res.RNLQuantileUS(High, 0.999)
	if p999 > 25*1.6 {
		t.Errorf("Aequitas QoSh 99.9p = %.1fus, SLO 25us not tracked", p999)
	}
	if res.Downgraded == 0 {
		t.Error("no RPCs downgraded under 2x overload")
	}
	// Admitted QoSh share must be squeezed below the input share.
	if res.AdmittedMix[0] >= res.InputMix[0]-0.05 {
		t.Errorf("admitted QoSh share %.2f not reduced from input %.2f",
			res.AdmittedMix[0], res.InputMix[0])
	}
	if len(res.Probes) != 1 {
		t.Fatalf("probes = %d", len(res.Probes))
	}
	pr := res.Probes[0]
	if pr.AdmitProbability.Final(-1) <= 0 || pr.AdmitProbability.Final(-1) > 1 {
		t.Errorf("final p_admit = %v", pr.AdmitProbability.Final(-1))
	}
	// Aequitas's defining behaviour: p_admit well below 1 at equilibrium.
	mean, ok := pr.AdmitProbability.MeanAfterOK(0.05)
	if !ok {
		t.Error("no p_admit samples after 0.05s")
	} else if mean > 0.9 {
		t.Errorf("mean p_admit %.2f; admission control appears inactive", mean)
	}
}

func TestAequitasBeatsBaselineTail(t *testing.T) {
	base, err := Run(threeNodeOverload(SystemBaseline, 25, 2))
	if err != nil {
		t.Fatal(err)
	}
	aeq, err := Run(threeNodeOverload(SystemAequitas, 25, 2))
	if err != nil {
		t.Fatal(err)
	}
	bp, ap := base.RNLQuantileUS(High, 0.999), aeq.RNLQuantileUS(High, 0.999)
	if ap >= bp {
		t.Errorf("Aequitas QoSh 99.9p %.1fus not better than baseline %.1fus", ap, bp)
	}
}

// Figure 10: with congestion control disabled and large buffers, the
// packet simulator's worst-case per-class delays must track the
// closed-form theory for the 2-QoS burst model.
func TestSimulatorMatchesTheory(t *testing.T) {
	const (
		mu     = 0.8
		rho    = 1.2
		phi    = 4.0
		period = time.Millisecond
	)
	theory := calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}
	for _, x := range []float64{0.3, 0.5, 0.7} {
		cfg := SimConfig{
			System:              SystemBaseline,
			Hosts:               3,
			Seed:                7,
			Duration:            60 * time.Millisecond,
			Warmup:              10 * time.Millisecond,
			QoSWeights:          []float64{phi, 1},
			PerClassBufferBytes: -1, // unlimited: match the fluid model
			DisableCC:           true,
			FixedWindow:         512,
			BurstPeriod:         period,
			RTOMin:              500 * time.Millisecond, // no spurious RTO
			Traffic: []HostTraffic{{
				Hosts:     []int{0, 1},
				Dsts:      []int{2},
				AvgLoad:   mu / 2, // two senders sum to µ
				BurstLoad: rho / 2,
				Arrival:   ArrivalPeriodic,
				Classes: []TrafficClass{
					{Priority: PC, Share: x, FixedBytes: 1436},
					{Priority: NC, Share: 1 - x, FixedBytes: 1436},
				},
			}},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		periodUS := float64(period.Microseconds())
		simH := res.RNLRun[High].MaxUS / periodUS
		simL := res.RNLRun[Medium].MaxUS / periodUS
		wantH, wantL := theory.DelayHigh(x), theory.DelayLow(x)
		if math.Abs(simH-wantH) > 0.08 {
			t.Errorf("x=%.1f: QoSh delay %v, theory %v", x, simH, wantH)
		}
		if math.Abs(simL-wantL) > 0.10 {
			t.Errorf("x=%.1f: QoSl delay %v, theory %v", x, simL, wantL)
		}
	}
}

func TestSPQSystemRuns(t *testing.T) {
	cfg := threeNodeOverload(SystemSPQ, 15, 3)
	cfg.Duration = 30 * time.Millisecond
	cfg.Warmup = 10 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// SPQ serves the high class strictly first: its tail should be small,
	// while the low class starves under 2x overload.
	hi := res.RNLQuantileUS(High, 0.99)
	lo := res.RNLQuantileUS(Low, 0.5)
	if hi <= 0 {
		t.Fatal("no QoSh samples")
	}
	if lo != 0 && lo < hi {
		t.Errorf("SPQ low class median %.1fus below high class p99 %.1fus", lo, hi)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := threeNodeOverload(SystemAequitas, 20, 9)
	cfg.Duration = 20 * time.Millisecond
	cfg.Warmup = 5 * time.Millisecond
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Downgraded != b.Downgraded {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", a.Completed, a.Downgraded, b.Completed, b.Downgraded)
	}
	if a.RNLQuantileUS(High, 0.999) != b.RNLQuantileUS(High, 0.999) {
		t.Error("non-deterministic tail latency")
	}
}

func TestSystemStrings(t *testing.T) {
	systems := []System{SystemBaseline, SystemAequitas, SystemSPQ, SystemDWRR,
		SystemPFabric, SystemQJump, SystemD3, SystemPDQ, SystemHoma, System(99)}
	seen := map[string]bool{}
	for _, sys := range systems {
		s := sys.String()
		if s == "" || seen[s] {
			t.Errorf("System(%d).String() = %q", int(sys), s)
		}
		seen[s] = true
	}
}
