package rpc

import (
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// AdaptiveApp models an application that uses Aequitas's explicit
// downgrade notification (Algorithm 1 lines 10-11). The paper's rationale
// for notifying applications: "when not all RPCs can be admitted on the
// requested QoS, the application has the freedom to control which RPCs
// are more critical and issue only those at higher QoS to prevent
// downgrades" (§5.1).
//
// The app issues a mix of truly-critical and filler work, all nominally
// performance-critical. It tracks an EWMA of the downgrade rate; when
// downgrades exceed Threshold, it voluntarily marks its filler work
// non-critical, so the admitted high-QoS budget concentrates on the RPCs
// that actually need it.
type AdaptiveApp struct {
	Stack *Stack
	// Threshold is the downgrade-rate EWMA above which the app demotes
	// filler work (default 0.1).
	Threshold float64
	// Gain is the EWMA weight for each new observation (default 0.05).
	Gain float64

	downgradeEWMA float64

	// Stats.
	CriticalIssued     int64
	CriticalDowngraded int64
	FillerSelfDemoted  int64
}

// Adapting reports whether the app is currently demoting filler work.
func (a *AdaptiveApp) Adapting() bool {
	return a.downgradeEWMA > a.threshold()
}

func (a *AdaptiveApp) threshold() float64 {
	if a.Threshold > 0 {
		return a.Threshold
	}
	return 0.1
}

func (a *AdaptiveApp) gain() float64 {
	if a.Gain > 0 {
		return a.Gain
	}
	return 0.05
}

// Issue sends one RPC. critical marks the RPCs the application genuinely
// cannot afford to have downgraded; filler is nominally PC work the app
// would mark down under pressure.
func (a *AdaptiveApp) Issue(s *sim.Simulator, r *RPC, critical bool) {
	r.Priority = qos.PC
	if !critical && a.Adapting() {
		// Voluntary demotion: skip the contended class entirely.
		r.Priority = qos.NC
		a.FillerSelfDemoted++
	}
	if critical {
		a.CriticalIssued++
	}
	a.Stack.Issue(s, r)
	// The decision is visible synchronously on the RPC: account for the
	// notification exactly as an application callback would.
	if r.Priority == qos.PC {
		rate := 0.0
		if r.Downgraded {
			rate = 1.0
			if critical {
				a.CriticalDowngraded++
			}
		}
		a.downgradeEWMA += a.gain() * (rate - a.downgradeEWMA)
	}
}
