package sim

import (
	"fmt"
	"testing"
)

// loopEvent is a self-rescheduling event: each firing re-arms the same
// node, so a steady population of them exercises the schedule/fire cycle
// (heap push, pop, free-list recycle) with no per-event allocation.
type loopEvent struct{ gap Duration }

func (e *loopEvent) Run(s *Simulator) { s.After(e.gap, e) }

// BenchmarkSimLoop measures raw event throughput of the simulator core:
// one Step per iteration against a heap held at a fixed depth. The
// depth=16 case is dominated by push/pop constant factors; depth=1024
// adds the log-depth sift work seen in large cluster runs.
func BenchmarkSimLoop(b *testing.B) {
	for _, depth := range []int{16, 1024} {
		b.Run(fmt.Sprintf("pending=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			s := New(1)
			evs := make([]loopEvent, depth)
			for i := range evs {
				// Distinct gaps keep the heap genuinely ordered rather
				// than degenerating into same-timestamp FIFO.
				evs[i].gap = Duration(i + 1)
				s.After(evs[i].gap, &evs[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "events/s")
			}
		})
	}
}
