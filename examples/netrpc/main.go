// netrpc: embedding the Aequitas admission controller in a real RPC stack
// — Go's standard library net/rpc over TCP — the way the paper's
// prototype embeds it in a production stack (§6.11: "Aequitas' algorithm
// computes an admit probability per RPC channel, which is mapped to
// multiple per-QoS TCP sockets").
//
// An RPC channel here is a set of per-QoS connections to one server. The
// server gives the high-QoS lane a guaranteed service rate and lets the
// scavenger lane queue, emulating WFQ. The client asks the controller for
// a class per call, issues the call on that class's connection, measures
// the latency, and feeds it back. When offered high-QoS load exceeds what
// the SLO can support, the controller downgrades the excess.
//
// Run with: go run ./examples/netrpc
package main

import (
	"fmt"
	"log"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"aequitas"
)

// Args and Reply are the demo RPC payload.
type Args struct {
	Payload []byte
	Class   int
}

type Reply struct{ OK bool }

// Echo is the demo service: each lane (QoS class) has a service-rate
// limiter, emulating a WFQ'd network path. The high lane is provisioned
// for 200 req/s; the scavenger lane is slower but unbounded in queue.
type Echo struct {
	mu       sync.Mutex
	nextFree [3]time.Time
	perReq   [3]time.Duration
}

// NewEcho provisions per-class service intervals. The scavenger lane has
// plenty of raw throughput — it just comes with no latency promise, like
// leftover bandwidth in a real fabric.
func NewEcho() *Echo {
	return &Echo{perReq: [3]time.Duration{
		5 * time.Millisecond,    // QoSh: 200 req/s guaranteed
		10 * time.Millisecond,   // QoSm
		2500 * time.Microsecond, // QoSl: 400 req/s, no guarantee
	}}
}

// Call serves one request after its lane's queueing delay.
func (e *Echo) Call(a *Args, r *Reply) error {
	e.mu.Lock()
	lane := a.Class
	if lane < 0 || lane > 2 {
		lane = 2
	}
	now := time.Now()
	start := e.nextFree[lane]
	if start.Before(now) {
		start = now
	}
	e.nextFree[lane] = start.Add(e.perReq[lane])
	e.mu.Unlock()
	time.Sleep(time.Until(start.Add(e.perReq[lane])))
	r.OK = true
	return nil
}

// Channel is one client's RPC channel: per-QoS connections plus the
// admission controller.
type Channel struct {
	ctl   *aequitas.AdmissionController
	peer  string
	conns [3]*rpc.Client
}

// NewChannel dials one connection per QoS class.
func NewChannel(addr string, ctl *aequitas.AdmissionController) (*Channel, error) {
	ch := &Channel{ctl: ctl, peer: addr}
	for c := 0; c < 3; c++ {
		cl, err := rpc.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		ch.conns[c] = cl
	}
	return ch, nil
}

// Go issues one RPC asynchronously (open loop, like the paper's offered
// load), observing the latency on completion.
func (ch *Channel) Go(requested aequitas.Class, payload []byte, onDone func(downgraded bool, err error)) {
	d := ch.ctl.Admit(ch.peer, requested, int64(len(payload)))
	start := time.Now()
	call := ch.conns[d.Class].Go("Echo.Call", &Args{Payload: payload, Class: int(d.Class)}, &Reply{}, make(chan *rpc.Call, 1))
	go func() {
		<-call.Done
		if call.Error == nil {
			ch.ctl.Observe(ch.peer, d.Class, time.Since(start), int64(len(payload)))
		}
		onDone(d.Downgraded, call.Error)
	}()
}

func main() {
	// Server.
	srv := rpc.NewServer()
	if err := srv.Register(NewEcho()); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()

	// Client: SLO of 25 ms for the high class. The high lane serves 200
	// req/s; we offer 320 req/s of PC work, so roughly a third must be
	// downgraded for the admitted remainder to meet the SLO.
	// The SLO percentile sets the additive-increase window
	// (target × 100/(100−pctl)); with millisecond-scale targets a 99.9p
	// SLO would make the window tens of seconds, so this demo defines
	// its SLO at the median to keep the control loop fast.
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: 25 * time.Millisecond, ReferenceBytes: 1024, Percentile: 50},
			{Target: 50 * time.Millisecond, ReferenceBytes: 1024, Percentile: 50},
		},
		Alpha: 0.1,
		Beta:  0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := NewChannel(ln.Addr().String(), ctl)
	if err != nil {
		log.Fatal(err)
	}

	var issued, downgraded, failed, inflight atomic.Int64
	payload := make([]byte, 1024)
	var wg sync.WaitGroup
	ticker := time.NewTicker(3125 * time.Microsecond) // 320 req/s offered
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		<-ticker.C
		issued.Add(1)
		inflight.Add(1)
		wg.Add(1)
		ch.Go(aequitas.High, payload, func(dg bool, err error) {
			defer wg.Done()
			inflight.Add(-1)
			if err != nil {
				failed.Add(1)
				return
			}
			if dg {
				downgraded.Add(1)
			}
		})
	}
	ticker.Stop()
	wg.Wait()
	ln.Close()

	fmt.Printf("issued %d PC calls over 5s (~320/s) against a 200/s high lane\n", issued.Load())
	fmt.Printf("downgraded to the scavenger lane: %d (%.0f%%), errors: %d\n",
		downgraded.Load(), 100*float64(downgraded.Load())/float64(issued.Load()), failed.Load())
	fmt.Printf("final p_admit toward %s on QoSh: %.2f\n",
		ln.Addr(), ctl.AdmitProbability(ln.Addr().String(), aequitas.High))
	fmt.Println()
	fmt.Println("the controller converged to admitting roughly the lane's capacity")
	fmt.Println("and downgraded the excess — the same Algorithm 1, real sockets.")
}
