package faults

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"aequitas/internal/sim"
)

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		LinkDown: "linkdown", LinkUp: "linkup", LinkLoss: "loss",
		HostCrash: "crash", HostRestart: "restart",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	for _, k := range []Kind{LinkDown, LinkUp, LinkLoss} {
		if !k.IsLink() {
			t.Errorf("%s.IsLink() = false", k)
		}
	}
	for _, k := range []Kind{HostCrash, HostRestart} {
		if k.IsLink() {
			t.Errorf("%s.IsLink() = true", k)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{At: -1, Kind: LinkDown, Link: "up-0"}}},
		{Events: []Event{{Kind: kindCount, Link: "up-0"}}},
		{Events: []Event{{Kind: LinkDown}}},                            // missing link
		{Events: []Event{{Kind: HostCrash, Host: -1}}},                 // bad host
		{Events: []Event{{Kind: LinkLoss, Link: "up-0", Rate: 1.5}}},   // bad rate
		{Events: []Event{{Kind: LinkLoss, Link: "up-0", Rate: -0.01}}}, // bad rate
	}
	for i := range bad {
		if bad[i].Validate() == nil {
			t.Errorf("plan %d validated", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	p := &Plan{Events: []Event{
		{At: 20, Kind: LinkUp, Link: "x"},
		{At: 10, Kind: LinkDown, Link: "x"},
	}}
	s := p.sorted()
	if s[0].At != 10 || s[1].At != 20 {
		t.Errorf("sorted order: %+v", s)
	}
	if p.Events[0].At != 20 {
		t.Error("sorted() mutated the shared plan")
	}
}

func TestWindows(t *testing.T) {
	ms := sim.Duration(sim.FromStd(time.Millisecond))
	p := &Plan{Events: []Event{
		{At: 5 * ms, Kind: HostCrash, Host: 2}, // never restarted
		{At: 1 * ms, Kind: LinkDown, Link: "up-0"},
		{At: 2 * ms, Kind: LinkUp, Link: "up-0"},
		{At: 1 * ms, Kind: LinkLoss, Link: "down-1", Rate: 0.05},
		{At: 3 * ms, Kind: LinkLoss, Link: "down-1", Rate: 0}, // clears
	}}
	ws := p.Windows()
	if len(ws) != 3 {
		t.Fatalf("got %d windows: %+v", len(ws), ws)
	}
	if ws[0].Kind != LinkDown || ws[0].Start != 1*ms || ws[0].End != 2*ms {
		t.Errorf("flap window: %+v", ws[0])
	}
	if ws[1].Kind != LinkLoss || ws[1].End != 3*ms || ws[1].Target != "down-1" {
		t.Errorf("loss window: %+v", ws[1])
	}
	if ws[2].Kind != HostCrash || ws[2].End != sim.Duration(sim.MaxTime) {
		t.Errorf("unclosed crash window: %+v", ws[2])
	}
	if !ws[0].Contains(1*ms, 0) || ws[0].Contains(2*ms, 0) {
		t.Error("Contains is not [start, end)")
	}
	if !ws[0].Contains(2*ms+ms/2, ms) || ws[0].Contains(4*ms, ms) {
		t.Error("Contains margin wrong")
	}
}

func TestParsePlan(t *testing.T) {
	in := `
# flap then crash
1ms linkdown host:1
2ms linkup   host:1   # repair
3ms loss     up-0 0.02
4ms crash    1
5ms restart  host:1
`
	p, err := ParsePlan(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("got %d events", len(p.Events))
	}
	ms := sim.Duration(sim.FromStd(time.Millisecond))
	want := []Event{
		{At: 1 * ms, Kind: LinkDown, Link: "host:1"},
		{At: 2 * ms, Kind: LinkUp, Link: "host:1"},
		{At: 3 * ms, Kind: LinkLoss, Link: "up-0", Rate: 0.02},
		{At: 4 * ms, Kind: HostCrash, Host: 1},
		{At: 5 * ms, Kind: HostRestart, Host: 1},
	}
	for i, w := range want {
		if p.Events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, p.Events[i], w)
		}
	}

	for name, bad := range map[string]string{
		"short line":   "1ms linkdown",
		"bad offset":   "xx linkdown up-0",
		"bad event":    "1ms explode up-0",
		"bad host":     "1ms crash up-0",
		"missing rate": "1ms loss up-0",
		"bad rate":     "1ms loss up-0 nope",
		"range rate":   "1ms loss up-0 2.0",
	} {
		if _, err := ParsePlan(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, 40*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Empty() {
			t.Errorf("%s: empty", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Every preset window must close before the run ends.
		end := sim.Duration(sim.FromStd(40 * time.Millisecond))
		for _, w := range p.Windows() {
			if w.End > end {
				t.Errorf("%s: window %+v open past the run", name, w)
			}
		}
	}
	if _, err := Preset("nope", time.Millisecond); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("flap", 0); err == nil {
		t.Error("zero duration accepted")
	}
}

// fakeLink and fakeHost record injector calls.
type fakeLink struct {
	log  *[]string
	name string
}

func (f *fakeLink) SetDown(_ *sim.Simulator, down bool) {
	if down {
		*f.log = append(*f.log, f.name+":down")
	} else {
		*f.log = append(*f.log, f.name+":up")
	}
}

func (f *fakeLink) SetLoss(rate float64, rng *rand.Rand) {
	if rng == nil {
		*f.log = append(*f.log, f.name+":loss-nil-rng")
		return
	}
	*f.log = append(*f.log, f.name+":loss")
}

type fakeHost struct{ log *[]string }

func (f *fakeHost) Crash(*sim.Simulator)   { *f.log = append(*f.log, "host:crash") }
func (f *fakeHost) Restart(*sim.Simulator) { *f.log = append(*f.log, "host:restart") }

func TestInjector(t *testing.T) {
	us := sim.Duration(sim.Microsecond)
	p := &Plan{Events: []Event{
		{At: 3 * us, Kind: HostCrash, Host: 0},
		{At: 1 * us, Kind: LinkDown, Link: "host:0"},
		{At: 2 * us, Kind: LinkUp, Link: "host:0"},
		{At: 2 * us, Kind: LinkLoss, Link: "up-9", Rate: 0.5},
		{At: 4 * us, Kind: HostRestart, Host: 0},
	}}
	var log []string
	in := NewInjector(p, 7)
	// "host:0" binds two links: both must be driven per event.
	in.BindLink("host:0", &fakeLink{log: &log, name: "a"}, &fakeLink{log: &log, name: "b"})
	in.BindLink("up-9", &fakeLink{log: &log, name: "c"})
	in.BindHost(0, &fakeHost{log: &log})
	var events []string
	in.OnEvent = func(s *sim.Simulator, e Event) {
		events = append(events, e.Kind.String()+"@"+e.Target())
	}

	s := sim.New(1)
	if err := in.Schedule(s); err != nil {
		t.Fatal(err)
	}
	s.Run()

	wantLog := []string{"a:down", "b:down", "a:up", "b:up", "c:loss", "host:crash", "host:restart"}
	if strings.Join(log, " ") != strings.Join(wantLog, " ") {
		t.Errorf("log = %v, want %v", log, wantLog)
	}
	wantEvents := []string{"linkdown@host:0", "linkup@host:0", "loss@up-9", "crash@host:0", "restart@host:0"}
	if strings.Join(events, " ") != strings.Join(wantEvents, " ") {
		t.Errorf("events = %v, want %v", events, wantEvents)
	}
}

func TestInjectorUnboundTargets(t *testing.T) {
	s := sim.New(1)
	in := NewInjector(&Plan{Events: []Event{{Kind: LinkDown, Link: "ghost"}}}, 1)
	if err := in.Schedule(s); err == nil {
		t.Error("unbound link scheduled")
	}
	in = NewInjector(&Plan{Events: []Event{{Kind: HostCrash, Host: 5}}}, 1)
	if err := in.Schedule(s); err == nil {
		t.Error("unbound host scheduled")
	}
	// An invalid plan must fail at Schedule even with targets bound.
	in = NewInjector(&Plan{Events: []Event{{At: -1, Kind: LinkDown, Link: "x"}}}, 1)
	in.BindLink("x", &fakeLink{log: new([]string), name: "x"})
	if err := in.Schedule(s); err == nil {
		t.Error("invalid plan scheduled")
	}
}
