package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
	"aequitas/internal/wfq"
)

func TestFixedDist(t *testing.T) {
	f := Fixed{Bytes: 32 * 1024}
	r := rand.New(rand.NewSource(1))
	if f.Sample(r) != 32*1024 || f.Mean() != 32*1024 {
		t.Error("Fixed distribution broken")
	}
}

func TestChoiceDist(t *testing.T) {
	c := Choice{Sizes: []int64{32 << 10, 64 << 10}, Weights: []float64{1, 1}}
	r := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	for i := 0; i < 10000; i++ {
		counts[c.Sample(r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampled %d distinct sizes", len(counts))
	}
	frac := float64(counts[32<<10]) / 10000
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("32K fraction = %v", frac)
	}
	if want := float64(48 << 10); c.Mean() != want {
		t.Errorf("Mean = %v, want %v", c.Mean(), want)
	}
}

func TestPiecewiseValidation(t *testing.T) {
	cases := []struct {
		sizes []int64
		cdf   []float64
	}{
		{[]int64{100}, []float64{1}},
		{[]int64{100, 50}, []float64{0.5, 1}},
		{[]int64{100, 200}, []float64{0.9, 0.5}},
		{[]int64{100, 200}, []float64{0.5, 0.9}},
	}
	for i, c := range cases {
		if _, err := NewPiecewise(c.sizes, c.cdf); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPiecewiseSampleInRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, p := range []*Piecewise{ProductionPC(), ProductionNC(), ProductionBE()} {
		lo, hi := p.Sizes[0], p.Sizes[len(p.Sizes)-1]
		for i := 0; i < 5000; i++ {
			s := p.Sample(r)
			if s < lo || s > hi {
				t.Fatalf("sample %d outside [%d, %d]", s, lo, hi)
			}
		}
	}
}

func TestPiecewiseMeanMatchesEmpirical(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, p := range []*Piecewise{ProductionPC(), ProductionNC(), ProductionBE()} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(p.Sample(r))
		}
		emp := sum / n
		if m := p.Mean(); math.Abs(emp-m)/m > 0.05 {
			t.Errorf("mean mismatch: analytic %v empirical %v", m, emp)
		}
	}
}

func TestProductionShapesOrdered(t *testing.T) {
	// The qualitative Figure 1 property: PC sizes are generally smaller
	// than NC, which are smaller than BE, but PC has a large-RPC tail.
	pc, nc, be := ProductionPC(), ProductionNC(), ProductionBE()
	if !(pc.Mean() < nc.Mean() && nc.Mean() < be.Mean()) {
		t.Errorf("means not ordered: pc=%v nc=%v be=%v", pc.Mean(), nc.Mean(), be.Mean())
	}
	if pc.Sizes[len(pc.Sizes)-1] < 1<<20 {
		t.Error("PC distribution lacks the large-RPC tail the paper highlights")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{
		Rate: 100 * sim.Gbps, Load: 0.8, Rho: 1.4,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{1000}}},
		Dsts:    []int{1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Load: 0.8, Classes: good.Classes, Dsts: good.Dsts},
		{Rate: good.Rate, Classes: good.Classes, Dsts: good.Dsts},
		{Rate: good.Rate, Load: 0.8, Rho: 0.4, Classes: good.Classes, Dsts: good.Dsts},
		{Rate: good.Rate, Load: 0.8, Dsts: good.Dsts},
		{Rate: good.Rate, Load: 0.8, Classes: []ClassSpec{{Share: 0.5, Sizes: Fixed{1}}}, Dsts: good.Dsts},
		{Rate: good.Rate, Load: 0.8, Classes: good.Classes},
		{Rate: good.Rate, Load: 0.8, Classes: []ClassSpec{{Share: 1, Sizes: nil}}, Dsts: good.Dsts},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func buildStacks(t *testing.T, hosts int) []*rpc.Stack {
	t.Helper()
	net, err := netsim.New(netsim.Config{
		Hosts: hosts,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stacks := make([]*rpc.Stack, hosts)
	for i := 0; i < hosts; i++ {
		ep := transport.NewEndpoint(net, net.Host(i), transport.Config{
			NewCC: func() transport.CC { return transport.SwiftDefaults(10 * sim.Microsecond) },
		})
		stacks[i] = rpc.NewStack(ep, nil)
	}
	return stacks
}

func TestGeneratorOfferedLoad(t *testing.T) {
	stacks := buildStacks(t, 2)
	s := sim.New(5)
	gen, err := NewGenerator(stacks[0], Spec{
		Rate: 100 * sim.Gbps, Load: 0.5,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{32 << 10}}},
		Dsts:    []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(s)
	const horizon = 20 * sim.Millisecond
	s.RunUntil(horizon)
	gen.Stop()
	offered := float64(gen.Offered.Total()) * 8 / horizon.Seconds()
	if math.Abs(offered-0.5e11)/0.5e11 > 0.1 {
		t.Errorf("offered %.3g bps, want ~50 Gbps", offered)
	}
}

func TestGeneratorMixShares(t *testing.T) {
	stacks := buildStacks(t, 2)
	s := sim.New(6)
	gen, err := NewGenerator(stacks[0], Spec{
		Rate: 100 * sim.Gbps, Load: 0.6,
		Classes: []ClassSpec{
			{Priority: qos.PC, Share: 0.6, Sizes: Fixed{16 << 10}},
			{Priority: qos.NC, Share: 0.3, Sizes: Fixed{64 << 10}},
			{Priority: qos.BE, Share: 0.1, Sizes: Fixed{128 << 10}},
		},
		Dsts: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(s)
	s.RunUntil(50 * sim.Millisecond)
	gen.Stop()
	mix := gen.Offered.Mix()
	want := []float64{0.6, 0.3, 0.1}
	for i := range want {
		if math.Abs(mix[i]-want[i]) > 0.05 {
			t.Errorf("offered mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
}

func TestGeneratorBurstModulation(t *testing.T) {
	stacks := buildStacks(t, 2)
	s := sim.New(7)
	period := 100 * sim.Microsecond
	gen, err := NewGenerator(stacks[0], Spec{
		Rate: 100 * sim.Gbps, Load: 0.4, Rho: 1.6, Period: period,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{8 << 10}}},
		Dsts:    []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Record arrival phases. Burst fraction = µ/ρ = 0.25 of each period.
	inBurst, outBurst := 0, 0
	stacks[0].OnComplete = func(*sim.Simulator, *rpc.RPC) {}
	origIssue := gen.issue
	_ = origIssue
	// Instead of hooking issue, inspect offered counter growth per phase
	// by sampling.
	var lastTotal int64
	probe := func(s *sim.Simulator) {}
	probe = func(s *sim.Simulator) {
		cur := gen.Offered.Total()
		delta := cur - lastTotal
		lastTotal = cur
		off := s.Now() % period
		if off < sim.Duration(float64(period)*0.25) {
			inBurst += int(delta)
		} else {
			outBurst += int(delta)
		}
		if s.Now() < 50*sim.Millisecond {
			s.AfterFunc(period/20, probe)
		}
	}
	gen.Start(s)
	s.AfterFunc(0, probe)
	s.RunUntil(50 * sim.Millisecond)
	gen.Stop()
	total := inBurst + outBurst
	if total == 0 {
		t.Fatal("no traffic generated")
	}
	frac := float64(inBurst) / float64(total)
	// Arrivals during the ~25% burst window should dominate; sampling
	// granularity blurs the boundary, so accept ≥ 0.8.
	if frac < 0.8 {
		t.Errorf("burst-phase fraction = %v, want concentrated arrivals", frac)
	}
	// Average load must still be ~0.4.
	offered := float64(gen.Offered.Total()) * 8 / (50 * sim.Millisecond).Seconds()
	if math.Abs(offered-0.4e11)/0.4e11 > 0.15 {
		t.Errorf("offered %.3g bps, want ~40 Gbps", offered)
	}
}

func TestGeneratorPeriodicProcess(t *testing.T) {
	stacks := buildStacks(t, 2)
	s := sim.New(8)
	gen, err := NewGenerator(stacks[0], Spec{
		Rate: 100 * sim.Gbps, Load: 1.0, Process: Periodic,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{32 << 10}}},
		Dsts:    []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(s)
	s.RunUntil(10 * sim.Millisecond)
	gen.Stop()
	// At line rate, 32 KB RPCs arrive every 2.62 µs: ~3815 RPCs in 10 ms.
	want := (10 * sim.Millisecond).Seconds() / (float64(32<<10) * 8 / 1e11)
	got := float64(gen.Offered.Total()) / float64(32<<10)
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("periodic arrivals = %v, want ~%v", got, want)
	}
}

func TestGeneratorDeadlineStamping(t *testing.T) {
	stacks := buildStacks(t, 2)
	s := sim.New(9)
	var got []sim.Time
	stacks[0].OnComplete = func(_ *sim.Simulator, r *rpc.RPC) { got = append(got, r.Deadline) }
	gen, err := NewGenerator(stacks[0], Spec{
		Rate: 100 * sim.Gbps, Load: 0.1,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{1000}, Deadline: 250 * sim.Microsecond}},
		Dsts:    []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(s)
	s.RunUntil(1 * sim.Millisecond)
	gen.Stop()
	s.Run()
	if len(got) == 0 {
		t.Fatal("no completions")
	}
	for _, d := range got {
		if d <= 0 {
			t.Fatal("deadline not stamped")
		}
	}
}

// Property: piecewise sampling respects the CDF — fraction of samples
// below each knot approximates its CDF value.
func TestPiecewiseCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := ProductionPC()
		r := rand.New(rand.NewSource(seed))
		const n = 20000
		counts := make([]int, len(p.Sizes))
		for i := 0; i < n; i++ {
			s := p.Sample(r)
			for j, sz := range p.Sizes {
				if s <= sz {
					counts[j]++
				}
			}
		}
		for j := range p.Sizes {
			frac := float64(counts[j]) / n
			if math.Abs(frac-p.CDF[j]) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
