package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aequitas"
	"aequitas/internal/obs/flight"
	"aequitas/internal/sim"
)

// FlightConfig configures the serving-side flight recorder: a lock-free
// ring holding the last N admission decisions and SLO observations, plus
// an optional anomaly engine that watches the SLO burn rate and the
// minimum live admit probability and freezes the ring into a dump when an
// incident signature appears.
type FlightConfig struct {
	// Records is the ring capacity (default 16384).
	Records int
	// SampleAdmits keeps 1 in N admit / SLO-met records (default 8,
	// values <= 1 keep everything). Downgrades, rejections and SLO misses
	// are always kept.
	SampleAdmits int
	// Engine enables the anomaly engine with the given thresholds; nil
	// leaves the ring recording passively (dump it via /debug/flight or
	// DumpFlight).
	Engine *flight.EngineConfig
	// TickEvery is the minimum spacing between engine evaluations on the
	// layer's clock (default 1s). The engine is ticked from the request
	// completion path — no background goroutine — so a fully idle server
	// does not evaluate, which is fine: no completions means no new SLO
	// outcomes to alarm on.
	TickEvery time.Duration
	// ProfileDir, when set, captures goroutine and heap profiles next to
	// every trigger dump ("<dir>/flight-<n>-<kind>-{goroutine,heap}.pprof").
	ProfileDir string
}

// flightState is the Admission layer's recorder: the shared ring, the
// engine and its tick gate, and the most recent trigger dump.
type flightState struct {
	cfg  FlightConfig
	ring *flight.Ring
	eng  *flight.Engine

	// lastTickNS gates engine evaluation: completions race to CAS it
	// forward, the winner ticks the engine under engMu.
	lastTickNS atomic.Int64
	engMu      sync.Mutex
	// lastFedNS (under engMu) is the timestamp of the last sample actually
	// fed to the engine. Two CAS winners from successive intervals can
	// reach engMu in either order; the engine assumes monotonically
	// increasing timestamps, so the late-arriving older sample is dropped.
	lastFedNS int64
	triggers  atomic.Int64
	last      atomic.Pointer[flightDump]
}

// flightDump is one frozen incident capture.
type flightDump struct {
	Trigger  flight.Trigger
	Wall     time.Time
	NDJSON   []byte
	Profiles []string
	Err      string
}

func newFlightState(cfg FlightConfig) *flightState {
	f := &flightState{
		cfg:  cfg,
		ring: flight.NewRing(flight.Config{Records: cfg.Records, SampleAdmits: cfg.SampleAdmits}),
	}
	if cfg.Engine != nil {
		f.eng = flight.NewEngine(*cfg.Engine)
		if f.cfg.TickEvery <= 0 {
			f.cfg.TickEvery = time.Second
		}
	}
	return f
}

// maybeTick evaluates the anomaly engine if at least TickEvery has passed
// on the layer's clock since the last evaluation. Called on every request
// completion; the CAS ensures exactly one completion per interval pays
// for the evaluation.
func (f *flightState) maybeTick(ctl *aequitas.AdmissionController, now sim.Time) {
	if f == nil || f.eng == nil {
		return
	}
	last := f.lastTickNS.Load()
	if int64(now)-last < int64(sim.FromStd(f.cfg.TickEvery)) {
		return
	}
	if !f.lastTickNS.CompareAndSwap(last, int64(now)) {
		return
	}
	f.engMu.Lock()
	defer f.engMu.Unlock()
	if int64(now) <= f.lastFedNS {
		return
	}
	f.lastFedNS = int64(now)
	cs := ctl.Stats()
	tr, ok := f.eng.Tick(now, cs.SLOMet, cs.SLOMisses, ctl.MinAdmitProbability())
	if ok {
		f.fire(ctl, tr)
	}
}

// fire freezes the ring into an NDJSON dump (resetting it, so the next
// incident starts clean), captures profiles when configured, and
// publishes the capture as the latest dump.
func (f *flightState) fire(ctl *aequitas.AdmissionController, tr flight.Trigger) {
	n := f.triggers.Add(1)
	d := &flightDump{Trigger: tr, Wall: time.Now()}
	var buf bytes.Buffer
	err := flight.DumpTo(&buf, f.ring, flight.Meta{
		Trigger:  tr,
		Label:    "serve",
		PeerName: ctl.PeerName,
	}, true)
	if err != nil {
		d.Err = err.Error()
	}
	d.NDJSON = buf.Bytes()
	if f.cfg.ProfileDir != "" {
		prefix := fmt.Sprintf("flight-%d-%s", n, tr.Kind)
		files, perr := flight.CaptureProfiles(f.cfg.ProfileDir, prefix)
		d.Profiles = files
		if perr != nil && d.Err == "" {
			d.Err = perr.Error()
		}
	}
	f.last.Store(d)
}

// DumpFlight writes the ring's current contents to w as an
// "aequitas.flight/v1" NDJSON dump without resetting the ring. It is the
// programmatic face of /debug/flight?format=ndjson — call it on shutdown
// to preserve the black box.
func (a *Admission) DumpFlight(w io.Writer, kind flight.TriggerKind, detail string) error {
	if a.fl == nil {
		return fmt.Errorf("serve: flight recorder not configured")
	}
	return flight.DumpTo(w, a.fl.ring, flight.Meta{
		Trigger: flight.Trigger{
			Kind:   kind,
			At:     a.clock.Now(),
			Detail: detail,
		},
		Label:    "serve",
		PeerName: a.ctl.PeerName,
	}, false)
}

// LastFlightDump returns the most recent trigger's frozen NDJSON capture
// and its trigger, or ok=false when none has fired.
func (a *Admission) LastFlightDump() (flight.Trigger, []byte, bool) {
	if a.fl == nil {
		return flight.Trigger{}, nil, false
	}
	d := a.fl.last.Load()
	if d == nil {
		return flight.Trigger{}, nil, false
	}
	return d.Trigger, d.NDJSON, true
}

// FlightTriggered reports how many anomaly triggers have fired.
func (a *Admission) FlightTriggered() int64 {
	if a.fl == nil {
		return 0
	}
	return a.fl.triggers.Load()
}

// flightStatus is the /debug/flight JSON document.
type flightStatus struct {
	Schema       string         `json:"schema"`
	Enabled      bool           `json:"enabled"`
	Capacity     int            `json:"capacity,omitempty"`
	Offered      uint64         `json:"offered"`
	SampledOut   uint64         `json:"sampled_out"`
	Triggers     int64          `json:"triggers"`
	Engine       *engineStatus  `json:"engine,omitempty"`
	LastTrigger  *triggerStatus `json:"last_trigger,omitempty"`
	DumpEndpoint string         `json:"dump_endpoint"`
}

type engineStatus struct {
	ShortWindowS  float64 `json:"short_window_s"`
	LongWindowS   float64 `json:"long_window_s"`
	SLOBudget     float64 `json:"slo_budget"`
	BurnThreshold float64 `json:"burn_threshold"`
	PAdmitDrop    float64 `json:"padmit_drop"`
}

type triggerStatus struct {
	Kind     string   `json:"kind"`
	Detail   string   `json:"detail,omitempty"`
	WallTime string   `json:"wall_time"`
	Records  int      `json:"dump_bytes"`
	Profiles []string `json:"profiles,omitempty"`
	Err      string   `json:"error,omitempty"`
}

// serveFlight handles /debug/flight: trigger status as JSON by default,
// the raw ring as an NDJSON dump with ?format=ndjson, and the last
// trigger's frozen dump with ?format=ndjson&dump=last.
func (a *Admission) serveFlight(w http.ResponseWriter, r *http.Request) {
	if a.fl == nil {
		http.Error(w, "flight recorder not configured", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if r.URL.Query().Get("dump") == "last" {
			d := a.fl.last.Load()
			if d == nil {
				http.Error(w, "no trigger has fired", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Length", strconv.Itoa(len(d.NDJSON)))
			if _, err := w.Write(d.NDJSON); err != nil {
				log.Printf("serve: flight dump write: %v", err)
			}
			return
		}
		if err := a.DumpFlight(w, flight.TriggerManual, "debug endpoint"); err != nil {
			// Headers may already be out; a 500 is best-effort, the log
			// line is the reliable signal that the dump is truncated.
			log.Printf("serve: flight dump write: %v", err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	st := a.fl.ring.Stats()
	doc := flightStatus{
		Schema:       flight.Schema,
		Enabled:      true,
		Capacity:     a.fl.ring.Cap(),
		Offered:      st.Offered,
		SampledOut:   st.SampledOut,
		Triggers:     a.fl.triggers.Load(),
		DumpEndpoint: r.URL.Path + "?format=ndjson",
	}
	if a.fl.eng != nil {
		ec := a.fl.eng.Config()
		doc.Engine = &engineStatus{
			ShortWindowS:  ec.ShortWindow.Seconds(),
			LongWindowS:   ec.LongWindow.Seconds(),
			SLOBudget:     ec.SLOBudget,
			BurnThreshold: ec.BurnThreshold,
			PAdmitDrop:    ec.PAdmitDrop,
		}
	}
	if d := a.fl.last.Load(); d != nil {
		doc.LastTrigger = &triggerStatus{
			Kind:     d.Trigger.Kind.String(),
			Detail:   d.Trigger.Detail,
			WallTime: d.Wall.UTC().Format(time.RFC3339Nano),
			Records:  len(d.NDJSON),
			Profiles: d.Profiles,
			Err:      d.Err,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Printf("serve: flight status write: %v", err)
	}
}
