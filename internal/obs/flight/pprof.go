package flight

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
)

// CaptureProfiles writes goroutine and heap profiles into dir, named
// <prefix>-goroutine.pprof and <prefix>-heap.pprof, and returns the
// written paths. It is the optional companion to a flight dump: the dump
// says what the admission layer decided, the profiles say what the
// process was doing when the trigger fired. The directory is created if
// missing.
func CaptureProfiles(dir, prefix string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, name := range []string{"goroutine", "heap"} {
		p := pprof.Lookup(name)
		if p == nil {
			return paths, fmt.Errorf("flight: profile %q unavailable", name)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.pprof", prefix, name))
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if err := p.WriteTo(f, 0); err != nil {
			f.Close()
			return paths, err
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
