// Package core implements the Aequitas distributed admission controller —
// Algorithm 1 of the paper, verbatim: a per-(destination-host, QoS) admit
// probability driven by AIMD on measured RPC network latency against
// per-QoS SLO targets, with unadmitted RPCs downgraded to the lowest
// (scavenger) class rather than dropped.
//
// One Controller instance lives at each sending host. Hosts run the
// algorithm with no coordination; fairness and convergence to the
// SLO-compliant QoS-mix are emergent properties of the AIMD dynamics
// (§5.1, §6.5).
//
// The Controller is safe for concurrent use and its time source is
// pluggable (see Clock): under a SimClock it reproduces the simulator's
// deterministic single-threaded behaviour bit for bit, under a WallClock
// it serves live traffic from many goroutines. Admission state is sharded
// by (destination, class) with the admit probability read atomically, so
// the Admit fast path takes no locks and performs no allocations;
// Observe's AIMD update serialises per channel only.
package core

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"aequitas/internal/obs"
	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// Config parameterises the controller. The defaults are the paper's
// evaluation settings: α = 0.01, β = 0.01 per MTU (§6.1).
type Config struct {
	// Levels is the number of QoS classes (≥ 2). The highest Levels-1
	// classes carry SLOs; the last is the scavenger.
	Levels int
	// LatencyTargets[k] is the per-MTU RNL SLO for class k. The entry
	// for the lowest class is ignored (no SLO). Targets are normalised
	// per MTU so that larger RPCs get proportionally larger absolute
	// targets (§5.1, "Handling different RPC sizes").
	LatencyTargets []sim.Duration
	// TargetPercentiles[k] is the percentile at which class k's SLO is
	// defined (e.g. 99.9). It sets the additive-increase window:
	// increment_window = latency_target · 100/(100 − pctl), so a higher
	// tail makes the algorithm more conservative (Algorithm 1 line 4).
	TargetPercentiles []float64
	// Alpha is the additive increment applied at most once per
	// increment window.
	Alpha float64
	// Beta is the multiplicative decrement per SLO miss per MTU.
	Beta float64
	// Floor is the lower bound on the admit probability, preventing
	// starvation: at zero no RPC would run on the class, so no further
	// measurements could raise the probability again (§5.1).
	Floor float64

	// Ablation switches (all false in the paper's design).

	// NoIncrementWindow applies the additive increase on every
	// SLO-compliant completion instead of once per window.
	NoIncrementWindow bool
	// NoSizeScaledMD makes the multiplicative decrease a constant β
	// regardless of RPC size.
	NoSizeScaledMD bool
	// DropInsteadOfDowngrade rejects unadmitted RPCs instead of
	// demoting them to the scavenger class.
	DropInsteadOfDowngrade bool
}

// Defaults3 returns the paper's 3-QoS configuration with the given
// per-MTU latency targets for QoSh and QoSm, both at the 99.9th
// percentile.
func Defaults3(targetHigh, targetMedium sim.Duration) Config {
	return Config{
		Levels:            3,
		LatencyTargets:    []sim.Duration{targetHigh, targetMedium, 0},
		TargetPercentiles: []float64{99.9, 99.9, 0},
		Alpha:             0.01,
		Beta:              0.01,
		Floor:             0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Levels < 2 {
		return fmt.Errorf("core: need at least 2 QoS levels, got %d", c.Levels)
	}
	if len(c.LatencyTargets) != c.Levels {
		return fmt.Errorf("core: %d latency targets for %d levels", len(c.LatencyTargets), c.Levels)
	}
	if len(c.TargetPercentiles) != c.Levels {
		return fmt.Errorf("core: %d percentiles for %d levels", len(c.TargetPercentiles), c.Levels)
	}
	for k := 0; k < c.Levels-1; k++ {
		if c.LatencyTargets[k] <= 0 {
			return fmt.Errorf("core: class %d needs a positive latency target", k)
		}
		if p := c.TargetPercentiles[k]; p < 50 || p >= 100 {
			return fmt.Errorf("core: class %d percentile %v out of [50, 100)", k, p)
		}
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: α = %v out of (0, 1]", c.Alpha)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("core: β = %v out of (0, 1]", c.Beta)
	}
	if c.Floor < 0 || c.Floor >= 1 {
		return fmt.Errorf("core: floor = %v out of [0, 1)", c.Floor)
	}
	return nil
}

// incrementWindow computes Algorithm 1 line 4 for class k.
func (c Config) incrementWindow(k int) sim.Duration {
	pctl := c.TargetPercentiles[k]
	return sim.Duration(float64(c.LatencyTargets[k]) * 100 / (100 - pctl))
}

// IncrementWindow reports class's additive-increase window — the
// earliest interval after which a rejected sender could see a higher
// admit probability, and therefore the natural Retry-After hint for a
// load-shedding server. Classes without an SLO report zero.
func (ct *Controller) IncrementWindow(class qos.Class) sim.Duration {
	if class < 0 || class >= ct.lowest {
		return 0
	}
	return ct.windows[class]
}

// Stats counts controller activity. The fields are updated with atomic
// adds; concurrent readers should use Load, single-threaded readers (the
// simulator, post-run assertions) may read the fields directly.
type Stats struct {
	Admitted   int64
	Downgraded int64
	Dropped    int64
	SLOMisses  int64
	SLOMet     int64
	// Expired counts requests rejected before the admission draw because
	// their remaining deadline budget could not cover the observed
	// latency floor (serving mode only; see RecordExpired).
	Expired int64
}

// Load returns an atomic snapshot of the counters, safe to call while
// other goroutines are admitting and observing.
func (s *Stats) Load() Stats {
	return Stats{
		Admitted:   atomic.LoadInt64(&s.Admitted),
		Downgraded: atomic.LoadInt64(&s.Downgraded),
		Dropped:    atomic.LoadInt64(&s.Dropped),
		SLOMisses:  atomic.LoadInt64(&s.SLOMisses),
		SLOMet:     atomic.LoadInt64(&s.SLOMet),
		Expired:    atomic.LoadInt64(&s.Expired),
	}
}

// stateShards is the number of (dst, class) shard buckets. A power of
// two so the shard index is a mask; 64 keeps cross-core insert
// contention negligible without bloating an idle controller.
const stateShards = 64

type stateKey struct {
	dst   int
	class qos.Class
}

// shardIndex spreads (dst, class) keys over the shards. Fibonacci
// hashing on the combined key: cheap, and adjacent destinations land on
// different shards.
func shardIndex(dst int, class qos.Class) int {
	h := (uint64(dst)<<6 + uint64(class)) * 0x9E3779B97F4A7C15
	return int(h >> (64 - 6)) // log2(stateShards) top bits
}

type stateMap = map[stateKey]*classState

// stateShard holds one bucket of admission channels. Lookups are
// lock-free: the map is immutable and replaced copy-on-write under mu
// when a new (dst, class) channel first appears, so the admit fast path
// is one atomic pointer load plus a map read.
type stateShard struct {
	m  atomic.Pointer[stateMap]
	mu sync.Mutex // guards copy-on-write inserts and Reset
	_  [40]byte   // pad to a cache line so shard headers don't false-share
}

// classState is one (dst, class) admission channel. The admit
// probability lives in p as float64 bits so Admit can read it with a
// single atomic load; mu serialises the AIMD read-modify-write and the
// increment-window fields.
type classState struct {
	p  atomic.Uint64
	mu sync.Mutex

	lastIncrease  sim.Time
	everIncreased bool
}

func (st *classState) load() float64      { return math.Float64frombits(st.p.Load()) }
func (st *classState) store(pNew float64) { st.p.Store(math.Float64bits(pNew)) }

// Controller is the per-host admission controller. It implements
// rpc.Admitter and is safe for concurrent use when its Clock is.
type Controller struct {
	cfg    Config
	lowest qos.Class
	clock  Clock
	// windows[k] is the precomputed additive-increase window per class.
	windows []sim.Duration
	shards  [stateShards]stateShard
	Stats   Stats

	// flight, when non-nil, receives a Record per admission decision and
	// per SLO observation — the flight-recorder tap. flightSrc names this
	// controller in the records (the sending host id in a simulation).
	// The disabled path is a single nil check on the fast path.
	flight    *flight.Ring
	flightSrc int32
}

// New builds a Controller on the monotonic wall clock — the live serving
// configuration. The configuration must validate.
func New(cfg Config) (*Controller, error) {
	return NewWithClock(cfg, nil)
}

// NewWithClock builds a Controller on an explicit time source. A nil
// clock defaults to a fresh WallClock. Simulations pass a SimClock so
// admission draws come from the simulator's deterministic RNG stream.
func NewWithClock(cfg Config, clk Clock) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clk == nil {
		clk = NewWallClock()
	}
	ct := &Controller{
		cfg:     cfg,
		lowest:  qos.Class(cfg.Levels - 1),
		clock:   clk,
		windows: make([]sim.Duration, cfg.Levels),
	}
	for k := 0; k < cfg.Levels-1; k++ {
		ct.windows[k] = cfg.incrementWindow(k)
	}
	return ct, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller's configuration.
func (ct *Controller) Config() Config { return ct.cfg }

// Clock returns the controller's time source.
func (ct *Controller) Clock() Clock { return ct.clock }

// Scavenger reports the lowest configured class — the SLO-free level
// that carries best-effort and downgraded traffic.
func (ct *Controller) Scavenger() qos.Class { return ct.lowest }

// SetFlight attaches a flight recorder: every admission decision and SLO
// observation is recorded into r, tagged with src as the recording
// controller's id. A nil r detaches. Set before serving begins; the tap
// itself is lock-free and allocation-free, and with no recorder attached
// the fast path pays one nil check.
func (ct *Controller) SetFlight(r *flight.Ring, src int) {
	ct.flight = r
	ct.flightSrc = int32(src)
}

// Flight returns the attached flight recorder, or nil.
func (ct *Controller) Flight() *flight.Ring { return ct.flight }

// recordDecision is the flight-recorder tap for AdmitAt, kept out of
// line so the recorder-off fast path stays lean.
func (ct *Controller) recordDecision(dst int, requested, got qos.Class, v flight.Verdict, p float64, sizeMTUs int64) {
	ct.flight.Decision(ct.clock.Now(), ct.flightSrc, int32(dst), int8(requested), int8(got), v, p, int32(sizeMTUs))
}

// Reset discards all learned admission state, returning every channel to
// its initial p_admit of 1 — the state loss a host crash implies
// (Algorithm 1 keeps its state in sender memory only). Cumulative Stats
// are kept; they describe the whole run.
func (ct *Controller) Reset() {
	for i := range ct.shards {
		sh := &ct.shards[i]
		sh.mu.Lock()
		sh.m.Store(nil)
		sh.mu.Unlock()
	}
}

// classState returns the channel state for (dst, class), creating it at
// p_admit = 1 on first touch (Algorithm 1 line 3). The hit path is
// lock-free.
func (ct *Controller) classState(dst int, class qos.Class) *classState {
	sh := &ct.shards[shardIndex(dst, class)]
	k := stateKey{dst, class}
	if m := sh.m.Load(); m != nil {
		if st, ok := (*m)[k]; ok {
			return st
		}
	}
	return sh.create(k)
}

// create inserts a fresh channel via copy-on-write so concurrent readers
// never see a map mid-mutation.
func (sh *stateShard) create(k stateKey) *classState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.m.Load()
	if old != nil {
		if st, ok := (*old)[k]; ok {
			return st
		}
	}
	next := make(stateMap, 1)
	if old != nil {
		next = make(stateMap, len(*old)+1)
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	st := &classState{}
	st.store(1) // Algorithm 1 line 3
	next[k] = st
	sh.m.Store(&next)
	return st
}

// AdmitProbability exposes the current p_admit for a (dst, class) pair,
// for convergence instrumentation (Figures 17, 18, 28, 29).
func (ct *Controller) AdmitProbability(dst int, class qos.Class) float64 {
	if class >= ct.lowest {
		return 1
	}
	return ct.classState(dst, class).load()
}

// forEachKeySorted appends every live channel key to buf (reused across
// calls) and returns it sorted by (dst, class) — the deterministic
// iteration order every reporting surface shares.
func (ct *Controller) forEachKeySorted(buf []stateKey) []stateKey {
	buf = buf[:0]
	for i := range ct.shards {
		if m := ct.shards[i].m.Load(); m != nil {
			for k := range *m {
				buf = append(buf, k)
			}
		}
	}
	slices.SortFunc(buf, func(a, b stateKey) int {
		if a.dst != b.dst {
			return a.dst - b.dst
		}
		return int(a.class) - int(b.class)
	})
	return buf
}

// stateAt reads one channel's probability and remaining
// additive-increase window at now, taking the channel lock so the pair
// is consistent under concurrent Observes.
func (ct *Controller) stateAt(st *classState, class qos.Class, now sim.Time) (p float64, rem sim.Duration) {
	st.mu.Lock()
	p = st.load()
	if st.everIncreased {
		if open := st.lastIncrease + ct.windows[class]; open > now {
			rem = open - now
		}
	}
	st.mu.Unlock()
	return p, rem
}

// ForEachState visits every (dst, class) admission state in deterministic
// order with its current admit probability and the time remaining before
// the additive-increase window reopens at now (zero when the window is
// already open or no increase has happened yet).
func (ct *Controller) ForEachState(now sim.Time, f func(dst int, class qos.Class, pAdmit float64, windowRemaining sim.Duration)) {
	for _, k := range ct.forEachKeySorted(nil) {
		st := ct.classState(k.dst, k.class)
		p, rem := ct.stateAt(st, k.class, now)
		f(k.dst, k.class, p, rem)
	}
}

// MetricsSampler returns an obs.Sampler exposing this controller's
// per-(dst, class) admit probability and additive-increase window
// remainder; host identifies the controller's sending host in metric
// names. Metric keys are built once per (host, dst, class) and cached,
// so steady-state sampling performs no allocations; the returned sampler
// is not safe for concurrent use (each registry tick owns it).
func (ct *Controller) MetricsSampler(host int) obs.Sampler {
	type keyPair struct{ padmit, incwin string }
	names := make(map[stateKey]keyPair)
	var scratch []stateKey
	return func(now sim.Time, emit func(string, float64)) {
		scratch = ct.forEachKeySorted(scratch)
		for _, k := range scratch {
			kp, ok := names[k]
			if !ok {
				suffix := fmt.Sprintf("h%d.d%d.q%d", host, k.dst, int(k.class))
				kp = keyPair{padmit: "padmit." + suffix, incwin: "incwin_us." + suffix}
				names[k] = kp
			}
			st := ct.classState(k.dst, k.class)
			p, rem := ct.stateAt(st, k.class, now)
			emit(kp.padmit, p)
			emit(kp.incwin, rem.Micros())
		}
	}
}

// Admit implements rpc.Admitter — Algorithm 1 lines 5-12. RPCs requesting
// the lowest class are always admitted (it has no SLO to protect). The
// fast path is one uniform draw, one lock-free state lookup, and one
// atomic probability load: no locks, no allocations.
func (ct *Controller) Admit(dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	// Draw before the class check so the clock's draw sequence matches
	// the pre-Clock controller exactly (one draw per Admit call).
	return ct.AdmitAt(ct.clock.Float64(), dst, requested, sizeMTUs)
}

// AdmitAt is Admit with the uniform random draw supplied by the caller,
// for callers that manage their own draw sequence (e.g. a seeded
// deterministic embedding).
func (ct *Controller) AdmitAt(draw float64, dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	if requested >= ct.lowest || requested < 0 {
		atomic.AddInt64(&ct.Stats.Admitted, 1)
		if ct.flight != nil {
			ct.recordDecision(dst, requested, ct.lowest, flight.VerdictAdmit, 1, sizeMTUs)
		}
		return rpc.Decision{Class: ct.lowest}
	}
	st := ct.classState(dst, requested)
	p := st.load()
	if draw <= p {
		atomic.AddInt64(&ct.Stats.Admitted, 1)
		if ct.flight != nil {
			ct.recordDecision(dst, requested, requested, flight.VerdictAdmit, p, sizeMTUs)
		}
		return rpc.Decision{Class: requested}
	}
	if ct.cfg.DropInsteadOfDowngrade {
		atomic.AddInt64(&ct.Stats.Dropped, 1)
		if ct.flight != nil {
			ct.recordDecision(dst, requested, requested, flight.VerdictDrop, p, sizeMTUs)
		}
		return rpc.Decision{Drop: true}
	}
	atomic.AddInt64(&ct.Stats.Downgraded, 1)
	if ct.flight != nil {
		ct.recordDecision(dst, requested, ct.lowest, flight.VerdictDowngrade, p, sizeMTUs)
	}
	return rpc.Decision{Class: ct.lowest, Downgraded: true}
}

// RecordExpired counts and flight-records an expired-before-admit
// rejection: the request's remaining deadline budget could not cover the
// observed latency floor, so the serving layer rejected it without
// consulting p_admit — admitting it would only have burned capacity on
// work the client had already given up on.
func (ct *Controller) RecordExpired(dst int, requested qos.Class, sizeMTUs int64) {
	atomic.AddInt64(&ct.Stats.Expired, 1)
	if ct.flight != nil {
		p := 1.0
		if requested >= 0 && requested < ct.lowest {
			p = ct.classState(dst, requested).load()
		}
		ct.recordDecision(dst, requested, requested, flight.VerdictExpired, p, sizeMTUs)
	}
}

// Observe implements rpc.Admitter — Algorithm 1 lines 13-20. rnl is the
// measured RPC network latency of a completed RPC of sizeMTUs that ran on
// class run toward dst, timestamped by the controller's clock.
func (ct *Controller) Observe(dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	ct.ObserveAt(ct.clock.Now(), dst, run, rnl, sizeMTUs)
}

// ObserveAt is Observe with an explicit timestamp, for callers that
// manage their own time base.
func (ct *Controller) ObserveAt(now sim.Time, dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	if run >= ct.lowest || run < 0 {
		return // the scavenger class has no SLO and no admit probability
	}
	if sizeMTUs < 1 {
		sizeMTUs = 1
	}
	st := ct.classState(dst, run)
	target := ct.cfg.LatencyTargets[run]
	// Algorithm 1 line 15: per-MTU normalised comparison.
	if rnl/sim.Duration(sizeMTUs) < target {
		atomic.AddInt64(&ct.Stats.SLOMet, 1)
		window := ct.windows[run]
		st.mu.Lock()
		if ct.cfg.NoIncrementWindow || !st.everIncreased || now-st.lastIncrease > window {
			st.store(min(st.load()+ct.cfg.Alpha, 1))
			st.lastIncrease = now
			st.everIncreased = true
		}
		st.mu.Unlock()
		if ct.flight != nil {
			ct.flight.Complete(now, ct.flightSrc, int32(dst), int8(run),
				flight.VerdictSLOMet, st.load(), int32(sizeMTUs), rnl.Micros())
		}
		return
	}
	atomic.AddInt64(&ct.Stats.SLOMisses, 1)
	dec := ct.cfg.Beta
	if !ct.cfg.NoSizeScaledMD {
		dec *= float64(sizeMTUs)
	}
	st.mu.Lock()
	st.store(max(st.load()-dec, ct.cfg.Floor))
	st.mu.Unlock()
	if ct.flight != nil {
		ct.flight.Complete(now, ct.flightSrc, int32(dst), int8(run),
			flight.VerdictSLOMiss, st.load(), int32(sizeMTUs), rnl.Micros())
	}
}
