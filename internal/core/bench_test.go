package core

import (
	"testing"

	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// benchController builds a wall-clock controller with a spread of warm
// (dst, class) channels, mirroring a serving process at steady state.
func benchController(b *testing.B) *Controller {
	b.Helper()
	ct := MustNew(Defaults3(2*sim.Microsecond, 4*sim.Microsecond))
	for dst := 0; dst < 64; dst++ {
		ct.Observe(dst, qos.High, sim.Microsecond, 1)
	}
	return ct
}

// BenchmarkAdmitDecision measures the serial admit fast path: one uniform
// draw, one lock-free state lookup, one atomic probability load.
func BenchmarkAdmitDecision(b *testing.B) {
	ct := benchController(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Admit(i&63, qos.High, 1)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkAdmitDecisionParallel measures the admit fast path under
// GOMAXPROCS-way contention — the live serving configuration.
func BenchmarkAdmitDecisionParallel(b *testing.B) {
	ct := benchController(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ct.Admit(i&63, qos.High, 1)
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkObserve measures the AIMD feedback path (per-channel mutex).
func BenchmarkObserve(b *testing.B) {
	ct := benchController(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Observe(i&63, qos.High, sim.Microsecond, 1)
	}
}

// BenchmarkAdmitDecisionFlight is BenchmarkAdmitDecision with the flight
// recorder attached — the cost of the black box on the hot path.
func BenchmarkAdmitDecisionFlight(b *testing.B) {
	ct := benchController(b)
	ct.SetFlight(flight.NewRing(flight.Config{}), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Admit(i&63, qos.High, 1)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
