// Command aequitas-sim runs one configurable simulation and prints its
// measurements: per-QoS RNL percentiles, admitted QoS-mix, SLO
// compliance, and utilisation. It is the general-purpose front end to the
// simulator; cmd/figures drives the specific paper experiments.
//
// Example — the paper's 33-node overload with and without Aequitas:
//
//	aequitas-sim -hosts 33 -system aequitas -mix 0.6,0.3,0.1 \
//	    -load 0.8 -burst 1.4 -slo-high 25us -slo-med 50us -dur 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"aequitas"
	"aequitas/internal/obs"
)

var systems = map[string]aequitas.System{
	"baseline": aequitas.SystemBaseline,
	"aequitas": aequitas.SystemAequitas,
	"spq":      aequitas.SystemSPQ,
	"dwrr":     aequitas.SystemDWRR,
	"pfabric":  aequitas.SystemPFabric,
	"qjump":    aequitas.SystemQJump,
	"d3":       aequitas.SystemD3,
	"pdq":      aequitas.SystemPDQ,
	"homa":     aequitas.SystemHoma,
}

func main() {
	var (
		system   = flag.String("system", "aequitas", "system: baseline|aequitas|spq|dwrr|pfabric|qjump|d3|pdq|homa")
		hosts    = flag.Int("hosts", 12, "number of hosts")
		dur      = flag.Duration("dur", 40*time.Millisecond, "simulated duration")
		seed     = flag.Int64("seed", 1, "random seed")
		load     = flag.Float64("load", 0.8, "average offered load per host (fraction of link rate)")
		burst    = flag.Float64("burst", 1.4, "burst load rho (0 = unmodulated)")
		mixStr   = flag.String("mix", "0.5,0.3,0.2", "input QoS mix: PC,NC,BE byte shares")
		pattern  = flag.String("pattern", "uniform", "traffic pattern: uniform | incast[:FANIN] | permutation | hotspot:HOT:SHARE")
		shape    = flag.String("load-shape", "constant", "load shape: constant | step:AT:FACTOR | ramp:FROM:TO:FACTOR | onoff:PERIOD:DUTY")
		rpcBytes = flag.Int64("rpc-bytes", 32<<10, "fixed RPC size; 0 = production-shaped distributions")
		sloHigh  = flag.Duration("slo-high", 25*time.Microsecond, "QoSh RNL SLO")
		sloMed   = flag.Duration("slo-med", 50*time.Microsecond, "QoSm RNL SLO")
		sloRef   = flag.Int64("slo-ref-bytes", 32<<10, "RPC size the SLOs refer to (0 = per MTU)")
		alpha    = flag.Float64("alpha", 0.01, "admit probability additive increment")
		beta     = flag.Float64("beta", 0.01, "admit probability decrement per MTU per miss")
		weights  = flag.String("weights", "8,4,1", "WFQ weights, highest class first")
		trace    = flag.String("trace", "", "write the RPC lifecycle event trace (NDJSON) to this file")
		traceCSV = flag.String("trace-csv", "", "write a per-RPC completion CSV trace to this file")
		traceChr = flag.String("trace-chrome", "", "write a Chrome trace-event JSON (Perfetto) to this file")
		metrics  = flag.String("metrics", "", "write the periodic metrics time series (CSV) to this file")
		flightF  = flag.String("flight", "", "write flight-recorder dumps (NDJSON) to this file: one per fault onset plus a final dump")
		flightN  = flag.Int("flight-records", 0, "flight ring capacity in records (default 16384)")
		metEvery = flag.Duration("metrics-every", 0, "metrics sampling interval in simulated time (default 100us)")
		tailTS   = flag.Bool("tail", false, "add per-(dst,class) windowed RNL tail quantiles to -metrics")
		httpAddr = flag.String("http", "", "serve live /metrics (Prometheus), /snapshot (JSON) and /debug/pprof on this address during the run")
		linger   = flag.Duration("http-linger", 0, "keep the -http endpoint serving the final snapshot this long after the run ends")
		attrib   = flag.Bool("attribution", false, "decompose each RPC's latency and print per-class mean breakdowns")
		attrCSV  = flag.String("attribution-csv", "", "write the per-RPC latency decomposition (CSV) to this file")
		audit    = flag.Bool("audit", false, "audit observed queueing against the per-class theory bounds")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faultS   = flag.String("faults", "", "fault plan: preset ("+strings.Join(aequitas.FaultPresetNames(), "|")+") or plan file path")
		rTimeout = flag.Duration("rpc-timeout", 0, "per-attempt RPC timeout (0 = no timeouts/retries)")
		rRetries = flag.Int("rpc-retries", 3, "retry budget per RPC once -rpc-timeout is set")
		rHedge   = flag.Duration("rpc-hedge-after", 0, "issue a hedged duplicate on the scavenger class after this delay (0 = off)")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
			}
		}()
	}

	sys, ok := systems[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	mix, err := parseFloats(*mixStr)
	if err != nil || len(mix) != 3 {
		log.Fatalf("bad -mix %q", *mixStr)
	}
	w, err := parseFloats(*weights)
	if err != nil {
		log.Fatalf("bad -weights %q", *weights)
	}

	classes := make([]aequitas.TrafficClass, 0, 3)
	for i, pr := range []aequitas.Priority{aequitas.PC, aequitas.NC, aequitas.BE} {
		tc := aequitas.TrafficClass{Priority: pr, Share: mix[i]}
		if *rpcBytes > 0 {
			tc.FixedBytes = *rpcBytes
		} else {
			switch pr {
			case aequitas.PC:
				tc.Size = aequitas.ProductionPCSizes()
			case aequitas.NC:
				tc.Size = aequitas.ProductionNCSizes()
			default:
				tc.Size = aequitas.ProductionBESizes()
			}
		}
		classes = append(classes, tc)
	}

	cfg := aequitas.SimConfig{
		System:     sys,
		Hosts:      *hosts,
		Seed:       *seed,
		Duration:   *dur,
		QoSWeights: w,
	}
	if *traceCSV != "" {
		f := mustCreate(*traceCSV)
		defer f.Close()
		cfg.TraceWriter = aequitas.NewCSVTrace(f)
	}
	if *trace != "" {
		f := mustCreate(*trace)
		defer f.Close()
		cfg.Obs.TraceNDJSON = f
	}
	if *traceChr != "" {
		f := mustCreate(*traceChr)
		defer f.Close()
		cfg.Obs.TraceChrome = f
	}
	if *metrics != "" {
		f := mustCreate(*metrics)
		defer f.Close()
		cfg.Obs.MetricsCSV = f
		cfg.Obs.MetricsEvery = *metEvery
		cfg.Obs.TailSeries = *tailTS
	} else if *tailTS {
		log.Fatal("-tail needs -metrics to write the time series to")
	}
	if *flightF != "" {
		f := mustCreate(*flightF)
		defer f.Close()
		cfg.Obs.FlightNDJSON = f
		cfg.Obs.FlightRecords = *flightN
	}
	cfg.Obs.Attribution = *attrib
	cfg.Obs.Audit = *audit
	if *attrCSV != "" {
		f := mustCreate(*attrCSV)
		defer f.Close()
		cfg.Obs.AttributionCSV = f
	}
	cfg.SLOs = []aequitas.SLO{
		{Target: *sloHigh, ReferenceBytes: *sloRef, Percentile: 99.9},
		{Target: *sloMed, ReferenceBytes: *sloRef, Percentile: 99.9},
	}
	cfg.Admission = aequitas.AdmissionParams{Alpha: *alpha, Beta: *beta}
	pat, err := parsePattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	ls, err := parseShape(*shape)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Traffic = []aequitas.HostTraffic{{
		Pattern:   pat,
		AvgLoad:   *load,
		BurstLoad: *burst,
		Shape:     ls,
		Classes:   classes,
	}}
	if *faultS != "" {
		plan, err := loadFaultPlan(*faultS, *dur)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	cfg.Retry = aequitas.RetryParams{
		Timeout:    *rTimeout,
		MaxRetries: *rRetries,
		HedgeAfter: *rHedge,
	}

	if *httpAddr != "" {
		exp := obs.NewExporter()
		cfg.Obs.Export = exp
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("-http %s: %v", *httpAddr, err)
		}
		fmt.Fprintf(os.Stderr, "serving /metrics, /snapshot, /debug/pprof on http://%s\n", ln.Addr())
		go http.Serve(ln, exp.Handler())
		if *linger > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "lingering %v on http://%s (final snapshot)\n", *linger, ln.Addr())
				time.Sleep(*linger)
			}()
		}
	}

	start := time.Now()
	res, err := aequitas.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system=%s hosts=%d dur=%v seed=%d (wall %v)\n\n",
		sys, *hosts, *dur, *seed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-6s %10s %10s %10s %10s %12s\n", "class", "p50(us)", "p99(us)", "p99.9(us)", "max(us)", "in-SLO(%)")
	for _, c := range res.Classes() {
		l := res.RNLRun[c]
		inSLO := "-"
		if f, ok := res.SLOMetRunBytesFraction[c]; ok {
			inSLO = fmt.Sprintf("%.1f", 100*f)
		}
		fmt.Printf("%-6s %10.1f %10.1f %10.1f %10.1f %12s\n",
			c, l.P50US, l.P99US, l.P999US, l.MaxUS, inSLO)
	}
	fmt.Println()
	fmt.Printf("issued %d, completed %d, downgraded %d, dropped %d, terminated %d\n",
		res.Issued, res.Completed, res.Downgraded, res.Dropped, res.Terminated)
	fmt.Printf("input mix  %s\nadmitted   %s\n", fmtMix(res.InputMix), fmtMix(res.AdmittedMix))
	fmt.Printf("goodput fraction %.1f%%, mean downlink utilization %.1f%%\n",
		100*res.GoodputFraction, 100*res.AvgDownlinkUtilization)
	for pr, f := range res.SLOMetBytesFraction {
		fmt.Printf("%v traffic meeting its original SLO: %.1f%%\n", pr, 100*f)
	}
	if res.Attribution != nil {
		printAttribution(res)
	}
	if res.Audit != nil {
		printAudit(res.Audit)
	}
	if cfg.Faults != nil {
		printDegradation(res)
	}
}

// loadFaultPlan resolves the -faults argument: a preset name first, then
// a plan file.
func loadFaultPlan(arg string, dur time.Duration) (*aequitas.FaultPlan, error) {
	if plan, err := aequitas.FaultPreset(arg, dur); err == nil {
		return plan, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("-faults %q: not a preset (%s) and %v",
			arg, strings.Join(aequitas.FaultPresetNames(), "|"), err)
	}
	defer f.Close()
	plan, err := aequitas.ParseFaultPlan(f)
	if err != nil {
		return nil, fmt.Errorf("-faults %s: %v", arg, err)
	}
	return plan, nil
}

// printDegradation prints the fault timeline and graceful-degradation
// metrics.
func printDegradation(res *aequitas.Results) {
	fmt.Printf("\nfault injection: goodput availability %.1f%% of bins\n", 100*res.GoodputAvailability)
	fmt.Printf("robustness: timed out %d, retried %d, hedged %d (wins %d), failed %d, crash-lost %d, not issued %d\n",
		res.TimedOut, res.Retried, res.Hedged, res.HedgeWins,
		res.FailedRPCs, res.CrashLostRPCs, res.NotIssuedRPCs)
	for _, f := range res.Faults {
		line := fmt.Sprintf("  t=%8.3fms %-8s %s", 1e3*f.TimeS, f.Event, f.Target)
		if f.Event == "loss" {
			line += fmt.Sprintf(" rate=%.3f", f.Rate)
		}
		if f.Onset() {
			for i, r := range f.PAdmitRecoveryS {
				p := res.Probes[i]
				if r != r { // NaN: never re-converged before the horizon
					line += fmt.Sprintf("  probe[%d→%d %s] p_admit not recovered", p.Src, p.Dst, p.Class)
				} else {
					line += fmt.Sprintf("  probe[%d→%d %s] p_admit recovered in %.2fms", p.Src, p.Dst, p.Class, 1e3*r)
				}
			}
		}
		fmt.Println(line)
	}
}

// printAttribution prints the per-class mean latency decomposition table.
func printAttribution(res *aequitas.Results) {
	fmt.Println("\nlatency attribution (mean us per completed RPC):")
	fmt.Printf("%-6s %8s %8s %8s %10s %8s %8s %8s %8s %8s\n",
		"class", "n", "admit", "sender", "transport", "pacing", "nic", "switch", "wire", "rnl")
	for _, c := range res.Classes() {
		a, ok := res.Attribution[c]
		if !ok {
			continue
		}
		fmt.Printf("%-6s %8d %8.2f %8.2f %10.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			c, a.N, a.AdmitUS, a.SenderUS, a.TransportUS, a.PacingUS, a.NICUS, a.SwitchUS, a.WireUS, a.RNLUS)
	}
}

// printAudit prints the QoS-bound auditor's verdict.
func printAudit(rep *aequitas.AuditReport) {
	verdict := "OK"
	if !rep.Ok() {
		verdict = fmt.Sprintf("%d VIOLATIONS", rep.TotalViolations)
	}
	fmt.Printf("\nQoS-bound audit (slack %.1fus): %s\n", rep.SlackUS, verdict)
	fmt.Printf("%-6s %8s %10s %10s %10s %10s %10s %10s\n",
		"class", "n", "bound(us)", "q.p99(us)", "q.max(us)", "hop.max", "rnl.p99", "viol")
	for _, c := range rep.Classes {
		bound := "-"
		if c.Bounded {
			bound = fmt.Sprintf("%.1f", c.BoundUS)
		}
		fmt.Printf("%-6s %8d %10s %10.1f %10.1f %10.1f %10.1f %10d\n",
			c.Class, c.N, bound, c.QueueP99US, c.QueueMaxUS, c.MaxHopUS, c.RNLP99US, c.Violations)
	}
	for _, v := range rep.Violations {
		where := v.Kind
		if v.Link != "" {
			where += "@" + v.Link
		}
		fmt.Printf("  violation: rpc=%d class=%s %s t=%.1fus observed=%.1fus bound=%.1fus\n",
			v.RPC, v.Class, where, v.TimeUS, v.ObservedUS, v.BoundUS)
	}
}

func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// parsePattern maps the -pattern grammar onto a TrafficPattern:
// uniform | incast[:FANIN] | permutation | hotspot:HOT:SHARE.
func parsePattern(s string) (aequitas.TrafficPattern, error) {
	name, args, _ := strings.Cut(s, ":")
	switch name {
	case "uniform":
		return aequitas.UniformPattern(), nil
	case "permutation":
		return aequitas.PermutationPattern(), nil
	case "incast":
		fanin := 0
		if args != "" {
			var err error
			if fanin, err = strconv.Atoi(args); err != nil {
				return nil, fmt.Errorf("bad incast fan-in %q", args)
			}
		}
		return aequitas.IncastPattern(fanin), nil
	case "hotspot":
		parts := strings.Split(args, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("hotspot needs HOT:SHARE, got %q", s)
		}
		hot, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad hotspot host %q", parts[0])
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad hotspot share %q", parts[1])
		}
		return aequitas.HotspotPattern(hot, share), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", s)
	}
}

// parseShape maps the -load-shape grammar onto a LoadShape:
// constant | step:AT:FACTOR | ramp:FROM:TO:FACTOR | onoff:PERIOD:DUTY.
// Times use Go duration syntax (e.g. step:10ms:2).
func parseShape(s string) (aequitas.LoadShape, error) {
	name, args, _ := strings.Cut(s, ":")
	parts := strings.Split(args, ":")
	dur := func(i int) (time.Duration, error) { return time.ParseDuration(parts[i]) }
	num := func(i int) (float64, error) { return strconv.ParseFloat(parts[i], 64) }
	switch name {
	case "constant", "":
		return nil, nil
	case "step":
		if len(parts) != 2 {
			return nil, fmt.Errorf("step needs AT:FACTOR, got %q", s)
		}
		at, err := dur(0)
		if err != nil {
			return nil, err
		}
		f, err := num(1)
		if err != nil {
			return nil, err
		}
		return aequitas.StepLoad(at, f), nil
	case "ramp":
		if len(parts) != 3 {
			return nil, fmt.Errorf("ramp needs FROM:TO:FACTOR, got %q", s)
		}
		from, err := dur(0)
		if err != nil {
			return nil, err
		}
		to, err := dur(1)
		if err != nil {
			return nil, err
		}
		f, err := num(2)
		if err != nil {
			return nil, err
		}
		return aequitas.RampLoad(from, to, f), nil
	case "onoff":
		if len(parts) != 2 {
			return nil, fmt.Errorf("onoff needs PERIOD:DUTY, got %q", s)
		}
		period, err := dur(0)
		if err != nil {
			return nil, err
		}
		duty, err := num(1)
		if err != nil {
			return nil, err
		}
		return aequitas.OnOffLoad(period, duty), nil
	default:
		return nil, fmt.Errorf("unknown load shape %q", s)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func fmtMix(m []float64) string {
	parts := make([]string, len(m))
	for i, x := range m {
		parts[i] = fmt.Sprintf("%5.1f%%", 100*x)
	}
	return strings.Join(parts, " ")
}
