package transport

import (
	"testing"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

// BenchmarkTransportSend measures the full send path for one message:
// packetisation, window pacing, switch traversal, delivery, and the
// cumulative-ack return path, over a two-host network. Each iteration
// delivers one 16 KB message, so ns/op is the end-to-end transport cost
// per message and allocs/op exposes any per-packet garbage on the
// send/ack path.
func BenchmarkTransportSend(b *testing.B) {
	net, err := netsim.New(netsim.Config{
		Hosts: 2,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{NewCC: func() CC { return SwiftDefaults(10 * sim.Microsecond) }}
	eps := []*Endpoint{
		NewEndpoint(net, net.Host(0), cfg),
		NewEndpoint(net, net.Host(1), cfg),
	}
	s := sim.New(1)
	const msgBytes = 16 * 1024
	completed := 0
	msg := Message{Class: qos.High, Bytes: msgBytes,
		OnComplete: func(*sim.Simulator, *Message) { completed++ }}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := msg
		m.ID = uint64(i + 1)
		m.Dst = 1
		eps[0].Send(s, &m)
		s.Run()
	}
	b.StopTimer()
	if completed != b.N {
		b.Fatalf("completed %d messages, want %d", completed, b.N)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "msgs/s")
	}
}
