package rpc

import (
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

// RetryPolicy configures client-side RPC robustness: per-attempt
// timeouts with capped exponential backoff and deterministic jitter, a
// bounded retry budget, and optional RepFlow-style hedged duplicates.
// The zero value disables everything.
type RetryPolicy struct {
	// Timeout is the per-attempt deadline. 0 disables timeouts and
	// retries (faults can still fail RPCs via transport resets).
	Timeout sim.Duration
	// MaxRetries bounds retry attempts after the first send.
	MaxRetries int
	// Backoff is the base retry delay, doubled per consecutive retry;
	// 0 defaults to Timeout/2.
	Backoff sim.Duration
	// MaxBackoff caps the (pre-jitter) backoff; 0 leaves it uncapped.
	MaxBackoff sim.Duration
	// JitterFrac adds a uniform random fraction [0, JitterFrac) of the
	// backoff on top, drawn from the simulator RNG (deterministic per
	// seed). It decorrelates retry storms after a shared fault.
	JitterFrac float64
	// HedgeAfter, when > 0, sends one duplicate of each still-incomplete
	// RPC after that delay (RepFlow's replication for tail latency). The
	// first completion wins; the loser's bytes are wasted work.
	HedgeAfter sim.Duration
	// HedgeClass is the QoS class hedged duplicates run on. Hedges ride
	// a different class so the duplicate takes an independent path
	// through per-class connections and queues (a same-class duplicate
	// would serialise behind the original on its byte stream). The run
	// wires this to the scavenger class.
	HedgeClass qos.Class
	// HedgeMaxMTUs, when > 0, hedges only RPCs of at most this size, so
	// replication cost stays bounded (RepFlow replicates short flows
	// only).
	HedgeMaxMTUs int64
}

// active reports whether the policy does anything.
func (p RetryPolicy) active() bool { return p.Timeout > 0 || p.HedgeAfter > 0 }

// inflightRPC tracks one issued, not-yet-completed RPC under the robust
// issue path.
type inflightRPC struct {
	r       *RPC
	retries int
	// done marks the terminal state (completed, failed, or lost to a
	// crash); late attempt callbacks check it and bail.
	done bool
	// backoffArmed marks that timer holds a pending retry, so a second
	// failure signal (e.g. OnFail on both the original and its hedge
	// when a peer crashes) does not double-consume the retry budget.
	backoffArmed bool
	timer        sim.Handle // per-attempt timeout or retry backoff
	hedgeTimer   sim.Handle
}

// tracking reports whether Issue routes through the robust path.
func (st *Stack) tracking() bool { return st.TrackInflight || st.Retry.active() }

// InflightLen reports tracked in-flight RPCs (tests).
func (st *Stack) InflightLen() int { return len(st.inflight) }

// Down reports whether the stack is crashed.
func (st *Stack) Down() bool { return st.down }

// issueTracked is the robust continuation of Issue: the RPC is recorded
// in-flight, attempts carry timeout/fail callbacks, and an optional
// hedge timer is armed.
func (st *Stack) issueTracked(s *sim.Simulator, r *RPC) {
	if st.inflight == nil {
		st.inflight = make(map[uint64]*inflightRPC)
	}
	fs := &inflightRPC{r: r}
	st.inflight[r.ID] = fs
	st.sendAttempt(s, fs, r.QoSRun, false)
	if d := st.Retry.HedgeAfter; d > 0 && (st.Retry.HedgeMaxMTUs == 0 || r.SizeMTUs <= st.Retry.HedgeMaxMTUs) {
		fs.hedgeTimer = s.AfterFunc(d, func(s *sim.Simulator) { st.hedge(s, fs) })
	}
}

// sendAttempt transmits one attempt of the RPC on class and (for
// non-hedge attempts) arms the per-attempt timeout.
func (st *Stack) sendAttempt(s *sim.Simulator, fs *inflightRPC, class qos.Class, isHedge bool) {
	r := fs.r
	st.ep.Send(s, &transport.Message{
		ID:       r.ID,
		Dst:      r.Dst,
		Class:    class,
		Bytes:    r.Bytes,
		Deadline: r.Deadline,
		OnComplete: func(s *sim.Simulator, m *transport.Message) {
			st.attemptDone(s, fs, isHedge)
		},
		OnFail: func(s *sim.Simulator, m *transport.Message) {
			st.retryOrFail(s, fs)
		},
	})
	if !isHedge && st.Retry.Timeout > 0 {
		fs.timer.Cancel()
		fs.timer = s.AfterFunc(st.Retry.Timeout, func(s *sim.Simulator) { st.onTimeout(s, fs) })
	}
}

// attemptDone completes the RPC on its first finishing attempt; later
// attempts (the hedge loser, a pre-timeout original straggling home) are
// ignored.
func (st *Stack) attemptDone(s *sim.Simulator, fs *inflightRPC, isHedge bool) {
	if fs.done {
		return
	}
	fs.done = true
	fs.timer.Cancel()
	fs.hedgeTimer.Cancel()
	delete(st.inflight, fs.r.ID)
	r := fs.r
	r.CompleteTime = s.Now()
	r.RNL = r.CompleteTime - r.IssueTime
	st.outstanding[outKey{r.Dst, r.QoSRun}]--
	st.Stats.Completed++
	if isHedge {
		st.Stats.HedgeWins++
	}
	st.admitter.Observe(r.Dst, r.QoSRun, r.RNL, r.SizeMTUs)
	if st.Trace != nil {
		st.Trace.Complete(s.Now(), r.ID, st.Src, r.Dst, int(r.QoSRun), r.Bytes, r.RNL)
	}
	st.Attr.Complete(s.Now(), r.ID, st.Src, r.Dst, int(r.QoSRun), r.RNL)
	if st.OnComplete != nil {
		st.OnComplete(s, r)
	}
}

// onTimeout handles a per-attempt deadline expiring. On the RPC's first
// timeout the elapsed latency is fed to the admitter as a measurement: a
// timeout is an SLO miss, and reporting it is what lets admission
// control react *during* an outage instead of only after late
// completions trickle in. Later attempts of the same RPC don't
// re-penalize — one lost RPC is one miss, so the controller's recovery
// can begin as soon as the fault clears rather than after the whole
// retry tail has drained.
func (st *Stack) onTimeout(s *sim.Simulator, fs *inflightRPC) {
	if fs.done {
		return
	}
	st.Stats.TimedOut++
	if fs.retries == 0 {
		r := fs.r
		st.admitter.Observe(r.Dst, r.QoSRun, s.Now()-r.IssueTime, r.SizeMTUs)
	}
	st.retryOrFail(s, fs)
}

// retryOrFail schedules the next attempt after a backoff, or gives up
// when the budget is spent (or retries are disabled).
func (st *Stack) retryOrFail(s *sim.Simulator, fs *inflightRPC) {
	if fs.done || fs.backoffArmed {
		return
	}
	if st.Retry.Timeout <= 0 || fs.retries >= st.Retry.MaxRetries {
		st.fail(s, fs)
		return
	}
	fs.retries++
	fs.backoffArmed = true
	fs.timer.Cancel()
	fs.timer = s.AfterFunc(st.backoffFor(s, fs.retries), func(s *sim.Simulator) {
		fs.backoffArmed = false
		if fs.done {
			return
		}
		st.Stats.Retried++
		st.sendAttempt(s, fs, fs.r.QoSRun, false)
	})
}

// backoffFor computes the capped exponential backoff with jitter for the
// given retry attempt (1-based).
func (st *Stack) backoffFor(s *sim.Simulator, attempt int) sim.Duration {
	base := st.Retry.Backoff
	if base <= 0 {
		base = st.Retry.Timeout / 2
	}
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := base << shift
	if max := st.Retry.MaxBackoff; max > 0 && d > max {
		d = max
	}
	if f := st.Retry.JitterFrac; f > 0 {
		d += sim.Duration(f * float64(d) * s.Rand().Float64())
	}
	return d
}

// hedge sends the one duplicate attempt on the hedge class.
func (st *Stack) hedge(s *sim.Simulator, fs *inflightRPC) {
	if fs.done {
		return
	}
	st.Stats.Hedged++
	st.sendAttempt(s, fs, st.Retry.HedgeClass, true)
}

// fail abandons the RPC: accounting is released and attribution state
// dropped so the pending map cannot leak.
func (st *Stack) fail(s *sim.Simulator, fs *inflightRPC) {
	fs.done = true
	fs.timer.Cancel()
	fs.hedgeTimer.Cancel()
	delete(st.inflight, fs.r.ID)
	st.outstanding[outKey{fs.r.Dst, fs.r.QoSRun}]--
	st.Stats.Failed++
	st.Attr.Drop(st.Src, fs.r.ID)
}

// Crash simulates this host failing: every in-flight RPC is lost (its
// timers cancelled, its attribution state dropped), outstanding-RPC
// accounting clears, and the stack stops issuing until Restart. The
// caller is responsible for crashing the transport endpoint and
// resetting the admission controller alongside.
func (st *Stack) Crash(s *sim.Simulator) {
	st.down = true
	for id, fs := range st.inflight {
		fs.done = true
		fs.timer.Cancel()
		fs.hedgeTimer.Cancel()
		st.Stats.CrashLost++
		st.Attr.Drop(st.Src, id)
	}
	clear(st.inflight)
	clear(st.outstanding)
}

// Restart brings a crashed stack back; accounting starts empty.
func (st *Stack) Restart() { st.down = false }
