package netsim

import (
	"math/rand"
	"testing"

	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

func TestLinkDownBlackholesAndResumes(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 0, wfq.NewFIFO(0), c)

	// Queue two packets, then fail the link before either fully drains:
	// the one mid-serialisation finishes, the queued one freezes.
	l.Send(s, &Packet{Size: 1500, ID: 1})
	l.Send(s, &Packet{Size: 1500, ID: 2})
	s.AtFunc(60*sim.Nanosecond, func(s *sim.Simulator) { l.SetDown(s, true) })
	// Packets arriving while down vanish without OnDrop.
	var congDrops int
	l.OnDrop = func(*sim.Simulator, *Packet) { congDrops++ }
	s.AtFunc(200*sim.Nanosecond, func(s *sim.Simulator) {
		l.Send(s, &Packet{Size: 1500, ID: 3})
	})
	s.AtFunc(1000*sim.Nanosecond, func(s *sim.Simulator) { l.SetDown(s, false) })
	s.Run()

	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(c.pkts))
	}
	if c.pkts[0].ID != 1 || c.pkts[1].ID != 2 {
		t.Errorf("delivered IDs %d,%d", c.pkts[0].ID, c.pkts[1].ID)
	}
	// Packet 2 resumed only after the link came back: 1000ns + 120ns tx.
	if want := 1120 * sim.Nanosecond; c.times[1] != want {
		t.Errorf("queued packet resumed at %v, want %v", c.times[1], want)
	}
	if l.Stats.FaultDropPackets != 1 || l.Stats.FaultDropBytes != 1500 {
		t.Errorf("fault drops = %d/%dB, want 1/1500B",
			l.Stats.FaultDropPackets, l.Stats.FaultDropBytes)
	}
	if l.Stats.DropPackets != 0 || congDrops != 0 {
		t.Error("blackholed packet was counted as a congestion drop")
	}
	if l.Down() {
		t.Error("link still reports down")
	}
}

func TestLinkSetDownIdempotent(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 0, wfq.NewFIFO(0), c)
	l.SetDown(s, true)
	l.SetDown(s, true) // no-op
	l.Send(s, &Packet{Size: 100})
	l.SetDown(s, false)
	l.SetDown(s, false) // no-op; must not double-kick
	l.Send(s, &Packet{Size: 100, ID: 9})
	s.Run()
	if len(c.pkts) != 1 || c.pkts[0].ID != 9 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 0, wfq.NewFIFO(0), c)
	l.SetLoss(0.3, rand.New(rand.NewSource(42)))
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(s, &Packet{Size: 1500})
	}
	s.Run()
	lost := int(l.Stats.FaultDropPackets)
	if len(c.pkts)+lost != n {
		t.Fatalf("conservation: delivered %d + lost %d != %d", len(c.pkts), lost, n)
	}
	if frac := float64(lost) / n; frac < 0.27 || frac > 0.33 {
		t.Errorf("loss fraction %v, want ~0.3", frac)
	}
	// Clearing the loss restores lossless delivery.
	l.SetLoss(0, nil)
	before := len(c.pkts)
	for i := 0; i < 100; i++ {
		l.Send(s, &Packet{Size: 1500})
	}
	s.Run()
	if len(c.pkts)-before != 100 {
		t.Errorf("post-clear delivered %d, want 100", len(c.pkts)-before)
	}
}

func TestNetworkLinkByName(t *testing.T) {
	net, err := New(Config{Hosts: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]*Link{}
	net.ForEachLink(func(l *Link) { seen[l.Name] = l })
	if len(seen) == 0 {
		t.Fatal("no links")
	}
	for name, l := range seen {
		if got := net.LinkByName(name); got != l {
			t.Errorf("LinkByName(%q) = %p, want %p", name, got, l)
		}
	}
	if net.LinkByName("nope") != nil {
		t.Error("unknown name resolved")
	}
	if net.Host(2).Uplink == nil || net.Downlink(2) == nil {
		t.Error("host access links not exposed")
	}
}
