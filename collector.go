package aequitas

import (
	"fmt"

	"aequitas/internal/core"
	"aequitas/internal/faults"
	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/stats"
	"aequitas/internal/workload"
)

// countingAdmitter wraps the real admitter to record input and admitted
// byte mixes at issue time, within the measurement window. It keeps a
// reference to the run's simulator for window gating: the Admitter
// interface itself is time-source-free.
type countingAdmitter struct {
	s     *sim.Simulator
	inner rpc.Admitter
	col   *collector
}

func (ca *countingAdmitter) Admit(dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	d := ca.inner.Admit(dst, requested, sizeMTUs)
	ca.col.onAdmit(ca.s, requested, d, sizeMTUs)
	return d
}

func (ca *countingAdmitter) Observe(dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	ca.inner.Observe(dst, run, rnl, sizeMTUs)
}

// Reset forwards a crash-induced state wipe to the wrapped admitter when
// it supports one (the Aequitas controller does; PassThrough is
// stateless).
func (ca *countingAdmitter) Reset() {
	if r, ok := ca.inner.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// AdmitProbability implements rpc.ProbabilityReporter when the wrapped
// admitter does, so the stack's lifecycle trace and the per-RPC CSV see
// the probability behind each decision (1.0 for pass-through admitters).
func (ca *countingAdmitter) AdmitProbability(dst int, class qos.Class) float64 {
	if pr, ok := ca.inner.(rpc.ProbabilityReporter); ok {
		return pr.AdmitProbability(dst, class)
	}
	return 1
}

// collector accumulates all measurements for one run.
type collector struct {
	cfg    *SimConfig
	warm   sim.Time
	end    sim.Time
	stacks []*rpc.Stack
	gens   []*workload.Generator

	inputMix    *qos.MixCounter
	admittedMix *qos.MixCounter

	rnlRun  map[qos.Class]*stats.Sample
	rnlPrio map[qos.Priority]*stats.Sample

	// tails is the windowed tail time-series tracker (nil unless
	// ObsConfig.TailSeries); it sees every completion, warmup included,
	// matching the registry's sample-from-t=0 convention.
	tails *obs.TailTracker
	// expRNL holds cumulative per-run-class RNL histograms for the live
	// exporter (nil unless ObsConfig.Export). Like tails, it sees every
	// completion from t=0.
	expRNL map[qos.Class]*stats.Hist

	issued, completed, downgraded, dropped int64
	// SLO accounting by priority: issued vs met, in bytes and counts.
	issuedBytes, metBytes map[qos.Priority]int64
	issuedCount, metCount map[qos.Priority]int64
	// SLO accounting by the class the RPC actually ran on.
	runBytes, runMetBytes map[qos.Class]int64
	completedPayloadBytes int64
	offeredBytesAtWarm    int64
	busyAtWarm, busyAtEnd sim.Duration
	measStart, measEnd    sim.Time

	probes      []*probeState
	outHigh     stats.Sample
	outLow      stats.Sample
	outHiBuf    []int // per-dst scratch reused across sample ticks
	outLoBuf    []int
	traceHeader bool

	// Degradation accounting, active only when a fault plan is set:
	// completed payload bytes per coarse time bin across the measurement
	// window (for goodput availability) plus the applied fault events.
	faultBin   sim.Duration
	faultBins  []int64
	faultMarks []faultMark
}

// faultMark is one applied fault event, stamped with the time the
// injector fired it.
type faultMark struct {
	at sim.Time
	e  faults.Event
}

type probeState struct {
	p          Probe
	admitSer   stats.Series
	thruSer    stats.Series
	bytes      int64 // completed bytes on (src,dst,class) since last sample
	lastSample sim.Time
	// hasSample distinguishes "no previous sample yet" from a real sample
	// taken at t=0 (which a zero-time sentinel would misread when
	// Warmup == 0).
	hasSample bool
}

func newCollector(cfg *SimConfig) *collector {
	c := &collector{
		cfg:         cfg,
		warm:        sim.FromStd(cfg.Warmup),
		end:         sim.FromStd(cfg.Duration),
		inputMix:    qos.NewMixCounter(cfg.levels()),
		admittedMix: qos.NewMixCounter(cfg.levels()),
		rnlRun:      make(map[qos.Class]*stats.Sample),
		rnlPrio:     make(map[qos.Priority]*stats.Sample),
		issuedBytes: make(map[qos.Priority]int64),
		metBytes:    make(map[qos.Priority]int64),
		issuedCount: make(map[qos.Priority]int64),
		metCount:    make(map[qos.Priority]int64),
		runBytes:    make(map[qos.Class]int64),
		runMetBytes: make(map[qos.Class]int64),
	}
	for _, p := range cfg.Probes {
		c.probes = append(c.probes, &probeState{p: p})
	}
	if !cfg.Faults.Empty() {
		// Availability bins are deliberately coarse — at least a burst
		// period — so ordinary burst gaps don't read as outage bins.
		c.faultBin = sim.FromStd(cfg.SampleEvery)
		if bp := sim.FromStd(cfg.BurstPeriod); bp > c.faultBin {
			c.faultBin = bp
		}
		if span := c.end - c.warm; span > 0 && c.faultBin > 0 {
			c.faultBins = make([]int64, (span+c.faultBin-1)/c.faultBin)
		}
	}
	return c
}

// onFault records an applied fault event for the degradation report.
func (c *collector) onFault(s *sim.Simulator, e faults.Event) {
	c.faultMarks = append(c.faultMarks, faultMark{at: s.Now(), e: e})
}

func (c *collector) beginMeasurement(s *sim.Simulator, net *netsim.Network) {
	c.measStart = s.Now()
	for _, g := range c.gens {
		c.offeredBytesAtWarm += g.Offered.Total()
	}
	for i := 0; i < net.Hosts(); i++ {
		c.busyAtWarm += net.Downlink(i).Stats.BusyTime
	}
}

func (c *collector) endMeasurement(s *sim.Simulator, net *netsim.Network) {
	c.measEnd = s.Now()
	for i := 0; i < net.Hosts(); i++ {
		c.busyAtEnd += net.Downlink(i).Stats.BusyTime
	}
}

func (c *collector) onAdmit(s *sim.Simulator, requested qos.Class, d rpc.Decision, sizeMTUs int64) {
	// Gate on the same issue-time window as onComplete so the SLO-met
	// numerators (completions) and denominators (admissions) count the
	// same RPC population.
	if !c.inWindow(s.Now()) {
		return
	}
	bytes := sizeMTUs * int64(netsim.MaxPayload)
	// With fewer QoS levels than priority classes (e.g. 2-level runs),
	// lower priorities all request the scavenger class; clamp so their
	// bytes are counted rather than silently dropped.
	mixClass := requested
	if int(mixClass) >= c.cfg.levels() {
		mixClass = qos.Class(c.cfg.levels() - 1)
	}
	c.inputMix.Add(mixClass, bytes)
	if !d.Drop {
		c.admittedMix.Add(d.Class, bytes)
	}
	c.issued++
	if d.Downgraded {
		c.downgraded++
	}
	if d.Drop {
		c.dropped++
	}
	// SLO-met denominators are charged at issue so that RPCs that never
	// complete — dropped, terminated by a deadline baseline, or still
	// stuck at the end of the run — count as misses.
	pr := qos.MapQoSToPriority(requested)
	c.issuedBytes[pr] += bytes
	c.issuedCount[pr]++
}

// inWindow reports whether an RPC issued at t counts toward statistics.
func (c *collector) inWindow(t sim.Time) bool { return t >= c.warm && t <= c.end }

func (c *collector) onComplete(s *sim.Simulator, r *rpc.RPC) {
	c.tails.Observe(r.Dst, int(r.QoSRun), r.RNL.Micros())
	if c.expRNL != nil {
		h, ok := c.expRNL[r.QoSRun]
		if !ok {
			h = stats.NewHist()
			c.expRNL[r.QoSRun] = h
		}
		h.Record(r.RNL.Micros())
	}
	if !c.inWindow(r.IssueTime) {
		return
	}
	us := r.RNL.Micros()
	sampleFor(c.rnlRun, r.QoSRun, c.newSample).Add(us)
	sampleFor(c.rnlPrio, r.Priority, c.newSample).Add(us)
	c.completed++
	c.completedPayloadBytes += r.Bytes
	if len(c.faultBins) > 0 {
		idx := int((r.CompleteTime - c.warm) / c.faultBin)
		if idx < 0 {
			idx = 0
		} else if idx >= len(c.faultBins) {
			idx = len(c.faultBins) - 1
		}
		c.faultBins[idx] += r.Bytes
	}

	if c.meetsSLO(r) {
		// Numerator in the same MTU-quantised bytes as the issue-time
		// denominator.
		c.metBytes[r.Priority] += r.SizeMTUs * int64(netsim.MaxPayload)
		c.metCount[r.Priority]++
	}
	if int(r.QoSRun) < len(c.cfg.SLOs) {
		c.runBytes[r.QoSRun] += r.Bytes
		target := c.cfg.SLOs[r.QoSRun].perMTU()
		if r.RNL/sim.Duration(r.SizeMTUs) < target {
			c.runMetBytes[r.QoSRun] += r.Bytes
		}
	}
}

// meetsSLO checks the RPC against its *original* class's normalised
// target (Figure 22's criterion).
func (c *collector) meetsSLO(r *rpc.RPC) bool {
	k := int(r.QoSRequested)
	if k >= len(c.cfg.SLOs) {
		return true // the scavenger class has no SLO to miss
	}
	target := c.cfg.SLOs[k].perMTU()
	return r.RNL/sim.Duration(r.SizeMTUs) < target
}

func sampleFor[K comparable](m map[K]*stats.Sample, k K, mk func() *stats.Sample) *stats.Sample {
	sm, ok := m[k]
	if !ok {
		sm = mk()
		m[k] = sm
	}
	return sm
}

// newSample builds one RNL series accumulator: exact by default, or a
// bounded log-linear histogram when cfg.MaxRNLSamples is set. The
// histogram replaces the former uniform reservoir: Sum/Mean/N/Min/Max
// stay exact over the whole stream while quantiles carry a deterministic
// ≤1% relative-error bound at any stream length — the reservoir's
// quantile error instead grew with how much it had to subsample. No RNG
// is involved, so bounded runs are deterministic by construction.
func (c *collector) newSample() *stats.Sample {
	if c.cfg.MaxRNLSamples <= 0 {
		return &stats.Sample{}
	}
	return stats.NewHistSample()
}

// sample records probe and outstanding data points.
func (c *collector) sample(s *sim.Simulator, controllers []*core.Controller) {
	now := s.Now().Seconds()
	for _, ps := range c.probes {
		p := 1.0
		if ctl := controllers[ps.p.Src]; ctl != nil {
			p = ctl.AdmitProbability(ps.p.Dst, ps.p.Class)
		}
		ps.admitSer.Append(now, p)
		if ps.hasSample {
			if dt := (s.Now() - ps.lastSample).Seconds(); dt > 0 {
				gbps := float64(ps.bytes) * 8 / dt / 1e9
				ps.thruSer.Append(now, gbps)
			}
		}
		ps.bytes = 0
		ps.lastSample = s.Now()
		ps.hasSample = true
	}
	if c.cfg.TrackOutstanding {
		// One pass over every stack's live (dst, class) entries,
		// accumulating per-destination counts — O(live entries) instead of
		// the former O(hosts² · levels) re-probe of every combination.
		scavenger := qos.Class(c.cfg.levels() - 1)
		n := len(c.stacks)
		if c.outHiBuf == nil {
			c.outHiBuf = make([]int, n)
			c.outLoBuf = make([]int, n)
		}
		for i := range c.outHiBuf {
			c.outHiBuf[i] = 0
			c.outLoBuf[i] = 0
		}
		for _, st := range c.stacks {
			st.ForEachOutstanding(func(dst int, cl qos.Class, cnt int) {
				if dst < 0 || dst >= n {
					return
				}
				if cl >= scavenger {
					c.outLoBuf[dst] += cnt
				} else {
					c.outHiBuf[dst] += cnt
				}
			})
		}
		for dst := 0; dst < n; dst++ {
			c.outHigh.Add(float64(c.outHiBuf[dst]))
			c.outLow.Add(float64(c.outLoBuf[dst]))
		}
	}
}

// traceCSVHeader is the per-RPC CSV trace schema.
const traceCSVHeader = "complete_s,src,dst,priority,requested,ran,downgraded,decision,p_admit,bytes,rnl_us"

// trace writes one per-RPC CSV record to the configured TraceWriter.
func (c *collector) trace(s *sim.Simulator, src int, r *rpc.RPC) {
	w := c.cfg.TraceWriter
	if w == nil || !c.inWindow(r.IssueTime) {
		return
	}
	// A CSVTrace sink owns the header latch, so a retried run reusing the
	// sink still writes the header exactly once; a bare io.Writer falls
	// back to once per collector (i.e. per run).
	switch sink := w.(type) {
	case *CSVTrace:
		if sink.claimHeader() {
			fmt.Fprintln(w, traceCSVHeader)
		}
	default:
		if !c.traceHeader {
			c.traceHeader = true
			fmt.Fprintln(w, traceCSVHeader)
		}
	}
	decision := "admit"
	if r.Downgraded {
		decision = "downgrade"
	}
	fmt.Fprintf(w, "%.9f,%d,%d,%s,%s,%s,%t,%s,%.4f,%d,%.3f\n",
		r.CompleteTime.Seconds(), src, r.Dst, r.Priority, r.QoSRequested,
		r.QoSRun, r.Downgraded, decision, r.PAdmit, r.Bytes, r.RNL.Micros())
}

// addProbeBytes credits completed bytes to matching probes; wired through
// per-stack OnComplete in results assembly.
func (c *collector) addProbeBytes(src, dst int, class qos.Class, bytes int64) {
	for _, ps := range c.probes {
		if ps.p.Src == src && ps.p.Dst == dst && ps.p.Class == class {
			ps.bytes += bytes
		}
	}
}

func (c *collector) results(cfg *SimConfig, net *netsim.Network) *Results {
	res := &Results{
		System:              cfg.System,
		RNLRun:              make(map[Class]LatencySummary),
		RNLPriority:         make(map[Priority]LatencySummary),
		SLOMetBytesFraction: make(map[Priority]float64),
		SLOMetCountFraction: make(map[Priority]float64),
		Issued:              c.issued,
		Completed:           c.completed,
		Downgraded:          c.downgraded,
		Dropped:             c.dropped,
		rnlRun:              c.rnlRun,
	}
	for cl, sm := range c.rnlRun {
		res.RNLRun[cl] = summarizeUS(sm)
	}
	for pr, sm := range c.rnlPrio {
		res.RNLPriority[pr] = summarizeUS(sm)
	}
	for pr, ib := range c.issuedBytes {
		if ib > 0 {
			res.SLOMetBytesFraction[pr] = float64(c.metBytes[pr]) / float64(ib)
		}
	}
	for pr, ic := range c.issuedCount {
		if ic > 0 {
			res.SLOMetCountFraction[pr] = float64(c.metCount[pr]) / float64(ic)
		}
	}
	res.SLOMetRunBytesFraction = make(map[Class]float64)
	for cl, rb := range c.runBytes {
		if rb > 0 {
			res.SLOMetRunBytesFraction[cl] = float64(c.runMetBytes[cl]) / float64(rb)
		}
	}
	res.InputMix = c.inputMix.Mix()
	res.AdmittedMix = c.admittedMix.Mix()

	var offered int64
	for _, g := range c.gens {
		offered += g.Offered.Total()
	}
	offered -= c.offeredBytesAtWarm
	if offered > 0 {
		// RawGoodputRatio keeps the unclamped ratio so accounting errors
		// (completions exceeding offered bytes) stay visible; the reported
		// GoodputFraction clamps to 1 for plotting.
		res.RawGoodputRatio = float64(c.completedPayloadBytes) / float64(offered)
		res.GoodputFraction = res.RawGoodputRatio
		if res.GoodputFraction > 1 {
			res.GoodputFraction = 1
		}
	}
	if span := c.measEnd - c.measStart; span > 0 && net.Hosts() > 0 {
		res.AvgDownlinkUtilization = float64(c.busyAtEnd-c.busyAtWarm) / float64(span) / float64(net.Hosts())
	}

	for _, ps := range c.probes {
		res.Probes = append(res.Probes, ProbeResult{
			Src: ps.p.Src, Dst: ps.p.Dst, Class: ps.p.Class,
			AdmitProbability: Series{Name: "p_admit", T: ps.admitSer.T, V: ps.admitSer.V},
			ThroughputGbps:   Series{Name: "goodput", T: ps.thruSer.T, V: ps.thruSer.V},
		})
	}
	if cfg.TrackOutstanding {
		res.OutstandingHighMed = toPoints(c.outHigh.CDF(200))
		res.OutstandingLow = toPoints(c.outLow.CDF(200))
	}
	for _, st := range c.stacks {
		res.TimedOut += st.Stats.TimedOut
		res.Retried += st.Stats.Retried
		res.Hedged += st.Stats.Hedged
		res.HedgeWins += st.Stats.HedgeWins
		res.FailedRPCs += st.Stats.Failed
		res.CrashLostRPCs += st.Stats.CrashLost
		res.NotIssuedRPCs += st.Stats.NotIssued
	}
	c.degradation(res)
	return res
}

// degradation fills the fault-plan report: goodput availability over the
// coarse bins and per-probe p_admit recovery time after each
// degradation-onset event.
func (c *collector) degradation(res *Results) {
	if len(c.faultBins) > 0 {
		var total int64
		for _, b := range c.faultBins {
			total += b
		}
		if total > 0 {
			mean := float64(total) / float64(len(c.faultBins))
			ok := 0
			for _, b := range c.faultBins {
				if float64(b) >= mean/2 {
					ok++
				}
			}
			res.GoodputAvailability = float64(ok) / float64(len(c.faultBins))
		}
	}
	for _, m := range c.faultMarks {
		res.Faults = append(res.Faults, FaultRecord{
			TimeS:  m.at.Seconds(),
			Event:  m.e.Kind.String(),
			Target: m.e.Target(),
			Rate:   m.e.Rate,
		})
	}
	endS := c.end.Seconds()
	for i := range res.Faults {
		fr := &res.Faults[i]
		if !fr.Onset() {
			continue
		}
		// Recovery is judged up to the next onset event so back-to-back
		// faults don't mask each other's convergence.
		horizon := endS
		for _, later := range res.Faults[i+1:] {
			if later.Onset() {
				horizon = later.TimeS
				break
			}
		}
		for _, pr := range res.Probes {
			fr.PAdmitRecoveryS = append(fr.PAdmitRecoveryS,
				faultRecovery(pr.AdmitProbability, fr.TimeS, horizon, 0.10))
		}
	}
}

func toPoints(ps []stats.Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = Point{p.X, p.Y}
	}
	return out
}
