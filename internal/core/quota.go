package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// QuotaServer is the centralized per-tenant rate-guarantee extension the
// paper leaves as future work (§5.2): "Aequitas provides latency SLOs for
// all admitted RPCs, [but] does not guarantee the amount of traffic
// admitted on a per-application or per-tenant basis … One can augment
// Aequitas to provide application/tenant traffic rate guarantees with a
// centralized RPC quota server."
//
// The server grants each tenant a guaranteed byte rate per QoS class.
// Hosts consult their tenant's local QuotaClient before the probabilistic
// admission draw: traffic within quota bypasses the draw (it is always
// admitted on the requested class, consuming quota), and traffic beyond
// quota falls through to the normal Algorithm 1 path. Quotas are enforced
// with token buckets refilled at the granted rate; the sum of grants per
// class is capped at the class's provisioned capacity so that in-quota
// traffic stays inside the admissible region by construction.
//
// QuotaServer and QuotaClient are safe for concurrent use: Grant/Revoke
// from a control plane can race with InQuota checks on the serving path.
type QuotaServer struct {
	mu sync.Mutex
	// capacity[class] is the total grantable rate per class in
	// bytes/second.
	capacity map[qos.Class]float64
	granted  map[qos.Class]float64
	tenants  map[string]*tenantGrant
}

type tenantGrant struct {
	rates map[qos.Class]float64
}

// NewQuotaServer creates a server with the given per-class grantable
// capacities (bytes/second).
func NewQuotaServer(capacity map[qos.Class]float64) *QuotaServer {
	cp := make(map[qos.Class]float64, len(capacity))
	for k, v := range capacity {
		cp[k] = v
	}
	return &QuotaServer{
		capacity: cp,
		granted:  make(map[qos.Class]float64),
		tenants:  make(map[string]*tenantGrant),
	}
}

// Grant reserves rate bytes/second on class for tenant, on top of any
// existing grant. It fails when the class's remaining capacity is
// insufficient — admission control for quotas themselves.
func (q *QuotaServer) Grant(tenant string, class qos.Class, rate float64) error {
	if rate < 0 {
		return fmt.Errorf("core: negative quota rate")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	capacity, ok := q.capacity[class]
	if !ok {
		return fmt.Errorf("core: class %v has no grantable capacity", class)
	}
	if q.granted[class]+rate > capacity+1e-9 {
		return fmt.Errorf("core: class %v capacity exhausted: %g of %g granted, %g requested",
			class, q.granted[class], capacity, rate)
	}
	t, ok := q.tenants[tenant]
	if !ok {
		t = &tenantGrant{rates: make(map[qos.Class]float64)}
		q.tenants[tenant] = t
	}
	t.rates[class] += rate
	q.granted[class] += rate
	return nil
}

// Revoke releases up to rate bytes/second of tenant's grant on class.
func (q *QuotaServer) Revoke(tenant string, class qos.Class, rate float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tenants[tenant]
	if !ok {
		return
	}
	if rate > t.rates[class] {
		rate = t.rates[class]
	}
	t.rates[class] -= rate
	q.granted[class] -= rate
}

// GrantedRate reports tenant's current grant on class in bytes/second.
func (q *QuotaServer) GrantedRate(tenant string, class qos.Class) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tenants[tenant]; ok {
		return t.rates[class]
	}
	return 0
}

// Remaining reports the ungranted capacity on class.
func (q *QuotaServer) Remaining(class qos.Class) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity[class] - q.granted[class]
}

// Client returns a host-local quota enforcer for tenant, timestamped by
// its own monotonic wall clock. Clients read the granted rate through on
// each refill, so Grant/Revoke take effect immediately.
func (q *QuotaServer) Client(tenant string) *QuotaClient {
	return q.ClientWithClock(tenant, nil)
}

// ClientWithClock is Client with an explicit time source; a nil clock
// defaults to a fresh WallClock. Simulations pass their SimClock so
// bucket refills run on virtual time.
func (q *QuotaServer) ClientWithClock(tenant string, clk Clock) *QuotaClient {
	if clk == nil {
		clk = NewWallClock()
	}
	return &QuotaClient{server: q, tenant: tenant, clock: clk, buckets: make(map[qos.Class]*quotaBucket)}
}

// QuotaClient enforces one tenant's quota at one sending host with
// per-class token buckets. It is safe for concurrent use.
type QuotaClient struct {
	server *QuotaServer
	tenant string
	clock  Clock

	mu      sync.Mutex
	buckets map[qos.Class]*quotaBucket
	// BurstSeconds bounds token accumulation to rate×BurstSeconds
	// (default 0.01 s). Set it before serving begins.
	BurstSeconds float64
}

type quotaBucket struct {
	tokens float64
	last   sim.Time
}

// InQuota reports whether bytes on class fit the tenant's remaining
// tokens now, consuming them if so.
func (c *QuotaClient) InQuota(class qos.Class, bytes int64) bool {
	return c.InQuotaAt(c.clock.Now(), class, bytes)
}

// InQuotaAt is InQuota with an explicit timestamp, for callers that
// manage their own time base. Timestamps must not move backwards.
func (c *QuotaClient) InQuotaAt(now sim.Time, class qos.Class, bytes int64) bool {
	// The server lock (inside GrantedRate) and the client lock nest
	// strictly client-outside-server nowhere: GrantedRate is called
	// before c.mu is taken, so the two locks are never held together.
	rate := c.server.GrantedRate(c.tenant, class)
	if rate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[class]
	if !ok {
		b = &quotaBucket{last: now}
		c.buckets[class] = b
		// A fresh bucket starts with one burst of tokens.
		b.tokens = rate * c.burstSeconds()
	}
	// Refill.
	b.tokens += rate * (now - b.last).Seconds()
	b.last = now
	if max := rate * c.burstSeconds(); b.tokens > max {
		b.tokens = max
	}
	if b.tokens < float64(bytes) {
		return false
	}
	b.tokens -= float64(bytes)
	return true
}

func (c *QuotaClient) burstSeconds() float64 {
	if c.BurstSeconds > 0 {
		return c.BurstSeconds
	}
	return 0.01
}

// QuotaAdmitter layers tenant quotas over a Controller: in-quota RPCs are
// admitted on their requested class unconditionally; out-of-quota RPCs go
// through the normal probabilistic path. It implements rpc.Admitter and
// shares the Controller's clock for bucket refills.
type QuotaAdmitter struct {
	Controller *Controller
	Client     *QuotaClient
	// InQuotaAdmits counts RPCs admitted on the quota bypass; updated
	// atomically.
	InQuotaAdmits int64
}

// Admit implements rpc.Admitter.
func (qa *QuotaAdmitter) Admit(dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	bytes := sizeMTUs * 1436
	now := qa.Controller.clock.Now()
	if requested >= 0 && requested < qa.Controller.lowest &&
		qa.Client.InQuotaAt(now, requested, bytes) {
		atomic.AddInt64(&qa.InQuotaAdmits, 1)
		atomic.AddInt64(&qa.Controller.Stats.Admitted, 1)
		// The flight record marks the quota bypass explicitly: these RPCs
		// were admitted without consulting p_admit.
		qa.Controller.flight.QuotaBypassDecision(now, qa.Controller.flightSrc,
			int32(dst), int8(requested), int32(sizeMTUs))
		return rpc.Decision{Class: requested}
	}
	return qa.Controller.Admit(dst, requested, sizeMTUs)
}

// AdmitProbability implements rpc.ProbabilityReporter by delegating to
// the wrapped controller (in-quota traffic bypasses the draw, but the
// probability that would apply is still the controller's).
func (qa *QuotaAdmitter) AdmitProbability(dst int, class qos.Class) float64 {
	return qa.Controller.AdmitProbability(dst, class)
}

// Observe implements rpc.Admitter. In-quota traffic still contributes
// latency measurements: if the quota was over-provisioned relative to the
// SLO, the controller must learn it.
func (qa *QuotaAdmitter) Observe(dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	qa.Controller.Observe(dst, run, rnl, sizeMTUs)
}
