package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPriorityQoSBijection(t *testing.T) {
	for _, p := range []Priority{PC, NC, BE} {
		if got := MapQoSToPriority(MapPriorityToQoS(p)); got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	if MapPriorityToQoS(PC) != High || MapPriorityToQoS(NC) != Medium || MapPriorityToQoS(BE) != Low {
		t.Error("Phase-1 mapping is not PC→QoSh, NC→QoSm, BE→QoSl")
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]string{
		High.String():        "QoSh",
		Medium.String():      "QoSm",
		Low.String():         "QoSl",
		Class(5).String():    "QoS5",
		PC.String():          "PC",
		NC.String():          "NC",
		BE.String():          "BE",
		Priority(9).String(): "Priority(9)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestWeightsShares(t *testing.T) {
	w := StandardWeights2()
	if got := w.Share(High); got != 0.8 {
		t.Errorf("Share(High) = %v, want 0.8", got)
	}
	if got := w.Share(Class(0)) + w.Share(Class(1)); math.Abs(got-1) > 1e-12 {
		t.Errorf("2-level shares sum to %v", got)
	}
	w3 := StandardWeights3()
	if w3.Levels() != 3 || w3.Lowest() != Low {
		t.Error("StandardWeights3 shape wrong")
	}
	if got := w3.Share(High); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("Share(High) = %v", got)
	}
	if got := w3.Share(Class(99)); got != 0 {
		t.Errorf("out-of-range share = %v", got)
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := StandardWeights3().Validate(); err != nil {
		t.Errorf("standard weights invalid: %v", err)
	}
	bad := []Weights{{}, {0, 1}, {-1}, {1, 4}} // empty, zero, negative, increasing
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", w)
		}
	}
}

func TestMixValidate(t *testing.T) {
	good := Mix{0.6, 0.3, 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	bad := []Mix{{}, {0.5, 0.6}, {1.5, -0.5}, {0.2, 0.2}}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", m)
		}
	}
}

func TestMixCounter(t *testing.T) {
	mc := NewMixCounter(3)
	if got := mc.Mix(); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("empty counter mix = %v", got)
	}
	mc.Add(High, 600)
	mc.Add(Medium, 300)
	mc.Add(Low, 100)
	mc.Add(Class(42), 1e6) // ignored out-of-range
	m := mc.Mix()
	if m.Share(High) != 0.6 || m.Share(Medium) != 0.3 || m.Share(Low) != 0.1 {
		t.Errorf("mix = %v", m)
	}
	if mc.Total() != 1000 {
		t.Errorf("Total = %d", mc.Total())
	}
	if mc.Bytes(Medium) != 300 {
		t.Errorf("Bytes(Medium) = %d", mc.Bytes(Medium))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("counter mix invalid: %v", err)
	}
}

// Property: for any positive non-increasing weights, shares sum to 1 and
// each share is in (0,1].
func TestWeightSharesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		w := make(Weights, len(raw))
		prev := 256.0
		for i, v := range raw {
			x := float64(v%64) + 1
			if x > prev {
				x = prev
			}
			w[i] = x
			prev = x
		}
		if err := w.Validate(); err != nil {
			return false
		}
		var sum float64
		for i := range w {
			sh := w.Share(Class(i))
			if sh <= 0 || sh > 1 {
				return false
			}
			sum += sh
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
