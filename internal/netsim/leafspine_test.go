package netsim

import (
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

func leafSpineNet(t *testing.T, hosts, leaves, spines int, spineRate sim.Rate) *Network {
	t.Helper()
	net, err := New(Config{
		Hosts:       hosts,
		SwitchSched: func() wfq.Scheduler { return wfq.NewFIFO(0) },
		Topology:    Topology{Leaves: leaves, Spines: spines, SpineLinkRate: spineRate},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLeafSpineValidation(t *testing.T) {
	cases := []Topology{
		{Leaves: 1, Spines: 1},
		{Leaves: 2, Spines: 0},
		{Leaves: 3, Spines: 1}, // 4 hosts not divisible by 3 leaves
	}
	for i, topo := range cases {
		_, err := New(Config{Hosts: 4, Topology: topo})
		if err == nil {
			t.Errorf("case %d: invalid topology accepted", i)
		}
	}
}

func TestLeafSpineLocalDelivery(t *testing.T) {
	net := leafSpineNet(t, 4, 2, 2, 0)
	s := sim.New(1)
	c := &collector{}
	net.Host(1).SetReceiver(c)
	// Hosts 0 and 1 share leaf 0: two hops only.
	net.Host(0).Send(s, &Packet{Dst: 1, Size: 1500})
	s.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	// 2 serialisations + 2 propagations = 2×120ns + 2×500ns.
	if want := 2*120*sim.Nanosecond + 2*500*sim.Nanosecond; c.times[0] != want {
		t.Errorf("local delivery at %v, want %v", c.times[0], want)
	}
	if !net.SameLeaf(0, 1) || net.SameLeaf(0, 2) {
		t.Error("SameLeaf wrong")
	}
}

func TestLeafSpineCrossLeafDelivery(t *testing.T) {
	net := leafSpineNet(t, 4, 2, 2, 0)
	s := sim.New(1)
	c := &collector{}
	net.Host(2).SetReceiver(c)
	net.Host(0).Send(s, &Packet{Dst: 2, Size: 1500})
	s.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	// 4 serialisations + 4 propagations.
	if want := 4*120*sim.Nanosecond + 4*500*sim.Nanosecond; c.times[0] != want {
		t.Errorf("cross-leaf delivery at %v, want %v", c.times[0], want)
	}
}

func TestLeafSpineAllPairsDeliver(t *testing.T) {
	net := leafSpineNet(t, 8, 4, 2, 0)
	s := sim.New(1)
	got := map[int]int{}
	for i := 0; i < 8; i++ {
		i := i
		net.Host(i).SetReceiver(HandlerFunc(func(_ *sim.Simulator, p *Packet) { got[i]++ }))
	}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src != dst {
				net.Host(src).Send(s, &Packet{Dst: dst, Size: 200})
			}
		}
	}
	s.Run()
	for i := 0; i < 8; i++ {
		if got[i] != 7 {
			t.Errorf("host %d received %d, want 7", i, got[i])
		}
	}
	if dp, _ := net.TotalDropped(); dp != 0 {
		t.Errorf("dropped %d packets", dp)
	}
}

func TestLeafSpineFlowOrderPreserved(t *testing.T) {
	// All packets of one (src,dst,class) flow must traverse one spine
	// and arrive in order.
	net := leafSpineNet(t, 4, 2, 4, 0)
	s := sim.New(1)
	var seqs []int64
	net.Host(3).SetReceiver(HandlerFunc(func(_ *sim.Simulator, p *Packet) {
		seqs = append(seqs, p.Seq)
	}))
	for i := 0; i < 200; i++ {
		net.Host(0).Send(s, &Packet{Dst: 3, Size: 1500, Seq: int64(i)})
	}
	s.Run()
	if len(seqs) != 200 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("reordered at %d: seq %d", i, q)
		}
	}
}

func TestLeafSpineECMPSpreadsFlows(t *testing.T) {
	// Many flows between leaves should spread across spines.
	net := leafSpineNet(t, 8, 2, 4, 0)
	s := sim.New(1)
	for dst := 4; dst < 8; dst++ {
		net.Host(dst - 4).SetReceiver(HandlerFunc(func(*sim.Simulator, *Packet) {}))
		net.Host(dst).SetReceiver(HandlerFunc(func(*sim.Simulator, *Packet) {}))
	}
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 8; dst++ {
			for c := 0; c < 3; c++ {
				net.Host(src).Send(s, &Packet{Dst: dst, Size: 1500, Class: qos.Class(c)})
			}
		}
	}
	s.Run()
	used := 0
	for _, l := range net.CoreLinks() {
		if l.Stats.TxPackets > 0 {
			used++
		}
	}
	if used < 4 {
		t.Errorf("only %d core links carried traffic; ECMP not spreading", used)
	}
}

func TestLeafSpineCoreCongestion(t *testing.T) {
	// 4 hosts per leaf at full rate toward the other leaf, but only one
	// spine at host-link rate: the fabric core is 4:1 oversubscribed and
	// must be the bottleneck.
	net := leafSpineNet(t, 8, 2, 1, 0)
	s := sim.New(1)
	delivered := 0
	for dst := 4; dst < 8; dst++ {
		net.Host(dst).SetReceiver(HandlerFunc(func(*sim.Simulator, *Packet) { delivered++ }))
	}
	const per = 200
	for src := 0; src < 4; src++ {
		for i := 0; i < per; i++ {
			net.Host(src).Send(s, &Packet{Dst: 4 + src, Size: 1500})
		}
	}
	s.Run()
	if delivered != 4*per {
		t.Fatalf("delivered %d of %d", delivered, 4*per)
	}
	// The single leaf0→spine0 link must serialise all 800 packets:
	// ≥ 800 × 120 ns, whereas the star would finish in ~200 × 120 ns.
	if minTime := sim.Duration(4*per) * 120 * sim.Nanosecond; s.Now() < minTime {
		t.Errorf("finished at %v; core bottleneck not enforced (min %v)", s.Now(), minTime)
	}
	var coreBusy sim.Duration
	for _, l := range net.CoreLinks() {
		coreBusy += l.Stats.BusyTime
	}
	if coreBusy == 0 {
		t.Error("no core link busy time recorded")
	}
}

func TestLeafSpineMinRTT(t *testing.T) {
	net := leafSpineNet(t, 4, 2, 2, 0)
	star, err := New(Config{Hosts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if net.MinRTT(1500) <= star.MinRTT(1500) {
		t.Error("leaf-spine MinRTT should exceed star MinRTT")
	}
}
