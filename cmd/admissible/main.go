// Command admissible is the operator tool the paper describes (§6.1):
// "our open source simulator also serves as a tool for datacenter
// operators to help define the admissible region and set the right SLOs".
// Given WFQ weights and a traffic profile, it prints the per-class
// worst-case delay profile over the QoS-mix, the admissible region
// boundary (no priority inversion), the maximal QoSh-share for a given
// delay bound, and the guaranteed-admission floor.
//
// Example:
//
//	admissible -weights 8,4,1 -mu 0.8 -rho 1.4 -rest 0.67,0.33 -bound 0.05
//
// With -sim the analytic sweep is validated against the packet simulator:
// each sampled QoSh-share runs a full cluster simulation (fanned across a
// worker pool) and the achieved 99.9p RNL per class is printed next to
// the fluid bounds.
//
//	admissible -weights 8,4,1 -sim -simhosts 12 -simdur 30ms -parallel 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"aequitas"
	"aequitas/internal/stats"
)

func main() {
	var (
		weightsStr = flag.String("weights", "8,4,1", "WFQ weights, highest class first")
		mu         = flag.Float64("mu", 0.8, "average load")
		rho        = flag.Float64("rho", 1.4, "burst load (>1)")
		restStr    = flag.String("rest", "", "split of the non-QoSh mix across lower classes (default equal)")
		bound      = flag.Float64("bound", 0, "normalized delay bound to size the QoSh-share for (2-QoS only)")
		step       = flag.Float64("step", 0.05, "sweep step for the profile table")
		simulate   = flag.Bool("sim", false, "validate the sweep with packet simulations")
		simHosts   = flag.Int("simhosts", 12, "cluster size for -sim validation runs")
		simDur     = flag.Duration("simdur", 30*time.Millisecond, "simulated horizon for -sim runs")
		simStep    = flag.Float64("simstep", 0.15, "QoSh-share step for -sim runs (coarser than -step)")
		simSeed    = flag.Int64("simseed", 1, "seed for -sim runs")
		parallel   = flag.Int("parallel", 0, "simulation workers for -sim (0 = GOMAXPROCS)")
	)
	flag.Parse()

	weights, err := parseFloats(*weightsStr)
	if err != nil || len(weights) < 2 {
		log.Fatalf("bad -weights %q", *weightsStr)
	}
	n := len(weights)
	rest := make([]float64, n-1)
	if *restStr == "" {
		for i := range rest {
			rest[i] = 1 / float64(n-1)
		}
	} else {
		rest, err = parseFloats(*restStr)
		if err != nil || len(rest) != n-1 {
			log.Fatalf("-rest needs %d comma-separated shares", n-1)
		}
	}

	fmt.Printf("weights %v, mu=%.2f, rho=%.2f\n\n", weights, *mu, *rho)

	header := []string{"QoSh-share(%)"}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("QoS%d bound", i))
	}
	header = append(header, "admissible")
	tb := stats.NewTable(header...)
	for x := *step; x < 1-1e-9; x += *step {
		mix := make([]float64, n)
		mix[0] = x
		for i, r := range rest {
			mix[i+1] = (1 - x) * r
		}
		d, err := aequitas.WorstCaseDelays(weights, mix, *rho, *mu)
		if err != nil {
			log.Fatal(err)
		}
		adm := true
		row := []any{fmt.Sprintf("%.0f", 100*x)}
		for k := 0; k < n; k++ {
			row = append(row, d[k])
			if k+1 < n && d[k] > d[k+1]+1e-9 {
				adm = false
			}
		}
		row = append(row, adm)
		tb.AddRow(row...)
	}
	tb.Write(os.Stdout)

	boundary, err := aequitas.AdmissibleShare(weights, rest, *rho, *mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadmissible region boundary (no priority inversion): QoSh-share <= %.0f%%\n", 100*boundary)

	if *bound > 0 {
		if n != 2 {
			fmt.Fprintln(os.Stderr, "-bound sizing uses the 2-QoS closed form; pass two weights")
		} else {
			share := aequitas.MaxShareForSLO(weights[0]/weights[1], *rho, *mu, *bound)
			fmt.Printf("largest QoSh-share meeting delay bound %.3f: %.0f%%\n", *bound, 100*share)
		}
	}

	fmt.Println()
	for i := range weights {
		fmt.Printf("guaranteed admitted share on QoS%d: %.1f%% of line rate\n",
			i, 100*aequitas.GuaranteedShare(weights, i, *mu, *rho))
	}

	if *simulate {
		fmt.Println()
		if err := simValidate(simOptions{
			weights: weights, rest: rest,
			mu: *mu, rho: *rho, step: *simStep,
			hosts: *simHosts, dur: *simDur, seed: *simSeed,
			workers: *parallel,
		}); err != nil {
			log.Fatal(err)
		}
	}
}

// simOptions parameterises the -sim validation sweep.
type simOptions struct {
	weights []float64
	rest    []float64
	mu, rho float64
	step    float64
	hosts   int
	dur     time.Duration
	seed    int64
	workers int
}

// simValidate runs one packet simulation per sampled QoSh-share via the
// parallel sweep engine and prints the achieved tail RNL per class, so an
// operator can see where the fluid admissible region holds up against a
// full simulation of queues, congestion control, and retransmission.
func simValidate(so simOptions) error {
	n := len(so.weights)
	var shares []float64
	for x := so.step; x < 1-1e-9; x += so.step {
		shares = append(shares, x)
	}
	cfgs := make([]aequitas.SimConfig, len(shares))
	for i, x := range shares {
		classes := make([]aequitas.TrafficClass, n)
		classes[0] = aequitas.TrafficClass{Priority: aequitas.PC, Share: x, FixedBytes: 32 << 10}
		for k := 1; k < n; k++ {
			classes[k] = aequitas.TrafficClass{
				// Priority k maps to QoS class k under the Phase-1
				// bijection, so arbitrary level counts line up with the
				// weight vector.
				Priority:   aequitas.Priority(k),
				Share:      (1 - x) * so.rest[k-1],
				FixedBytes: 32 << 10,
			}
		}
		cfgs[i] = aequitas.SimConfig{
			System:     aequitas.SystemBaseline,
			Hosts:      so.hosts,
			Seed:       so.seed,
			Duration:   so.dur,
			QoSWeights: append([]float64(nil), so.weights...),
			Traffic: []aequitas.HostTraffic{{
				AvgLoad:   so.mu,
				BurstLoad: so.rho,
				Classes:   classes,
			}},
		}
	}
	results, err := aequitas.RunMany(cfgs, aequitas.ParallelOptions{Workers: so.workers})
	if err != nil {
		return err
	}
	header := []string{"QoSh-share(%)"}
	for i := 0; i < n; i++ {
		header = append(header, fmt.Sprintf("QoS%d 99.9p(us)", i))
	}
	header = append(header, "inversion-free")
	tb := stats.NewTable(header...)
	for i, res := range results {
		row := []any{fmt.Sprintf("%.0f", 100*shares[i])}
		ok := true
		prev := 0.0
		for k := 0; k < n; k++ {
			q := res.RNLQuantileUS(aequitas.Class(k), 0.999)
			if k > 0 && prev > q+1e-9 {
				ok = false
			}
			prev = q
			row = append(row, q)
		}
		row = append(row, ok)
		tb.AddRow(row...)
	}
	tb.Write(os.Stdout)
	fmt.Printf("simulated validation: %d hosts, %v horizon, seed %d; compare the\n", so.hosts, so.dur, so.seed)
	fmt.Println("inversion-free column against the analytic admissible boundary above")
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
