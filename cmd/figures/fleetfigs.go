package main

import (
	"fmt"
	"os"

	"aequitas/internal/fleet"
	"aequitas/internal/qos"
	"aequitas/internal/stats"
)

func init() {
	register("3", "production congestion episode: load surge vs latency tail", figOverloadEpisode)
	register("4", "priority/QoS misalignment under coarse marking", figMisalignment)
	register("5", "race to the top: QoS distribution drift over time", figRaceToTop)
	register("24", "Phase 1 fleet deployment: misalignment and 99p RNL change", figProduction)
}

func figOverloadEpisode(options) error {
	load, lat := fleet.OverloadEpisode(24, 8)
	tb := stats.NewTable("t", "load(x)", "latency(x)")
	for i := range load {
		tb.AddRow(i, load[i], lat[i])
	}
	tb.Write(os.Stdout)
	fmt.Println("an 8x load surge drives a superlinear latency-tail response")
	return nil
}

func figMisalignment(o options) error {
	c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 200, Seed: o.seed, UpgradeBias: 0.35})
	if err != nil {
		return err
	}
	a := c.CoarseAlignment()
	tb := stats.NewTable("priority", "on QoSh(%)", "on QoSm(%)", "on QoSl(%)", "misaligned(%)")
	for p := 0; p < 3; p++ {
		pr := qos.Priority(p)
		tb.AddRow(pr.String(), 100*a[p][0], 100*a[p][1], 100*a[p][2], 100*a.Misalignment(pr))
	}
	tb.Write(os.Stdout)
	fmt.Println("(paper: 17.3% of PC traffic off QoSh; 54.5% of BE traffic above QoSl)")
	return nil
}

func figRaceToTop(o options) error {
	c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 200, Seed: o.seed, UpgradeBias: 0.1})
	if err != nil {
		return err
	}
	traj := c.RaceToTheTop(20, 0.25, 0.4)
	tb := stats.NewTable("step", "QoSh(%)", "QoSm(%)", "QoSl(%)")
	for i := 0; i < len(traj); i += 2 {
		tb.AddRow(i, 100*traj[i][0], 100*traj[i][1], 100*traj[i][2])
	}
	tb.Write(os.Stdout)
	fmt.Println("overload-driven upgrades steadily shift traffic into higher classes")
	return nil
}

func figProduction(o options) error {
	// Fifty clusters, as the paper samples. Class latency profile: lower
	// classes are modestly slower at the 99th percentile under typical
	// (not pathological) load, which is the regime the fleetwide numbers
	// average over.
	classLatency := [3]float64{1, 1.25, 1.8}
	const clusters = 50
	// Model each cluster on the worker pool, writing only to index-i
	// cells, then accumulate in order so the Samples are deterministic.
	var before, after, deltas [clusters]float64
	errs := make([]error, clusters)
	parallelFor(o.workers, clusters, func(i int) {
		c, err := fleet.NewCluster(fleet.ClusterConfig{Apps: 80, Seed: o.seed*1000 + int64(i), UpgradeBias: 0.35})
		if err != nil {
			errs[i] = err
			return
		}
		shares := c.PriorityShares()
		before[i] = 100 * c.CoarseAlignment().TotalMisalignment(shares)
		after[i] = 100 * c.Phase1Alignment().TotalMisalignment(shares)
		deltas[i] = 100 * c.RNLImprovement(classLatency)
	})
	var beforeMis, afterMis stats.Sample
	var impr stats.Sample
	for i := 0; i < clusters; i++ {
		if errs[i] != nil {
			return errs[i]
		}
		beforeMis.Add(before[i])
		afterMis.Add(after[i])
		impr.Add(deltas[i])
	}
	tb := stats.NewTable("metric", "before", "after Phase 1")
	tb.AddRow("mean total misalignment (%)", beforeMis.Mean(), afterMis.Mean())
	tb.AddRow("max total misalignment (%)", beforeMis.Max(), afterMis.Max())
	tb.Write(os.Stdout)
	fmt.Printf("99p-RNL change for PC traffic across 50 clusters: mean %.1f%%, best %.1f%%, worst %.1f%%\n",
		impr.Mean(), impr.Min(), impr.Max())
	fmt.Println("(paper: misalignment from up to 80% to ~0; up to 53% RNL reduction, ~10% mean)")
	return nil
}
