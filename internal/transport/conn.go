package transport

import (
	"fmt"
	"sort"

	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// Message is a transport-level message: the payload of one RPC direction.
type Message struct {
	ID    uint64
	Dst   int
	Class qos.Class
	Bytes int64
	// Deadline propagates to packets for deadline-aware baselines; zero
	// means none.
	Deadline sim.Time
	// OnComplete fires when the last payload byte has been acknowledged.
	OnComplete func(s *sim.Simulator, m *Message)
	// OnFail fires when the connection carrying the message is torn down
	// before completion (the peer crashed); the message will never
	// complete. At most one of OnComplete/OnFail fires.
	OnFail func(s *sim.Simulator, m *Message)

	// SubmitTime is when the message was handed to the transport: the t0
	// of the RPC network latency definition (Appendix A).
	SubmitTime sim.Time

	start, end int64 // byte range within the connection stream
	// enqTraced marks that the first-packet enqueue event was emitted, so
	// an RTO rewind does not produce a duplicate.
	enqTraced bool
}

// Config parameterises an Endpoint.
type Config struct {
	// NewCC builds one congestion controller per connection. Required.
	NewCC func() CC
	// RTOMin floors the retransmission timeout (default 100 µs).
	RTOMin sim.Duration
	// InitialRTT seeds the smoothed RTT estimate before the first sample
	// (default 10 µs).
	InitialRTT sim.Duration
	// Trace, when set, receives first-packet enqueue lifecycle events.
	Trace *obs.Tracer
	// Attr, when set, receives latency-attribution instrumentation:
	// first-enqueue and tail-emission stamps, pacing stall durations, and
	// tail-packet marking for per-hop residency accounting. nil disables
	// it at zero cost on the send path.
	Attr *obs.Attributor
}

func (c *Config) applyDefaults() {
	if c.RTOMin == 0 {
		c.RTOMin = 100 * sim.Microsecond
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 10 * sim.Microsecond
	}
}

// Stats counts endpoint-wide transport activity.
type Stats struct {
	MsgsSent      int64
	MsgsCompleted int64
	BytesAcked    int64
	Retransmits   int64
	RTOFires      int64
}

// Endpoint is one host's transport stack: it demultiplexes incoming
// packets and maintains one connection per (peer, QoS class), mirroring
// the paper's prototype where an RPC channel maps to per-QoS sockets
// (§6.11).
type Endpoint struct {
	host  *netsim.Host
	net   *netsim.Network
	cfg   Config
	conns map[connKey]*conn
	recvs map[connKey]*rcvState
	Stats Stats

	// down marks a crashed endpoint: Send and HandlePacket become no-ops
	// until Restart. gen is the stream epoch stamped on every outgoing
	// data packet; it bumps whenever connection state is discarded
	// (Crash, ResetPeer) so stale packets and acks from before the
	// teardown cannot corrupt rebuilt streams. Both stay zero when no
	// faults are injected.
	down bool
	gen  uint32
}

type connKey struct {
	peer  int
	class qos.Class
}

// NewEndpoint attaches a transport to host, registering it as the host's
// packet receiver.
func NewEndpoint(net *netsim.Network, host *netsim.Host, cfg Config) *Endpoint {
	cfg.applyDefaults()
	if cfg.NewCC == nil {
		panic("transport: Config.NewCC is required")
	}
	e := &Endpoint{
		host:  host,
		net:   net,
		cfg:   cfg,
		conns: make(map[connKey]*conn),
		recvs: make(map[connKey]*rcvState),
	}
	host.SetReceiver(e)
	return e
}

// Host returns the attached host.
func (e *Endpoint) Host() *netsim.Host { return e.host }

// Send queues m for transmission. The message's SubmitTime is stamped
// here: it is the t0 of RNL.
func (e *Endpoint) Send(s *sim.Simulator, m *Message) {
	if m.Bytes <= 0 {
		panic(fmt.Sprintf("transport: message %d has %d bytes", m.ID, m.Bytes))
	}
	if m.Dst == e.host.ID {
		panic("transport: message to self")
	}
	if e.down {
		// Crashed host: the message vanishes. The RPC stack is down too
		// and does not issue, so this is defensive.
		return
	}
	m.SubmitTime = s.Now()
	c := e.conn(m.Dst, m.Class)
	m.start = c.writeEnd
	m.end = m.start + m.Bytes
	c.writeEnd = m.end
	c.pushMsg(m)
	e.Stats.MsgsSent++
	c.trySend(s)
}

// QueuedBytes reports unacknowledged bytes buffered toward peer on class,
// including bytes not yet transmitted (the host-side queuing that RNL
// captures).
func (e *Endpoint) QueuedBytes(peer int, class qos.Class) int64 {
	c, ok := e.conns[connKey{peer, class}]
	if !ok {
		return 0
	}
	return c.writeEnd - c.cumAck
}

func (e *Endpoint) conn(peer int, class qos.Class) *conn {
	k := connKey{peer, class}
	c, ok := e.conns[k]
	if !ok {
		c = &conn{
			ep:    e,
			peer:  peer,
			class: class,
			cc:    e.cfg.NewCC(),
			srtt:  e.cfg.InitialRTT,
			gen:   e.gen,
		}
		c.rtoEv.c = c
		c.paceEv.c = c
		e.conns[k] = c
	}
	return c
}

// Crash simulates this host failing: all connection and receive state is
// discarded without callbacks (in-flight messages are simply lost — the
// crashed host's RPC layer clears its own accounting) and the endpoint
// goes down, ignoring packets and sends until Restart.
func (e *Endpoint) Crash(s *sim.Simulator) {
	e.down = true
	e.gen++
	for _, c := range e.conns {
		c.teardown()
	}
	clear(e.conns)
	clear(e.recvs)
}

// Restart brings a crashed endpoint back with empty transport state.
func (e *Endpoint) Restart(s *sim.Simulator) { e.down = false }

// Down reports whether the endpoint is crashed.
func (e *Endpoint) Down() bool { return e.down }

// ResetPeer discards connection and receive state toward peer (whose
// host crashed): timers are cancelled, the stream epoch bumps so stale
// acks are ignored, and each incomplete outgoing message's OnFail fires
// so the RPC layer can retry or abandon it. Connections are visited in
// class order, keeping callback order deterministic.
func (e *Endpoint) ResetPeer(s *sim.Simulator, peer int) {
	e.gen++
	var keys []connKey
	for k := range e.conns {
		if k.peer == peer {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].class < keys[j].class })
	var failed []*Message
	for _, k := range keys {
		c := e.conns[k]
		failed = append(failed, c.pending()...)
		c.teardown()
		delete(e.conns, k)
	}
	for k := range e.recvs {
		if k.peer == peer {
			delete(e.recvs, k)
		}
	}
	for _, m := range failed {
		if m.OnFail != nil {
			m.OnFail(s, m)
		}
	}
}

// ForEachConn visits every sender-side connection in deterministic
// (peer, class) order with its current congestion window (packets) and
// smoothed RTT.
func (e *Endpoint) ForEachConn(f func(peer int, class qos.Class, cwndPkts float64, srtt sim.Duration)) {
	keys := make([]connKey, 0, len(e.conns))
	for k := range e.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].peer != keys[j].peer {
			return keys[i].peer < keys[j].peer
		}
		return keys[i].class < keys[j].class
	})
	for _, k := range keys {
		c := e.conns[k]
		f(k.peer, k.class, c.cc.Window(), c.srtt)
	}
}

// MetricsSampler returns an obs.Sampler reporting cwnd (packets) and
// smoothed RTT (µs) for every live connection of this endpoint.
func (e *Endpoint) MetricsSampler() obs.Sampler {
	host := e.host.ID
	return func(now sim.Time, emit func(string, float64)) {
		e.ForEachConn(func(peer int, class qos.Class, cwnd float64, srtt sim.Duration) {
			key := fmt.Sprintf("h%d.d%d.q%d", host, peer, int(class))
			emit("cwnd."+key, cwnd)
			emit("srtt_us."+key, srtt.Micros())
		})
	}
}

// HandlePacket implements netsim.Handler. The endpoint is the terminal
// consumer of every packet delivered to it, so the packet is recycled into
// the network's pool once processed; nothing on the receive path may retain
// it past this call.
func (e *Endpoint) HandlePacket(s *sim.Simulator, p *Packet) {
	if e.down {
		e.net.FreePacket(p)
		return
	}
	if p.Ack {
		if c, ok := e.conns[connKey{p.Src, p.Class}]; ok {
			c.onAck(s, p)
		}
	} else {
		e.onData(s, p)
	}
	e.net.FreePacket(p)
}

// Packet aliases the netsim packet type for the package's public surface.
type Packet = netsim.Packet

// conn is the sender side of one (peer, class) byte stream.
type conn struct {
	ep    *Endpoint
	peer  int
	class qos.Class
	cc    CC

	// msgs[msgHead:] is the FIFO of incomplete messages by stream offset.
	// Completion advances msgHead instead of reslicing, and pushMsg
	// compacts the spent prefix in place, so the backing array is reused
	// rather than reallocated every time the slice front wraps past its
	// capacity.
	msgs     []*Message
	msgHead  int
	writeEnd int64 // total bytes queued to the stream
	cumAck   int64 // cumulative acknowledged bytes
	nextSend int64 // next byte offset to (re)transmit

	srtt    sim.Duration
	rttvar  sim.Duration
	backoff int // RTO exponential backoff shift
	// gen is the stream epoch this connection was created under; stamped
	// on every outgoing data packet and compared on incoming acks, so
	// acks predating a crash-induced teardown cannot complete messages
	// on a rebuilt connection.
	gen uint32

	rtoTimer    sim.Handle
	paceTimer   sim.Handle
	nextAllowed sim.Time // pacing gate for sub-packet windows
	// rtoAt is the logical retransmission deadline (0 = disarmed). Acks
	// move it forward without touching the scheduled timer; when the timer
	// fires early it re-arms itself at rtoAt. This keeps RTO maintenance to
	// one event-queue node per connection instead of a cancel+insert per
	// ack, which would bloat the event heap with dead nodes.
	rtoAt sim.Time

	// stalled/stallFrom track an open pacing-gate stall for latency
	// attribution; maintained only when cfg.Attr is set.
	stalled   bool
	stallFrom sim.Time

	// rtoEv/paceEv are the connection's reusable timer events, so arming a
	// timer schedules no closure. Each timer has at most one pending
	// instance (armRTO and schedulePace check Pending first).
	rtoEv  rtoEvent
	paceEv paceEvent
}

// rtoEvent and paceEvent adapt the connection's timer callbacks to
// sim.Event without per-arm closure allocations.
type rtoEvent struct{ c *conn }

func (e *rtoEvent) Run(s *sim.Simulator) { e.c.onRTO(s) }

type paceEvent struct{ c *conn }

func (e *paceEvent) Run(s *sim.Simulator) { e.c.trySend(s) }

// pending returns the incomplete-message FIFO.
func (c *conn) pending() []*Message { return c.msgs[c.msgHead:] }

// pushMsg appends m, first compacting the spent prefix when the backing
// array is full so steady-state message turnover reuses it.
func (c *conn) pushMsg(m *Message) {
	if len(c.msgs) == cap(c.msgs) && c.msgHead > 0 {
		n := copy(c.msgs, c.msgs[c.msgHead:])
		for i := n; i < len(c.msgs); i++ {
			c.msgs[i] = nil
		}
		c.msgs = c.msgs[:n]
		c.msgHead = 0
	}
	c.msgs = append(c.msgs, m)
}

// windowBytes converts the CC window to bytes.
func (c *conn) windowBytes() int64 {
	w := c.cc.Window()
	if w < 0 {
		w = 0
	}
	return int64(w * float64(netsim.MaxPayload))
}

func (c *conn) inflight() int64 { return c.nextSend - c.cumAck }

// trySend transmits as much of the stream as the window and pacing gate
// permit.
func (c *conn) trySend(s *sim.Simulator) {
	for c.nextSend < c.writeEnd {
		inflight := c.inflight()
		wnd := c.windowBytes()
		if inflight > 0 && inflight >= wnd {
			return // window-limited; acks will restart us
		}
		if inflight == 0 && wnd < int64(netsim.MaxPayload) {
			// Sub-packet window: one packet at a time, paced.
			if s.Now() < c.nextAllowed {
				if c.ep.cfg.Attr != nil && !c.stalled {
					c.stalled = true
					c.stallFrom = s.Now()
				}
				c.schedulePace(s)
				return
			}
		}
		c.emit(s)
	}
}

// emit sends one packet starting at nextSend.
func (c *conn) emit(s *sim.Simulator) {
	payload := int64(netsim.MaxPayload)
	// Do not run past the end of the stream.
	if rem := c.writeEnd - c.nextSend; rem < payload {
		payload = rem
	}
	// Do not cross a message boundary, so that per-packet urgency and
	// deadline metadata are well defined.
	m := c.messageAt(c.nextSend)
	if m != nil {
		if rem := m.end - c.nextSend; rem < payload {
			payload = rem
		}
	}
	p := c.ep.net.AllocPacket()
	p.Dst = c.peer
	p.Class = c.class
	p.Size = int(payload) + netsim.HeaderBytes
	p.Seq = c.nextSend
	p.Payload = int(payload)
	p.SentAt = s.Now()
	p.Gen = c.gen
	if m != nil {
		p.MsgID = m.ID
		p.Urg = m.end - c.nextSend // remaining bytes: SRPT urgency
		p.Deadline = m.Deadline
		if c.ep.cfg.Trace != nil && !m.enqTraced {
			m.enqTraced = true
			c.ep.cfg.Trace.Enqueue(s.Now(), m.ID, c.ep.host.ID, c.peer, int(c.class), m.Bytes)
		}
		if at := c.ep.cfg.Attr; at != nil {
			// Close an open pacing stall before the first-enqueue stamp, so
			// a stall ending at the message's first packet lands in the
			// sender-side pacing bucket.
			if c.stalled {
				c.stalled = false
				at.PaceStall(c.ep.host.ID, m.ID, s.Now()-c.stallFrom)
			}
			at.FirstEnqueue(s.Now(), c.ep.host.ID, m.ID)
			if c.nextSend+payload == m.end {
				p.Tail = true
				at.TailEmit(s.Now(), c.ep.host.ID, m.ID)
			}
		}
	}
	c.nextSend += payload
	// Pacing gate for the next packet when the window is sub-packet.
	if w := c.cc.Window(); w < 1 && w > 0 {
		gap := sim.Duration(float64(c.srtt) / w)
		c.nextAllowed = s.Now() + gap
	}
	c.ep.host.Send(s, p)
	c.armRTO(s)
}

// messageAt returns the incomplete message covering stream offset off.
func (c *conn) messageAt(off int64) *Message {
	for _, m := range c.pending() {
		if off < m.end {
			if off >= m.start {
				return m
			}
			return nil
		}
	}
	return nil
}

func (c *conn) schedulePace(s *sim.Simulator) {
	if c.paceTimer.Pending() {
		return
	}
	delay := c.nextAllowed - s.Now()
	if delay < 0 {
		delay = 0
	}
	c.paceTimer = s.After(delay, &c.paceEv)
}

// teardown cancels the connection's timers; the caller discards it. No
// message callbacks fire here — Crash loses messages silently, ResetPeer
// collects them for OnFail.
func (c *conn) teardown() {
	c.rtoTimer.Cancel()
	c.paceTimer.Cancel()
	c.rtoAt = 0
	c.msgs = nil
	c.msgHead = 0
}

// onAck processes a cumulative acknowledgement.
func (c *conn) onAck(s *sim.Simulator, p *Packet) {
	if p.Gen != c.gen {
		return // ack for a pre-crash stream epoch
	}
	rtt := s.Now() - p.SentAt
	c.updateRTT(rtt)
	if p.AckSeq <= c.cumAck {
		// Duplicate or stale; the RTO handles actual loss.
		c.cc.OnAck(s.Now(), rtt, 0)
		return
	}
	delta := p.AckSeq - c.cumAck
	c.cumAck = p.AckSeq
	if c.nextSend < c.cumAck {
		// Retransmission rewound nextSend below data the receiver
		// already has.
		c.nextSend = c.cumAck
	}
	c.ep.Stats.BytesAcked += delta
	c.backoff = 0
	ackedPkts := int((delta + netsim.MaxPayload - 1) / netsim.MaxPayload)
	c.cc.OnAck(s.Now(), rtt, ackedPkts)

	// Complete messages fully covered by the cumulative ack.
	for c.msgHead < len(c.msgs) && c.msgs[c.msgHead].end <= c.cumAck {
		m := c.msgs[c.msgHead]
		c.msgs[c.msgHead] = nil
		c.msgHead++
		c.ep.Stats.MsgsCompleted++
		if m.OnComplete != nil {
			m.OnComplete(s, m)
		}
	}
	if c.msgHead == len(c.msgs) {
		// Queue drained: rewind so the next pushMsg appends at the front
		// of the backing array.
		c.msgs = c.msgs[:0]
		c.msgHead = 0
	}

	if c.inflight() > 0 {
		// Push the logical deadline out; the pending timer re-arms itself
		// on its next (now spurious) fire.
		c.rtoAt = s.Now() + c.rto()
	} else {
		c.rtoAt = 0
	}
	c.trySend(s)
}

func (c *conn) updateRTT(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	if c.rttvar == 0 {
		c.rttvar = rtt / 2
		c.srtt = rtt
		return
	}
	diff := c.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (3*c.rttvar + diff) / 4
	c.srtt = (7*c.srtt + rtt) / 8
}

func (c *conn) rto() sim.Duration {
	d := c.srtt + 4*c.rttvar
	if d < c.ep.cfg.RTOMin {
		d = c.ep.cfg.RTOMin
	}
	shift := c.backoff
	if shift > 10 {
		shift = 10
	}
	return d << shift
}

func (c *conn) armRTO(s *sim.Simulator) {
	if c.rtoAt != 0 {
		return // already armed
	}
	c.rtoAt = s.Now() + c.rto()
	if !c.rtoTimer.Pending() {
		c.rtoTimer = s.At(c.rtoAt, &c.rtoEv)
	}
}

// onRTO implements go-back-N recovery: rewind to the cumulative ack and
// retransmit. Fires at the scheduled timer time, which may be earlier than
// the logical deadline rtoAt when acks extended it meanwhile; in that case
// the timer re-arms itself and nothing times out.
func (c *conn) onRTO(s *sim.Simulator) {
	if c.rtoAt == 0 || c.inflight() <= 0 {
		// Disarmed, or nothing outstanding: drop the logical deadline too,
		// so the next emit arms a fresh timer.
		c.rtoAt = 0
		return
	}
	if s.Now() < c.rtoAt {
		c.rtoTimer = s.At(c.rtoAt, &c.rtoEv)
		return
	}
	c.rtoAt = 0
	c.ep.Stats.RTOFires++
	c.ep.Stats.Retransmits++
	c.backoff++
	c.cc.OnRetransmit(s.Now())
	c.nextSend = c.cumAck
	c.armRTO(s)
	c.trySend(s)
}

// rcvState is the receiver side of one (peer, class) stream.
type rcvState struct {
	cumRecv int64
	ooo     map[int64]int // seq -> payload bytes received out of order
	// gen is the sender's stream epoch this state tracks. A packet with
	// a newer epoch means the sender rebuilt the stream after a crash:
	// restart from zero. Older epochs are stale and dropped.
	gen uint32
}

// onData handles an incoming data packet: advance the cumulative counter,
// buffer out-of-order segments, and acknowledge.
func (e *Endpoint) onData(s *sim.Simulator, p *Packet) {
	k := connKey{p.Src, p.Class}
	r, ok := e.recvs[k]
	if !ok {
		r = &rcvState{ooo: make(map[int64]int), gen: p.Gen}
		e.recvs[k] = r
	}
	if p.Gen != r.gen {
		if p.Gen < r.gen {
			return // stale pre-crash packet; no ack
		}
		// The sender rebuilt its stream: restart reassembly from zero.
		r.gen = p.Gen
		r.cumRecv = 0
		clear(r.ooo)
	}
	switch {
	case p.Seq == r.cumRecv:
		r.cumRecv += int64(p.Payload)
		// Drain any contiguous out-of-order segments.
		for {
			n, ok := r.ooo[r.cumRecv]
			if !ok {
				break
			}
			delete(r.ooo, r.cumRecv)
			r.cumRecv += int64(n)
		}
	case p.Seq > r.cumRecv:
		r.ooo[p.Seq] = p.Payload
	default:
		// Duplicate of already-received data; re-ack.
	}
	ack := e.net.AllocPacket()
	ack.Dst = p.Src
	ack.Class = p.Class
	ack.Size = netsim.AckBytes
	ack.Ack = true
	ack.AckSeq = r.cumRecv
	ack.SentAt = p.SentAt // echo for RTT measurement
	ack.MsgID = p.MsgID
	ack.Gen = p.Gen // echo the epoch so the sender can reject stale acks
	e.host.Send(s, ack)
}
