package rpc

import (
	"testing"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
	"aequitas/internal/wfq"
)

func setup(t *testing.T, hosts int, admitters []Admitter) (*netsim.Network, []*Stack) {
	t.Helper()
	net, err := netsim.New(netsim.Config{
		Hosts: hosts,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stacks := make([]*Stack, hosts)
	for i := 0; i < hosts; i++ {
		ep := transport.NewEndpoint(net, net.Host(i), transport.Config{
			NewCC: func() transport.CC { return transport.SwiftDefaults(10 * sim.Microsecond) },
		})
		var a Admitter
		if admitters != nil {
			a = admitters[i]
		}
		stacks[i] = NewStack(ep, a)
	}
	return net, stacks
}

func TestIssueAndRNLMeasurement(t *testing.T) {
	_, stacks := setup(t, 2, nil)
	s := sim.New(1)
	var got *RPC
	stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { got = r }
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 32 * 1024})
	s.Run()
	if got == nil {
		t.Fatal("RPC did not complete")
	}
	if got.QoSRequested != qos.High || got.QoSRun != qos.High {
		t.Errorf("QoS mapping: requested %v run %v", got.QoSRequested, got.QoSRun)
	}
	if got.Downgraded {
		t.Error("PassThrough downgraded an RPC")
	}
	if got.RNL <= 0 {
		t.Errorf("RNL = %v", got.RNL)
	}
	// RNL must be at least the line-rate serialisation time of the
	// payload and no more than the whole run.
	if min := (100 * sim.Gbps).TxTime(32 * 1024); got.RNL < min {
		t.Errorf("RNL %v below line-rate bound %v", got.RNL, min)
	}
	if got.CompleteTime-got.IssueTime != got.RNL {
		t.Errorf("RNL %v != complete-issue %v", got.RNL, got.CompleteTime-got.IssueTime)
	}
	if got.SizeMTUs != netsim.MTUsFor(32*1024) {
		t.Errorf("SizeMTUs = %d", got.SizeMTUs)
	}
}

func TestPriorityMapping(t *testing.T) {
	_, stacks := setup(t, 2, nil)
	s := sim.New(1)
	classes := map[qos.Priority]qos.Class{}
	stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { classes[r.Priority] = r.QoSRun }
	for _, p := range []qos.Priority{qos.PC, qos.NC, qos.BE} {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: p, Bytes: 1000})
	}
	s.Run()
	want := map[qos.Priority]qos.Class{qos.PC: qos.High, qos.NC: qos.Medium, qos.BE: qos.Low}
	for p, c := range want {
		if classes[p] != c {
			t.Errorf("%v ran on %v, want %v", p, classes[p], c)
		}
	}
}

// downgradeAll demotes every RPC, for testing stack bookkeeping.
type downgradeAll struct{ observed int }

func (d *downgradeAll) Admit(_ int, _ qos.Class, _ int64) Decision {
	return Decision{Class: qos.Low, Downgraded: true}
}
func (d *downgradeAll) Observe(_ int, _ qos.Class, _ sim.Duration, _ int64) {
	d.observed++
}

func TestDowngradeBookkeeping(t *testing.T) {
	adm := &downgradeAll{}
	_, stacks := setup(t, 2, []Admitter{adm, PassThrough{}})
	s := sim.New(1)
	var completed []*RPC
	stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { completed = append(completed, r) }
	for i := 0; i < 5; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 5000})
	}
	s.Run()
	if len(completed) != 5 {
		t.Fatalf("completed %d", len(completed))
	}
	for _, r := range completed {
		if !r.Downgraded || r.QoSRun != qos.Low {
			t.Errorf("rpc %d: downgraded=%v class=%v", r.ID, r.Downgraded, r.QoSRun)
		}
	}
	if stacks[0].Stats.Downgraded != 5 {
		t.Errorf("Stats.Downgraded = %d", stacks[0].Stats.Downgraded)
	}
	if adm.observed != 5 {
		t.Errorf("admitter observed %d completions", adm.observed)
	}
}

// dropAll rejects every RPC.
type dropAll struct{}

func (dropAll) Admit(int, qos.Class, int64) Decision        { return Decision{Drop: true} }
func (dropAll) Observe(int, qos.Class, sim.Duration, int64) {}

func TestDropDecision(t *testing.T) {
	_, stacks := setup(t, 2, []Admitter{dropAll{}, PassThrough{}})
	s := sim.New(1)
	completed := 0
	stacks[0].OnComplete = func(*sim.Simulator, *RPC) { completed++ }
	for i := 0; i < 3; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 1000})
	}
	s.Run()
	if completed != 0 {
		t.Errorf("dropped RPCs completed: %d", completed)
	}
	if stacks[0].Stats.Dropped != 3 {
		t.Errorf("Stats.Dropped = %d", stacks[0].Stats.Dropped)
	}
	if stacks[0].Outstanding(1) != 0 {
		t.Errorf("dropped RPCs counted outstanding: %d", stacks[0].Outstanding(1))
	}
}

func TestOutstandingTracking(t *testing.T) {
	_, stacks := setup(t, 3, nil)
	s := sim.New(1)
	for i := 0; i < 4; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 64 * 1024})
	}
	stacks[0].Issue(s, &RPC{Dst: 2, Priority: qos.PC, Bytes: 64 * 1024})
	if got := stacks[0].Outstanding(1); got != 4 {
		t.Errorf("Outstanding(1) = %d, want 4", got)
	}
	if got := stacks[0].Outstanding(2); got != 1 {
		t.Errorf("Outstanding(2) = %d, want 1", got)
	}
	s.Run()
	if got := stacks[0].Outstanding(1); got != 0 {
		t.Errorf("Outstanding(1) after drain = %d", got)
	}
	if stacks[0].Stats.Completed != 5 {
		t.Errorf("Completed = %d", stacks[0].Stats.Completed)
	}
}

func TestAutoIDAssignment(t *testing.T) {
	_, stacks := setup(t, 2, nil)
	s := sim.New(1)
	ids := map[uint64]bool{}
	stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { ids[r.ID] = true }
	for i := 0; i < 10; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 100})
	}
	s.Run()
	if len(ids) != 10 {
		t.Errorf("expected 10 unique ids, got %d", len(ids))
	}
	if ids[0] {
		t.Error("an RPC kept id 0")
	}
}

// Larger RPCs must observe proportionally larger RNL under a saturated
// link (sanity of the per-MTU normalisation story).
func TestRNLGrowsWithSize(t *testing.T) {
	_, stacks := setup(t, 2, nil)
	s := sim.New(1)
	rnls := map[int64]sim.Duration{}
	stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { rnls[r.Bytes] = r.RNL }
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 8 * 1024})
	s.Run()
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 256 * 1024})
	s.Run()
	if rnls[256*1024] <= rnls[8*1024] {
		t.Errorf("RNL(256K)=%v not larger than RNL(8K)=%v", rnls[256*1024], rnls[8*1024])
	}
}
