package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aequitas"
	"aequitas/internal/core"
	"aequitas/internal/sim"
)

func doReq(t *testing.T, h http.Handler, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/rpc", nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMiddlewareConfigurableReject(t *testing.T) {
	ctl, clk := newManualController(t)
	clk.SetDraw(2) // force downgrades
	a, err := New(Config{
		Controller:       ctl,
		RejectDowngraded: true,
		RejectStatus:     http.StatusTooManyRequests,
		RejectBody:       "slow down",
		RetryAfter:       7 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran for a rejected request")
	}))
	rec := doReq(t, h, map[string]string{HeaderClass: "high"})
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("code = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "slow down") {
		t.Errorf("body = %q", rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q", got)
	}
}

// TestMiddlewareRetryAfterFromIncrementWindow checks the default hint:
// the class's additive-increase window, rounded up to whole seconds —
// an SLO of 3s at the 50th percentile gives a 6s window.
func TestMiddlewareRetryAfterFromIncrementWindow(t *testing.T) {
	clk := &core.ManualClock{}
	clk.SetNow(sim.Time(1))
	clk.SetDraw(2)
	ctl, err := aequitas.NewControllerWithClock(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{{Target: 3 * time.Second, Percentile: 50}},
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Controller: ctl, RejectDowngraded: true})
	if err != nil {
		t.Fatal(err)
	}
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := doReq(t, h, map[string]string{HeaderClass: "high"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want 6", got)
	}
}

func TestMiddlewareDeadlineHeader(t *testing.T) {
	ctl, clk := newManualController(t)
	a, err := New(Config{Controller: ctl, Deadline: &DeadlineConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		clk.SetNow(clk.Now() + sim.Time(50*sim.Millisecond))
	}))
	// Train the floor to ~50ms.
	if rec := doReq(t, h, map[string]string{HeaderClass: "high"}); rec.Code != http.StatusOK {
		t.Fatalf("training request: %d", rec.Code)
	}
	// A 10ms budget cannot cover the 50ms floor.
	rec := doReq(t, h, map[string]string{HeaderClass: "high", HeaderDeadline: "10ms"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("code = %d", rec.Code)
	}
	if rec.Header().Get(HeaderExpired) != "1" {
		t.Error("expired response not marked")
	}
	if !strings.Contains(rec.Body.String(), "deadline budget") {
		t.Errorf("body = %q", rec.Body.String())
	}
	if served != 1 {
		t.Errorf("handler ran %d times", served)
	}
	// A generous budget is served; a malformed header is ignored.
	if rec := doReq(t, h, map[string]string{HeaderClass: "high", HeaderDeadline: "10s"}); rec.Code != http.StatusOK {
		t.Errorf("in-budget request: %d", rec.Code)
	}
	if rec := doReq(t, h, map[string]string{HeaderClass: "high", HeaderDeadline: "soonish"}); rec.Code != http.StatusOK {
		t.Errorf("malformed budget header: %d", rec.Code)
	}
	if cs := ctl.Stats(); cs.Expired != 1 {
		t.Errorf("ctl Expired = %d", cs.Expired)
	}
}
