// Command benchjson runs the repo's benchmark suite and records the
// results as a machine-readable BENCH_*.json snapshot, so performance can
// be tracked PR over PR instead of living in scrollback.
//
// Usage:
//
//	benchjson [-bench regex] [-benchtime 3x] [-count N] [-out BENCH.json] [-pr N] [pkgs...]
//	benchjson -compare [-gate] [-gate-pct 25] OLD.json NEW.json
//
// The default mode shells out to `go test -bench -benchmem`, parses the
// standard benchmark output (including custom b.ReportMetric units such
// as events/s and ns/RPC), and writes a JSON document. The -compare mode
// loads two snapshots and prints a per-benchmark diff table with ratios,
// which is what `make bench-compare` uses.
//
// With -gate, -compare becomes a regression gate and exits non-zero when
// NEW regresses against OLD: ns/op growing more than -gate-pct percent, a
// benchmark that was allocation-free in OLD reporting any allocs/op, or a
// tracked benchmark disappearing entirely. `make bench-gate` (and the CI
// "Bench gate" step) re-measures the suite and gates it against the
// checked-in snapshot this way.
//
// Wall-clock benchmarks on shared machines see one-sided noise — a
// co-tenant or frequency dip can only make a run slower, never faster —
// so -count N runs the suite N times and records each benchmark's best
// (minimum) ns/op. Gating best-of-3 against a best-of-3 snapshot is what
// makes a tight percentage threshold usable at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"aequitas/internal/stats"
)

// Benchmark is one benchmark's measured result.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path, with
	// the -GOMAXPROCS suffix stripped (e.g. "BenchmarkRun/uniform").
	Name string `json:"name"`
	// Pkg is the Go package the benchmark lives in.
	Pkg string `json:"pkg"`
	// Iterations is the b.N the result was averaged over.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, AllocsPerOp are the standard Go benchmark
	// quantities. The suite always runs with -benchmem, so a zero
	// BytesPerOp/AllocsPerOp is a real measurement (the allocation-free
	// hot paths), not a missing one.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values keyed by unit, e.g.
	// "events/s", "packets/s", "ns/RPC", "msgs/s".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the top-level BENCH_*.json document.
type Snapshot struct {
	// PR tags which stacked PR produced the snapshot.
	PR int `json:"pr,omitempty"`
	// Go and CPU record the measurement environment.
	Go  string `json:"go"`
	CPU string `json:"cpu,omitempty"`
	// Benchtime is the -benchtime the suite ran with.
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline, when present, holds reference numbers measured before
	// this PR's changes (same machine, same benchtime) so the snapshot
	// is self-contained evidence of the delta.
	Baseline []Benchmark `json:"baseline,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkRun|BenchmarkSimLoop|BenchmarkWFQDequeue|BenchmarkTransportSend|BenchmarkHist|BenchmarkMetricsRender|BenchmarkAdmitDecision|BenchmarkObserve|BenchmarkServeMiddleware", "benchmark regex passed to go test")
		benchtime = flag.String("benchtime", "1s", "benchtime passed to go test")
		count     = flag.Int("count", 1, "go test -count; with N>1 the snapshot keeps each benchmark's best run")
		out       = flag.String("out", "", "output file (default stdout)")
		pr        = flag.Int("pr", 0, "PR number to tag the snapshot with")
		compare   = flag.Bool("compare", false, "compare two snapshot files instead of running benchmarks")
		gate      = flag.Bool("gate", false, "with -compare, exit non-zero on regressions (ns/op growth past -gate-pct, allocs on 0-alloc benchmarks, missing benchmarks)")
		gatePct   = flag.Float64("gate-pct", 25, "with -gate, max tolerated ns/op growth in percent")
		gateFloor = flag.Float64("gate-floor-ns", 2, "with -gate, absolute ns/op slack on top of -gate-pct — absorbs alignment-level jitter on single-digit-ns benchmarks")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -compare [-gate] OLD.json NEW.json")
		}
		if err := compareFiles(flag.Arg(0), flag.Arg(1), *gate, *gatePct, *gateFloor); err != nil {
			fatalf("compare: %v", err)
		}
		return
	}

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/sim", "./internal/wfq", "./internal/transport", "./internal/stats", "./internal/obs", "./internal/core", "./serve"}
	}
	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-benchmem"}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fatalf("go test -bench: %v", err)
	}

	snap := parse(string(raw))
	snap.PR = *pr
	snap.Go = runtime.Version()
	snap.Benchtime = *benchtime

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := writeMerged(*out, buf, snap); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
}

// writeMerged writes the snapshot to path, preserving an existing file's
// Baseline section (the pre-PR numbers are measured once and must survive
// re-runs of bench-save).
func writeMerged(path string, buf []byte, snap Snapshot) error {
	if old, err := os.ReadFile(path); err == nil {
		var prev Snapshot
		if json.Unmarshal(old, &prev) == nil && len(prev.Baseline) > 0 {
			snap.Baseline = prev.Baseline
			var merr error
			buf, merr = json.MarshalIndent(snap, "", "  ")
			if merr != nil {
				return merr
			}
			buf = append(buf, '\n')
		}
	}
	return os.WriteFile(path, buf, 0o644)
}

// parse extracts benchmark results from `go test -bench` output. The
// format is line-oriented: "pkg: <import path>" announces a package, and
// each result line is "BenchmarkName-P  N  v1 unit1  v2 unit2 ...".
func parse(out string) Snapshot {
	var snap Snapshot
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Pkg: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		snap.Benchmarks = merge(snap.Benchmarks, b)
	}
	return snap
}

// merge folds a repeated measurement (go test -count > 1) of the same
// benchmark into the existing entry: the faster run wins ns/op, B/op and
// custom metrics, while allocs/op keeps the maximum seen — allocation
// counts are deterministic, so any run reporting more is a real signal,
// not noise to be minimized away.
func merge(bs []Benchmark, b Benchmark) []Benchmark {
	for i := range bs {
		if bs[i].Name != b.Name || bs[i].Pkg != b.Pkg {
			continue
		}
		if b.AllocsPerOp > bs[i].AllocsPerOp {
			bs[i].AllocsPerOp = b.AllocsPerOp
		}
		if b.NsPerOp < bs[i].NsPerOp {
			allocs := bs[i].AllocsPerOp
			bs[i] = b
			bs[i].AllocsPerOp = allocs
		}
		return bs
	}
	return append(bs, b)
}

// compareFiles prints a diff table of two snapshots: old vs new ns/op and
// allocs/op with speedup ratios, one row per benchmark present in either.
// With gate set it then applies the regression policy and returns an
// error listing every violation.
func compareFiles(oldPath, newPath string, gate bool, gatePct, gateFloor float64) error {
	load := func(path string) (map[string]Benchmark, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Benchmark, len(snap.Benchmarks))
		for _, b := range snap.Benchmarks {
			m[b.Name] = b
		}
		return m, nil
	}
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldB)+len(newB))
	seen := make(map[string]bool)
	for n := range oldB {
		names, seen[n] = append(names, n), true
	}
	for n := range newB {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	tb := stats.NewTable("benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs")
	for _, n := range names {
		o, haveOld := oldB[n]
		nw, haveNew := newB[n]
		row := []any{n, "-", "-", "-", "-", "-"}
		if haveOld {
			row[1] = o.NsPerOp
			row[4] = o.AllocsPerOp
		}
		if haveNew {
			row[2] = nw.NsPerOp
			row[5] = nw.AllocsPerOp
		}
		if haveOld && haveNew && nw.NsPerOp > 0 {
			row[3] = fmt.Sprintf("%.2fx", o.NsPerOp/nw.NsPerOp)
		}
		tb.AddRow(row...)
	}
	tb.Write(os.Stdout)
	if !gate {
		return nil
	}
	if bad := gateViolations(names, oldB, newB, gatePct, gateFloor); len(bad) > 0 {
		return fmt.Errorf("gate failed (%d violations):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	fmt.Printf("gate ok: %d benchmarks within +%.0f%% ns/op, no new allocations\n", len(names), gatePct)
	return nil
}

// gateViolations applies the regression policy: every benchmark in old
// must still exist in new, may not slow down past gatePct percent plus
// gateFloor ns (the absolute slack keeps alignment-level jitter on
// single-digit-ns benchmarks from tripping a percentage that would be
// meaningless at that scale), and — when it was allocation-free in old —
// may not report any allocs/op. Benchmarks only present in new (freshly
// added) pass.
func gateViolations(names []string, oldB, newB map[string]Benchmark, gatePct, gateFloor float64) []string {
	var bad []string
	for _, n := range names {
		o, haveOld := oldB[n]
		nw, haveNew := newB[n]
		if !haveOld {
			continue
		}
		if !haveNew {
			bad = append(bad, fmt.Sprintf("%s: tracked benchmark missing from new snapshot", n))
			continue
		}
		if o.NsPerOp > 0 && nw.NsPerOp > o.NsPerOp*(1+gatePct/100)+gateFloor {
			bad = append(bad, fmt.Sprintf("%s: ns/op %.2f -> %.2f (%+.0f%%, limit +%.0f%% + %gns)",
				n, o.NsPerOp, nw.NsPerOp, 100*(nw.NsPerOp/o.NsPerOp-1), gatePct, gateFloor))
		}
		if o.AllocsPerOp == 0 && nw.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: allocs/op 0 -> %g (allocation-free benchmark now allocates)",
				n, nw.AllocsPerOp))
		}
	}
	return bad
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
