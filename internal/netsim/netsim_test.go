package netsim

import (
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

func fifoFactory() wfq.Scheduler { return wfq.NewFIFO(0) }

type collector struct {
	pkts  []*Packet
	times []sim.Time
}

func (c *collector) HandlePacket(s *sim.Simulator, p *Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, s.Now())
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	// 100 Gbps, 500 ns propagation: a 1500 B packet arrives at
	// 120 ns (serialisation) + 500 ns (propagation) = 620 ns.
	l := NewLink("l", 100*sim.Gbps, 500*sim.Nanosecond, wfq.NewFIFO(0), c)
	l.Send(s, &Packet{Size: 1500})
	s.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	if want := 620 * sim.Nanosecond; c.times[0] != want {
		t.Errorf("arrival at %v, want %v", c.times[0], want)
	}
}

func TestLinkPipelining(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 500*sim.Nanosecond, wfq.NewFIFO(0), c)
	// Two packets sent back to back: second arrival exactly one
	// serialisation time after the first (propagation overlaps).
	l.Send(s, &Packet{Size: 1500, ID: 1})
	l.Send(s, &Packet{Size: 1500, ID: 2})
	s.Run()
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	if got := c.times[1] - c.times[0]; got != 120*sim.Nanosecond {
		t.Errorf("inter-arrival %v, want 120ns", got)
	}
}

func TestLinkBackToBackThroughput(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 0, wfq.NewFIFO(0), c)
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(s, &Packet{Size: 1500})
	}
	s.Run()
	// n×1500 B at 100 Gbps = n×120 ns.
	if want := sim.Duration(n) * 120 * sim.Nanosecond; s.Now() != want {
		t.Errorf("drain time %v, want %v", s.Now(), want)
	}
	if got := l.Utilization(s.Now()); got < 0.999 || got > 1.001 {
		t.Errorf("utilization %v, want 1.0", got)
	}
}

func TestLinkDropsAndOnDrop(t *testing.T) {
	s := sim.New(1)
	c := &collector{}
	l := NewLink("l", 100*sim.Gbps, 0, wfq.NewFIFO(3000), c)
	var dropped []*Packet
	l.OnDrop = func(_ *sim.Simulator, p *Packet) { dropped = append(dropped, p) }
	// The first packet starts transmitting immediately (leaves the
	// queue), so 2 more fit in the 3000 B buffer; the rest drop.
	for i := 0; i < 10; i++ {
		l.Send(s, &Packet{Size: 1500, ID: uint64(i + 1)})
	}
	if l.Stats.DropPackets != 7 {
		t.Errorf("drops = %d, want 7", l.Stats.DropPackets)
	}
	if len(dropped) != 7 {
		t.Errorf("OnDrop fired %d times", len(dropped))
	}
	s.Run()
	if len(c.pkts) != 3 {
		t.Errorf("delivered %d, want 3", len(c.pkts))
	}
	// Conservation: delivered + dropped = sent.
	if int64(len(c.pkts))+l.Stats.DropPackets != 10 {
		t.Error("packet conservation violated")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := New(Config{Hosts: 1}); err == nil {
		t.Error("1-host network accepted")
	}
}

func TestNetworkRouting(t *testing.T) {
	net, err := New(Config{Hosts: 4, SwitchSched: fifoFactory})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	received := make(map[int][]*Packet)
	for i := 0; i < 4; i++ {
		i := i
		net.Host(i).SetReceiver(HandlerFunc(func(_ *sim.Simulator, p *Packet) {
			received[i] = append(received[i], p)
		}))
	}
	// Host 0 sends one packet to each other host.
	for d := 1; d < 4; d++ {
		net.Host(0).Send(s, &Packet{Dst: d, Size: 1500})
	}
	s.Run()
	for d := 1; d < 4; d++ {
		if len(received[d]) != 1 {
			t.Errorf("host %d received %d packets", d, len(received[d]))
		}
		if len(received[d]) > 0 && received[d][0].Src != 0 {
			t.Errorf("host %d got Src=%d", d, received[d][0].Src)
		}
	}
	if len(received[0]) != 0 {
		t.Errorf("host 0 received %d stray packets", len(received[0]))
	}
}

func TestManyToOneCongestion(t *testing.T) {
	// Two senders at line rate into one receiver: the downlink is the
	// bottleneck, and total delivery time is the sum of both loads.
	net, err := New(Config{Hosts: 3, SwitchSched: fifoFactory, HostSched: fifoFactory})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	c := &collector{}
	net.Host(2).SetReceiver(c)
	const n = 100
	for i := 0; i < n; i++ {
		net.Host(0).Send(s, &Packet{Dst: 2, Size: 1500})
		net.Host(1).Send(s, &Packet{Dst: 2, Size: 1500})
	}
	s.Run()
	if len(c.pkts) != 2*n {
		t.Fatalf("delivered %d, want %d", len(c.pkts), 2*n)
	}
	// Downlink serialises 2n packets: ≥ 2n×120ns.
	if minTime := sim.Duration(2*n) * 120 * sim.Nanosecond; s.Now() < minTime {
		t.Errorf("finished at %v, faster than bottleneck allows (%v)", s.Now(), minTime)
	}
	dp, _ := net.TotalDelivered()
	if dp != 2*n {
		t.Errorf("TotalDelivered packets = %d", dp)
	}
}

func TestWFQDownlinkShares(t *testing.T) {
	// Saturate a downlink with two QoS classes from two senders; the WFQ
	// port must deliver ~4:1 byte shares while both are backlogged.
	net, err := New(Config{
		Hosts:       3,
		SwitchSched: func() wfq.Scheduler { return wfq.NewWFQ([]float64{4, 1}, 0) },
		HostSched:   fifoFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	var hi, lo int
	net.Host(2).SetReceiver(HandlerFunc(func(_ *sim.Simulator, p *Packet) {
		if p.Class == qos.High {
			hi++
		} else {
			lo++
		}
	}))
	const n = 2000
	for i := 0; i < n; i++ {
		net.Host(0).Send(s, &Packet{Dst: 2, Size: 1500, Class: qos.High})
		net.Host(1).Send(s, &Packet{Dst: 2, Size: 1500, Class: qos.Low})
	}
	// Run only while both classes remain backlogged (half the total
	// drain time), then check the ratio so far.
	s.RunUntil(sim.Duration(n) * 120 * sim.Nanosecond)
	ratio := float64(hi) / float64(hi+lo)
	if ratio < 0.76 || ratio > 0.84 {
		t.Errorf("high-class share %v, want ~0.8", ratio)
	}
}

func TestMinRTT(t *testing.T) {
	net, err := New(Config{Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2×(1500B tx) + 2×(64B tx) + 4×500ns = 240 + 10.24 + 2000 ns.
	want := 2*(100*sim.Gbps).TxTime(1500) + 2*(100*sim.Gbps).TxTime(64) + 4*500*sim.Nanosecond
	if got := net.MinRTT(1500); got != want {
		t.Errorf("MinRTT = %v, want %v", got, want)
	}
}

func TestMTUsFor(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 1}, {1, 1}, {int64(MaxPayload), 1}, {int64(MaxPayload) + 1, 2},
		{32 * 1024, (32*1024 + int64(MaxPayload) - 1) / int64(MaxPayload)},
	}
	for _, c := range cases {
		if got := MTUsFor(c.bytes); got != c.want {
			t.Errorf("MTUsFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Src: 1, Dst: 2, Class: qos.High, MsgID: 3, Seq: 0, Size: 1500}
	if got := p.String(); got == "" {
		t.Error("empty String()")
	}
	a := &Packet{Ack: true}
	if got := a.String(); got == "" {
		t.Error("empty ack String()")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		net, _ := New(Config{Hosts: 4})
		s := sim.New(99)
		for i := 0; i < 500; i++ {
			src := s.Rand().Intn(4)
			dst := (src + 1 + s.Rand().Intn(3)) % 4
			net.Host(src).Send(s, &Packet{Dst: dst, Size: 64 + s.Rand().Intn(1400), Class: qos.Class(s.Rand().Intn(3))})
		}
		s.Run()
		return s.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
