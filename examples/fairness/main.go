// Fairness: the §6.5 experiment. Two RPC channels send QoSh traffic to
// the same receiver — channel A offers 40% of line rate, channel B 80% —
// far above what the SLO admits. AIMD on the admit probability converges
// each channel to the same admitted throughput: a channel sending more
// RPCs takes proportionally more decreases, so p_admit(A) > p_admit(B)
// while A×demand ≈ B×demand (Figure 17).
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"log"
	"time"

	"aequitas"
)

func main() {
	cfg := aequitas.SimConfig{
		System:     aequitas.SystemAequitas,
		Hosts:      3,
		Seed:       3,
		Duration:   400 * time.Millisecond,
		Warmup:     50 * time.Millisecond,
		QoSWeights: []float64{4, 1},
		// A slightly larger alpha speeds convergence so the example
		// finishes quickly; the equilibrium is the same (Appendix C).
		Admission: aequitas.AdmissionParams{Alpha: 0.05},
		SLOs: []aequitas.SLO{{
			Target:         15 * time.Microsecond,
			ReferenceBytes: 32 << 10,
			Percentile:     99.9,
		}},
		Traffic: []aequitas.HostTraffic{
			{
				Hosts: []int{0}, Dsts: []int{2}, AvgLoad: 1.0, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.4, FixedBytes: 32 << 10}, // 40 Gbps of QoSh demand
					{Priority: aequitas.BE, Share: 0.6, FixedBytes: 32 << 10},
				},
			},
			{
				Hosts: []int{1}, Dsts: []int{2}, AvgLoad: 1.0, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.8, FixedBytes: 32 << 10}, // 80 Gbps of QoSh demand
					{Priority: aequitas.BE, Share: 0.2, FixedBytes: 32 << 10},
				},
			},
		},
		Probes: []aequitas.Probe{
			{Src: 0, Dst: 2, Class: aequitas.High},
			{Src: 1, Dst: 2, Class: aequitas.High},
		},
		SampleEvery: time.Millisecond,
	}

	res, err := aequitas.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fairness under Aequitas: channel A offers 40 Gbps of QoSh,")
	fmt.Println("channel B offers 80 Gbps; the SLO admits far less than either.")
	fmt.Println()
	names := []string{"A (40G)", "B (80G)"}
	for i, pr := range res.Probes {
		fmt.Printf("channel %s: final p_admit %.2f  mean admitted goodput %5.1f Gbps\n",
			names[i],
			pr.AdmitProbability.Final(0),
			pr.ThroughputGbps.MeanAfter(0.2))
	}
	fmt.Println()
	a := res.Probes[0].ThroughputGbps.MeanAfter(0.2)
	b := res.Probes[1].ThroughputGbps.MeanAfter(0.2)
	fmt.Printf("admitted-goodput ratio B/A = %.2f (1.0 = perfectly fair; the\n", b/a)
	fmt.Println("ratio keeps approaching 1 as the run lengthens)")
	fmt.Printf("QoSh 99.9p RNL: %.1f us (SLO 15 us)\n", res.RNLQuantileUS(aequitas.High, 0.999))
	fmt.Println()
	fmt.Println("The heavier channel converges to a lower admit probability so")
	fmt.Println("both channels receive similar admitted shares — AIMD fairness")
	fmt.Println("with RPC-level clocking (§5.1).")
}
