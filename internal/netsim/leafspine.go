package netsim

import (
	"fmt"

	"aequitas/internal/sim"
)

// Topology selects the fabric shape. The zero value is the single-switch
// star used by most of the paper's experiments. Setting Leaves and Spines
// builds a two-tier leaf-spine fabric, which lets experiments create
// overload at leaf-to-spine uplinks — the paper's point that congestion
// "can occur anywhere in the network along the path that an RPC takes"
// (§2.2.2), not just at edge links.
type Topology struct {
	// Leaves is the number of leaf switches; hosts are spread evenly
	// across leaves (Hosts must be divisible by Leaves). Zero means a
	// single-switch star.
	Leaves int
	// Spines is the number of spine switches; every leaf connects to
	// every spine. The fabric's oversubscription ratio is
	// (hosts-per-leaf × LinkRate) / (Spines × SpineLinkRate).
	Spines int
	// SpineLinkRate is the rate of each leaf-spine link (default: the
	// host link rate).
	SpineLinkRate sim.Rate
}

// leafSwitch forwards local traffic to host ports and remote traffic to a
// spine chosen by a deterministic flow hash (per (src, dst, class), so a
// connection's packets stay in order).
type leafSwitch struct {
	id         int
	net        *Network
	hostPorts  map[int]*Link // dst host id -> downlink
	spinePorts []*Link       // one per spine
}

// HandlePacket implements Handler.
func (l *leafSwitch) HandlePacket(s *sim.Simulator, p *Packet) {
	if port, ok := l.hostPorts[p.Dst]; ok {
		port.Send(s, p)
		return
	}
	l.spinePorts[flowHash(p)%len(l.spinePorts)].Send(s, p)
}

// spineSwitch forwards down to the destination's leaf.
type spineSwitch struct {
	id        int
	leafPorts []*Link // one per leaf
	leafOf    func(host int) int
}

// HandlePacket implements Handler.
func (sp *spineSwitch) HandlePacket(s *sim.Simulator, p *Packet) {
	sp.leafPorts[sp.leafOf(p.Dst)].Send(s, p)
}

// flowHash spreads (src, dst, class) tuples across spines (ECMP-style,
// per-flow to preserve ordering).
func flowHash(p *Packet) int {
	h := uint32(p.Src)*2654435761 ^ uint32(p.Dst)*40503 ^ uint32(p.Class)*97
	h ^= h >> 16
	return int(h & 0x7fffffff)
}

// buildLeafSpine wires the two-tier fabric.
func (n *Network) buildLeafSpine(cfg Config) error {
	t := cfg.Topology
	if t.Leaves < 2 {
		return fmt.Errorf("netsim: leaf-spine needs at least 2 leaves")
	}
	if t.Spines < 1 {
		return fmt.Errorf("netsim: leaf-spine needs at least 1 spine")
	}
	if cfg.Hosts%t.Leaves != 0 {
		return fmt.Errorf("netsim: %d hosts not divisible by %d leaves", cfg.Hosts, t.Leaves)
	}
	spineRate := t.SpineLinkRate
	if spineRate == 0 {
		spineRate = cfg.LinkRate
	}
	perLeaf := cfg.Hosts / t.Leaves
	leafOf := func(host int) int { return host / perLeaf }
	n.leafOf = leafOf

	n.leaves = make([]*leafSwitch, t.Leaves)
	n.spines = make([]*spineSwitch, t.Spines)
	for si := range n.spines {
		n.spines[si] = &spineSwitch{id: si, leafOf: leafOf, leafPorts: make([]*Link, t.Leaves)}
	}
	n.downlinks = make([]*Link, cfg.Hosts)

	for li := 0; li < t.Leaves; li++ {
		leaf := &leafSwitch{id: li, net: n, hostPorts: make(map[int]*Link)}
		n.leaves[li] = leaf
		for k := 0; k < perLeaf; k++ {
			hid := li*perLeaf + k
			h := &Host{ID: hid, net: n}
			down := NewLink(fmt.Sprintf("leaf%d-host%d", li, hid), cfg.LinkRate, cfg.PropDelay, cfg.SwitchSched(), h)
			leaf.hostPorts[hid] = down
			n.downlinks[hid] = down
			h.Uplink = NewLink(fmt.Sprintf("host%d-leaf%d", hid, li), cfg.LinkRate, cfg.PropDelay, cfg.HostSched(), leaf)
			n.hosts = append(n.hosts, h)
		}
		for si := 0; si < t.Spines; si++ {
			up := NewLink(fmt.Sprintf("leaf%d-spine%d", li, si), spineRate, cfg.PropDelay, cfg.SwitchSched(), n.spines[si])
			leaf.spinePorts = append(leaf.spinePorts, up)
			n.spines[si].leafPorts[li] = NewLink(fmt.Sprintf("spine%d-leaf%d", si, li), spineRate, cfg.PropDelay, cfg.SwitchSched(), leaf)
		}
	}
	return nil
}

// CoreLinks returns every leaf→spine and spine→leaf link, for core
// congestion instrumentation. Empty in a star topology.
func (n *Network) CoreLinks() []*Link {
	var out []*Link
	for _, l := range n.leaves {
		out = append(out, l.spinePorts...)
	}
	for _, sp := range n.spines {
		out = append(out, sp.leafPorts...)
	}
	return out
}

// SameLeaf reports whether two hosts share a leaf (always true in a
// star).
func (n *Network) SameLeaf(a, b int) bool {
	if n.leafOf == nil {
		return true
	}
	return n.leafOf(a) == n.leafOf(b)
}
