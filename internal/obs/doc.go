// Package obs is the simulation-wide observability layer: a structured
// RPC-lifecycle event tracer, a metrics registry with periodic
// simulated-time samplers, and profiling helpers.
//
// The layer is designed around one invariant: when disabled it costs
// nothing on the hot path. Every Tracer event method is safe to call on a
// nil receiver and returns immediately without allocating, so instrumented
// code holds a possibly-nil *Tracer and calls it unconditionally (or
// behind a nil check when argument evaluation itself would do work). The
// obs test suite enforces zero allocations per disabled event with
// testing.AllocsPerRun.
//
// # Trace schema
//
// A Tracer records the full RPC lifecycle as a flat event stream:
//
//	issue     the application issued an RPC (src, dst, prio, class, bytes)
//	admit     the admission decision, with the admit probability used
//	          (decision ∈ admit|downgrade|drop, p_admit ∈ [0, 1])
//	enqueue   the RPC's first packet was handed to the host NIC queue
//	hop       a packet left one egress queue (link, queue residency,
//	          queued bytes remaining after dequeue)
//	drop      a packet was dropped by an egress scheduler
//	complete  the last byte was acknowledged (rnl_us)
//
// WriteNDJSON emits one JSON object per line with the fields listed in
// the table below; ValidateNDJSON checks a stream against this schema.
// Common fields: ts_us (non-negative, non-decreasing), kind, rpc.
// Kind-specific required fields:
//
//	issue:    src dst prio class bytes
//	admit:    src dst class decision p_admit
//	enqueue:  src dst class bytes
//	hop:      link class bytes resid_us qbytes
//	drop:     link class bytes
//	complete: src dst class bytes rnl_us
//
// WriteChromeTrace emits the same events in Chrome trace-event JSON
// (loadable at https://ui.perfetto.dev): RPCs become async b/e spans keyed
// by RPC id, queue residencies become complete ("X") slices on one track
// per link, and admission decisions become instant events.
//
// Events are recorded in simulator order, so for a fixed configuration the
// stream is bit-identical regardless of how many sweep workers run other
// simulations concurrently — each run owns its Tracer.
package obs
