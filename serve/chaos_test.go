package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aequitas"
	"aequitas/internal/core"
	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/serve/chaos"
)

// quotaScenario drives one deterministic quota-outage run on a manual
// clock: in-quota load through the middleware, a quota-plane outage from
// 1s to 3s (when outage is set), 10ms between requests over 4s.
type quotaScenario struct {
	served        int
	rejected      int
	bypassAtStart int64 // InQuotaAdmits when the lease first went stale
	bypassAtEnd   int64 // InQuotaAdmits just before the plane recovers
	stats         aequitas.QuotaStats
}

func runQuotaScenario(t *testing.T, policy core.QuotaFailPolicy, outage bool) quotaScenario {
	t.Helper()
	clk := &core.ManualClock{}
	epoch := sim.Time(1)
	clk.SetNow(epoch)
	ctl, err := aequitas.NewControllerWithClock(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{{Target: 10 * time.Millisecond}},
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQuotaServer(map[qos.Class]float64{qos.High: 1e9})
	if err := q.Grant("tenant", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	cli := q.ClientWithClock("tenant", clk)
	cli.LeaseTTL = 50 * time.Millisecond
	ctl.SetQuota(cli, policy)
	a, err := New(Config{Controller: ctl})
	if err != nil {
		t.Fatal(err)
	}
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	var plan *chaos.Plan
	if outage {
		plan = &chaos.Plan{Events: []chaos.Event{
			{At: 1 * time.Second, Kind: chaos.QuotaDown},
			{At: 3 * time.Second, Kind: chaos.QuotaUp},
		}}
	}
	inj := chaos.NewInjector(plan, q)

	var sc quotaScenario
	staleSeen := false
	for i := 0; i < 400; i++ {
		elapsed := time.Duration(i) * 10 * time.Millisecond
		clk.SetNow(epoch + sim.FromStd(elapsed))
		inj.Advance(elapsed)
		req := httptest.NewRequest("GET", "/rpc", nil)
		req.Header.Set(HeaderClass, "high")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			sc.served++
		default:
			sc.rejected++
		}
		qs, _ := ctl.QuotaStats()
		if outage && !staleSeen && qs.Lease.StaleChecks > 0 {
			staleSeen = true
			sc.bypassAtStart = qs.InQuotaAdmits
		}
		if outage && elapsed < 3*time.Second {
			sc.bypassAtEnd = qs.InQuotaAdmits
		}
	}
	if outage && !staleSeen {
		t.Fatal("outage scenario never saw a stale lease")
	}
	sc.stats, _ = ctl.QuotaStats()
	return sc
}

// TestChaosQuotaOutagePolicies is the quota-plane half of the acceptance
// drill: under a 2s quota-plane outage, fail-open goodput stays within
// 10% of the no-fault baseline (requests fall through to Algorithm 1),
// while fail-closed sheds — zero quota-bypass admits once the lease goes
// stale, and every stale-window request dropped.
func TestChaosQuotaOutagePolicies(t *testing.T) {
	base := runQuotaScenario(t, core.QuotaFailOpen, false)
	if base.served != 400 {
		t.Fatalf("baseline served %d of 400", base.served)
	}

	open := runQuotaScenario(t, core.QuotaFailOpen, true)
	if open.served < base.served*9/10 {
		t.Errorf("fail-open goodput %d below 90%% of baseline %d", open.served, base.served)
	}
	if open.stats.StalePassed == 0 {
		t.Error("fail-open never exercised the stale fall-through")
	}
	if open.stats.StaleDropped != 0 {
		t.Errorf("fail-open dropped %d", open.stats.StaleDropped)
	}

	closed := runQuotaScenario(t, core.QuotaFailClosed, true)
	if closed.stats.StaleDropped == 0 {
		t.Fatal("fail-closed never dropped")
	}
	if closed.bypassAtEnd != closed.bypassAtStart {
		t.Errorf("fail-closed admitted %d quota-bypass RPCs during the stale window",
			closed.bypassAtEnd-closed.bypassAtStart)
	}
	if got := int64(closed.rejected); got != closed.stats.StaleDropped {
		t.Errorf("rejected %d != StaleDropped %d", got, closed.stats.StaleDropped)
	}
	// Recovery: the post-outage second served normally again.
	if closed.served+closed.rejected != 400 || closed.served < 190 {
		t.Errorf("fail-closed served %d, rejected %d", closed.served, closed.rejected)
	}
}

// TestChaosOverloadDrill is the latency half of the acceptance drill,
// fully deterministic on a manual clock: a 20ms latency fault from 2s to
// 6s against a 10ms SLO must (1) dip p_admit well below 1 and
// re-converge after the fault clears, (2) step the brownout ladder up
// during the fault and return it to level 0 after, and (3) freeze
// validated aequitas.flight/v1 dumps at the brownout onsets.
func TestChaosOverloadDrill(t *testing.T) {
	clk := &core.ManualClock{}
	epoch := sim.Time(1)
	clk.SetNow(epoch)
	ctl, err := aequitas.NewControllerWithClock(aequitas.ControllerConfig{
		SLOs:  []aequitas.SLO{{Target: 10 * time.Millisecond, Percentile: 90}},
		Alpha: 0.05,
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{
		Controller: ctl,
		Brownout: &BrownoutConfig{
			LatencyThreshold: 10 * time.Millisecond,
			Window:           time.Second,
			StepUpAfter:      1,
			StepDownAfter:    2,
		},
		Flight: &FlightConfig{Records: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{Events: []chaos.Event{
		{At: 2 * time.Second, Kind: chaos.Slow, Amount: 20 * time.Millisecond},
		{At: 6 * time.Second, Kind: chaos.Slow},
	}}
	inj := chaos.NewInjector(plan, nil)
	// The handler "takes" 1ms plus whatever latency the injector says —
	// the injected fault drives the SLO and brownout signals with zero
	// real sleeping.
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clk.SetNow(clk.Now() + sim.FromStd(time.Millisecond+inj.ExtraLatency()))
		w.WriteHeader(http.StatusOK)
	}))

	var minP = 1.0
	var pDuringFault, maxLevel float64
	sawLevelUp := false
	for i := 0; i < 2000; i++ {
		elapsed := time.Duration(i) * 10 * time.Millisecond // 20s total
		clk.SetNow(epoch + sim.FromStd(elapsed))
		inj.Advance(elapsed)
		req := httptest.NewRequest("GET", "/rpc", nil)
		req.Header.Set(HeaderClass, "high")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		p := ctl.AdmitProbability("/rpc", aequitas.High)
		if p < minP {
			minP = p
		}
		if elapsed == 5*time.Second {
			pDuringFault = p
		}
		if lvl := float64(a.BrownoutLevel()); lvl > maxLevel {
			maxLevel = lvl
			if lvl > 0 {
				sawLevelUp = true
			}
		}
	}

	// (1) p_admit dipped under the fault and re-converged after it.
	if pDuringFault > 0.5 {
		t.Errorf("p_admit during fault = %.3f, want a clear dip", pDuringFault)
	}
	pEnd := ctl.AdmitProbability("/rpc", aequitas.High)
	if pEnd < 0.9 {
		t.Errorf("p_admit after recovery = %.3f, want re-convergence toward 1", pEnd)
	}

	// (2) the brownout ladder stepped up and fully recovered.
	if !sawLevelUp {
		t.Error("brownout never stepped up under the latency fault")
	}
	if lvl := a.BrownoutLevel(); lvl != BrownoutOff {
		t.Errorf("brownout level after recovery = %d, want 0", lvl)
	}

	// (3) dumps fired at the onsets and validate as aequitas.flight/v1.
	if a.FlightTriggered() == 0 {
		t.Fatal("no flight dump fired")
	}
	tr, dump, ok := a.LastFlightDump()
	if !ok {
		t.Fatal("no last flight dump")
	}
	if tr.Kind != flight.TriggerBrownout {
		t.Errorf("last trigger = %v, want brownout", tr.Kind)
	}
	if !strings.Contains(tr.Detail, "brownout") {
		t.Errorf("trigger detail = %q", tr.Detail)
	}
	if _, records, err := flight.ValidateDump(bytes.NewReader(dump)); err != nil {
		t.Errorf("dump does not validate: %v", err)
	} else if records == 0 {
		t.Error("dump holds no records")
	}
}

// TestChaosServeWallClockSmoke is the race-enabled wall-clock smoke the
// chaos-serve-check make target runs: a real httptest server behind the
// full middleware stack (deadline budgets, brownout, quota leases) with
// the injector pumping latency spikes, an error burst, and a quota
// outage on real time, under concurrent clients. It asserts liveness and
// counter consistency, not exact outcomes — the wall clock is not
// deterministic.
func TestChaosServeWallClockSmoke(t *testing.T) {
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{{Target: 5 * time.Millisecond}, {Target: 10 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQuotaServer(map[qos.Class]float64{qos.High: 1e8})
	if err := q.Grant("tenant", qos.High, 1e8); err != nil {
		t.Fatal(err)
	}
	cli := q.Client("tenant")
	cli.LeaseTTL = 20 * time.Millisecond
	ctl.SetQuota(cli, core.QuotaFailOpen)
	a, err := New(Config{
		Controller: ctl,
		Deadline:   &DeadlineConfig{},
		Brownout: &BrownoutConfig{
			LatencyThreshold: 2 * time.Millisecond,
			Window:           50 * time.Millisecond,
		},
		Flight: &FlightConfig{Records: 1024, Engine: &flight.EngineConfig{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := &chaos.Plan{Events: []chaos.Event{
		{At: 20 * time.Millisecond, Kind: chaos.Slow, Amount: 3 * time.Millisecond},
		{At: 40 * time.Millisecond, Kind: chaos.Errors, Rate: 0.3},
		{At: 50 * time.Millisecond, Kind: chaos.QuotaDown},
		{At: 120 * time.Millisecond, Kind: chaos.Errors},
		{At: 150 * time.Millisecond, Kind: chaos.QuotaUp},
		{At: 180 * time.Millisecond, Kind: chaos.Slow},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(plan, q)
	// Prime the first fault before load starts: on a fast machine the
	// whole run can finish inside the first event's offset, and the point
	// of the smoke is accounting *under* chaos. With the latency spike
	// active every request takes >= its injected delay, so the wall-clock
	// pump has time to walk the rest of the plan.
	inj.Advance(plan.Events[0].At)
	srv := httptest.NewServer(inj.Wrap(a.Middleware(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }))))
	defer srv.Close()

	stopPump := make(chan struct{})
	go func() {
		start := time.Now()
		for {
			select {
			case <-stopPump:
				return
			default:
			}
			inj.Advance(time.Since(start))
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stopPump)

	const workers, perWorker = 4, 50
	type tally struct{ ok, rejected, errored, expired int }
	results := make(chan tally, workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			var tl tally
			client := srv.Client()
			for i := 0; i < perWorker; i++ {
				req, _ := http.NewRequest("GET", srv.URL, nil)
				req.Header.Set(HeaderClass, "high")
				if i%4 == 0 {
					req.Header.Set(HeaderDeadline, "1ms") // tight budget: may expire
				}
				resp, err := client.Do(req)
				if err != nil {
					tl.errored++
					continue
				}
				switch {
				case resp.StatusCode == http.StatusOK:
					tl.ok++
				case resp.Header.Get(HeaderExpired) != "":
					tl.expired++
				default:
					tl.rejected++
				}
				resp.Body.Close()
			}
			results <- tl
		}(w)
	}
	var total tally
	for w := 0; w < workers; w++ {
		tl := <-results
		total.ok += tl.ok
		total.rejected += tl.rejected
		total.errored += tl.errored
		total.expired += tl.expired
	}
	if total.ok == 0 {
		t.Error("no request succeeded under chaos")
	}
	if got := total.ok + total.rejected + total.errored + total.expired; got != workers*perWorker {
		t.Errorf("request accounting: %d of %d", got, workers*perWorker)
	}
	// The metrics surface stays coherent under fire.
	snap := a.Snapshot()
	if len(snap.Counters) == 0 {
		t.Error("empty snapshot under chaos")
	}
	if !inj.Done() && inj.Applied() == 0 {
		t.Error("injector applied no events")
	}
}
