package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"aequitas/internal/sim"
)

// Kind is the lifecycle stage an Event records.
type Kind uint8

const (
	KindIssue Kind = iota
	KindAdmit
	KindEnqueue
	KindHop
	KindDrop
	KindComplete
	KindFault
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindAdmit:
		return "admit"
	case KindEnqueue:
		return "enqueue"
	case KindHop:
		return "hop"
	case KindDrop:
		return "drop"
	case KindComplete:
		return "complete"
	case KindFault:
		return "fault"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FaultKind names the injected fault a KindFault event records. It
// mirrors the faults package's event kinds without importing it (obs is
// below faults in the dependency order).
type FaultKind uint8

const (
	FaultLinkDown FaultKind = iota
	FaultLinkUp
	FaultLoss
	FaultCrash
	FaultRestart
)

func (f FaultKind) String() string {
	switch f {
	case FaultLinkDown:
		return "linkdown"
	case FaultLinkUp:
		return "linkup"
	case FaultLoss:
		return "loss"
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(f))
	}
}

// Decision is the admission verdict recorded by a KindAdmit event.
type Decision uint8

const (
	DecisionAdmit Decision = iota
	DecisionDowngrade
	DecisionDrop
)

func (d Decision) String() string {
	switch d {
	case DecisionAdmit:
		return "admit"
	case DecisionDowngrade:
		return "downgrade"
	case DecisionDrop:
		return "drop"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Event is one recorded lifecycle event. A single struct covers every
// kind so the tracer's buffer is a flat slice of values: recording an
// event is an append, never a heap allocation per event.
type Event struct {
	TS       sim.Time
	Kind     Kind
	Decision Decision
	Class    int16
	Prio     int16
	Src, Dst int32
	RPC      uint64
	Bytes    int64
	// Val carries the kind's scalar: p_admit (admit), queue residency in
	// picoseconds (hop), or RNL in picoseconds (complete).
	Val float64
	// QBytes is the egress queue occupancy after a hop's dequeue.
	QBytes int64
	// Fault is the injected fault name for KindFault events.
	Fault FaultKind
	// Link names the egress port for hop and drop events. Link names are
	// interned at topology construction, so storing one here copies a
	// string header, not the bytes.
	Link string
}

// Tracer records lifecycle events for one simulation run. A nil *Tracer
// is the disabled tracer: every method is a nil-checked no-op, which is
// the zero-overhead fast path instrumented code relies on.
type Tracer struct {
	events []Event
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Issue records an RPC entering the stack.
func (t *Tracer) Issue(now sim.Time, rpc uint64, src, dst, prio, class int, bytes int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindIssue, RPC: rpc,
		Src: int32(src), Dst: int32(dst), Prio: int16(prio), Class: int16(class), Bytes: bytes})
}

// Admit records the admission decision and the admit probability used.
func (t *Tracer) Admit(now sim.Time, rpc uint64, src, dst, class int, dec Decision, pAdmit float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindAdmit, RPC: rpc,
		Src: int32(src), Dst: int32(dst), Class: int16(class), Decision: dec, Val: pAdmit})
}

// Enqueue records the RPC's first packet being handed to the host NIC.
func (t *Tracer) Enqueue(now sim.Time, rpc uint64, src, dst, class int, bytes int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindEnqueue, RPC: rpc,
		Src: int32(src), Dst: int32(dst), Class: int16(class), Bytes: bytes})
}

// Hop records a packet leaving one egress queue after resid queueing;
// queuedBytes is the port occupancy after the dequeue.
func (t *Tracer) Hop(now sim.Time, rpc uint64, link string, class, bytes int, resid sim.Duration, queuedBytes int) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindHop, RPC: rpc, Link: link,
		Class: int16(class), Bytes: int64(bytes), Val: float64(resid), QBytes: int64(queuedBytes)})
}

// Drop records a packet dropped by an egress scheduler.
func (t *Tracer) Drop(now sim.Time, rpc uint64, link string, class, bytes int) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindDrop, RPC: rpc, Link: link,
		Class: int16(class), Bytes: int64(bytes)})
}

// Complete records the RPC's last byte being acknowledged.
func (t *Tracer) Complete(now sim.Time, rpc uint64, src, dst, class int, bytes int64, rnl sim.Duration) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindComplete, RPC: rpc,
		Src: int32(src), Dst: int32(dst), Class: int16(class), Bytes: bytes, Val: float64(rnl)})
}

// Fault records an injected fault event being applied: a link going
// down/up, a loss rate changing (rate in Val), or a host crash/restart.
// target is the link name or "host:N"; it reuses the interned-string
// Link slot.
func (t *Tracer) Fault(now sim.Time, f FaultKind, target string, rate float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{TS: now, Kind: KindFault, Fault: f, Link: target, Val: rate})
}

// picosUS converts a picosecond scalar held in Event.Val to microseconds.
func picosUS(v float64) float64 { return v / float64(sim.Microsecond) }

// WriteNDJSON writes the recorded events as newline-delimited JSON, one
// event per line, in emission order.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for i := range t.events {
		buf = appendNDJSON(buf[:0], &t.events[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func appendNDJSON(b []byte, e *Event) []byte {
	num := func(b []byte, key string, v int64) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		return strconv.AppendInt(b, v, 10)
	}
	flt := func(b []byte, key string, v float64) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	str := func(b []byte, key, v string) []byte {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		return strconv.AppendQuote(b, v)
	}
	b = append(b, `{"ts_us":`...)
	b = strconv.AppendFloat(b, e.TS.Micros(), 'f', 3, 64)
	b = str(b, "kind", e.Kind.String())
	b = num(b, "rpc", int64(e.RPC))
	switch e.Kind {
	case KindIssue:
		b = num(b, "src", int64(e.Src))
		b = num(b, "dst", int64(e.Dst))
		b = num(b, "prio", int64(e.Prio))
		b = num(b, "class", int64(e.Class))
		b = num(b, "bytes", e.Bytes)
	case KindAdmit:
		b = num(b, "src", int64(e.Src))
		b = num(b, "dst", int64(e.Dst))
		b = num(b, "class", int64(e.Class))
		b = str(b, "decision", e.Decision.String())
		b = flt(b, "p_admit", e.Val)
	case KindEnqueue:
		b = num(b, "src", int64(e.Src))
		b = num(b, "dst", int64(e.Dst))
		b = num(b, "class", int64(e.Class))
		b = num(b, "bytes", e.Bytes)
	case KindHop:
		b = str(b, "link", e.Link)
		b = num(b, "class", int64(e.Class))
		b = num(b, "bytes", e.Bytes)
		b = flt(b, "resid_us", picosUS(e.Val))
		b = num(b, "qbytes", e.QBytes)
	case KindDrop:
		b = str(b, "link", e.Link)
		b = num(b, "class", int64(e.Class))
		b = num(b, "bytes", e.Bytes)
	case KindComplete:
		b = num(b, "src", int64(e.Src))
		b = num(b, "dst", int64(e.Dst))
		b = num(b, "class", int64(e.Class))
		b = num(b, "bytes", e.Bytes)
		b = flt(b, "rnl_us", picosUS(e.Val))
	case KindFault:
		b = str(b, "event", e.Fault.String())
		b = str(b, "target", e.Link)
		b = flt(b, "rate", e.Val)
	}
	return append(b, '}')
}

// schemaFields maps each kind to the fields required beyond the common
// ts_us/kind/rpc. ValidateNDJSON and the schema tests share it.
var schemaFields = map[string][]string{
	"issue":    {"src", "dst", "prio", "class", "bytes"},
	"admit":    {"src", "dst", "class", "decision", "p_admit"},
	"enqueue":  {"src", "dst", "class", "bytes"},
	"hop":      {"link", "class", "bytes", "resid_us", "qbytes"},
	"drop":     {"link", "class", "bytes"},
	"complete": {"src", "dst", "class", "bytes", "rnl_us"},
	"fault":    {"event", "target", "rate"},
}

// SchemaFields returns the required kind-specific field names for kind,
// or nil for an unknown kind.
func SchemaFields(kind string) []string { return schemaFields[kind] }

// ValidateNDJSON checks an NDJSON stream against the trace schema: every
// line is a JSON object carrying ts_us/kind/rpc plus its kind's required
// fields, timestamps are non-negative and non-decreasing, admit events
// carry a probability in [0, 1] and a known decision, and hop residencies
// are non-negative. It returns the number of valid events. Errors name
// the offending field and the physical line number (blank lines count, so
// the number matches an editor's view of the file).
func ValidateNDJSON(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	n := 0
	lineNo := 0
	lastTS := -1.0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		n++
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return n, fmt.Errorf("obs: line %d: invalid JSON: %w", lineNo, err)
		}
		ts, ok := m["ts_us"].(float64)
		if !ok || ts < 0 {
			return n, fmt.Errorf("obs: line %d: field \"ts_us\" missing or negative", lineNo)
		}
		if ts < lastTS {
			return n, fmt.Errorf("obs: line %d: field \"ts_us\" %.3f before previous %.3f", lineNo, ts, lastTS)
		}
		lastTS = ts
		kind, ok := m["kind"].(string)
		if !ok {
			return n, fmt.Errorf("obs: line %d: field \"kind\" missing", lineNo)
		}
		req, ok := schemaFields[kind]
		if !ok {
			return n, fmt.Errorf("obs: line %d: field \"kind\": unknown kind %q", lineNo, kind)
		}
		if _, ok := m["rpc"].(float64); !ok {
			return n, fmt.Errorf("obs: line %d: field \"rpc\" missing", lineNo)
		}
		for _, f := range req {
			v, ok := m[f]
			if !ok {
				return n, fmt.Errorf("obs: line %d: field %q missing from %s event", lineNo, f, kind)
			}
			switch f {
			case "link", "decision", "event", "target":
				if _, ok := v.(string); !ok {
					return n, fmt.Errorf("obs: line %d: field %q must be a string", lineNo, f)
				}
			default:
				if _, ok := v.(float64); !ok {
					return n, fmt.Errorf("obs: line %d: field %q must be a number", lineNo, f)
				}
			}
		}
		switch kind {
		case "admit":
			if p := m["p_admit"].(float64); p < 0 || p > 1 {
				return n, fmt.Errorf("obs: line %d: field \"p_admit\" %v out of [0, 1]", lineNo, m["p_admit"])
			}
			switch m["decision"].(string) {
			case "admit", "downgrade", "drop":
			default:
				return n, fmt.Errorf("obs: line %d: field \"decision\": unknown decision %q", lineNo, m["decision"])
			}
		case "hop":
			if m["resid_us"].(float64) < 0 {
				return n, fmt.Errorf("obs: line %d: field \"resid_us\" negative", lineNo)
			}
		case "complete":
			if m["rnl_us"].(float64) <= 0 {
				return n, fmt.Errorf("obs: line %d: field \"rnl_us\" non-positive", lineNo)
			}
		case "fault":
			if r := m["rate"].(float64); r < 0 || r > 1 {
				return n, fmt.Errorf("obs: line %d: field \"rate\" %v out of [0, 1]", lineNo, m["rate"])
			}
			switch m["event"].(string) {
			case "linkdown", "linkup", "loss", "crash", "restart":
			default:
				return n, fmt.Errorf("obs: line %d: field \"event\": unknown fault %q", lineNo, m["event"])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// chromeEvent is one Chrome trace-event JSON object.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the recorded events in Chrome trace-event JSON
// (the {"traceEvents": [...]} form Perfetto loads). RPC lifecycles become
// async begin/end spans keyed by RPC id under the source host's process;
// queue residencies become complete slices on one thread track per link;
// admission decisions and drops become instant events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	linkTID := make(map[string]int)
	tid := func(link string) int {
		id, ok := linkTID[link]
		if !ok {
			id = len(linkTID) + 1
			linkTID[link] = id
		}
		return id
	}
	const fabricPID = 1 << 20 // synthetic "fabric" process for link tracks
	out := make([]chromeEvent, 0, len(t.events))
	meta := []chromeEvent{}
	for i := range t.events {
		e := &t.events[i]
		ts := e.TS.Micros()
		switch e.Kind {
		case KindIssue:
			out = append(out, chromeEvent{Name: "rpc", Cat: "rpc", Ph: "b", TS: ts,
				PID: int(e.Src), TID: int(e.Dst), ID: strconv.FormatUint(e.RPC, 10),
				Args: map[string]any{"prio": e.Prio, "class": e.Class, "bytes": e.Bytes}})
		case KindComplete:
			out = append(out, chromeEvent{Name: "rpc", Cat: "rpc", Ph: "e", TS: ts,
				PID: int(e.Src), TID: int(e.Dst), ID: strconv.FormatUint(e.RPC, 10),
				Args: map[string]any{"rnl_us": picosUS(e.Val)}})
		case KindAdmit:
			out = append(out, chromeEvent{Name: "admit/" + e.Decision.String(), Cat: "admission",
				Ph: "i", S: "t", TS: ts, PID: int(e.Src), TID: int(e.Dst),
				Args: map[string]any{"rpc": e.RPC, "p_admit": e.Val, "class": e.Class}})
		case KindEnqueue:
			out = append(out, chromeEvent{Name: "enqueue", Cat: "rpc", Ph: "i", S: "t",
				TS: ts, PID: int(e.Src), TID: int(e.Dst),
				Args: map[string]any{"rpc": e.RPC, "class": e.Class, "bytes": e.Bytes}})
		case KindHop:
			resid := picosUS(e.Val)
			start := ts - resid
			out = append(out, chromeEvent{Name: e.Link, Cat: "queue", Ph: "X",
				TS: start, Dur: &resid, PID: fabricPID, TID: tid(e.Link),
				Args: map[string]any{"rpc": e.RPC, "class": e.Class, "bytes": e.Bytes, "qbytes": e.QBytes}})
		case KindDrop:
			out = append(out, chromeEvent{Name: "drop@" + e.Link, Cat: "queue", Ph: "i", S: "t",
				TS: ts, PID: fabricPID, TID: tid(e.Link),
				Args: map[string]any{"rpc": e.RPC, "class": e.Class, "bytes": e.Bytes}})
		case KindFault:
			out = append(out, chromeEvent{Name: "fault/" + e.Fault.String(), Cat: "fault",
				Ph: "i", S: "g", TS: ts, PID: fabricPID, TID: 0,
				Args: map[string]any{"target": e.Link, "rate": e.Val}})
		}
	}
	// Name the synthetic fabric process and its per-link threads. Order by
	// tid (first appearance), never map order, so output is deterministic.
	if len(linkTID) > 0 {
		meta = append(meta, chromeEvent{Name: "process_name", Ph: "M", PID: fabricPID,
			Args: map[string]any{"name": "fabric"}})
		byTID := make([]string, len(linkTID)+1)
		for link, id := range linkTID {
			byTID[id] = link
		}
		for id := 1; id < len(byTID); id++ {
			meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", PID: fabricPID, TID: id,
				Args: map[string]any{"name": byTID[id]}})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": append(meta, out...)})
}
