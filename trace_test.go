package aequitas

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := SimConfig{
		Hosts:       4,
		Seed:        3,
		Duration:    5 * time.Millisecond,
		Warmup:      time.Millisecond,
		TraceWriter: &buf,
		Traffic: []HostTraffic{{
			AvgLoad: 0.3,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.6, FixedBytes: 8 << 10},
				{Priority: BE, Share: 0.4, FixedBytes: 32 << 10},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("trace has %d rows", len(records))
	}
	header := strings.Join(records[0], ",")
	if header != traceCSVHeader {
		t.Fatalf("header = %q", header)
	}
	// Row count matches completions counted by the collector.
	if int64(len(records)-1) != res.Completed {
		t.Errorf("trace rows %d != completed %d", len(records)-1, res.Completed)
	}
	lastT := 0.0
	for i, rec := range records[1:] {
		if len(rec) != 11 {
			t.Fatalf("row %d has %d fields", i, len(rec))
		}
		ts, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || ts < lastT {
			t.Fatalf("row %d: bad/unordered timestamp %q", i, rec[0])
		}
		lastT = ts
		if src, _ := strconv.Atoi(rec[1]); src < 0 || src > 3 {
			t.Fatalf("row %d: src %q", i, rec[1])
		}
		switch rec[7] {
		case "admit", "downgrade":
		default:
			t.Fatalf("row %d: decision %q", i, rec[7])
		}
		p, err := strconv.ParseFloat(rec[8], 64)
		if err != nil || p < 0 || p > 1 {
			t.Fatalf("row %d: p_admit %q", i, rec[8])
		}
		rnl, err := strconv.ParseFloat(rec[10], 64)
		if err != nil || rnl <= 0 {
			t.Fatalf("row %d: rnl %q", i, rec[10])
		}
		switch rec[3] {
		case "PC", "NC", "BE":
		default:
			t.Fatalf("row %d: priority %q", i, rec[3])
		}
	}
}

// TestCSVTraceHeaderOnce: a CSVTrace sink reused across two runs gets
// exactly one header line (satellite: retried runs must not duplicate it).
func TestCSVTraceHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVTrace(&buf)
	cfg := SimConfig{
		Hosts:       3,
		Seed:        7,
		Duration:    2 * time.Millisecond,
		Warmup:      time.Millisecond,
		TraceWriter: sink,
		Traffic: []HostTraffic{{
			AvgLoad: 0.2,
			Classes: []TrafficClass{{Priority: PC, Share: 1, FixedBytes: 4 << 10}},
		}},
	}
	for run := 0; run < 2; run++ {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n := strings.Count(buf.String(), traceCSVHeader); n != 1 {
		t.Errorf("header appears %d times, want 1", n)
	}
}
