package aequitas

import (
	"bytes"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// attrTestConfig is obsTestConfig with an RTO floor above the simulated
// horizon: with go-back-N and cumulative acks, any drop then blocks its
// RPC's completion forever, so every *completed* RPC is retransmit-free
// and its decomposition components are individually non-negative.
func attrTestConfig(system System, seed int64) SimConfig {
	cfg := obsTestConfig(seed)
	cfg.System = system
	cfg.RTOMin = 50 * time.Millisecond
	return cfg
}

// TestAttributionSumsToRNL is the golden criterion: for every completed
// RPC, the decomposition components are non-negative and sum to the
// measured RNL within one microsecond-formatting ulp (the internal sum is
// exact in picoseconds; only the CSV float conversion rounds).
func TestAttributionSumsToRNL(t *testing.T) {
	for _, system := range []System{SystemBaseline, SystemAequitas} {
		var csv bytes.Buffer
		cfg := attrTestConfig(system, 7)
		cfg.Obs.AttributionCSV = &csv
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}

		lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: no attribution records", system)
		}
		if lines[0] != "rpc,src,dst,class,issue_s,admit_us,sender_us,transport_us,pacing_us,nic_us,switch_us,wire_us,rnl_us" {
			t.Fatalf("%s: header = %q", system, lines[0])
		}
		names := strings.Split(lines[0], ",")
		withTransport := 0
		for ln, line := range lines[1:] {
			f := strings.Split(line, ",")
			if len(f) != len(names) {
				t.Fatalf("%s: row %d has %d fields", system, ln+2, len(f))
			}
			v := make([]float64, len(f))
			for i := 5; i < len(f); i++ {
				x, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					t.Fatalf("%s: row %d col %s: %v", system, ln+2, names[i], err)
				}
				v[i] = x
			}
			sum := 0.0
			for i := 5; i < 12; i++ { // admit..wire
				if v[i] < -1e-9 {
					t.Fatalf("%s: row %d: negative %s = %g", system, ln+2, names[i], v[i])
				}
				sum += v[i]
			}
			rnl := v[12]
			if rnl <= 0 {
				t.Fatalf("%s: row %d: non-positive rnl %g", system, ln+2, rnl)
			}
			if math.Abs(sum-rnl) > 1e-3 {
				t.Fatalf("%s: row %d: components sum to %g us, rnl is %g us", system, ln+2, sum, rnl)
			}
			if v[7] > 0 || v[9] > 0 { // transport_us, nic_us
				withTransport++
			}
		}
		// The standard transport is instrumented, so the decomposition must
		// not be all-Wire.
		if withTransport == 0 {
			t.Errorf("%s: no record carries transport/NIC time", system)
		}

		if len(res.Attribution) == 0 {
			t.Fatalf("%s: Results.Attribution empty", system)
		}
		for cl, a := range res.Attribution {
			if a.N == 0 || a.RNLUS <= 0 {
				t.Errorf("%s: class %v attribution = %+v", system, cl, a)
			}
			comp := a.AdmitUS + a.SenderUS + a.TransportUS + a.PacingUS + a.NICUS + a.SwitchUS + a.WireUS
			if math.Abs(comp-a.RNLUS) > 1e-6 {
				t.Errorf("%s: class %v means sum to %g, RNL mean %g", system, cl, comp, a.RNLUS)
			}
		}
	}
}

// TestAttributionDeterministicUnderParallel: the attribution CSV is
// byte-identical when the sweep runs on one worker and on GOMAXPROCS
// workers. D3 is included because its shared deadline fabric restarts
// flows on every completion — that restart must happen in flow-id
// order, not map order, for runs to be reproducible at all.
func TestAttributionDeterministicUnderParallel(t *testing.T) {
	systems := []System{SystemBaseline, SystemAequitas, SystemD3}
	sweep := func(workers int) []string {
		bufs := make([]bytes.Buffer, len(systems))
		_, err := Sweep(len(systems), func(i int) SimConfig {
			cfg := attrTestConfig(systems[i], 7)
			cfg.Obs.AttributionCSV = &bufs[i]
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(bufs))
		for i := range bufs {
			out[i] = bufs[i].String()
		}
		return out
	}
	serial := sweep(1)
	parallel := sweep(runtime.GOMAXPROCS(0))
	for i := range systems {
		if serial[i] == "" {
			t.Errorf("%s: empty attribution CSV", systems[i])
		}
		if serial[i] != parallel[i] {
			t.Errorf("%s: attribution CSV differs between 1 and %d workers", systems[i], runtime.GOMAXPROCS(0))
		}
	}
}

// TestRunManyProgress: the progress callback fires once per
// configuration with monotonic Done counts.
func TestRunManyProgress(t *testing.T) {
	const n = 3
	var calls []Progress
	_, err := Sweep(n, func(i int) SimConfig {
		return obsTestConfig(int64(31 + i))
	}, ParallelOptions{
		Workers:    runtime.GOMAXPROCS(0),
		OnProgress: func(p Progress) { calls = append(calls, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress calls = %d, want %d", len(calls), n)
	}
	seen := map[int]bool{}
	for i, p := range calls {
		if p.Done != i+1 || p.Total != n {
			t.Errorf("call %d: done/total = %d/%d", i, p.Done, p.Total)
		}
		if p.Err != nil {
			t.Errorf("call %d: unexpected error %v", i, p.Err)
		}
		if seen[p.Index] {
			t.Errorf("config %d reported twice", p.Index)
		}
		seen[p.Index] = true
	}
}

// fig10AuditConfig is the §6.2 theory-validation setup (two senders, one
// receiver, CC off, periodic bursts) at QoSh-share x, the configuration
// whose measured queueing the paper compares against the closed-form
// bounds.
func fig10AuditConfig(system System, x float64) SimConfig {
	return SimConfig{
		System: system, Hosts: 3, Seed: 7,
		Duration: 60 * time.Millisecond, Warmup: 10 * time.Millisecond,
		QoSWeights: []float64{4, 1}, PerClassBufferBytes: -1,
		DisableCC: true, FixedWindow: 512, BurstPeriod: time.Millisecond,
		RTOMin: 500 * time.Millisecond,
		Traffic: []HostTraffic{{
			Hosts: []int{0, 1}, Dsts: []int{2},
			AvgLoad: 0.4, BurstLoad: 0.6, Arrival: ArrivalPeriodic,
			Classes: []TrafficClass{
				{Priority: PC, Share: x, FixedBytes: 1436},
				{Priority: BE, Share: 1 - x, FixedBytes: 1436},
			},
		}},
	}
}

// TestAuditCleanFig10: in the admissible region the auditor confirms the
// run respects the calculus bounds — zero violations. The slack absorbs
// the packet-vs-fluid gap plus second-hop burst shaping: the first
// congested hop clumps each class's departures, so the downstream hop
// sees residencies up to ~2x a small bound (empirically +31us on both
// classes here). 0.12 of a period gives margin without masking an
// inversion, which overshoots by multiples of the period.
func TestAuditCleanFig10(t *testing.T) {
	const x = 0.7
	bounds, err := QueueingBoundsUS([]float64{4, 1}, []float64{x, 1 - x}, 1.2, 0.8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig10AuditConfig(SystemBaseline, x)
	cfg.Obs.Audit = true
	cfg.Obs.AuditBoundsUS = bounds
	cfg.Obs.AuditSlackUS = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Audit
	if rep == nil {
		t.Fatal("no audit report")
	}
	if !rep.Ok() || rep.TotalViolations != 0 {
		t.Fatalf("admissible run flagged: %d violations, first: %+v",
			rep.TotalViolations, rep.Violations)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	for _, c := range rep.Classes {
		if c.N == 0 || c.Hops == 0 || c.MaxHopUS <= 0 {
			t.Errorf("class %v saw no traffic: %+v", c.Class, c)
		}
		if !c.Bounded {
			t.Errorf("class %v has no bound", c.Class)
		}
	}
}

// TestAuditFlagsOverAdmission: run the same fabric with everything
// admitted (baseline, p_admit = 1) at an inadmissible QoSh-share, audited
// against the bounds an operator provisioned for a much smaller share.
// The auditor must catch the over-admission.
func TestAuditFlagsOverAdmission(t *testing.T) {
	bounds, err := QueueingBoundsUS([]float64{4, 1}, []float64{0.3, 0.7}, 1.2, 0.8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig10AuditConfig(SystemBaseline, 0.9)
	cfg.Duration = 40 * time.Millisecond
	cfg.Obs.Audit = true
	cfg.Obs.AuditBoundsUS = bounds
	cfg.Obs.AuditSlackUS = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Audit
	if rep == nil {
		t.Fatal("no audit report")
	}
	if rep.Ok() || rep.TotalViolations == 0 {
		t.Fatal("over-admitted run passed the audit")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violations retained")
	}
	sawHigh := false
	for _, v := range rep.Violations {
		if v.ObservedUS <= v.BoundUS+rep.SlackUS {
			t.Errorf("violation not over bound+slack: %+v", v)
		}
		if v.RPC == 0 {
			t.Errorf("violation without an offending RPC id: %+v", v)
		}
		if v.Class == 0 {
			sawHigh = true
		}
	}
	if !sawHigh {
		t.Error("no QoSh violation despite QoSh over-admission")
	}
}

// TestDeriveAuditBounds covers the default bound derivation and its
// guard rails.
func TestDeriveAuditBounds(t *testing.T) {
	cfg := obsTestConfig(1)
	cfg.Obs.Audit = true
	if _, err := Run(cfg); err != nil {
		t.Fatalf("derived-bounds run failed: %v", err)
	}

	// mu >= rho cannot produce finite burst bounds: Run must fail with a
	// pointer at the explicit override.
	bad := obsTestConfig(1)
	bad.Traffic[0].BurstLoad = 0
	bad.Obs.Audit = true
	_, err := Run(bad)
	if err == nil || !strings.Contains(err.Error(), "AuditBoundsUS") {
		t.Fatalf("err = %v, want guidance to set Obs.AuditBoundsUS", err)
	}
}
