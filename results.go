package aequitas

import (
	"fmt"
	"math"
	"sort"

	"aequitas/internal/obs"
	"aequitas/internal/stats"
)

// Point is an (x, y) pair in plot-style outputs (CDFs).
type Point struct{ X, Y float64 }

// Series is a time series; T is in simulated seconds.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Final returns the last value, or def when empty.
func (s Series) Final(def float64) float64 {
	if len(s.V) == 0 {
		return def
	}
	return s.V[len(s.V)-1]
}

// MeanAfter returns the mean of values with T ≥ start, or NaN when the
// series has no samples after start — distinguishing "no data" from a
// true zero mean. Use MeanAfterOK when an explicit ok flag is clearer.
func (s Series) MeanAfter(start float64) float64 {
	m, ok := s.MeanAfterOK(start)
	if !ok {
		return math.NaN()
	}
	return m
}

// MeanAfterOK returns the mean of values with T ≥ start and whether any
// sample lay in that range.
func (s Series) MeanAfterOK(start float64) (mean float64, ok bool) {
	var sum float64
	n := 0
	for i, t := range s.T {
		if t >= start {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// MeanBetween returns the mean of values with start ≤ T < end, or NaN
// when no sample lies in that window — e.g. the pre-step and post-step
// admit probabilities around a load step.
func (s Series) MeanBetween(start, end float64) float64 {
	var sum float64
	n := 0
	for i, t := range s.T {
		if t >= start && t < end {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// SettlingTime returns the earliest time after which all values stay
// within ±tol of the final value (convergence time, §6.6).
func (s Series) SettlingTime(tol float64) float64 {
	ser := stats.Series{T: s.T, V: s.V}
	return ser.SettlingTime(tol)
}

// LatencySummary reports RNL statistics in microseconds.
type LatencySummary struct {
	N                                          int
	MeanUS, P50US, P90US, P99US, P999US, MaxUS float64
}

func (l LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
		l.N, l.MeanUS, l.P50US, l.P90US, l.P99US, l.P999US, l.MaxUS)
}

func summarizeUS(s *stats.Sample) LatencySummary {
	if s.N() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		N:      s.N(),
		MeanUS: s.Mean(),
		P50US:  s.Quantile(0.50),
		P90US:  s.Quantile(0.90),
		P99US:  s.Quantile(0.99),
		P999US: s.Quantile(0.999),
		MaxUS:  s.Max(),
	}
}

// Attribution is the per-class mean latency decomposition of completed
// RPCs, in microseconds. The components sum to RNLUS by construction
// (WireUS is the residual: serialization, propagation, and the ack
// path). Populated when ObsConfig enables attribution.
type Attribution struct {
	// N is the number of completed RPCs attributed on this class.
	N int
	// AdmitUS is time from RPC issue to the admission verdict.
	AdmitUS float64
	// SenderUS is host-side queueing between admission and the first
	// byte entering the NIC egress queue, excluding pacing stalls.
	SenderUS float64
	// TransportUS is the window/congestion-control span from first
	// enqueue to the tail byte's enqueue, excluding pacing stalls.
	TransportUS float64
	// PacingUS is time the message's head-of-line bytes sat blocked on
	// the transport's sub-packet pacing gate.
	PacingUS float64
	// NICUS is the tail packet's residency in the host NIC egress queue.
	NICUS float64
	// SwitchUS is the tail packet's summed residency in switch queues.
	SwitchUS float64
	// WireUS is the residual: serialization, propagation, and ack-path
	// time not captured by the other components.
	WireUS float64
	// RNLUS is the mean measured RPC network latency.
	RNLUS float64
}

// AuditViolation is one QoS-bound breach recorded by the online auditor:
// either a single packet's switch-queue residency ("hop") or a completed
// RPC's total fabric queueing ("rpc") exceeding the class bound plus
// slack.
type AuditViolation struct {
	RPC   uint64
	Class Class
	// Kind is "hop" or "rpc".
	Kind string
	// Link names the offending egress port for hop violations.
	Link                        string
	TimeUS, ObservedUS, BoundUS float64
}

// AuditClass is the auditor's per-class summary.
type AuditClass struct {
	Class Class
	// N counts completed RPCs audited on this class.
	N int
	// RNL tails of audited RPCs, in microseconds.
	RNLP99US, RNLP999US, RNLMaxUS float64
	// Per-RPC total fabric queueing tails.
	QueueP99US, QueueMaxUS float64
	// MaxHopUS is the worst single-packet queue residency observed.
	MaxHopUS float64
	// Hops counts audited packet dequeues.
	Hops int64
	// BoundUS is the class's queueing bound; Bounded reports whether one
	// was configured (classes beyond the bound list are observed but not
	// checked).
	BoundUS float64
	Bounded bool
	// Violations counts breaches on this class (hop and rpc kinds).
	Violations int
}

// AuditReport is the online QoS-bound auditor's verdict for one run.
type AuditReport struct {
	// SlackUS is the headroom that was added to every bound.
	SlackUS float64
	Classes []AuditClass
	// Violations retains the first ObsConfig.AuditMaxViolations breaches;
	// TotalViolations counts all of them.
	Violations      []AuditViolation
	TotalViolations int
}

// Ok reports whether the auditor ran and observed no bound violations.
func (r *AuditReport) Ok() bool { return r != nil && r.TotalViolations == 0 }

// attributionSummary converts the attributor's per-class summaries to the
// root result type.
func attributionSummary(a *obs.Attributor) map[Class]Attribution {
	out := make(map[Class]Attribution)
	for _, s := range a.Summaries() {
		out[Class(s.Class)] = Attribution{
			N:           s.N,
			AdmitUS:     s.AdmitUS,
			SenderUS:    s.SenderUS,
			TransportUS: s.TransportUS,
			PacingUS:    s.PacingUS,
			NICUS:       s.NICUS,
			SwitchUS:    s.SwitchUS,
			WireUS:      s.WireUS,
			RNLUS:       s.RNLUS,
		}
	}
	return out
}

// auditReport converts the auditor's report to the root result type.
func auditReport(a *obs.Auditor) *AuditReport {
	rep := a.Report()
	out := &AuditReport{
		SlackUS:         rep.SlackUS,
		TotalViolations: rep.TotalViolations,
	}
	for _, c := range rep.Classes {
		out.Classes = append(out.Classes, AuditClass{
			Class:      Class(c.Class),
			N:          c.N,
			RNLP99US:   c.RNLP99US,
			RNLP999US:  c.RNLP999US,
			RNLMaxUS:   c.RNLMaxUS,
			QueueP99US: c.QueueP99US,
			QueueMaxUS: c.QueueMaxUS,
			MaxHopUS:   c.MaxHopUS,
			Hops:       c.Hops,
			BoundUS:    c.BoundUS,
			Bounded:    c.Bounded,
			Violations: c.Violations,
		})
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, AuditViolation{
			RPC:        v.RPC,
			Class:      Class(v.Class),
			Kind:       v.Kind,
			Link:       v.Link,
			TimeUS:     v.TimeUS,
			ObservedUS: v.ObservedUS,
			BoundUS:    v.BoundUS,
		})
	}
	return out
}

// FaultRecord reports one applied fault event and, for degradation-onset
// events (link down, loss, host crash), how long each probe's p_admit
// took to re-converge afterwards.
type FaultRecord struct {
	// TimeS is the simulated time the injector applied the event.
	TimeS float64
	// Event is the fault kind name ("linkdown", "linkup", "loss",
	// "crash", "restart"); Target is the link name or "host:N".
	Event, Target string
	// Rate is the loss probability for "loss" events, 0 otherwise.
	Rate float64
	// PAdmitRecoveryS[i] is, for Results.Probes[i], the time from this
	// fault until the probe's admit probability climbed back to within
	// 10% of its pre-fault mean and stayed there until the next onset
	// fault (or the end of the run). NaN when it never re-converged; only
	// populated for onset events (linkdown, loss with rate > 0, crash).
	PAdmitRecoveryS []float64
}

// Onset reports whether the event degrades service (as opposed to
// repairing it), i.e. whether recovery is measured from it.
func (f FaultRecord) Onset() bool {
	return f.Event == "linkdown" || f.Event == "crash" || (f.Event == "loss" && f.Rate > 0)
}

// faultRecovery measures how long after faultS the series takes to climb
// back to within tol (relative) of its pre-fault mean and stay there
// until horizonS. The bound is one-sided — exceeding the pre-fault mean
// counts as recovered, since the baseline itself may still be depressed
// from an earlier fault. The pre-fault baseline is the mean over the
// last quarter of the series before the fault. Returns NaN when there is
// no usable baseline, no samples in [faultS, horizonS), or the series
// never settles back in band.
func faultRecovery(ser Series, faultS, horizonS, tol float64) float64 {
	if len(ser.T) == 0 || faultS <= ser.T[0] {
		return math.NaN()
	}
	pre := ser.MeanBetween(faultS-(faultS-ser.T[0])/4, faultS)
	if math.IsNaN(pre) {
		pre = ser.MeanBetween(ser.T[0], faultS)
	}
	if math.IsNaN(pre) {
		return math.NaN()
	}
	band := tol * math.Abs(pre)
	if band == 0 {
		band = tol
	}
	recovered := math.NaN() // first in-band time after the latest violation
	seen := false
	for i, t := range ser.T {
		if t < faultS || t >= horizonS {
			continue
		}
		seen = true
		if ser.V[i] < pre-band {
			recovered = math.NaN()
		} else if math.IsNaN(recovered) {
			recovered = t
		}
	}
	if !seen || math.IsNaN(recovered) {
		return math.NaN()
	}
	return recovered - faultS
}

// ProbeResult is the recorded series for one (src, dst, class) channel.
type ProbeResult struct {
	Src, Dst int
	Class    Class
	// AdmitProbability is p_admit over time (1.0 for non-Aequitas runs).
	AdmitProbability Series
	// ThroughputGbps is the channel's goodput on the probed class.
	ThroughputGbps Series
}

// Results reports one simulation run.
type Results struct {
	System System

	// RNLRun summarises RPC network latency by the class the RPC
	// actually ran on (downgraded RPCs count toward the scavenger
	// class), the per-QoS view of Figures 11, 12, 19, 21.
	RNLRun map[Class]LatencySummary
	// RNLPriority summarises RNL by the application's original priority
	// regardless of downgrades.
	RNLPriority map[Priority]LatencySummary

	// SLOMetBytesFraction is the byte-weighted fraction of each
	// priority's traffic (issued in the measurement window) that
	// completed within its original class's normalised SLO — Figure 22's
	// "traffic meeting SLOs". RPCs that never completed count as
	// misses.
	SLOMetBytesFraction map[Priority]float64
	// SLOMetCountFraction is the same, weighted per RPC.
	SLOMetCountFraction map[Priority]float64
	// SLOMetRunBytesFraction is the byte-weighted fraction of traffic
	// that ran on each SLO-carrying class and met that class's target —
	// the compliance of *admitted* traffic, the paper's correctness
	// criterion (§6.2).
	SLOMetRunBytesFraction map[Class]float64

	// InputMix is the byte share each class was requested at;
	// AdmittedMix is the byte share actually issued per class after
	// admission control (Figure 15's "Admitted").
	InputMix, AdmittedMix []float64

	Issued, Completed, Downgraded, Dropped int64
	// Terminated counts RPCs abandoned by deadline-based baselines.
	Terminated int64

	// EventsProcessed is the total number of discrete-event-simulator
	// events the run fired; PacketsDelivered counts packets transmitted on
	// last-hop downlinks. Both cover the whole run (warmup and drain
	// included) and exist for the bench harness's events/sec and
	// packets/sec throughput metrics.
	EventsProcessed  int64
	PacketsDelivered int64

	// GoodputFraction is completed payload bytes over offered payload
	// bytes in the measurement window (Figure 22's network utilisation),
	// clamped to 1 for reporting. RawGoodputRatio is the same ratio
	// unclamped; a value above 1 indicates a measurement-accounting error
	// (completions credited outside the offered-byte window).
	GoodputFraction float64
	RawGoodputRatio float64
	// AvgDownlinkUtilization is the mean busy fraction of switch egress
	// ports during the measurement window.
	AvgDownlinkUtilization float64

	// Attribution is the per-class mean latency decomposition; nil unless
	// ObsConfig enables attribution.
	Attribution map[Class]Attribution
	// Audit is the QoS-bound auditor's verdict; nil unless ObsConfig.Audit
	// is set.
	Audit *AuditReport

	Probes []ProbeResult

	// Faults lists the fault events applied during the run with per-probe
	// p_admit recovery times; empty unless SimConfig.Faults was set.
	Faults []FaultRecord
	// GoodputAvailability is the fraction of coarse time bins across the
	// measurement window whose completed bytes reached at least half the
	// per-bin mean — a crude "what fraction of the run delivered useful
	// goodput" availability figure. Zero unless a fault plan was active.
	GoodputAvailability float64
	// Client-side robustness counters summed over all hosts' RPC stacks;
	// all zero unless SimConfig.Retry / Faults enable the tracked path.
	TimedOut, Retried, Hedged, HedgeWins int64
	// FailedRPCs exhausted their retry budget; CrashLostRPCs were in
	// flight on a host when it crashed; NotIssuedRPCs were generated while
	// their source host was down.
	FailedRPCs, CrashLostRPCs, NotIssuedRPCs int64

	// OutstandingHighMed / OutstandingLow are CDFs of per-switch-port
	// outstanding RPC counts for the SLO classes and the scavenger class
	// (Figure 13); empty unless TrackOutstanding was set.
	OutstandingHighMed, OutstandingLow []Point

	// rnl retains the raw per-class samples for quantile queries.
	rnlRun map[Class]*stats.Sample
}

// RNLQuantileUS returns the q-quantile (0..1) of RNL in microseconds for
// RPCs that ran on class c, or 0 when no samples exist.
func (r *Results) RNLQuantileUS(c Class, q float64) float64 {
	s, ok := r.rnlRun[c]
	if !ok || s.N() == 0 {
		return 0
	}
	return s.Quantile(q)
}

// Classes returns the run classes with samples, sorted.
func (r *Results) Classes() []Class {
	var cs []Class
	for c := range r.RNLRun {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}
