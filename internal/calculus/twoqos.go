// Package calculus implements the network-calculus analysis of §4 and
// Appendix B of the Aequitas paper: closed-form worst-case WFQ delay bounds
// for two QoS classes, a fluid (Generalized Processor Sharing) simulator
// that extends the analysis to an arbitrary number of classes, the
// admissible-region solver of §4.2, and the guaranteed-admission bound of
// §5.2.
//
// All quantities are normalized exactly as in the paper: the arrival
// pattern of Figure 7 repeats with period one unit of time, the link rate
// is 1, traffic arrives in a burst of instantaneous rate ρ ("burst load")
// for a duration µ/ρ so that the average load over the period is µ < 1, and
// delays are expressed as a fraction of the period ("normalized delay
// bound").
package calculus

import (
	"fmt"
	"math"
)

// TwoQoS holds the parameters of the closed-form 2-class analysis
// (Appendix B.2). Phi is the ratio of WFQ weights QoSh:QoSl (φ:1), Rho the
// burst load ρ > 1, and Mu the average load µ ∈ (0, 1].
type TwoQoS struct {
	Phi float64 // weight ratio φ (QoSh weight with QoSl weight 1)
	Rho float64 // burst load ρ (> 1 means overload during the burst)
	Mu  float64 // average load µ
}

// Validate reports an error if the parameters are outside the model's
// domain.
func (p TwoQoS) Validate() error {
	switch {
	case p.Phi <= 0:
		return fmt.Errorf("calculus: φ = %v, must be positive", p.Phi)
	case p.Rho <= 1:
		return fmt.Errorf("calculus: ρ = %v, model requires burst overload ρ > 1", p.Rho)
	case p.Mu <= 0 || p.Mu > 1:
		return fmt.Errorf("calculus: µ = %v, must be in (0, 1]", p.Mu)
	case p.Mu >= p.Rho:
		return fmt.Errorf("calculus: µ = %v must be below ρ = %v", p.Mu, p.Rho)
	}
	return nil
}

// DelayHigh returns the worst-case normalized delay of QoSh as a function
// of the QoSh-share x ∈ (0, 1) — Equation 1 of the paper, with the five
// cases evaluated in domain order so that empty subdomains are skipped
// naturally.
func (p TwoQoS) DelayHigh(x float64) float64 {
	phi, rho, mu := p.Phi, p.Rho, p.Mu
	share := phi / (phi + 1) // guaranteed bandwidth fraction g_h/r
	switch {
	case x <= 0:
		return 0
	case x <= share/rho:
		// Case 1: arrival rate ρx within guaranteed rate — no delay.
		return 0
	case x <= share:
		// Case 2: both classes backlogged, QoSh finishes first.
		return mu * ((phi+1)/phi*x - 1/rho)
	case x <= math.Min(1-1/((phi+1)*rho), 1/rho):
		// Case 3: both backlogged, QoSl finishes first (priority
		// inversion region).
		return mu * (1 - x) * (phi + 1 - phi/(rho*x))
	case x <= 1/rho:
		// Case 4: QoSl within its guarantee; only QoSh delayed.
		return mu * (1/rho - 1/(rho*rho)) / x
	default:
		// Case 5: QoSh arrival rate alone exceeds the line rate.
		return mu * (1 - 1/rho)
	}
}

// DelayLow returns the worst-case normalized delay of QoSl as a function of
// the QoSh-share x — Equation 8 (Appendix B.2), symmetric to DelayHigh.
func (p TwoQoS) DelayLow(x float64) float64 {
	phi, rho, mu := p.Phi, p.Rho, p.Mu
	share := phi / (phi + 1)
	// The case domains carry explicit lower bounds (not implied by simple
	// fall-through): when φ/(φ+1) < 1−1/ρ, cases 2 and 3 are empty and
	// case 4 takes over directly after case 1.
	switch {
	case x >= 1:
		return 0
	case x <= math.Min(1-1/rho, share):
		// Case 1: QoSl saturated by the rest of the traffic: full burst
		// delay.
		return mu * (1 - 1/rho)
	case x > 1-1/rho && x <= math.Max(share/rho, 1-1/rho):
		// Case 2: symmetric to DelayHigh case 4.
		return mu * (1/rho - 1/(rho*rho)) / (1 - x)
	case x > math.Max(share/rho, 1-1/rho) && x <= share:
		// Case 3: both backlogged, QoSh finishes first.
		return mu * x / phi * (phi + 1 - 1/(rho*(1-x)))
	case x > share && x <= 1-1/((phi+1)*rho):
		// Case 4: both backlogged, QoSl finishes first.
		return mu * ((phi+1)*(1-x) - 1/rho)
	default:
		// Case 5: QoSl arrival rate within its guaranteed rate — no
		// delay.
		return 0
	}
}

// InversionPoint returns the QoSh-share beyond which priority inversion
// occurs (Lemma 1): x = φ/(φ+1), the boundary of the admissible region when
// both classes exceed their guaranteed rates.
func (p TwoQoS) InversionPoint() float64 { return p.Phi / (p.Phi + 1) }

// ZeroDelayShare returns the largest QoSh-share with zero worst-case QoSh
// delay (the Case 1 boundary): φ/(φ+1) · 1/ρ. As φ → ∞ this approaches
// 1/ρ (Lemma 2).
func (p TwoQoS) ZeroDelayShare() float64 { return p.Phi / (p.Phi + 1) / p.Rho }

// MaxShareForDelay returns the largest QoSh-share x such that
// DelayHigh(x) ≤ bound, found by scanning DelayHigh over (0, 1). DelayHigh
// is not monotone in general (it can dip after the inversion point), so the
// scan returns the largest x in the *contiguous admissible prefix*: the
// largest x such that DelayHigh(y) ≤ bound for all y ≤ x. This matches how
// an operator would provision: admitted share grows from zero until the
// bound is first violated.
func (p TwoQoS) MaxShareForDelay(bound float64) float64 {
	const steps = 1 << 16
	last := 0.0
	for i := 1; i <= steps; i++ {
		x := float64(i) / float64(steps+1)
		if p.DelayHigh(x) > bound+1e-12 {
			return last
		}
		last = x
	}
	return last
}

// InfinitePhiDelayHigh is the φ→∞ limit of Equation 1 (Lemma 2, Equation
// 4): the single-QoS behaviour where the only control left is the amount of
// admitted traffic.
func InfinitePhiDelayHigh(x, rho, mu float64) float64 {
	switch {
	case x <= 1/rho:
		return 0
	case x <= 1:
		return mu * (x - 1/rho)
	default:
		return mu * (1 - 1/rho)
	}
}

// GuaranteedShare returns the lower bound of §5.2 on the average traffic
// rate admitted on class i under Aequitas, as a fraction of line rate:
// (φi/Σφ)·(µ/ρ). Traffic below this share never sees delay, so it is
// always admitted regardless of the SLO.
func GuaranteedShare(weights []float64, i int, mu, rho float64) float64 {
	if i < 0 || i >= len(weights) || rho <= 0 {
		return 0
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return 0
	}
	return weights[i] / sum * mu / rho
}
