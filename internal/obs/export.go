package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"aequitas/internal/stats"
)

// SnapshotSchema versions the /snapshot JSON document.
const SnapshotSchema = "aequitas.snapshot/v1"

// Snapshot is one published view of a running (or finished) simulation:
// monotone counters, point-in-time gauges, and latency histograms. It is
// immutable once published — the simulation builds a fresh Snapshot per
// pump tick and HTTP handlers render whichever one is latest, so the hot
// path never blocks on a reader.
type Snapshot struct {
	Schema   string         `json:"schema"`
	Label    string         `json:"label,omitempty"`
	SimTimeS float64        `json:"sim_time_s"`
	Final    bool           `json:"final,omitempty"`
	Counters []NamedValue   `json:"counters,omitempty"`
	Gauges   []NamedValue   `json:"gauges,omitempty"`
	Hists    []HistSnapshot `json:"hists,omitempty"`
}

// NamedValue is one counter or gauge sample. Counter names must be
// Prometheus-safe ([a-z0-9_]); gauge names keep the registry's dotted
// convention and are exported as the "name" label of aequitas_gauge.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnapshot is a frozen histogram: cumulative bucket counts over
// finite upper bounds plus exact count/sum. Name must be
// Prometheus-safe; the optional label pair distinguishes series of one
// metric (e.g. class="QoSh").
type HistSnapshot struct {
	Name     string       `json:"name"`
	LabelKey string       `json:"label_key,omitempty"`
	LabelVal string       `json:"label_val,omitempty"`
	Count    int64        `json:"count"`
	Sum      float64      `json:"sum"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one cumulative bucket: observations ≤ Upper.
type HistBucket struct {
	Upper float64 `json:"upper"`
	Count int64   `json:"count"`
}

// SnapHist freezes a stats.Hist into a HistSnapshot. The overflow
// bucket's infinite bound is clamped to the exact observed maximum, so
// the snapshot is JSON-safe; the Prometheus renderer supplies the
// trailing le="+Inf" series from Count.
func SnapHist(name, labelKey, labelVal string, h *stats.Hist) HistSnapshot {
	hs := HistSnapshot{Name: name, LabelKey: labelKey, LabelVal: labelVal}
	if h == nil {
		return hs
	}
	hs.Count = h.N()
	hs.Sum = h.Sum()
	var cum int64
	h.Buckets(func(upper float64, count int64) {
		cum += count
		if math.IsInf(upper, 1) {
			upper = h.Max()
		}
		hs.Buckets = append(hs.Buckets, HistBucket{Upper: upper, Count: cum})
	})
	return hs
}

// Exporter publishes snapshots from a simulation loop and serves them
// over HTTP. Publication is a pointer swap under a mutex; readers render
// from the snapshot they grabbed, so a slow scraper never stalls the
// simulation and the simulation never tears a scrape.
type Exporter struct {
	mu   sync.RWMutex
	snap *Snapshot
}

// NewExporter returns an Exporter with no snapshot yet.
func NewExporter() *Exporter { return &Exporter{} }

// Publish makes s the snapshot served to subsequent readers. The caller
// must not mutate s afterwards.
func (e *Exporter) Publish(s *Snapshot) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.snap = s
	e.mu.Unlock()
}

// Snapshot returns the latest published snapshot, or nil.
func (e *Exporter) Snapshot() *Snapshot {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snap
}

// Handler returns the export mux: Prometheus text on /metrics, the raw
// snapshot JSON on /snapshot, and the standard pprof endpoints under
// /debug/pprof/.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := e.Snapshot()
		if s == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, s)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s := e.Snapshot()
		if s == nil {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promPrefix namespaces every exported metric.
const promPrefix = "aequitas_"

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as <prefix><name>, gauges as
// aequitas_gauge{name="<dotted name>"}, histograms with cumulative
// _bucket{le=...} series ending in le="+Inf", plus _sum and _count.
func WriteProm(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriterSize(w, 1<<15)
	fmt.Fprintf(bw, "# TYPE %ssim_time_seconds gauge\n%ssim_time_seconds %s\n",
		promPrefix, promPrefix, promFloat(s.SimTimeS))
	for _, c := range s.Counters {
		name := promPrefix + promSanitize(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %s\n", name, name, promFloat(c.Value))
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(bw, "# TYPE %sgauge gauge\n", promPrefix)
		for _, g := range s.Gauges {
			fmt.Fprintf(bw, "%sgauge{name=%q} %s\n", promPrefix, g.Name, promFloat(g.Value))
		}
	}
	lastHist := ""
	for _, h := range s.Hists {
		name := promPrefix + promSanitize(h.Name)
		if name != lastHist {
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			lastHist = name
		}
		label := func(le string) string {
			if h.LabelKey == "" {
				if le == "" {
					return ""
				}
				return `{le="` + le + `"}`
			}
			l := h.LabelKey + `="` + h.LabelVal + `"`
			if le == "" {
				return "{" + l + "}"
			}
			return "{" + l + `,le="` + le + `"}`
		}
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket%s %d\n", name, label(promFloat(b.Upper)), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket%s %d\n", name, label("+Inf"), h.Count)
		fmt.Fprintf(bw, "%s_sum%s %s\n", name, label(""), promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", name, label(""), h.Count)
	}
	return bw.Flush()
}

// promFloat formats a value the way Prometheus parsers expect.
func promFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSanitize maps a metric name onto the Prometheus charset
// [a-zA-Z_][a-zA-Z0-9_]*.
func promSanitize(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// ValidatePromText checks a Prometheus text-format exposition: every
// non-comment line is `name[{labels}] value`, names are legal, values
// parse, every sampled metric carries a preceding # TYPE line, histogram
// bucket series are cumulative and end with le="+Inf" matching _count.
// It returns the number of sample lines.
func ValidatePromText(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	typed := make(map[string]string)
	type histState struct {
		lastCum int64
		infSeen bool
		infCum  int64
		count   int64
		hasCnt  bool
	}
	hists := make(map[string]*histState) // keyed by metric + non-le labels
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return samples, fmt.Errorf("obs: prom text: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return samples, fmt.Errorf("obs: prom text: line %d: bad value %q", lineNo, value)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if typed[base] == "" {
			return samples, fmt.Errorf("obs: prom text: line %d: %s has no preceding # TYPE", lineNo, name)
		}
		if typed[base] == "histogram" {
			le, rest := extractLE(labels)
			key := base + "|" + rest
			st, ok := hists[key]
			if !ok {
				st = &histState{}
				hists[key] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return samples, fmt.Errorf("obs: prom text: line %d: bucket without le label", lineNo)
				}
				cum := int64(v)
				if st.infSeen {
					return samples, fmt.Errorf("obs: prom text: line %d: bucket after le=\"+Inf\" for %s", lineNo, key)
				}
				if cum < st.lastCum {
					return samples, fmt.Errorf("obs: prom text: line %d: bucket counts not cumulative for %s (%d after %d)",
						lineNo, key, cum, st.lastCum)
				}
				st.lastCum = cum
				if le == "+Inf" {
					st.infSeen = true
					st.infCum = cum
				}
			case strings.HasSuffix(name, "_count"):
				st.count = int64(v)
				st.hasCnt = true
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for key, st := range hists {
		if !st.infSeen {
			return samples, fmt.Errorf("obs: prom text: histogram %s missing le=\"+Inf\" bucket", key)
		}
		if st.hasCnt && st.count != st.infCum {
			return samples, fmt.Errorf("obs: prom text: histogram %s _count %d != +Inf bucket %d", key, st.count, st.infCum)
		}
	}
	return samples, nil
}

// splitPromSample parses `name[{labels}] value` (no timestamp support —
// the simulator never emits one).
func splitPromSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", "", "", fmt.Errorf("no value")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if name == "" || !promNameOK(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", "", fmt.Errorf("bad sample %q", line)
	}
	return name, labels, rest, nil
}

// promNameOK reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func promNameOK(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return len(name) > 0
}

// extractLE splits a label set into the le value and the remaining
// labels, sorted so grouping keys are stable.
func extractLE(labels string) (le, rest string) {
	if labels == "" {
		return "", ""
	}
	var others []string
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			others = append(others, part)
			continue
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			le = v
		} else {
			others = append(others, part)
		}
	}
	sort.Strings(others)
	return le, strings.Join(others, ",")
}
