package obs

import (
	"strconv"

	"aequitas/internal/sim"
	"aequitas/internal/stats"
)

// TailTracker turns completed-RPC latencies into a windowed tail
// time-series: per (destination, run-class) channel it accumulates RNL
// observations into a log-linear histogram and, on every metrics-registry
// tick, emits that window's p50/p90/p99/p99.9 (plus the window count)
// before resetting the histograms. The window is therefore the registry's
// sampling interval (ObsConfig.MetricsEvery).
//
// Emitted metric names follow the registry's dotted-family convention:
//
//	tail.d<dst>.q<class>.n
//	tail.d<dst>.q<class>.p50_us ... .p999_us
//
// Windows with no completions for a channel emit nothing (empty CSV
// cells), so quiet channels stay cheap and visibly quiet.
//
// Each run owns its tracker and the observation order is the run's
// deterministic completion order, so the resulting CSV columns are
// byte-identical for a fixed SimConfig at any sweep worker count.
type TailTracker struct {
	series map[tailKey]*stats.Hist
	// order keeps the emit order deterministic: keys sorted by (dst,
	// class), maintained on insert.
	order []tailKey
	// scratch name buffer reused across emissions.
	name []byte
}

type tailKey struct {
	dst   int32
	class int16
}

// tailQuantiles are the emitted quantiles and their metric-name suffixes.
var tailQuantiles = []struct {
	suffix string
	q      float64
}{
	{".p50_us", 0.50},
	{".p90_us", 0.90},
	{".p99_us", 0.99},
	{".p999_us", 0.999},
}

// NewTailTracker returns an empty tracker.
func NewTailTracker() *TailTracker {
	return &TailTracker{series: make(map[tailKey]*stats.Hist)}
}

// Enabled reports whether the tracker records observations; a nil
// tracker is the disabled, zero-overhead path.
func (t *TailTracker) Enabled() bool { return t != nil }

// Observe records one completed RPC's network latency (µs) on the (dst,
// class) channel. Allocation happens only on a channel's first
// observation (histogram construction); the steady state is a map lookup
// plus a zero-alloc histogram record.
func (t *TailTracker) Observe(dst, class int, rnlUS float64) {
	if t == nil {
		return
	}
	k := tailKey{dst: int32(dst), class: int16(class)}
	h, ok := t.series[k]
	if !ok {
		h = stats.NewHist()
		t.series[k] = h
		t.insertOrdered(k)
	}
	h.Record(rnlUS)
}

// insertOrdered keeps order sorted by (dst, class).
func (t *TailTracker) insertOrdered(k tailKey) {
	i := len(t.order)
	for i > 0 {
		p := t.order[i-1]
		if p.dst < k.dst || (p.dst == k.dst && p.class < k.class) {
			break
		}
		i--
	}
	t.order = append(t.order, tailKey{})
	copy(t.order[i+1:], t.order[i:])
	t.order[i] = k
}

// Sampler returns the registry sampler that closes each window: it emits
// every channel's windowed count and tail quantiles in deterministic
// (dst, class) order, then resets the histograms so the next tick starts
// a fresh window.
func (t *TailTracker) Sampler() Sampler {
	return func(now sim.Time, emit func(string, float64)) {
		for _, k := range t.order {
			h := t.series[k]
			if h.N() == 0 {
				continue
			}
			base := t.appendKey(k)
			emit(string(append(base, ".n"...)), float64(h.N()))
			for _, tq := range tailQuantiles {
				emit(string(append(base, tq.suffix...)), h.Quantile(tq.q))
			}
			h.Reset()
		}
	}
}

// appendKey renders "tail.d<dst>.q<class>" into the reusable scratch
// buffer. Callers must copy (string conversion does) before the next call.
func (t *TailTracker) appendKey(k tailKey) []byte {
	b := append(t.name[:0], "tail.d"...)
	b = strconv.AppendInt(b, int64(k.dst), 10)
	b = append(b, ".q"...)
	b = strconv.AppendInt(b, int64(k.class), 10)
	t.name = b
	return b
}
