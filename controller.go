package aequitas

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// Class identifies a network QoS level; 0 is the highest. The lowest
// configured class is the scavenger: it carries best-effort and
// downgraded traffic and has no SLO.
type Class = qos.Class

// The standard three levels.
const (
	High   = qos.High
	Medium = qos.Medium
	Low    = qos.Low
)

// Priority is an application-level RPC priority class.
type Priority = qos.Priority

// The paper's three priority classes: performance-critical, non-critical,
// best-effort.
const (
	PC = qos.PC
	NC = qos.NC
	BE = qos.BE
)

// SLO defines one QoS class's RPC network-latency objective.
type SLO struct {
	// Target is the RNL objective for an RPC of ReferenceBytes. The
	// controller normalises it per MTU internally, so larger RPCs get
	// proportionally larger absolute targets.
	Target time.Duration
	// ReferenceBytes is the RPC size Target refers to. Zero means Target
	// is already the per-MTU budget.
	ReferenceBytes int64
	// Percentile is the tail the SLO is defined at (default 99.9). It
	// controls how conservatively the admit probability is raised.
	Percentile float64
}

// perMTU converts the SLO to the per-MTU target Algorithm 1 consumes.
func (s SLO) perMTU() sim.Duration {
	t := sim.FromStd(s.Target)
	if s.ReferenceBytes > 0 {
		t = t / sim.Duration(netsim.MTUsFor(s.ReferenceBytes))
	}
	return t
}

// ControllerConfig parameterises an AdmissionController.
type ControllerConfig struct {
	// SLOs lists the objectives for every class except the lowest, from
	// the highest class down. len(SLOs)+1 is the number of QoS levels.
	SLOs []SLO
	// Alpha is the additive increment of the admit probability (default
	// 0.01).
	Alpha float64
	// Beta is the multiplicative decrement per SLO miss per MTU of RPC
	// size (default 0.01).
	Beta float64
	// Floor is the admit probability's lower bound, preventing
	// starvation (default 0.01).
	Floor float64
	// Now supplies timestamps (default time.Now), injectable for tests.
	Now func() time.Time
	// Seed seeds the probabilistic admission draw; 0 uses a fixed
	// default.
	Seed int64
}

// Decision is the controller's verdict for one RPC.
type Decision struct {
	// Class is the QoS level to issue the RPC on.
	Class Class
	// Downgraded reports that the RPC was demoted to the scavenger
	// class. Applications receive this explicitly (Algorithm 1 lines
	// 10-11) and may react by prioritising their most critical RPCs.
	Downgraded bool
}

// AdmissionController is the Aequitas algorithm packaged for a real RPC
// stack: one instance per sending process. It is safe for concurrent use.
//
// Usage per RPC: call Admit with the destination and the requested class,
// issue the RPC on the returned class (e.g. via the DSCP field), and on
// completion call Observe with the measured RPC network latency.
type AdmissionController struct {
	mu    sync.Mutex
	inner *core.Controller
	rng   *rand.Rand
	now   func() time.Time
	epoch time.Time
	peers map[string]int
}

// NewController validates cfg and builds a controller.
func NewController(cfg ControllerConfig) (*AdmissionController, error) {
	if len(cfg.SLOs) == 0 {
		return nil, fmt.Errorf("aequitas: at least one SLO class required")
	}
	levels := len(cfg.SLOs) + 1
	cc := core.Config{
		Levels:            levels,
		LatencyTargets:    make([]sim.Duration, levels),
		TargetPercentiles: make([]float64, levels),
		Alpha:             cfg.Alpha,
		Beta:              cfg.Beta,
		Floor:             cfg.Floor,
	}
	if cc.Alpha == 0 {
		cc.Alpha = 0.01
	}
	if cc.Beta == 0 {
		cc.Beta = 0.01
	}
	if cc.Floor == 0 {
		cc.Floor = 0.01
	}
	for i, s := range cfg.SLOs {
		cc.LatencyTargets[i] = s.perMTU()
		cc.TargetPercentiles[i] = s.Percentile
		if cc.TargetPercentiles[i] == 0 {
			cc.TargetPercentiles[i] = 99.9
		}
	}
	inner, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &AdmissionController{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		now:   now,
		epoch: now(),
		peers: make(map[string]int),
	}, nil
}

func (c *AdmissionController) peerID(peer string) int {
	id, ok := c.peers[peer]
	if !ok {
		id = len(c.peers)
		c.peers[peer] = id
	}
	return id
}

func (c *AdmissionController) simNow() sim.Time {
	return sim.FromStd(c.now().Sub(c.epoch))
}

// Admit decides the QoS class for an RPC of sizeBytes toward peer that
// requested the given class.
func (c *AdmissionController) Admit(peer string, requested Class, sizeBytes int64) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.inner.AdmitAt(c.rng.Float64(), c.peerID(peer), requested, netsim.MTUsFor(sizeBytes))
	return Decision{Class: d.Class, Downgraded: d.Downgraded}
}

// Observe feeds back one completed RPC's measured network latency on the
// class it actually ran on.
func (c *AdmissionController) Observe(peer string, ran Class, rnl time.Duration, sizeBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.ObserveAt(c.simNow(), c.peerID(peer), ran, sim.FromStd(rnl), netsim.MTUsFor(sizeBytes))
}

// AdmitProbability reports the current admit probability toward peer on
// the given class, for monitoring.
func (c *AdmissionController) AdmitProbability(peer string, class Class) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.AdmitProbability(c.peerID(peer), class)
}
