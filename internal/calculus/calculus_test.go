package calculus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTwoQoSValidate(t *testing.T) {
	good := TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []TwoQoS{
		{Phi: 0, Rho: 1.2, Mu: 0.8},
		{Phi: 4, Rho: 1.0, Mu: 0.8},
		{Phi: 4, Rho: 1.2, Mu: 0},
		{Phi: 4, Rho: 1.2, Mu: 1.3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

// The worked example at the end of Appendix B.2: φ=4, ρ=2, µ=0.8 collapses
// to three cases: 0 for x≤0.4, x−0.4 for 0.4<x≤0.8, and 0.4 beyond.
func TestDelayHighWorkedExample(t *testing.T) {
	p := TwoQoS{Phi: 4, Rho: 2, Mu: 0.8}
	cases := []struct{ x, want float64 }{
		{0.1, 0}, {0.4, 0}, {0.5, 0.1}, {0.6, 0.2}, {0.8, 0.4},
		{0.85, 0.4}, {0.99, 0.4},
	}
	for _, c := range cases {
		if got := p.DelayHigh(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("DelayHigh(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// The toy example of Appendix B.2 (Figure 26): 100 Gbps link, 4:1 weights,
// 50/50 split, 120 Gbps burst, 80% average load → QoSl delay bound 0.2222
// of the period, QoSh zero.
func TestToyExampleFigure26(t *testing.T) {
	p := TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	if got := p.DelayHigh(0.5); got != 0 {
		t.Errorf("QoSh delay = %v, want 0 (within guaranteed rate)", got)
	}
	want := 0.8 * (1/1.2 - 1/(1.2*1.2)) / 0.5
	if got := p.DelayLow(0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("QoSl delay = %v, want %v", got, want)
	}
}

// Figure 8's parameters: delays of the two classes must cross exactly at
// the priority-inversion point x = φ/(φ+1).
func TestPriorityInversionPoint(t *testing.T) {
	p := TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	x := p.InversionPoint()
	if math.Abs(x-0.8) > 1e-12 {
		t.Fatalf("InversionPoint = %v, want 0.8", x)
	}
	dh, dl := p.DelayHigh(x), p.DelayLow(x)
	if math.Abs(dh-dl) > 1e-9 {
		t.Errorf("delays at inversion point differ: h=%v l=%v", dh, dl)
	}
	// Before the inversion point QoSh is strictly better; after, worse.
	if p.DelayHigh(x-0.05) >= p.DelayLow(x-0.05) {
		t.Error("no admissible gap before inversion point")
	}
	if p.DelayHigh(x+0.03) <= p.DelayLow(x+0.03) {
		t.Error("inversion did not occur after the boundary")
	}
}

func TestZeroDelayShare(t *testing.T) {
	p := TwoQoS{Phi: 4, Rho: 1.2, Mu: 0.8}
	x := p.ZeroDelayShare()
	if math.Abs(x-0.8/1.2) > 1e-12 {
		t.Fatalf("ZeroDelayShare = %v", x)
	}
	if got := p.DelayHigh(x); got != 0 {
		t.Errorf("DelayHigh at boundary = %v, want 0", got)
	}
	if got := p.DelayHigh(x + 1e-6); got <= 0 {
		t.Errorf("DelayHigh just past boundary = %v, want > 0", got)
	}
}

// Lemma 2: as φ grows, the zero-delay boundary approaches 1/ρ and the
// delay curve approaches the φ→∞ limit of Equation 4.
func TestLemma2InfinitePhiLimit(t *testing.T) {
	rho, mu := 1.5, 0.8
	p := TwoQoS{Phi: 1e9, Rho: rho, Mu: mu}
	for _, x := range []float64{0.1, 0.3, 0.5, 1 / rho, 0.7, 0.9} {
		got := p.DelayHigh(x)
		want := InfinitePhiDelayHigh(x, rho, mu)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("x=%v: DelayHigh=%v, limit=%v", x, got, want)
		}
	}
	if got := p.ZeroDelayShare(); math.Abs(got-1/rho) > 1e-6 {
		t.Errorf("ZeroDelayShare = %v, want ~%v", got, 1/rho)
	}
}

// Both closed-form curves must be continuous in x: the case boundaries
// agree. This exercises every pair of adjacent cases across parameter
// settings with different empty-domain structure.
func TestClosedFormContinuity(t *testing.T) {
	params := []TwoQoS{
		{Phi: 4, Rho: 1.2, Mu: 0.8},
		{Phi: 4, Rho: 2, Mu: 0.8},
		{Phi: 8, Rho: 1.4, Mu: 0.9},
		{Phi: 1, Rho: 3, Mu: 0.5},
		{Phi: 50, Rho: 1.4, Mu: 0.8},
		{Phi: 0.5, Rho: 1.1, Mu: 0.95},
	}
	const step = 1e-4
	for _, p := range params {
		for x := step; x < 1; x += step {
			dh0, dh1 := p.DelayHigh(x-step), p.DelayHigh(x)
			if math.Abs(dh1-dh0) > 0.02 {
				t.Fatalf("%+v: DelayHigh jump at x=%v: %v -> %v", p, x, dh0, dh1)
			}
			dl0, dl1 := p.DelayLow(x-step), p.DelayLow(x)
			if math.Abs(dl1-dl0) > 0.02 {
				t.Fatalf("%+v: DelayLow jump at x=%v: %v -> %v", p, x, dl0, dl1)
			}
		}
	}
}

// Central validation (mirrors the paper's Figure 10): the fluid simulator
// must reproduce the closed-form worst-case delays for two QoS classes.
func TestFluidMatchesClosedForm(t *testing.T) {
	params := []TwoQoS{
		{Phi: 4, Rho: 1.2, Mu: 0.8},
		{Phi: 4, Rho: 2, Mu: 0.8},
		{Phi: 8, Rho: 1.4, Mu: 0.9},
		{Phi: 2, Rho: 1.6, Mu: 0.6},
		{Phi: 50, Rho: 1.4, Mu: 0.8},
	}
	for _, p := range params {
		for x := 0.02; x < 0.99; x += 0.02 {
			d, err := WorstCaseDelays([]float64{p.Phi, 1}, []float64{x, 1 - x}, p.Rho, p.Mu)
			if err != nil {
				t.Fatal(err)
			}
			wantH, wantL := p.DelayHigh(x), p.DelayLow(x)
			if math.Abs(d[0]-wantH) > 1e-6 {
				t.Errorf("%+v x=%.2f: fluid QoSh delay %v, closed form %v", p, x, d[0], wantH)
			}
			if math.Abs(d[1]-wantL) > 1e-6 {
				t.Errorf("%+v x=%.2f: fluid QoSl delay %v, closed form %v", p, x, d[1], wantL)
			}
		}
	}
}

// Property test over random parameters: fluid and closed form agree.
func TestFluidMatchesClosedFormProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		p := TwoQoS{
			Phi: 0.5 + float64(a%64),
			Rho: 1.05 + float64(b%200)/100, // 1.05 .. 3.05
			Mu:  0.3 + float64(c%70)/100,   // 0.3 .. 0.99
		}
		x := 0.01 + 0.98*float64(d)/65535
		delays, err := WorstCaseDelays([]float64{p.Phi, 1}, []float64{x, 1 - x}, p.Rho, p.Mu)
		if err != nil {
			return false
		}
		return math.Abs(delays[0]-p.DelayHigh(x)) < 1e-6 &&
			math.Abs(delays[1]-p.DelayLow(x)) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Conservation: the fluid system must serve exactly what arrived.
func TestFluidConservation(t *testing.T) {
	fl := Fluid{
		Weights: []float64{8, 4, 1},
		Phases:  BurstPattern([]float64{0.5, 0.3, 0.2}, 1.4, 0.8),
	}
	res, err := fl.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Arrived {
		if math.Abs(res.Arrived[i]-res.Served[i]) > 1e-9 {
			t.Errorf("class %d: arrived %v served %v", i, res.Arrived[i], res.Served[i])
		}
	}
	var tot float64
	for _, a := range res.Arrived {
		tot += a
	}
	if math.Abs(tot-0.8) > 1e-9 {
		t.Errorf("total arrivals %v, want µ=0.8", tot)
	}
	if res.DrainTime > 1+1e-9 {
		t.Errorf("drain time %v exceeds the period", res.DrainTime)
	}
}

// Three-QoS structure of Figure 9: with weights 8:4:1 the higher class has
// zero delay at small shares, delays are ordered in the admissible region,
// and increasing the QoSh weight to 50 moves the inversion point right.
func TestThreeQoSFigure9Structure(t *testing.T) {
	mixAt := func(x float64) []float64 {
		// QoSm:QoSl fixed at 2:1 over the remainder, as in Figure 9.
		rest := 1 - x
		return []float64{x, rest * 2 / 3, rest / 3}
	}
	rho, mu := 1.4, 0.8

	boundary8, err := AdmissibleBoundary([]float64{8, 4, 1}, mixAt, rho, mu, 200)
	if err != nil {
		t.Fatal(err)
	}
	boundary50, err := AdmissibleBoundary([]float64{50, 4, 1}, mixAt, rho, mu, 200)
	if err != nil {
		t.Fatal(err)
	}
	if boundary8 <= 0.05 {
		t.Fatalf("8:4:1 admissible boundary too small: %v", boundary8)
	}
	if boundary50 <= boundary8 {
		t.Errorf("increasing QoSh weight should move the admissible boundary right: 8:4:1 → %v, 50:4:1 → %v", boundary8, boundary50)
	}

	// Inside the admissible region, delays are ordered h ≤ m ≤ l.
	d, err := WorstCaseDelays([]float64{8, 4, 1}, mixAt(boundary8*0.8), rho, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !(d[0] <= d[1]+1e-9 && d[1] <= d[2]+1e-9) {
		t.Errorf("delays not ordered inside admissible region: %v", d)
	}
	// Higher QoSm delay under 50:4:1 (the paper notes the cost of a large
	// QoSh weight is a worse QoSm bound).
	d8, _ := WorstCaseDelays([]float64{8, 4, 1}, mixAt(0.5), rho, mu)
	d50, _ := WorstCaseDelays([]float64{50, 4, 1}, mixAt(0.5), rho, mu)
	if d50[1] < d8[1]-1e-9 {
		t.Errorf("QoSm bound should not improve when QoSh weight grows: 8:4:1 %v vs 50:4:1 %v", d8[1], d50[1])
	}
}

func TestMaxShareForDelay(t *testing.T) {
	p := TwoQoS{Phi: 4, Rho: 2, Mu: 0.8}
	// DelayHigh = x−0.4 on (0.4, 0.8]; bound 0.1 → max share 0.5.
	if got := p.MaxShareForDelay(0.1); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("MaxShareForDelay(0.1) = %v, want ~0.5", got)
	}
	if got := p.MaxShareForDelay(0); math.Abs(got-0.4) > 1e-3 {
		t.Errorf("MaxShareForDelay(0) = %v, want ~0.4", got)
	}
	// A bound above the global max admits everything.
	if got := p.MaxShareForDelay(1); got < 0.99 {
		t.Errorf("MaxShareForDelay(1) = %v, want ~1", got)
	}
}

func TestGuaranteedShare(t *testing.T) {
	w := []float64{8, 4, 1}
	got := GuaranteedShare(w, 0, 0.8, 1.4)
	want := 8.0 / 13 * 0.8 / 1.4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GuaranteedShare = %v, want %v", got, want)
	}
	if GuaranteedShare(w, -1, 0.8, 1.4) != 0 || GuaranteedShare(w, 3, 0.8, 1.4) != 0 {
		t.Error("out-of-range class should yield 0")
	}
	if GuaranteedShare(nil, 0, 0.8, 1.4) != 0 {
		t.Error("empty weights should yield 0")
	}
	// Inverse proportionality to burstiness (§6.4).
	if 2*GuaranteedShare(w, 0, 0.8, 2.8) != GuaranteedShare(w, 0, 0.8, 1.4) {
		t.Error("guaranteed share must scale as 1/ρ")
	}
}

func TestFluidValidation(t *testing.T) {
	cases := []Fluid{
		{Weights: nil},
		{Weights: []float64{1, -1}, Phases: BurstPattern([]float64{0.5, 0.5}, 1.2, 0.8)},
		{Weights: []float64{1, 1}, Phases: []Phase{{Duration: 1, Rates: []float64{1}}}},
		{Weights: []float64{1, 1}, Phases: []Phase{{Duration: -1, Rates: []float64{1, 1}}}},
		{Weights: []float64{1, 1}, Phases: []Phase{{Duration: 1, Rates: []float64{-1, 1}}}},
	}
	for i, f := range cases {
		if _, err := f.Run(); err == nil {
			t.Errorf("case %d: invalid fluid config accepted", i)
		}
	}
}

// The GPS allocator must be work conserving whenever any queue is
// backlogged, and must never allocate more than capacity.
func TestGPSRatesProperties(t *testing.T) {
	f := func(ws, as, qs [3]uint8) bool {
		w := []float64{float64(ws[0]%8) + 1, float64(ws[1]%8) + 1, float64(ws[2]%8) + 1}
		a := []float64{float64(as[0]) / 128, float64(as[1]) / 128, float64(as[2]) / 128}
		q := []float64{float64(qs[0] % 2), float64(qs[1] % 2), float64(qs[2] % 2)}
		s := gpsRates(w, a, q, 1.0)
		var tot float64
		backlogged := false
		for i := range s {
			if s[i] < -1e-12 {
				return false
			}
			if q[i] <= fluidEps && s[i] > a[i]+1e-12 {
				return false // served faster than it arrives with no backlog
			}
			tot += s[i]
			if q[i] > fluidEps {
				backlogged = true
			}
		}
		if tot > 1+1e-9 {
			return false
		}
		if backlogged && tot < 1-1e-9 {
			return false // not work conserving
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCurveInverse(t *testing.T) {
	var c curve
	c.add(0, 0)
	c.add(1, 10)
	c.add(2, 10) // flat segment
	c.add(3, 20)
	if got := c.at(0.5); got != 5 {
		t.Errorf("at(0.5) = %v", got)
	}
	if got := c.at(1.5); got != 10 {
		t.Errorf("at(1.5) = %v", got)
	}
	if got := c.invAt(5); got != 0.5 {
		t.Errorf("invAt(5) = %v", got)
	}
	// Inverse at a flat-segment value returns the earliest time.
	if got := c.invAt(10); got > 1+1e-9 {
		t.Errorf("invAt(10) = %v, want 1", got)
	}
	if got := c.invAt(15); got != 2.5 {
		t.Errorf("invAt(15) = %v", got)
	}
	if got := c.invAt(100); got != 3 {
		t.Errorf("invAt beyond range = %v, want final time", got)
	}
}
