package sim

import (
	"math/rand"
)

// Event is a unit of work scheduled at a point in simulated time.
type Event interface {
	// Run executes the event. It may schedule further events on s.
	Run(s *Simulator)
}

// EventFunc adapts a function to the Event interface.
type EventFunc func(s *Simulator)

// Run implements Event.
func (f EventFunc) Run(s *Simulator) { f(s) }

// scheduled pairs an event with its firing time. seq breaks ties so that
// events scheduled earlier at the same timestamp run first (FIFO within a
// timestamp), which keeps runs deterministic. Fired and cancelled nodes are
// recycled through the simulator's free list; gen distinguishes the node's
// current occupant from earlier ones so stale Handles cannot touch it.
type scheduled struct {
	at     Time
	seq    uint64
	gen    uint64
	ev     Event
	cancel bool
	index  int
}

// Handle refers to a scheduled event and can cancel it before it fires.
type Handle struct {
	s   *scheduled
	gen uint64
}

// Cancel prevents the event from running. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if !h.Pending() {
		return false
	}
	h.s.cancel = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.s != nil && h.s.gen == h.gen && !h.s.cancel && h.s.index >= 0
}

// heapNode caches a scheduled node's sort key inline so sift comparisons
// read only the heap's own backing array — no pointer chase per compare —
// while the *scheduled node carries the event payload and cancel state.
type heapNode struct {
	at  Time
	seq uint64
	sc  *scheduled
}

// eventHeap is a binary min-heap ordered by (at, seq). It is monomorphic —
// the sift loops compare keys directly — so scheduling and firing events
// involves no interface dispatch and no `any` boxing, unlike
// container/heap. (at, seq) is a total order because seq is unique, so the
// pop order is identical to the container/heap implementation it replaced.
type eventHeap []heapNode

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends sc and sifts it up.
func (h *eventHeap) push(sc *scheduled) {
	sc.index = len(*h)
	*h = append(*h, heapNode{sc.at, sc.seq, sc})
	h.up(sc.index)
}

// pop removes and returns the minimum node.
func (h *eventHeap) pop() *scheduled {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old[0].sc.index = 0
	sc := old[n].sc
	old[n] = heapNode{}
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	sc.index = -1
	return sc
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].sc.index = i
		h[parent].sc.index = parent
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		h[i].sc.index = i
		h[least].sc.index = least
		i = least
	}
}

// Simulator is a single-threaded discrete-event simulation. The zero value
// is not usable; construct one with New.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// free holds fired/cancelled nodes for reuse, bounding steady-state
	// allocation to the peak number of simultaneously pending events.
	free []*scheduled
	// Processed counts events that have run, for diagnostics and test
	// assertions about simulation effort.
	Processed uint64
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules ev to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would silently reorder causality.
func (s *Simulator) At(t Time, ev Event) Handle {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	var sc *scheduled
	if n := len(s.free); n > 0 {
		sc = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		sc.at, sc.seq, sc.ev, sc.cancel = t, s.seq, ev, false
	} else {
		sc = &scheduled{at: t, seq: s.seq, ev: ev}
	}
	s.seq++
	s.events.push(sc)
	return Handle{sc, sc.gen}
}

// recycle returns a popped node to the free list. Bumping gen invalidates
// every Handle that still points at the node.
func (s *Simulator) recycle(sc *scheduled) {
	sc.gen++
	sc.ev = nil
	s.free = append(s.free, sc)
}

// After schedules ev to run d after the current time.
func (s *Simulator) After(d Duration, ev Event) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, ev)
}

// AtFunc and AfterFunc are convenience wrappers for function events.
func (s *Simulator) AtFunc(t Time, f func(*Simulator)) Handle { return s.At(t, EventFunc(f)) }
func (s *Simulator) AfterFunc(d Duration, f func(*Simulator)) Handle {
	return s.After(d, EventFunc(f))
}

// Pending reports the number of events in the queue, including cancelled
// events that have not yet been discarded.
func (s *Simulator) Pending() int { return len(s.events) }

// Step runs the single earliest pending event. It reports false when the
// queue is empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		sc := s.events.pop()
		if sc.cancel {
			s.recycle(sc)
			continue
		}
		s.now = sc.at
		s.Processed++
		ev := sc.ev
		s.recycle(sc)
		ev.Run(s)
		return true
	}
	return false
}

// Run processes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil processes events with timestamps ≤ end, then advances the clock
// to end. Events scheduled after end remain queued.
func (s *Simulator) RunUntil(end Time) {
	for len(s.events) > 0 {
		// Peek without popping.
		next := s.events[0]
		if next.sc.cancel {
			s.recycle(s.events.pop())
			continue
		}
		if next.at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}
