package sim

import "math/bits"

// Rate is a transmission rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1e3
	Mbps         Rate = 1e6
	Gbps         Rate = 1e9
)

// TxTime returns the time to serialise n bytes at rate r, rounded up to the
// nearest picosecond so that back-to-back transmissions never overlap.
func (r Rate) TxTime(bytes int) Duration {
	if r <= 0 {
		return MaxTime
	}
	b := uint64(bytes) * 8
	// d = ceil(b * 1e12 / r) picoseconds, computed with 128-bit
	// intermediates so multi-gigabyte transfers do not overflow.
	hi, lo := bits.Mul64(b, uint64(Second))
	q, rem := bits.Div64(hi, lo, uint64(r))
	if rem > 0 {
		q++
	}
	return Duration(q)
}

// BytesIn returns how many whole bytes r transmits in d.
func (r Rate) BytesIn(d Duration) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	// bytes = floor(r * d / (8 * 1e12)), with 128-bit intermediates.
	hi, lo := bits.Mul64(uint64(r), uint64(d))
	q, _ := bits.Div64(hi, lo, 8*uint64(Second))
	return int64(q)
}

// Float returns the rate in bits per second as a float64.
func (r Rate) Float() float64 { return float64(r) }
