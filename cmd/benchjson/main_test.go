package main

import (
	"strings"
	"testing"
)

// TestGateViolations: the regression policy fires on ns/op growth past
// the threshold, any allocation on a previously 0-alloc benchmark, and a
// tracked benchmark disappearing — and stays quiet on noise within the
// threshold, improvements, and freshly added benchmarks.
func TestGateViolations(t *testing.T) {
	oldB := map[string]Benchmark{
		"BenchmarkAdmitDecision": {Name: "BenchmarkAdmitDecision", NsPerOp: 40, AllocsPerOp: 0},
		"BenchmarkObserve":       {Name: "BenchmarkObserve", NsPerOp: 70, AllocsPerOp: 0},
		"BenchmarkRun":           {Name: "BenchmarkRun", NsPerOp: 1000, AllocsPerOp: 12},
		"BenchmarkGone":          {Name: "BenchmarkGone", NsPerOp: 5, AllocsPerOp: 0},
	}
	newB := map[string]Benchmark{
		"BenchmarkAdmitDecision": {Name: "BenchmarkAdmitDecision", NsPerOp: 48, AllocsPerOp: 0},   // +20%: within 25%
		"BenchmarkObserve":       {Name: "BenchmarkObserve", NsPerOp: 95, AllocsPerOp: 2},         // +36% and new allocs
		"BenchmarkRun":           {Name: "BenchmarkRun", NsPerOp: 900, AllocsPerOp: 14},           // faster; allocs ok (old != 0)
		"BenchmarkNew":           {Name: "BenchmarkNew", NsPerOp: 1e9, AllocsPerOp: 99},           // added: no old reference
	}
	names := []string{"BenchmarkAdmitDecision", "BenchmarkGone", "BenchmarkNew", "BenchmarkObserve", "BenchmarkRun"}

	bad := gateViolations(names, oldB, newB, 25, 2)
	if len(bad) != 3 {
		t.Fatalf("violations = %d, want 3:\n%s", len(bad), strings.Join(bad, "\n"))
	}
	joined := strings.Join(bad, "\n")
	for _, want := range []string{
		"BenchmarkGone: tracked benchmark missing",
		"BenchmarkObserve: ns/op 70.00 -> 95.00",
		"BenchmarkObserve: allocs/op 0 -> 2",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q in:\n%s", want, joined)
		}
	}

	if bad := gateViolations(names, oldB, oldB, 25, 2); len(bad) != 0 {
		t.Errorf("identical snapshots flagged: %v", bad)
	}
	// A looser threshold forgives the timing regression but never the
	// allocation one.
	bad = gateViolations([]string{"BenchmarkObserve"}, oldB, newB, 50, 2)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Errorf("alloc gate at 50%% = %v, want just the allocs violation", bad)
	}
	// The absolute floor absorbs jitter that is huge in percent but tiny
	// in ns — a 5 -> 7 swing on a single-digit-ns benchmark — without
	// loosening benchmarks where 2ns is negligible.
	tiny := map[string]Benchmark{"BenchmarkTiny": {Name: "BenchmarkTiny", NsPerOp: 5}}
	tinySlow := map[string]Benchmark{"BenchmarkTiny": {Name: "BenchmarkTiny", NsPerOp: 7}}
	if bad := gateViolations([]string{"BenchmarkTiny"}, tiny, tinySlow, 25, 2); len(bad) != 0 {
		t.Errorf("floor did not absorb 2ns jitter: %v", bad)
	}
	if bad := gateViolations([]string{"BenchmarkTiny"}, tiny, tinySlow, 25, 0); len(bad) != 1 {
		t.Errorf("without floor, +40%% should fail: %v", bad)
	}
}

// TestMergeBestOfN: repeated runs of one benchmark collapse to the
// fastest ns/op but the worst allocs/op, regardless of arrival order.
func TestMergeBestOfN(t *testing.T) {
	var bs []Benchmark
	for _, b := range []Benchmark{
		{Name: "BenchmarkX", Pkg: "p", NsPerOp: 50, AllocsPerOp: 0, Metrics: map[string]float64{"ops/s": 100}},
		{Name: "BenchmarkX", Pkg: "p", NsPerOp: 30, AllocsPerOp: 0, Metrics: map[string]float64{"ops/s": 160}},
		{Name: "BenchmarkX", Pkg: "p", NsPerOp: 45, AllocsPerOp: 1},
		{Name: "BenchmarkY", Pkg: "p", NsPerOp: 9, AllocsPerOp: 2},
	} {
		bs = merge(bs, b)
	}
	if len(bs) != 2 {
		t.Fatalf("merged to %d entries, want 2", len(bs))
	}
	x := bs[0]
	if x.NsPerOp != 30 || x.Metrics["ops/s"] != 160 {
		t.Errorf("best run not kept: %+v", x)
	}
	if x.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %g, want the max (1) — alloc regressions must not be minimized away", x.AllocsPerOp)
	}
	if bs[1].Name != "BenchmarkY" || bs[1].NsPerOp != 9 {
		t.Errorf("distinct benchmark clobbered: %+v", bs[1])
	}
}
