// Command aequitas-serve demonstrates the admission controller serving
// live traffic: a demo HTTP server whose handlers run behind the
// serve.Admission middleware, and a load-generating client that drives a
// mixed-class workload at it and reports what the controller did.
//
// Server (terminal 1):
//
//	aequitas-serve -mode server -addr :8080 -work 300us -slo 200us
//
// Load (terminal 2):
//
//	aequitas-serve -mode client -url http://localhost:8080 -conc 16 -duration 10s
//
// While the load runs, live metrics are on the server:
//
//	curl -s localhost:8080/metrics   # Prometheus text, padmit gauges
//	curl -s localhost:8080/snapshot  # JSON document
//
// With -work above -slo the handler can never meet the SLO, so the admit
// probability falls and the client sees X-Aequitas-Downgraded responses —
// Algorithm 1 converging on the wall clock.
//
// The server carries a flight recorder (-flight): the last N admission
// decisions ride in a lock-free ring, the burn-rate anomaly engine
// freezes it into an NDJSON dump when the SLO burns too fast, and
// /debug/flight serves the trigger status and dumps. On SIGINT/SIGTERM
// the server shuts down gracefully — in-flight requests drain and a final
// flight dump is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"aequitas"
	"aequitas/internal/obs/flight"
	"aequitas/serve"
)

func main() {
	var (
		mode      = flag.String("mode", "server", "server | client")
		addr      = flag.String("addr", ":8080", "server listen address")
		work      = flag.Duration("work", 300*time.Microsecond, "server: simulated handler work per request")
		slo       = flag.Duration("slo", 200*time.Microsecond, "server: latency SLO for the highest class (medium gets 2x)")
		reject    = flag.Bool("reject", false, "server: reject downgraded requests with 503 instead of serving them")
		flightOut = flag.String("flight", "", "server: write the final flight dump (NDJSON) here on shutdown; empty disables the recorder")
		flightDir = flag.String("flight-profiles", "", "server: capture goroutine/heap profiles into this directory on anomaly triggers")
		drain     = flag.Duration("drain", 10*time.Second, "server: graceful-shutdown drain budget")
		url       = flag.String("url", "http://localhost:8080", "client: target server")
		conc      = flag.Int("conc", 16, "client: concurrent workers")
		duration  = flag.Duration("duration", 10*time.Second, "client: run length")
	)
	flag.Parse()
	switch *mode {
	case "server":
		runServer(*addr, *work, *slo, *reject, *flightOut, *flightDir, *drain)
	case "client":
		runClient(*url, *conc, *duration)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want server or client)\n", *mode)
		os.Exit(2)
	}
}

func runServer(addr string, work, slo time.Duration, reject bool, flightOut, flightDir string, drain time.Duration) {
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: slo},
			{Target: 2 * slo},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	scfg := serve.Config{Controller: ctl, RejectDowngraded: reject}
	if flightOut != "" {
		scfg.Flight = &serve.FlightConfig{
			ProfileDir: flightDir,
			Engine:     &flight.EngineConfig{},
		}
	}
	adm, err := serve.New(scfg)
	if err != nil {
		log.Fatal(err)
	}

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Simulated downstream work; scavenger-class requests run the
		// same code, they just ride a lower network priority in a real
		// deployment.
		time.Sleep(work)
		v, _ := serve.FromContext(r.Context())
		fmt.Fprintf(w, "ok class=%v downgraded=%v\n", v.Class, v.Downgraded)
	})

	mux := http.NewServeMux()
	metrics := adm.Handler()
	mux.Handle("/metrics", metrics)
	mux.Handle("/snapshot", metrics)
	mux.Handle("/debug/pprof/", metrics)
	mux.Handle("/debug/flight", metrics)
	mux.Handle("/", adm.Middleware(handler))

	stopStats := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s := ctl.Stats()
				log.Printf("ctl: admitted=%d downgraded=%d slo_met=%d slo_miss=%d triggers=%d",
					s.Admitted, s.Downgraded, s.SLOMet, s.SLOMisses, adm.FlightTriggered())
			case <-stopStats:
				return
			}
		}
	}()

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and flush
	// the black box: Shutdown stops accepting, waits for handlers (bounded
	// by the drain budget), and only then do we freeze the final state.
	srv := &http.Server{Addr: addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (work=%v, SLO=%v/%v, reject=%v)", addr, work, slo, 2*slo, reject)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests (budget %v)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	close(stopStats)

	// Final telemetry flush: the closing counters, and the flight ring as
	// the shutdown dump.
	s := ctl.Stats()
	log.Printf("final: admitted=%d downgraded=%d dropped=%d slo_met=%d slo_miss=%d triggers=%d",
		s.Admitted, s.Downgraded, s.Dropped, s.SLOMet, s.SLOMisses, adm.FlightTriggered())
	if flightOut != "" {
		f, err := os.Create(flightOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := adm.DumpFlight(f, flight.TriggerFinal, "graceful shutdown"); err != nil {
			log.Fatalf("flight dump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("flight dump written to %s", flightOut)
	}
}

// clientStats aggregates one load run.
type clientStats struct {
	sent, downgraded, rejected, errors atomic.Int64
	mu                                 sync.Mutex
	latencies                          []time.Duration
}

func runClient(url string, conc int, duration time.Duration) {
	var cs clientStats
	classes := []string{"QoSh", "QoSh", "QoSm", "QoSl"} // 2:1:1 mix
	deadline := time.Now().Add(duration)
	client := &http.Client{Timeout: 5 * time.Second}

	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				req, err := http.NewRequest("GET", url+"/demo", nil)
				if err != nil {
					cs.errors.Add(1)
					continue
				}
				req.Header.Set(serve.HeaderClass, classes[(w+i)%len(classes)])
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					cs.errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				elapsed := time.Since(start)
				cs.sent.Add(1)
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					cs.rejected.Add(1)
				case resp.Header.Get(serve.HeaderDowngraded) == "1":
					cs.downgraded.Add(1)
				}
				cs.mu.Lock()
				cs.latencies = append(cs.latencies, elapsed)
				cs.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sent := cs.sent.Load()
	fmt.Printf("sent=%d downgraded=%d rejected=%d errors=%d (%.1f req/s)\n",
		sent, cs.downgraded.Load(), cs.rejected.Load(), cs.errors.Load(),
		float64(sent)/duration.Seconds())
	if len(cs.latencies) > 0 {
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p / 100 * float64(len(cs.latencies)-1))
			return cs.latencies[i]
		}
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			pct(50), pct(90), pct(99), cs.latencies[len(cs.latencies)-1])
	}
}
