package aequitas

import (
	"math"
	"testing"
)

func TestDelayBoundFacade(t *testing.T) {
	// Figure 8 parameters: zero-delay region up to φ/(φ+1)/ρ = 2/3.
	if got := DelayBoundHigh(4, 1.2, 0.8, 0.5); got != 0 {
		t.Errorf("DelayBoundHigh(0.5) = %v, want 0", got)
	}
	if got := DelayBoundHigh(4, 1.2, 0.8, 0.9); got <= 0 {
		t.Errorf("DelayBoundHigh(0.9) = %v, want > 0", got)
	}
	if got := DelayBoundLow(4, 1.2, 0.8, 0.2); got <= 0 {
		t.Errorf("DelayBoundLow(0.2) = %v, want > 0", got)
	}
}

func TestWorstCaseDelaysFacade(t *testing.T) {
	d, err := WorstCaseDelays([]float64{8, 4, 1}, []float64{0.3, 0.45, 0.25}, 1.4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 {
		t.Fatalf("got %d delays", len(d))
	}
	if _, err := WorstCaseDelays([]float64{1}, []float64{0.5, 0.5}, 1.4, 0.8); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestAdmissibleShareFacade(t *testing.T) {
	// Figure 9a: weights 8:4:1, QoSm:QoSl = 2:1 in the remainder.
	x, err := AdmissibleShare([]float64{8, 4, 1}, []float64{2.0 / 3, 1.0 / 3}, 1.4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x <= 0.05 || x >= 1 {
		t.Errorf("admissible boundary = %v", x)
	}
	// Larger QoSh weight extends the region (Figure 9b).
	x50, err := AdmissibleShare([]float64{50, 4, 1}, []float64{2.0 / 3, 1.0 / 3}, 1.4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x50 <= x {
		t.Errorf("50:4:1 boundary %v not beyond 8:4:1 boundary %v", x50, x)
	}
}

func TestMaxShareForSLOFacade(t *testing.T) {
	// φ=4, ρ=2, µ=0.8: delay = x−0.4 in the admitting region.
	if got := MaxShareForSLO(4, 2, 0.8, 0.2); math.Abs(got-0.6) > 0.01 {
		t.Errorf("MaxShareForSLO = %v, want ~0.6", got)
	}
}

func TestGuaranteedShareFacade(t *testing.T) {
	got := GuaranteedShare([]float64{4, 1}, 0, 0.8, 1.6)
	want := 0.8 * 0.8 / 1.6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GuaranteedShare = %v, want %v", got, want)
	}
}
