package main

import (
	"fmt"
	"os"
	"time"

	"aequitas"
	"aequitas/internal/calculus"
	"aequitas/internal/stats"
)

func init() {
	register("10", "packet simulator vs closed-form theory (2 QoS, CC off)", figSimVsTheory)
	register("11", "SLO compliance: achieved RNL tracks the SLO knob (3-node)", figSLOKnob)
	register("12", "cluster RNL with vs without Aequitas vs SLOs", figClusterSLO)
	register("13", "outstanding RPCs per switch port, before/after", figOutstanding)
	register("14", "baseline 99.9p RNL vs QoSh-share (admissible region)", figAdmissibleSweep)
	register("15", "admitted QoS-mix converges to target regardless of input", figMixConvergence)
	register("16", "admitted QoSh-share vs burst load (inverse proportionality)", figBurstiness)
	register("19", "SPQ vs Aequitas as QoSh-share grows (race to the top)", figSPQ)
	register("20", "size-normalised SLOs with mixed 32/64KB RPCs", figMixedSizes)
	register("21", "large scale, production sizes, extreme burst", figLargeScale)
	register("23", "testbed reproduction: 20 nodes, 8:4:1, QoS-mix convergence", figTestbed)
}

// slo32 returns the standard absolute SLOs for 32 KB RPCs used by the
// cluster experiments.
func slo32(highUS, medUS float64) []aequitas.SLO {
	out := []aequitas.SLO{{
		Target:         time.Duration(highUS * float64(time.Microsecond)),
		ReferenceBytes: 32 << 10,
		Percentile:     99.9,
	}}
	if medUS > 0 {
		out = append(out, aequitas.SLO{
			Target:         time.Duration(medUS * float64(time.Microsecond)),
			ReferenceBytes: 32 << 10,
			Percentile:     99.9,
		})
	}
	return out
}

// clusterConfig is the all-to-all "33-node" setup (§6.1): per-host load
// 0.8 average, 1.4 burst, Poisson arrivals.
func clusterConfig(o options, system aequitas.System, mix [3]float64) aequitas.SimConfig {
	return aequitas.SimConfig{
		System:     system,
		Hosts:      o.nodes,
		Seed:       o.seed,
		Duration:   o.dur,
		QoSWeights: []float64{8, 4, 1},
		SLOs:       slo32(25, 50),
		Traffic: []aequitas.HostTraffic{{
			AvgLoad:   0.8,
			BurstLoad: 1.4,
			Classes: []aequitas.TrafficClass{
				{Priority: aequitas.PC, Share: mix[0], FixedBytes: 32 << 10},
				{Priority: aequitas.NC, Share: mix[1], FixedBytes: 32 << 10},
				{Priority: aequitas.BE, Share: mix[2], FixedBytes: 32 << 10},
			},
		}},
	}
}

func figSimVsTheory(o options) error {
	const (
		mu, rho, phi = 0.8, 1.2, 4.0
	)
	theory := calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}
	period := time.Millisecond
	tb := stats.NewTable("QoSh-share(%)", "sim QoSh", "theory QoSh", "sim QoSl", "theory QoSl")
	var shares []float64
	for x := 0.1; x < 0.95; x += 0.1 {
		shares = append(shares, x)
	}
	var cfgs []aequitas.SimConfig
	for _, x := range shares {
		cfgs = append(cfgs, aequitas.SimConfig{
			System: aequitas.SystemBaseline, Hosts: 3, Seed: o.seed,
			Duration: 60 * time.Millisecond, Warmup: 10 * time.Millisecond,
			QoSWeights: []float64{phi, 1}, PerClassBufferBytes: -1,
			DisableCC: true, FixedWindow: 512, BurstPeriod: period,
			RTOMin: 500 * time.Millisecond,
			Traffic: []aequitas.HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: mu / 2, BurstLoad: rho / 2, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: x, FixedBytes: 1436},
					{Priority: aequitas.NC, Share: 1 - x, FixedBytes: 1436},
				},
			}},
		})
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		p := float64(period.Microseconds())
		tb.AddRow(fmt.Sprintf("%.0f", 100*shares[i]),
			res.RNLRun[aequitas.High].MaxUS/p, theory.DelayHigh(shares[i]),
			res.RNLRun[aequitas.Medium].MaxUS/p, theory.DelayLow(shares[i]))
	}
	tb.Write(os.Stdout)
	fmt.Println("(normalized worst-case delay; the paper's Fig 10 validation)")
	return nil
}

func figSLOKnob(o options) error {
	tb := stats.NewTable("SLO(us)", "achieved 99.9p(us)", "admitted QoSh-share(%)")
	slos := []float64{15, 25, 40, 60}
	var cfgs []aequitas.SimConfig
	for _, slo := range slos {
		// The additive-increase window scales with the SLO target
		// (Algorithm 1 line 4), so looser SLOs converge more slowly and
		// need a longer horizon to reach their equilibrium share.
		cfgs = append(cfgs, aequitas.SimConfig{
			System: aequitas.SystemAequitas, Hosts: 3, Seed: o.seed,
			Duration: 300 * time.Millisecond, Warmup: 100 * time.Millisecond,
			QoSWeights: []float64{4, 1},
			SLOs:       slo32(slo, 0),
			Traffic: []aequitas.HostTraffic{{
				Hosts: []int{0, 1}, Dsts: []int{2},
				AvgLoad: 1.0, Arrival: aequitas.ArrivalPeriodic,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.7, FixedBytes: 32 << 10},
					{Priority: aequitas.BE, Share: 0.3, FixedBytes: 32 << 10},
				},
			}},
		})
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(slos[i], res.RNLQuantileUS(aequitas.High, 0.999), 100*res.AdmittedMix[0])
	}
	tb.Write(os.Stdout)
	fmt.Println("achieved tail RNL tracks the SLO; stricter SLOs admit less traffic")
	return nil
}

func figClusterSLO(o options) error {
	tb := stats.NewTable("system", "QoSh 99.9p(us)", "QoSm 99.9p(us)", "QoSl 99.9p(us)")
	tb.AddRow("SLO", 25.0, 50.0, "-")
	systems := []aequitas.System{aequitas.SystemBaseline, aequitas.SystemAequitas}
	var cfgs []aequitas.SimConfig
	for _, system := range systems {
		cfgs = append(cfgs, clusterConfig(o, system, [3]float64{0.6, 0.3, 0.1}))
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow("w/ "+systems[i].String(),
			res.RNLQuantileUS(aequitas.High, 0.999),
			res.RNLQuantileUS(aequitas.Medium, 0.999),
			res.RNLQuantileUS(aequitas.Low, 0.999))
	}
	tb.Write(os.Stdout)
	return nil
}

func figOutstanding(o options) error {
	systems := []aequitas.System{aequitas.SystemBaseline, aequitas.SystemAequitas}
	var cfgs []aequitas.SimConfig
	for _, system := range systems {
		cfg := clusterConfig(o, system, [3]float64{0.6, 0.3, 0.1})
		cfg.TrackOutstanding = true
		cfgs = append(cfgs, cfg)
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		hi := cdfQuantiles(res.OutstandingHighMed)
		lo := cdfQuantiles(res.OutstandingLow)
		fmt.Printf("%-9s outstanding RPCs/port QoSh+QoSm p50/p90/p99: %.0f/%.0f/%.0f  QoSl: %.0f/%.0f/%.0f\n",
			systems[i], hi[0], hi[1], hi[2], lo[0], lo[1], lo[2])
	}
	fmt.Println("Aequitas cuts SLO-class outstanding RPCs; the scavenger class absorbs them")
	return nil
}

func cdfQuantiles(pts []aequitas.Point) [3]float64 {
	var out [3]float64
	qs := []float64{0.5, 0.9, 0.99}
	for i, q := range qs {
		for _, p := range pts {
			if p.Y >= q {
				out[i] = p.X
				break
			}
		}
	}
	return out
}

func figAdmissibleSweep(o options) error {
	tb := stats.NewTable("QoSh-share(%)", "QoSh 99.9p(us)", "QoSm 99.9p(us)", "QoSl 99.9p(us)")
	shares := []float64{0.05, 0.15, 0.25, 0.40, 0.55, 0.70}
	var cfgs []aequitas.SimConfig
	for _, x := range shares {
		qm := 0.25
		cfgs = append(cfgs, clusterConfig(o, aequitas.SystemBaseline, [3]float64{x, qm, 1 - x - qm}))
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		tb.AddRow(fmt.Sprintf("%.0f", 100*shares[i]),
			res.RNLQuantileUS(aequitas.High, 0.999),
			res.RNLQuantileUS(aequitas.Medium, 0.999),
			res.RNLQuantileUS(aequitas.Low, 0.999))
	}
	tb.Write(os.Stdout)
	fmt.Println("the share where QoSh 99.9p crosses the SLO is the maximal admissible share")
	return nil
}

func figMixConvergence(o options) error {
	inputs := [][3]float64{
		{0.25, 0.25, 0.50},
		{0.60, 0.30, 0.10},
		{0.50, 0.30, 0.20},
		{0.40, 0.40, 0.20},
	}
	tb := stats.NewTable("input mix", "admitted mix", "QoSh 99.9p(us)")
	var cfgs []aequitas.SimConfig
	for _, in := range inputs {
		cfgs = append(cfgs, clusterConfig(o, aequitas.SystemAequitas, in))
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		in := inputs[i]
		tb.AddRow(
			fmt.Sprintf("%.0f/%.0f/%.0f", 100*in[0], 100*in[1], 100*in[2]),
			fmt.Sprintf("%.0f/%.0f/%.0f", 100*res.AdmittedMix[0], 100*res.AdmittedMix[1], 100*res.AdmittedMix[2]),
			res.RNLQuantileUS(aequitas.High, 0.999))
	}
	tb.Write(os.Stdout)
	fmt.Println("the admitted mix is set by the SLOs, not by the input mix (§6.3)")
	return nil
}

func figBurstiness(o options) error {
	tb := stats.NewTable("burst load rho", "admitted QoSh-share(%)", "share x rho")
	rhos := []float64{1.4, 1.6, 1.8, 2.0, 2.2}
	var cfgs []aequitas.SimConfig
	for _, rho := range rhos {
		cfg := clusterConfig(o, aequitas.SystemAequitas, [3]float64{0.6, 0.3, 0.1})
		cfg.Traffic[0].BurstLoad = rho
		cfgs = append(cfgs, cfg)
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, res := range results {
		share := 100 * res.AdmittedMix[0]
		tb.AddRow(rhos[i], share, share*rhos[i])
	}
	tb.Write(os.Stdout)
	fmt.Println("share x rho roughly constant: admitted traffic is inversely proportional to burstiness (§6.4)")
	return nil
}

func figSPQ(o options) error {
	tb := stats.NewTable("QoSh-share(%)", "SPQ QoSh 99.9p", "SPQ QoSm 99.9p", "AEQ QoSh 99.9p", "AEQ QoSm 99.9p")
	xs := []float64{0.5, 0.6, 0.7, 0.8}
	// Interleaved pairs: cfgs[2i] is SPQ, cfgs[2i+1] is Aequitas for xs[i].
	var cfgs []aequitas.SimConfig
	for _, x := range xs {
		mix := [3]float64{x, 0.2, 0.8 - x}
		cfgs = append(cfgs,
			clusterConfig(o, aequitas.SystemSPQ, mix),
			clusterConfig(o, aequitas.SystemAequitas, mix))
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	for i, x := range xs {
		spq, aeq := results[2*i], results[2*i+1]
		tb.AddRow(fmt.Sprintf("%.0f", 100*x),
			spq.RNLQuantileUS(aequitas.High, 0.999), spq.RNLQuantileUS(aequitas.Medium, 0.999),
			aeq.RNLQuantileUS(aequitas.High, 0.999), aeq.RNLQuantileUS(aequitas.Medium, 0.999))
	}
	tb.Write(os.Stdout)
	fmt.Println("SPQ degrades as more traffic claims the top class; Aequitas holds its SLOs (§6.7)")
	return nil
}

func figMixedSizes(o options) error {
	cfg := clusterConfig(o, aequitas.SystemAequitas, [3]float64{0.6, 0.3, 0.1})
	// Half the offered bytes in 32 KB RPCs, half in 64 KB RPCs (§6.8).
	for i := range cfg.Traffic[0].Classes {
		cfg.Traffic[0].Classes[i].FixedBytes = 0
		cfg.Traffic[0].Classes[i].Size = aequitas.SizeChoice(
			[]int64{32 << 10, 64 << 10}, []float64{1, 1})
	}
	base := clusterConfig(o, aequitas.SystemBaseline, [3]float64{0.6, 0.3, 0.1})
	base.Traffic = cfg.Traffic
	results, err := runAll(o, base, cfg)
	if err != nil {
		return err
	}
	resB, resA := results[0], results[1]
	tb := stats.NewTable("system", "QoSh 99.9p(us)", "QoSm 99.9p(us)", "QoSl 99.9p(us)", "QoSh in SLO(%)")
	for _, r := range []struct {
		name string
		res  *aequitas.Results
	}{{"w/o aequitas", resB}, {"w/ aequitas", resA}} {
		tb.AddRow(r.name,
			r.res.RNLQuantileUS(aequitas.High, 0.999),
			r.res.RNLQuantileUS(aequitas.Medium, 0.999),
			r.res.RNLQuantileUS(aequitas.Low, 0.999),
			100*r.res.SLOMetRunBytesFraction[aequitas.High])
	}
	tb.Write(os.Stdout)
	fmt.Println("per-MTU normalisation lets mixed 32/64KB RPCs share one SLO (§6.8)")
	return nil
}

func figLargeScale(o options) error {
	mkCfg := func(system aequitas.System) aequitas.SimConfig {
		return aequitas.SimConfig{
			System:     system,
			Hosts:      o.big,
			Seed:       o.seed,
			Duration:   o.dur,
			QoSWeights: []float64{8, 4, 1},
			// Per-MTU SLOs for the production size mix.
			SLOs: []aequitas.SLO{
				{Target: 20 * time.Microsecond, Percentile: 99.9},
				{Target: 40 * time.Microsecond, Percentile: 99.9},
			},
			BurstPeriod: 200 * time.Microsecond,
			Traffic: []aequitas.HostTraffic{{
				AvgLoad:   0.8,
				BurstLoad: 2.0, // extreme fan-in bursts on downlinks
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: 0.6, Size: aequitas.ProductionPCSizes()},
					{Priority: aequitas.NC, Share: 0.3, Size: aequitas.ProductionNCSizes()},
					{Priority: aequitas.BE, Share: 0.1, Size: aequitas.ProductionBESizes()},
				},
			}},
		}
	}
	tb := stats.NewTable("system", "QoSh 99.9p(us)", "QoSm 99.9p(us)", "QoSl 99.9p(us)", "admitted mix")
	var tails [2][2]float64
	systems := []aequitas.System{aequitas.SystemBaseline, aequitas.SystemAequitas}
	results, err := runAll(o, mkCfg(systems[0]), mkCfg(systems[1]))
	if err != nil {
		return err
	}
	for i, res := range results {
		tails[i][0] = res.RNLQuantileUS(aequitas.High, 0.999)
		tails[i][1] = res.RNLQuantileUS(aequitas.Medium, 0.999)
		tb.AddRow(systems[i].String(),
			tails[i][0], tails[i][1],
			res.RNLQuantileUS(aequitas.Low, 0.999),
			fmt.Sprintf("%.0f/%.0f/%.0f", 100*res.AdmittedMix[0], 100*res.AdmittedMix[1], 100*res.AdmittedMix[2]))
	}
	tb.Write(os.Stdout)
	fmt.Printf("tail RNL improvement: QoSh %.1fx, QoSm %.1fx (paper: 3.7x / 2.2x)\n",
		tails[0][0]/tails[1][0], tails[0][1]/tails[1][1])
	return nil
}

func figTestbed(o options) error {
	hosts := 20
	input := [3]float64{0.5, 0.35, 0.15}
	target := [3]float64{0.2, 0.3, 0.5}
	mk := func(system aequitas.System, mix [3]float64, slos []aequitas.SLO) aequitas.SimConfig {
		return aequitas.SimConfig{
			System: system, Hosts: hosts, Seed: o.seed,
			Duration: o.dur, QoSWeights: []float64{8, 4, 1},
			SLOs: slos,
			Traffic: []aequitas.HostTraffic{{
				AvgLoad: 0.8, BurstLoad: 1.4,
				Classes: []aequitas.TrafficClass{
					{Priority: aequitas.PC, Share: mix[0], FixedBytes: 32 << 10},
					{Priority: aequitas.NC, Share: mix[1], FixedBytes: 32 << 10},
					{Priority: aequitas.BE, Share: mix[2], FixedBytes: 32 << 10},
				},
			}},
		}
	}
	// Calibrate: the SLOs are the achieved 99.9p RNL when the input mix
	// equals the target mix (the paper's normalisation, §6.11).
	cal, err := aequitas.Run(mk(aequitas.SystemBaseline, target, slo32(25, 50)))
	if err != nil {
		return err
	}
	calH := cal.RNLQuantileUS(aequitas.High, 0.999)
	calM := cal.RNLQuantileUS(aequitas.Medium, 0.999)
	calL := cal.RNLQuantileUS(aequitas.Low, 0.999)
	slos := []aequitas.SLO{
		{Target: time.Duration(calH * float64(time.Microsecond)), ReferenceBytes: 32 << 10, Percentile: 99.9},
		{Target: time.Duration(calM * float64(time.Microsecond)), ReferenceBytes: 32 << 10, Percentile: 99.9},
	}

	results, err := runAll(o,
		mk(aequitas.SystemBaseline, input, slos),
		mk(aequitas.SystemAequitas, input, slos))
	if err != nil {
		return err
	}
	base, aeq := results[0], results[1]
	tb := stats.NewTable("system", "QoSh RNL(norm)", "QoSm RNL(norm)", "QoSl RNL(norm)", "QoS-share")
	for _, r := range []struct {
		name string
		res  *aequitas.Results
	}{{"w/o aequitas", base}, {"w/ aequitas", aeq}} {
		tb.AddRow(r.name,
			r.res.RNLQuantileUS(aequitas.High, 0.999)/calH,
			r.res.RNLQuantileUS(aequitas.Medium, 0.999)/calM,
			r.res.RNLQuantileUS(aequitas.Low, 0.999)/calL,
			fmt.Sprintf("%.0f/%.0f/%.0f", 100*r.res.AdmittedMix[0], 100*r.res.AdmittedMix[1], 100*r.res.AdmittedMix[2]))
	}
	tb.Write(os.Stdout)
	fmt.Printf("target QoS-mix: %.0f/%.0f/%.0f; Aequitas converges toward it while holding normalized RNL ~1 (§6.11)\n",
		100*target[0], 100*target[1], 100*target[2])
	return nil
}
