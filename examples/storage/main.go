// Storage-cluster scenario: the workload the paper's introduction
// motivates — a disaggregated-storage cluster where performance-critical
// reads, non-critical sequential reads, and best-effort background
// transfers share the network, with production-shaped RPC size
// distributions (Figure 1) and bursty all-to-all traffic.
//
// The run compares per-class tail RNL and SLO compliance with and without
// Aequitas, including the paper's counterintuitive result that the
// best-effort class can improve too (§6.2).
//
// Run with: go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"time"

	"aequitas"
)

func config(system aequitas.System) aequitas.SimConfig {
	return aequitas.SimConfig{
		System:     system,
		Hosts:      9,
		Seed:       7,
		Duration:   60 * time.Millisecond,
		Warmup:     20 * time.Millisecond,
		QoSWeights: []float64{8, 4, 1},
		// Targets are per-MTU (ReferenceBytes 0): a 1-MTU metadata RPC
		// must finish within 20 µs, a 32 KB read within 22×20 = 440 µs.
		// Per-MTU budgets must exceed the fabric's fixed floor (~RTT +
		// the Swift delay target), or small RPCs can never comply.
		SLOs: []aequitas.SLO{
			{Target: 20 * time.Microsecond, Percentile: 99.9},
			{Target: 40 * time.Microsecond, Percentile: 99.9},
		},
		Traffic: []aequitas.HostTraffic{{
			AvgLoad:   0.8,
			BurstLoad: 1.4,
			Classes: []aequitas.TrafficClass{
				// Random-access reads and metadata: small, critical.
				{Priority: aequitas.PC, Share: 0.45, Size: aequitas.ProductionPCSizes()},
				// Large sequential reads: rate-oriented.
				{Priority: aequitas.NC, Share: 0.35, Size: aequitas.ProductionNCSizes()},
				// Backups: scavenger.
				{Priority: aequitas.BE, Share: 0.20, Size: aequitas.ProductionBESizes()},
			},
		}},
	}
}

func main() {
	fmt.Println("Storage cluster: 9 hosts all-to-all, load 0.8 (burst 1.4),")
	fmt.Println("production-shaped RPC sizes, SLOs 20us/40us per MTU.")
	fmt.Println()

	type row struct {
		name string
		res  *aequitas.Results
	}
	var rows []row
	for _, system := range []aequitas.System{aequitas.SystemBaseline, aequitas.SystemAequitas} {
		res, err := aequitas.Run(config(system))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{system.String(), res})
	}

	fmt.Printf("%-10s %14s %14s %14s %16s\n", "system", "QoSh 99.9p", "QoSm 99.9p", "QoSl 99.9p", "QoSh in SLO")
	for _, r := range rows {
		fmt.Printf("%-10s %12.1fus %12.1fus %12.1fus %15.1f%%\n",
			r.name,
			r.res.RNLQuantileUS(aequitas.High, 0.999),
			r.res.RNLQuantileUS(aequitas.Medium, 0.999),
			r.res.RNLQuantileUS(aequitas.Low, 0.999),
			100*r.res.SLOMetRunBytesFraction[aequitas.High])
	}

	base, aeq := rows[0].res, rows[1].res
	fmt.Println()
	fmt.Printf("downgraded RPCs under Aequitas: %d of %d issued\n", aeq.Downgraded, aeq.Issued)
	fmt.Printf("admitted QoS-mix: %.0f%%/%.0f%%/%.0f%% (input %.0f%%/%.0f%%/%.0f%%)\n",
		100*aeq.AdmittedMix[0], 100*aeq.AdmittedMix[1], 100*aeq.AdmittedMix[2],
		100*aeq.InputMix[0], 100*aeq.InputMix[1], 100*aeq.InputMix[2])
	if aeq.RNLQuantileUS(aequitas.Low, 0.999) < base.RNLQuantileUS(aequitas.Low, 0.999) {
		fmt.Println("note: the scavenger class improved as well — admission control")
		fmt.Println("is not a zero-sum game for per-QoS latencies (§6.2, Little's law).")
	}
}
