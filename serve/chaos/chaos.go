// Package chaos implements wall-clock fault injection for the live
// serving path: a time-ordered Plan of latency spikes, error bursts,
// clock skew, and quota-plane outage windows that an Injector applies to
// a running server. It mirrors internal/faults — the plan is data, events
// are offsets from the start — but runs on wall time (or any offset
// source: deterministic tests drive Advance directly on a manual clock).
package chaos

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aequitas/internal/core"
	"aequitas/internal/sim"
)

// Kind enumerates the chaos event types.
type Kind uint8

const (
	// Slow adds Amount of extra latency to every wrapped request; Amount
	// zero clears it.
	Slow Kind = iota
	// Errors fails wrapped requests with probability Rate (500 before the
	// handler runs); Rate zero clears it.
	Errors
	// Skew offsets the injector-wrapped clock by Amount (may be
	// negative); Amount zero clears it.
	Skew
	// QuotaDown makes the attached quota plane unreachable: lease
	// refreshes fail until QuotaUp.
	QuotaDown
	// QuotaUp restores the quota plane.
	QuotaUp
	kindCount
)

func (k Kind) String() string {
	switch k {
	case Slow:
		return "slow"
	case Errors:
		return "errs"
	case Skew:
		return "skew"
	case QuotaDown:
		return "quotadown"
	case QuotaUp:
		return "quotaup"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scheduled chaos action.
type Event struct {
	// At is the event's offset from the start of the run.
	At   time.Duration
	Kind Kind
	// Amount is the extra latency (Slow) or clock offset (Skew).
	Amount time.Duration
	// Rate is the Errors failure probability in [0, 1].
	Rate float64
}

// Plan is a deterministic chaos schedule. The zero value (and nil) is
// the empty plan.
type Plan struct {
	// Seed seeds the per-request error draw (default 1).
	Seed int64
	// Events is the schedule; it need not be pre-sorted. Events at the
	// same instant apply in slice order.
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate reports structural errors: negative times, unknown kinds,
// rates outside [0, 1], negative slow amounts.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("chaos: event %d: negative time %v", i, e.At)
		}
		if e.Kind >= kindCount {
			return fmt.Errorf("chaos: event %d: unknown kind %d", i, e.Kind)
		}
		if e.Kind == Errors && (e.Rate < 0 || e.Rate > 1) {
			return fmt.Errorf("chaos: event %d: error rate %g outside [0, 1]", i, e.Rate)
		}
		if e.Kind == Slow && e.Amount < 0 {
			return fmt.Errorf("chaos: event %d: negative slow amount %v", i, e.Amount)
		}
	}
	return nil
}

// sorted returns the events in schedule order (stable by time) without
// mutating the plan.
func (p *Plan) sorted() []Event {
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Window is one interval during which a fault was active: a non-zero
// Slow/Errors/Skew setting until the event clearing it, or QuotaDown
// until QuotaUp. Faults never cleared within the plan extend to the
// maximum duration.
type Window struct {
	Start, End time.Duration
	Kind       Kind
}

// Windows pairs the plan's fault/clear events into active intervals, in
// start-time order.
func (p *Plan) Windows() []Window {
	if p.Empty() {
		return nil
	}
	var out []Window
	open := map[Kind]int{}
	const never = time.Duration(math.MaxInt64)
	for _, e := range p.sorted() {
		k := e.Kind
		active := false
		switch e.Kind {
		case Slow, Skew:
			active = e.Amount != 0
		case Errors:
			active = e.Rate > 0
		case QuotaDown:
			k, active = QuotaDown, true
		case QuotaUp:
			k = QuotaDown
		}
		if i, ok := open[k]; ok {
			if active {
				continue // already active; first setting wins the window
			}
			out[i].End = e.At
			delete(open, k)
			continue
		}
		if active {
			open[k] = len(out)
			out = append(out, Window{Start: e.At, End: never, Kind: k})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ParsePlan reads a plan: one event per line in the form
//
//	<offset> <event> [arg]
//
// where offset is a Go duration ("30s"), event is one of slow (arg: a
// duration of extra latency, "0" clears), errs (arg: a failure rate in
// [0, 1], 0 clears), skew (arg: a clock offset duration, "0" clears),
// quotadown, quotaup. '#' starts a comment; blank lines are ignored.
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("chaos: line %d: want \"<offset> <event> [arg]\"", lineNo)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: bad offset %q: %v", lineNo, fields[0], err)
		}
		e := Event{At: at}
		arg := ""
		if len(fields) == 3 {
			arg = fields[2]
		}
		switch strings.ToLower(fields[1]) {
		case "slow":
			e.Kind = Slow
			if e.Amount, err = time.ParseDuration(argOrZero(arg)); err != nil {
				return nil, fmt.Errorf("chaos: line %d: bad slow amount %q: %v", lineNo, arg, err)
			}
		case "errs", "errors":
			e.Kind = Errors
			if arg != "" {
				if e.Rate, err = strconv.ParseFloat(arg, 64); err != nil {
					return nil, fmt.Errorf("chaos: line %d: bad error rate %q: %v", lineNo, arg, err)
				}
			}
		case "skew":
			e.Kind = Skew
			if e.Amount, err = time.ParseDuration(argOrZero(arg)); err != nil {
				return nil, fmt.Errorf("chaos: line %d: bad skew amount %q: %v", lineNo, arg, err)
			}
		case "quotadown":
			e.Kind = QuotaDown
		case "quotaup":
			e.Kind = QuotaUp
		default:
			return nil, fmt.Errorf("chaos: line %d: unknown event %q", lineNo, fields[1])
		}
		p.Events = append(p.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, p.Validate()
}

// argOrZero makes the amount argument optional: a bare "slow" clears.
func argOrZero(s string) string {
	if s == "" {
		return "0"
	}
	return s
}

// PresetNames lists the built-in plan presets, for CLI help.
func PresetNames() []string { return []string{"latency", "errors", "outage", "drill"} }

// Preset builds a named canonical plan scaled to a run of the given
// duration: faults start at 25% of the run and clear at 60%, so every
// preset shows onset, steady fault, and recovery.
func Preset(name string, duration time.Duration) (*Plan, error) {
	if duration <= 0 {
		duration = time.Minute
	}
	on := duration / 4
	off := duration * 6 / 10
	switch strings.ToLower(name) {
	case "latency":
		return &Plan{Events: []Event{
			{At: on, Kind: Slow, Amount: 50 * time.Millisecond},
			{At: off, Kind: Slow},
		}}, nil
	case "errors":
		return &Plan{Events: []Event{
			{At: on, Kind: Errors, Rate: 0.3},
			{At: off, Kind: Errors},
		}}, nil
	case "outage":
		return &Plan{Events: []Event{
			{At: on, Kind: QuotaDown},
			{At: off, Kind: QuotaUp},
		}}, nil
	case "drill":
		// The full overload drill: latency spike plus error burst plus a
		// quota-plane outage, overlapping but not coterminous.
		return &Plan{Events: []Event{
			{At: on, Kind: Slow, Amount: 50 * time.Millisecond},
			{At: on, Kind: QuotaDown},
			{At: duration * 2 / 5, Kind: Errors, Rate: 0.2},
			{At: duration / 2, Kind: Errors},
			{At: off, Kind: Slow},
			{At: off, Kind: QuotaUp},
		}}, nil
	}
	return nil, fmt.Errorf("chaos: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
}

// QuotaPlane is the quota-server control surface the injector drives
// during outage windows (core.QuotaServer implements it).
type QuotaPlane interface {
	SetAvailable(up bool)
}

// Injector applies a plan to a live server. The active fault settings
// live in atomics read on the request path; Advance applies all events
// at or before the given offset, either from Run's wall-clock pump or
// directly from a test driving a manual clock.
type Injector struct {
	plan  []Event
	quota QuotaPlane

	mu   sync.Mutex
	next int
	rng  *rand.Rand

	extraNS atomic.Int64
	skewNS  atomic.Int64
	errBits atomic.Uint64
	applied atomic.Int64
}

// NewInjector builds an injector for plan (which may be nil or empty —
// the injector is then inert). quota may be nil when the plan has no
// quota events.
func NewInjector(plan *Plan, quota QuotaPlane) *Injector {
	inj := &Injector{quota: quota}
	seed := int64(1)
	if plan != nil {
		inj.plan = plan.sorted()
		if plan.Seed != 0 {
			seed = plan.Seed
		}
	}
	inj.rng = rand.New(rand.NewSource(seed))
	return inj
}

// Advance applies every event scheduled at or before now (an offset from
// the start of the run). Offsets must not move backwards.
func (inj *Injector) Advance(now time.Duration) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for inj.next < len(inj.plan) && inj.plan[inj.next].At <= now {
		e := inj.plan[inj.next]
		inj.next++
		inj.applied.Add(1)
		switch e.Kind {
		case Slow:
			inj.extraNS.Store(e.Amount.Nanoseconds())
		case Errors:
			inj.errBits.Store(math.Float64bits(e.Rate))
		case Skew:
			inj.skewNS.Store(e.Amount.Nanoseconds())
		case QuotaDown:
			if inj.quota != nil {
				inj.quota.SetAvailable(false)
			}
		case QuotaUp:
			if inj.quota != nil {
				inj.quota.SetAvailable(true)
			}
		}
	}
}

// Applied reports how many events have been applied so far.
func (inj *Injector) Applied() int64 { return inj.applied.Load() }

// Done reports whether every scheduled event has been applied.
func (inj *Injector) Done() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.next >= len(inj.plan)
}

// ExtraLatency reports the currently injected per-request latency.
func (inj *Injector) ExtraLatency() time.Duration {
	return time.Duration(inj.extraNS.Load())
}

// ErrorRate reports the currently injected failure probability.
func (inj *Injector) ErrorRate() float64 {
	return math.Float64frombits(inj.errBits.Load())
}

// SkewAmount reports the current clock-skew offset.
func (inj *Injector) SkewAmount() time.Duration {
	return time.Duration(inj.skewNS.Load())
}

// Run pumps the plan on the wall clock: every `every`, events that have
// come due are applied. It blocks until the context is cancelled or the
// plan is exhausted; run it in a goroutine.
func (inj *Injector) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	start := time.Now()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			inj.Advance(time.Since(start))
			if inj.Done() {
				return
			}
		}
	}
}

// Wrap injects the active faults into an HTTP handler: the extra latency
// is slept before the handler runs and error-burst failures reply 500
// without running it. Wrap goes OUTSIDE the admission middleware when
// the faults model slow upstream dependencies (the latency lands in the
// observed SLO), which is how the chaos harness exercises admission.
func (inj *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := inj.ExtraLatency(); d > 0 {
			time.Sleep(d)
		}
		if rate := inj.ErrorRate(); rate > 0 {
			inj.mu.Lock()
			fail := inj.rng.Float64() < rate
			inj.mu.Unlock()
			if fail {
				http.Error(w, "chaos: injected error", http.StatusInternalServerError)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// skewedClock offsets a base clock by the injector's live skew.
type skewedClock struct {
	base core.Clock
	inj  *Injector
}

func (c skewedClock) Now() sim.Time {
	return c.base.Now() + sim.FromStd(time.Duration(c.inj.skewNS.Load()))
}

func (c skewedClock) Float64() float64 { return c.base.Float64() }

// Clock wraps base so its readings carry the plan's clock skew —
// feed it to the serve layer to test skew tolerance.
func (inj *Injector) Clock(base core.Clock) core.Clock {
	return skewedClock{base: base, inj: inj}
}

