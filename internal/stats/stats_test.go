package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sample should produce NaN")
	}
	s.AddAll([]float64{3, 1, 2})
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if s.Sum() != 6 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestQuantileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 50}, {0.99, 99}, {0.999, 100}, {0.01, 1}, {0, 1}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Percentile(90); got != 90 {
		t.Errorf("Percentile(90) = %v", got)
	}
}

func TestQuantileInterleavedAdd(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Quantile(0.5) // force a sort
	s.Add(1)            // must invalidate sorted state
	if got := s.Min(); got != 1 {
		t.Errorf("Min after re-add = %v, want 1", got)
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCountAboveAndFractionWithin(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 2, 3, 10})
	if got := s.CountAbove(2); got != 2 {
		t.Errorf("CountAbove(2) = %d, want 2", got)
	}
	if got := s.CountAbove(10); got != 0 {
		t.Errorf("CountAbove(10) = %d, want 0", got)
	}
	if got := s.FractionWithin(2); got != 0.6 {
		t.Errorf("FractionWithin(2) = %v, want 0.6", got)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("final CDF point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if got := s.CDF(0); len(got) != 1000 {
		t.Errorf("CDF(0) should keep all points, got %d", len(got))
	}
}

func TestQuantileMatchesSortProperty(t *testing.T) {
	f := func(raw []float64, q01 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(q01%101) / 100
		var s Sample
		s.AddAll(xs)
		got := s.Quantile(q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return got == sorted[rank-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Feed 10k values; retained mean should approximate stream mean.
	r := NewReservoir(1000, 7)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 10000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	s := r.Sample()
	if s.N() != 1000 {
		t.Fatalf("retained %d", s.N())
	}
	if m := s.Mean(); m < 4000 || m > 6000 {
		t.Errorf("reservoir mean %v far from 4999.5", m)
	}
}

func TestReservoirBelowCapacityKeepsAll(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	if got := r.Sample().N(); got != 50 {
		t.Errorf("retained %d, want 50", got)
	}
}

func TestSummary(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64())
	}
	sum := Summarize(&s)
	if sum.N != 10000 {
		t.Errorf("N = %d", sum.N)
	}
	if sum.P50 < 0.45 || sum.P50 > 0.55 {
		t.Errorf("P50 = %v", sum.P50)
	}
	if sum.P999 < sum.P99 || sum.P99 < sum.P90 || sum.P90 < sum.P50 {
		t.Error("percentiles not monotone")
	}
	if !strings.Contains(sum.String(), "n=10000") {
		t.Errorf("String() = %q", sum.String())
	}
}

func TestSeriesAtAndOrdering(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Append(2, 20)
	s.Append(2, 25) // duplicate timestamp: last wins
	s.Append(4, 40)
	if got := s.At(0.5, -1); got != -1 {
		t.Errorf("At(0.5) = %v, want default", got)
	}
	if got := s.At(2, 0); got != 25 {
		t.Errorf("At(2) = %v, want 25", got)
	}
	if got := s.At(3, 0); got != 25 {
		t.Errorf("At(3) = %v, want 25", got)
	}
	if got := s.At(9, 0); got != 40 {
		t.Errorf("At(9) = %v, want 40", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append did not panic")
		}
	}()
	s.Append(1, 0)
}

func TestSeriesMeanValue(t *testing.T) {
	var s Series
	s.Append(0, 0)
	s.Append(1, 10) // value 0 holds for [0,1)
	s.Append(3, 0)  // value 10 holds for [1,3)
	// time-weighted mean over [0,3) = (0*1 + 10*2)/3
	if got := s.MeanValue(); math.Abs(got-20.0/3) > 1e-12 {
		t.Errorf("MeanValue = %v", got)
	}
	var one Series
	one.Append(5, 7)
	if one.MeanValue() != 7 {
		t.Errorf("single-point MeanValue = %v", one.MeanValue())
	}
}

func TestSeriesSettlingTime(t *testing.T) {
	var s Series
	s.Append(0, 0)
	s.Append(1, 0.5)
	s.Append(2, 0.95)
	s.Append(3, 1.02)
	s.Append(4, 0.99)
	s.Append(5, 1.0)
	if got := s.SettlingTime(0.05); got != 3 {
		t.Errorf("SettlingTime = %v, want 3", got)
	}
	if got := s.SettlingTime(1e-9); got != 5 {
		t.Errorf("strict SettlingTime = %v, want 5", got)
	}
}

func TestSeriesAfterAndDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i*i))
	}
	tail := s.After(90)
	if tail.Len() != 10 || tail.T[0] != 90 {
		t.Errorf("After(90) = len %d first %v", tail.Len(), tail.T)
	}
	d := s.Downsample(5)
	if d.Len() != 5 || d.T[0] != 0 || d.T[4] != 99 {
		t.Errorf("Downsample endpoints: %v", d.T)
	}
	full := s.Downsample(1000)
	if full.Len() != 100 {
		t.Errorf("Downsample above size should copy all, got %d", full.Len())
	}
}

// TestSeriesDownsampleTinyBudgets pins the maxPoints edge cases:
// maxPoints=1 must not divide by zero (it keeps the first point),
// maxPoints=2 keeps exactly first+last, and maxPoints<=0 means "no
// limit" and copies the whole series.
func TestSeriesDownsampleTinyBudgets(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(10*i))
	}
	one := s.Downsample(1)
	if one.Len() != 1 || one.T[0] != 0 || one.V[0] != 0 {
		t.Errorf("Downsample(1) = T %v V %v, want first point only", one.T, one.V)
	}
	two := s.Downsample(2)
	if two.Len() != 2 || two.T[0] != 0 || two.T[1] != 9 {
		t.Errorf("Downsample(2) = %v, want first and last", two.T)
	}
	all := s.Downsample(0)
	if all.Len() != 10 {
		t.Errorf("Downsample(0) len = %d, want full copy", all.Len())
	}
	var empty Series
	if got := empty.Downsample(1); got.Len() != 0 {
		t.Errorf("empty Downsample(1) len = %d, want 0", got.Len())
	}
}

// TestSeriesAfterNoAliasing verifies that appending to an After()
// sub-series cannot overwrite the parent's points: the sub-series
// slices are capacity-capped, so growth reallocates.
func TestSeriesAfterNoAliasing(t *testing.T) {
	var s Series
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i))
	}
	tail := s.After(2)
	s.Append(5, 5)
	tail.Append(100, -1)
	if s.T[5] != 5 || s.V[5] != 5 {
		t.Errorf("parent point clobbered by sub-series append: T[5]=%v V[5]=%v", s.T[5], s.V[5])
	}
	if tail.Len() != 4 || tail.T[3] != 100 {
		t.Errorf("sub-series append lost: %v", tail.T)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 0.123456)
	tb.AddRow("b", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "alpha") || !strings.Contains(lines[1], "0.1235") {
		t.Errorf("row = %q", lines[1])
	}
}

func BenchmarkSampleAddQuantile(b *testing.B) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
	_ = s.Quantile(0.999)
}

func TestBoundedSample(t *testing.T) {
	const limit, n = 50, 10000
	s := NewBoundedSample(limit, 1)
	var sum float64
	for i := 0; i < n; i++ {
		x := float64(i)
		s.Add(x)
		sum += x
	}
	if s.N() != n {
		t.Errorf("N = %d, want %d (stream count, not reservoir size)", s.N(), n)
	}
	if s.Retained() != limit {
		t.Errorf("Retained = %d, want %d", s.Retained(), limit)
	}
	if s.Sum() != sum {
		t.Errorf("Sum = %v, want %v (exact over stream)", s.Sum(), sum)
	}
	if got, want := s.Mean(), sum/n; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v (exact over stream)", got, want)
	}
	// Quantiles are approximate but must stay inside the observed range,
	// and the median of a uniform 0..n ramp should land near the middle.
	med := s.Quantile(0.5)
	if med < 0 || med > float64(n-1) {
		t.Errorf("median %v outside observed range", med)
	}
	if med < 0.2*float64(n) || med > 0.8*float64(n) {
		t.Errorf("median %v implausible for uniform ramp of %d", med, n)
	}
}

func TestBoundedSampleDeterministic(t *testing.T) {
	mk := func() []float64 {
		s := NewBoundedSample(10, 42)
		for i := 0; i < 1000; i++ {
			s.Add(float64(i * 7 % 113))
		}
		return s.Values()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoirs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBoundedSampleBelowLimitExact(t *testing.T) {
	s := NewBoundedSample(100, 1)
	for i := 0; i < 50; i++ {
		s.Add(float64(i))
	}
	if s.N() != 50 || s.Retained() != 50 {
		t.Errorf("N = %d, Retained = %d, want 50/50", s.N(), s.Retained())
	}
	if got := s.Quantile(1); got != 49 {
		t.Errorf("Max = %v, want 49 (exact below limit)", got)
	}
}

func TestBoundedSampleBadLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBoundedSample(0, 1) did not panic")
		}
	}()
	NewBoundedSample(0, 1)
}
