// Package core implements the Aequitas distributed admission controller —
// Algorithm 1 of the paper, verbatim: a per-(destination-host, QoS) admit
// probability driven by AIMD on measured RPC network latency against
// per-QoS SLO targets, with unadmitted RPCs downgraded to the lowest
// (scavenger) class rather than dropped.
//
// One Controller instance lives at each sending host. Hosts run the
// algorithm with no coordination; fairness and convergence to the
// SLO-compliant QoS-mix are emergent properties of the AIMD dynamics
// (§5.1, §6.5).
package core

import (
	"fmt"
	"sort"

	"aequitas/internal/obs"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// Config parameterises the controller. The defaults are the paper's
// evaluation settings: α = 0.01, β = 0.01 per MTU (§6.1).
type Config struct {
	// Levels is the number of QoS classes (≥ 2). The highest Levels-1
	// classes carry SLOs; the last is the scavenger.
	Levels int
	// LatencyTargets[k] is the per-MTU RNL SLO for class k. The entry
	// for the lowest class is ignored (no SLO). Targets are normalised
	// per MTU so that larger RPCs get proportionally larger absolute
	// targets (§5.1, "Handling different RPC sizes").
	LatencyTargets []sim.Duration
	// TargetPercentiles[k] is the percentile at which class k's SLO is
	// defined (e.g. 99.9). It sets the additive-increase window:
	// increment_window = latency_target · 100/(100 − pctl), so a higher
	// tail makes the algorithm more conservative (Algorithm 1 line 4).
	TargetPercentiles []float64
	// Alpha is the additive increment applied at most once per
	// increment window.
	Alpha float64
	// Beta is the multiplicative decrement per SLO miss per MTU.
	Beta float64
	// Floor is the lower bound on the admit probability, preventing
	// starvation: at zero no RPC would run on the class, so no further
	// measurements could raise the probability again (§5.1).
	Floor float64

	// Ablation switches (all false in the paper's design).

	// NoIncrementWindow applies the additive increase on every
	// SLO-compliant completion instead of once per window.
	NoIncrementWindow bool
	// NoSizeScaledMD makes the multiplicative decrease a constant β
	// regardless of RPC size.
	NoSizeScaledMD bool
	// DropInsteadOfDowngrade rejects unadmitted RPCs instead of
	// demoting them to the scavenger class.
	DropInsteadOfDowngrade bool
}

// Defaults3 returns the paper's 3-QoS configuration with the given
// per-MTU latency targets for QoSh and QoSm, both at the 99.9th
// percentile.
func Defaults3(targetHigh, targetMedium sim.Duration) Config {
	return Config{
		Levels:            3,
		LatencyTargets:    []sim.Duration{targetHigh, targetMedium, 0},
		TargetPercentiles: []float64{99.9, 99.9, 0},
		Alpha:             0.01,
		Beta:              0.01,
		Floor:             0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Levels < 2 {
		return fmt.Errorf("core: need at least 2 QoS levels, got %d", c.Levels)
	}
	if len(c.LatencyTargets) != c.Levels {
		return fmt.Errorf("core: %d latency targets for %d levels", len(c.LatencyTargets), c.Levels)
	}
	if len(c.TargetPercentiles) != c.Levels {
		return fmt.Errorf("core: %d percentiles for %d levels", len(c.TargetPercentiles), c.Levels)
	}
	for k := 0; k < c.Levels-1; k++ {
		if c.LatencyTargets[k] <= 0 {
			return fmt.Errorf("core: class %d needs a positive latency target", k)
		}
		if p := c.TargetPercentiles[k]; p < 50 || p >= 100 {
			return fmt.Errorf("core: class %d percentile %v out of [50, 100)", k, p)
		}
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: α = %v out of (0, 1]", c.Alpha)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("core: β = %v out of (0, 1]", c.Beta)
	}
	if c.Floor < 0 || c.Floor >= 1 {
		return fmt.Errorf("core: floor = %v out of [0, 1)", c.Floor)
	}
	return nil
}

// incrementWindow computes Algorithm 1 line 4 for class k.
func (c Config) incrementWindow(k int) sim.Duration {
	pctl := c.TargetPercentiles[k]
	return sim.Duration(float64(c.LatencyTargets[k]) * 100 / (100 - pctl))
}

// Stats counts controller activity.
type Stats struct {
	Admitted   int64
	Downgraded int64
	Dropped    int64
	SLOMisses  int64
	SLOMet     int64
}

// Controller is the per-host admission controller. It implements
// rpc.Admitter.
type Controller struct {
	cfg    Config
	lowest qos.Class
	state  map[stateKey]*classState
	Stats  Stats
}

type stateKey struct {
	dst   int
	class qos.Class
}

type classState struct {
	pAdmit        float64
	lastIncrease  sim.Time
	everIncreased bool
}

// New builds a Controller; the configuration must validate.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:    cfg,
		lowest: qos.Class(cfg.Levels - 1),
		state:  make(map[stateKey]*classState),
	}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller's configuration.
func (ct *Controller) Config() Config { return ct.cfg }

// Reset discards all learned admission state, returning every channel to
// its initial p_admit of 1 — the state loss a host crash implies
// (Algorithm 1 keeps its state in sender memory only). Cumulative Stats
// are kept; they describe the whole run.
func (ct *Controller) Reset() {
	clear(ct.state)
}

func (ct *Controller) classState(dst int, class qos.Class) *classState {
	k := stateKey{dst, class}
	st, ok := ct.state[k]
	if !ok {
		st = &classState{pAdmit: 1} // Algorithm 1 line 3
		ct.state[k] = st
	}
	return st
}

// AdmitProbability exposes the current p_admit for a (dst, class) pair,
// for convergence instrumentation (Figures 17, 18, 28, 29).
func (ct *Controller) AdmitProbability(dst int, class qos.Class) float64 {
	if class >= ct.lowest {
		return 1
	}
	return ct.classState(dst, class).pAdmit
}

// ForEachState visits every (dst, class) admission state in deterministic
// order with its current admit probability and the time remaining before
// the additive-increase window reopens at now (zero when the window is
// already open or no increase has happened yet).
func (ct *Controller) ForEachState(now sim.Time, f func(dst int, class qos.Class, pAdmit float64, windowRemaining sim.Duration)) {
	keys := make([]stateKey, 0, len(ct.state))
	for k := range ct.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].class < keys[j].class
	})
	for _, k := range keys {
		st := ct.state[k]
		var rem sim.Duration
		if st.everIncreased {
			if open := st.lastIncrease + ct.cfg.incrementWindow(int(k.class)); open > now {
				rem = open - now
			}
		}
		f(k.dst, k.class, st.pAdmit, rem)
	}
}

// MetricsSampler returns an obs.Sampler exposing this controller's
// per-(dst, class) admit probability and additive-increase window
// remainder; host identifies the controller's sending host in metric
// names.
func (ct *Controller) MetricsSampler(host int) obs.Sampler {
	return func(now sim.Time, emit func(string, float64)) {
		ct.ForEachState(now, func(dst int, class qos.Class, p float64, rem sim.Duration) {
			key := fmt.Sprintf("h%d.d%d.q%d", host, dst, int(class))
			emit("padmit."+key, p)
			emit("incwin_us."+key, rem.Micros())
		})
	}
}

// Admit implements rpc.Admitter — Algorithm 1 lines 5-12. RPCs requesting
// the lowest class are always admitted (it has no SLO to protect).
func (ct *Controller) Admit(s *sim.Simulator, dst int, requested qos.Class, sizeMTUs int64) rpc.Decision {
	return ct.AdmitAt(s.Rand().Float64(), dst, requested, sizeMTUs)
}

// AdmitAt is Admit with the uniform random draw supplied by the caller,
// for use outside the simulator (e.g. embedding the controller in a real
// RPC stack).
func (ct *Controller) AdmitAt(draw float64, dst int, requested qos.Class, _ int64) rpc.Decision {
	if requested >= ct.lowest || requested < 0 {
		ct.Stats.Admitted++
		return rpc.Decision{Class: ct.lowest}
	}
	st := ct.classState(dst, requested)
	if draw <= st.pAdmit {
		ct.Stats.Admitted++
		return rpc.Decision{Class: requested}
	}
	if ct.cfg.DropInsteadOfDowngrade {
		ct.Stats.Dropped++
		return rpc.Decision{Drop: true}
	}
	ct.Stats.Downgraded++
	return rpc.Decision{Class: ct.lowest, Downgraded: true}
}

// Observe implements rpc.Admitter — Algorithm 1 lines 13-20. rnl is the
// measured RPC network latency of a completed RPC of sizeMTUs that ran on
// class run toward dst.
func (ct *Controller) Observe(s *sim.Simulator, dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	ct.ObserveAt(s.Now(), dst, run, rnl, sizeMTUs)
}

// ObserveAt is Observe with an explicit timestamp, for use outside the
// simulator.
func (ct *Controller) ObserveAt(now sim.Time, dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64) {
	if run >= ct.lowest || run < 0 {
		return // the scavenger class has no SLO and no admit probability
	}
	if sizeMTUs < 1 {
		sizeMTUs = 1
	}
	st := ct.classState(dst, run)
	target := ct.cfg.LatencyTargets[run]
	// Algorithm 1 line 15: per-MTU normalised comparison.
	if rnl/sim.Duration(sizeMTUs) < target {
		ct.Stats.SLOMet++
		window := ct.cfg.incrementWindow(int(run))
		if ct.cfg.NoIncrementWindow || !st.everIncreased || now-st.lastIncrease > window {
			st.pAdmit = min(st.pAdmit+ct.cfg.Alpha, 1)
			st.lastIncrease = now
			st.everIncreased = true
		}
		return
	}
	ct.Stats.SLOMisses++
	dec := ct.cfg.Beta
	if !ct.cfg.NoSizeScaledMD {
		dec *= float64(sizeMTUs)
	}
	st.pAdmit = max(st.pAdmit-dec, ct.cfg.Floor)
}
