// Package flight implements the admission-control flight recorder: a
// bounded-memory black box that records every admission decision's context
// (timestamp, peer, class, the admit probability consulted, the verdict)
// and every SLO observation (measured latency, met/missed) into a
// lock-free sharded ring buffer, so that when an anomaly engine trigger
// fires — SLO burn rate, a collapsing p_admit, a fault window — the last
// N decisions can be frozen and dumped as schema-tagged NDJSON
// ("aequitas.flight/v1") for offline diagnosis.
//
// The record path is allocation-free and lock-free: a shard is selected by
// hashing the admission channel, a slot is claimed with one atomic add on
// the shard's cursor, and the fixed-size Record is written in place. A nil
// *Ring disables recording with a single pointer check, which is the
// zero-overhead path the controller's admit fast path relies on.
//
// Adaptive sampling keeps the interesting records: downgrades, drops and
// SLO misses are always retained, while admits and SLO-met completions are
// probabilistically sampled (1 in SampleAdmits) using a hash of the
// shard's offered-record counter — no RNG draws and no clock reads, so a
// deterministic caller (the simulator) produces bit-identical rings.
package flight

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"aequitas/internal/sim"
)

// Kind distinguishes the two record types.
type Kind uint8

const (
	// KindDecision is an admission decision (Algorithm 1 lines 5-12).
	KindDecision Kind = iota + 1
	// KindComplete is an SLO observation on a completed RPC (lines 13-20).
	KindComplete
)

func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindComplete:
		return "complete"
	default:
		return "unknown"
	}
}

// Verdict is the outcome a record captures: the admission verdict for
// decisions, the SLO comparison for completions.
type Verdict uint8

const (
	VerdictAdmit Verdict = iota + 1
	VerdictDowngrade
	VerdictDrop
	VerdictSLOMet
	VerdictSLOMiss
	// VerdictExpired marks a request rejected before the admission draw
	// because its remaining deadline budget could not cover the observed
	// latency floor — it would have timed out even if admitted.
	VerdictExpired
)

func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictDowngrade:
		return "downgrade"
	case VerdictDrop:
		return "drop"
	case VerdictSLOMet:
		return "slo_met"
	case VerdictSLOMiss:
		return "slo_miss"
	case VerdictExpired:
		return "expired"
	default:
		return "unknown"
	}
}

// Quota is the quota state attached to a decision record.
type Quota uint8

const (
	// QuotaNone marks traffic admitted (or not) by the probabilistic path
	// with no quota involvement.
	QuotaNone Quota = iota
	// QuotaBypass marks an RPC admitted on the quota fast path: it was
	// within its tenant's granted rate and never reached the draw.
	QuotaBypass
)

func (q Quota) String() string {
	if q == QuotaBypass {
		return "bypass"
	}
	return "none"
}

// Record is one flight-recorder entry. The struct is fixed-size and
// pointer-free so the ring is a flat slice the GC never scans per record
// and the record path never allocates.
type Record struct {
	// TS is the record's timestamp on the controller's clock.
	TS sim.Time
	// PAdmit is the admit probability of the (peer, class) channel: at
	// decision time for decisions, after the AIMD update for completions.
	PAdmit float64
	// LatencyUS is the measured latency in microseconds (completions only).
	LatencyUS float64
	// Src identifies the recording controller (the sending host in the
	// simulator, 0 in a single-process server).
	Src int32
	// Peer is the admission channel's destination id.
	Peer int32
	// SizeMTUs is the RPC's size in MTUs.
	SizeMTUs int32
	// Requested is the class the RPC asked for; Class is the class the
	// verdict assigned (decisions) or the class the RPC ran on
	// (completions).
	Requested int8
	Class     int8
	Kind      Kind
	Verdict   Verdict
	Quota     Quota
}

// Stats counts the ring's activity since creation (or the last reset).
type Stats struct {
	// Offered is the number of records presented to the ring.
	Offered uint64
	// SampledOut counts admit/SLO-met records skipped by sampling.
	SampledOut uint64
	// DroppedFrozen counts records that arrived while a dump was freezing
	// the ring and were discarded.
	DroppedFrozen uint64
}

// Config parameterises a Ring.
type Config struct {
	// Records is the total ring capacity across all shards (default
	// 16384). Rounded up so each shard holds a power of two.
	Records int
	// Shards is the number of independent ring shards (default 8, rounded
	// up to a power of two). Writers hash their admission channel to a
	// shard, so concurrent recorders on different channels touch disjoint
	// cursors.
	Shards int
	// SampleAdmits keeps 1 in SampleAdmits admit and SLO-met records
	// (rounded up to a power of two; default 8). Values <= 1 keep
	// everything. Downgrades, drops, SLO misses and quota bypasses are
	// always kept.
	SampleAdmits int
}

// shard is one independent slice of the ring. The header is padded to
// its own cache lines so cursors on different shards never false-share.
type shard struct {
	seq     atomic.Uint64 // next slot ordinal within this shard
	offered atomic.Uint64 // records presented (drives sampling)
	sampled atomic.Uint64 // records skipped by sampling
	dropped atomic.Uint64 // records discarded during a freeze
	active  atomic.Int64  // writers currently inside push
	_       [24]byte

	recs []Record
	// commit[i] holds seq+1 of the last completed write to recs[i], with
	// release semantics: a reader that observes the commit value observes
	// the record's fields.
	commit []atomic.Uint64
}

// Ring is the flight recorder's storage. All methods are safe for
// concurrent use; a nil *Ring is the disabled recorder and every method
// is a cheap no-op.
type Ring struct {
	shards     []shard
	shardShift uint   // 64 - log2(len(shards)): shardFor keeps the top hash bits
	slotMask   uint64 // per-shard capacity - 1
	sampleMask uint64 // keep admits when hash(offered) & sampleMask == 0
	frozen     atomic.Bool
	// snapMu serializes snapshots: without it, the first of two concurrent
	// snapshots to finish would unfreeze the ring while the other is still
	// copying (or resetting seq, letting two writers claim one slot).
	snapMu sync.Mutex
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewRing builds a Ring. The zero Config gives 16384 records over 8
// shards with 1-in-8 admit sampling.
func NewRing(cfg Config) *Ring {
	if cfg.Records <= 0 {
		cfg.Records = 1 << 14
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	shards := nextPow2(cfg.Shards)
	per := nextPow2((cfg.Records + shards - 1) / shards)
	sample := cfg.SampleAdmits
	if sample == 0 {
		sample = 8
	}
	sample = nextPow2(sample)
	shift := uint(64)
	for s := shards; s > 1; s >>= 1 {
		shift--
	}
	r := &Ring{
		shards:     make([]shard, shards),
		shardShift: shift,
		slotMask:   uint64(per - 1),
		sampleMask: uint64(sample - 1),
	}
	for i := range r.shards {
		r.shards[i].recs = make([]Record, per)
		r.shards[i].commit = make([]atomic.Uint64, per)
	}
	return r
}

// Cap reports the total record capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.shards) * int(r.slotMask+1)
}

// shardFor hashes an admission channel to a shard — Fibonacci hashing
// with the top bits kept, the well-mixed end of a golden-ratio multiply.
// The hash depends only on the record's content, never the calling
// goroutine, so a deterministic caller fills the shards
// deterministically.
func (r *Ring) shardFor(src, peer int32, class int8) *shard {
	h := (uint64(uint32(src))<<20 ^ uint64(uint32(peer))<<4 ^ uint64(uint8(class))) * 0x9E3779B97F4A7C15
	return &r.shards[h>>r.shardShift]
}

// sampleHash decides whether the n-th offered record on a shard survives
// sampling. Fibonacci scrambling of the counter spreads kept records
// evenly without an RNG draw.
func (r *Ring) sampleKeep(n uint64) bool {
	return (n*0x9E3779B97F4A7C15)>>33&r.sampleMask == 0
}

// push claims a slot on sh and writes rec into it. Writers register in
// sh.active before checking the freeze flag, so a freezer that has set
// frozen and seen active==0 knows no writer is mid-slot.
func (r *Ring) push(sh *shard, rec Record) {
	sh.active.Add(1)
	if r.frozen.Load() {
		sh.dropped.Add(1)
		sh.active.Add(-1)
		return
	}
	seq := sh.seq.Add(1) - 1
	i := seq & r.slotMask
	// Wait for the previous lap's write to this slot to commit before
	// overwriting it: two writers a full lap apart would otherwise touch
	// the slot concurrently (reachable when a writer is descheduled while
	// the ring wraps). Every claimed seq is committed — a frozen writer
	// bails before claiming — and each writer waits only on a strictly
	// smaller seq, so the wait chain always bottoms out on a committed
	// slot. In the common case the slot committed a lap ago and the loop
	// is a single load, exactly what the fast path paid before.
	want := uint64(0)
	if seq > r.slotMask {
		want = seq - r.slotMask // previous lap's commit value: (seq-cap)+1
	}
	for sh.commit[i].Load() != want {
		runtime.Gosched()
	}
	sh.recs[i] = rec
	sh.commit[i].Store(seq + 1)
	sh.active.Add(-1)
}

// Decision records one admission decision. v must be VerdictAdmit,
// VerdictDowngrade, VerdictDrop or VerdictExpired; only admits are
// subject to sampling.
func (r *Ring) Decision(ts sim.Time, src, peer int32, requested, got int8, v Verdict, pAdmit float64, sizeMTUs int32) {
	if r == nil {
		return
	}
	sh := r.shardFor(src, peer, requested)
	n := sh.offered.Add(1)
	if v == VerdictAdmit && !r.sampleKeep(n) {
		sh.sampled.Add(1)
		return
	}
	r.push(sh, Record{
		TS: ts, PAdmit: pAdmit, Src: src, Peer: peer, SizeMTUs: sizeMTUs,
		Requested: requested, Class: got, Kind: KindDecision, Verdict: v,
	})
}

// QuotaBypassDecision records an RPC admitted on the quota fast path.
// Quota bypasses are always kept: they are the audit trail for in-quota
// traffic skipping the draw.
func (r *Ring) QuotaBypassDecision(ts sim.Time, src, peer int32, class int8, sizeMTUs int32) {
	if r == nil {
		return
	}
	sh := r.shardFor(src, peer, class)
	sh.offered.Add(1)
	r.push(sh, Record{
		TS: ts, PAdmit: 1, Src: src, Peer: peer, SizeMTUs: sizeMTUs,
		Requested: class, Class: class, Kind: KindDecision, Verdict: VerdictAdmit,
		Quota: QuotaBypass,
	})
}

// Complete records one SLO observation. v must be VerdictSLOMet or
// VerdictSLOMiss; met completions are subject to sampling. pAdmit is the
// channel's probability after the AIMD update.
func (r *Ring) Complete(ts sim.Time, src, peer int32, class int8, v Verdict, pAdmit float64, sizeMTUs int32, latencyUS float64) {
	if r == nil {
		return
	}
	sh := r.shardFor(src, peer, class)
	n := sh.offered.Add(1)
	if v == VerdictSLOMet && !r.sampleKeep(n) {
		sh.sampled.Add(1)
		return
	}
	r.push(sh, Record{
		TS: ts, PAdmit: pAdmit, LatencyUS: latencyUS, Src: src, Peer: peer,
		SizeMTUs: sizeMTUs, Requested: class, Class: class, Kind: KindComplete, Verdict: v,
	})
}

// Stats returns the ring's cumulative counters.
func (r *Ring) Stats() Stats {
	var st Stats
	if r == nil {
		return st
	}
	for i := range r.shards {
		sh := &r.shards[i]
		st.Offered += sh.offered.Load()
		st.SampledOut += sh.sampled.Load()
		st.DroppedFrozen += sh.dropped.Load()
	}
	return st
}

// freeze stops writers and waits until none is mid-slot.
func (r *Ring) freeze() {
	r.frozen.Store(true)
	for i := range r.shards {
		for r.shards[i].active.Load() != 0 {
			// Writers between active.Add(1) and active.Add(-1) hold the
			// slot for a handful of instructions, but one may be
			// descheduled inside that window — yield rather than burn a
			// core until it runs again.
			runtime.Gosched()
		}
	}
}

// Snapshot freezes the ring, copies out every committed record in
// deterministic order — by timestamp, with (src, peer, class, shard
// order) tiebreaks — and unfreezes. With reset true the ring restarts
// empty, so consecutive dumps partition the timeline. Records that arrive
// during the freeze are counted in Stats.DroppedFrozen.
func (r *Ring) Snapshot(reset bool) []Record {
	if r == nil {
		return nil
	}
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	r.freeze()
	var out []Record
	for si := range r.shards {
		sh := &r.shards[si]
		seq := sh.seq.Load()
		cap64 := r.slotMask + 1
		start := uint64(0)
		if seq > cap64 {
			start = seq - cap64
		}
		for s := start; s < seq; s++ {
			i := s & r.slotMask
			if sh.commit[i].Load() == s+1 {
				out = append(out, sh.recs[i])
			}
		}
		if reset {
			sh.seq.Store(0)
			for i := range sh.commit {
				sh.commit[i].Store(0)
			}
		}
	}
	r.frozen.Store(false)
	sortRecords(out)
	return out
}

// sortRecords orders a snapshot for dumping: primary by timestamp so the
// dump reads chronologically, with content tiebreaks so the order is a
// pure function of the record multiset (shard gathering order never
// leaks into the dump).
func sortRecords(recs []Record) {
	slices.SortStableFunc(recs, func(a, b Record) int {
		switch {
		case a.TS != b.TS:
			return int64Cmp(int64(a.TS), int64(b.TS))
		case a.Src != b.Src:
			return int64Cmp(int64(a.Src), int64(b.Src))
		case a.Peer != b.Peer:
			return int64Cmp(int64(a.Peer), int64(b.Peer))
		case a.Requested != b.Requested:
			return int64Cmp(int64(a.Requested), int64(b.Requested))
		case a.Kind != b.Kind:
			return int64Cmp(int64(a.Kind), int64(b.Kind))
		case a.Verdict != b.Verdict:
			return int64Cmp(int64(a.Verdict), int64(b.Verdict))
		case a.PAdmit != b.PAdmit:
			if a.PAdmit < b.PAdmit {
				return -1
			}
			return 1
		case a.LatencyUS != b.LatencyUS:
			if a.LatencyUS < b.LatencyUS {
				return -1
			}
			return 1
		default:
			return int64Cmp(int64(a.SizeMTUs), int64(b.SizeMTUs))
		}
	})
}

func int64Cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
