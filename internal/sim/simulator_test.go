package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.AtFunc(30, func(*Simulator) { got = append(got, 3) })
	s.AtFunc(10, func(*Simulator) { got = append(got, 1) })
	s.AtFunc(20, func(*Simulator) { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AtFunc(100, func(*Simulator) { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events ran out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	count := 0
	var tick func(*Simulator)
	tick = func(sm *Simulator) {
		count++
		if count < 5 {
			sm.AfterFunc(10, tick)
		}
	}
	s.AfterFunc(10, tick)
	s.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 50 {
		t.Errorf("Now() = %v, want 50", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	h := s.AtFunc(10, func(*Simulator) { ran = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	h := s.AtFunc(10, func(*Simulator) {})
	s.Run()
	if h.Pending() {
		t.Fatal("fired event still pending")
	}
	if h.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.AtFunc(100, func(sm *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sm.At(50, EventFunc(func(*Simulator) {}))
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.AtFunc(at, func(*Simulator) { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v, want 25", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %v, want all 4", fired)
	}
}

// TestRunUntilBoundary: RunUntil(end) is inclusive — an event scheduled
// exactly at end fires, and one at end+1 stays queued.
func TestRunUntilBoundary(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{25, 26} {
		at := at
		s.AtFunc(at, func(*Simulator) { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 1 || fired[0] != 25 {
		t.Errorf("fired %v, want exactly the event at end=25", fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now() = %v, want 25", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want the end+1 event still queued", s.Pending())
	}
}

// TestRunUntilDrainsCancelledHeadPastEnd: a cancelled event at the head
// of the queue is discarded by RunUntil even when its timestamp is past
// end, so the queue does not accumulate dead nodes across epochs.
func TestRunUntilDrainsCancelledHeadPastEnd(t *testing.T) {
	s := New(1)
	h := s.AtFunc(50, func(*Simulator) { t.Error("cancelled event ran") })
	live := false
	s.AtFunc(60, func(*Simulator) { live = true })
	h.Cancel()
	s.RunUntil(20)
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want cancelled head drained and live event kept", s.Pending())
	}
	s.Run()
	if !live {
		t.Error("live event past end never ran")
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := New(1)
	h := s.AtFunc(10, func(*Simulator) { t.Fatal("cancelled event ran") })
	h.Cancel()
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Errorf("Now() = %v, want 100", s.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var vals []int64
		var step func(*Simulator)
		n := 0
		step = func(sm *Simulator) {
			vals = append(vals, sm.Rand().Int63n(1000), int64(sm.Now()))
			n++
			if n < 100 {
				sm.AfterFunc(Duration(sm.Rand().Int63n(50)+1), step)
			}
		}
		s.AfterFunc(1, step)
		s.Run()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if Microsecond.Micros() != 1 {
		t.Errorf("Microsecond.Micros() = %v", Microsecond.Micros())
	}
	if FromStd(time.Millisecond) != Millisecond {
		t.Errorf("FromStd(1ms) = %v", FromStd(time.Millisecond))
	}
	if got := FromSeconds(1.5); got != 3*Second/2 {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromMicros(15); got != 15*Microsecond {
		t.Errorf("FromMicros(15) = %v", got)
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Errorf("Std() = %v", (2 * Second).Std())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000000s"},
		{3 * Millisecond, "3.000ms"},
		{15 * Microsecond, "15.000us"},
		{120 * Nanosecond, "120ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 100 Gbps = 120 ns exactly.
	if got := (100 * Gbps).TxTime(1500); got != 120*Nanosecond {
		t.Errorf("TxTime(1500) @100G = %v, want 120ns", got)
	}
	// One byte at 100 Gbps = 80 ps.
	if got := (100 * Gbps).TxTime(1); got != 80*Picosecond {
		t.Errorf("TxTime(1) @100G = %v, want 80ps", got)
	}
	// Zero-rate link never transmits.
	if got := Rate(0).TxTime(1); got != MaxTime {
		t.Errorf("TxTime at rate 0 = %v, want MaxTime", got)
	}
	// Large transfer must not overflow: 10 GiB at 1 Gbps is 85.899345920 s.
	wantLarge := Duration(int64(10<<30) * 8 * 1000) // ps = bits/1e9 * 1e12
	if got := (1 * Gbps).TxTime(10 << 30); got != wantLarge {
		t.Errorf("large TxTime = %v, want %v", got, wantLarge)
	}
}

func TestBytesIn(t *testing.T) {
	if got := (100 * Gbps).BytesIn(120 * Nanosecond); got != 1500 {
		t.Errorf("BytesIn(120ns) @100G = %d, want 1500", got)
	}
	if got := (8 * BitPerSecond).BytesIn(2 * Second); got != 2 {
		t.Errorf("BytesIn(2s) @8bps = %d, want 2", got)
	}
	if got := (100 * Gbps).BytesIn(0); got != 0 {
		t.Errorf("BytesIn(0) = %d, want 0", got)
	}
}

// TxTime then BytesIn must round-trip: transmitting for exactly TxTime(n)
// delivers at least n bytes, and one picosecond less delivers fewer.
func TestTxTimeBytesInRoundTrip(t *testing.T) {
	f := func(rateG uint16, kb uint16) bool {
		r := Rate(int64(rateG%400)+1) * Gbps
		n := int(kb%64)*1024 + 1
		d := r.TxTime(n)
		return r.BytesIn(d) >= int64(n) && r.BytesIn(d-1) < int64(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Event timestamps must be non-decreasing across an arbitrary schedule.
func TestMonotonicClock(t *testing.T) {
	f := func(seeds []uint8) bool {
		s := New(7)
		last := Time(-1)
		ok := true
		for _, v := range seeds {
			s.AtFunc(Time(v), func(sm *Simulator) {
				if sm.Now() < last {
					ok = false
				}
				last = sm.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AfterFunc(Duration(i%1000), func(*Simulator) {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// TestHandleStaleAfterRecycle: a node recycled through the free list must
// not let a stale Handle cancel (or report pending for) the event that now
// occupies it.
func TestHandleStaleAfterRecycle(t *testing.T) {
	s := New(1)
	h1 := s.AtFunc(10, func(*Simulator) {})
	s.Run() // fires h1; its node goes to the free list

	ran := false
	h2 := s.AtFunc(20, func(*Simulator) { ran = true })
	if h2.s != h1.s {
		t.Fatal("test premise broken: node was not recycled")
	}
	if h1.Pending() {
		t.Error("stale handle reports pending")
	}
	if h1.Cancel() {
		t.Error("stale handle cancelled the recycled node's new event")
	}
	if !h2.Pending() {
		t.Error("fresh handle not pending after stale Cancel attempt")
	}
	s.Run()
	if !ran {
		t.Error("recycled node's event did not run")
	}
}

// TestHandleStaleAfterCancelRecycle: same, when the original occupant was
// cancelled (recycled from the cancel path) rather than fired.
func TestHandleStaleAfterCancelRecycle(t *testing.T) {
	s := New(1)
	h1 := s.AtFunc(10, func(*Simulator) { t.Error("cancelled event ran") })
	h1.Cancel()
	s.Run() // discards + recycles the cancelled node

	ran := false
	h2 := s.AtFunc(20, func(*Simulator) { ran = true })
	if h1.Cancel() || h1.Pending() {
		t.Error("stale handle still controls recycled node")
	}
	s.Run()
	if !ran || h2.Pending() {
		t.Errorf("ran = %v, h2.Pending = %v", ran, h2.Pending())
	}
}

// TestRunUntilOnlyCancelled: RunUntil must drain a queue holding nothing
// but cancelled events (recycling them) and still advance the clock.
func TestRunUntilOnlyCancelled(t *testing.T) {
	s := New(1)
	var hs []Handle
	for i := Time(10); i <= 50; i += 10 {
		hs = append(hs, s.AtFunc(i, func(*Simulator) { t.Error("cancelled event ran") }))
	}
	for _, h := range hs {
		if !h.Cancel() {
			t.Fatal("Cancel failed")
		}
	}
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Errorf("Now() = %v, want 100", s.Now())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", s.Pending())
	}
	if len(s.free) != len(hs) {
		t.Errorf("free list has %d nodes, want %d", len(s.free), len(hs))
	}
}

// TestHeapOrderRandom stress-tests the monomorphic event heap: a random
// mix of schedules and cancellations must fire in strict (at, seq) order.
func TestHeapOrderRandom(t *testing.T) {
	s := New(99)
	rng := s.Rand()
	type key struct {
		at  Time
		seq int
	}
	var fired []key
	var handles []Handle
	for i := 0; i < 5000; i++ {
		i := i
		at := Time(rng.Intn(1000))
		handles = append(handles, s.AtFunc(at, func(*Simulator) {
			fired = append(fired, key{at, i})
		}))
	}
	cancelled := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		j := rng.Intn(len(handles))
		if handles[j].Cancel() {
			cancelled[j] = true
		}
	}
	s.Run()
	if want := 5000 - len(cancelled); len(fired) != want {
		t.Fatalf("fired %d events, want %d", len(fired), want)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("out of order at %d: %v then %v", i, a, b)
		}
	}
}

// TestFreeListReuse: steady-state schedule/run cycles must reuse nodes
// rather than allocate.
func TestFreeListReuse(t *testing.T) {
	s := New(1)
	// Prime the free list.
	for i := 0; i < 8; i++ {
		s.AfterFunc(1, func(*Simulator) {})
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		s.AfterFunc(1, func(*Simulator) {})
		s.Run()
	})
	// EventFunc closures may allocate; the scheduled node must not. Allow
	// at most the closure conversion.
	if allocs > 1 {
		t.Errorf("AllocsPerRun = %v, want <= 1 (nodes must be recycled)", allocs)
	}
}
