package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"aequitas/internal/sim"
)

// AttrRecord is one completed RPC's latency decomposition. The component
// durations partition the measured RNL: Wire is defined as the residual
// (RNL minus every measured component), so the sum is exact by
// construction and any accounting error shows up as a negative Wire.
//
// Systems that bypass the standard transport (Homa, D3, PDQ) produce no
// enqueue/emit instrumentation; their records degrade gracefully with
// Sender/Transport/Pacing/NIC/Switch zero and everything in Wire.
type AttrRecord struct {
	RPC      uint64
	Src, Dst int32
	Class    int16
	IssueTS  sim.Time

	// Admit is the admission-gate delay: issue to admission decision.
	Admit sim.Duration
	// Sender is host-side queueing before the first packet reaches the
	// NIC egress queue (stream backlog behind earlier messages and
	// window-limited waiting), excluding pacing stalls.
	Sender sim.Duration
	// Transport is first-enqueue to last-payload-packet emission:
	// window/CC stalls and inter-packet serialisation spacing, excluding
	// pacing stalls.
	Transport sim.Duration
	// Pacing is measured pacing-gate stall time (sub-packet windows).
	Pacing sim.Duration
	// NIC is the tail packet's host-uplink queue residency.
	NIC sim.Duration
	// Switch is the tail packet's switch-queue residency summed over the
	// remaining hops (one for the star, up to three for leaf-spine).
	Switch sim.Duration
	// Wire is the residual: serialisation, propagation, and the ack path.
	Wire sim.Duration

	RNL sim.Duration
}

// pendingAttr accumulates one in-flight RPC's instrumentation.
type pendingAttr struct {
	issue, admit, firstEnq, tailEmit sim.Time
	hasAdmit, hasEnq, hasTail        bool
	paceBefore, paceAfter            sim.Duration
	nic, sw                          sim.Duration
	maxResid                         sim.Duration
	tailHops                         int
}

// attrKey identifies one in-flight RPC. RPC ids are per-sender-stack
// counters, so the source host is part of the key: two hosts' RPC #4 are
// different RPCs.
type attrKey struct {
	src int
	rpc uint64
}

// Attributor decomposes each completed RPC's RNL into its components
// from lifecycle instrumentation in the RPC stack, the transport, and
// the fabric. A nil *Attributor is the disabled attributor: every method
// is a nil-checked no-op, the same zero-overhead contract as Tracer.
type Attributor struct {
	audit   *Auditor
	pending map[attrKey]*pendingAttr
	free    []*pendingAttr
	recs    []AttrRecord
}

// NewAttributor returns an enabled attributor. audit, when non-nil,
// receives each completed RPC's fabric queueing and RNL for bound
// checking.
func NewAttributor(audit *Auditor) *Attributor {
	return &Attributor{audit: audit, pending: make(map[attrKey]*pendingAttr)}
}

// Enabled reports whether the attributor records decompositions.
func (a *Attributor) Enabled() bool { return a != nil }

func (a *Attributor) alloc() *pendingAttr {
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		return p
	}
	return &pendingAttr{}
}

func (a *Attributor) recycle(k attrKey, p *pendingAttr) {
	delete(a.pending, k)
	*p = pendingAttr{}
	a.free = append(a.free, p)
}

// Issue starts tracking an RPC at its issue time.
func (a *Attributor) Issue(now sim.Time, src int, rpc uint64) {
	if a == nil {
		return
	}
	p := a.alloc()
	p.issue = now
	a.pending[attrKey{src, rpc}] = p
}

// Admit stamps the admission decision time.
func (a *Attributor) Admit(now sim.Time, src int, rpc uint64) {
	if a == nil {
		return
	}
	if p := a.pending[attrKey{src, rpc}]; p != nil {
		p.admit = now
		p.hasAdmit = true
	}
}

// Drop forgets an RPC rejected at admission.
func (a *Attributor) Drop(src int, rpc uint64) {
	if a == nil {
		return
	}
	k := attrKey{src, rpc}
	if p := a.pending[k]; p != nil {
		a.recycle(k, p)
	}
}

// FirstEnqueue stamps the first packet reaching the host NIC egress
// queue. Later calls for the same RPC (retransmissions) are ignored.
func (a *Attributor) FirstEnqueue(now sim.Time, src int, rpc uint64) {
	if a == nil {
		return
	}
	if p := a.pending[attrKey{src, rpc}]; p != nil && !p.hasEnq {
		p.firstEnq = now
		p.hasEnq = true
	}
}

// TailEmit stamps the emission of the packet carrying the RPC's last
// payload byte. A re-emission (go-back-N retransmit) overwrites the
// stamp and resets the tail-hop residencies, so the decomposition
// reflects the transmission that actually completed.
func (a *Attributor) TailEmit(now sim.Time, src int, rpc uint64) {
	if a == nil {
		return
	}
	if p := a.pending[attrKey{src, rpc}]; p != nil {
		p.tailEmit = now
		p.hasTail = true
		p.nic, p.sw, p.maxResid, p.tailHops = 0, 0, 0, 0
	}
}

// PaceStall accounts d of pacing-gate stall time to the RPC. Stalls
// before the first enqueue count toward the sender-side bucket, later
// ones toward the transport bucket.
func (a *Attributor) PaceStall(src int, rpc uint64, d sim.Duration) {
	if a == nil || d <= 0 {
		return
	}
	if p := a.pending[attrKey{src, rpc}]; p != nil {
		if p.hasEnq {
			p.paceAfter += d
		} else {
			p.paceBefore += d
		}
	}
}

// TailHop accounts one egress-queue residency of the RPC's tail packet.
// The first hop after emission is the host uplink (NIC); the rest are
// switch queues.
func (a *Attributor) TailHop(now sim.Time, src int, rpc uint64, resid sim.Duration) {
	if a == nil {
		return
	}
	if p := a.pending[attrKey{src, rpc}]; p != nil {
		if p.tailHops == 0 {
			p.nic += resid
		} else {
			p.sw += resid
		}
		if resid > p.maxResid {
			p.maxResid = resid
		}
		p.tailHops++
	}
}

// Complete closes out an RPC: compute the decomposition, retain the
// record (in completion order, so output is deterministic per run), and
// notify the auditor.
func (a *Attributor) Complete(now sim.Time, rpc uint64, src, dst, class int, rnl sim.Duration) {
	if a == nil {
		return
	}
	k := attrKey{src, rpc}
	p := a.pending[k]
	if p == nil {
		return
	}
	rec := AttrRecord{
		RPC: rpc, Src: int32(src), Dst: int32(dst), Class: int16(class),
		IssueTS: p.issue, RNL: rnl,
	}
	base := p.issue
	if p.hasAdmit {
		rec.Admit = p.admit - p.issue
		base = p.admit
	}
	if p.hasEnq {
		rec.Sender = p.firstEnq - base - p.paceBefore
		if p.hasTail {
			rec.Transport = p.tailEmit - p.firstEnq - p.paceAfter
		}
	}
	rec.Pacing = p.paceBefore + p.paceAfter
	rec.NIC = p.nic
	rec.Switch = p.sw
	rec.Wire = rnl - rec.Admit - rec.Sender - rec.Transport - rec.Pacing - rec.NIC - rec.Switch
	a.recs = append(a.recs, rec)
	a.audit.RPCDone(now, rpc, class, p.nic+p.sw, p.maxResid, rnl)
	a.recycle(k, p)
}

// PendingLen reports in-flight (issued, not yet completed or dropped)
// attribution entries. Fault paths must Drop what they lose, so tests
// use this to prove the pending map cannot grow without bound.
func (a *Attributor) PendingLen() int {
	if a == nil {
		return 0
	}
	return len(a.pending)
}

// Records returns the retained decompositions in completion order.
func (a *Attributor) Records() []AttrRecord {
	if a == nil {
		return nil
	}
	return a.recs
}

// ClassAttribution is the mean per-RPC decomposition for one class, in
// microseconds.
type ClassAttribution struct {
	Class int
	N     int

	AdmitUS, SenderUS, TransportUS, PacingUS, NICUS, SwitchUS, WireUS, RNLUS float64
}

// Summaries aggregates the retained records into per-class means,
// sorted by class.
func (a *Attributor) Summaries() []ClassAttribution {
	if a == nil || len(a.recs) == 0 {
		return nil
	}
	byClass := map[int]*ClassAttribution{}
	for i := range a.recs {
		r := &a.recs[i]
		c := byClass[int(r.Class)]
		if c == nil {
			c = &ClassAttribution{Class: int(r.Class)}
			byClass[int(r.Class)] = c
		}
		c.N++
		c.AdmitUS += r.Admit.Micros()
		c.SenderUS += r.Sender.Micros()
		c.TransportUS += r.Transport.Micros()
		c.PacingUS += r.Pacing.Micros()
		c.NICUS += r.NIC.Micros()
		c.SwitchUS += r.Switch.Micros()
		c.WireUS += r.Wire.Micros()
		c.RNLUS += r.RNL.Micros()
	}
	out := make([]ClassAttribution, 0, len(byClass))
	for _, c := range byClass {
		n := float64(c.N)
		c.AdmitUS /= n
		c.SenderUS /= n
		c.TransportUS /= n
		c.PacingUS /= n
		c.NICUS /= n
		c.SwitchUS /= n
		c.WireUS /= n
		c.RNLUS /= n
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// AttrCSVHeader is the per-RPC attribution CSV schema.
const AttrCSVHeader = "rpc,src,dst,class,issue_s,admit_us,sender_us,transport_us,pacing_us,nic_us,switch_us,wire_us,rnl_us"

// WriteCSV writes one wide CSV row per retained record, in completion
// order. Durations are microseconds in shortest round-trip form, so the
// output is byte-identical for a fixed run regardless of what else runs
// in the process.
func (a *Attributor) WriteCSV(w io.Writer) error {
	if a == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(AttrCSVHeader + "\n"); err != nil {
		return err
	}
	var buf []byte
	us := func(b []byte, d sim.Duration) []byte {
		b = append(b, ',')
		return strconv.AppendFloat(b, d.Micros(), 'g', -1, 64)
	}
	for i := range a.recs {
		r := &a.recs[i]
		buf = strconv.AppendUint(buf[:0], r.RPC, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Src), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Dst), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Class), 10)
		buf = append(buf, ',')
		buf = strconv.AppendFloat(buf, r.IssueTS.Seconds(), 'f', 9, 64)
		buf = us(buf, r.Admit)
		buf = us(buf, r.Sender)
		buf = us(buf, r.Transport)
		buf = us(buf, r.Pacing)
		buf = us(buf, r.NIC)
		buf = us(buf, r.Switch)
		buf = us(buf, r.Wire)
		buf = us(buf, r.RNL)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
