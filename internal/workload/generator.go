package workload

import (
	"fmt"
	"sort"

	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
)

// Process selects the arrival process for a class stream.
type Process int

const (
	// Poisson arrivals with exponential inter-arrival times.
	Poisson Process = iota
	// Periodic arrivals with deterministic spacing, used for the
	// "issue RPCs at line rate" experiments (§6.2, §6.5).
	Periodic
)

// ClassSpec is one priority class's stream within a Spec.
type ClassSpec struct {
	Priority qos.Priority
	// Share is this class's fraction of the generator's offered bytes
	// (the input QoS-mix entry).
	Share float64
	// Sizes draws RPC payload sizes.
	Sizes SizeDist
	// Deadline, when non-zero, stamps each RPC with an absolute deadline
	// of now+Deadline (used by D3/PDQ baselines).
	Deadline sim.Duration
}

// Spec describes one host's offered traffic.
type Spec struct {
	// Rate is the link rate the loads are normalised against.
	Rate sim.Rate
	// Load is the average offered load µ as a fraction of Rate.
	Load float64
	// Rho, when > Load, enables the Figure 7 burst modulation: traffic
	// arrives at instantaneous load Rho for a fraction Load/Rho of every
	// Period, then pauses.
	Rho float64
	// Period is the burst modulation period (default 100 µs).
	Period sim.Duration
	// Process selects Poisson (default) or Periodic arrivals.
	Process Process
	// Classes split the offered bytes; shares must sum to ~1.
	Classes []ClassSpec
	// Dsts are destination hosts, chosen uniformly per RPC unless
	// DstWeights is set.
	Dsts []int
	// DstWeights, when non-nil, weights the destination choice; it must
	// be parallel to Dsts with a positive sum.
	DstWeights []float64
	// ExcludeSelf removes host Self from the destination draw, letting
	// all-to-all patterns share one destination slice across every
	// sender's generator instead of materialising a per-sender
	// "everyone but me" copy.
	ExcludeSelf bool
	Self        int
	// Shape varies the offered load over simulated time; nil means
	// constant load.
	Shape LoadShape
}

// Validate reports specification errors.
func (sp Spec) Validate() error {
	if sp.Rate <= 0 {
		return fmt.Errorf("workload: rate must be positive")
	}
	if sp.Load <= 0 {
		return fmt.Errorf("workload: load must be positive")
	}
	if sp.Rho != 0 && sp.Rho < sp.Load {
		return fmt.Errorf("workload: burst load ρ=%v below average load µ=%v", sp.Rho, sp.Load)
	}
	if len(sp.Classes) == 0 {
		return fmt.Errorf("workload: no classes")
	}
	var tot float64
	for i, c := range sp.Classes {
		if c.Share < 0 {
			return fmt.Errorf("workload: class %d negative share", i)
		}
		if c.Sizes == nil {
			return fmt.Errorf("workload: class %d has no size distribution", i)
		}
		tot += c.Share
	}
	if tot < 0.999 || tot > 1.001 {
		return fmt.Errorf("workload: class shares sum to %v", tot)
	}
	if len(sp.Dsts) == 0 {
		return fmt.Errorf("workload: no destinations")
	}
	if sp.DstWeights != nil {
		if len(sp.DstWeights) != len(sp.Dsts) {
			return fmt.Errorf("workload: %d destination weights for %d destinations", len(sp.DstWeights), len(sp.Dsts))
		}
		var sum float64
		for i, w := range sp.DstWeights {
			if w < 0 {
				return fmt.Errorf("workload: destination %d negative weight", i)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload: destination weights sum to %v", sum)
		}
	}
	if sp.ExcludeSelf {
		n := len(sp.Dsts)
		for _, d := range sp.Dsts {
			if d == sp.Self {
				n--
			}
		}
		if n == 0 {
			return fmt.Errorf("workload: destinations reduce to none after excluding self (%d)", sp.Self)
		}
	}
	return nil
}

// Generator drives one host's RPC stack with the traffic described by a
// Spec. Create with NewGenerator, then Start.
type Generator struct {
	spec  Spec
	stack *rpc.Stack

	// selfIdx is Self's position in Dsts (-1 when absent or not
	// excluded); uniform draws skip it by index shifting, which keeps
	// the random sequence identical to sampling a materialised
	// "everyone but me" slice.
	selfIdx int
	// cumWeights is the cumulative weight table for weighted draws, with
	// the excluded self's weight already zeroed.
	cumWeights []float64

	running bool
	stopped bool
	// Offered counts bytes offered per class (input mix accounting).
	Offered *qos.MixCounter

	// events holds one reusable arrival event per class. Each class's
	// stream has at most one scheduled continuation at a time (the chain is
	// sequential), so re-arming the same node keeps the arrival process
	// allocation-free.
	events []genEvent
}

// genEvent is the per-class arrival-stream continuation: issue an RPC when
// the scheduled point is a real arrival (fire), then draw the next one.
// Burst- and shape-clipping wakeups re-arm it with fire unset.
type genEvent struct {
	g        *Generator
	classIdx int
	fire     bool
}

func (e *genEvent) Run(s *sim.Simulator) {
	if e.g.stopped {
		return
	}
	if e.fire {
		e.g.issue(s, e.classIdx)
	}
	e.g.scheduleNext(s, e.classIdx)
}

// NewGenerator validates the spec and builds a generator.
func NewGenerator(stack *rpc.Stack, spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Period == 0 {
		spec.Period = 100 * sim.Microsecond
	}
	levels := 0
	for _, c := range spec.Classes {
		if l := int(qos.MapPriorityToQoS(c.Priority)) + 1; l > levels {
			levels = l
		}
	}
	g := &Generator{
		spec:    spec,
		stack:   stack,
		selfIdx: -1,
		Offered: qos.NewMixCounter(levels),
	}
	if spec.ExcludeSelf {
		for i, d := range spec.Dsts {
			if d == spec.Self {
				g.selfIdx = i
				break
			}
		}
	}
	if spec.DstWeights != nil {
		g.cumWeights = make([]float64, len(spec.DstWeights))
		var sum float64
		for i, w := range spec.DstWeights {
			if i == g.selfIdx {
				w = 0
			}
			sum += w
			g.cumWeights[i] = sum
		}
		if sum <= 0 {
			return nil, fmt.Errorf("workload: destination weights sum to 0 after excluding self (%d)", spec.Self)
		}
	}
	return g, nil
}

// Start begins issuing RPCs; one independent arrival stream per class.
func (g *Generator) Start(s *sim.Simulator) {
	if g.running {
		return
	}
	g.running = true
	g.events = make([]genEvent, len(g.spec.Classes))
	for i := range g.events {
		g.events[i] = genEvent{g: g, classIdx: i}
	}
	for i := range g.spec.Classes {
		g.scheduleNext(s, i)
	}
}

// Stop halts the generator after any already-scheduled arrivals.
func (g *Generator) Stop() { g.stopped = true }

// byteRate returns the class's average offered bytes/second.
func (g *Generator) byteRate(classIdx int) float64 {
	c := g.spec.Classes[classIdx]
	return c.Share * g.spec.Load * float64(g.spec.Rate) / 8
}

// interArrival returns the mean spacing between this class's RPCs during
// active (burst) phases.
func (g *Generator) interArrival(classIdx int) sim.Duration {
	c := g.spec.Classes[classIdx]
	rate := g.byteRate(classIdx) // bytes/sec average
	if g.spec.Rho > g.spec.Load {
		// During the burst the instantaneous rate is scaled by ρ/µ.
		rate *= g.spec.Rho / g.spec.Load
	}
	mean := c.Sizes.Mean()
	if rate <= 0 || mean <= 0 {
		return sim.MaxTime
	}
	return sim.FromSeconds(mean / rate)
}

// burstWindow reports whether t falls in the burst phase and, if not, the
// start of the next burst.
func (g *Generator) burstWindow(t sim.Time) (active bool, nextBurst sim.Time) {
	if g.spec.Rho <= g.spec.Load {
		return true, 0
	}
	period := g.spec.Period
	offset := t % period
	burstLen := sim.Duration(float64(period) * g.spec.Load / g.spec.Rho)
	if offset < burstLen {
		return true, 0
	}
	return false, t - offset + period
}

func (g *Generator) scheduleNext(s *sim.Simulator, classIdx int) {
	if g.stopped {
		return
	}
	mean := g.interArrival(classIdx)
	if mean == sim.MaxTime {
		return
	}
	if g.spec.Shape != nil {
		f, until := g.spec.Shape.FactorAt(s.Now())
		if f <= 0 {
			// Load is off: resume the stream when the shape next changes.
			if until <= s.Now() || until == sim.MaxTime {
				return
			}
			g.rearm(s, classIdx, until, false)
			return
		}
		if f != 1 {
			mean = sim.Duration(float64(mean) / f)
		}
	}
	var gap sim.Duration
	if g.spec.Process == Poisson {
		gap = sim.Duration(s.Rand().ExpFloat64() * float64(mean))
	} else {
		gap = mean
	}
	next := s.Now() + gap
	// Clip to burst phases: if the arrival lands outside, restart the
	// draw at the next burst (memorylessness makes this exact for
	// Poisson; for Periodic it preserves the per-burst count).
	if active, nextBurst := g.burstWindow(next); !active {
		g.rearm(s, classIdx, nextBurst, false)
		return
	}
	// Same clipping for shape off-phases: an arrival drawn in an on-phase
	// that lands after the shape switches off restarts when load resumes.
	if g.spec.Shape != nil {
		if f, until := g.spec.Shape.FactorAt(next); f <= 0 {
			if until <= next || until == sim.MaxTime {
				return
			}
			g.rearm(s, classIdx, until, false)
			return
		}
	}
	g.rearm(s, classIdx, next, true)
}

// rearm schedules the class's reusable continuation event at t.
func (g *Generator) rearm(s *sim.Simulator, classIdx int, t sim.Time, fire bool) {
	e := &g.events[classIdx]
	e.fire = fire
	s.At(t, e)
}

func (g *Generator) issue(s *sim.Simulator, classIdx int) {
	c := g.spec.Classes[classIdx]
	dst := g.drawDst(s)
	size := c.Sizes.Sample(s.Rand())
	if size <= 0 {
		size = 1
	}
	r := &rpc.RPC{Dst: dst, Priority: c.Priority, Bytes: size}
	if c.Deadline > 0 {
		r.Deadline = s.Now() + c.Deadline
	}
	g.Offered.Add(qos.MapPriorityToQoS(c.Priority), size)
	g.stack.Issue(s, r)
}

// drawDst picks the next destination: weighted when DstWeights is set,
// otherwise uniform over Dsts minus the excluded self. The uniform
// self-excluding draw shifts indexes past selfIdx, which consumes the
// same Intn(len-1) draw — and maps it to the same host — as the former
// per-sender "everyone but me" slice, preserving sequences byte for
// byte.
func (g *Generator) drawDst(s *sim.Simulator) int {
	if g.cumWeights != nil {
		total := g.cumWeights[len(g.cumWeights)-1]
		x := s.Rand().Float64() * total
		i := sort.SearchFloat64s(g.cumWeights, x)
		// SearchFloat64s finds the first cumulative ≥ x; an exact hit on a
		// boundary belongs to the next bucket.
		for i < len(g.cumWeights)-1 && g.cumWeights[i] <= x {
			i++
		}
		return g.spec.Dsts[i]
	}
	if g.selfIdx >= 0 {
		i := s.Rand().Intn(len(g.spec.Dsts) - 1)
		if i >= g.selfIdx {
			i++
		}
		return g.spec.Dsts[i]
	}
	return g.spec.Dsts[s.Rand().Intn(len(g.spec.Dsts))]
}
