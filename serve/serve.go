// Package serve embeds the Aequitas admission controller in a live RPC
// server: an net/http middleware and a gRPC-style unary interceptor that
// classify each inbound request to a (peer, QoS class) admission channel,
// consult the controller, downgrade or reject unadmitted work, and feed
// measured handler latencies back as SLO observations — Algorithm 1
// running on the wall clock instead of the simulator.
//
// The package is intentionally dependency-free: the interceptor types
// mirror google.golang.org/grpc's unary server interceptor signature so a
// real gRPC server adapts with a one-line wrapper, without this module
// importing grpc.
//
// Serving metrics (decision counters, per-class latency histograms, live
// admit probabilities) are exported through the same obs.Exporter surface
// the simulator uses: Prometheus text on /metrics, JSON on /snapshot.
package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aequitas"
	"aequitas/internal/core"
	"aequitas/internal/obs/flight"
	"aequitas/internal/sim"
)

// Request is one classified unit of inbound work: the admission channel it
// belongs to and its size.
type Request struct {
	// Peer names the admission channel's destination — typically the
	// downstream service or route this request will occupy.
	Peer string
	// Class is the requested QoS level.
	Class aequitas.Class
	// SizeBytes is the request's payload size; it scales both the SLO
	// target and the multiplicative decrease. Non-positive sizes count as
	// one MTU.
	SizeBytes int64
}

// Config parameterises an Admission layer.
type Config struct {
	// Controller is the admission controller consulted per request.
	// Required.
	Controller *aequitas.AdmissionController
	// Classify maps an inbound HTTP request to its admission channel.
	// Nil uses ClassifyByHeader.
	Classify func(*http.Request) Request
	// RejectDowngraded replies 503 Service Unavailable (or ErrRejected
	// from the interceptor) instead of serving downgraded requests on the
	// scavenger class — for servers whose scavenger work is handled by a
	// separate pool.
	RejectDowngraded bool
	// Flight enables the flight recorder: the controller's decisions and
	// observations land in a lock-free ring, dumpable at /debug/flight
	// and frozen automatically when Flight.Engine detects an SLO burn or
	// admission collapse.
	Flight *FlightConfig
	// DecisionLog, when set, receives every admission verdict after it is
	// recorded — the hook for an application's own structured decision
	// log. It runs on the request path; keep it cheap and non-blocking.
	DecisionLog func(Verdict)
	// Clock is the layer's time-and-draw source. Nil shares the
	// controller's clock, which is what serving wants (one time base for
	// admission, latency measurement, brownout and flight ticks) and what
	// makes tests deterministic: build the controller with
	// aequitas.NewControllerWithClock(cfg, manual) and every layer runs on
	// the manual clock.
	Clock core.Clock
	// Deadline enables deadline-budget admission: requests whose
	// remaining budget (HeaderDeadline or context deadline) cannot cover
	// the class's observed latency floor are rejected before the draw.
	Deadline *DeadlineConfig
	// Brownout enables the overload brownout ladder: under sustained
	// completion-latency or concurrency overload the layer sheds
	// scavenger work, tightens the effective admit probability, and
	// finally hard-sheds, stepping back down with hysteresis.
	Brownout *BrownoutConfig
	// RejectStatus is the HTTP status for rejected/shed/expired requests
	// (default 503 Service Unavailable).
	RejectStatus int
	// RejectBody, when set, replaces the cause-specific rejection bodies.
	RejectBody string
	// RetryAfter fixes the Retry-After hint on rejections. Zero derives
	// it per class from the controller's additive-increase window — the
	// earliest moment a retry could see a higher admit probability.
	RetryAfter time.Duration
}

// The headers the middleware reads and writes.
const (
	// HeaderClass carries the requested QoS class on requests and the
	// assigned class on responses.
	HeaderClass = "X-Aequitas-Class"
	// HeaderPeer optionally names the admission channel on requests.
	HeaderPeer = "X-Aequitas-Peer"
	// HeaderDowngraded marks responses served on the scavenger class
	// after a failed admission draw.
	HeaderDowngraded = "X-Aequitas-Downgraded"
	// HeaderShed marks responses rejected by the brownout ladder, with
	// the level name ("thin-scavenger", "tighten", "hard-shed").
	HeaderShed = "X-Aequitas-Shed"
)

// ClassifyByHeader is the default classifier: the channel peer comes from
// X-Aequitas-Peer (falling back to the URL path), the requested class from
// X-Aequitas-Class (default the highest), and the size from the request
// body length.
func ClassifyByHeader(r *http.Request) Request {
	peer := r.Header.Get(HeaderPeer)
	if peer == "" {
		peer = r.URL.Path
	}
	class := aequitas.High
	if c, err := ParseClass(r.Header.Get(HeaderClass)); err == nil {
		class = c
	}
	return Request{Peer: peer, Class: class, SizeBytes: r.ContentLength}
}

// ParseClass reads a QoS class from its paper name (QoSh/QoSm/QoSl),
// a plain level name (high/medium/low), or a numeric level.
func ParseClass(s string) (aequitas.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "qosh", "high", "h":
		return aequitas.High, nil
	case "qosm", "medium", "m":
		return aequitas.Medium, nil
	case "qosl", "low", "l":
		return aequitas.Low, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("serve: unknown QoS class %q", s)
	}
	return aequitas.Class(n), nil
}

// Admission is the serving-side admission layer: construct once per
// process, then wrap handlers with Middleware or RPC endpoints with
// UnaryInterceptor. All methods are safe for concurrent use.
type Admission struct {
	ctl    *aequitas.AdmissionController
	cls    func(*http.Request) Request
	reject bool
	m      metrics
	fl     *flightState
	dlog   func(Verdict)
	clock  core.Clock
	dl     *deadlineState
	bo     *brownout

	rejStatus  int
	rejBody    string
	retryAfter time.Duration
}

// New builds an Admission layer over cfg.Controller.
func New(cfg Config) (*Admission, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("serve: Config.Controller is required")
	}
	cls := cfg.Classify
	if cls == nil {
		cls = ClassifyByHeader
	}
	clk := cfg.Clock
	if clk == nil {
		clk = cfg.Controller.Clock()
	}
	a := &Admission{
		ctl:        cfg.Controller,
		cls:        cls,
		reject:     cfg.RejectDowngraded,
		dlog:       cfg.DecisionLog,
		clock:      clk,
		rejStatus:  cfg.RejectStatus,
		rejBody:    cfg.RejectBody,
		retryAfter: cfg.RetryAfter,
	}
	if a.rejStatus == 0 {
		a.rejStatus = http.StatusServiceUnavailable
	}
	a.m.init()
	if cfg.Flight != nil {
		a.fl = newFlightState(*cfg.Flight)
		a.ctl.SetFlight(a.fl.ring)
	}
	if cfg.Deadline != nil {
		a.dl = newDeadlineState(*cfg.Deadline)
	}
	if cfg.Brownout != nil {
		a.bo = newBrownout(*cfg.Brownout, clk)
		a.bo.onTransition = func(from, to int32, at sim.Time) {
			if to > from && a.fl != nil {
				// Level-ups are incidents: freeze the ring so the decisions
				// that preceded the escalation are preserved.
				a.fl.fire(a.ctl, flight.Trigger{
					Kind: flight.TriggerBrownout,
					At:   at,
					Detail: fmt.Sprintf("brownout %s -> %s (level %d -> %d)",
						brownoutLevelName(from), brownoutLevelName(to), from, to),
				})
			}
		}
	}
	return a, nil
}

// BrownoutLevel reports the current brownout degradation level (0 when
// the ladder is disabled or healthy).
func (a *Admission) BrownoutLevel() int32 { return a.bo.Level() }

// Controller returns the wrapped admission controller.
func (a *Admission) Controller() *aequitas.AdmissionController { return a.ctl }

// ctxKey carries the admission verdict through the request context.
type ctxKey struct{}

// Verdict is the admission outcome attached to a request's context (and
// handed to DecisionLog for every request, including ones rejected
// before the draw).
type Verdict struct {
	Request Request
	// Class is the QoS level the request actually runs on.
	Class aequitas.Class
	// Downgraded reports a failed admission draw (the request runs on
	// the scavenger class, or was rejected under RejectDowngraded).
	Downgraded bool
	// Expired reports a rejection before the admission draw: the
	// request's remaining deadline budget could not cover the class's
	// observed latency floor.
	Expired bool
	// ShedLevel, when non-zero, is the brownout level that shed this
	// request.
	ShedLevel int32
	// Dropped reports a quota fail-closed drop during a quota-plane
	// outage.
	Dropped bool
}

// cause classifies why a request did not reach its handler.
type cause uint8

const (
	causeNone cause = iota
	// causeRejected: failed the admission draw under RejectDowngraded.
	causeRejected
	// causeExpired: deadline budget below the latency floor.
	causeExpired
	// causeShed: rejected by the brownout ladder.
	causeShed
	// causeDropped: quota fail-closed drop (stale lease).
	causeDropped
)

// body is the cause-specific default rejection body.
func (c cause) body() string {
	switch c {
	case causeExpired:
		return "deadline budget exhausted before admission"
	case causeShed:
		return "shed by overload brownout"
	case causeDropped:
		return "dropped by quota policy (stale lease, fail-closed)"
	default:
		return "rejected by admission control"
	}
}

// FromContext returns the admission verdict for the current request, if it
// passed through the middleware or interceptor.
func FromContext(ctx context.Context) (Verdict, bool) {
	v, ok := ctx.Value(ctxKey{}).(Verdict)
	return v, ok
}

// decide runs one classified request through the full pre-serve
// pipeline: deadline budget, brownout hard shed, the admission draw,
// brownout tightening and scavenger thinning. It records metrics and the
// decision log, and returns the verdict plus the cause when the request
// must not be served.
func (a *Admission) decide(req Request, budget time.Duration, haveBudget bool) (Verdict, cause) {
	if a.dl != nil && haveBudget && a.dl.expired(classSlot(req.Class), budget) {
		v := Verdict{Request: req, Class: req.Class, Expired: true}
		a.ctl.RecordExpired(req.Peer, req.Class, req.SizeBytes)
		a.m.expired.Add(1)
		a.logv(v)
		return v, causeExpired
	}
	if a.bo.preAdmit() == shedHard {
		v := Verdict{Request: req, Class: req.Class, ShedLevel: a.bo.Level()}
		a.m.shed.Add(1)
		a.logv(v)
		return v, causeShed
	}
	d := a.ctl.Admit(req.Peer, req.Class, req.SizeBytes)
	v := Verdict{Request: req, Class: d.Class, Downgraded: d.Downgraded, Dropped: d.Dropped}
	if d.Dropped {
		a.m.dropped.Add(1)
		a.logv(v)
		return v, causeDropped
	}
	scav := a.ctl.Scavenger()
	if (v.Class >= scav && a.bo.thinsScavenger()) ||
		(v.Class < scav && !v.Downgraded && a.bo.tightens()) {
		v.ShedLevel = a.bo.Level()
		a.m.shed.Add(1)
		a.logv(v)
		return v, causeShed
	}
	a.m.decided(v, a.reject)
	a.logv(v)
	if v.Downgraded && a.reject {
		return v, causeRejected
	}
	return v, causeNone
}

func (a *Admission) logv(v Verdict) {
	if a.dlog != nil {
		a.dlog(v)
	}
}

// finish feeds the completed request's latency back to the controller on
// the class it ran on, records it in the serving histograms and the
// deadline floor, and gives the brownout and anomaly engines a chance to
// evaluate.
func (a *Admission) finish(v Verdict, elapsed time.Duration) {
	a.ctl.Observe(v.Request.Peer, v.Class, elapsed, v.Request.SizeBytes)
	a.m.completed(v.Class, elapsed)
	if a.dl != nil {
		a.dl.floor.observe(classSlot(v.Class), elapsed)
	}
	a.bo.completed(elapsed)
	a.fl.maybeTick(a.ctl, a.clock.Now())
}

// retryAfterValue is the Retry-After hint for a rejection on class: the
// configured fixed value, or the class's additive-increase window — the
// earliest interval after which the admit probability can have risen, so
// retrying sooner cannot help.
func (a *Admission) retryAfterValue(class aequitas.Class) string {
	d := a.retryAfter
	if d <= 0 {
		d = a.ctl.IncrementWindow(class)
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// rejectHTTP writes the rejection response for cls/c.
func (a *Admission) rejectHTTP(w http.ResponseWriter, class aequitas.Class, c cause) {
	w.Header().Set("Retry-After", a.retryAfterValue(class))
	body := a.rejBody
	if body == "" {
		body = c.body()
	}
	http.Error(w, body, a.rejStatus)
}

// Middleware wraps next with admission control: classify, check the
// deadline budget and the brownout ladder, admit (setting the response
// headers), serve on the decided class, and feed the measured handler
// latency back as an SLO observation. Requests stopped before the
// handler (expired, shed, rejected, quota-dropped) receive RejectStatus
// with a Retry-After hint and are not observed — they never ran.
func (a *Admission) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := a.cls(r)
		var budget time.Duration
		var haveBudget bool
		if a.dl != nil {
			budget, haveBudget = a.dl.budgetFromRequest(r)
		}
		v, c := a.decide(req, budget, haveBudget)
		h := w.Header()
		switch c {
		case causeExpired:
			h.Set(HeaderExpired, "1")
			a.rejectHTTP(w, req.Class, c)
			return
		case causeShed:
			h.Set(HeaderShed, brownoutLevelName(v.ShedLevel))
			a.rejectHTTP(w, req.Class, c)
			return
		case causeDropped:
			a.rejectHTTP(w, req.Class, c)
			return
		}
		h.Set(HeaderClass, v.Class.String())
		if v.Downgraded {
			h.Set(HeaderDowngraded, "1")
			if c == causeRejected {
				a.rejectHTTP(w, req.Class, c)
				return
			}
		}
		a.bo.enter()
		start := a.clock.Now()
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, v)))
		elapsed := (a.clock.Now() - start).Std()
		a.bo.exit()
		a.finish(v, elapsed)
	})
}
