package aequitas

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTraceWriter(t *testing.T) {
	var buf bytes.Buffer
	cfg := SimConfig{
		Hosts:       4,
		Seed:        3,
		Duration:    5 * time.Millisecond,
		Warmup:      time.Millisecond,
		TraceWriter: &buf,
		Traffic: []HostTraffic{{
			AvgLoad: 0.3,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.6, FixedBytes: 8 << 10},
				{Priority: BE, Share: 0.4, FixedBytes: 32 << 10},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	records, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("trace has %d rows", len(records))
	}
	header := strings.Join(records[0], ",")
	if header != "complete_s,src,dst,priority,requested,ran,downgraded,bytes,rnl_us" {
		t.Fatalf("header = %q", header)
	}
	// Row count matches completions counted by the collector.
	if int64(len(records)-1) != res.Completed {
		t.Errorf("trace rows %d != completed %d", len(records)-1, res.Completed)
	}
	lastT := 0.0
	for i, rec := range records[1:] {
		if len(rec) != 9 {
			t.Fatalf("row %d has %d fields", i, len(rec))
		}
		ts, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || ts < lastT {
			t.Fatalf("row %d: bad/unordered timestamp %q", i, rec[0])
		}
		lastT = ts
		if src, _ := strconv.Atoi(rec[1]); src < 0 || src > 3 {
			t.Fatalf("row %d: src %q", i, rec[1])
		}
		rnl, err := strconv.ParseFloat(rec[8], 64)
		if err != nil || rnl <= 0 {
			t.Fatalf("row %d: rnl %q", i, rec[8])
		}
		switch rec[3] {
		case "PC", "NC", "BE":
		default:
			t.Fatalf("row %d: priority %q", i, rec[3])
		}
	}
}
