// Package aequitas is a from-scratch implementation of Aequitas (Zhang et
// al., SIGCOMM 2022): distributed, sender-driven admission control that
// provides RPC network-latency (RNL) SLOs for performance-critical RPCs in
// datacenters by mapping RPC priorities to weighted-fair-queuing (WFQ) QoS
// classes and downgrading excess traffic to the scavenger class.
//
// The package offers three entry points:
//
//   - AdmissionController: the Aequitas algorithm (Algorithm 1) packaged
//     for embedding in a real RPC stack. Feed it completed-RPC latency
//     measurements and ask it, per RPC, which QoS class to use. It is
//     safe for concurrent use — admission decisions are lock-free — and
//     the aequitas/serve subpackage wraps it as ready-made net/http
//     middleware and a gRPC-style unary interceptor with live /metrics
//     (see cmd/aequitas-serve for a runnable demo).
//
//   - Simulation: a packet-level datacenter simulator (WFQ switches,
//     Swift congestion control, an RPC layer) that reproduces the paper's
//     evaluation. Configure a topology, a workload, and SLOs; run; read
//     per-QoS tail latencies, admitted QoS-mix, fairness series, and
//     baseline comparisons (pFabric, QJump, D3, PDQ, Homa, SPQ).
//
//   - Analytical model: the network-calculus worst-case WFQ delay bounds
//     of §4 (closed form for 2 QoS classes, fluid simulation for N),
//     admissible-region computation, and SLO planning helpers.
//
// Every figure and table in the paper's evaluation has a regeneration
// harness: see bench_test.go and cmd/figures. EXPERIMENTS.md records
// paper-versus-measured results.
package aequitas
