GO ?= go

.PHONY: all build test race vet check bench figures trace-check chaos-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled suite covers the parallel sweep engine (RunMany) and
# the concurrent-Run test; it is the gate for changes touching run.go,
# parallel.go, or internal/sim. Race instrumentation is ~10x slower, so
# give the root package's simulation suite room on small machines.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

check: vet build race trace-check chaos-check

# trace-check runs a short instrumented simulation and validates the
# NDJSON lifecycle trace and the metrics CSV against the schemas in
# internal/obs.
trace-check: build
	@mkdir -p out
	$(GO) run ./cmd/aequitas-sim -hosts 4 -dur 3ms -trace out/trace-check.ndjson \
	    -metrics out/trace-check.csv > /dev/null
	$(GO) run ./cmd/tracecheck -metrics out/trace-check.csv out/trace-check.ndjson
	$(GO) run ./cmd/aequitas-sim -hosts 4 -dur 3ms -faults flapcrash -rpc-timeout 300us \
	    -trace out/trace-check-faults.ndjson > /dev/null
	$(GO) run ./cmd/tracecheck out/trace-check-faults.ndjson

# chaos-check is the seeded fault-injection smoke: a link flap plus a host
# crash/restart under the race detector, exercising blackholes, timeouts,
# retries, hedging, and the degradation metrics end to end.
chaos-check:
	$(GO) test -race -run Chaos -timeout 10m .

bench:
	$(GO) test -bench=. -benchtime=1x ./...

figures: build
	$(GO) run ./cmd/figures -fig all
