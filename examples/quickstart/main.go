// Quickstart: the paper's headline behaviour in one run.
//
// Two hosts issue 32 KB performance-critical and best-effort RPCs at line
// rate toward one receiver — a persistent 2× overload of the receiver's
// downlink. Without admission control the PC tail latency explodes; with
// Aequitas, excess PC traffic is downgraded to the scavenger class and
// the admitted PC traffic meets its SLO.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"aequitas"
)

func config(system aequitas.System) aequitas.SimConfig {
	return aequitas.SimConfig{
		System:     system,
		Hosts:      3,
		Seed:       1,
		Duration:   80 * time.Millisecond,
		Warmup:     30 * time.Millisecond,
		QoSWeights: []float64{4, 1},
		SLOs: []aequitas.SLO{{
			Target:         25 * time.Microsecond,
			ReferenceBytes: 32 << 10,
			Percentile:     99.9,
		}},
		Traffic: []aequitas.HostTraffic{{
			Hosts:   []int{0, 1},
			Dsts:    []int{2},
			AvgLoad: 1.0,
			Arrival: aequitas.ArrivalPeriodic,
			Classes: []aequitas.TrafficClass{
				{Priority: aequitas.PC, Share: 0.7, FixedBytes: 32 << 10},
				{Priority: aequitas.BE, Share: 0.3, FixedBytes: 32 << 10},
			},
		}},
	}
}

func main() {
	fmt.Println("Aequitas quickstart: 2x overload, 32KB RPCs, SLO 25us @ 99.9p")
	fmt.Println()

	for _, system := range []aequitas.System{aequitas.SystemBaseline, aequitas.SystemAequitas} {
		res, err := aequitas.Run(config(system))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s QoSh 99.9p RNL: %8.1f us   admitted QoSh share: %4.1f%%   downgraded: %d RPCs\n",
			system,
			res.RNLQuantileUS(aequitas.High, 0.999),
			100*res.AdmittedMix[0],
			res.Downgraded)
	}

	fmt.Println()
	fmt.Println("The baseline misses the 25us SLO by an order of magnitude;")
	fmt.Println("Aequitas admits the share of PC traffic the SLO allows and")
	fmt.Println("downgrades the rest, keeping admitted traffic SLO-compliant.")
}
