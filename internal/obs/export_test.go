package obs

import (
	"encoding/json"
	"io"
	"math/rand"
	"strings"
	"testing"

	"aequitas/internal/stats"
)

// exportTestSnapshot builds a representative snapshot: counters, dotted
// gauges, and two histogram series of one metric.
func exportTestSnapshot() *Snapshot {
	rng := rand.New(rand.NewSource(5))
	mk := func(scale float64) *stats.Hist {
		h := stats.NewHist()
		for i := 0; i < 5000; i++ {
			h.Record(scale * (1 + rng.Float64()*100))
		}
		return h
	}
	return &Snapshot{
		Schema:   SnapshotSchema,
		Label:    "test",
		SimTimeS: 0.0125,
		Counters: []NamedValue{
			{Name: "rpcs_issued_total", Value: 1200},
			{Name: "rpcs_completed_total", Value: 1100},
		},
		Gauges: []NamedValue{
			{Name: "q.sw0.q0", Value: 3},
			{Name: "padmit.h1.d2.q0", Value: 0.75},
			{Name: "goodput.fraction", Value: 0.93},
		},
		Hists: []HistSnapshot{
			SnapHist("rnl_us", "class", "QoS0", mk(1)),
			SnapHist("rnl_us", "class", "QoS1", mk(40)),
		},
	}
}

// TestWritePromValidates: the renderer's output passes the strict
// text-format validator and contains the expected series.
func TestWritePromValidates(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, exportTestSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	n, err := ValidatePromText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("rendered text invalid: %v\n%s", err, out)
	}
	if n < 10 {
		t.Errorf("only %d samples rendered", n)
	}
	for _, want := range []string{
		"aequitas_rpcs_issued_total 1200",
		`aequitas_gauge{name="q.sw0.q0"} 3`,
		`aequitas_rnl_us_bucket{class="QoS0",le="+Inf"} 5000`,
		`aequitas_rnl_us_count{class="QoS1"} 5000`,
		"# TYPE aequitas_rnl_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// One TYPE line per metric even with two labelled series.
	if got := strings.Count(out, "# TYPE aequitas_rnl_us histogram"); got != 1 {
		t.Errorf("%d TYPE lines for the histogram, want 1", got)
	}
}

// TestSnapHistCumulative: bucket counts are cumulative and bounded by
// Count, with finite uppers even when observations hit the overflow
// bucket.
func TestSnapHistCumulative(t *testing.T) {
	h := stats.NewHist()
	h.Record(5)
	h.Record(50)
	h.Record(1e18) // overflow bucket
	hs := SnapHist("x_us", "", "", h)
	if hs.Count != 3 || hs.Sum != h.Sum() {
		t.Fatalf("count/sum = %d/%v", hs.Count, hs.Sum)
	}
	last := int64(0)
	for _, b := range hs.Buckets {
		if b.Count < last {
			t.Fatalf("bucket counts not cumulative: %v", hs.Buckets)
		}
		last = b.Count
	}
	if last != 3 {
		t.Errorf("final cumulative count %d != 3", last)
	}
	for _, b := range hs.Buckets {
		if b.Upper > 1e18 {
			t.Errorf("non-finite-clamped upper %v", b.Upper)
		}
	}
	// JSON round-trip must survive (no +Inf in the document).
	data, err := json.Marshal(hs)
	if err != nil {
		t.Fatalf("snapshot not JSON-safe: %v", err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
}

// TestValidatePromTextRejects: structural defects are caught.
func TestValidatePromTextRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "aequitas_x 1\n",
		"bad name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":      "# TYPE aequitas_x counter\naequitas_x one\n",
		"no +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n",
	}
	for name, text := range cases {
		if _, err := ValidatePromText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
	ok := "# TYPE aequitas_x counter\naequitas_x 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9.5\nh_count 5\n"
	if n, err := ValidatePromText(strings.NewReader(ok)); err != nil || n != 5 {
		t.Errorf("valid text rejected: n=%d err=%v", n, err)
	}
}

// TestExporterPublish: latest-wins, nil-safe.
func TestExporterPublish(t *testing.T) {
	var nilExp *Exporter
	nilExp.Publish(&Snapshot{}) // must not panic
	if nilExp.Snapshot() != nil {
		t.Error("nil exporter returned a snapshot")
	}
	e := NewExporter()
	if e.Snapshot() != nil {
		t.Error("fresh exporter has a snapshot")
	}
	a, b := &Snapshot{SimTimeS: 1}, &Snapshot{SimTimeS: 2}
	e.Publish(a)
	e.Publish(b)
	if got := e.Snapshot(); got != b {
		t.Errorf("latest snapshot = %+v, want the second publish", got)
	}
}

// BenchmarkMetricsRender is the tracked /metrics render cost: one full
// Prometheus text exposition of a representative snapshot.
func BenchmarkMetricsRender(b *testing.B) {
	s := exportTestSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteProm(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}
