package rpc

import (
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// budgetAdmitter admits PC RPCs up to a fixed budget fraction of the
// app's total issue rate — the steady state a converged Aequitas
// controller enforces: the admitted QoSh volume is set by the SLO, not by
// how much the application offers.
type budgetAdmitter struct {
	budget     float64
	total, adm int
}

func (h *budgetAdmitter) Admit(_ int, requested qos.Class, _ int64) Decision {
	h.total++
	if requested != qos.High {
		return Decision{Class: requested}
	}
	if float64(h.adm) < h.budget*float64(h.total) {
		h.adm++
		return Decision{Class: requested}
	}
	return Decision{Class: qos.Low, Downgraded: true}
}

func (h *budgetAdmitter) Observe(int, qos.Class, sim.Duration, int64) {}

func TestAdaptiveAppReactsToDowngrades(t *testing.T) {
	_, stacks := setup(t, 2, []Admitter{&budgetAdmitter{budget: 0.4}, PassThrough{}})
	s := sim.New(1)
	app := &AdaptiveApp{Stack: stacks[0]}

	// Everything offered as PC against a 40% budget: 60% downgrades
	// drive the EWMA over the threshold.
	for i := 0; i < 200; i++ {
		app.Issue(s, &RPC{Dst: 1, Bytes: 1000}, s.Rand().Float64() < 0.3)
	}
	if !app.Adapting() {
		t.Fatalf("app not adapting at 60%% downgrade rate (EWMA %v)", app.downgradeEWMA)
	}
	if app.FillerSelfDemoted == 0 {
		t.Error("no filler self-demoted while adapting")
	}
	s.Run()
}

func TestAdaptiveAppProtectsCriticalRPCs(t *testing.T) {
	// The admitted QoSh budget is 40% of the app's issue rate; 30% of
	// its work is truly critical. Without adaptation the budget is
	// spread over all nominally-PC work, so ~60% of critical RPCs are
	// downgraded; with adaptation the filler self-demotes and the budget
	// covers the critical RPCs entirely.
	run := func(adaptive bool) (criticalDowngradeRate float64) {
		_, stacks := setup(t, 2, []Admitter{&budgetAdmitter{budget: 0.4}, PassThrough{}})
		s := sim.New(1)
		app := &AdaptiveApp{Stack: stacks[0]}
		if !adaptive {
			app.Threshold = 2.0 // unreachable: adaptation disabled
		}
		for i := 0; i < 4000; i++ {
			app.Issue(s, &RPC{Dst: 1, Bytes: 1000}, s.Rand().Float64() < 0.3)
		}
		s.RunUntil(1 * sim.Second)
		return float64(app.CriticalDowngraded) / float64(app.CriticalIssued)
	}
	fixed := run(false)
	adaptive := run(true)
	if fixed < 0.3 {
		t.Fatalf("setup: non-adaptive critical downgrade rate only %.2f", fixed)
	}
	if adaptive > fixed/2 {
		t.Errorf("adaptation did not protect critical RPCs: %.2f vs %.2f", adaptive, fixed)
	}
}

func TestAdaptiveAppIdleWithoutPressure(t *testing.T) {
	_, stacks := setup(t, 2, nil) // PassThrough: no downgrades
	s := sim.New(1)
	app := &AdaptiveApp{Stack: stacks[0]}
	for i := 0; i < 100; i++ {
		app.Issue(s, &RPC{Dst: 1, Bytes: 1000}, i%2 == 0)
	}
	if app.Adapting() {
		t.Error("app adapting with zero downgrades")
	}
	if app.FillerSelfDemoted != 0 {
		t.Errorf("self-demoted %d without pressure", app.FillerSelfDemoted)
	}
	s.Run()
}

func TestAdaptiveAppRecovers(t *testing.T) {
	adm := &budgetAdmitter{budget: 0.4}
	_, stacks := setup(t, 2, []Admitter{adm, PassThrough{}})
	s := sim.New(1)
	app := &AdaptiveApp{Stack: stacks[0], Gain: 0.2}
	for i := 0; i < 100; i++ {
		app.Issue(s, &RPC{Dst: 1, Bytes: 1000}, true)
	}
	if !app.Adapting() {
		t.Fatal("setup failed")
	}
	// Pressure ends: the admitter stops downgrading (simulate by issuing
	// on a fresh stack state — all admissions now succeed ).
	// budget admitter is left behind, so all admissions now succeed).

	_, cleanStacks := setup(t, 2, nil)
	app.Stack = cleanStacks[0]
	for i := 0; i < 100; i++ {
		app.Issue(s, &RPC{Dst: 1, Bytes: 1000}, true)
	}
	if app.Adapting() {
		t.Errorf("app stuck adapting after pressure ended (EWMA %v)", app.downgradeEWMA)
	}
	s.Run()
}
