package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aequitas"
)

func benchAdmission(b *testing.B) *Admission {
	b.Helper()
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: 500 * time.Microsecond},
			{Target: time.Millisecond},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(Config{Controller: ctl})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// nopResponseWriter avoids httptest.ResponseRecorder allocations so the
// benchmark measures the admission layer, not the test harness.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (nopResponseWriter) WriteHeader(int)               {}

// BenchmarkServeMiddleware measures one full middleware pass: classify,
// admit, context injection, handler dispatch, observe, histogram record.
func BenchmarkServeMiddleware(b *testing.B) {
	a := benchAdmission(b)
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/backend", nil)
	req.Header.Set(HeaderClass, "QoSh")
	w := nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeMiddlewareParallel is the same pass under GOMAXPROCS-way
// concurrency.
func BenchmarkServeMiddlewareParallel(b *testing.B) {
	a := benchAdmission(b)
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest("GET", "/backend", nil)
		req.Header.Set(HeaderClass, "QoSh")
		w := nopResponseWriter{h: make(http.Header)}
		for pb.Next() {
			h.ServeHTTP(w, req)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
