package rpc

import (
	"testing"

	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
	"aequitas/internal/wfq"
)

// robustSetup builds hosts whose stacks track in-flight RPCs, returning
// the network, stacks, and endpoints (for injecting transport faults).
func robustSetup(t *testing.T, hosts int, policy RetryPolicy) (*netsim.Network, []*Stack, []*transport.Endpoint) {
	t.Helper()
	net, err := netsim.New(netsim.Config{
		Hosts: hosts,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stacks := make([]*Stack, hosts)
	eps := make([]*transport.Endpoint, hosts)
	for i := 0; i < hosts; i++ {
		eps[i] = transport.NewEndpoint(net, net.Host(i), transport.Config{
			NewCC:  func() transport.CC { return transport.SwiftDefaults(10 * sim.Microsecond) },
			RTOMin: 50 * sim.Microsecond,
		})
		stacks[i] = NewStack(eps[i], nil)
		stacks[i].Src = i
		stacks[i].Retry = policy
		stacks[i].TrackInflight = true
	}
	return net, stacks, eps
}

// TestRetryRecoversThroughOutage drops an RPC into a link blackhole; the
// timeout/retry path must re-send after the link heals and complete the
// RPC exactly once.
func TestRetryRecoversThroughOutage(t *testing.T) {
	net, stacks, _ := robustSetup(t, 2, RetryPolicy{
		Timeout: sim.Duration(200 * sim.Microsecond), MaxRetries: 5,
	})
	s := sim.New(1)
	completions := 0
	stacks[0].OnComplete = func(*sim.Simulator, *RPC) { completions++ }
	// Blackhole host 0's uplink before issue; heal it mid-run.
	net.Host(0).Uplink.SetDown(s, true)
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 32 * 1024})
	s.AtFunc(sim.Time(sim.Millisecond), func(s *sim.Simulator) {
		net.Host(0).Uplink.SetDown(s, false)
	})
	s.Run()
	if completions != 1 {
		t.Fatalf("completed %d times, want 1", completions)
	}
	st := stacks[0].Stats
	if st.TimedOut == 0 || st.Retried == 0 {
		t.Errorf("stats %+v: expected timeouts and retries", st)
	}
	if st.Failed != 0 {
		t.Errorf("RPC marked failed despite completing: %+v", st)
	}
	if stacks[0].Outstanding(1) != 0 || stacks[0].InflightLen() != 0 {
		t.Error("accounting not released after completion")
	}
}

// TestRetryBudgetExhaustion keeps the link dead: the RPC must be abandoned
// after MaxRetries attempts, releasing all accounting.
func TestRetryBudgetExhaustion(t *testing.T) {
	net, stacks, _ := robustSetup(t, 2, RetryPolicy{
		Timeout: sim.Duration(100 * sim.Microsecond), MaxRetries: 2,
	})
	s := sim.New(1)
	stacks[0].OnComplete = func(*sim.Simulator, *RPC) { t.Error("dead-link RPC completed") }
	net.Host(0).Uplink.SetDown(s, true)
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 8 * 1024})
	// Bound the run: the abandoned transport message keeps retrying into
	// the dead link (the RPC layer gave up; the byte stream does not).
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	st := stacks[0].Stats
	if st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (stats %+v)", st.Failed, st)
	}
	if st.Retried != 2 {
		t.Errorf("Retried = %d, want exactly the budget (2)", st.Retried)
	}
	if st.TimedOut != 3 {
		t.Errorf("TimedOut = %d, want 3 (initial + 2 retries)", st.TimedOut)
	}
	if stacks[0].Outstanding(1) != 0 || stacks[0].InflightLen() != 0 {
		t.Error("failed RPC leaked accounting")
	}
}

// TestHedgeWinsOnSlowPath issues an RPC whose original class is stuck
// behind a saturated queue while the hedge class is clear: the hedge
// completes first and is counted as the win, and the straggling original
// must not double-complete.
func TestHedgeWinsOnSlowPath(t *testing.T) {
	_, stacks, eps := robustSetup(t, 2, RetryPolicy{
		HedgeAfter: sim.Duration(20 * sim.Microsecond),
		HedgeClass: qos.Low,
	})
	s := sim.New(1)
	// Saturate the High class with a huge background transfer so the
	// probe RPC's original attempt serialises far behind it.
	eps[0].Send(s, &transport.Message{ID: 1000, Dst: 1, Class: qos.High, Bytes: 4 << 20})
	completions := 0
	stacks[0].OnComplete = func(*sim.Simulator, *RPC) { completions++ }
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 8 * 1024})
	s.Run()
	if completions != 1 {
		t.Fatalf("completed %d times, want 1", completions)
	}
	st := stacks[0].Stats
	if st.Hedged != 1 || st.HedgeWins != 1 {
		t.Errorf("Hedged = %d HedgeWins = %d, want 1/1", st.Hedged, st.HedgeWins)
	}
	if stacks[0].Outstanding(1) != 0 || stacks[0].InflightLen() != 0 {
		t.Error("hedged RPC leaked accounting")
	}
}

// TestHedgeSizeBound verifies HedgeMaxMTUs exempts large RPCs from
// replication.
func TestHedgeSizeBound(t *testing.T) {
	_, stacks, _ := robustSetup(t, 2, RetryPolicy{
		HedgeAfter:   sim.Duration(sim.Microsecond),
		HedgeClass:   qos.Low,
		HedgeMaxMTUs: 2,
	})
	s := sim.New(1)
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 64 * 1024}) // > 2 MTUs
	s.Run()
	if stacks[0].Stats.Hedged != 0 {
		t.Errorf("oversized RPC was hedged: %+v", stacks[0].Stats)
	}
}

// TestCrashClearsOutstanding is the harness invariant behind the fault
// figure: a crashed host's in-flight RPCs are not counted outstanding
// after restart, so samplers don't report ghosts forever.
func TestCrashClearsOutstanding(t *testing.T) {
	net, stacks, eps := robustSetup(t, 3, RetryPolicy{})
	s := sim.New(1)
	// Blackhole host 0's uplink so its issued RPCs stay in flight.
	net.Host(0).Uplink.SetDown(s, true)
	for i := 0; i < 5; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1 + i%2, Priority: qos.PC, Bytes: 16 * 1024})
	}
	if stacks[0].Outstanding(1)+stacks[0].Outstanding(2) != 5 {
		t.Fatalf("outstanding before crash = %d+%d, want 5",
			stacks[0].Outstanding(1), stacks[0].Outstanding(2))
	}
	stacks[0].Crash(s)
	eps[0].Crash(s)
	if stacks[0].Outstanding(1) != 0 || stacks[0].Outstanding(2) != 0 {
		t.Error("outstanding not cleared by crash")
	}
	ghosts := 0
	stacks[0].ForEachOutstanding(func(int, qos.Class, int) { ghosts++ })
	if ghosts != 0 {
		t.Errorf("ForEachOutstanding visited %d ghost entries", ghosts)
	}
	if stacks[0].Stats.CrashLost != 5 {
		t.Errorf("CrashLost = %d, want 5", stacks[0].Stats.CrashLost)
	}
	// While down, issues are discarded and counted.
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 1024})
	if stacks[0].Stats.NotIssued != 1 || stacks[0].Outstanding(1) != 0 {
		t.Error("down stack accepted an issue")
	}
	// After restart, new RPCs flow and complete normally.
	stacks[0].Restart()
	eps[0].Restart(s)
	net.Host(0).Uplink.SetDown(s, false)
	completed := 0
	stacks[0].OnComplete = func(*sim.Simulator, *RPC) { completed++ }
	stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 16 * 1024})
	s.Run()
	if completed != 1 {
		t.Fatalf("post-restart RPC completed %d times", completed)
	}
	if stacks[0].Outstanding(1) != 0 {
		t.Error("outstanding nonzero after post-restart completion")
	}
}

// TestAttributionNoLeakUnderFaults drives every fault-induced RPC exit
// path — crash loss, retry-budget failure, and normal completion after
// retries — and verifies the attributor's pending map ends empty.
func TestAttributionNoLeakUnderFaults(t *testing.T) {
	net, stacks, eps := robustSetup(t, 3, RetryPolicy{
		Timeout: sim.Duration(150 * sim.Microsecond), MaxRetries: 4,
	})
	attr := obs.NewAttributor(nil)
	for i, st := range stacks {
		st.Attr = attr
		_ = i
	}
	s := sim.New(1)

	// Path 1: crash loss. Host 0 issues into a blackhole, then crashes.
	net.Host(0).Uplink.SetDown(s, true)
	for i := 0; i < 3; i++ {
		stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: 8 * 1024})
	}
	stacks[0].Crash(s)
	eps[0].Crash(s)
	if attr.PendingLen() != 0 {
		t.Fatalf("pending = %d after crash, want 0", attr.PendingLen())
	}
	stacks[0].Restart()
	eps[0].Restart(s)
	net.Host(0).Uplink.SetDown(s, false)

	// Path 2: retry-budget failure. Host 1's uplink stays dead.
	net.Host(1).Uplink.SetDown(s, true)
	stacks[1].Issue(s, &RPC{Dst: 2, Priority: qos.PC, Bytes: 8 * 1024})

	// Path 3: retries that eventually succeed, from host 2 through a
	// temporary blackhole.
	net.Host(2).Uplink.SetDown(s, true)
	stacks[2].Issue(s, &RPC{Dst: 0, Priority: qos.PC, Bytes: 8 * 1024})
	s.AtFunc(sim.Time(500*sim.Microsecond), func(s *sim.Simulator) {
		net.Host(2).Uplink.SetDown(s, false)
	})

	// Host 1's link never heals, so its transport stream retries forever:
	// bound the run like the harness does.
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	if attr.PendingLen() != 0 {
		t.Errorf("pending = %d at end of run, want 0", attr.PendingLen())
	}
	if stacks[1].Stats.Failed != 1 {
		t.Errorf("host 1 Failed = %d, want 1", stacks[1].Stats.Failed)
	}
	if stacks[2].Stats.Completed != 1 {
		t.Errorf("host 2 Completed = %d, want 1", stacks[2].Stats.Completed)
	}
}

// TestTrackedPathMatchesPlainPath checks the robust issue path is a
// behavioural no-op when nothing goes wrong: same completions, same RNL,
// as the plain path on the same seed.
func TestTrackedPathMatchesPlainPath(t *testing.T) {
	run := func(track bool) (int64, sim.Duration) {
		_, stacks, _ := robustSetup(t, 2, RetryPolicy{})
		stacks[0].TrackInflight = track
		s := sim.New(42)
		var lastRNL sim.Duration
		stacks[0].OnComplete = func(_ *sim.Simulator, r *RPC) { lastRNL = r.RNL }
		for i := 0; i < 20; i++ {
			stacks[0].Issue(s, &RPC{Dst: 1, Priority: qos.PC, Bytes: int64(1000 * (i + 1))})
		}
		s.Run()
		return stacks[0].Stats.Completed, lastRNL
	}
	c1, r1 := run(false)
	c2, r2 := run(true)
	if c1 != c2 || r1 != r2 {
		t.Errorf("plain (%d, %v) != tracked (%d, %v)", c1, r1, c2, r2)
	}
}
