// Package baselines implements the five comparison systems of §6.10 —
// pFabric, QJump, D3, PDQ, and Homa — at the same RPC-on-packets level as
// the Aequitas simulation, with the simplifications noted per system. All
// baselines plug into the unmodified RPC stack via the rpc.Sender
// interface, so experiments measure the same RNL and SLO quantities for
// every system.
//
// Fidelity notes:
//
//   - pFabric needs no sender of its own: it is the urgency-ordered switch
//     queue (wfq.PriorityQueue, dropping the least urgent) combined with
//     an aggressive fixed-window transport; packets already carry
//     remaining-size urgency from the standard transport.
//
//   - QJump (this file) enforces per-QoS-level host rate limits with
//     token buckets in front of the standard transport, with strict
//     priority in the fabric. Rate limits follow QJump's throughput
//     factors: the highest level gets the latency-guaranteed epsilon rate
//     (line rate divided by fan-in), lower levels progressively more.
//
//   - Homa (homa.go) is receiver-driven: unscheduled bytes up to one BDP,
//     then grants paced by the receiver to the message with the least
//     remaining bytes (SRPT), with in-network priority from remaining
//     size.
//
//   - D3 and PDQ (deadline.go) are modelled with an explicit per-downlink
//     rate allocator instead of wire-format rate-request headers: D3
//     performs greedy first-come-first-served deadline allocation; PDQ
//     performs preemptive earliest-deadline-first. Both terminate RPCs
//     whose deadlines are infeasible ("better never than late"), which is
//     what produces their characteristic ~50% network utilisation in
//     Figure 22.
package baselines

import (
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

// QJumpConfig parameterises the QJump sender.
type QJumpConfig struct {
	// LevelRates[i] is the rate limit for QoS level i in bits/second;
	// 0 means unlimited (the lowest, throughput-oriented level).
	LevelRates []sim.Rate
	// BucketBytes bounds each level's token accumulation (default one
	// MTU above the largest message burst, 64 KiB).
	BucketBytes int64
}

// QJumpRates returns the deployed level rates for a fabric at the given
// line rate: the two SLO-carrying levels are throttled to half the line
// rate each and lower levels are unlimited. QJump's strict latency
// guarantee would require the epsilon rate R/hosts for the top level,
// which starves any realistic PC share; production-style deployments run
// looser throughput factors, which reproduces the paper's observation
// that QJump sustains utilisation but loses RPC-level latency under
// overload (§6.10).
func QJumpRates(levels int, lineRate sim.Rate, hosts int) []sim.Rate {
	_ = hosts
	rates := make([]sim.Rate, levels)
	if levels > 0 {
		rates[0] = lineRate / 2
	}
	if levels > 1 {
		rates[1] = lineRate / 2
	}
	return rates
}

// QJump wraps a standard transport endpoint with per-level token-bucket
// rate limiting. Messages above the level's available tokens wait in a
// FIFO per level; the fabric runs strict priority queuing.
type QJump struct {
	ep  *transport.Endpoint
	cfg QJumpConfig

	levels []qjumpLevel
}

type qjumpLevel struct {
	rate    sim.Rate
	tokens  float64
	lastRef sim.Time
	queue   []*transport.Message
	pumping bool
}

// NewQJump builds a QJump sender over the given endpoint.
func NewQJump(ep *transport.Endpoint, cfg QJumpConfig) *QJump {
	if cfg.BucketBytes == 0 {
		cfg.BucketBytes = 64 << 10
	}
	q := &QJump{ep: ep, cfg: cfg}
	q.levels = make([]qjumpLevel, len(cfg.LevelRates))
	for i := range q.levels {
		q.levels[i].rate = cfg.LevelRates[i]
		q.levels[i].tokens = float64(cfg.BucketBytes)
	}
	return q
}

// Send implements rpc.Sender.
func (q *QJump) Send(s *sim.Simulator, m *transport.Message) {
	li := int(m.Class)
	if li >= len(q.levels) || q.levels[li].rate == 0 {
		q.ep.Send(s, m)
		return
	}
	l := &q.levels[li]
	l.queue = append(l.queue, m)
	q.pump(s, li)
}

func (q *QJump) refill(s *sim.Simulator, li int) {
	l := &q.levels[li]
	dt := s.Now() - l.lastRef
	l.lastRef = s.Now()
	l.tokens += float64(l.rate) / 8 * dt.Seconds()
	if max := float64(q.cfg.BucketBytes); l.tokens > max {
		l.tokens = max
	}
}

// pump forwards queued messages under the token bucket, scheduling a
// wakeup when tokens are insufficient. Messages larger than the bucket
// capacity are released once the bucket is full and drive the token count
// negative (token debt), so large messages are paced at the level rate
// instead of wedging the queue.
func (q *QJump) pump(s *sim.Simulator, li int) {
	l := &q.levels[li]
	if l.pumping {
		return
	}
	q.refill(s, li)
	for len(l.queue) > 0 {
		m := l.queue[0]
		need := float64(m.Bytes)
		if cap := float64(q.cfg.BucketBytes); need > cap {
			need = cap
		}
		if l.tokens < need {
			// Wait for enough tokens.
			wait := sim.FromSeconds((need - l.tokens) * 8 / float64(l.rate))
			if wait < sim.Nanosecond {
				wait = sim.Nanosecond
			}
			l.pumping = true
			s.AfterFunc(wait, func(s *sim.Simulator) {
				l.pumping = false
				q.pump(s, li)
			})
			return
		}
		l.tokens -= float64(m.Bytes)
		l.queue = l.queue[1:]
		q.ep.Send(s, m)
	}
}

var _ rpc.Sender = (*QJump)(nil)
