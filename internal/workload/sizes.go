// Package workload generates RPC traffic for experiments: size
// distributions (fixed, mixed, and production-shaped per Figure 1),
// Poisson and periodic arrival processes, and the Figure 7 burst/idle
// modulation parameterised by average load µ and burst load ρ.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SizeDist samples RPC payload sizes in bytes.
type SizeDist interface {
	Sample(r *rand.Rand) int64
	// Mean returns the expected size, used to convert byte rates into
	// RPC arrival rates.
	Mean() float64
}

// Fixed always returns Bytes.
type Fixed struct{ Bytes int64 }

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) int64 { return f.Bytes }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f.Bytes) }

// Choice samples from a weighted set of sizes (e.g. the half-32 KB,
// half-64 KB workload of §6.8).
type Choice struct {
	Sizes   []int64
	Weights []float64
}

// Sample implements SizeDist.
func (c Choice) Sample(r *rand.Rand) int64 {
	var tot float64
	for _, w := range c.Weights {
		tot += w
	}
	u := r.Float64() * tot
	for i, w := range c.Weights {
		if u < w {
			return c.Sizes[i]
		}
		u -= w
	}
	return c.Sizes[len(c.Sizes)-1]
}

// Mean implements SizeDist.
func (c Choice) Mean() float64 {
	var tot, acc float64
	for i, w := range c.Weights {
		tot += w
		acc += w * float64(c.Sizes[i])
	}
	if tot == 0 {
		return 0
	}
	return acc / tot
}

// Piecewise is an empirical CDF over log-spaced size points with linear
// interpolation in log-size space, the representation used for the
// production-shaped distributions of Figure 1.
type Piecewise struct {
	// Sizes must be strictly increasing; CDF must be non-decreasing,
	// starting above 0 and ending at 1.
	Sizes []int64
	CDF   []float64

	meanOnce float64
}

// NewPiecewise validates and returns a piecewise distribution.
func NewPiecewise(sizes []int64, cdf []float64) (*Piecewise, error) {
	if len(sizes) != len(cdf) || len(sizes) < 2 {
		return nil, fmt.Errorf("workload: need matching sizes/cdf of length ≥ 2")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return nil, fmt.Errorf("workload: sizes not increasing at %d", i)
		}
		if cdf[i] < cdf[i-1] {
			return nil, fmt.Errorf("workload: cdf decreasing at %d", i)
		}
	}
	if cdf[0] < 0 || math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		return nil, fmt.Errorf("workload: cdf must end at 1")
	}
	p := &Piecewise{Sizes: sizes, CDF: cdf}
	// Pre-compute the mean so Sample/Mean are read-only afterwards: a
	// SizeDist may be shared by configurations running concurrently.
	p.meanOnce = p.computeMean()
	return p, nil
}

// MustPiecewise is NewPiecewise for static tables.
func MustPiecewise(sizes []int64, cdf []float64) *Piecewise {
	p, err := NewPiecewise(sizes, cdf)
	if err != nil {
		panic(err)
	}
	return p
}

// Sample implements SizeDist using inverse-CDF with log-linear
// interpolation.
func (p *Piecewise) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	i := sort.SearchFloat64s(p.CDF, u)
	if i == 0 {
		return p.Sizes[0]
	}
	if i >= len(p.CDF) {
		return p.Sizes[len(p.Sizes)-1]
	}
	c0, c1 := p.CDF[i-1], p.CDF[i]
	if c1 == c0 {
		return p.Sizes[i]
	}
	frac := (u - c0) / (c1 - c0)
	l0, l1 := math.Log(float64(p.Sizes[i-1])), math.Log(float64(p.Sizes[i]))
	return int64(math.Exp(l0 + frac*(l1-l0)))
}

// Mean implements SizeDist (numeric estimate of the log-linear
// interpolated distribution, computed once at construction).
func (p *Piecewise) Mean() float64 {
	if p.meanOnce != 0 {
		return p.meanOnce
	}
	// Zero-value Piecewise built without NewPiecewise: fall back to
	// computing on demand (single-threaded construction paths only).
	return p.computeMean()
}

func (p *Piecewise) computeMean() float64 {
	// Expected value of the log-linear segments: integrate exp of a
	// uniform in log space per segment. E[X | segment] for X = e^L, L
	// uniform on [l0, l1]: (e^l1 − e^l0)/(l1 − l0).
	var mean float64
	mean += p.CDF[0] * float64(p.Sizes[0])
	for i := 1; i < len(p.Sizes); i++ {
		w := p.CDF[i] - p.CDF[i-1]
		if w == 0 {
			continue
		}
		l0, l1 := math.Log(float64(p.Sizes[i-1])), math.Log(float64(p.Sizes[i]))
		var seg float64
		if l1 == l0 {
			seg = float64(p.Sizes[i])
		} else {
			seg = (float64(p.Sizes[i]) - float64(p.Sizes[i-1])) / (l1 - l0)
		}
		mean += w * seg
	}
	return mean
}

// The production-shaped distributions below follow the qualitative shape
// of Figure 1 (sizes normalised there; absolute scales chosen to match the
// storage-workload story of §2.1): PC RPCs are mostly small random reads
// and metadata with a tail of large performance-critical transfers; NC
// RPCs are mid-size sequential reads; BE RPCs are large background
// transfers.

// ProductionPC returns the performance-critical size distribution.
func ProductionPC() *Piecewise {
	return MustPiecewise(
		[]int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 2 << 20},
		[]float64{0.10, 0.35, 0.65, 0.85, 0.94, 0.985, 1},
	)
}

// ProductionNC returns the non-critical size distribution.
func ProductionNC() *Piecewise {
	return MustPiecewise(
		[]int64{1 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 4 << 20},
		[]float64{0.05, 0.25, 0.55, 0.85, 0.97, 1},
	)
}

// ProductionBE returns the best-effort size distribution.
func ProductionBE() *Piecewise {
	return MustPiecewise(
		[]int64{4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20},
		[]float64{0.05, 0.20, 0.45, 0.75, 0.95, 1},
	)
}
