// Command aequitas-serve demonstrates the admission controller serving
// live traffic: a demo HTTP server whose handlers run behind the
// serve.Admission middleware, and a load-generating client that drives a
// mixed-class workload at it and reports what the controller did.
//
// Server (terminal 1):
//
//	aequitas-serve -mode server -addr :8080 -work 300us -slo 200us
//
// Load (terminal 2):
//
//	aequitas-serve -mode client -url http://localhost:8080 -conc 16 -duration 10s
//
// While the load runs, live metrics are on the server:
//
//	curl -s localhost:8080/metrics   # Prometheus text, padmit gauges
//	curl -s localhost:8080/snapshot  # JSON document
//
// With -work above -slo the handler can never meet the SLO, so the admit
// probability falls and the client sees X-Aequitas-Downgraded responses —
// Algorithm 1 converging on the wall clock.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aequitas"
	"aequitas/serve"
)

func main() {
	var (
		mode     = flag.String("mode", "server", "server | client")
		addr     = flag.String("addr", ":8080", "server listen address")
		work     = flag.Duration("work", 300*time.Microsecond, "server: simulated handler work per request")
		slo      = flag.Duration("slo", 200*time.Microsecond, "server: latency SLO for the highest class (medium gets 2x)")
		reject   = flag.Bool("reject", false, "server: reject downgraded requests with 503 instead of serving them")
		url      = flag.String("url", "http://localhost:8080", "client: target server")
		conc     = flag.Int("conc", 16, "client: concurrent workers")
		duration = flag.Duration("duration", 10*time.Second, "client: run length")
	)
	flag.Parse()
	switch *mode {
	case "server":
		runServer(*addr, *work, *slo, *reject)
	case "client":
		runClient(*url, *conc, *duration)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want server or client)\n", *mode)
		os.Exit(2)
	}
}

func runServer(addr string, work, slo time.Duration, reject bool) {
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: slo},
			{Target: 2 * slo},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	adm, err := serve.New(serve.Config{Controller: ctl, RejectDowngraded: reject})
	if err != nil {
		log.Fatal(err)
	}

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Simulated downstream work; scavenger-class requests run the
		// same code, they just ride a lower network priority in a real
		// deployment.
		time.Sleep(work)
		v, _ := serve.FromContext(r.Context())
		fmt.Fprintf(w, "ok class=%v downgraded=%v\n", v.Class, v.Downgraded)
	})

	mux := http.NewServeMux()
	metrics := adm.Handler()
	mux.Handle("/metrics", metrics)
	mux.Handle("/snapshot", metrics)
	mux.Handle("/debug/pprof/", metrics)
	mux.Handle("/", adm.Middleware(handler))

	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for range t.C {
			s := ctl.Stats()
			log.Printf("ctl: admitted=%d downgraded=%d slo_met=%d slo_miss=%d",
				s.Admitted, s.Downgraded, s.SLOMet, s.SLOMisses)
		}
	}()

	log.Printf("serving on %s (work=%v, SLO=%v/%v, reject=%v)", addr, work, slo, 2*slo, reject)
	log.Fatal(http.ListenAndServe(addr, mux))
}

// clientStats aggregates one load run.
type clientStats struct {
	sent, downgraded, rejected, errors atomic.Int64
	mu                                 sync.Mutex
	latencies                          []time.Duration
}

func runClient(url string, conc int, duration time.Duration) {
	var cs clientStats
	classes := []string{"QoSh", "QoSh", "QoSm", "QoSl"} // 2:1:1 mix
	deadline := time.Now().Add(duration)
	client := &http.Client{Timeout: 5 * time.Second}

	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				req, err := http.NewRequest("GET", url+"/demo", nil)
				if err != nil {
					cs.errors.Add(1)
					continue
				}
				req.Header.Set(serve.HeaderClass, classes[(w+i)%len(classes)])
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					cs.errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				elapsed := time.Since(start)
				cs.sent.Add(1)
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					cs.rejected.Add(1)
				case resp.Header.Get(serve.HeaderDowngraded) == "1":
					cs.downgraded.Add(1)
				}
				cs.mu.Lock()
				cs.latencies = append(cs.latencies, elapsed)
				cs.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sent := cs.sent.Load()
	fmt.Printf("sent=%d downgraded=%d rejected=%d errors=%d (%.1f req/s)\n",
		sent, cs.downgraded.Load(), cs.rejected.Load(), cs.errors.Load(),
		float64(sent)/duration.Seconds())
	if len(cs.latencies) > 0 {
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p / 100 * float64(len(cs.latencies)-1))
			return cs.latencies[i]
		}
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			pct(50), pct(90), pct(99), cs.latencies[len(cs.latencies)-1])
	}
}
