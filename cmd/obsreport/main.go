// Command obsreport joins one run's observability artifacts — the NDJSON
// lifecycle trace, the wide-format metrics CSV, and the per-RPC
// attribution CSV — into a single run report, and diffs two such reports
// with per-metric deltas.
//
// Build a report (any subset of artifacts; markdown to stdout unless
// -json/-md redirect it):
//
//	obsreport -label baseline -trace run.ndjson -metrics run.csv \
//	    -attr run-attr.csv -json run-report.json
//
// A/B-diff two saved reports, biggest relative movements first:
//
//	obsreport -diff baseline-report.json candidate-report.json
//
// Report JSON carries the "aequitas.obsreport/v1" schema tag and is
// validated by cmd/tracecheck -report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aequitas/internal/obs"
)

func main() {
	var (
		label   = flag.String("label", "", "name for this run in the report (and in diffs)")
		trace   = flag.String("trace", "", "NDJSON lifecycle trace to summarise")
		metrics = flag.String("metrics", "", "metrics CSV to summarise")
		attr    = flag.String("attr", "", "attribution CSV to summarise")
		flightF = flag.String("flight", "", "flight-recorder NDJSON dump stream to summarise")
		jsonOut = flag.String("json", "", "write the report (or diff) as JSON to this file ('-' = stdout)")
		mdOut   = flag.String("md", "", "write the report (or diff) as markdown to this file ('-' = stdout)")
		diff    = flag.Bool("diff", false, "compare two report JSON files: obsreport -diff a.json b.json")
		all     = flag.Bool("all", false, "with -diff, print every metric row instead of the top movements")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [-label name] [-trace t.ndjson] [-metrics m.csv] [-attr a.csv] [-flight f.ndjson] [-json out] [-md out]")
		fmt.Fprintln(os.Stderr, "       obsreport -diff [-all] a-report.json b-report.json")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diff {
		runDiff(flag.Args(), *jsonOut, *mdOut, *all)
		return
	}
	if *trace == "" && *metrics == "" && *attr == "" && *flightF == "" {
		flag.Usage()
		os.Exit(2)
	}

	open := func(path string) io.Reader {
		if path == "" {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		return f
	}
	rep, err := obs.BuildReport(*label, open(*trace), open(*metrics), open(*attr), open(*flightF))
	if err != nil {
		fatal(err)
	}
	wrote := false
	if *jsonOut != "" {
		writeTo(*jsonOut, rep.WriteJSON)
		wrote = true
	}
	if *mdOut != "" {
		writeTo(*mdOut, rep.WriteMarkdown)
		wrote = true
	}
	if !wrote {
		if err := rep.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runDiff loads two report JSONs and renders their comparison.
func runDiff(args []string, jsonOut, mdOut string, all bool) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsreport -diff a-report.json b-report.json")
		os.Exit(2)
	}
	load := func(path string) *obs.Report {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err := obs.ValidateReportJSON(f)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if rep.Label == "" {
			rep.Label = path
		}
		return rep
	}
	d := obs.DiffReports(load(args[0]), load(args[1]))
	maxRows := 40
	if all {
		maxRows = 0
	}
	wrote := false
	if jsonOut != "" {
		writeTo(jsonOut, d.WriteJSON)
		wrote = true
	}
	if mdOut != "" {
		writeTo(mdOut, func(w io.Writer) error { return d.WriteMarkdown(w, maxRows) })
		wrote = true
	}
	if !wrote {
		if err := d.WriteMarkdown(os.Stdout, maxRows); err != nil {
			fatal(err)
		}
	}
}

// writeTo renders into a file, or stdout for "-".
func writeTo(path string, render func(io.Writer) error) {
	if path == "-" {
		if err := render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := render(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
