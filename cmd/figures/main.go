// Command figures regenerates every table and figure in the Aequitas
// paper's evaluation (§6 and the appendices) from this repository's
// implementation. Each figure prints the same rows/series the paper
// plots; EXPERIMENTS.md records the comparison against the published
// numbers.
//
// Usage:
//
//	figures -fig 8          # one figure
//	figures -fig all        # everything (minutes)
//	figures -list           # what's available
//	figures -fig 12 -nodes 33 -dur 100ms   # paper-scale override
//
// Simulated experiments default to a reduced scale (fewer hosts, shorter
// horizon) that preserves the paper's shape — who wins, by what factor,
// where crossovers fall — while completing quickly. Use -nodes/-dur for
// full-scale runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"aequitas"
	"aequitas/internal/obs"
)

// figure is one regenerable experiment.
type figure struct {
	id   string
	desc string
	run  func(o options) error
}

// options carries the shared CLI knobs.
type options struct {
	nodes    int           // cluster size for "33-node" experiments
	big      int           // cluster size for the "144-node" experiment
	dur      time.Duration // simulated horizon for cluster experiments
	long     time.Duration // horizon for convergence experiments
	seed     int64
	workers  int  // simulation worker-pool size (0 = GOMAXPROCS)
	progress bool // report per-run sweep completion on stderr
}

// progressFn returns the RunMany progress callback: live "run k/n"
// completions on stderr when -progress is set, nil otherwise. Progress
// goes to stderr so piped figure output stays clean.
func (o options) progressFn() func(aequitas.Progress) {
	if !o.progress {
		return nil
	}
	return func(p aequitas.Progress) {
		if p.Err != nil {
			fmt.Fprintf(os.Stderr, "  run %d/%d failed (config %d): %v\n", p.Done, p.Total, p.Index, p.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "  run %d/%d done (config %d)\n", p.Done, p.Total, p.Index)
	}
}

// live is the shared exporter behind -http; when set, every sweep run
// publishes snapshots into it, labelled "<figure>[<config index>]".
var live *obs.Exporter

// liveLabel is the figure id currently running, for snapshot labels.
var liveLabel string

// runAll fans the independent simulations of one figure across the worker
// pool and returns results in input order. Figure output is identical for
// any -parallel value; only wall-clock time changes. With -http the runs
// additionally stream snapshots to the live exporter (concurrent runs
// interleave their publishes; each snapshot is self-consistent and
// carries its run's label).
func runAll(o options, cfgs ...aequitas.SimConfig) ([]*aequitas.Results, error) {
	if live != nil {
		for i := range cfgs {
			cfgs[i].Obs.Export = live
			cfgs[i].Obs.ExportLabel = fmt.Sprintf("%s[%d]", liveLabel, i)
		}
	}
	return aequitas.RunMany(cfgs, aequitas.ParallelOptions{Workers: o.workers, OnProgress: o.progressFn()})
}

// parallelFor runs f(0..n-1) on the worker pool — for figure inner loops
// that are not packet simulations (fleet models, distribution sampling).
// Each f(i) must be independent and write only to index-i state.
func parallelFor(workers, n int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

var figures []figure

func register(id, desc string, run func(o options) error) {
	figures = append(figures, figure{id, desc, run})
}

func main() {
	var (
		fig      = flag.String("fig", "", "figure id to regenerate (or 'all')")
		list     = flag.Bool("list", false, "list available figures")
		nodes    = flag.Int("nodes", 12, "hosts for cluster-scale experiments (paper: 33)")
		big      = flag.Int("big", 24, "hosts for the large-scale experiment (paper: 144)")
		dur      = flag.Duration("dur", 30*time.Millisecond, "simulated horizon for cluster experiments")
		long     = flag.Duration("long", 600*time.Millisecond, "horizon for convergence experiments")
		seed     = flag.Int64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "simulation workers per figure (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "report live per-run sweep progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering the figure runs to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the figure runs")
		outDir   = flag.String("out", "out", "also write each figure's output to <dir>/fig<id>_output.txt (plus figures_output.txt for -fig all); empty disables")
		httpAddr = flag.String("http", "", "serve live /metrics (Prometheus), /snapshot (JSON) and /debug/pprof on this address while sweep figures run")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sort.Slice(figures, func(i, j int) bool { return figures[i].id < figures[j].id })

	if *list || *fig == "" {
		fmt.Println("available figures:")
		for _, f := range figures {
			fmt.Printf("  %-12s %s\n", f.id, f.desc)
		}
		if *fig == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *httpAddr != "" {
		live = obs.NewExporter()
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-http %s: %v\n", *httpAddr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving /metrics, /snapshot, /debug/pprof on http://%s\n", ln.Addr())
		go http.Serve(ln, live.Handler())
	}

	var combined *os.File
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "-out %s: %v\n", *outDir, err)
			os.Exit(1)
		}
		if *fig == "all" {
			var err error
			combined, err = os.Create(filepath.Join(*outDir, "figures_output.txt"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "-out: %v\n", err)
				os.Exit(1)
			}
			defer combined.Close()
		}
	}

	o := options{nodes: *nodes, big: *big, dur: *dur, long: *long, seed: *seed, workers: *parallel, progress: *progress}
	ran := false
	for _, f := range figures {
		if *fig == "all" || f.id == *fig {
			ran = true
			liveLabel = f.id
			var perFig *os.File
			if *outDir != "" {
				var err error
				perFig, err = os.Create(filepath.Join(*outDir, "fig"+f.id+"_output.txt"))
				if err != nil {
					fmt.Fprintf(os.Stderr, "-out: %v\n", err)
					os.Exit(1)
				}
			}
			err := teeStdout(func() error {
				fmt.Printf("=== %s: %s ===\n", f.id, f.desc)
				start := time.Now()
				if err := f.run(o); err != nil {
					return err
				}
				fmt.Printf("--- %s done in %v ---\n\n", f.id, time.Since(start).Round(time.Millisecond))
				return nil
			}, perFig, combined)
			if perFig != nil {
				perFig.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: %v\n", f.id, err)
				os.Exit(1)
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
		os.Exit(2)
	}
}

// teeStdout runs fn with os.Stdout duplicated into the given files (nils
// skipped). It restores os.Stdout and waits for the copier to drain
// before returning, so per-figure files are complete when closed. With no
// files, fn runs undisturbed.
func teeStdout(fn func() error, files ...*os.File) error {
	ws := []io.Writer{os.Stdout}
	for _, f := range files {
		if f != nil {
			ws = append(ws, f)
		}
	}
	if len(ws) == 1 {
		return fn()
	}
	r, w, err := os.Pipe()
	if err != nil {
		return err
	}
	real := os.Stdout
	os.Stdout = w
	done := make(chan struct{})
	mw := io.MultiWriter(ws...)
	go func() {
		io.Copy(mw, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	<-done
	os.Stdout = real
	return ferr
}
