package calculus

import (
	"fmt"
	"math"
)

// Phase is one piecewise-constant segment of an arrival pattern: every
// class i arrives at rate Rates[i] (in units of line rate) for Duration
// (in units of the period).
type Phase struct {
	Duration float64
	Rates    []float64
}

// Fluid is a fluid-model (Generalized Processor Sharing) WFQ simulation of
// a single link with capacity 1. It extends the closed-form 2-QoS analysis
// to an arbitrary number of classes and arbitrary piecewise-constant
// arrival curves; the paper uses the same approach for Figure 9.
type Fluid struct {
	Weights []float64
	Phases  []Phase
}

// BurstPattern returns the Figure 7 arrival pattern: all classes arrive
// simultaneously at aggregate instantaneous rate ρ, split across classes by
// mix, for a duration µ/ρ, followed by an idle phase until the end of the
// unit period.
func BurstPattern(mix []float64, rho, mu float64) []Phase {
	burst := make([]float64, len(mix))
	for i, m := range mix {
		burst[i] = rho * m
	}
	idle := make([]float64, len(mix))
	burstDur := mu / rho
	return []Phase{
		{Duration: burstDur, Rates: burst},
		{Duration: 1 - burstDur, Rates: idle},
	}
}

// breakpoint is a vertex of a piecewise-linear cumulative curve.
type breakpoint struct{ t, v float64 }

// curve is a non-decreasing piecewise-linear cumulative function.
type curve []breakpoint

// append adds a vertex, merging collinear extensions.
func (c *curve) add(t, v float64) {
	n := len(*c)
	if n > 0 && (*c)[n-1].t == t {
		(*c)[n-1].v = v
		return
	}
	*c = append(*c, breakpoint{t, v})
}

// at evaluates the curve at time t (clamped to its domain).
func (c curve) at(t float64) float64 {
	n := len(c)
	if n == 0 {
		return 0
	}
	if t <= c[0].t {
		return c[0].v
	}
	if t >= c[n-1].t {
		return c[n-1].v
	}
	// Linear scan is fine: curves have a handful of phases.
	for i := 1; i < n; i++ {
		if t <= c[i].t {
			p, q := c[i-1], c[i]
			if q.t == p.t {
				return q.v
			}
			return p.v + (q.v-p.v)*(t-p.t)/(q.t-p.t)
		}
	}
	return c[n-1].v
}

// invAt returns the earliest time at which the curve reaches value v, or
// the curve's final time if it never does.
func (c curve) invAt(v float64) float64 {
	n := len(c)
	if n == 0 {
		return 0
	}
	if v <= c[0].v {
		return c[0].t
	}
	for i := 1; i < n; i++ {
		if v <= c[i].v+1e-15 {
			p, q := c[i-1], c[i]
			if q.v <= p.v {
				return q.t
			}
			return p.t + (q.t-p.t)*(v-p.v)/(q.v-p.v)
		}
	}
	return c[n-1].t
}

// FluidResult reports the outcome of a fluid simulation.
type FluidResult struct {
	// Delay[i] is the worst-case normalized queuing delay of class i:
	// the maximum horizontal distance between its arrival and service
	// cumulative curves.
	Delay []float64
	// Arrived[i] and Served[i] are the total traffic volumes, which must
	// be equal once the system drains (checked by tests).
	Arrived []float64
	Served  []float64
	// DrainTime is when the last backlog empties.
	DrainTime float64
}

const fluidEps = 1e-12

// Run simulates the fluid system until all arrivals end and all backlogs
// drain, then computes per-class worst-case delays.
func (f Fluid) Run() (FluidResult, error) {
	n := len(f.Weights)
	if n == 0 {
		return FluidResult{}, fmt.Errorf("calculus: no classes")
	}
	for i, w := range f.Weights {
		if w <= 0 {
			return FluidResult{}, fmt.Errorf("calculus: weight[%d] = %v, must be positive", i, w)
		}
	}
	for pi, ph := range f.Phases {
		if len(ph.Rates) != n {
			return FluidResult{}, fmt.Errorf("calculus: phase %d has %d rates, want %d", pi, len(ph.Rates), n)
		}
		if ph.Duration < 0 {
			return FluidResult{}, fmt.Errorf("calculus: phase %d has negative duration", pi)
		}
		for i, r := range ph.Rates {
			if r < 0 {
				return FluidResult{}, fmt.Errorf("calculus: phase %d rate[%d] negative", pi, i)
			}
		}
	}

	arrival := make([]curve, n)
	service := make([]curve, n)
	q := make([]float64, n) // backlog per class
	for i := 0; i < n; i++ {
		arrival[i].add(0, 0)
		service[i].add(0, 0)
	}

	now := 0.0
	phase := 0
	phaseEnd := 0.0
	rates := make([]float64, n) // current arrival rates
	if len(f.Phases) > 0 {
		phaseEnd = f.Phases[0].Duration
		copy(rates, f.Phases[0].Rates)
	}
	zero := make([]float64, n)

	totalBacklog := func() float64 {
		var s float64
		for _, x := range q {
			s += x
		}
		return s
	}

	for iter := 0; ; iter++ {
		if iter > 1000000 {
			return FluidResult{}, fmt.Errorf("calculus: fluid simulation did not converge")
		}
		// Advance past exhausted phases.
		for phase < len(f.Phases) && now >= phaseEnd-fluidEps {
			phase++
			if phase < len(f.Phases) {
				phaseEnd += f.Phases[phase].Duration
				copy(rates, f.Phases[phase].Rates)
			} else {
				copy(rates, zero)
			}
		}
		if phase >= len(f.Phases) && totalBacklog() < fluidEps {
			break
		}

		s := gpsRates(f.Weights, rates, q, 1.0)

		// Time to the next structural event: phase boundary or a queue
		// draining to empty.
		dt := math.Inf(1)
		if phase < len(f.Phases) {
			dt = phaseEnd - now
		}
		for i := 0; i < n; i++ {
			drain := s[i] - rates[i]
			if q[i] > fluidEps && drain > fluidEps {
				if d := q[i] / drain; d < dt {
					dt = d
				}
			}
		}
		if math.IsInf(dt, 1) {
			// No arrivals and nothing draining: only possible when all
			// service rates are zero with zero backlog.
			break
		}
		if dt < fluidEps {
			dt = fluidEps
		}

		for i := 0; i < n; i++ {
			q[i] += (rates[i] - s[i]) * dt
			if q[i] < 0 {
				q[i] = 0
			}
			na := arrival[i][len(arrival[i])-1].v + rates[i]*dt
			ns := service[i][len(service[i])-1].v + s[i]*dt
			arrival[i].add(now+dt, na)
			service[i].add(now+dt, ns)
		}
		now += dt
	}

	res := FluidResult{
		Delay:   make([]float64, n),
		Arrived: make([]float64, n),
		Served:  make([]float64, n),
	}
	res.DrainTime = now
	for i := 0; i < n; i++ {
		res.Arrived[i] = arrival[i][len(arrival[i])-1].v
		res.Served[i] = service[i][len(service[i])-1].v
		res.Delay[i] = maxHorizontalDistance(arrival[i], service[i])
	}
	return res, nil
}

// gpsRates computes the instantaneous GPS service rates for capacity cap:
// backlogged classes can absorb any rate; empty classes are capped at their
// arrival rate; capacity is split proportionally to weights with capped
// classes' surplus redistributed (progressive filling).
func gpsRates(w, a, q []float64, cap float64) []float64 {
	n := len(w)
	s := make([]float64, n)
	active := make([]bool, n)
	anyActive := false
	for i := 0; i < n; i++ {
		if q[i] > fluidEps || a[i] > fluidEps {
			active[i] = true
			anyActive = true
		}
	}
	if !anyActive {
		return s
	}
	remaining := cap
	unsat := make([]bool, n)
	copy(unsat, active)
	for {
		var totW float64
		for i := 0; i < n; i++ {
			if unsat[i] {
				totW += w[i]
			}
		}
		if totW <= 0 || remaining <= fluidEps {
			break
		}
		changed := false
		for i := 0; i < n; i++ {
			if !unsat[i] {
				continue
			}
			alloc := remaining * w[i] / totW
			// An empty queue cannot be served faster than it arrives.
			if q[i] <= fluidEps && alloc >= a[i] {
				s[i] = a[i]
				remaining -= a[i]
				unsat[i] = false
				changed = true
			}
		}
		if !changed {
			for i := 0; i < n; i++ {
				if unsat[i] {
					s[i] = remaining * w[i] / totW
				}
			}
			break
		}
	}
	return s
}

// maxHorizontalDistance computes the worst-case delay between an arrival
// curve and a service curve: max over t of S⁻¹(A(t)) − t. Both curves are
// piecewise linear, so the maximum occurs either at a vertex of A or at a
// time where A crosses the value of a vertex of S.
func maxHorizontalDistance(a, s curve) float64 {
	var worst float64
	// Conservation guarantees every arrived unit is eventually served, but
	// floating-point residue can leave the arrival total a few ulps above
	// the service total; clamp lookups so that residue does not turn into
	// a spurious full-horizon delay.
	sFinal := 0.0
	if len(s) > 0 {
		sFinal = s[len(s)-1].v
	}
	consider := func(t float64) {
		v := a.at(t)
		if v > sFinal {
			v = sFinal
		}
		if d := s.invAt(v) - t; d > worst {
			worst = d
		}
	}
	for _, bp := range a {
		consider(bp.t)
	}
	for _, bp := range s {
		// Find where the arrival curve reaches this service value; delay
		// there is bp.t (or later) minus that time.
		consider(a.invAt(bp.v))
	}
	if worst < 0 {
		worst = 0
	}
	return worst
}

// WorstCaseDelays runs the Figure 7 burst pattern through the fluid model
// and returns per-class worst-case normalized delays. It is the N-class
// generalisation used for Figure 9.
func WorstCaseDelays(weights, mix []float64, rho, mu float64) ([]float64, error) {
	if len(weights) != len(mix) {
		return nil, fmt.Errorf("calculus: %d weights but %d mix entries", len(weights), len(mix))
	}
	f := Fluid{Weights: weights, Phases: BurstPattern(mix, rho, mu)}
	res, err := f.Run()
	if err != nil {
		return nil, err
	}
	return res.Delay, nil
}

// Admissible reports whether the given QoS-mix lies in the admissible
// region (Equation 3): worst-case delay must be non-decreasing from the
// highest class down (no priority inversion).
func Admissible(weights, mix []float64, rho, mu float64) (bool, error) {
	d, err := WorstCaseDelays(weights, mix, rho, mu)
	if err != nil {
		return false, err
	}
	for k := 0; k+1 < len(d); k++ {
		if d[k] > d[k+1]+1e-9 {
			return false, nil
		}
	}
	return true, nil
}

// AdmissibleBoundary returns the largest x in (0, 1) such that mixAt(y) is
// admissible for every y ≤ x, scanned at the given resolution. mixAt maps
// a QoSh-share to a complete mix (e.g. splitting the remainder between
// QoSm and QoSl at a fixed ratio).
func AdmissibleBoundary(weights []float64, mixAt func(x float64) []float64, rho, mu float64, steps int) (float64, error) {
	if steps < 2 {
		steps = 256
	}
	last := 0.0
	for i := 1; i < steps; i++ {
		x := float64(i) / float64(steps)
		ok, err := Admissible(weights, mixAt(x), rho, mu)
		if err != nil {
			return 0, err
		}
		if !ok {
			return last, nil
		}
		last = x
	}
	return last, nil
}
