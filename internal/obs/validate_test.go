package obs

import (
	"fmt"
	"strings"
	"testing"

	"aequitas/internal/sim"
)

// TestValidateNDJSONLineNumbers proves errors report the physical line
// number — counting blank lines — and name the offending field, so a
// reported position matches what an editor shows.
func TestValidateNDJSONLineNumbers(t *testing.T) {
	in := strings.Join([]string{
		`{"ts_us":1,"kind":"drop","rpc":1,"link":"x","class":0,"bytes":1}`,
		``, // blank line: skipped but still counted
		`{"ts_us":2,"kind":"drop","rpc":2,"link":"x","class":0,"bytes":1}`,
		`{"ts_us":3,"kind":"drop","rpc":3,"class":0,"bytes":1}`, // missing link
		`{"ts_us":4,"kind":"drop","rpc":4,"link":"x","class":0,"bytes":1}`,
	}, "\n")
	n, err := ValidateNDJSON(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed mid-file line validated")
	}
	if n != 3 {
		t.Errorf("valid-event count = %d, want 3 (two good + the bad one)", n)
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 4") {
		t.Errorf("error %q does not name physical line 4", msg)
	}
	if !strings.Contains(msg, `"link"`) {
		t.Errorf("error %q does not name the offending field", msg)
	}
}

// TestValidateNDJSONErrorsNameField checks every rejection path names the
// field it tripped on.
func TestValidateNDJSONErrorsNameField(t *testing.T) {
	cases := map[string]struct{ in, field string }{
		"missing ts":     {`{"kind":"issue","rpc":1,"src":0,"dst":1,"prio":0,"class":0,"bytes":1}`, "ts_us"},
		"regression":     {"{\"ts_us\":5,\"kind\":\"drop\",\"rpc\":1,\"link\":\"x\",\"class\":0,\"bytes\":1}\n{\"ts_us\":4,\"kind\":\"drop\",\"rpc\":2,\"link\":\"x\",\"class\":0,\"bytes\":1}", "ts_us"},
		"missing kind":   {`{"ts_us":1,"rpc":1}`, "kind"},
		"unknown kind":   {`{"ts_us":1,"kind":"warp","rpc":1}`, "kind"},
		"missing rpc":    {`{"ts_us":1,"kind":"drop","link":"x","class":0,"bytes":1}`, "rpc"},
		"wrong type":     {`{"ts_us":1,"kind":"drop","rpc":1,"link":7,"class":0,"bytes":1}`, "link"},
		"p_admit range":  {`{"ts_us":1,"kind":"admit","rpc":1,"src":0,"dst":1,"class":0,"decision":"admit","p_admit":1.5}`, "p_admit"},
		"bad decision":   {`{"ts_us":1,"kind":"admit","rpc":1,"src":0,"dst":1,"class":0,"decision":"maybe","p_admit":0.5}`, "decision"},
		"negative resid": {`{"ts_us":1,"kind":"hop","rpc":1,"link":"x","class":0,"bytes":1,"resid_us":-2,"qbytes":0}`, "resid_us"},
		"zero rnl":       {`{"ts_us":1,"kind":"complete","rpc":1,"src":0,"dst":1,"class":0,"bytes":1,"rnl_us":0}`, "rnl_us"},
	}
	for name, tc := range cases {
		_, err := ValidateNDJSON(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: validated", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name field %q", name, err, tc.field)
		}
	}
}

func TestValidateMetricsCSV(t *testing.T) {
	good := "t_s,q.up-0.bytes,drop.up-0.pkts\n0.000000000,12,0\n0.000100000,,1\n0.000200000,3,1\n"
	n, err := ValidateMetricsCSV(strings.NewReader(good), MetricFamilies)
	if err != nil {
		t.Fatalf("valid csv rejected: %v", err)
	}
	if n != 3 {
		t.Errorf("rows = %d, want 3", n)
	}
	// nil families skips the prefix check.
	if _, err := ValidateMetricsCSV(strings.NewReader("t_s,anything\n1,2\n"), nil); err != nil {
		t.Errorf("nil families rejected: %v", err)
	}
}

func TestValidateMetricsCSVRejects(t *testing.T) {
	cases := map[string]struct{ in, want string }{
		"empty":          {"", "no header"},
		"bad first col":  {"time,q.a\n", `"t_s"`},
		"empty name":     {"t_s,,q.a\n", "column 2"},
		"duplicate":      {"t_s,q.a,q.a\n", "duplicate"},
		"unknown family": {"t_s,latency.a\n", "family"},
		"field count":    {"t_s,q.a\n1,2,3\n", "fields"},
		"bad t_s":        {"t_s,q.a\nnope,2\n", `"t_s"`},
		"non-monotonic":  {"t_s,q.a\n2,1\n1,1\n", "before previous"},
		"bad cell":       {"t_s,q.a\n1,x\n", `"q.a"`},
	}
	for name, tc := range cases {
		_, err := ValidateMetricsCSV(strings.NewReader(tc.in), MetricFamilies)
		if err == nil {
			t.Errorf("%s: validated", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", name, err, tc.want)
		}
	}
}

// TestValidateMetricsCSVRoundTrip feeds a registry's own output through
// the validator, with columns drawn from the real metric families.
func TestValidateMetricsCSVRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Register(func(now sim.Time, emit func(string, float64)) {
		emit("q.up-0.bytes", 100)
		emit("padmit.d1.c0", 0.5)
		if now > 0 {
			emit("srtt_us.0-1", 12.25) // late column: earlier cells empty
		}
	})
	for i := 0; i < 3; i++ {
		r.Sample(sim.Time(i) * sim.Time(sim.Microsecond))
	}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateMetricsCSV(strings.NewReader(buf.String()), MetricFamilies)
	if err != nil {
		t.Fatalf("registry output rejected: %v", err)
	}
	if n != r.Rows() {
		t.Errorf("validated %d rows, registry has %d", n, r.Rows())
	}
}

// registryWithColumns builds a registry whose samples carry n columns,
// sampled once so every column exists.
func registryWithColumns(n int) *Registry {
	r := NewRegistry()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("q.link-%d.bytes", i)
	}
	r.Register(func(now sim.Time, emit func(string, float64)) {
		for i, name := range names {
			emit(name, float64(i))
		}
	})
	r.Sample(0)
	return r
}

// TestRegistryValueAllocs pins Value's column lookup at zero allocations:
// the name→index map is built during sampling, so queries are a single
// map hit, never a scan or an allocation.
func TestRegistryValueAllocs(t *testing.T) {
	r := registryWithColumns(64)
	allocs := testing.AllocsPerRun(1000, func() {
		if v := r.Value(0, "q.link-63.bytes"); v != 63 {
			t.Fatalf("value = %v", v)
		}
	})
	if allocs != 0 {
		t.Errorf("Registry.Value: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkRegistryValue pins the lookup cost on a wide registry (the
// per-port metrics of a large fabric produce hundreds of columns).
func BenchmarkRegistryValue(b *testing.B) {
	r := registryWithColumns(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Value(0, "q.link-511.bytes")
	}
}
