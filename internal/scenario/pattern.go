package scenario

import "fmt"

// Assignment maps a set of sender hosts onto a shared destination draw.
// Patterns emit assignments instead of per-sender destination slices so
// the all-to-all case costs one slice for the whole fabric rather than
// one "everyone but me" copy per sender.
type Assignment struct {
	// Hosts are the sender host ids covered by this assignment.
	Hosts []int
	// Dsts are the destination candidates each sender draws from.
	Dsts []int
	// Weights optionally biases the draw; parallel to Dsts.
	Weights []float64
	// ExcludeSelf removes the sender itself from Dsts at draw time,
	// letting senders share one destination slice.
	ExcludeSelf bool
}

// Pattern generates the sender→destination assignments of one traffic
// matrix over an n-host fabric.
type Pattern interface {
	Expand(n int) ([]Assignment, error)
	String() string
}

// AllHosts returns [0, n).
func AllHosts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Uniform is the all-to-all matrix: every host sends to every other host
// uniformly. One shared assignment covers the whole fabric.
type Uniform struct{}

// Expand implements Pattern.
func (Uniform) Expand(n int) ([]Assignment, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: uniform pattern needs ≥ 2 hosts, have %d", n)
	}
	ids := AllHosts(n)
	return []Assignment{{Hosts: ids, Dsts: ids, ExcludeSelf: true}}, nil
}

func (Uniform) String() string { return "uniform" }

// Incast converges Fanin senders onto one receiver — the canonical
// many-to-one overload. Dst receives; the Fanin lowest-numbered other
// hosts send. Fanin 0 means every other host.
type Incast struct {
	Fanin int
	Dst   int
}

// Expand implements Pattern.
func (p Incast) Expand(n int) ([]Assignment, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: incast pattern needs ≥ 2 hosts, have %d", n)
	}
	if p.Dst < 0 || p.Dst >= n {
		return nil, fmt.Errorf("scenario: incast destination %d out of range [0,%d)", p.Dst, n)
	}
	fanin := p.Fanin
	if fanin == 0 {
		fanin = n - 1
	}
	if fanin < 1 || fanin > n-1 {
		return nil, fmt.Errorf("scenario: incast fan-in %d out of range [1,%d]", fanin, n-1)
	}
	senders := make([]int, 0, fanin)
	for i := 0; i < n && len(senders) < fanin; i++ {
		if i != p.Dst {
			senders = append(senders, i)
		}
	}
	return []Assignment{{Hosts: senders, Dsts: []int{p.Dst}}}, nil
}

func (p Incast) String() string {
	if p.Fanin == 0 {
		return "incast"
	}
	return fmt.Sprintf("incast(%d)", p.Fanin)
}

// Permutation pairs host i with destination (i+1) mod n: every host
// sends to exactly one peer and receives from exactly one peer, the
// classic no-contention matrix.
type Permutation struct{}

// Expand implements Pattern.
func (Permutation) Expand(n int) ([]Assignment, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: permutation pattern needs ≥ 2 hosts, have %d", n)
	}
	ids := AllHosts(n)
	out := make([]Assignment, n)
	for i := 0; i < n; i++ {
		out[i] = Assignment{Hosts: ids[i : i+1], Dsts: ids[(i+1)%n : (i+1)%n+1]}
	}
	return out, nil
}

func (Permutation) String() string { return "permutation" }

// Hotspot skews the all-to-all matrix toward one receiver: every sender
// directs Share of its traffic at host Hot and spreads the rest evenly
// over the other hosts; Hot itself sends uniformly. Share in (0, 1).
type Hotspot struct {
	Hot   int
	Share float64
}

// Expand implements Pattern.
func (p Hotspot) Expand(n int) ([]Assignment, error) {
	if n < 3 {
		return nil, fmt.Errorf("scenario: hotspot pattern needs ≥ 3 hosts, have %d", n)
	}
	if p.Hot < 0 || p.Hot >= n {
		return nil, fmt.Errorf("scenario: hotspot host %d out of range [0,%d)", p.Hot, n)
	}
	if p.Share <= 0 || p.Share >= 1 {
		return nil, fmt.Errorf("scenario: hotspot share %v outside (0,1)", p.Share)
	}
	ids := AllHosts(n)
	rest := (1 - p.Share) / float64(n-2)
	out := make([]Assignment, 0, n)
	for i := 0; i < n; i++ {
		if i == p.Hot {
			// The hotspot host itself spreads uniformly.
			out = append(out, Assignment{Hosts: ids[i : i+1], Dsts: ids, ExcludeSelf: true})
			continue
		}
		// Exact per-sender weights: Share at the hotspot, the remainder
		// split over everyone else; the sender's own slot weighs zero.
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			switch j {
			case i:
				// self: never a destination
			case p.Hot:
				w[j] = p.Share
			default:
				w[j] = rest
			}
		}
		out = append(out, Assignment{Hosts: ids[i : i+1], Dsts: ids, Weights: w})
	}
	return out, nil
}

func (p Hotspot) String() string { return fmt.Sprintf("hotspot(%d,%.2f)", p.Hot, p.Share) }
