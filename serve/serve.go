// Package serve embeds the Aequitas admission controller in a live RPC
// server: an net/http middleware and a gRPC-style unary interceptor that
// classify each inbound request to a (peer, QoS class) admission channel,
// consult the controller, downgrade or reject unadmitted work, and feed
// measured handler latencies back as SLO observations — Algorithm 1
// running on the wall clock instead of the simulator.
//
// The package is intentionally dependency-free: the interceptor types
// mirror google.golang.org/grpc's unary server interceptor signature so a
// real gRPC server adapts with a one-line wrapper, without this module
// importing grpc.
//
// Serving metrics (decision counters, per-class latency histograms, live
// admit probabilities) are exported through the same obs.Exporter surface
// the simulator uses: Prometheus text on /metrics, JSON on /snapshot.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aequitas"
)

// Request is one classified unit of inbound work: the admission channel it
// belongs to and its size.
type Request struct {
	// Peer names the admission channel's destination — typically the
	// downstream service or route this request will occupy.
	Peer string
	// Class is the requested QoS level.
	Class aequitas.Class
	// SizeBytes is the request's payload size; it scales both the SLO
	// target and the multiplicative decrease. Non-positive sizes count as
	// one MTU.
	SizeBytes int64
}

// Config parameterises an Admission layer.
type Config struct {
	// Controller is the admission controller consulted per request.
	// Required.
	Controller *aequitas.AdmissionController
	// Classify maps an inbound HTTP request to its admission channel.
	// Nil uses ClassifyByHeader.
	Classify func(*http.Request) Request
	// RejectDowngraded replies 503 Service Unavailable (or ErrRejected
	// from the interceptor) instead of serving downgraded requests on the
	// scavenger class — for servers whose scavenger work is handled by a
	// separate pool.
	RejectDowngraded bool
	// Flight enables the flight recorder: the controller's decisions and
	// observations land in a lock-free ring, dumpable at /debug/flight
	// and frozen automatically when Flight.Engine detects an SLO burn or
	// admission collapse.
	Flight *FlightConfig
	// DecisionLog, when set, receives every admission verdict after it is
	// recorded — the hook for an application's own structured decision
	// log. It runs on the request path; keep it cheap and non-blocking.
	DecisionLog func(Verdict)
}

// The headers the middleware reads and writes.
const (
	// HeaderClass carries the requested QoS class on requests and the
	// assigned class on responses.
	HeaderClass = "X-Aequitas-Class"
	// HeaderPeer optionally names the admission channel on requests.
	HeaderPeer = "X-Aequitas-Peer"
	// HeaderDowngraded marks responses served on the scavenger class
	// after a failed admission draw.
	HeaderDowngraded = "X-Aequitas-Downgraded"
)

// ClassifyByHeader is the default classifier: the channel peer comes from
// X-Aequitas-Peer (falling back to the URL path), the requested class from
// X-Aequitas-Class (default the highest), and the size from the request
// body length.
func ClassifyByHeader(r *http.Request) Request {
	peer := r.Header.Get(HeaderPeer)
	if peer == "" {
		peer = r.URL.Path
	}
	class := aequitas.High
	if c, err := ParseClass(r.Header.Get(HeaderClass)); err == nil {
		class = c
	}
	return Request{Peer: peer, Class: class, SizeBytes: r.ContentLength}
}

// ParseClass reads a QoS class from its paper name (QoSh/QoSm/QoSl),
// a plain level name (high/medium/low), or a numeric level.
func ParseClass(s string) (aequitas.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "qosh", "high", "h":
		return aequitas.High, nil
	case "qosm", "medium", "m":
		return aequitas.Medium, nil
	case "qosl", "low", "l":
		return aequitas.Low, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("serve: unknown QoS class %q", s)
	}
	return aequitas.Class(n), nil
}

// Admission is the serving-side admission layer: construct once per
// process, then wrap handlers with Middleware or RPC endpoints with
// UnaryInterceptor. All methods are safe for concurrent use.
type Admission struct {
	ctl    *aequitas.AdmissionController
	cls    func(*http.Request) Request
	reject bool
	m      metrics
	fl     *flightState
	dlog   func(Verdict)
}

// New builds an Admission layer over cfg.Controller.
func New(cfg Config) (*Admission, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("serve: Config.Controller is required")
	}
	cls := cfg.Classify
	if cls == nil {
		cls = ClassifyByHeader
	}
	a := &Admission{ctl: cfg.Controller, cls: cls, reject: cfg.RejectDowngraded, dlog: cfg.DecisionLog}
	a.m.init()
	if cfg.Flight != nil {
		a.fl = newFlightState(*cfg.Flight, a.m.start)
		a.ctl.SetFlight(a.fl.ring)
	}
	return a, nil
}

// Controller returns the wrapped admission controller.
func (a *Admission) Controller() *aequitas.AdmissionController { return a.ctl }

// ctxKey carries the admission verdict through the request context.
type ctxKey struct{}

// Verdict is the admission outcome attached to a request's context.
type Verdict struct {
	Request Request
	// Class is the QoS level the request actually runs on.
	Class aequitas.Class
	// Downgraded reports a failed admission draw (the request runs on
	// the scavenger class, or was rejected under RejectDowngraded).
	Downgraded bool
}

// FromContext returns the admission verdict for the current request, if it
// passed through the middleware or interceptor.
func FromContext(ctx context.Context) (Verdict, bool) {
	v, ok := ctx.Value(ctxKey{}).(Verdict)
	return v, ok
}

// admit runs one classified request through the controller and records the
// decision.
func (a *Admission) admit(req Request) Verdict {
	d := a.ctl.Admit(req.Peer, req.Class, req.SizeBytes)
	v := Verdict{Request: req, Class: d.Class, Downgraded: d.Downgraded}
	a.m.decided(v, a.reject)
	if a.dlog != nil {
		a.dlog(v)
	}
	return v
}

// finish feeds the completed request's latency back to the controller on
// the class it ran on, records it in the serving histograms, and gives
// the anomaly engine a chance to evaluate.
func (a *Admission) finish(v Verdict, elapsed time.Duration) {
	a.ctl.Observe(v.Request.Peer, v.Class, elapsed, v.Request.SizeBytes)
	a.m.completed(v.Class, elapsed)
	a.fl.maybeTick(a.ctl)
}

// Middleware wraps next with admission control: classify, admit (setting
// the response headers), serve on the decided class, and feed the measured
// handler latency back as an SLO observation. Rejected requests (under
// RejectDowngraded) receive 503 with Retry-After and are not observed —
// they never ran.
func (a *Admission) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := a.admit(a.cls(r))
		h := w.Header()
		h.Set(HeaderClass, v.Class.String())
		if v.Downgraded {
			h.Set(HeaderDowngraded, "1")
			if a.reject {
				h.Set("Retry-After", "1")
				http.Error(w, "rejected by admission control", http.StatusServiceUnavailable)
				return
			}
		}
		start := time.Now()
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKey{}, v)))
		a.finish(v, time.Since(start))
	})
}
