package obs

import (
	"strings"
	"testing"

	"aequitas/internal/sim"
)

// collectEmits runs the sampler once and returns the (name, value) pairs
// in emission order.
func collectEmits(s Sampler) ([]string, []float64) {
	var names []string
	var vals []float64
	s(0, func(name string, v float64) {
		names = append(names, name)
		vals = append(vals, v)
	})
	return names, vals
}

// TestTailTrackerWindows: emission order is sorted (dst, class) whatever
// the observation order, each window resets, and empty channels emit
// nothing.
func TestTailTrackerWindows(t *testing.T) {
	tr := NewTailTracker()
	sampler := tr.Sampler()

	// Observe out of order across three channels.
	tr.Observe(2, 1, 30)
	tr.Observe(0, 0, 10)
	tr.Observe(2, 0, 20)
	tr.Observe(0, 0, 12)
	names, vals := collectEmits(sampler)
	wantNames := []string{
		"tail.d0.q0.n", "tail.d0.q0.p50_us", "tail.d0.q0.p90_us", "tail.d0.q0.p99_us", "tail.d0.q0.p999_us",
		"tail.d2.q0.n", "tail.d2.q0.p50_us", "tail.d2.q0.p90_us", "tail.d2.q0.p99_us", "tail.d2.q0.p999_us",
		"tail.d2.q1.n", "tail.d2.q1.p50_us", "tail.d2.q1.p90_us", "tail.d2.q1.p99_us", "tail.d2.q1.p999_us",
	}
	if strings.Join(names, " ") != strings.Join(wantNames, " ") {
		t.Fatalf("window 1 emitted %v, want %v", names, wantNames)
	}
	if vals[0] != 2 || vals[5] != 1 || vals[10] != 1 {
		t.Errorf("window counts = %v/%v/%v, want 2/1/1", vals[0], vals[5], vals[10])
	}
	// Quantiles within a channel must be non-decreasing.
	for i := 0; i < len(names); i += 5 {
		for j := i + 2; j < i+5; j++ {
			if vals[j] < vals[j-1] {
				t.Errorf("%s = %v below %s = %v", names[j], vals[j], names[j-1], vals[j-1])
			}
		}
	}

	// Window 2: only one channel active; the others stay silent.
	tr.Observe(2, 0, 100)
	names, vals = collectEmits(sampler)
	if len(names) != 5 || names[0] != "tail.d2.q0.n" || vals[0] != 1 {
		t.Fatalf("window 2 emitted %v %v, want only tail.d2.q0 with n=1", names, vals)
	}

	// Window 3: nothing observed, nothing emitted.
	if names, _ := collectEmits(sampler); len(names) != 0 {
		t.Fatalf("empty window emitted %v", names)
	}
}

// TestTailTrackerNilDisabled: the nil tracker is the zero-cost disabled
// path.
func TestTailTrackerNilDisabled(t *testing.T) {
	var tr *TailTracker
	if tr.Enabled() {
		t.Error("nil tracker claims enabled")
	}
	tr.Observe(0, 0, 1) // must not panic
}

// TestTailTrackerInRegistry: tail columns land in the CSV and pass
// ValidateMetricsCSV with the tail family and monotonicity checks.
func TestTailTrackerInRegistry(t *testing.T) {
	tr := NewTailTracker()
	reg := NewRegistry()
	reg.Register(tr.Sampler())
	for i := 0; i < 3; i++ {
		for j := 0; j < 50; j++ {
			tr.Observe(1, 0, float64(10+j*i))
		}
		reg.Sample(sim.Time(i) * 1000)
	}
	var b strings.Builder
	if err := reg.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := ValidateMetricsCSV(strings.NewReader(b.String()), MetricFamilies)
	if err != nil {
		t.Fatalf("tail CSV rejected: %v\n%s", err, b.String())
	}
	if rows != 3 {
		t.Errorf("rows = %d, want 3", rows)
	}
}

// TestValidateMetricsCSVTailMonotonic: a row whose p99 undercuts its p90
// within the same channel is rejected, naming the column; the same values
// on different channels pass.
func TestValidateMetricsCSVTailMonotonic(t *testing.T) {
	bad := "t_s,tail.d0.q0.p50_us,tail.d0.q0.p90_us,tail.d0.q0.p99_us\n" +
		"0.000000000,10,50,20\n"
	if _, err := ValidateMetricsCSV(strings.NewReader(bad), MetricFamilies); err == nil {
		t.Error("descending tail quantiles accepted")
	} else if !strings.Contains(err.Error(), "tail.d0.q0.p99_us") {
		t.Errorf("error does not name the offending column: %v", err)
	}
	ok := "t_s,tail.d0.q0.p90_us,tail.d1.q0.p50_us\n" +
		"0.000000000,50,20\n"
	if _, err := ValidateMetricsCSV(strings.NewReader(ok), MetricFamilies); err != nil {
		t.Errorf("cross-channel values misread as one channel: %v", err)
	}
	// Empty cells (channel quiet that window) are fine.
	gaps := "t_s,tail.d0.q0.p50_us,tail.d0.q0.p90_us,tail.d0.q0.p99_us\n" +
		"0.000000000,10,,20\n"
	if _, err := ValidateMetricsCSV(strings.NewReader(gaps), MetricFamilies); err != nil {
		t.Errorf("row with empty tail cell rejected: %v", err)
	}
}
