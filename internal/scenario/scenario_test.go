package scenario

import (
	"reflect"
	"testing"

	"aequitas/internal/wfq"
)

func TestRegistryCoversAllNineSystems(t *testing.T) {
	want := []string{"aequitas", "baseline", "d3", "dwrr", "homa", "pdq", "pfabric", "qjump", "spq"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown system succeeded")
	}
}

func TestSchedulerFamilies(t *testing.T) {
	weights := []float64{8, 4, 1}
	cases := map[string]string{
		"baseline": "*wfq.WFQ",
		"aequitas": "*wfq.WFQ",
		"spq":      "*wfq.SPQ",
		"qjump":    "*wfq.SPQ",
		"dwrr":     "*wfq.DWRR",
		"pfabric":  "*wfq.PriorityQueue",
		"homa":     "*wfq.PriorityQueue",
		"d3":       "*wfq.FIFO",
		"pdq":      "*wfq.FIFO",
	}
	for name, want := range cases {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var s wfq.Scheduler = b.Scheduler(weights, 1<<20)()
		if got := reflect.TypeOf(s).String(); got != want {
			t.Errorf("%s scheduler = %s, want %s", name, got, want)
		}
	}
}

func TestUniformPatternSharesOneSlice(t *testing.T) {
	as, err := Uniform{}.Expand(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 {
		t.Fatalf("uniform expanded to %d assignments", len(as))
	}
	a := as[0]
	if !a.ExcludeSelf {
		t.Error("uniform assignment must exclude self")
	}
	if len(a.Hosts) != 5 || len(a.Dsts) != 5 {
		t.Errorf("hosts/dsts = %v / %v", a.Hosts, a.Dsts)
	}
	if &a.Hosts[0] != &a.Dsts[0] {
		t.Error("uniform should share one id slice between senders and destinations")
	}
}

func TestIncastPattern(t *testing.T) {
	as, err := Incast{Fanin: 3}.Expand(6)
	if err != nil {
		t.Fatal(err)
	}
	a := as[0]
	if !reflect.DeepEqual(a.Hosts, []int{1, 2, 3}) || !reflect.DeepEqual(a.Dsts, []int{0}) {
		t.Errorf("incast(3) = %v -> %v", a.Hosts, a.Dsts)
	}
	// Default fan-in: everyone else.
	as, err = Incast{Dst: 2}.Expand(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as[0].Hosts, []int{0, 1, 3}) {
		t.Errorf("default incast senders = %v", as[0].Hosts)
	}
	if _, err := (Incast{Fanin: 9}).Expand(4); err == nil {
		t.Error("oversized fan-in accepted")
	}
	if _, err := (Incast{Dst: 7}).Expand(4); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestPermutationPattern(t *testing.T) {
	as, err := Permutation{}.Expand(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("%d assignments", len(as))
	}
	for i, a := range as {
		if len(a.Hosts) != 1 || len(a.Dsts) != 1 || a.Dsts[0] != (i+1)%4 {
			t.Errorf("assignment %d: %v -> %v", i, a.Hosts, a.Dsts)
		}
	}
}

func TestHotspotPatternWeights(t *testing.T) {
	p := Hotspot{Hot: 1, Share: 0.6}
	as, err := p.Expand(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 5 {
		t.Fatalf("%d assignments", len(as))
	}
	for _, a := range as {
		sender := a.Hosts[0]
		if sender == 1 {
			if a.Weights != nil || !a.ExcludeSelf {
				t.Error("hot host should send uniformly to the others")
			}
			continue
		}
		var sum float64
		for j, w := range a.Weights {
			sum += w
			if j == sender && w != 0 {
				t.Errorf("sender %d weighs itself %v", sender, w)
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("sender %d weights sum to %v", sender, sum)
		}
		if a.Weights[1] != 0.6 {
			t.Errorf("sender %d hotspot weight %v", sender, a.Weights[1])
		}
	}
	if _, err := (Hotspot{Hot: 0, Share: 1.5}).Expand(5); err == nil {
		t.Error("share > 1 accepted")
	}
	if _, err := (Hotspot{Hot: 9, Share: 0.5}).Expand(5); err == nil {
		t.Error("out-of-range hot host accepted")
	}
}
