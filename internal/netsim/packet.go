// Package netsim is the packet-level datacenter network simulator: hosts
// with NIC egress queues, full-duplex links with serialisation and
// propagation delay, and an output-queued switch whose egress ports run a
// pluggable scheduling discipline (WFQ by default). It plays the role of
// the YAPS-based simulator in the paper's evaluation (§6.1).
//
// The topology is a single-switch star: every host connects to the switch
// with one full-duplex link. Overload is created at switch egress ports
// (many-to-one) or host uplinks, which is where the paper's WFQ analysis
// applies. All experiments in the paper run on such topologies (3-node,
// 33-node, 144-node all-to-all).
package netsim

import (
	"fmt"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

// Packet is the unit transferred by the network. It implements wfq.Item.
type Packet struct {
	ID    uint64
	Src   int // sending host id
	Dst   int // receiving host id
	Class qos.Class
	Size  int // bytes on the wire, headers included

	// Kind distinguishes protocol-specific control packets (baseline
	// transports use it for grants, completion notices, etc.). Zero for
	// ordinary data/ACK traffic.
	Kind uint8

	// Transport fields.
	Ack     bool     // acknowledgement (reverse direction)
	MsgID   uint64   // message this packet belongs to
	Seq     int64    // first payload byte offset within the message
	Payload int      // payload bytes carried
	SentAt  sim.Time // transmission timestamp for RTT estimation
	AckSeq  int64    // for ACKs: cumulative bytes acknowledged

	// Gen is the sender's stream epoch for this (src, class) connection.
	// It is bumped when transport state is torn down after a host crash,
	// so packets and acks from before the crash cannot corrupt the
	// rebuilt streams. Zero everywhere when no faults are injected.
	Gen uint32

	// Urg is the urgency metric consumed by priority-based disciplines
	// (pFabric, Homa): typically the message's remaining size in bytes at
	// transmission time. Lower is more urgent.
	Urg int64

	// Deadline is used by deadline-aware baselines (D3, PDQ).
	Deadline sim.Time

	// EnqueuedAt is stamped by Link.Send when the packet enters an egress
	// scheduler, so per-hop queue residency can be traced on dequeue.
	EnqueuedAt sim.Time

	// Tail marks the packet carrying its message's last payload byte.
	// The transport sets it only when latency attribution is enabled, so
	// the attributor can charge this packet's per-hop queue residencies
	// (NIC, then switches) to the message's RNL.
	Tail bool
}

// SizeBytes implements wfq.Item.
func (p *Packet) SizeBytes() int { return p.Size }

// QoS implements wfq.Item.
func (p *Packet) QoS() int { return int(p.Class) }

// Urgency implements wfq.Item.
func (p *Packet) Urgency() int64 { return p.Urg }

func (p *Packet) String() string {
	kind := "data"
	if p.Ack {
		kind = "ack"
	}
	return fmt.Sprintf("pkt{%d %s %d->%d %v msg=%d seq=%d size=%d}",
		p.ID, kind, p.Src, p.Dst, p.Class, p.MsgID, p.Seq, p.Size)
}

// Header sizes, matching the usual Ethernet+IP+TCP framing the paper's
// 100 Gbps numbers assume.
const (
	HeaderBytes = 64   // per-packet header overhead on the wire
	MTU         = 1500 // maximum wire size; payload per full packet is MTU-HeaderBytes
	AckBytes    = 64   // ACK wire size
)

// MaxPayload is the payload carried by a full-size packet.
const MaxPayload = MTU - HeaderBytes

// MTUsFor returns the number of MTUs an RPC of payloadBytes occupies,
// rounding up, minimum 1. Algorithm 1's size-normalised SLO targets and
// multiplicative decrease both use this unit.
func MTUsFor(payloadBytes int64) int64 {
	if payloadBytes <= 0 {
		return 1
	}
	return (payloadBytes + MaxPayload - 1) / MaxPayload
}
