package faults

import (
	"fmt"
	"math/rand"

	"aequitas/internal/sim"
)

// LinkControl is the slice of a link the injector drives. netsim.Link
// implements it.
type LinkControl interface {
	SetDown(s *sim.Simulator, down bool)
	SetLoss(rate float64, rng *rand.Rand)
}

// HostControl crashes and restarts one host's end-host state (RPC stack,
// transport endpoint, admission controller). The run pipeline implements
// it, because the pieces live in different layers.
type HostControl interface {
	Crash(s *sim.Simulator)
	Restart(s *sim.Simulator)
}

// Injector schedules a Plan onto a simulator. Targets are bound by name
// before Schedule; unknown targets fail fast rather than silently
// injecting nothing.
type Injector struct {
	plan  *Plan
	rng   *rand.Rand
	links map[string][]LinkControl
	hosts map[int]HostControl

	// OnEvent, when set, observes every applied event (trace emission,
	// degradation accounting).
	OnEvent func(s *sim.Simulator, e Event)
}

// NewInjector builds an injector for plan. runSeed derives the loss-draw
// RNG seed when the plan does not pin one, so loss patterns are
// reproducible per run but independent of the simulation's main RNG.
func NewInjector(plan *Plan, runSeed int64) *Injector {
	seed := plan.Seed
	if seed == 0 {
		seed = runSeed ^ 0x6c657373 // "loss"
	}
	return &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[string][]LinkControl),
		hosts: make(map[int]HostControl),
	}
}

// BindLink registers the controls behind a target name. Binding the same
// name twice appends, so "host:N" can map to both access links.
func (in *Injector) BindLink(name string, ls ...LinkControl) {
	in.links[name] = append(in.links[name], ls...)
}

// BindHost registers the control for host id.
func (in *Injector) BindHost(id int, h HostControl) { in.hosts[id] = h }

// Schedule validates every event's target and schedules the plan on s.
// Events at the same instant fire in plan order (the simulator breaks
// timestamp ties by scheduling order).
func (in *Injector) Schedule(s *sim.Simulator) error {
	if in.plan.Empty() {
		return nil
	}
	if err := in.plan.Validate(); err != nil {
		return err
	}
	evs := in.plan.sorted()
	for _, e := range evs {
		if e.Kind.IsLink() {
			if len(in.links[e.Link]) == 0 {
				return fmt.Errorf("faults: no link named %q", e.Link)
			}
		} else if in.hosts[e.Host] == nil {
			return fmt.Errorf("faults: no host %d", e.Host)
		}
	}
	for _, e := range evs {
		e := e
		s.AtFunc(sim.Time(e.At), func(s *sim.Simulator) { in.apply(s, e) })
	}
	return nil
}

func (in *Injector) apply(s *sim.Simulator, e Event) {
	switch e.Kind {
	case LinkDown:
		for _, l := range in.links[e.Link] {
			l.SetDown(s, true)
		}
	case LinkUp:
		for _, l := range in.links[e.Link] {
			l.SetDown(s, false)
		}
	case LinkLoss:
		for _, l := range in.links[e.Link] {
			l.SetLoss(e.Rate, in.rng)
		}
	case HostCrash:
		in.hosts[e.Host].Crash(s)
	case HostRestart:
		in.hosts[e.Host].Restart(s)
	}
	if in.OnEvent != nil {
		in.OnEvent(s, e)
	}
}
