// Package stats provides the measurement primitives used across the
// simulator and the experiment harness: exact percentile samples, CDFs,
// fixed-bucket histograms, and time series.
//
// Simulation experiments collect up to a few million scalar samples, so the
// default Sample keeps every observation and computes exact order
// statistics; a bounded reservoir variant is available for very long runs.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sample accumulates float64 observations and computes exact quantiles.
// The zero value is ready to use and retains every observation. A sample
// built with NewBoundedSample instead keeps a uniform reservoir of fixed
// size, so memory stays bounded on arbitrarily long streams: Sum, Mean and
// N remain exact over the whole stream while order statistics (quantiles,
// CDF, StdDev) are computed from the reservoir.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
	seen   int64
	// limit > 0 switches Add to reservoir replacement once len(xs) == limit.
	limit int
	rng   *rand.Rand
	// hist, when set, replaces retained observations entirely: order
	// statistics come from the log-linear histogram (bounded error at any
	// stream length) while Sum/Mean/N/Min/Max stay exact.
	hist *Hist
}

// NewHistSample returns a Sample backed by a log-linear histogram instead
// of retained observations: memory is fixed at construction, Sum, Mean, N,
// Min and Max are exact over the whole stream, and quantiles carry a
// deterministic ≤1/(2·64) ≈ 0.78% relative error bound — unlike a
// reservoir, whose quantile error grows unboundedly likely with stream
// length. Identical insertion sequences yield identical state, preserving
// run-to-run determinism (no RNG is involved at all).
func NewHistSample() *Sample {
	return &Sample{hist: NewHist()}
}

// Hist returns the histogram backing this sample, or nil for exact and
// reservoir samples.
func (s *Sample) Hist() *Hist { return s.hist }

// NewBoundedSample returns a Sample that retains at most limit observations
// via uniform reservoir sampling (Vitter's Algorithm R) seeded with seed.
// Identical insertion sequences yield identical reservoirs, preserving
// run-to-run determinism.
func NewBoundedSample(limit int, seed int64) *Sample {
	if limit <= 0 {
		panic("stats: bounded sample limit must be positive")
	}
	return &Sample{limit: limit, rng: rand.New(rand.NewSource(seed))}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.seen++
	s.sum += x
	if s.hist != nil {
		s.hist.Record(x)
		return
	}
	if s.limit > 0 && len(s.xs) >= s.limit {
		if j := s.rng.Int63n(s.seen); j < int64(s.limit) {
			s.xs[j] = x
			s.sorted = false
		}
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddAll records every observation in xs.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N reports the number of observations offered, including any a bounded
// sample has since evicted from its reservoir.
func (s *Sample) N() int { return int(s.seen) }

// Retained reports the number of observations currently held (equal to N
// unless the sample is bounded; zero for histogram-backed samples, which
// hold only bucket counts).
func (s *Sample) Retained() int { return len(s.xs) }

// Sum reports the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean over every observation offered, or NaN
// if empty.
func (s *Sample) Mean() float64 {
	if s.seen == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.seen)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method, or NaN if the sample is empty. Quantile(0.999) is the paper's
// "99.9th-p". Histogram-backed samples answer with bounded (≤1%) relative
// error instead of an exact order statistic.
func (s *Sample) Quantile(q float64) float64 {
	if s.hist != nil {
		return s.hist.Quantile(q)
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	// Nearest-rank: ceil(q*N) with 1-based ranks.
	rank := int(math.Ceil(q * float64(len(s.xs))))
	if rank < 1 {
		rank = 1
	}
	return s.xs[rank-1]
}

// Percentile returns the p-th percentile, p in [0,100].
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Min and Max return the extreme observations, or NaN if empty.
func (s *Sample) Min() float64 { return s.Quantile(0) }
func (s *Sample) Max() float64 { return s.Quantile(1) }

// StdDev returns the population standard deviation, or NaN if empty.
func (s *Sample) StdDev() float64 {
	if s.hist != nil {
		return s.hist.StdDev()
	}
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order. Histogram-backed samples retain no observations and
// return nil.
func (s *Sample) Values() []float64 {
	if s.hist != nil {
		return nil
	}
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// CountAbove reports how many observations exceed x (bucket-granular for
// histogram-backed samples).
func (s *Sample) CountAbove(x float64) int {
	if s.hist != nil {
		return int(s.hist.CountAbove(x))
	}
	s.sort()
	return len(s.xs) - sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
}

// FractionWithin reports the fraction of observations ≤ x (an empirical
// CDF evaluation), or NaN if empty.
func (s *Sample) FractionWithin(x float64) float64 {
	if s.hist != nil {
		if s.hist.N() == 0 {
			return math.NaN()
		}
		return 1 - float64(s.hist.CountAbove(x))/float64(s.hist.N())
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return 1 - float64(s.CountAbove(x))/float64(len(s.xs))
}

// CDF returns (value, cumulative-fraction) points suitable for plotting,
// thinned to at most maxPoints.
func (s *Sample) CDF(maxPoints int) []Point {
	if s.hist != nil {
		return s.hist.CDF(maxPoints)
	}
	s.sort()
	n := len(s.xs)
	if n == 0 {
		return nil
	}
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]Point, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		pts = append(pts, Point{X: s.xs[idx-1], Y: float64(idx) / float64(n)})
	}
	return pts
}

// Point is a generic (x, y) pair used for plot-like outputs.
type Point struct{ X, Y float64 }

// Reservoir is a fixed-size uniform random sample of a stream
// (Vitter's Algorithm R), for experiments too long to keep every value.
type Reservoir struct {
	cap  int
	seen int64
	xs   []float64
	rng  *rand.Rand
}

// NewReservoir returns a reservoir holding at most capacity observations,
// sampled uniformly from the stream using the given seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.xs) < r.cap {
		r.xs = append(r.xs, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.xs[j] = x
	}
}

// Seen reports how many observations were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the retained observations as a Sample.
func (r *Reservoir) Sample() *Sample {
	s := &Sample{}
	s.AddAll(r.xs)
	return s
}

// Summary is a compact set of descriptive statistics.
type Summary struct {
	N                   int
	Mean, Min, Max      float64
	P50, P90, P99, P999 float64
}

// Summarize computes a Summary from s.
func Summarize(s *Sample) Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Min: s.Min(), Max: s.Max(),
		P50: s.Quantile(0.50), P90: s.Quantile(0.90),
		P99: s.Quantile(0.99), P999: s.Quantile(0.999),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g p99.9=%.3g max=%.3g",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
