// Package faults implements deterministic, seeded fault injection for
// the simulator: a time-ordered Plan of link and host fault events that
// an Injector applies to the fabric and the RPC stacks through narrow
// control interfaces. Everything is reproducible — the plan is data, the
// schedule runs on the simulator's event loop, and the only randomness
// (per-packet loss draws) comes from a dedicated RNG derived from the
// plan or run seed, so the main simulation RNG sequence is untouched and
// an empty plan leaves a run byte-identical to a fault-free build.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"aequitas/internal/sim"
)

// Kind enumerates the fault event types.
type Kind uint8

const (
	// LinkDown blackholes all traffic on the target link until LinkUp:
	// arrivals are dropped silently and the transmitter pauses (queued
	// packets are retained, packets already in flight still deliver).
	LinkDown Kind = iota
	// LinkUp restores a downed link and restarts its transmitter.
	LinkUp
	// LinkLoss sets an independent per-packet random loss probability on
	// the target link; Rate 0 clears it.
	LinkLoss
	// HostCrash fails the target host: in-flight RPCs are lost, the
	// admission controller's learned state resets, outstanding-RPC
	// accounting clears, and peers tear down transport state toward it.
	HostCrash
	// HostRestart brings a crashed host back with empty state.
	HostRestart
	kindCount
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "linkdown"
	case LinkUp:
		return "linkup"
	case LinkLoss:
		return "loss"
	case HostCrash:
		return "crash"
	case HostRestart:
		return "restart"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsLink reports whether the kind targets a link (vs a host).
func (k Kind) IsLink() bool { return k <= LinkLoss }

// Event is one scheduled fault.
type Event struct {
	// At is the event's simulated-time offset from the start of the run.
	At   sim.Duration
	Kind Kind
	// Link names the target egress link for link events. The special form
	// "host:N" addresses both of host N's access links (its uplink and
	// the last-hop downlink toward it), which is how a NIC or ToR-port
	// failure isolates a host.
	Link string
	// Host is the target host id for HostCrash/HostRestart.
	Host int
	// Rate is the LinkLoss drop probability in [0, 1]; 0 clears loss.
	Rate float64
}

// Target renders the event's target for traces and reports.
func (e Event) Target() string {
	if e.Kind.IsLink() {
		return e.Link
	}
	return fmt.Sprintf("host:%d", e.Host)
}

// Plan is a deterministic fault schedule. The zero value (and nil) is
// the empty plan: no faults, no overhead.
type Plan struct {
	// Seed seeds the per-packet loss-draw RNG. 0 derives the seed from
	// the run seed, so the same SimConfig stays reproducible by default
	// while distinct runs draw distinct loss patterns.
	Seed int64
	// Events is the schedule; it need not be pre-sorted. Events at the
	// same instant apply in slice order.
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate reports structural errors: negative times, unknown kinds,
// missing targets, loss rates outside [0, 1].
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d: negative time %v", i, e.At)
		}
		if e.Kind >= kindCount {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, e.Kind)
		}
		if e.Kind.IsLink() && e.Link == "" {
			return fmt.Errorf("faults: event %d: %s needs a link target", i, e.Kind)
		}
		if !e.Kind.IsLink() && e.Host < 0 {
			return fmt.Errorf("faults: event %d: %s host %d out of range", i, e.Kind, e.Host)
		}
		if e.Kind == LinkLoss && (e.Rate < 0 || e.Rate > 1) {
			return fmt.Errorf("faults: event %d: loss rate %v out of [0, 1]", i, e.Rate)
		}
	}
	return nil
}

// sorted returns the events in schedule order (stable by time) without
// mutating the plan, which may be shared across concurrent sweep runs.
func (p *Plan) sorted() []Event {
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// Window is one interval during which a fault was active on a target:
// [Start, End) between a LinkDown and its LinkUp, a HostCrash and its
// HostRestart, or a non-zero LinkLoss and the event clearing it. Faults
// never repaired within the plan extend to sim.MaxTime.
type Window struct {
	Start, End sim.Duration
	Kind       Kind
	Target     string
}

// Contains reports whether t falls inside the window, widened by margin
// on both sides (audit checks use the margin to exclude drain effects
// just after repair).
func (w Window) Contains(t sim.Duration, margin sim.Duration) bool {
	return t >= w.Start-margin && t < w.End+margin
}

// Windows pairs the plan's fault/repair events into active intervals,
// in start-time order.
func (p *Plan) Windows() []Window {
	if p.Empty() {
		return nil
	}
	var out []Window
	open := map[string]int{} // "kindgroup/target" -> index into out
	key := func(e Event) string {
		switch e.Kind {
		case LinkDown, LinkUp:
			return "link/" + e.Target()
		case HostCrash, HostRestart:
			return "host/" + e.Target()
		default:
			return "loss/" + e.Target()
		}
	}
	for _, e := range p.sorted() {
		k := key(e)
		switch e.Kind {
		case LinkDown, HostCrash:
			if _, ok := open[k]; ok {
				continue // already down/crashed; ignore the duplicate
			}
			open[k] = len(out)
			out = append(out, Window{Start: e.At, End: sim.Duration(sim.MaxTime), Kind: e.Kind, Target: e.Target()})
		case LinkUp, HostRestart:
			if i, ok := open[k]; ok {
				out[i].End = e.At
				delete(open, k)
			}
		case LinkLoss:
			if i, ok := open[k]; ok {
				out[i].End = e.At
				delete(open, k)
			}
			if e.Rate > 0 {
				open[k] = len(out)
				out = append(out, Window{Start: e.At, End: sim.Duration(sim.MaxTime), Kind: LinkLoss, Target: e.Target()})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ParsePlan reads a plan file: one event per line in the form
//
//	<offset> <event> <target> [rate]
//
// where offset is a Go duration ("30ms"), event is one of linkdown,
// linkup, loss, crash, restart, and target is a link name ("up-2",
// "down-0", "host:1" for both access links of host 1) or a bare host id
// for crash/restart. loss takes a rate in [0, 1]. '#' starts a comment;
// blank lines are ignored.
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("faults: line %d: need <offset> <event> <target>", lineNo)
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad offset %q: %v", lineNo, fields[0], err)
		}
		e := Event{At: sim.Duration(sim.FromStd(d))}
		switch fields[1] {
		case "linkdown":
			e.Kind = LinkDown
		case "linkup":
			e.Kind = LinkUp
		case "loss":
			e.Kind = LinkLoss
		case "crash":
			e.Kind = HostCrash
		case "restart":
			e.Kind = HostRestart
		default:
			return nil, fmt.Errorf("faults: line %d: unknown event %q", lineNo, fields[1])
		}
		if e.Kind.IsLink() {
			e.Link = fields[2]
		} else {
			host, err := strconv.Atoi(strings.TrimPrefix(fields[2], "host:"))
			if err != nil {
				return nil, fmt.Errorf("faults: line %d: bad host %q", lineNo, fields[2])
			}
			e.Host = host
		}
		if e.Kind == LinkLoss {
			if len(fields) < 4 {
				return nil, fmt.Errorf("faults: line %d: loss needs a rate", lineNo)
			}
			rate, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("faults: line %d: bad rate %q", lineNo, fields[3])
			}
			e.Rate = rate
		}
		p.Events = append(p.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// PresetNames lists the built-in plan presets, for CLI help.
func PresetNames() []string { return []string{"flap", "crash", "flapcrash", "loss"} }

// Preset builds a named canonical plan scaled to a run of the given
// duration. All presets target host 1 (every topology has ≥ 2 hosts):
//
//	flap      — host 1's access links go down at 35% of the run for
//	            min(2ms, 10% of the run)
//	crash     — host 1 crashes at 60% of the run, restarts after the
//	            same outage span
//	flapcrash — both of the above
//	loss      — 1% random loss on host 1's access links over the middle
//	            40% of the run
func Preset(name string, duration time.Duration) (*Plan, error) {
	dur := sim.Duration(sim.FromStd(duration))
	if dur <= 0 {
		return nil, fmt.Errorf("faults: preset needs a positive duration")
	}
	outage := dur / 10
	if max := sim.Duration(sim.FromStd(2 * time.Millisecond)); outage > max {
		outage = max
	}
	const target = "host:1"
	flap := []Event{
		{At: dur * 35 / 100, Kind: LinkDown, Link: target},
		{At: dur*35/100 + outage, Kind: LinkUp, Link: target},
	}
	crash := []Event{
		{At: dur * 60 / 100, Kind: HostCrash, Host: 1},
		{At: dur*60/100 + outage, Kind: HostRestart, Host: 1},
	}
	switch name {
	case "flap":
		return &Plan{Events: flap}, nil
	case "crash":
		return &Plan{Events: crash}, nil
	case "flapcrash":
		return &Plan{Events: append(flap, crash...)}, nil
	case "loss":
		return &Plan{Events: []Event{
			{At: dur * 30 / 100, Kind: LinkLoss, Link: target, Rate: 0.01},
			{At: dur * 70 / 100, Kind: LinkLoss, Link: target, Rate: 0},
		}}, nil
	default:
		return nil, fmt.Errorf("faults: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
}
