package serve

import (
	"context"
	"errors"
	"time"
)

// ErrRejected is returned by the interceptor when RejectDowngraded is set
// and the request failed its admission draw, or when a quota fail-closed
// policy dropped it during a quota-plane outage. Map it to your RPC
// framework's RESOURCE_EXHAUSTED / retry-later status.
var ErrRejected = errors.New("serve: rejected by admission control")

// ErrExpired is returned when the RPC's remaining deadline budget could
// not cover the class's observed latency floor — the work would have
// outlived its caller. Map it to DEADLINE_EXCEEDED.
var ErrExpired = errors.New("serve: deadline budget exhausted before admission")

// ErrShed is returned when the brownout ladder shed the RPC under
// overload. Map it to UNAVAILABLE / retry-later.
var ErrShed = errors.New("serve: shed by overload brownout")

// UnaryHandler continues the RPC after admission, mirroring
// grpc.UnaryHandler.
type UnaryHandler func(ctx context.Context, req any) (any, error)

// UnaryServerInfo describes the RPC being admitted, mirroring
// grpc.UnaryServerInfo.
type UnaryServerInfo struct {
	// FullMethod is the RPC method name ("/service/Method").
	FullMethod string
}

// UnaryInterceptor is the interceptor signature, shaped so that wrapping
// it into a grpc.UnaryServerInterceptor is a one-line adapter:
//
//	grpc.UnaryInterceptor(func(ctx context.Context, req any,
//	        info *grpc.UnaryServerInfo, h grpc.UnaryHandler) (any, error) {
//	    return icpt(ctx, req, &serve.UnaryServerInfo{FullMethod: info.FullMethod},
//	        serve.UnaryHandler(h))
//	})
type UnaryInterceptor func(ctx context.Context, req any, info *UnaryServerInfo, handler UnaryHandler) (any, error)

// RPCClassifier maps one RPC to its admission channel.
type RPCClassifier func(ctx context.Context, info *UnaryServerInfo, req any) Request

// UnaryInterceptor returns a gRPC-style unary server interceptor running
// this admission layer. classify may be nil, in which case the channel
// peer is the RPC's full method, the class the highest, and the size one
// MTU. The admission verdict is available to the handler through
// FromContext; completion latency (including handler errors — a failed
// RPC still occupied the channel) is fed back as the SLO observation.
// With Deadline configured, the RPC context's deadline is the budget;
// RPCs that cannot finish inside it fail fast with ErrExpired.
func (a *Admission) UnaryInterceptor(classify RPCClassifier) UnaryInterceptor {
	if classify == nil {
		classify = func(_ context.Context, info *UnaryServerInfo, _ any) Request {
			return Request{Peer: info.FullMethod, Class: 0}
		}
	}
	return func(ctx context.Context, req any, info *UnaryServerInfo, handler UnaryHandler) (any, error) {
		var budget time.Duration
		var haveBudget bool
		if a.dl != nil {
			if dl, ok := ctx.Deadline(); ok {
				budget, haveBudget = time.Until(dl), true
			}
		}
		v, c := a.decide(classify(ctx, info, req), budget, haveBudget)
		switch c {
		case causeExpired:
			return nil, ErrExpired
		case causeShed:
			return nil, ErrShed
		case causeRejected, causeDropped:
			return nil, ErrRejected
		}
		a.bo.enter()
		start := a.clock.Now()
		resp, err := handler(context.WithValue(ctx, ctxKey{}, v), req)
		elapsed := (a.clock.Now() - start).Std()
		a.bo.exit()
		a.finish(v, elapsed)
		return resp, err
	}
}
