package wfq

import (
	"testing"
)

// BenchmarkWFQDequeue measures the per-packet cost of one egress port's
// scheduling decision: an enqueue plus a dequeue against a WFQ held at a
// steady backlog across three classes. This is the inner loop every
// switch port runs once per transmitted packet.
func BenchmarkWFQDequeue(b *testing.B) {
	w := NewWFQ([]float64{8, 4, 1}, 0)
	items := make([]testItem, 64*3)
	for i := range items {
		items[i] = testItem{size: 1500, class: i % 3}
	}
	for i := range items {
		w.Enqueue(&items[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := w.Dequeue()
		if it == nil {
			b.Fatal("scheduler drained")
		}
		w.Enqueue(it)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "packets/s")
	}
}
