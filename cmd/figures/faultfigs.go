package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"aequitas"
	"aequitas/internal/stats"
)

func init() {
	register("faults", "graceful degradation: p_admit dips and re-converges across a link flap and a host crash", figFaults)
}

// faultConfig is the shared scenario for the fault figure: moderate load,
// fixed-size RPCs, per-attempt timeouts with a small retry budget, and a
// plan that flaps host 1's access links mid-run and then crashes host 1.
// Recovery has to be observable on a tens-of-milliseconds horizon, which
// drives four deliberate departures from the paper's 99.9p evaluation
// settings: lower SLO percentiles shrink the additive-increase window
// (at 99.9 the controller recovers ~100x slower by design), a larger α
// speeds the walk back up, a higher floor keeps enough traffic admitted
// at the bottom that the controller isn't starved of the measurements it
// needs to climb, and the SLO targets are loose enough that completions
// on a congestion window still collapsed from the outage count as met —
// while a 1ms timeout fed to the controller as an SLO miss still craters
// p_admit during the outage itself.
func faultConfig(o options, system aequitas.System, horizon time.Duration, plan *aequitas.FaultPlan) aequitas.SimConfig {
	return aequitas.SimConfig{
		System: system, Hosts: o.nodes, Seed: o.seed,
		Duration: horizon, Warmup: horizon / 8,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []aequitas.SLO{
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 90},
			{Target: 100 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 80},
		},
		Admission: aequitas.AdmissionParams{Alpha: 0.05, Beta: 0.01, Floor: 0.08},
		Traffic: []aequitas.HostTraffic{{
			AvgLoad: 0.5, BurstLoad: 0.9,
			Classes: []aequitas.TrafficClass{
				{Priority: aequitas.PC, Share: 0.5, FixedBytes: 32 << 10},
				{Priority: aequitas.NC, Share: 0.3, FixedBytes: 32 << 10},
				{Priority: aequitas.BE, Share: 0.2, FixedBytes: 32 << 10},
			},
		}},
		Probes: []aequitas.Probe{
			{Src: 0, Dst: 1, Class: aequitas.High},
			{Src: 0, Dst: 1, Class: aequitas.Medium},
		},
		SampleEvery: horizon / 800,
		Faults:      plan,
		Retry:       aequitas.RetryParams{Timeout: time.Millisecond, MaxRetries: 2},
	}
}

// faultPlanFor builds the figure's canonical plan on a given horizon: a
// 1.5ms blackhole of host 1's access links at 20%, then a host 1
// crash/restart at 60%.
func faultPlanFor(horizon time.Duration) *aequitas.FaultPlan {
	down := 2 * horizon / 10
	crash := 6 * horizon / 10
	return &aequitas.FaultPlan{Events: []aequitas.FaultEvent{
		aequitas.LinkDownAt(down, aequitas.HostLinkTarget(1)),
		aequitas.LinkUpAt(down+1500*time.Microsecond, aequitas.HostLinkTarget(1)),
		aequitas.HostCrashAt(crash, 1),
		aequitas.HostRestartAt(crash+2*time.Millisecond, 1),
	}}
}

// figFaults runs the flap+crash plan under Aequitas and under the
// baseline, prints the time-bucketed admit probability toward the faulted
// host with the fault events marked, the measured p_admit recovery time
// after each outage, and the graceful-degradation scoreboard (goodput
// availability, retries, losses) for both systems.
func figFaults(o options) error {
	horizon := 2 * o.dur
	plan := faultPlanFor(horizon)

	cfgs := []aequitas.SimConfig{
		faultConfig(o, aequitas.SystemAequitas, horizon, plan),
		faultConfig(o, aequitas.SystemBaseline, horizon, plan),
	}
	results, err := runAll(o, cfgs...)
	if err != nil {
		return err
	}
	aeq, base := results[0], results[1]

	// Time-bucketed p_admit toward the faulted host, fault events marked.
	high, med := aeq.Probes[0].AdmitProbability, aeq.Probes[1].AdmitProbability
	const buckets = 24
	w := horizon.Seconds() / buckets
	tb := stats.NewTable("t(ms)", "p_admit QoSh", "p_admit QoSm")
	for i := 0; i < buckets; i++ {
		t0, t1 := float64(i)*w, float64(i+1)*w
		h := high.MeanBetween(t0, t1)
		if math.IsNaN(h) {
			continue // before warmup: probes not yet sampled
		}
		tb.AddRow(fmt.Sprintf("%5.1f%s", 1e3*t0, faultMarks(aeq, t0, t1)),
			h, med.MeanBetween(t0, t1))
	}
	tb.Write(os.Stdout)

	fmt.Println("\np_admit recovery (back within 10% of the pre-fault mean):")
	for _, f := range aeq.Faults {
		if !f.Onset() {
			continue
		}
		for i, r := range f.PAdmitRecoveryS {
			p := aeq.Probes[i]
			state := "not recovered before the next fault"
			if !math.IsNaN(r) {
				state = fmt.Sprintf("recovered in %.1fms", 1e3*r)
			}
			fmt.Printf("  %-8s at %5.1fms, probe %d→%d %-6s: %s\n",
				f.Event, 1e3*f.TimeS, p.Src, p.Dst, p.Class, state)
		}
	}

	fmt.Println("\ngraceful degradation under the same plan:")
	sb := stats.NewTable("system", "goodput", "avail", "timeout", "retried", "failed", "crash-lost", "QoSh in-SLO")
	for i, res := range []*aequitas.Results{aeq, base} {
		sb.AddRow(cfgs[i].System.String(),
			fmt.Sprintf("%.1f%%", 100*res.GoodputFraction),
			fmt.Sprintf("%.1f%%", 100*res.GoodputAvailability),
			res.TimedOut, res.Retried, res.FailedRPCs, res.CrashLostRPCs,
			fmt.Sprintf("%.1f%%", 100*res.SLOMetRunBytesFraction[aequitas.High]))
	}
	sb.Write(os.Stdout)
	fmt.Println("the admission controller sheds the faulted destination's classes during")
	fmt.Println("each outage and walks p_admit back to its pre-fault operating point;")
	fmt.Println("retries and the retry budget bound the damage to in-flight RPCs")
	return nil
}

// faultMarks annotates buckets containing fault events.
func faultMarks(res *aequitas.Results, t0, t1 float64) string {
	out := ""
	for _, f := range res.Faults {
		if t0 <= f.TimeS && f.TimeS < t1 {
			out += " <-" + f.Event
		}
	}
	return out
}
