package aequitas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"aequitas/internal/obs"
)

// obsTestConfig is a small overloaded Aequitas run that exercises every
// lifecycle stage (issues, admission decisions with p_admit < 1,
// downgrades, enqueues, hops, completions).
func obsTestConfig(seed int64) SimConfig {
	return SimConfig{
		System:   SystemAequitas,
		Hosts:    4,
		Seed:     seed,
		Duration: 5 * time.Millisecond,
		Warmup:   time.Millisecond,
		SLOs: []SLO{
			{Target: 15 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.9,
			BurstLoad: 1.4,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.6, FixedBytes: 8 << 10},
				{Priority: BE, Share: 0.4, FixedBytes: 32 << 10},
			},
		}},
	}
}

// TestObsEndToEnd runs one instrumented simulation and checks the
// acceptance criterion: the NDJSON stream is schema-valid and the metrics
// CSV carries queue, admission, and transport time series.
func TestObsEndToEnd(t *testing.T) {
	var ndjson, chrome, metrics bytes.Buffer
	cfg := obsTestConfig(11)
	cfg.Obs = ObsConfig{
		TraceNDJSON: &ndjson,
		TraceChrome: &chrome,
		MetricsCSV:  &metrics,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	n, err := obs.ValidateNDJSON(bytes.NewReader(ndjson.Bytes()))
	if err != nil {
		t.Fatalf("NDJSON invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}

	// Every lifecycle stage except drop (load-dependent) must appear, and
	// per-RPC ordering must hold: issue first, complete last.
	kinds := map[string]int{}
	type bounds struct{ issue, admit, complete float64 }
	rpcs := map[uint64]*bounds{}
	for _, line := range strings.Split(strings.TrimSpace(ndjson.String()), "\n") {
		var e struct {
			TS   float64 `json:"ts_us"`
			Kind string  `json:"kind"`
			RPC  uint64  `json:"rpc"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		kinds[e.Kind]++
		b := rpcs[e.RPC]
		if b == nil {
			b = &bounds{issue: -1, admit: -1, complete: -1}
			rpcs[e.RPC] = b
		}
		switch e.Kind {
		case "issue":
			b.issue = e.TS
		case "admit":
			b.admit = e.TS
		case "complete":
			b.complete = e.TS
		}
	}
	for _, k := range []string{"issue", "admit", "enqueue", "hop", "complete"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events (kinds: %v)", k, kinds)
		}
	}
	checked := 0
	for id, b := range rpcs {
		if b.complete < 0 {
			continue // still in flight at the horizon
		}
		if b.issue < 0 || b.admit < 0 {
			t.Fatalf("rpc %d completed without issue/admit", id)
		}
		if b.issue > b.admit || b.admit > b.complete {
			t.Fatalf("rpc %d lifecycle out of order: issue %.3f admit %.3f complete %.3f",
				id, b.issue, b.admit, b.complete)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no completed RPC lifecycles to check")
	}

	// The Chrome trace is one JSON document with a traceEvents array.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("empty chrome trace")
	}

	// The metrics CSV must expose all three subsystem families.
	header := strings.SplitN(metrics.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "t_s,") {
		t.Fatalf("metrics header = %q", header)
	}
	for _, fam := range []string{"q.", "drop.", "padmit.", "incwin_us.", "cwnd.", "srtt_us."} {
		if !strings.Contains(header, ","+fam) {
			t.Errorf("metrics header missing %q columns: %q", fam, header)
		}
	}
	if rows := strings.Count(metrics.String(), "\n") - 1; rows < 10 {
		t.Errorf("metrics rows = %d, want >= 10", rows)
	}
}

// TestObsDeterministicUnderParallel: per-config observability output is
// byte-identical when a sweep runs on one worker and on GOMAXPROCS
// workers.
func TestObsDeterministicUnderParallel(t *testing.T) {
	const n = 3
	sweep := func(workers int) ([]string, []string) {
		nd := make([]bytes.Buffer, n)
		ms := make([]bytes.Buffer, n)
		_, err := Sweep(n, func(i int) SimConfig {
			cfg := obsTestConfig(int64(21 + i))
			cfg.Obs = ObsConfig{TraceNDJSON: &nd[i], MetricsCSV: &ms[i]}
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		outN := make([]string, n)
		outM := make([]string, n)
		for i := range nd {
			outN[i] = nd[i].String()
			outM[i] = ms[i].String()
		}
		return outN, outM
	}
	serialN, serialM := sweep(1)
	parN, parM := sweep(runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		if serialN[i] != parN[i] {
			t.Errorf("config %d: NDJSON differs between 1 and %d workers", i, runtime.GOMAXPROCS(0))
		}
		if serialM[i] != parM[i] {
			t.Errorf("config %d: metrics CSV differs between 1 and %d workers", i, runtime.GOMAXPROCS(0))
		}
		if serialN[i] == "" || serialM[i] == "" {
			t.Errorf("config %d: empty observability output", i)
		}
	}
}

// TestTailSeries: with ObsConfig.TailSeries the metrics CSV carries
// windowed per-(dst,class) tail columns that pass the strict validator
// (family membership plus per-row quantile monotonicity), and enabling
// them does not perturb the built-in columns.
func TestTailSeries(t *testing.T) {
	var plain, tailed bytes.Buffer
	cfg := obsTestConfig(31)
	cfg.Obs = ObsConfig{MetricsCSV: &plain}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg = obsTestConfig(31)
	cfg.Obs = ObsConfig{MetricsCSV: &tailed, TailSeries: true}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	rows, err := obs.ValidateMetricsCSV(bytes.NewReader(tailed.Bytes()), obs.MetricFamilies)
	if err != nil {
		t.Fatalf("tail metrics CSV invalid: %v", err)
	}
	if rows < 10 {
		t.Errorf("metrics rows = %d, want >= 10", rows)
	}
	header := strings.SplitN(tailed.String(), "\n", 2)[0]
	for _, suffix := range []string{".n", ".p50_us", ".p90_us", ".p99_us", ".p999_us"} {
		if !strings.Contains(header, ",tail.d") || !strings.Contains(header, suffix) {
			t.Errorf("header missing tail %s columns: %q", suffix, header)
		}
	}

	// The tail sampler registers last, so every built-in column keeps its
	// position and values; the plain run's columns must be a prefix of the
	// tailed run's.
	plainHeader := strings.SplitN(plain.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, plainHeader) {
		t.Errorf("tail columns reordered built-in columns:\nplain:  %q\ntailed: %q",
			plainHeader, header)
	}

	// Window counts across the whole run cover at least the completed RPCs
	// (tails observe from t=0, completions are window-gated, so >= holds).
	var sumN float64
	cols := strings.Split(header, ",")
	lines := strings.Split(strings.TrimSpace(tailed.String()), "\n")[1:]
	for _, line := range lines {
		fields := strings.Split(line, ",")
		for i, c := range cols {
			if strings.HasPrefix(c, "tail.") && strings.HasSuffix(c, ".n") && i < len(fields) && fields[i] != "" {
				var v float64
				if _, err := fmt.Sscanf(fields[i], "%g", &v); err == nil {
					sumN += v
				}
			}
		}
	}
	if sumN == 0 {
		t.Error("tail windows observed no completions")
	}
}

// TestTailSeriesDeterministicAcrossWorkers pins the acceptance criterion:
// the windowed-percentile CSV is byte-identical for a fixed SimConfig at
// 1, 4, and 8 sweep workers.
func TestTailSeriesDeterministicAcrossWorkers(t *testing.T) {
	const n = 3
	sweep := func(workers int) []string {
		ms := make([]bytes.Buffer, n)
		_, err := Sweep(n, func(i int) SimConfig {
			cfg := obsTestConfig(int64(41 + i))
			cfg.Obs = ObsConfig{MetricsCSV: &ms[i], TailSeries: true}
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, n)
		for i := range ms {
			out[i] = ms[i].String()
		}
		return out
	}
	base := sweep(1)
	for _, workers := range []int{4, 8} {
		got := sweep(workers)
		for i := 0; i < n; i++ {
			if got[i] != base[i] {
				t.Errorf("config %d: tail metrics CSV differs between 1 and %d workers", i, workers)
			}
			if base[i] == "" || !strings.Contains(base[i], "tail.d") {
				t.Errorf("config %d: no tail columns in output", i)
			}
		}
	}
}

// TestObsSchemaGolden pins the NDJSON schema: the exact per-kind required
// fields. Extending the schema is fine (update the golden); renaming or
// dropping fields breaks downstream consumers and must be deliberate.
func TestObsSchemaGolden(t *testing.T) {
	golden := map[string][]string{
		"issue":    {"src", "dst", "prio", "class", "bytes"},
		"admit":    {"src", "dst", "class", "decision", "p_admit"},
		"enqueue":  {"src", "dst", "class", "bytes"},
		"hop":      {"link", "class", "bytes", "resid_us", "qbytes"},
		"drop":     {"link", "class", "bytes"},
		"complete": {"src", "dst", "class", "bytes", "rnl_us"},
	}
	for kind, want := range golden {
		got := obs.SchemaFields(kind)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("schema for %q = %v, want %v", kind, got, want)
		}
	}
	if obs.SchemaFields("nope") != nil {
		t.Error("unknown kind has schema fields")
	}
}
