package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"aequitas/internal/obs/flight"
	"aequitas/internal/stats"
)

// ReportSchema versions the obsreport JSON document.
const ReportSchema = "aequitas.obsreport/v1"

// Report joins one run's observability artifacts — NDJSON lifecycle
// trace, wide-format metrics CSV, per-RPC attribution CSV, and
// flight-recorder dump stream — into a single summarised document.
// Sections are nil when the corresponding artifact was not provided.
// cmd/obsreport builds, renders, and diffs these.
type Report struct {
	Schema      string          `json:"schema"`
	Label       string          `json:"label,omitempty"`
	Trace       *TraceSummary   `json:"trace,omitempty"`
	Metrics     *MetricsSummary `json:"metrics,omitempty"`
	Attribution *AttrSummary    `json:"attribution,omitempty"`
	Flight      *flight.Summary `json:"flight,omitempty"`
}

// QuantilesUS summarises a latency distribution in microseconds. Mean
// and Max are exact; quantiles come from the log-linear histogram (≤1%
// relative error).
type QuantilesUS struct {
	N      int64   `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

func quantilesFromHist(h *stats.Hist) QuantilesUS {
	return QuantilesUS{
		N:      h.N(),
		MeanUS: h.Mean(),
		P50US:  h.Quantile(0.50),
		P90US:  h.Quantile(0.90),
		P99US:  h.Quantile(0.99),
		P999US: h.Quantile(0.999),
		MaxUS:  h.Max(),
	}
}

// ok reports whether the quantile summary is internally consistent.
func (q *QuantilesUS) ok() bool {
	if q.N == 0 {
		return true
	}
	return q.N > 0 && q.P50US <= q.P90US && q.P90US <= q.P99US &&
		q.P99US <= q.P999US && q.P999US <= q.MaxUS
}

// TraceSummary condenses an NDJSON lifecycle trace: event counts by
// kind, the trace horizon, and completed-RPC RNL distributions overall
// and per run-class.
type TraceSummary struct {
	Events     int64                  `json:"events"`
	Kinds      map[string]int64       `json:"kinds"`
	EndUS      float64                `json:"end_us"`
	RNL        QuantilesUS            `json:"rnl_us"`
	RNLByClass map[string]QuantilesUS `json:"rnl_us_by_class,omitempty"`
}

// MetricsSummary condenses a metrics CSV: shape, per-family column
// counts, and a per-column series summary.
type MetricsSummary struct {
	Rows     int             `json:"rows"`
	Columns  int             `json:"columns"`
	StartS   float64         `json:"start_s"`
	EndS     float64         `json:"end_s"`
	Families map[string]int  `json:"family_columns,omitempty"`
	Series   []SeriesSummary `json:"series,omitempty"`
}

// SeriesSummary is one metric column over the run: sampled cells, mean,
// extremes, and the final sample.
type SeriesSummary struct {
	Name string  `json:"name"`
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Last float64 `json:"last"`
}

// AttrSummary condenses a per-RPC attribution CSV into per-class mean
// component breakdowns.
type AttrSummary struct {
	N       int64              `json:"n"`
	Classes []AttrClassSummary `json:"classes"`
}

// AttrClassSummary is one run-class's mean latency decomposition.
type AttrClassSummary struct {
	Class  string             `json:"class"`
	N      int64              `json:"n"`
	MeanUS map[string]float64 `json:"mean_us"`
}

// BuildReport assembles a report from whichever artifact readers are
// non-nil. Each artifact is validated while being summarised; the first
// malformed line fails the build.
func BuildReport(label string, trace, metrics, attr, flightDump io.Reader) (*Report, error) {
	rep := &Report{Schema: ReportSchema, Label: label}
	if trace != nil {
		ts, err := summarizeTrace(trace)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		rep.Trace = ts
	}
	if metrics != nil {
		ms, err := summarizeMetrics(metrics)
		if err != nil {
			return nil, fmt.Errorf("metrics: %w", err)
		}
		rep.Metrics = ms
	}
	if attr != nil {
		as, err := summarizeAttr(attr)
		if err != nil {
			return nil, fmt.Errorf("attribution: %w", err)
		}
		rep.Attribution = as
	}
	if flightDump != nil {
		fs, err := flight.Summarize(flightDump)
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		rep.Flight = fs
	}
	return rep, nil
}

// summarizeTrace scans an NDJSON lifecycle trace.
func summarizeTrace(r io.Reader) (*TraceSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	ts := &TraceSummary{Kinds: make(map[string]int64)}
	all := stats.NewHist()
	byClass := make(map[string]*stats.Hist)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e struct {
			TSUS  float64 `json:"ts_us"`
			Kind  string  `json:"kind"`
			Class *int    `json:"class"`
			RNLUS float64 `json:"rnl_us"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("line %d: no kind", lineNo)
		}
		ts.Events++
		ts.Kinds[e.Kind]++
		if e.TSUS > ts.EndUS {
			ts.EndUS = e.TSUS
		}
		if e.Kind == "complete" && e.RNLUS > 0 {
			all.Record(e.RNLUS)
			if e.Class != nil {
				key := "q" + strconv.Itoa(*e.Class)
				h, ok := byClass[key]
				if !ok {
					h = stats.NewHist()
					byClass[key] = h
				}
				h.Record(e.RNLUS)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ts.RNL = quantilesFromHist(all)
	if len(byClass) > 0 {
		ts.RNLByClass = make(map[string]QuantilesUS, len(byClass))
		for k, h := range byClass {
			ts.RNLByClass[k] = quantilesFromHist(h)
		}
	}
	return ts, nil
}

// summarizeMetrics scans a wide-format metrics CSV.
func summarizeMetrics(r io.Reader) (*MetricsSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty (no header)")
	}
	header := strings.Split(sc.Text(), ",")
	if header[0] != "t_s" {
		return nil, fmt.Errorf("first column %q, want t_s", header[0])
	}
	cols := header[1:]
	ms := &MetricsSummary{Columns: len(cols), Families: make(map[string]int)}
	for _, c := range cols {
		for _, fam := range MetricFamilies {
			if strings.HasPrefix(c, fam) {
				ms.Families[strings.TrimSuffix(fam, ".")]++
				break
			}
		}
	}
	series := make([]SeriesSummary, len(cols))
	for i, c := range cols {
		series[i] = SeriesSummary{Name: c, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	sums := make([]float64, len(cols))
	first := true
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("line %d: %d fields, header has %d", lineNo, len(fields), len(header))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad t_s %q", lineNo, fields[0])
		}
		if first {
			ms.StartS = t
			first = false
		}
		ms.EndS = t
		for i, cell := range fields[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: column %q: bad value %q", lineNo, cols[i], cell)
			}
			s := &series[i]
			s.N++
			sums[i] += v
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			s.Last = v
		}
		ms.Rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range series {
		if series[i].N > 0 {
			series[i].Mean = sums[i] / float64(series[i].N)
			ms.Series = append(ms.Series, series[i])
		}
	}
	return ms, nil
}

// attrComponents are the attribution CSV's per-RPC latency components,
// in schema order (see AttrCSVHeader).
var attrComponents = []string{"admit_us", "sender_us", "transport_us", "pacing_us", "nic_us", "switch_us", "wire_us", "rnl_us"}

// summarizeAttr scans a per-RPC attribution CSV.
func summarizeAttr(r io.Reader) (*AttrSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty (no header)")
	}
	header := strings.Split(sc.Text(), ",")
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	for _, need := range append([]string{"class"}, attrComponents...) {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("header missing column %q", need)
		}
	}
	type acc struct {
		n    int64
		sums map[string]float64
	}
	byClass := make(map[string]*acc)
	as := &AttrSummary{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("line %d: %d fields, header has %d", lineNo, len(fields), len(header))
		}
		key := "q" + fields[col["class"]]
		a, ok := byClass[key]
		if !ok {
			a = &acc{sums: make(map[string]float64)}
			byClass[key] = a
		}
		a.n++
		as.N++
		for _, comp := range attrComponents {
			v, err := strconv.ParseFloat(fields[col[comp]], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: column %q: bad value %q", lineNo, comp, fields[col[comp]])
			}
			a.sums[comp] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(byClass))
	for k := range byClass {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := byClass[k]
		means := make(map[string]float64, len(a.sums))
		for comp, sum := range a.sums {
			means[comp] = sum / float64(a.n)
		}
		as.Classes = append(as.Classes, AttrClassSummary{Class: k, N: a.n, MeanUS: means})
	}
	return as, nil
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteMarkdown renders the report as a human-readable markdown
// document.
func (rep *Report) WriteMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	title := rep.Label
	if title == "" {
		title = "run"
	}
	fmt.Fprintf(bw, "# Run report: %s\n", title)
	if t := rep.Trace; t != nil {
		fmt.Fprintf(bw, "\n## Lifecycle trace\n\n")
		fmt.Fprintf(bw, "%d events over %.3f ms simulated.\n\n", t.Events, t.EndUS/1e3)
		fmt.Fprintf(bw, "| kind | events |\n|---|---:|\n")
		for _, k := range sortedKeys(t.Kinds) {
			fmt.Fprintf(bw, "| %s | %d |\n", k, t.Kinds[k])
		}
		fmt.Fprintf(bw, "\n### RNL (us)\n\n")
		fmt.Fprintf(bw, "| class | n | mean | p50 | p90 | p99 | p99.9 | max |\n|---|---:|---:|---:|---:|---:|---:|---:|\n")
		writeQuantRow(bw, "all", t.RNL)
		for _, k := range sortedKeys(t.RNLByClass) {
			writeQuantRow(bw, k, t.RNLByClass[k])
		}
	}
	if m := rep.Metrics; m != nil {
		fmt.Fprintf(bw, "\n## Metrics time series\n\n")
		fmt.Fprintf(bw, "%d rows x %d columns, t = %.6f..%.6f s.\n\n", m.Rows, m.Columns, m.StartS, m.EndS)
		if len(m.Families) > 0 {
			fmt.Fprintf(bw, "| family | columns |\n|---|---:|\n")
			for _, k := range sortedKeys(m.Families) {
				fmt.Fprintf(bw, "| %s | %d |\n", k, m.Families[k])
			}
		}
	}
	if f := rep.Flight; f != nil {
		fmt.Fprintf(bw, "\n## Flight recorder\n\n")
		fmt.Fprintf(bw, "%d dumps, %d records (%d admits sampled out); min p_admit %.3g, max observed latency %.2f us.\n\n",
			len(f.Dumps), f.Records, f.SampledOut, f.MinPAdmit, f.MaxLatUS)
		fmt.Fprintf(bw, "| trigger | detail | t (us) | records |\n|---|---|---:|---:|\n")
		for _, d := range f.Dumps {
			fmt.Fprintf(bw, "| %s | %s | %.1f | %d |\n", d.Trigger, d.Detail, d.TSUS, d.Records)
		}
		if len(f.ByVerdict) > 0 {
			fmt.Fprintf(bw, "\n| verdict | records |\n|---|---:|\n")
			for _, k := range sortedKeys(f.ByVerdict) {
				fmt.Fprintf(bw, "| %s | %d |\n", k, f.ByVerdict[k])
			}
		}
	}
	if a := rep.Attribution; a != nil {
		fmt.Fprintf(bw, "\n## Latency attribution (mean us per RPC)\n\n")
		fmt.Fprintf(bw, "%d attributed RPCs.\n\n", a.N)
		fmt.Fprintf(bw, "| class | n |")
		for _, comp := range attrComponents {
			fmt.Fprintf(bw, " %s |", strings.TrimSuffix(comp, "_us"))
		}
		fmt.Fprintf(bw, "\n|---|---:|")
		for range attrComponents {
			fmt.Fprintf(bw, "---:|")
		}
		fmt.Fprintf(bw, "\n")
		for _, c := range a.Classes {
			fmt.Fprintf(bw, "| %s | %d |", c.Class, c.N)
			for _, comp := range attrComponents {
				fmt.Fprintf(bw, " %.2f |", c.MeanUS[comp])
			}
			fmt.Fprintf(bw, "\n")
		}
	}
	return bw.Flush()
}

func writeQuantRow(w io.Writer, name string, q QuantilesUS) {
	fmt.Fprintf(w, "| %s | %d | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
		name, q.N, q.MeanUS, q.P50US, q.P90US, q.P99US, q.P999US, q.MaxUS)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ValidateReportJSON checks an obsreport JSON document: schema tag,
// at least one section, and internal consistency (quantile ordering,
// series min ≤ mean ≤ max, non-negative counts). Returns the parsed
// report.
func ValidateReportJSON(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: report: %v", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: report: schema %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Trace == nil && rep.Metrics == nil && rep.Attribution == nil && rep.Flight == nil {
		return nil, fmt.Errorf("obs: report: no sections")
	}
	if t := rep.Trace; t != nil {
		if t.Events < 0 {
			return nil, fmt.Errorf("obs: report: trace.events negative")
		}
		var kindSum int64
		for k, n := range t.Kinds {
			if n < 0 {
				return nil, fmt.Errorf("obs: report: trace.kinds[%s] negative", k)
			}
			kindSum += n
		}
		if kindSum != t.Events {
			return nil, fmt.Errorf("obs: report: trace kinds sum %d != events %d", kindSum, t.Events)
		}
		if !t.RNL.ok() {
			return nil, fmt.Errorf("obs: report: trace.rnl_us quantiles not monotone")
		}
		for k, q := range t.RNLByClass {
			if !q.ok() {
				return nil, fmt.Errorf("obs: report: trace.rnl_us_by_class[%s] quantiles not monotone", k)
			}
		}
	}
	if m := rep.Metrics; m != nil {
		if m.Rows < 0 || m.Columns < 0 {
			return nil, fmt.Errorf("obs: report: metrics shape negative")
		}
		if m.EndS < m.StartS {
			return nil, fmt.Errorf("obs: report: metrics end %g before start %g", m.EndS, m.StartS)
		}
		for _, s := range m.Series {
			if s.N <= 0 {
				return nil, fmt.Errorf("obs: report: series %q has no samples", s.Name)
			}
			// The mean is a float accumulation (sum/n), so allow it to
			// overshoot the range by a few ulps.
			slack := 1e-9 * math.Max(math.Abs(s.Min), math.Abs(s.Max))
			if s.Min > s.Max || s.Mean < s.Min-slack || s.Mean > s.Max+slack {
				return nil, fmt.Errorf("obs: report: series %q min/mean/max inconsistent (%g/%g/%g)",
					s.Name, s.Min, s.Mean, s.Max)
			}
		}
	}
	if a := rep.Attribution; a != nil {
		var n int64
		for _, c := range a.Classes {
			if c.N < 0 {
				return nil, fmt.Errorf("obs: report: attribution class %s count negative", c.Class)
			}
			n += c.N
		}
		if n != a.N {
			return nil, fmt.Errorf("obs: report: attribution class counts sum %d != total %d", n, a.N)
		}
	}
	if f := rep.Flight; f != nil {
		if f.Schema != flight.Schema {
			return nil, fmt.Errorf("obs: report: flight schema %q, want %q", f.Schema, flight.Schema)
		}
		n := 0
		for _, d := range f.Dumps {
			if d.Records < 0 {
				return nil, fmt.Errorf("obs: report: flight dump %q record count negative", d.Trigger)
			}
			n += d.Records
		}
		if n != f.Records {
			return nil, fmt.Errorf("obs: report: flight dump records sum %d != total %d", n, f.Records)
		}
		if f.MinPAdmit < 0 || f.MinPAdmit > 1 {
			return nil, fmt.Errorf("obs: report: flight min_p_admit %g out of [0, 1]", f.MinPAdmit)
		}
	}
	return &rep, nil
}

// DiffRow is one metric compared across two reports.
type DiffRow struct {
	Metric string   `json:"metric"`
	A      *float64 `json:"a,omitempty"` // nil when the metric is absent in run A
	B      *float64 `json:"b,omitempty"` // nil when the metric is absent in run B
	Delta  float64  `json:"delta"`
	Pct    float64  `json:"pct"` // 100·(B-A)/|A|; 1e9 = one-sided or growth from zero
}

// ReportDiff is the per-metric comparison of two reports.
type ReportDiff struct {
	Schema string    `json:"schema"`
	LabelA string    `json:"label_a"`
	LabelB string    `json:"label_b"`
	Rows   []DiffRow `json:"rows"`
}

// DiffSchema versions the diff JSON document.
const DiffSchema = "aequitas.obsreport-diff/v1"

// DiffReports compares every scalar metric present in both reports (and
// flags metrics present in only one with the other side NaN-free zero
// and an infinite pct, clamped for JSON). Rows are ordered by descending
// |pct| so the biggest movements lead.
func DiffReports(a, b *Report) *ReportDiff {
	av, ak := flattenReport(a)
	bv, _ := flattenReport(b)
	d := &ReportDiff{Schema: DiffSchema, LabelA: a.Label, LabelB: b.Label}
	seen := make(map[string]bool, len(ak))
	for _, k := range ak {
		seen[k] = true
		x := av[k]
		y, ok := bv[k]
		if !ok {
			y = math.NaN()
		}
		d.Rows = append(d.Rows, diffRow(k, x, y))
	}
	// Metrics only in b, in b's order.
	_, bk := flattenReport(b)
	for _, k := range bk {
		if !seen[k] {
			d.Rows = append(d.Rows, diffRow(k, math.NaN(), bv[k]))
		}
	}
	// Genuine movements first by relative size; one-sided/from-zero
	// sentinel rows after them, in flatten order.
	sort.SliceStable(d.Rows, func(i, j int) bool {
		si, sj := d.Rows[i].Pct >= 1e9, d.Rows[j].Pct >= 1e9
		if si != sj {
			return sj
		}
		if si {
			return false
		}
		return math.Abs(d.Rows[i].Pct) > math.Abs(d.Rows[j].Pct)
	})
	return d
}

// diffRow compares one metric; NaN on either side means the metric is
// absent from that run (encoded as a nil pointer, keeping the row
// JSON-marshalable).
func diffRow(k string, a, b float64) DiffRow {
	row := DiffRow{Metric: k}
	if !math.IsNaN(a) {
		row.A = &a
	}
	if !math.IsNaN(b) {
		row.B = &b
	}
	switch {
	case row.A == nil || row.B == nil:
		row.Pct = 1e9
	case a == 0 && b == 0:
		row.Pct = 0
	case a == 0:
		row.Delta = b
		row.Pct = 1e9
	default:
		row.Delta = b - a
		row.Pct = 100 * (b - a) / math.Abs(a)
	}
	return row
}

// flattenReport lists every scalar metric of a report as name → value,
// plus the deterministic name order.
func flattenReport(rep *Report) (map[string]float64, []string) {
	vals := make(map[string]float64)
	var order []string
	put := func(name string, v float64) {
		if math.IsNaN(v) {
			return
		}
		if _, dup := vals[name]; !dup {
			order = append(order, name)
		}
		vals[name] = v
	}
	if t := rep.Trace; t != nil {
		put("trace.events", float64(t.Events))
		for _, k := range sortedKeys(t.Kinds) {
			put("trace.kinds."+k, float64(t.Kinds[k]))
		}
		putQuant := func(prefix string, q QuantilesUS) {
			put(prefix+".n", float64(q.N))
			put(prefix+".mean_us", q.MeanUS)
			put(prefix+".p50_us", q.P50US)
			put(prefix+".p90_us", q.P90US)
			put(prefix+".p99_us", q.P99US)
			put(prefix+".p999_us", q.P999US)
			put(prefix+".max_us", q.MaxUS)
		}
		putQuant("trace.rnl", t.RNL)
		for _, k := range sortedKeys(t.RNLByClass) {
			putQuant("trace.rnl."+k, t.RNLByClass[k])
		}
	}
	if m := rep.Metrics; m != nil {
		put("metrics.rows", float64(m.Rows))
		put("metrics.columns", float64(m.Columns))
		for _, s := range m.Series {
			put("metrics."+s.Name+".mean", s.Mean)
			put("metrics."+s.Name+".max", s.Max)
		}
	}
	if a := rep.Attribution; a != nil {
		put("attr.n", float64(a.N))
		for _, c := range a.Classes {
			for _, comp := range attrComponents {
				if v, ok := c.MeanUS[comp]; ok {
					put("attr."+c.Class+"."+comp+".mean", v)
				}
			}
		}
	}
	if f := rep.Flight; f != nil {
		put("flight.dumps", float64(len(f.Dumps)))
		put("flight.records", float64(f.Records))
		put("flight.sampled_out", float64(f.SampledOut))
		put("flight.min_p_admit", f.MinPAdmit)
		put("flight.max_lat_us", f.MaxLatUS)
		for _, k := range sortedKeys(f.ByVerdict) {
			put("flight.verdict."+k, float64(f.ByVerdict[k]))
		}
	}
	return vals, order
}

// WriteMarkdown renders the diff, largest relative movements first,
// capped at maxRows (0 = all) with a note about omitted rows.
func (d *ReportDiff) WriteMarkdown(w io.Writer, maxRows int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Run diff: %s vs %s\n\n", orUnnamed(d.LabelA), orUnnamed(d.LabelB))
	fmt.Fprintf(bw, "| metric | %s | %s | delta | pct |\n|---|---:|---:|---:|---:|\n",
		orUnnamed(d.LabelA), orUnnamed(d.LabelB))
	rows := d.Rows
	omitted := 0
	if maxRows > 0 && len(rows) > maxRows {
		omitted = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	side := func(p *float64) string {
		if p == nil {
			return "—"
		}
		return fmt.Sprintf("%.4g", *p)
	}
	for _, r := range rows {
		pct := fmt.Sprintf("%+.1f%%", r.Pct)
		if r.Pct >= 1e9 {
			pct = "new/only"
		}
		fmt.Fprintf(bw, "| %s | %s | %s | %+.4g | %s |\n", r.Metric, side(r.A), side(r.B), r.Delta, pct)
	}
	if omitted > 0 {
		fmt.Fprintf(bw, "\n%d smaller-movement rows omitted (use -all for every metric).\n", omitted)
	}
	return bw.Flush()
}

// WriteJSON writes the diff as indented JSON.
func (d *ReportDiff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

func orUnnamed(s string) string {
	if s == "" {
		return "(unnamed)"
	}
	return s
}
