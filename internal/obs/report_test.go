package obs

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// reportTrace builds a tiny but schema-shaped NDJSON trace: n issued
// RPCs, each admitted and completed with a class-dependent RNL.
func reportTrace(n int) string {
	var b strings.Builder
	ts := 0.0
	for i := 0; i < n; i++ {
		class := i % 2
		rnl := 10.0 + float64(i)
		if class == 1 {
			rnl *= 20
		}
		fmt.Fprintf(&b, `{"ts_us":%.1f,"kind":"issue","rpc":%d,"src":0,"dst":1,"prio":"PC","class":%d,"bytes":4096}`+"\n", ts, i, class)
		ts += 0.5
		fmt.Fprintf(&b, `{"ts_us":%.1f,"kind":"admit","rpc":%d,"src":0,"dst":1,"class":%d,"decision":"admit","p_admit":1}`+"\n", ts, i, class)
		ts += rnl
		fmt.Fprintf(&b, `{"ts_us":%.1f,"kind":"complete","rpc":%d,"src":0,"dst":1,"class":%d,"bytes":4096,"rnl_us":%.1f}`+"\n", ts, i, class, rnl)
	}
	return b.String()
}

const reportMetricsCSV = "t_s,q.sw0.q0,tail.d1.q0.p50_us,tail.d1.q0.p99_us\n" +
	"0.000100000,2,15,30\n" +
	"0.000200000,3,,\n" +
	"0.000300000,1,12,40\n"

const reportAttrCSV = "rpc,src,dst,class,issue_s,admit_us,sender_us,transport_us,pacing_us,nic_us,switch_us,wire_us,rnl_us\n" +
	"1,0,1,0,0.001,1,2,3,0,0.5,1.5,2,10\n" +
	"2,0,1,0,0.002,2,3,4,0,0.5,2.5,2,14\n" +
	"3,0,1,1,0.003,0,1,9,1,0.5,6.5,2,20\n"

const reportFlightNDJSON = `{"schema":"aequitas.flight/v1","trigger":"manual","detail":"unit","label":"unit","ts_us":100.000,"records":2,"offered":3,"sampled_out":1,"dropped_frozen":0}
{"seq":0,"ts_us":1.000,"kind":"decision","verdict":"admit","src":0,"peer":1,"req":0,"class":0,"p_admit":0.9,"size_mtus":1}
{"seq":1,"ts_us":2.000,"kind":"complete","verdict":"slo_miss","src":0,"peer":1,"req":0,"class":0,"p_admit":0.8,"size_mtus":1,"lat_us":42.5}
`

// TestBuildReportEndToEnd: all four sections populated, internally
// consistent, and round-trippable through JSON + the validator, with a
// renderable markdown form.
func TestBuildReportEndToEnd(t *testing.T) {
	rep, err := BuildReport("unit",
		strings.NewReader(reportTrace(40)),
		strings.NewReader(reportMetricsCSV),
		strings.NewReader(reportAttrCSV),
		strings.NewReader(reportFlightNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Metrics == nil || rep.Attribution == nil || rep.Flight == nil {
		t.Fatal("missing sections")
	}
	if rep.Flight.Records != 2 || rep.Flight.ByVerdict["slo_miss"] != 1 || rep.Flight.MinPAdmit != 0.8 {
		t.Errorf("flight summary = %+v", rep.Flight)
	}
	if rep.Trace.Events != 120 || rep.Trace.Kinds["complete"] != 40 {
		t.Errorf("trace events/completes = %d/%d", rep.Trace.Events, rep.Trace.Kinds["complete"])
	}
	if rep.Trace.RNL.N != 40 || len(rep.Trace.RNLByClass) != 2 {
		t.Errorf("rnl n = %d, classes = %d", rep.Trace.RNL.N, len(rep.Trace.RNLByClass))
	}
	if q0, q1 := rep.Trace.RNLByClass["q0"], rep.Trace.RNLByClass["q1"]; q0.MeanUS >= q1.MeanUS {
		t.Errorf("class means not separated: q0 %v, q1 %v", q0.MeanUS, q1.MeanUS)
	}
	if rep.Metrics.Rows != 3 || rep.Metrics.Columns != 3 {
		t.Errorf("metrics shape = %dx%d", rep.Metrics.Rows, rep.Metrics.Columns)
	}
	if rep.Metrics.Families["tail"] != 2 || rep.Metrics.Families["q"] != 1 {
		t.Errorf("families = %v", rep.Metrics.Families)
	}
	var tailSeries *SeriesSummary
	for i := range rep.Metrics.Series {
		if rep.Metrics.Series[i].Name == "tail.d1.q0.p50_us" {
			tailSeries = &rep.Metrics.Series[i]
		}
	}
	if tailSeries == nil || tailSeries.N != 2 || tailSeries.Last != 12 || tailSeries.Max != 15 {
		t.Errorf("tail series summary = %+v", tailSeries)
	}
	if rep.Attribution.N != 3 || len(rep.Attribution.Classes) != 2 {
		t.Errorf("attribution = %+v", rep.Attribution)
	}
	if m := rep.Attribution.Classes[0].MeanUS["admit_us"]; m != 1.5 {
		t.Errorf("q0 mean admit = %v, want 1.5", m)
	}

	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := ValidateReportJSON(strings.NewReader(js.String()))
	if err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if back.Trace.Events != rep.Trace.Events {
		t.Error("JSON round trip lost data")
	}

	var md strings.Builder
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Run report: unit", "## Lifecycle trace", "## Metrics time series", "## Latency attribution", "## Flight recorder", "| slo_miss | 1 |", "| q1 |"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

// TestValidateReportJSONRejects: schema tag, kind-sum, quantile
// monotonicity, and series-consistency defects are all caught.
func TestValidateReportJSONRejects(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema":"nope/v1","trace":{"events":0,"kinds":{},"end_us":0,"rnl_us":{"n":0}}}`,
		"no sections":  `{"schema":"aequitas.obsreport/v1"}`,
		"kind sum":     `{"schema":"aequitas.obsreport/v1","trace":{"events":5,"kinds":{"issue":1},"end_us":1,"rnl_us":{"n":0}}}`,
		"quantiles": `{"schema":"aequitas.obsreport/v1","trace":{"events":1,"kinds":{"complete":1},"end_us":1,` +
			`"rnl_us":{"n":1,"mean_us":5,"p50_us":9,"p90_us":5,"p99_us":9,"p999_us":9,"max_us":9}}}`,
		"series": `{"schema":"aequitas.obsreport/v1","metrics":{"rows":1,"columns":1,"start_s":0,"end_s":1,` +
			`"series":[{"name":"x","n":1,"mean":9,"min":1,"max":2,"last":1}]}}`,
		"attr sum": `{"schema":"aequitas.obsreport/v1","attribution":{"n":5,"classes":[{"class":"q0","n":2,"mean_us":{}}]}}`,
		"flight sum": `{"schema":"aequitas.obsreport/v1","flight":{"schema":"aequitas.flight/v1",` +
			`"dumps":[{"trigger":"final","ts_us":1,"records":2}],"records":5,"by_verdict":{},"min_p_admit":1,"max_lat_us":0}}`,
		"flight p": `{"schema":"aequitas.obsreport/v1","flight":{"schema":"aequitas.flight/v1",` +
			`"dumps":[],"records":0,"by_verdict":{},"min_p_admit":1.5,"max_lat_us":0}}`,
	}
	for name, doc := range cases {
		if _, err := ValidateReportJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDiffReports: identical reports diff to all-zero pct; a perturbed
// metric surfaces first with the right delta; one-sided metrics are
// marked rather than dropped.
func TestDiffReports(t *testing.T) {
	build := func(n int, metrics string) *Report {
		rep, err := BuildReport(fmt.Sprintf("run%d", n),
			strings.NewReader(reportTrace(40)), strings.NewReader(metrics), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := build(1, reportMetricsCSV)
	same := DiffReports(a, build(2, reportMetricsCSV))
	for _, r := range same.Rows {
		if r.Pct != 0 {
			t.Errorf("identical inputs: %s pct = %v", r.Metric, r.Pct)
		}
	}

	perturbed := strings.Replace(reportMetricsCSV, "0.000300000,1,12,40", "0.000300000,1,12,80", 1)
	extra := strings.Replace(perturbed, ",q.sw0.q0,", ",q.sw9.q0,", 1)
	d := DiffReports(a, build(3, extra))
	if len(d.Rows) == 0 {
		t.Fatal("no diff rows")
	}
	byName := map[string]DiffRow{}
	for _, r := range d.Rows {
		byName[r.Metric] = r
	}
	p99 := byName["metrics.tail.d1.q0.p99_us.max"]
	if p99.A == nil || *p99.A != 40 || p99.B == nil || *p99.B != 80 || p99.Delta != 40 || p99.Pct != 100 {
		t.Errorf("perturbed metric row = %+v", p99)
	}
	// Genuine movements lead; one-sided sentinel rows trail.
	if d.Rows[0].Pct >= 1e9 || math.Abs(d.Rows[0].Pct) < math.Abs(p99.Pct) {
		t.Errorf("rows not sorted by movement: first = %+v", d.Rows[0])
	}
	var js strings.Builder
	if err := d.WriteJSON(&js); err != nil {
		t.Fatalf("diff with one-sided metrics not JSON-marshalable: %v", err)
	}
	if byName["metrics.q.sw9.q0.mean"].Pct != 1e9 {
		t.Errorf("b-only metric not flagged: %+v", byName["metrics.q.sw9.q0.mean"])
	}
	if byName["metrics.q.sw0.q0.mean"].Pct != 1e9 {
		t.Errorf("a-only metric not flagged: %+v", byName["metrics.q.sw0.q0.mean"])
	}

	var md strings.Builder
	if err := d.WriteMarkdown(&md, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "# Run diff: run1 vs run3") {
		t.Errorf("diff markdown header wrong:\n%s", md.String())
	}
}
