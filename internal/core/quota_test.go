package core

import (
	"sync"
	"testing"
	"time"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

func newServer() *QuotaServer {
	return NewQuotaServer(map[qos.Class]float64{
		qos.High:   10e9 / 8, // 10 Gbps in bytes/s
		qos.Medium: 20e9 / 8,
	})
}

func TestQuotaGrantAndCapacity(t *testing.T) {
	q := newServer()
	if err := q.Grant("tenant-a", qos.High, 5e8); err != nil {
		t.Fatal(err)
	}
	if err := q.Grant("tenant-b", qos.High, 7e8); err != nil {
		t.Fatal(err)
	}
	// Capacity is 1.25e9 B/s; 1.2e9 granted; 1e8 more must fail.
	if err := q.Grant("tenant-c", qos.High, 1e8); err == nil {
		t.Error("over-grant accepted")
	}
	if got := q.GrantedRate("tenant-a", qos.High); got != 5e8 {
		t.Errorf("GrantedRate = %v", got)
	}
	if got := q.Remaining(qos.High); got != 10e9/8-1.2e9 {
		t.Errorf("Remaining = %v", got)
	}
	// Unknown class rejected outright.
	if err := q.Grant("tenant-a", qos.Low, 1); err == nil {
		t.Error("grant on unprovisioned class accepted")
	}
	if err := q.Grant("tenant-a", qos.High, -1); err == nil {
		t.Error("negative grant accepted")
	}
}

func TestQuotaRevoke(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	q.Revoke("a", qos.High, 4e8)
	if got := q.GrantedRate("a", qos.High); got != 6e8 {
		t.Errorf("after revoke: %v", got)
	}
	// Revoking more than granted clamps to zero.
	q.Revoke("a", qos.High, 1e12)
	if got := q.GrantedRate("a", qos.High); got != 0 {
		t.Errorf("after over-revoke: %v", got)
	}
	// Revoking an unknown tenant is a no-op.
	q.Revoke("nobody", qos.High, 1)
}

func TestQuotaClientTokens(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil { // 1 MB/s
		t.Fatal(err)
	}
	c := q.Client("a")
	now := sim.Time(0)
	// Fresh bucket holds one burst: 1e6 × 0.01s = 10 KB.
	if !c.InQuotaAt(now, qos.High, 10_000) {
		t.Fatal("initial burst rejected")
	}
	if c.InQuotaAt(now, qos.High, 1_000) {
		t.Fatal("empty bucket admitted")
	}
	// After 5 ms, 5 KB of tokens accrue.
	now += 5 * sim.Millisecond
	if !c.InQuotaAt(now, qos.High, 4_000) {
		t.Error("refilled tokens rejected")
	}
	if c.InQuotaAt(now, qos.High, 4_000) {
		t.Error("tokens double spent")
	}
}

func TestQuotaClientNoGrant(t *testing.T) {
	q := newServer()
	c := q.Client("nobody")
	if c.InQuotaAt(0, qos.High, 1) {
		t.Error("tenant without grant admitted")
	}
}

func TestQuotaClientBurstCap(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	c := q.Client("a")
	c.BurstSeconds = 0.001 // 1 KB burst
	if c.InQuotaAt(sim.Time(10*sim.Second), qos.High, 5_000) {
		t.Error("burst cap not enforced after long idle")
	}
	if !c.InQuotaAt(sim.Time(10*sim.Second), qos.High, 900) {
		t.Error("within-burst request rejected")
	}
}

func TestQuotaAdmitterBypassesDraw(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	// Crush the admit probability.
	for i := 0; i < 1000; i++ {
		ctl.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	}
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	// In-quota RPCs are admitted despite p_admit at the floor.
	d := qa.Admit(1, qos.High, 1)
	if d.Downgraded || d.Class != qos.High {
		t.Fatalf("in-quota RPC not admitted: %+v", d)
	}
	if qa.InQuotaAdmits != 1 {
		t.Errorf("InQuotaAdmits = %d", qa.InQuotaAdmits)
	}
}

func TestQuotaAdmitterFallsThroughWhenExhausted(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 100); err != nil { // 100 B/s: negligible
		t.Fatal(err)
	}
	cfg := Defaults3(2*sim.Microsecond, 4*sim.Microsecond)
	cfg.Floor = 0
	s := sim.New(1)
	ctl := newCtlCfg(t, cfg, s)
	for i := 0; i < 1000; i++ {
		ctl.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	}
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	downgrades := 0
	for i := 0; i < 50; i++ {
		if d := qa.Admit(1, qos.High, 64); d.Downgraded {
			downgrades++
		}
	}
	if downgrades == 0 {
		t.Error("out-of-quota traffic bypassed the probabilistic path")
	}
}

func TestQuotaAdmitterScavengerPassThrough(t *testing.T) {
	q := newServer()
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	d := qa.Admit(1, qos.Low, 1)
	if d.Downgraded || d.Class != qos.Low {
		t.Errorf("scavenger RPC mishandled: %+v", d)
	}
}

func TestQuotaAdmitterObservePropagates(t *testing.T) {
	q := newServer()
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	qa.Observe(1, qos.High, sim.Duration(1*sim.Millisecond), 10)
	if ctl.Stats.SLOMisses != 1 {
		t.Error("Observe not propagated to the controller")
	}
}

func TestQuotaLeaseCachesRate(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	c := q.Client("a")
	c.LeaseTTL = 100 * time.Millisecond
	now := sim.Time(0)
	if !c.InQuotaAt(now, qos.High, 1_000) {
		t.Fatal("in-quota request rejected")
	}
	// Revoke everything: the cached lease keeps admitting until it expires.
	q.Revoke("a", qos.High, 1e6)
	now += 50 * sim.Millisecond
	if !c.InQuotaAt(now, qos.High, 1_000) {
		t.Error("revoke propagated before lease expiry")
	}
	// Past the TTL the refresh reads the zero grant.
	now += 60 * sim.Millisecond
	if c.InQuotaAt(now, qos.High, 1) {
		t.Error("revoke not propagated after lease expiry")
	}
	if st := c.LeaseStats(); st.Refreshes < 2 {
		t.Errorf("Refreshes = %d, want >= 2", st.Refreshes)
	}
}

func TestQuotaLeaseRidesThroughShortOutage(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	c := q.Client("a")
	c.LeaseTTL = 100 * time.Millisecond
	now := sim.Time(0)
	if got := c.CheckAt(now, qos.High, 1_000); got != QuotaYes {
		t.Fatalf("initial check = %v", got)
	}
	// Outage shorter than the TTL is invisible: the lease still enforces.
	q.SetAvailable(false)
	now += 50 * sim.Millisecond
	if got := c.CheckAt(now, qos.High, 1_000); got != QuotaYes {
		t.Errorf("check during in-TTL outage = %v", got)
	}
	// Past the TTL the lease is stale.
	now += 60 * sim.Millisecond
	if got := c.CheckAt(now, qos.High, 1); got != QuotaStale {
		t.Errorf("check past TTL during outage = %v", got)
	}
	if st := c.LeaseStats(); st.StaleChecks != 1 {
		t.Errorf("StaleChecks = %d", st.StaleChecks)
	}
	// Recovery: the next check refreshes and enforces again.
	q.SetAvailable(true)
	if got := c.CheckAt(now, qos.High, 1_000); got != QuotaYes {
		t.Errorf("check after recovery = %v", got)
	}
}

func TestQuotaStaleWithZeroTTLIsImmediate(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	c := q.Client("a") // LeaseTTL 0: refresh every check
	if got := c.CheckAt(0, qos.High, 1_000); got != QuotaYes {
		t.Fatalf("initial check = %v", got)
	}
	q.SetAvailable(false)
	if got := c.CheckAt(0, qos.High, 1); got != QuotaStale {
		t.Errorf("check during outage with zero TTL = %v", got)
	}
}

func TestQuotaAdmitterFailOpen(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{Controller: ctl, Client: q.ClientWithClock("a", SimClock{S: s})}
	q.SetAvailable(false)
	// Fail-open: the stale check falls through to Algorithm 1, which at
	// p_admit = 1 admits on the requested class.
	d := qa.Admit(1, qos.High, 1)
	if d.Drop || d.Downgraded || d.Class != qos.High {
		t.Fatalf("fail-open stale decision: %+v", d)
	}
	if qa.StalePassed != 1 || qa.StaleDropped != 0 {
		t.Errorf("StalePassed = %d, StaleDropped = %d", qa.StalePassed, qa.StaleDropped)
	}
	if qa.InQuotaAdmits != 0 {
		t.Errorf("stale check counted as in-quota admit")
	}
}

func TestQuotaAdmitterFailClosed(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e9); err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	ctl := newCtlCfg(t, Defaults3(2*sim.Microsecond, 4*sim.Microsecond), s)
	qa := &QuotaAdmitter{
		Controller: ctl,
		Client:     q.ClientWithClock("a", SimClock{S: s}),
		Policy:     QuotaFailClosed,
	}
	q.SetAvailable(false)
	d := qa.Admit(1, qos.High, 1)
	if !d.Drop {
		t.Fatalf("fail-closed stale decision not a drop: %+v", d)
	}
	if qa.StaleDropped != 1 || qa.StalePassed != 0 {
		t.Errorf("StaleDropped = %d, StalePassed = %d", qa.StaleDropped, qa.StalePassed)
	}
	if got := ctl.Stats.Load().Dropped; got != 1 {
		t.Errorf("controller Dropped = %d", got)
	}
	// Scavenger traffic never consults quota, so it is unaffected.
	if d := qa.Admit(1, qos.Low, 1); d.Drop {
		t.Error("fail-closed dropped scavenger traffic")
	}
	// Recovery restores the bypass.
	q.SetAvailable(true)
	if d := qa.Admit(1, qos.High, 1); d.Drop {
		t.Error("fail-closed kept dropping after recovery")
	}
}

// TestQuotaGrantRevokeExpiryRace races control-plane Grant/Revoke and
// availability flips against serving-path checks whose leases are
// constantly expiring. Run under -race it proves the lease plumbing has
// no data races; the invariant checked here is merely that the client
// never reports stale while the server is up on a zero-TTL sibling.
func TestQuotaGrantRevokeExpiryRace(t *testing.T) {
	q := newServer()
	if err := q.Grant("a", qos.High, 1e6); err != nil {
		t.Fatal(err)
	}
	clk := &ManualClock{}
	clk.SetDraw(0.5)
	c := q.ClientWithClock("a", clk)
	c.LeaseTTL = time.Microsecond // expires essentially every check

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				q.Revoke("a", qos.High, 5e5)
			} else {
				_ = q.Grant("a", qos.High, 5e5)
			}
			q.SetAvailable(i%7 != 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			clk.SetNow(sim.Time(i) * sim.Microsecond * 2)
			c.Check(qos.High, 100)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	q.SetAvailable(true)
	if got := c.CheckAt(sim.Time(time.Hour), qos.High, 0); got == QuotaStale {
		t.Errorf("stale reported while server up: %v", got)
	}
}
