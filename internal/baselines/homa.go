package baselines

import (
	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

// Packet kinds used by the Homa protocol machinery.
const (
	kindHomaGrant uint8 = iota + 1
	kindHomaDone
)

// HomaConfig parameterises the Homa transport.
type HomaConfig struct {
	// RTTBytes is the unscheduled window: bytes a sender may transmit
	// before receiving grants, and the receiver's outstanding-grant
	// budget. Default 25 KiB (~one 100 Gbps × 2 µs BDP).
	RTTBytes int64
	// ResendTimeout is the coarse loss-recovery timer (default 5 ms).
	ResendTimeout sim.Duration
	// LineRate paces the receiver's grant clock (default 100 Gbps).
	LineRate sim.Rate
}

func (c *HomaConfig) applyDefaults() {
	if c.RTTBytes == 0 {
		c.RTTBytes = 25 << 10
	}
	if c.ResendTimeout == 0 {
		c.ResendTimeout = 5 * sim.Millisecond
	}
	if c.LineRate == 0 {
		c.LineRate = 100 * sim.Gbps
	}
}

// Homa is a receiver-driven transport (Montazeri et al., SIGCOMM 2018),
// simplified: senders blind-transmit up to RTTBytes unscheduled, the
// receiver grants further bytes to the inbound message with the least
// remaining bytes (SRPT), and packets carry remaining-size urgency so the
// fabric's priority queues favour short messages. Loss recovery is a
// coarse full-tail resend timer; Homa's incast overcommit and explicit
// priority-level computation are elided.
type Homa struct {
	host *netsim.Host
	cfg  HomaConfig

	nextMsg uint64
	// Sender state by message id.
	out map[uint64]*homaOut
	// Receiver state by (src, msgID).
	in map[homaInKey]*homaIn
	// grantClock is true while the grant pacer is running.
	grantClock bool

	// Terminated counts messages abandoned by loss recovery exhaustion
	// (always zero in these experiments; kept for accounting symmetry).
	Terminated int64
}

type homaOut struct {
	m       *transport.Message
	sent    int64 // bytes transmitted at least once
	granted int64 // bytes allowed (unscheduled + grants)
	done    bool
	resend  sim.Handle
}

type homaInKey struct {
	src   int
	msgID uint64
}

type homaIn struct {
	total   int64
	got     int64
	granted int64
	class   int
	offsets map[int64]bool
}

// NewHoma attaches a Homa transport to host.
func NewHoma(host *netsim.Host, cfg HomaConfig) *Homa {
	cfg.applyDefaults()
	h := &Homa{
		host: host,
		cfg:  cfg,
		out:  make(map[uint64]*homaOut),
		in:   make(map[homaInKey]*homaIn),
	}
	host.SetReceiver(h)
	return h
}

// Send implements rpc.Sender.
func (h *Homa) Send(s *sim.Simulator, m *transport.Message) {
	m.SubmitTime = s.Now()
	h.nextMsg++
	id := h.nextMsg
	o := &homaOut{m: m, granted: min64(m.Bytes, h.cfg.RTTBytes)}
	h.out[id] = o
	h.transmit(s, id, o)
	h.armResend(s, id, o)
}

func (h *Homa) armResend(s *sim.Simulator, id uint64, o *homaOut) {
	o.resend.Cancel()
	// Jitter desynchronises concurrent senders: with a fixed timeout,
	// several messages thrashing one shallow switch queue can resend in
	// lockstep and repeat the identical drop pattern forever.
	delay := h.cfg.ResendTimeout + sim.Duration(s.Rand().Int63n(int64(h.cfg.ResendTimeout)))
	o.resend = s.AfterFunc(delay, func(s *sim.Simulator) {
		if o.done {
			return
		}
		// Coarse recovery: re-send everything granted; the receiver
		// deduplicates by offset.
		o.sent = 0
		h.transmit(s, id, o)
		h.armResend(s, id, o)
	})
}

// transmit sends all granted-but-unsent bytes as packets.
func (h *Homa) transmit(s *sim.Simulator, id uint64, o *homaOut) {
	for o.sent < o.granted {
		payload := min64(int64(netsim.MaxPayload), o.granted-o.sent)
		p := &netsim.Packet{
			Dst:      o.m.Dst,
			Class:    o.m.Class,
			Size:     int(payload) + netsim.HeaderBytes,
			MsgID:    id,
			Seq:      o.sent,
			Payload:  int(payload),
			SentAt:   s.Now(),
			Urg:      o.m.Bytes - o.sent, // SRPT: remaining bytes
			AckSeq:   o.m.Bytes,          // carries total size for the receiver
			Deadline: o.m.Deadline,
		}
		o.sent += payload
		h.host.Send(s, p)
	}
}

// HandlePacket implements netsim.Handler.
func (h *Homa) HandlePacket(s *sim.Simulator, p *netsim.Packet) {
	switch p.Kind {
	case kindHomaGrant:
		h.onGrant(s, p)
	case kindHomaDone:
		h.onDone(s, p)
	default:
		h.onData(s, p)
	}
}

func (h *Homa) onData(s *sim.Simulator, p *netsim.Packet) {
	k := homaInKey{p.Src, p.MsgID}
	in, ok := h.in[k]
	if !ok {
		in = &homaIn{
			total:   p.AckSeq,
			granted: min64(p.AckSeq, h.cfg.RTTBytes),
			class:   int(p.Class),
			offsets: make(map[int64]bool),
		}
		h.in[k] = in
	}
	if !in.offsets[p.Seq] {
		in.offsets[p.Seq] = true
		in.got += int64(p.Payload)
	}
	if in.got >= in.total {
		// Message complete: notify the sender and retire.
		delete(h.in, k)
		h.host.Send(s, &netsim.Packet{
			Dst:   p.Src,
			Class: p.Class,
			Size:  netsim.AckBytes,
			Kind:  kindHomaDone,
			MsgID: p.MsgID,
		})
		return
	}
	h.startGrantClock(s)
}

// startGrantClock begins pacing grants at line rate while any inbound
// message still needs them.
func (h *Homa) startGrantClock(s *sim.Simulator) {
	if h.grantClock {
		return
	}
	h.grantClock = true
	h.grantTick(s)
}

func (h *Homa) grantTick(s *sim.Simulator) {
	// Pick the inbound message with the least remaining bytes that still
	// has ungranted bytes and an open grant budget.
	var bestKey homaInKey
	var best *homaIn
	for k, in := range h.in {
		if in.granted >= in.total || in.granted-in.got >= h.cfg.RTTBytes {
			continue
		}
		if best == nil || in.total-in.got < best.total-best.got ||
			(in.total-in.got == best.total-best.got &&
				(k.src < bestKey.src || (k.src == bestKey.src && k.msgID < bestKey.msgID))) {
			best, bestKey = in, k
		}
	}
	if best == nil {
		h.grantClock = false
		return
	}
	grant := min64(int64(netsim.MaxPayload), best.total-best.granted)
	best.granted += grant
	h.host.Send(s, &netsim.Packet{
		Dst:    bestKey.src,
		Class:  qos.Class(best.class),
		Size:   netsim.AckBytes,
		Kind:   kindHomaGrant,
		MsgID:  bestKey.msgID,
		AckSeq: best.granted,
	})
	// Pace subsequent grants at line rate of a full packet.
	s.AfterFunc(h.cfg.LineRate.TxTime(netsim.MTU), func(s *sim.Simulator) { h.grantTick(s) })
}

func (h *Homa) onGrant(s *sim.Simulator, p *netsim.Packet) {
	o, ok := h.out[p.MsgID]
	if !ok || o.done {
		return
	}
	if p.AckSeq > o.granted {
		o.granted = min64(p.AckSeq, o.m.Bytes)
		h.transmit(s, p.MsgID, o)
	}
}

func (h *Homa) onDone(s *sim.Simulator, p *netsim.Packet) {
	o, ok := h.out[p.MsgID]
	if !ok || o.done {
		return
	}
	o.done = true
	o.resend.Cancel()
	delete(h.out, p.MsgID)
	if o.m.OnComplete != nil {
		o.m.OnComplete(s, o.m)
	}
}

var _ rpc.Sender = (*Homa)(nil)

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
