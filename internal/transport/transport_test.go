package transport

import (
	"testing"
	"testing/quick"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/wfq"
)

func testNet(t *testing.T, hosts int) *netsim.Network {
	t.Helper()
	net, err := netsim.New(netsim.Config{
		Hosts: hosts,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 2<<20)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func swiftCfg() Config {
	return Config{NewCC: func() CC { return SwiftDefaults(10 * sim.Microsecond) }}
}

func fixedCfg(w float64) Config {
	return Config{NewCC: func() CC { return Fixed{W: w} }}
}

func endpoints(t *testing.T, net *netsim.Network, cfg Config) []*Endpoint {
	t.Helper()
	eps := make([]*Endpoint, net.Hosts())
	for i := range eps {
		eps[i] = NewEndpoint(net, net.Host(i), cfg)
	}
	return eps
}

func TestSingleMessageDelivery(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	var done []sim.Time
	eps[0].Send(s, &Message{
		ID: 1, Dst: 1, Class: qos.High, Bytes: 32 * 1024,
		OnComplete: func(s *sim.Simulator, m *Message) { done = append(done, s.Now()) },
	})
	s.Run()
	if len(done) != 1 {
		t.Fatalf("completed %d messages, want 1", len(done))
	}
	// Lower bound: serialisation of 32 KB across the uplink.
	minTime := (100 * sim.Gbps).TxTime(32 * 1024)
	if done[0] < minTime {
		t.Errorf("completed at %v, faster than line rate %v", done[0], minTime)
	}
	if eps[0].Stats.MsgsCompleted != 1 || eps[0].Stats.BytesAcked != 32*1024 {
		t.Errorf("stats = %+v", eps[0].Stats)
	}
}

func TestSmallMessageSinglePacket(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	completed := false
	eps[0].Send(s, &Message{ID: 1, Dst: 1, Class: qos.High, Bytes: 100,
		OnComplete: func(*sim.Simulator, *Message) { completed = true }})
	s.Run()
	if !completed {
		t.Fatal("single-packet message did not complete")
	}
}

func TestMessagesCompleteInOrder(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	var order []uint64
	for i := 1; i <= 10; i++ {
		eps[0].Send(s, &Message{
			ID: uint64(i), Dst: 1, Class: qos.High, Bytes: 10 * 1024,
			OnComplete: func(_ *sim.Simulator, m *Message) { order = append(order, m.ID) },
		})
	}
	s.Run()
	if len(order) != 10 {
		t.Fatalf("completed %d, want 10", len(order))
	}
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("completion order %v", order)
		}
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	const total = 8 << 20 // 8 MB
	var finish sim.Time
	eps[0].Send(s, &Message{ID: 1, Dst: 1, Class: qos.High, Bytes: total,
		OnComplete: func(s *sim.Simulator, m *Message) { finish = s.Now() }})
	s.Run()
	if finish == 0 {
		t.Fatal("did not complete")
	}
	// Goodput should be at least 60% of line rate despite header
	// overhead and ramp-up.
	goodput := float64(total) * 8 / finish.Seconds()
	if goodput < 0.6e11 {
		t.Errorf("goodput %.3g bps, want > 60 Gbps", goodput)
	}
}

func TestConcurrentClassesAreIndependentStreams(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	done := map[qos.Class]bool{}
	for _, c := range []qos.Class{qos.High, qos.Medium, qos.Low} {
		c := c
		eps[0].Send(s, &Message{ID: uint64(c + 1), Dst: 1, Class: c, Bytes: 64 * 1024,
			OnComplete: func(*sim.Simulator, *Message) { done[c] = true }})
	}
	s.Run()
	for _, c := range []qos.Class{qos.High, qos.Medium, qos.Low} {
		if !done[c] {
			t.Errorf("class %v did not complete", c)
		}
	}
}

func TestRecoveryFromDrops(t *testing.T) {
	// Tiny switch buffers force drops; the RTO path must still deliver
	// everything.
	net, err := netsim.New(netsim.Config{
		Hosts: 3,
		SwitchSched: func() wfq.Scheduler {
			return wfq.NewWFQ([]float64{8, 4, 1}, 8*1500)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, 3)
	for i := range eps {
		eps[i] = NewEndpoint(net, net.Host(i), Config{
			NewCC:  func() CC { return Fixed{W: 64} }, // aggressive: provoke loss
			RTOMin: 50 * sim.Microsecond,
		})
	}
	s := sim.New(1)
	completed := 0
	for i := 0; i < 4; i++ {
		eps[0].Send(s, &Message{ID: uint64(i), Dst: 2, Class: qos.High, Bytes: 256 * 1024,
			OnComplete: func(*sim.Simulator, *Message) { completed++ }})
		eps[1].Send(s, &Message{ID: uint64(100 + i), Dst: 2, Class: qos.High, Bytes: 256 * 1024,
			OnComplete: func(*sim.Simulator, *Message) { completed++ }})
	}
	s.Run()
	if completed != 8 {
		t.Fatalf("completed %d of 8 despite retransmission", completed)
	}
	drops, _ := net.TotalDropped()
	if drops == 0 {
		t.Error("test did not actually provoke drops; tighten buffers")
	}
	if eps[0].Stats.Retransmits == 0 && eps[1].Stats.Retransmits == 0 {
		t.Error("no retransmissions recorded")
	}
}

func TestQueuedBytes(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, fixedCfg(1))
	s := sim.New(1)
	eps[0].Send(s, &Message{ID: 1, Dst: 1, Class: qos.High, Bytes: 100 * 1024})
	if got := eps[0].QueuedBytes(1, qos.High); got != 100*1024 {
		t.Errorf("QueuedBytes = %d, want all queued at t=0", got)
	}
	if got := eps[0].QueuedBytes(1, qos.Low); got != 0 {
		t.Errorf("QueuedBytes other class = %d", got)
	}
	s.Run()
	if got := eps[0].QueuedBytes(1, qos.High); got != 0 {
		t.Errorf("QueuedBytes after drain = %d", got)
	}
}

func TestSendValidation(t *testing.T) {
	net := testNet(t, 2)
	eps := endpoints(t, net, swiftCfg())
	s := sim.New(1)
	for _, m := range []*Message{
		{ID: 1, Dst: 1, Bytes: 0},
		{ID: 2, Dst: 0, Bytes: 10}, // to self
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Send(%+v) did not panic", m)
				}
			}()
			eps[0].Send(s, m)
		}()
	}
}

func TestSwiftAdditiveIncrease(t *testing.T) {
	sw := SwiftDefaults(10 * sim.Microsecond)
	w0 := sw.Window()
	for i := 0; i < 100; i++ {
		sw.OnAck(sim.Time(i)*sim.Microsecond, 5*sim.Microsecond, 1)
	}
	if sw.Window() <= w0 {
		t.Errorf("window did not grow under target: %v -> %v", w0, sw.Window())
	}
	if sw.Window() > sw.MaxCwnd {
		t.Errorf("window exceeded max: %v", sw.Window())
	}
}

func TestSwiftMultiplicativeDecreaseOncePerRTT(t *testing.T) {
	sw := SwiftDefaults(10 * sim.Microsecond)
	w0 := sw.Window()
	now := sim.Time(1 * sim.Millisecond)
	rtt := 40 * sim.Microsecond // 4× over target
	sw.OnAck(now, rtt, 1)
	w1 := sw.Window()
	if w1 >= w0 {
		t.Fatalf("no decrease: %v -> %v", w0, w1)
	}
	// A second over-target ack within the same RTT must not decrease
	// again.
	sw.OnAck(now+sim.Time(rtt)/2, rtt, 1)
	if sw.Window() != w1 {
		t.Errorf("second decrease within one RTT: %v -> %v", w1, sw.Window())
	}
	// After an RTT has passed, decrease is allowed again.
	sw.OnAck(now+sim.Time(rtt)+1, rtt, 1)
	if sw.Window() >= w1 {
		t.Error("no decrease after an RTT elapsed")
	}
}

func TestSwiftDecreaseBounded(t *testing.T) {
	sw := SwiftDefaults(10 * sim.Microsecond)
	w0 := sw.Window()
	// An extreme RTT cannot cut the window by more than MaxMDF.
	sw.OnAck(sim.Time(1*sim.Millisecond), 10*sim.Millisecond, 1)
	if min := w0 * (1 - sw.MaxMDF); sw.Window() < min-1e-9 {
		t.Errorf("decrease exceeded MaxMDF: %v -> %v", w0, sw.Window())
	}
}

func TestSwiftSubPacketWindow(t *testing.T) {
	sw := SwiftDefaults(10 * sim.Microsecond)
	now := sim.Time(0)
	rtt := 100 * sim.Microsecond
	for i := 0; i < 200; i++ {
		now += sim.Time(rtt) + 1
		sw.OnAck(now, rtt, 1)
	}
	if sw.Window() < sw.MinCwnd {
		t.Errorf("window below MinCwnd: %v", sw.Window())
	}
	if sw.Window() >= 1 {
		t.Errorf("persistent congestion should drive window below 1: %v", sw.Window())
	}
	// Recovery: windows below 1 grow additively per ack.
	w := sw.Window()
	sw.OnAck(now+1000, 5*sim.Microsecond, 1)
	if sw.Window() <= w {
		t.Error("no recovery from sub-packet window")
	}
}

func TestSwiftRetransmitDecrease(t *testing.T) {
	sw := SwiftDefaults(10 * sim.Microsecond)
	w0 := sw.Window()
	sw.OnRetransmit(sim.Time(1 * sim.Millisecond))
	if want := w0 * (1 - sw.MaxMDF); sw.Window() != want {
		t.Errorf("retransmit decrease: %v, want %v", sw.Window(), want)
	}
}

// Property: the Swift window always stays within [MinCwnd, MaxCwnd]
// under arbitrary ack sequences.
func TestSwiftWindowBoundsProperty(t *testing.T) {
	f := func(rtts []uint32) bool {
		sw := SwiftDefaults(10 * sim.Microsecond)
		now := sim.Time(0)
		for _, r := range rtts {
			rtt := sim.Duration(r%100000) * sim.Nanosecond
			if rtt == 0 {
				rtt = sim.Nanosecond
			}
			now += sim.Time(rtt)
			sw.OnAck(now, rtt, 1+int(r%3))
			if sw.Window() < sw.MinCwnd-1e-12 || sw.Window() > sw.MaxCwnd+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Byte conservation across the transport: everything submitted is
// eventually acked exactly once, under random workloads and tight buffers.
func TestTransportConservationProperty(t *testing.T) {
	f := func(seed int64, msgSizes []uint16) bool {
		if len(msgSizes) == 0 {
			return true
		}
		if len(msgSizes) > 40 {
			msgSizes = msgSizes[:40]
		}
		net, err := netsim.New(netsim.Config{
			Hosts: 4,
			SwitchSched: func() wfq.Scheduler {
				return wfq.NewWFQ([]float64{8, 4, 1}, 16*1500)
			},
		})
		if err != nil {
			return false
		}
		s := sim.New(seed)
		eps := make([]*Endpoint, 4)
		for i := range eps {
			eps[i] = NewEndpoint(net, net.Host(i), Config{
				NewCC:  func() CC { return SwiftDefaults(10 * sim.Microsecond) },
				RTOMin: 50 * sim.Microsecond,
			})
		}
		var want, completed int64
		for i, sz := range msgSizes {
			bytes := int64(sz%50000) + 1
			src := i % 4
			dst := (i + 1 + int(sz)%3) % 4
			if dst == src {
				dst = (dst + 1) % 4
			}
			want++
			eps[src].Send(s, &Message{
				ID: uint64(i), Dst: dst, Class: qos.Class(int(sz) % 3), Bytes: bytes,
				OnComplete: func(*sim.Simulator, *Message) { completed++ },
			})
		}
		s.Run()
		return completed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
