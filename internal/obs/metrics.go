package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"

	"aequitas/internal/sim"
)

// Sampler reports a set of named gauge values at one simulated instant.
// Implementations must emit in a deterministic order (sorted keys or a
// fixed traversal), because the registry assigns CSV columns in
// first-appearance order.
type Sampler func(now sim.Time, emit func(name string, v float64))

// Registry collects periodic metric samples into a wide-format time
// series: one row per Sample call, one column per distinct metric name.
// Columns may appear mid-run (admission state and connections are created
// lazily); earlier rows hold NaN for late columns and the CSV writer
// emits those cells empty.
type Registry struct {
	samplers []Sampler
	colIndex map[string]int
	cols     []string
	times    []float64
	rows     [][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{colIndex: make(map[string]int)}
}

// Register adds a sampler invoked on every Sample tick, in registration
// order.
func (r *Registry) Register(s Sampler) {
	if r == nil || s == nil {
		return
	}
	r.samplers = append(r.samplers, s)
}

// Columns returns the metric names in column order.
func (r *Registry) Columns() []string {
	if r == nil {
		return nil
	}
	return r.cols
}

// Rows reports the number of sampled rows.
func (r *Registry) Rows() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// Value returns the sampled value at row i for the named column, or NaN.
func (r *Registry) Value(i int, name string) float64 {
	if r == nil || i < 0 || i >= len(r.rows) {
		return math.NaN()
	}
	idx, ok := r.colIndex[name]
	if !ok || idx >= len(r.rows[i]) {
		return math.NaN()
	}
	return r.rows[i][idx]
}

// Sample runs every sampler and appends one row at now.
func (r *Registry) Sample(now sim.Time) {
	if r == nil {
		return
	}
	row := make([]float64, len(r.cols))
	for i := range row {
		row[i] = math.NaN()
	}
	emit := func(name string, v float64) {
		idx, ok := r.colIndex[name]
		if !ok {
			idx = len(r.cols)
			r.colIndex[name] = idx
			r.cols = append(r.cols, name)
			row = append(row, math.NaN())
		}
		row[idx] = v
	}
	for _, s := range r.samplers {
		s(now, emit)
	}
	r.times = append(r.times, now.Seconds())
	r.rows = append(r.rows, row)
}

// WriteCSV writes the sampled series as wide-format CSV: a t_s time
// column followed by one column per metric. Cells never sampled in a row
// (columns that appeared later) are left empty.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("t_s"); err != nil {
		return err
	}
	for _, c := range r.cols {
		bw.WriteByte(',')
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	var buf []byte
	for i, row := range r.rows {
		buf = strconv.AppendFloat(buf[:0], r.times[i], 'f', 9, 64)
		for j := 0; j < len(r.cols); j++ {
			buf = append(buf, ',')
			if j < len(row) && !math.IsNaN(row[j]) {
				buf = strconv.AppendFloat(buf, row[j], 'g', -1, 64)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
