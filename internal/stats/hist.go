package stats

import (
	"fmt"
	"math"
)

// Hist is a log-linear (HDR-style) fixed-bucket histogram: each power-of-
// two octave of the value range is split into histSub equal-width linear
// sub-buckets, so the relative width of every bucket is at most 1/histSub
// and a quantile read off a bucket midpoint is within 1/(2·histSub) ≈
// 0.78% of the exact order statistic — at any stream length, with memory
// fixed at construction. This is the bounded-error replacement for
// reservoir-sampled quantiles on long runs: the reservoir keeps the error
// unbounded-in-probability as streams grow, while the histogram's error
// is a deterministic geometry constant.
//
// Count, Sum, Mean, Min and Max are exact (tracked outside the buckets).
// Merge is deterministic: all Hist values share one geometry, so merging
// is element-wise count addition and the result is independent of merge
// order. The zero value is not ready to use; call NewHist.
//
// Record performs no allocation — the bucket array is allocated once by
// NewHist — which keeps it safe for simulator hot paths.
type Hist struct {
	counts []int64
	n      int64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
	// lo, hi bound the touched bucket index range so Reset and quantile
	// scans are O(touched), not O(buckets).
	lo, hi int
}

const (
	// histSub is the number of linear sub-buckets per octave. 64 puts the
	// worst-case relative quantile error at 1/(2·64) ≈ 0.78% (< the 1%
	// budget pinned by TestHistQuantileError).
	histSub = 64
	// histMinExp / histMaxExp bound the tracked octaves: values in
	// [2^histMinExp, 2^histMaxExp). For microsecond-denominated latencies
	// that is ~1 ns to ~2200 s; values outside fall into exact-count
	// underflow/overflow buckets (their quantiles clamp to Min/Max).
	histMinExp = -10
	histMaxExp = 41
	// histBuckets = underflow + octaves·sub + overflow.
	histBuckets = 1 + (histMaxExp-histMinExp)*histSub + 1
)

// histMinVal / histMaxVal are the tracked range bounds as floats.
var (
	histMinVal = math.Ldexp(1, histMinExp)
	histMaxVal = math.Ldexp(1, histMaxExp)
)

// NewHist returns an empty histogram. All histograms share one bucket
// geometry, so any two can be merged.
func NewHist() *Hist {
	return &Hist{
		counts: make([]int64, histBuckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
		lo:     histBuckets,
		hi:     -1,
	}
}

// histIndex maps a value to its bucket. Values below the tracked range
// (including zero, negatives and NaN) land in the underflow bucket 0;
// values at or above the range top land in the final overflow bucket.
func histIndex(v float64) int {
	if !(v >= histMinVal) {
		return 0
	}
	if v >= histMaxVal {
		return histBuckets - 1
	}
	// Frexp: v = m · 2^e with m ∈ [0.5, 1), i.e. v ∈ [2^(e-1), 2^e).
	// The octave is e-1; (m-0.5)·2·sub picks the linear sub-bucket.
	m, e := math.Frexp(v)
	return 1 + (e-1-histMinExp)*histSub + int((m-0.5)*(2*histSub))
}

// histBucketBounds returns the [lo, hi) value range of bucket idx.
func histBucketBounds(idx int) (lo, hi float64) {
	switch {
	case idx <= 0:
		return 0, histMinVal
	case idx >= histBuckets-1:
		return histMaxVal, math.Inf(1)
	}
	idx--
	octave := histMinExp + idx/histSub
	frac := idx % histSub
	base := math.Ldexp(1, octave)
	step := base / histSub
	lo = base + float64(frac)*step
	return lo, lo + step
}

// Record adds one observation. It never allocates.
func (h *Hist) Record(v float64) {
	h.n++
	h.sum += v
	h.sumSq += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := histIndex(v)
	h.counts[idx]++
	if idx < h.lo {
		h.lo = idx
	}
	if idx > h.hi {
		h.hi = idx
	}
}

// N reports the number of recorded observations.
func (h *Hist) N() int64 { return h.n }

// Sum reports the exact sum of all observations.
func (h *Hist) Sum() float64 { return h.sum }

// Mean reports the exact arithmetic mean, or NaN if empty.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// StdDev reports the exact population standard deviation, or NaN if
// empty. Computed from the running sum of squares, so it covers every
// observation (not a bucket approximation).
func (h *Hist) StdDev() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	m := h.Mean()
	v := h.sumSq/float64(h.n) - m*m
	if v < 0 { // floating-point cancellation on near-constant streams
		v = 0
	}
	return math.Sqrt(v)
}

// Min and Max report the exact extreme observations, or NaN if empty.
func (h *Hist) Min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.min
}

func (h *Hist) Max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method over buckets, reporting the matched bucket's midpoint clamped to
// the exact observed [Min, Max]. The relative error versus the exact
// order statistic is at most 1/(2·histSub) for values inside the tracked
// range. Returns NaN if the histogram is empty.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := h.lo; i <= h.hi; i++ {
		cum += h.counts[i]
		if cum >= rank {
			lo, hi := histBucketBounds(i)
			v := (lo + hi) / 2
			if i == 0 {
				// Underflow bucket: below the tracked range the geometry
				// gives no sub-structure; the exact minimum is the best
				// bounded answer.
				v = h.min
			}
			if i == histBuckets-1 {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Percentile returns the p-th percentile, p in [0, 100].
func (h *Hist) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// CountAbove reports how many observations fall in buckets strictly above
// the bucket containing x (a bucket-granularity approximation of the
// exact count).
func (h *Hist) CountAbove(x float64) int64 {
	idx := histIndex(x)
	var cum int64
	for i := idx + 1; i <= h.hi; i++ {
		cum += h.counts[i]
	}
	return cum
}

// Merge adds o's observations into h. Both histograms share the package
// geometry, so the merge is element-wise and deterministic: any merge
// order yields identical state. A nil or empty o is a no-op.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	h.n += o.n
	h.sum += o.sum
	h.sumSq += o.sumSq
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := o.lo; i <= o.hi; i++ {
		h.counts[i] += o.counts[i]
	}
	if o.lo < h.lo {
		h.lo = o.lo
	}
	if o.hi > h.hi {
		h.hi = o.hi
	}
}

// Reset clears the histogram for reuse (windowed collection). Only the
// touched bucket range is zeroed, so resetting a sparsely-filled
// histogram is cheap.
func (h *Hist) Reset() {
	for i := h.lo; i <= h.hi; i++ {
		h.counts[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.sumSq = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
	h.lo = histBuckets
	h.hi = -1
}

// CDF returns (value, cumulative-fraction) points over the non-empty
// buckets, thinned to at most maxPoints (0 = all).
func (h *Hist) CDF(maxPoints int) []Point {
	if h.n == 0 {
		return nil
	}
	var pts []Point
	var cum int64
	for i := h.lo; i <= h.hi; i++ {
		if h.counts[i] == 0 {
			continue
		}
		cum += h.counts[i]
		_, hi := histBucketBounds(i)
		if math.IsInf(hi, 1) {
			hi = h.max
		}
		pts = append(pts, Point{X: hi, Y: float64(cum) / float64(h.n)})
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		thinned := make([]Point, 0, maxPoints)
		for i := 0; i < maxPoints; i++ {
			idx := (i + 1) * len(pts) / maxPoints
			thinned = append(thinned, pts[idx-1])
		}
		pts = thinned
	}
	return pts
}

// Buckets calls f for every non-empty bucket in ascending value order
// with the bucket's inclusive upper value bound and its count. The
// Prometheus renderer builds its cumulative _bucket series from this.
func (h *Hist) Buckets(f func(upper float64, count int64)) {
	for i := h.lo; i <= h.hi && i >= 0; i++ {
		if h.counts[i] == 0 {
			continue
		}
		_, hi := histBucketBounds(i)
		f(hi, h.counts[i])
	}
}

// String summarises the histogram.
func (h *Hist) String() string {
	return fmt.Sprintf("hist(n=%d mean=%.3g p50=%.3g p99=%.3g p99.9=%.3g max=%.3g)",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
