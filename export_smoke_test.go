package aequitas

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"aequitas/internal/obs"
)

// TestExportSmoke is the live-endpoint smoke test wired into make check:
// a short instrumented run publishes into an Exporter served over
// httptest, then /metrics must parse as Prometheus text format with the
// expected series, /snapshot as schema-tagged JSON, and the pprof mux
// must respond.
func TestExportSmoke(t *testing.T) {
	exp := obs.NewExporter()
	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()

	// Before any publish the endpoints must refuse cleanly, not panic.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("pre-publish /metrics status = %d, want 503", resp.StatusCode)
	}

	cfg := obsTestConfig(51)
	cfg.Obs = ObsConfig{Export: exp, ExportLabel: "smoke"}
	cfg.Probes = []Probe{{Src: 0, Dst: 1, Class: 0}}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	// /metrics: strict Prometheus text-format parse plus the series the
	// run must have produced.
	prom := get("/metrics")
	n, err := obs.ValidatePromText(bytes.NewReader(prom))
	if err != nil {
		t.Fatalf("/metrics not valid Prometheus text: %v\n%s", err, prom)
	}
	if n < 10 {
		t.Errorf("/metrics has only %d samples", n)
	}
	for _, want := range []string{
		"aequitas_sim_time_seconds",
		"aequitas_rpcs_issued_total",
		"aequitas_rpcs_completed_total",
		"aequitas_rnl_us_bucket",
		`le="+Inf"`,
		`aequitas_gauge{name="goodput.fraction"}`,
		`aequitas_gauge{name="p_admit.s0.d1.q0"}`,
		`aequitas_gauge{name="q.`,
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /snapshot: schema-tagged JSON mirroring the same state.
	var snap struct {
		Schema   string  `json:"schema"`
		Label    string  `json:"label"`
		SimTimeS float64 `json:"sim_time_s"`
		Final    bool    `json:"final"`
		Counters []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"counters"`
		Hists []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"hists"`
	}
	if err := json.Unmarshal(get("/snapshot"), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("snapshot schema = %q, want %q", snap.Schema, obs.SnapshotSchema)
	}
	if snap.Label != "smoke" || !snap.Final || snap.SimTimeS <= 0 {
		t.Errorf("final snapshot = label %q final %v t %v", snap.Label, snap.Final, snap.SimTimeS)
	}
	var completed float64
	for _, c := range snap.Counters {
		if c.Name == "rpcs_completed_total" {
			completed = c.Value
		}
	}
	if completed == 0 {
		t.Error("snapshot counters missing rpcs_completed_total")
	}
	var histN int64
	for _, h := range snap.Hists {
		if h.Name == "rnl_us" {
			histN += h.Count
		}
	}
	if histN == 0 {
		t.Error("snapshot has no rnl_us histogram observations")
	}

	// pprof mux responds (index page).
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("pprof")) {
		t.Error("/debug/pprof/ served no pprof index")
	}
}

// TestExportDisabledUntouched: with no exporter configured the run takes
// the exact event path of a plain run — Results are deeply equal, which
// is what keeps TestGoldenDeterminism's pins valid.
func TestExportDisabledUntouched(t *testing.T) {
	a, err := Run(obsTestConfig(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := obsTestConfig(61)
	cfg.Obs = ObsConfig{} // explicitly zero
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventsProcessed != b.EventsProcessed || a.Completed != b.Completed {
		t.Errorf("zero ObsConfig changed the run: events %d vs %d, completed %d vs %d",
			a.EventsProcessed, b.EventsProcessed, a.Completed, b.Completed)
	}
}
