// Command tracecheck validates NDJSON lifecycle traces produced by the
// observability layer (aequitas-sim -trace, SimConfig.Obs.TraceNDJSON).
// It checks each line against the schema in internal/obs — known kind,
// required fields present and correctly typed, timestamps non-decreasing,
// p_admit in [0, 1] — and exits non-zero on the first violation.
//
// Usage:
//
//	tracecheck trace.ndjson [more.ndjson ...]
//
// `make trace-check` runs a short instrumented simulation and feeds the
// result through this command.
package main

import (
	"fmt"
	"os"

	"aequitas/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.ndjson> [...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		n, err := obs.ValidateNDJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: %d events ok\n", path, n)
	}
	if failed {
		os.Exit(1)
	}
}
