package fleet

import (
	"math"
	"testing"

	"aequitas/internal/qos"
)

func newCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Apps: 100, Seed: seed, UpgradeBias: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Apps: 0}); err == nil {
		t.Error("0-app cluster accepted")
	}
}

func TestSharesSumToOne(t *testing.T) {
	c := newCluster(t, 1)
	var tot float64
	for _, a := range c.Apps {
		tot += a.Share
		var mix float64
		for _, m := range a.PriorityMix {
			mix += m
		}
		if math.Abs(mix-1) > 1e-9 {
			t.Fatalf("app priority mix sums to %v", mix)
		}
	}
	if math.Abs(tot-1) > 1e-9 {
		t.Errorf("app shares sum to %v", tot)
	}
	ps := c.PriorityShares()
	if math.Abs(ps[0]+ps[1]+ps[2]-1) > 1e-9 {
		t.Errorf("priority shares sum to %v", ps[0]+ps[1]+ps[2])
	}
	qs := c.QoSShares()
	if math.Abs(qs[0]+qs[1]+qs[2]-1) > 1e-9 {
		t.Errorf("QoS shares sum to %v", qs[0]+qs[1]+qs[2])
	}
}

func TestAlignmentRowsNormalized(t *testing.T) {
	c := newCluster(t, 2)
	for _, a := range []Alignment{c.CoarseAlignment(), c.Phase1Alignment()} {
		for p := 0; p < 3; p++ {
			var s float64
			for cl := 0; cl < 3; cl++ {
				s += a[p][cl]
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("alignment row %d sums to %v", p, s)
			}
		}
	}
}

// The Figure 4 phenomenon: coarse marking misaligns a substantial share
// of traffic; Phase 1 drives misalignment to zero.
func TestCoarseMarkingMisaligns(t *testing.T) {
	c := newCluster(t, 3)
	coarse := c.CoarseAlignment()
	// PC traffic not on QoSh (the paper observed 17.3%).
	pcWrong := coarse.Misalignment(qos.PC)
	if pcWrong <= 0.05 {
		t.Errorf("PC misalignment %v; coarse marking should misplace some PC traffic", pcWrong)
	}
	// BE traffic above QoSl (the paper observed 54.5%).
	beWrong := coarse.Misalignment(qos.BE)
	if beWrong <= 0.1 {
		t.Errorf("BE misalignment %v; upgrade bias should push BE traffic up", beWrong)
	}
	aligned := c.Phase1Alignment()
	for p := 0; p < 3; p++ {
		if m := aligned.Misalignment(qos.Priority(p)); m != 0 {
			t.Errorf("Phase 1 misalignment for priority %d = %v, want 0", p, m)
		}
	}
}

func TestTotalMisalignment(t *testing.T) {
	c := newCluster(t, 4)
	shares := c.PriorityShares()
	tm := c.CoarseAlignment().TotalMisalignment(shares)
	if tm <= 0 || tm >= 1 {
		t.Errorf("total misalignment = %v", tm)
	}
	if got := c.Phase1Alignment().TotalMisalignment(shares); got != 0 {
		t.Errorf("Phase 1 total misalignment = %v", got)
	}
	var zero Alignment
	if got := zero.TotalMisalignment([3]float64{}); got != 0 {
		t.Errorf("degenerate shares: %v", got)
	}
}

// Figure 5: the QoSh share drifts upward over time under upgrade
// pressure.
func TestRaceToTheTopDrift(t *testing.T) {
	c := newCluster(t, 5)
	traj := c.RaceToTheTop(50, 0.3, 0.5)
	if len(traj) != 51 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	first, last := traj[0], traj[len(traj)-1]
	if last[0] <= first[0] {
		t.Errorf("QoSh share did not grow: %v -> %v", first[0], last[0])
	}
	if last[2] >= first[2] {
		t.Errorf("QoSl share did not shrink: %v -> %v", first[2], last[2])
	}
	for _, q := range traj {
		if s := q[0] + q[1] + q[2]; math.Abs(s-1) > 1e-9 {
			t.Fatalf("shares sum to %v mid-trajectory", s)
		}
	}
}

// Figure 3: latency responds superlinearly to the load surge and peaks
// with it.
func TestOverloadEpisodeShape(t *testing.T) {
	load, lat := OverloadEpisode(100, 8)
	if len(load) != 100 || len(lat) != 100 {
		t.Fatal("series length")
	}
	peakLoadIdx, peakLatIdx := argmax(load), argmax(lat)
	if d := peakLoadIdx - peakLatIdx; d < -5 || d > 5 {
		t.Errorf("latency peak at %d, load peak at %d", peakLatIdx, peakLoadIdx)
	}
	if load[peakLoadIdx] < 7.5 {
		t.Errorf("peak load %v, want ~8x", load[peakLoadIdx])
	}
	if lat[peakLatIdx] <= 2*lat[0] {
		t.Errorf("latency response not superlinear: %v -> %v", lat[0], lat[peakLatIdx])
	}
	// Degenerate input does not panic.
	l2, _ := OverloadEpisode(1, 2)
	if len(l2) < 2 {
		t.Error("short episode not padded")
	}
}

// Figure 24: realignment improves PC tail latency in clusters with
// misalignment, and leaves already-aligned clusters unchanged.
func TestRNLImprovement(t *testing.T) {
	// Class latencies: lower classes are much slower.
	lat := [3]float64{1, 3, 10}
	c := newCluster(t, 6)
	impr := c.RNLImprovement(lat)
	if impr >= 0 {
		t.Errorf("Phase 1 did not improve PC latency: %v", impr)
	}
	// A perfectly aligned cluster sees no change.
	aligned, err := NewCluster(ClusterConfig{Apps: 20, Seed: 7, UpgradeBias: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range aligned.Apps {
		// Force pure single-priority apps marked correctly.
		p := qos.Priority(i % 3)
		aligned.Apps[i].PriorityMix = [3]float64{}
		aligned.Apps[i].PriorityMix[p] = 1
		aligned.Apps[i].MarkedClass = qos.MapPriorityToQoS(p)
	}
	if got := aligned.RNLImprovement(lat); math.Abs(got) > 1e-9 {
		t.Errorf("aligned cluster improvement = %v, want 0", got)
	}
}

// Fleet-wide reproduction of Figure 24's headline: across many clusters,
// misalignment drops to ~0 and the typical cluster improves its PC tail.
func TestFleetWideDeployment(t *testing.T) {
	improvements := 0
	for seed := int64(0); seed < 50; seed++ {
		c, err := NewCluster(ClusterConfig{Apps: 60, Seed: seed, UpgradeBias: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if c.RNLImprovement([3]float64{1, 3, 10}) < -0.01 {
			improvements++
		}
	}
	if improvements < 40 {
		t.Errorf("only %d/50 clusters improved", improvements)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
