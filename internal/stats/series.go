package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is a time series of (t, value) points, used for convergence plots
// such as admit probability and throughput over time (Figs 17, 18, 28, 29).
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Append adds one point. Points must be appended in non-decreasing time
// order.
func (s *Series) Append(t, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic("stats: series points must be time-ordered")
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// At returns the last value recorded at or before t, or def if none.
func (s *Series) At(t, def float64) float64 {
	i := sort.SearchFloat64s(s.T, t)
	// i is the first index with T[i] >= t; we want last index with T <= t.
	if i < len(s.T) && s.T[i] == t {
		// Multiple points can share a timestamp; take the last one.
		for i+1 < len(s.T) && s.T[i+1] == t {
			i++
		}
		return s.V[i]
	}
	if i == 0 {
		return def
	}
	return s.V[i-1]
}

// After returns the sub-series with t ≥ start, sharing backing arrays.
// The slices are capped with full-slice expressions so that appending to
// the sub-series reallocates instead of overwriting the parent's points.
func (s *Series) After(start float64) Series {
	i := sort.SearchFloat64s(s.T, start)
	return Series{
		Name: s.Name,
		T:    s.T[i:len(s.T):len(s.T)],
		V:    s.V[i:len(s.V):len(s.V)],
	}
}

// MeanValue returns the time-weighted mean of the series over its span,
// treating each value as holding until the next point. Returns the plain
// mean when the series has fewer than two points.
func (s *Series) MeanValue() float64 {
	n := len(s.T)
	switch n {
	case 0:
		return 0
	case 1:
		return s.V[0]
	}
	var area, span float64
	for i := 0; i+1 < n; i++ {
		dt := s.T[i+1] - s.T[i]
		area += s.V[i] * dt
		span += dt
	}
	if span == 0 {
		return s.V[0]
	}
	return area / span
}

// SettlingTime returns the earliest time after which every value stays
// within ±tol of the series' final value, or the last timestamp if the
// series never settles. It is used to measure convergence time (§6.6).
func (s *Series) SettlingTime(tol float64) float64 {
	n := len(s.V)
	if n == 0 {
		return 0
	}
	final := s.V[n-1]
	settle := s.T[n-1]
	for i := n - 1; i >= 0; i-- {
		if d := s.V[i] - final; d > tol || d < -tol {
			break
		}
		settle = s.T[i]
	}
	return settle
}

// Downsample returns a copy of the series thinned to at most maxPoints,
// keeping the first and last points.
func (s *Series) Downsample(maxPoints int) Series {
	n := len(s.T)
	if maxPoints <= 0 || n <= maxPoints {
		out := Series{Name: s.Name, T: append([]float64(nil), s.T...), V: append([]float64(nil), s.V...)}
		return out
	}
	out := Series{Name: s.Name}
	if maxPoints == 1 {
		// A single slot keeps the first point; the i*(n-1)/(maxPoints-1)
		// spacing below would divide by zero.
		out.T = append(out.T, s.T[0])
		out.V = append(out.V, s.V[0])
		return out
	}
	for i := 0; i < maxPoints; i++ {
		idx := i * (n - 1) / (maxPoints - 1)
		out.T = append(out.T, s.T[idx])
		out.V = append(out.V, s.V[idx])
	}
	return out
}

// Table renders aligned columns for experiment output. It is the single
// formatting helper used by cmd/figures so that every experiment prints the
// same way the paper's tables read.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v (floats with %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}
