package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aequitas"
	"aequitas/internal/obs"
	"aequitas/internal/stats"
)

// maxClasses bounds the per-class metric arrays; classes beyond it fold
// into the last slot (the paper uses 2-4 levels).
const maxClasses = 8

// metrics aggregates serving-side observability: decision counters
// (atomic, updated on the admit path), per-class latency histograms
// (mutex-guarded, updated on completion), and the exporter the HTTP
// handler publishes through.
type metrics struct {
	start      time.Time
	admitted   atomic.Int64
	downgraded atomic.Int64
	rejected   atomic.Int64
	done       atomic.Int64
	// expired counts deadline-budget rejections before the draw; shed
	// counts brownout rejections; dropped counts quota fail-closed drops.
	expired atomic.Int64
	shed    atomic.Int64
	dropped atomic.Int64

	mu  sync.Mutex
	lat [maxClasses]*stats.Hist // completion latency in µs, per run class

	exp *obs.Exporter
}

func (m *metrics) init() {
	m.start = time.Now()
	m.exp = obs.NewExporter()
}

func classSlot(c aequitas.Class) int {
	if c < 0 {
		return 0
	}
	if int(c) >= maxClasses {
		return maxClasses - 1
	}
	return int(c)
}

func (m *metrics) decided(v Verdict, reject bool) {
	if !v.Downgraded {
		m.admitted.Add(1)
		return
	}
	if reject {
		m.rejected.Add(1)
		return
	}
	m.downgraded.Add(1)
}

func (m *metrics) completed(class aequitas.Class, elapsed time.Duration) {
	m.done.Add(1)
	slot := classSlot(class)
	m.mu.Lock()
	h := m.lat[slot]
	if h == nil {
		h = stats.NewHist()
		m.lat[slot] = h
	}
	h.Record(float64(elapsed) / float64(time.Microsecond))
	m.mu.Unlock()
}

// snapshot freezes the serving state into an exportable document:
// middleware counters, the controller's cumulative Algorithm 1 counters,
// quota and brownout health, live per-(peer, class) admit probabilities
// as gauges, and per-class latency histograms.
func (a *Admission) snapshot() *obs.Snapshot {
	m := &a.m
	s := &obs.Snapshot{
		Schema:   obs.SnapshotSchema,
		Label:    "serve",
		SimTimeS: time.Since(m.start).Seconds(),
	}
	cs := a.ctl.Stats()
	s.Counters = []obs.NamedValue{
		{Name: "serve_admitted", Value: float64(m.admitted.Load())},
		{Name: "serve_downgraded", Value: float64(m.downgraded.Load())},
		{Name: "serve_rejected", Value: float64(m.rejected.Load())},
		{Name: "serve_completed", Value: float64(m.done.Load())},
		{Name: "serve_expired", Value: float64(m.expired.Load())},
		{Name: "serve_shed", Value: float64(m.shed.Load())},
		{Name: "serve_quota_dropped", Value: float64(m.dropped.Load())},
		{Name: "ctl_admitted", Value: float64(cs.Admitted)},
		{Name: "ctl_downgraded", Value: float64(cs.Downgraded)},
		{Name: "ctl_dropped", Value: float64(cs.Dropped)},
		{Name: "ctl_expired", Value: float64(cs.Expired)},
		{Name: "ctl_slo_misses", Value: float64(cs.SLOMisses)},
		{Name: "ctl_slo_met", Value: float64(cs.SLOMet)},
	}
	if qs, ok := a.ctl.QuotaStats(); ok {
		s.Counters = append(s.Counters,
			obs.NamedValue{Name: "quota_in_quota_admits", Value: float64(qs.InQuotaAdmits)},
			obs.NamedValue{Name: "quota_stale_passed", Value: float64(qs.StalePassed)},
			obs.NamedValue{Name: "quota_stale_dropped", Value: float64(qs.StaleDropped)},
			obs.NamedValue{Name: "quota_lease_refreshes", Value: float64(qs.Lease.Refreshes)},
			obs.NamedValue{Name: "quota_stale_checks", Value: float64(qs.Lease.StaleChecks)},
		)
	}
	if a.bo != nil {
		s.Gauges = append(s.Gauges,
			obs.NamedValue{Name: "brownout_level", Value: float64(a.bo.Level())},
			obs.NamedValue{Name: "serve_inflight", Value: float64(a.bo.inflight.Load())},
			obs.NamedValue{Name: "brownout_transitions", Value: float64(a.bo.transitions.Load())},
		)
	}
	if a.dl != nil {
		for slot := 0; slot < maxClasses; slot++ {
			if fl := a.dl.floor.floor(slot); fl > 0 {
				s.Gauges = append(s.Gauges, obs.NamedValue{
					Name:  fmt.Sprintf("latency_floor_us.q%d", slot),
					Value: float64(fl) / float64(time.Microsecond),
				})
			}
		}
	}
	a.ctl.ForEachProbability(func(peer string, class aequitas.Class, p float64) {
		s.Gauges = append(s.Gauges, obs.NamedValue{
			Name:  fmt.Sprintf("padmit.%s.q%d", peer, int(class)),
			Value: p,
		})
	})
	m.mu.Lock()
	for slot, h := range m.lat {
		if h == nil {
			continue
		}
		s.Hists = append(s.Hists,
			obs.SnapHist("serve_latency_us", "class", aequitas.Class(slot).String(), h))
	}
	m.mu.Unlock()
	return s
}

// Handler serves this admission layer's observability endpoints:
// Prometheus text on /metrics, the JSON document on /snapshot, pprof under
// /debug/pprof/, and the flight recorder on /debug/flight (trigger status
// as JSON; the ring as an NDJSON dump with ?format=ndjson). A fresh
// snapshot is published per scrape, so readers always see current state
// without the serving path paying for publication.
func (a *Admission) Handler() http.Handler {
	inner := a.m.exp.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/debug/flight" {
			a.serveFlight(w, r)
			return
		}
		a.m.exp.Publish(a.snapshot())
		inner.ServeHTTP(w, r)
	})
}

// Snapshot returns a freshly built observability document — the same view
// /snapshot serves.
func (a *Admission) Snapshot() *obs.Snapshot { return a.snapshot() }
