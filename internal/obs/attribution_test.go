package obs

import (
	"bytes"
	"strings"
	"testing"

	"aequitas/internal/sim"
)

// attrFill drives one synthetic RPC through every attribution hook:
// 5 µs pacing stall before first enqueue at 10 µs, tail emitted at 30 µs,
// 3 µs NIC + 7 µs switch residency, completion at 50 µs with RNL 50 µs.
func attrFill(a *Attributor) {
	a.Issue(0, 0, 1)
	a.Admit(0, 0, 1)
	a.PaceStall(0, 1, 5*sim.Microsecond)
	a.FirstEnqueue(10*sim.Microsecond, 0, 1)
	a.TailEmit(30*sim.Microsecond, 0, 1)
	a.TailHop(33*sim.Microsecond, 0, 1, 3*sim.Microsecond)
	a.TailHop(40*sim.Microsecond, 0, 1, 7*sim.Microsecond)
	a.Complete(50*sim.Microsecond, 1, 0, 3, 0, 50*sim.Microsecond)
}

func TestAttributorDecomposition(t *testing.T) {
	a := NewAttributor(nil)
	attrFill(a)
	recs := a.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	want := map[string][2]sim.Duration{
		"admit":     {r.Admit, 0},
		"sender":    {r.Sender, 5 * sim.Microsecond},
		"transport": {r.Transport, 20 * sim.Microsecond},
		"pacing":    {r.Pacing, 5 * sim.Microsecond},
		"nic":       {r.NIC, 3 * sim.Microsecond},
		"switch":    {r.Switch, 7 * sim.Microsecond},
		"wire":      {r.Wire, 10 * sim.Microsecond},
		"rnl":       {r.RNL, 50 * sim.Microsecond},
	}
	for name, v := range want {
		if v[0] != v[1] {
			t.Errorf("%s = %v, want %v", name, v[0], v[1])
		}
	}
	if sum := r.Admit + r.Sender + r.Transport + r.Pacing + r.NIC + r.Switch + r.Wire; sum != r.RNL {
		t.Errorf("components sum to %v, RNL is %v", sum, r.RNL)
	}
	if len(a.pending) != 0 {
		t.Errorf("pending not drained: %d entries", len(a.pending))
	}
}

// TestAttributorTailReemit proves a go-back-N tail retransmission discards
// the aborted transmission's queue residencies: only hops of the tail
// emission that completed count.
func TestAttributorTailReemit(t *testing.T) {
	a := NewAttributor(nil)
	a.Issue(0, 0, 1)
	a.Admit(0, 0, 1)
	a.FirstEnqueue(1*sim.Microsecond, 0, 1)
	a.TailEmit(2*sim.Microsecond, 0, 1)
	a.TailHop(3*sim.Microsecond, 0, 1, 100*sim.Microsecond) // lost transmission
	a.TailEmit(60*sim.Microsecond, 0, 1)                    // retransmit
	a.TailHop(62*sim.Microsecond, 0, 1, 2*sim.Microsecond)
	a.TailHop(65*sim.Microsecond, 0, 1, 4*sim.Microsecond)
	a.Complete(70*sim.Microsecond, 1, 0, 1, 0, 70*sim.Microsecond)
	r := a.Records()[0]
	if r.NIC != 2*sim.Microsecond || r.Switch != 4*sim.Microsecond {
		t.Errorf("nic=%v switch=%v, want 2us and 4us (pre-retransmit hops dropped)", r.NIC, r.Switch)
	}
	if r.Transport != 59*sim.Microsecond {
		t.Errorf("transport = %v, want 59us (to the final tail emission)", r.Transport)
	}
}

// TestAttributorDegradedRecord covers systems that bypass the standard
// transport: no enqueue/emit instrumentation means everything beyond the
// admission gate lands in Wire.
func TestAttributorDegradedRecord(t *testing.T) {
	a := NewAttributor(nil)
	a.Issue(0, 1, 9)
	a.Admit(2*sim.Microsecond, 1, 9)
	a.Complete(42*sim.Microsecond, 9, 1, 2, 1, 42*sim.Microsecond)
	r := a.Records()[0]
	if r.Admit != 2*sim.Microsecond || r.Wire != 40*sim.Microsecond {
		t.Errorf("admit=%v wire=%v, want 2us and 40us", r.Admit, r.Wire)
	}
	if r.Sender != 0 || r.Transport != 0 || r.Pacing != 0 || r.NIC != 0 || r.Switch != 0 {
		t.Errorf("degraded record has non-zero transport components: %+v", r)
	}
}

func TestAttributorDropForgets(t *testing.T) {
	a := NewAttributor(nil)
	a.Issue(0, 0, 1)
	a.Admit(0, 0, 1)
	a.Drop(0, 1)
	// A completion for a dropped (or never-issued) RPC is ignored.
	a.Complete(sim.Microsecond, 1, 0, 1, 0, sim.Microsecond)
	a.Complete(sim.Microsecond, 2, 0, 1, 0, sim.Microsecond)
	if n := len(a.Records()); n != 0 {
		t.Errorf("records = %d, want 0", n)
	}
}

func TestAttributorSummaries(t *testing.T) {
	a := NewAttributor(nil)
	attrFill(a)
	// Second RPC on class 1 with a pure-wire profile.
	a.Issue(0, 0, 2)
	a.Admit(0, 0, 2)
	a.Complete(20*sim.Microsecond, 2, 0, 1, 1, 20*sim.Microsecond)
	sums := a.Summaries()
	if len(sums) != 2 || sums[0].Class != 0 || sums[1].Class != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].N != 1 || sums[0].TransportUS != 20 || sums[0].RNLUS != 50 {
		t.Errorf("class 0 summary = %+v", sums[0])
	}
	if sums[1].WireUS != 20 || sums[1].RNLUS != 20 {
		t.Errorf("class 1 summary = %+v", sums[1])
	}
}

func TestAttributorWriteCSV(t *testing.T) {
	a := NewAttributor(nil)
	attrFill(a)
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 record", len(lines))
	}
	if lines[0] != AttrCSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	want := "1,0,3,0,0.000000000,0,5,20,5,3,7,10,50"
	if lines[1] != want {
		t.Errorf("record = %q, want %q", lines[1], want)
	}
}

func TestNilAttributorSafe(t *testing.T) {
	var a *Attributor
	attrFill(a) // must not panic
	if a.Enabled() || a.Records() != nil || a.Summaries() != nil {
		t.Error("nil attributor not inert")
	}
	if err := a.WriteCSV(nil); err != nil {
		t.Error(err)
	}
}

// TestDisabledAttributorAllocs proves the acceptance criterion: the
// disabled attribution hot path performs zero allocations.
func TestDisabledAttributorAllocs(t *testing.T) {
	var a *Attributor
	allocs := testing.AllocsPerRun(1000, func() {
		attrFill(a)
	})
	if allocs != 0 {
		t.Errorf("disabled attributor: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledAttributor(b *testing.B) {
	var a *Attributor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.TailHop(sim.Time(i), 0, uint64(i), sim.Microsecond)
	}
}

func TestAuditorViolations(t *testing.T) {
	a := NewAuditor(AuditConfig{BoundUS: []float64{10}, SlackUS: 2, MaxViolations: 2})
	// Within bound+slack: no violation.
	a.Hop(0, 1, "up-0", 0, 12*sim.Microsecond)
	// Over: three hop violations (one past the retention cap) and one rpc.
	a.Hop(sim.Microsecond, 2, "down-1", 0, 13*sim.Microsecond)
	a.Hop(sim.Microsecond, 3, "down-1", 0, 14*sim.Microsecond)
	a.Hop(sim.Microsecond, 4, "down-1", 0, 15*sim.Microsecond)
	a.RPCDone(2*sim.Microsecond, 2, 0, 13*sim.Microsecond, 13*sim.Microsecond, 20*sim.Microsecond)
	// Unbounded class: observed, never flagged.
	a.Hop(3*sim.Microsecond, 5, "down-2", 1, 500*sim.Microsecond)
	a.RPCDone(3*sim.Microsecond, 5, 1, 500*sim.Microsecond, 500*sim.Microsecond, 600*sim.Microsecond)

	rep := a.Report()
	if rep.Ok() {
		t.Fatal("report Ok despite violations")
	}
	if rep.TotalViolations != 4 {
		t.Errorf("total = %d, want 4", rep.TotalViolations)
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("retained = %d, want cap 2", len(rep.Violations))
	}
	v := rep.Violations[0]
	if v.RPC != 2 || v.Kind != "hop" || v.Link != "down-1" || v.ObservedUS != 13 || v.BoundUS != 10 {
		t.Errorf("first violation = %+v", v)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	c0 := rep.Classes[0]
	if !c0.Bounded || c0.BoundUS != 10 || c0.Violations != 4 || c0.Hops != 4 || c0.MaxHopUS != 15 {
		t.Errorf("class 0 = %+v", c0)
	}
	c1 := rep.Classes[1]
	if c1.Bounded || c1.Violations != 0 || c1.MaxHopUS != 500 {
		t.Errorf("class 1 = %+v", c1)
	}
}

func TestAuditorClean(t *testing.T) {
	a := NewAuditor(AuditConfig{BoundUS: []float64{10, 50}, SlackUS: 1})
	a.Hop(0, 1, "up-0", 0, 10*sim.Microsecond)
	a.RPCDone(sim.Microsecond, 1, 0, 10*sim.Microsecond, 10*sim.Microsecond, 15*sim.Microsecond)
	rep := a.Report()
	if !rep.Ok() || rep.TotalViolations != 0 {
		t.Errorf("clean run flagged: %+v", rep)
	}
	if rep.Classes[0].N != 1 || rep.Classes[0].QueueMaxUS != 10 {
		t.Errorf("class 0 = %+v", rep.Classes[0])
	}
}

func TestNilAuditorSafe(t *testing.T) {
	var a *Auditor
	a.Hop(0, 1, "up-0", 0, sim.Microsecond)
	a.RPCDone(0, 1, 0, sim.Microsecond, sim.Microsecond, sim.Microsecond)
	if a.Enabled() || a.Report() != nil {
		t.Error("nil auditor not inert")
	}
	if a.Report().Ok() {
		t.Error("nil report must not be Ok")
	}
}

// TestDisabledAuditorAllocs proves the disabled audit hot path performs
// zero allocations.
func TestDisabledAuditorAllocs(t *testing.T) {
	var a *Auditor
	allocs := testing.AllocsPerRun(1000, func() {
		a.Hop(0, 1, "up-0", 0, sim.Microsecond)
		a.RPCDone(0, 1, 0, sim.Microsecond, sim.Microsecond, sim.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("disabled auditor: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledAuditor(b *testing.B) {
	var a *Auditor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Hop(sim.Time(i), uint64(i), "up-0", 0, sim.Microsecond)
	}
}

// BenchmarkEnabledAttributorRPC measures the full per-RPC attribution
// cycle with the free-list warm (steady state: no allocations).
func BenchmarkEnabledAttributorRPC(b *testing.B) {
	a := NewAttributor(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		attrFill(a)
		a.recs = a.recs[:0] // keep the record buffer from growing unboundedly
	}
}

// TestAttributorSrcKeyed: RPC ids are per-sender-stack counters, so two
// hosts' RPC #1 are different RPCs — instrumentation from one host must
// never contaminate the other's record.
func TestAttributorSrcKeyed(t *testing.T) {
	a := NewAttributor(nil)
	a.Issue(0, 0, 1)
	a.Issue(0, 1, 1) // same id, different source host
	a.FirstEnqueue(2*sim.Microsecond, 1, 1)
	a.TailEmit(4*sim.Microsecond, 1, 1)
	a.TailHop(5*sim.Microsecond, 1, 1, 3*sim.Microsecond)
	a.Complete(10*sim.Microsecond, 1, 0, 2, 0, 10*sim.Microsecond)
	r := a.Records()[0]
	if r.NIC != 0 || r.Transport != 0 || r.Wire != 10*sim.Microsecond {
		t.Errorf("host 0's record contaminated by host 1's instrumentation: %+v", r)
	}
	a.Complete(10*sim.Microsecond, 1, 1, 2, 0, 10*sim.Microsecond)
	if r := a.Records()[1]; r.NIC != 3*sim.Microsecond {
		t.Errorf("host 1's record = %+v", r)
	}
}

// TestAuditorLevelClamp: the fabric schedulers serve out-of-range classes
// from the lowest queue, so with Levels set the auditor must check such
// classes against the lowest class's bound instead of leaving them
// unbounded.
func TestAuditorLevelClamp(t *testing.T) {
	a := NewAuditor(AuditConfig{BoundUS: []float64{10, 20}, Levels: 2})
	a.Hop(0, 1, "up-0", 5, 30*sim.Microsecond) // class 5 → lowest level 1
	rep := a.Report()
	if len(rep.Classes) != 1 || rep.Classes[0].Class != 1 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	if rep.TotalViolations != 1 {
		t.Errorf("violations = %d, want 1 (clamped class audited against the lowest bound)", rep.TotalViolations)
	}
}
