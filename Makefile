GO ?= go

.PHONY: all build test race vet check bench figures

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled suite covers the parallel sweep engine (RunMany) and
# the concurrent-Run test; it is the gate for changes touching run.go,
# parallel.go, or internal/sim. Race instrumentation is ~10x slower, so
# give the root package's simulation suite room on small machines.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

check: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x ./...

figures: build
	$(GO) run ./cmd/figures -fig all
