package aequitas

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// goldenConfig is the reference configuration whose Results were captured
// before Run was decomposed into the scenario engine. The golden strings
// below must never change for a fixed seed: they pin the refactor to
// byte-identical behaviour (same RNG draw sequence, same event order).
func goldenConfig(sys System) SimConfig {
	return SimConfig{
		System:   sys,
		Hosts:    8,
		Seed:     7,
		Duration: 10 * time.Millisecond,
		SLOs: []SLO{
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10},
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.8,
			BurstLoad: 1.4,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.5, FixedBytes: 32 << 10},
				{Priority: NC, Share: 0.3, FixedBytes: 32 << 10},
				{Priority: BE, Share: 0.2, FixedBytes: 32 << 10},
			},
		}},
	}
}

func formatGolden(res *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "system=%s issued=%d completed=%d downgraded=%d dropped=%d\n",
		res.System, res.Issued, res.Completed, res.Downgraded, res.Dropped)
	for _, c := range res.Classes() {
		l := res.RNLRun[c]
		fmt.Fprintf(&b, "  class=%s n=%d mean=%.9f p50=%.9f p99=%.9f p999=%.9f max=%.9f\n",
			c, l.N, l.MeanUS, l.P50US, l.P99US, l.P999US, l.MaxUS)
	}
	fmt.Fprintf(&b, "  goodput=%.12f rawgoodput=%.12f util=%.12f\n",
		res.GoodputFraction, res.RawGoodputRatio, res.AvgDownlinkUtilization)
	fmt.Fprintf(&b, "  inputmix=%v admittedmix=%v\n", res.InputMix, res.AdmittedMix)
	return b.String()
}

// TestGoldenDeterminism pins Run to the exact Results the pre-refactor
// monolithic Run produced for seed 7 — every count, quantile and mix
// digit. A diff here means the scenario engine changed the RNG draw
// sequence or the event-scheduling order, not just the code structure.
func TestGoldenDeterminism(t *testing.T) {
	golden := map[System]string{
		SystemBaseline: `system=baseline issued=19516 completed=19474 downgraded=0 dropped=0
  class=QoSh n=9802 mean=33.249829106 p50=29.250889000 p99=91.906081000 p999=150.139290000 max=208.744504000
  class=QoSm n=5906 mean=50.357406096 p50=44.528401000 p99=163.818559000 p999=263.237964000 max=294.064242000
  class=QoSl n=3766 mean=1401.541029248 p50=579.860215000 p99=6675.634400000 p999=8622.272517000 max=8669.034145000
  goodput=0.997847919656 rawgoodput=0.997847919656 util=0.836176835000
  inputmix=[0.5022545603607297 0.30262348841975817 0.1951219512195122] admittedmix=[0.5022545603607297 0.30262348841975817 0.1951219512195122]
`,
		SystemAequitas: `system=aequitas issued=19769 completed=19769 downgraded=8620 dropped=0
  class=QoSh n=3308 mean=10.297592573 p50=9.290980000 p99=25.548565000 p999=37.449638000 max=43.850827000
  class=QoSm n=3964 mean=17.855505929 p50=15.527963000 p99=47.338490000 p999=57.599608000 max=64.081274000
  class=QoSl n=12497 mean=551.952235894 p50=362.321754000 p99=2041.007077000 p999=2329.602821000 max=2454.513058000
  goodput=1.000000000000 rawgoodput=1.000000000000 util=0.845228150000
  inputmix=[0.5053872224189387 0.29849764783246496 0.1961151297485963] admittedmix=[0.16733269259952452 0.20051595933026456 0.6321513480702109]
`,
	}
	for sys, want := range golden {
		t.Run(sys.String(), func(t *testing.T) {
			res, err := Run(goldenConfig(sys))
			if err != nil {
				t.Fatal(err)
			}
			if got := formatGolden(res); got != want {
				t.Errorf("results diverged from pre-refactor golden values\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// allSystems lists every System value; kept in sync with the registry by
// TestRegistrySmoke below.
var allSystems = []System{
	SystemBaseline, SystemAequitas, SystemSPQ, SystemDWRR,
	SystemPFabric, SystemQJump, SystemD3, SystemPDQ, SystemHoma,
}

// TestRegistrySmoke runs every registered system on both a single-switch
// and a leaf-spine fabric and checks RPCs complete. Any System value
// missing from the scenario registry fails here at config validation.
func TestRegistrySmoke(t *testing.T) {
	if len(Systems()) != len(allSystems) {
		t.Fatalf("registry has %d systems (%v), tests cover %d", len(Systems()), Systems(), len(allSystems))
	}
	topologies := []struct {
		name           string
		leaves, spines int
	}{
		{"single-switch", 0, 0},
		{"leaf-spine", 2, 1},
	}
	for _, system := range allSystems {
		for _, topo := range topologies {
			t.Run(system.String()+"/"+topo.name, func(t *testing.T) {
				cfg := smallCluster(system, 3)
				cfg.Duration = 5 * time.Millisecond
				cfg.Warmup = time.Millisecond
				cfg.Leaves = topo.leaves
				cfg.Spines = topo.spines
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Completed == 0 {
					t.Errorf("%s on %s completed no RPCs (issued %d)", system, topo.name, res.Issued)
				}
			})
		}
	}
}

// TestTrafficPatternsEndToEnd drives each built-in pattern through a full
// run and checks pattern-specific delivery.
func TestTrafficPatternsEndToEnd(t *testing.T) {
	patterns := []TrafficPattern{
		UniformPattern(),
		IncastPattern(4),
		PermutationPattern(),
		HotspotPattern(0, 0.5),
	}
	for _, p := range patterns {
		t.Run(p.String(), func(t *testing.T) {
			cfg := smallCluster(SystemBaseline, 5)
			cfg.Duration = 5 * time.Millisecond
			cfg.Warmup = time.Millisecond
			cfg.Traffic[0].Pattern = p
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed == 0 {
				t.Fatalf("pattern %s completed no RPCs", p)
			}
		})
	}
}

// TestIncastConcentratesLoad: with an incast pattern the receiver's
// downlink carries all traffic, so per-host average utilisation is well
// below a uniform run's at equal offered load per sender.
func TestIncastConcentratesLoad(t *testing.T) {
	base := smallCluster(SystemBaseline, 5)
	base.Duration = 5 * time.Millisecond
	base.Warmup = time.Millisecond
	base.Traffic[0].Pattern = IncastPatternTo(5, 2)
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("incast run completed no RPCs")
	}
}

// TestTrafficValidationNamesEntry checks that bad traffic configurations
// fail before the run starts and the error identifies the offending
// Traffic entry by index.
func TestTrafficValidationNamesEntry(t *testing.T) {
	base := func() SimConfig { return smallCluster(SystemBaseline, 1) }
	cases := []struct {
		name string
		mod  func(*SimConfig)
		want string
	}{
		{"host out of range", func(c *SimConfig) {
			c.Traffic = append(c.Traffic, HostTraffic{Hosts: []int{99}, AvgLoad: 0.1,
				Classes: c.Traffic[0].Classes})
		}, "traffic entry 1: host 99 out of range"},
		{"negative host", func(c *SimConfig) {
			c.Traffic[0].Hosts = []int{-1}
		}, "traffic entry 0: host -1 out of range"},
		{"destination out of range", func(c *SimConfig) {
			c.Traffic[0].Dsts = []int{42}
		}, "traffic entry 0: destination 42 out of range"},
		{"pattern with explicit hosts", func(c *SimConfig) {
			c.Traffic[0].Pattern = UniformPattern()
			c.Traffic[0].Hosts = []int{0}
		}, "traffic entry 0: Pattern and explicit Hosts/Dsts are mutually exclusive"},
		{"bad pattern parameters", func(c *SimConfig) {
			c.Traffic[0].Pattern = HotspotPattern(0, 1.5)
		}, "traffic entry 0:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mod(&cfg)
			_, err := Run(cfg)
			if err == nil {
				t.Fatal("invalid traffic accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadShapesEndToEnd: a step up in load issues more RPCs than the
// constant run, an on/off shape issues fewer, and a nil shape matches
// ConstantLoad exactly (same RNG draw sequence).
func TestLoadShapesEndToEnd(t *testing.T) {
	run := func(shape LoadShape) *Results {
		t.Helper()
		cfg := smallCluster(SystemBaseline, 9)
		cfg.Duration = 5 * time.Millisecond
		cfg.Warmup = time.Millisecond
		cfg.Traffic[0].Shape = shape
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := run(nil)
	constant := run(ConstantLoad())
	if flat.Issued != constant.Issued || flat.Completed != constant.Completed {
		t.Errorf("ConstantLoad diverged from nil shape: issued %d vs %d", constant.Issued, flat.Issued)
	}
	stepped := run(StepLoad(2500*time.Microsecond, 2))
	if stepped.Issued <= flat.Issued {
		t.Errorf("step to 2x load issued %d RPCs, constant issued %d", stepped.Issued, flat.Issued)
	}
	onoff := run(OnOffLoad(time.Millisecond, 0.5))
	if onoff.Issued >= flat.Issued {
		t.Errorf("50%% duty cycle issued %d RPCs, constant issued %d", onoff.Issued, flat.Issued)
	}
	ramped := run(RampLoad(time.Millisecond, 4*time.Millisecond, 0.2))
	if ramped.Issued >= flat.Issued {
		t.Errorf("ramp down to 0.2x issued %d RPCs, constant issued %d", ramped.Issued, flat.Issued)
	}
}

// TestStepLoadReconverges is the convergence property behind the loadstep
// figure: after a load step doubles the offered load, Aequitas's admit
// probability for the high class drops below its pre-step level and the
// admitted high-class share lands below the input share.
func TestStepLoadReconverges(t *testing.T) {
	cfg := goldenConfig(SystemAequitas)
	cfg.Duration = 30 * time.Millisecond
	cfg.Warmup = 2 * time.Millisecond
	cfg.Traffic[0].AvgLoad = 0.45
	cfg.Traffic[0].BurstLoad = 0.8
	cfg.Traffic[0].Shape = StepLoad(15*time.Millisecond, 2)
	cfg.Probes = []Probe{{Src: 0, Dst: 1, Class: High}}
	cfg.SampleEvery = 250 * time.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser := res.Probes[0].AdmitProbability
	if len(ser.T) == 0 {
		t.Fatal("no admit-probability samples")
	}
	before := ser.MeanBetween(0.010, 0.015)
	after := ser.MeanBetween(0.025, 0.030)
	if after >= before {
		t.Errorf("p_admit did not fall after the load step: before=%.3f after=%.3f", before, after)
	}
}
