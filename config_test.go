package aequitas

import (
	"testing"
	"time"

	"aequitas/internal/wfq"
)

func minimalTraffic() []HostTraffic {
	return []HostTraffic{{
		AvgLoad: 0.5,
		Classes: []TrafficClass{{Priority: PC, Share: 1, FixedBytes: 1000}},
	}}
}

func TestConfigDefaults(t *testing.T) {
	cfg := SimConfig{Hosts: 4, Duration: 10 * time.Millisecond, Traffic: minimalTraffic()}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.LinkRate != 100e9 {
		t.Errorf("LinkRate = %d", cfg.LinkRate)
	}
	if cfg.Warmup != 2*time.Millisecond {
		t.Errorf("Warmup = %v", cfg.Warmup)
	}
	if len(cfg.QoSWeights) != 3 || cfg.QoSWeights[0] != 8 {
		t.Errorf("QoSWeights = %v", cfg.QoSWeights)
	}
	if cfg.PerClassBufferBytes != 2<<20 {
		t.Errorf("buffer = %d", cfg.PerClassBufferBytes)
	}
	if cfg.Admission.Alpha != 0.01 || cfg.Admission.Beta != 0.01 || cfg.Admission.Floor != 0.01 {
		t.Errorf("admission defaults = %+v", cfg.Admission)
	}
	if cfg.CCTarget != 10*time.Microsecond || cfg.RTOMin != 100*time.Microsecond {
		t.Errorf("transport defaults: %v %v", cfg.CCTarget, cfg.RTOMin)
	}
}

func TestConfigUnlimitedBuffer(t *testing.T) {
	cfg := SimConfig{Hosts: 4, Duration: time.Millisecond, Traffic: minimalTraffic(), PerClassBufferBytes: -1}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.PerClassBufferBytes != 0 {
		t.Errorf("negative buffer should mean unlimited, got %d", cfg.PerClassBufferBytes)
	}
}

func TestConfigRejectsTooManySLOs(t *testing.T) {
	cfg := SimConfig{
		Hosts: 4, Duration: time.Millisecond, Traffic: minimalTraffic(),
		QoSWeights: []float64{4, 1},
		SLOs: []SLO{
			{Target: time.Microsecond},
			{Target: time.Microsecond}, // no SLO allowed for the lowest class
		},
	}
	if err := cfg.applyDefaults(); err == nil {
		t.Error("SLO on the lowest class accepted")
	}
}

func TestConfigRejectsBadWeights(t *testing.T) {
	cfg := SimConfig{
		Hosts: 4, Duration: time.Millisecond, Traffic: minimalTraffic(),
		QoSWeights: []float64{1, 4}, // increasing: invalid
	}
	if err := cfg.applyDefaults(); err == nil {
		t.Error("increasing weights accepted")
	}
}

func TestSchedFactoryMapping(t *testing.T) {
	base := SimConfig{Hosts: 4, Duration: time.Millisecond, Traffic: minimalTraffic()}
	cases := []struct {
		system System
		want   string
	}{
		{SystemBaseline, "*wfq.WFQ"},
		{SystemAequitas, "*wfq.WFQ"},
		{SystemSPQ, "*wfq.SPQ"},
		{SystemQJump, "*wfq.SPQ"},
		{SystemDWRR, "*wfq.DWRR"},
		{SystemPFabric, "*wfq.PriorityQueue"},
		{SystemHoma, "*wfq.PriorityQueue"},
		{SystemD3, "*wfq.FIFO"},
		{SystemPDQ, "*wfq.FIFO"},
	}
	for _, c := range cases {
		cfg := base
		cfg.System = c.system
		if c.system == SystemAequitas {
			cfg.SLOs = []SLO{{Target: time.Microsecond}}
		}
		if err := cfg.applyDefaults(); err != nil {
			t.Fatal(err)
		}
		s := cfg.schedFactory()()
		if got := typeName(s); got != c.want {
			t.Errorf("%v scheduler = %s, want %s", c.system, got, c.want)
		}
	}
}

func typeName(s wfq.Scheduler) string {
	switch s.(type) {
	case *wfq.WFQ:
		return "*wfq.WFQ"
	case *wfq.SPQ:
		return "*wfq.SPQ"
	case *wfq.DWRR:
		return "*wfq.DWRR"
	case *wfq.PriorityQueue:
		return "*wfq.PriorityQueue"
	case *wfq.FIFO:
		return "*wfq.FIFO"
	default:
		return "unknown"
	}
}

// Terminated RPCs must count as SLO misses: the D3 run's SLO-met
// fraction must be below the fraction of traffic that survived.
func TestSLOMetCountsTerminatedAsMisses(t *testing.T) {
	cfg := SimConfig{
		System:   SystemD3,
		Hosts:    4,
		Seed:     5,
		Duration: 15 * time.Millisecond,
		Warmup:   3 * time.Millisecond,
		SLOs: []SLO{
			{Target: 500 * time.Microsecond, Percentile: 99},
			{Target: time.Millisecond, Percentile: 99},
		},
		Traffic: []HostTraffic{{
			Hosts:   []int{0, 1, 2},
			Dsts:    []int{3},
			AvgLoad: 0.8,
			Classes: []TrafficClass{
				{Priority: PC, Share: 1, FixedBytes: 64 << 10, Deadline: 100 * time.Microsecond},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated == 0 {
		t.Fatal("setup: no terminations")
	}
	// With generous latency targets, survivors all meet the SLO, so the
	// met fraction ≈ survivor fraction < 1.
	frac := res.SLOMetCountFraction[PC]
	survivors := float64(res.Completed) / float64(res.Issued)
	if frac > survivors+0.05 {
		t.Errorf("SLO-met fraction %.2f exceeds survivor fraction %.2f: terminated RPCs not counted as misses", frac, survivors)
	}
	if frac >= 0.999 {
		t.Errorf("SLO-met fraction %.2f ignores %d terminations", frac, res.Terminated)
	}
}

// The input mix reported must reflect requested classes even when
// admission downgrades heavily.
func TestInputMixReflectsRequests(t *testing.T) {
	cfg := threeNodeOverload(SystemAequitas, 20, 4)
	cfg.Duration = 30 * time.Millisecond
	cfg.Warmup = 10 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InputMix[0] < 0.6 || res.InputMix[0] > 0.8 {
		t.Errorf("input QoSh share %.2f, offered 0.7", res.InputMix[0])
	}
	if res.AdmittedMix[0] >= res.InputMix[0] {
		t.Errorf("admitted %v not below input %v under overload", res.AdmittedMix[0], res.InputMix[0])
	}
	// Everything lands somewhere: admitted mix sums to ~1.
	var sum float64
	for _, x := range res.AdmittedMix {
		sum += x
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("admitted mix sums to %v", sum)
	}
}

func TestGoodputFractionBounds(t *testing.T) {
	cfg := SimConfig{
		Hosts:    4,
		Seed:     2,
		Duration: 10 * time.Millisecond,
		Traffic: []HostTraffic{{
			AvgLoad: 0.3,
			Classes: []TrafficClass{{Priority: PC, Share: 1, FixedBytes: 16 << 10}},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputFraction <= 0.8 || res.GoodputFraction > 1 {
		t.Errorf("GoodputFraction = %v at light load", res.GoodputFraction)
	}
	if res.AvgDownlinkUtilization <= 0 || res.AvgDownlinkUtilization > 1 {
		t.Errorf("utilization = %v", res.AvgDownlinkUtilization)
	}
}
