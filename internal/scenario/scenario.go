// Package scenario is the simulation composition layer: it turns the
// monolithic "which system is this?" switch into a registry of pluggable
// SystemBuilders and turns hard-wired all-to-all traffic into pluggable
// TrafficPatterns. A run is composed as
//
//	topology × system × traffic pattern × load shape
//
// where each axis varies independently: the run loop never mentions a
// concrete system, adding a system means registering a builder here, and
// adding a traffic matrix means implementing Pattern. Load shapes live in
// internal/workload, next to the generator that consumes them.
package scenario

import (
	"fmt"
	"sort"

	"aequitas/internal/core"
	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

// Env is the per-run build context a SystemBuilder consumes: the fabric,
// the shared transport knobs, and the admission-control configuration.
type Env struct {
	Net   *netsim.Network
	Hosts int
	// Levels is the number of QoS classes (the WFQ weight count).
	Levels   int
	LineRate sim.Rate

	// Transport knobs shared by endpoint-based systems.
	RTOMin      sim.Duration
	CCTarget    sim.Duration
	DisableCC   bool
	FixedWindow float64

	// Core is the Algorithm 1 configuration, consumed by systems that run
	// admission control.
	Core core.Config

	// Clock is the admission controllers' time-and-randomness source.
	// The run wires a core.SimClock over its simulator so controller
	// draws stay on the deterministic RNG stream; a nil Clock falls back
	// to the wall clock (live embedding).
	Clock core.Clock

	// Tracer, when non-nil, is attached to every endpoint built through
	// NewEndpoint.
	Tracer *obs.Tracer

	// Attr, when non-nil, is the run's latency attributor, threaded into
	// every endpoint built through NewEndpoint (systems that bypass the
	// standard transport contribute no transport-stage attribution).
	Attr *obs.Attributor

	// Endpoints records the transport endpoints created via NewEndpoint,
	// indexed by host, so the run can register per-connection metrics
	// samplers. Entries stay nil for hosts whose system bypasses the
	// standard transport (Homa, D3, PDQ).
	Endpoints []*transport.Endpoint
}

// NewEndpoint builds host i's transport endpoint with the run's shared
// RTO floor and tracer, and records it for metrics sampling.
func (e *Env) NewEndpoint(i int, tc transport.Config) *transport.Endpoint {
	tc.RTOMin = e.RTOMin
	tc.Trace = e.Tracer
	tc.Attr = e.Attr
	ep := transport.NewEndpoint(e.Net, e.Net.Host(i), tc)
	e.Endpoints[i] = ep
	return ep
}

// SwiftEndpoint builds the standard endpoint: Swift delay-based
// congestion control, or a fixed window when congestion control is
// disabled.
func (e *Env) SwiftEndpoint(i int) *transport.Endpoint {
	tc := transport.Config{}
	if e.DisableCC {
		w := e.FixedWindow
		tc.NewCC = func() transport.CC { return transport.Fixed{W: w} }
	} else {
		target := e.CCTarget
		tc.NewCC = func() transport.CC { return transport.SwiftDefaults(target) }
	}
	return e.NewEndpoint(i, tc)
}

// HostStack is one host's wiring as produced by a SystemBuilder.
type HostStack struct {
	// Sender carries this host's RPC payloads.
	Sender rpc.Sender
	// Admitter decides admission for this host's RPCs; nil means admit
	// everything on the requested class.
	Admitter rpc.Admitter
	// Controller is non-nil when the host runs Algorithm 1; the run
	// samples it for probes and metrics.
	Controller *core.Controller
}

// SystemBuilder constructs one end-to-end system. Builders are stateless
// and registered once; Build is called per run to create the instance
// holding any cross-host state (e.g. a deadline fabric).
type SystemBuilder interface {
	// Scheduler returns the per-port switch scheduler factory this system
	// deploys in the fabric.
	Scheduler(weights []float64, perClassBufferBytes int) netsim.SchedulerFactory
	// Build creates the per-run instance; called once before any host.
	Build(env *Env) (Instance, error)
}

// Instance wires one run's hosts and exposes the system's end-of-run
// accounting.
type Instance interface {
	// Host builds host i's sender and admitter.
	Host(env *Env, i int) (HostStack, error)
	// Terminated reports RPCs the system abandoned (deadline-driven
	// baselines); 0 for everything else.
	Terminated() int64
}

var registry = map[string]SystemBuilder{}

// Register installs a SystemBuilder under a unique name. It panics on
// duplicates: two systems claiming one name is a programming error.
func Register(name string, b SystemBuilder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate system %q", name))
	}
	registry[name] = b
}

// Lookup returns the builder registered under name.
func Lookup(name string) (SystemBuilder, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown system %q", name)
	}
	return b, nil
}

// Names returns the registered system names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
