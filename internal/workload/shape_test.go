package workload

import (
	"math"
	"testing"

	"aequitas/internal/qos"
	"aequitas/internal/rpc"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

func TestShapeFactors(t *testing.T) {
	ms := sim.Millisecond
	cases := []struct {
		name  string
		shape LoadShape
		t     sim.Time
		want  float64
	}{
		{"constant", Constant{}, 5 * ms, 1},
		{"step before", Step{At: 10 * ms, Factor: 2}, 5 * ms, 1},
		{"step after", Step{At: 10 * ms, Factor: 2}, 15 * ms, 2},
		{"ramp before", Ramp{From: 10 * ms, To: 20 * ms, Factor: 3}, 5 * ms, 1},
		{"ramp mid", Ramp{From: 10 * ms, To: 20 * ms, Factor: 3}, 15 * ms, 2},
		{"ramp after", Ramp{From: 10 * ms, To: 20 * ms, Factor: 3}, 25 * ms, 3},
		{"onoff on", OnOff{Period: 10 * ms, Duty: 0.5}, 3 * ms, 1},
		{"onoff off", OnOff{Period: 10 * ms, Duty: 0.5}, 7 * ms, 0},
		{"onoff second period", OnOff{Period: 10 * ms, Duty: 0.5}, 12 * ms, 1},
	}
	for _, c := range cases {
		if f, _ := c.shape.FactorAt(c.t); math.Abs(f-c.want) > 1e-9 {
			t.Errorf("%s: factor(%v) = %v, want %v", c.name, c.t, f, c.want)
		}
	}
}

func TestOnOffResumeTime(t *testing.T) {
	sh := OnOff{Period: 10 * sim.Millisecond, Duty: 0.3}
	f, until := sh.FactorAt(7 * sim.Millisecond)
	if f != 0 {
		t.Fatalf("factor = %v in off phase", f)
	}
	if until != 10*sim.Millisecond {
		t.Errorf("resume at %v, want next period start", until)
	}
}

// shapeSpec builds a one-class spec against a null transport.
func shapeSpec(dsts []int) Spec {
	return Spec{
		Rate: 100e9, Load: 0.5,
		Classes: []ClassSpec{{Priority: qos.PC, Share: 1, Sizes: Fixed{Bytes: 1 << 20}}},
		Dsts:    dsts,
	}
}

// countSender swallows messages; issue counting happens via Stack.Stats.
type countSender struct{}

func (countSender) Send(*sim.Simulator, *transport.Message) {}

func TestStepShapeScalesArrivals(t *testing.T) {
	// Count arrivals in the two halves of a run with a 4x step at the
	// midpoint; the second half must see ~4x the arrivals.
	counts := func(shape LoadShape) (first, second int) {
		s := sim.New(1)
		st := rpc.NewStack(countSender{}, nil)
		spec := shapeSpec([]int{1})
		spec.Shape = shape
		g, err := NewGenerator(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		half := 50 * sim.Millisecond
		var a, b int
		prev := st.Stats.Issued
		g.Start(s)
		s.AtFunc(half, func(*sim.Simulator) { a = int(st.Stats.Issued - prev) })
		s.RunUntil(2 * half)
		b = int(st.Stats.Issued) - a
		return a, b
	}
	a, b := counts(Step{At: 50 * sim.Millisecond, Factor: 4})
	if a == 0 || b == 0 {
		t.Fatalf("no arrivals: %d / %d", a, b)
	}
	ratio := float64(b) / float64(a)
	if ratio < 3 || ratio > 5 {
		t.Errorf("post-step arrival ratio %.2f, want ~4 (%d vs %d)", ratio, b, a)
	}
}

func TestOnOffShapeSilencesOffPhase(t *testing.T) {
	s := sim.New(1)
	st := rpc.NewStack(countSender{}, nil)
	spec := shapeSpec([]int{1})
	spec.Shape = OnOff{Period: 10 * sim.Millisecond, Duty: 0.5}
	g, err := NewGenerator(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(s)
	// Sample issue counts at phase boundaries: none may grow during off
	// phases.
	var during []int64
	for k := 0; k < 8; k++ {
		at := sim.Time(k) * 5 * sim.Millisecond
		s.AtFunc(at, func(*sim.Simulator) { during = append(during, st.Stats.Issued) })
	}
	s.RunUntil(40 * sim.Millisecond)
	for k := 1; k+1 < len(during); k += 2 {
		// during[k] is an off-phase start (5ms, 15ms, ...); the count at
		// the next on-phase start must equal it.
		if during[k+1] != during[k] {
			t.Errorf("arrivals grew during off phase %d: %d -> %d", k/2, during[k], during[k+1])
		}
	}
	if during[len(during)-1] == 0 {
		t.Error("no arrivals at all")
	}
}

func TestExcludeSelfMatchesMaterialisedOthers(t *testing.T) {
	// The shared-slice self-excluding draw must replay the exact RNG
	// sequence and destination mapping of a per-sender "everyone but me"
	// slice.
	n := 9
	self := 4
	others := make([]int, 0, n-1)
	all := make([]int, n)
	for i := 0; i < n; i++ {
		all[i] = i
		if i != self {
			others = append(others, i)
		}
	}
	draw := func(spec Spec) []int {
		s := sim.New(42)
		st := rpc.NewStack(countSender{}, nil)
		g, err := NewGenerator(st, spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 200)
		for i := range out {
			out[i] = g.drawDst(s)
		}
		return out
	}
	a := draw(shapeSpec(others))
	specB := shapeSpec(all)
	specB.ExcludeSelf = true
	specB.Self = self
	b := draw(specB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: materialised %d, shared-slice %d", i, a[i], b[i])
		}
	}
}

func TestWeightedDstsFollowWeights(t *testing.T) {
	spec := shapeSpec([]int{1, 2, 3})
	spec.DstWeights = []float64{0.7, 0.2, 0.1}
	s := sim.New(7)
	st := rpc.NewStack(countSender{}, nil)
	g, err := NewGenerator(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.drawDst(s)]++
	}
	for i, want := range spec.DstWeights {
		got := float64(counts[spec.Dsts[i]]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("dst %d share %.3f, want %.2f", spec.Dsts[i], got, want)
		}
	}
}

func TestWeightedExcludeSelfNeverPicksSelf(t *testing.T) {
	spec := shapeSpec([]int{0, 1, 2})
	spec.DstWeights = []float64{0.5, 0.4, 0.1}
	spec.ExcludeSelf = true
	spec.Self = 0
	s := sim.New(7)
	st := rpc.NewStack(countSender{}, nil)
	g, err := NewGenerator(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if d := g.drawDst(s); d == 0 {
			t.Fatal("picked excluded self")
		}
	}
}

func TestSpecRejectsBadWeightsAndSelf(t *testing.T) {
	bad := shapeSpec([]int{1, 2})
	bad.DstWeights = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched weight length accepted")
	}
	neg := shapeSpec([]int{1, 2})
	neg.DstWeights = []float64{-1, 2}
	if err := neg.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	lone := shapeSpec([]int{3})
	lone.ExcludeSelf = true
	lone.Self = 3
	if err := lone.Validate(); err == nil {
		t.Error("self-only destination set accepted")
	}
}
