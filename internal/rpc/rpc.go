// Package rpc implements the RPC stack that sits between applications and
// the transport: RPC issue with priority annotation, the Phase-1 mapping
// of priorities to QoS classes, the admission-control hook where Aequitas
// plugs in, and RPC network-latency (RNL) measurement as defined in
// Appendix A — t0 when the first byte is handed to the transport, t1 when
// the last byte is acknowledged.
package rpc

import (
	"aequitas/internal/netsim"
	"aequitas/internal/obs"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
)

// RPC is one remote procedure call as seen by the network: the payload
// direction only (the paper measures the payload side, which dominates
// bytes 200:1 to 400:1).
type RPC struct {
	ID       uint64
	Dst      int
	Priority qos.Priority
	Bytes    int64

	// QoSRequested is the Phase-1 mapping of the priority; QoSRun is the
	// class the RPC was actually issued on after admission control.
	QoSRequested qos.Class
	QoSRun       qos.Class
	// Downgraded reports whether admission control demoted the RPC to
	// the lowest class; it is the explicit notification of Algorithm 1
	// lines 10-11.
	Downgraded bool

	IssueTime    sim.Time
	CompleteTime sim.Time
	// RNL is the measured RPC network latency (t1 − t0).
	RNL sim.Duration
	// SizeMTUs is the RPC size in MTUs, the unit of Algorithm 1's
	// normalised SLO and size-proportional decrease.
	SizeMTUs int64
	// PAdmit is the admit probability in force for the requested
	// (dst, class) channel when the RPC was issued. It is recorded only
	// when the stack is tracing or RecordPAdmit is set (1.0 for admitters
	// without a probability).
	PAdmit float64

	// Deadline optionally propagates to deadline-aware baselines.
	Deadline sim.Time
}

// Decision is an admission-control verdict for one RPC.
type Decision struct {
	// Class is the QoS class to run the RPC on.
	Class qos.Class
	// Downgraded reports that Class is a demotion from the request.
	Downgraded bool
	// Drop rejects the RPC outright instead of downgrading. Aequitas
	// never does this (downgrade-not-drop is a core design choice, §5);
	// it exists for the drop-based ablation.
	Drop bool
}

// Admitter decides, at RPC issue, which QoS class an RPC runs on and
// learns from completed RPC latency measurements. The Aequitas controller
// implements this; PassThrough is the no-admission-control baseline.
//
// The interface is time-source-free: an admitter that needs timestamps
// or randomness brings its own clock (the core controller's Clock), so
// the same implementation serves both the discrete-event simulator and
// live wall-clock traffic.
type Admitter interface {
	// Admit returns the verdict for an RPC of sizeMTUs toward dst.
	Admit(dst int, requested qos.Class, sizeMTUs int64) Decision
	// Observe feeds back one completed RPC's measured RNL on the class
	// it actually ran on.
	Observe(dst int, run qos.Class, rnl sim.Duration, sizeMTUs int64)
}

// ProbabilityReporter is implemented by admitters that can report the
// admit probability they would apply to a (dst, class) channel; the
// Aequitas controller implements it. The stack uses it to stamp RPCs and
// lifecycle trace events with the probability behind each decision.
type ProbabilityReporter interface {
	AdmitProbability(dst int, class qos.Class) float64
}

// PassThrough admits every RPC on its requested class: the "w/o Aequitas"
// configuration.
type PassThrough struct{}

// Admit implements Admitter.
func (PassThrough) Admit(_ int, requested qos.Class, _ int64) Decision {
	return Decision{Class: requested}
}

// Observe implements Admitter.
func (PassThrough) Observe(int, qos.Class, sim.Duration, int64) {}

// Stats counts per-stack RPC activity.
type Stats struct {
	Issued     int64
	Completed  int64
	Downgraded int64
	Dropped    int64

	// Robustness counters, populated only under a RetryPolicy or fault
	// plan (the plain issue path never touches them).
	TimedOut  int64 // per-attempt timeouts observed
	Retried   int64 // retry attempts actually sent
	Hedged    int64 // hedged duplicates sent
	HedgeWins int64 // completions won by the hedged duplicate
	Failed    int64 // RPCs abandoned after the retry budget
	CrashLost int64 // in-flight RPCs lost when this host crashed
	NotIssued int64 // application sends discarded while the host was down
}

// Sender is the transport-layer service the RPC stack requires: reliable
// message delivery with a completion callback. transport.Endpoint is the
// standard implementation; baseline systems (Homa, D3, PDQ, QJump)
// substitute their own.
type Sender interface {
	Send(s *sim.Simulator, m *transport.Message)
}

// Stack is one host's RPC layer.
type Stack struct {
	ep       Sender
	admitter Admitter
	// OnComplete, when set, observes every completed RPC (for experiment
	// metrics).
	OnComplete func(s *sim.Simulator, r *RPC)
	Stats      Stats

	// Trace, when set, receives issue/admit/complete lifecycle events;
	// Src identifies this stack's host in those events. RecordPAdmit
	// additionally stamps RPC.PAdmit even without a tracer (for the
	// per-RPC CSV trace). All default off so the issue path stays free of
	// observability work.
	Trace        *obs.Tracer
	Src          int
	RecordPAdmit bool
	// Attr, when set, receives issue/admit/drop/complete stamps for
	// latency attribution. Its methods are nil-receiver no-ops, so the
	// calls below stay free when attribution is off.
	Attr *obs.Attributor

	// Retry enables client-side timeouts, retries, and hedging.
	// TrackInflight forces per-RPC in-flight tracking even without a
	// retry policy, so faults (host crashes, peer resets) can fail
	// in-flight RPCs and keep Outstanding() accounting exact; the run
	// sets it whenever a fault plan is active. When both are zero the
	// issue path is exactly the pre-fault code with no extra state.
	Retry         RetryPolicy
	TrackInflight bool

	nextID uint64
	// outstanding counts incomplete RPCs per (destination host, class),
	// the quantity behind Figure 13's per-switch-port outstanding RPCs.
	outstanding map[outKey]int
	// inflight tracks issued-but-incomplete RPCs by id under the robust
	// issue path; allocated lazily on first tracked issue.
	inflight map[uint64]*inflightRPC
	// down marks a crashed host: Issue discards RPCs until Restart.
	down bool
}

type outKey struct {
	dst   int
	class qos.Class
}

// NewStack attaches an RPC stack to a transport sender. admitter may be
// nil, meaning PassThrough.
func NewStack(ep Sender, admitter Admitter) *Stack {
	if admitter == nil {
		admitter = PassThrough{}
	}
	return &Stack{ep: ep, admitter: admitter, outstanding: make(map[outKey]int)}
}

// Endpoint returns the underlying transport sender.
func (st *Stack) Endpoint() Sender { return st.ep }

// Admitter returns the stack's admission controller.
func (st *Stack) Admitter() Admitter { return st.admitter }

// Outstanding reports the number of incomplete RPCs toward dst across all
// classes.
func (st *Stack) Outstanding(dst int) int {
	total := 0
	for k, n := range st.outstanding {
		if k.dst == dst {
			total += n
		}
	}
	return total
}

// OutstandingClass reports the number of incomplete RPCs toward dst that
// are running on class c.
func (st *Stack) OutstandingClass(dst int, c qos.Class) int {
	return st.outstanding[outKey{dst, c}]
}

// ForEachOutstanding calls f once per (destination, class) pair with a
// non-zero count of incomplete RPCs. Periodic samplers use this to
// accumulate per-destination totals in one pass over the live entries
// instead of probing every (dst, class) combination individually.
func (st *Stack) ForEachOutstanding(f func(dst int, c qos.Class, n int)) {
	for k, n := range st.outstanding {
		if n != 0 {
			f(k.dst, k.class, n)
		}
	}
}

// Issue sends one RPC: maps its priority to a QoS class (Phase 1), asks
// the admission controller for the class to run on (Phase 2), hands the
// message to the transport, and measures RNL on completion.
func (st *Stack) Issue(s *sim.Simulator, r *RPC) {
	if st.down {
		// Crashed host: the application's send is lost. The generator's
		// offered-byte accounting still advances, so goodput availability
		// reflects the outage.
		st.Stats.NotIssued++
		return
	}
	st.nextID++
	if r.ID == 0 {
		r.ID = st.nextID
	}
	r.QoSRequested = qos.MapPriorityToQoS(r.Priority)
	r.SizeMTUs = netsim.MTUsFor(r.Bytes)
	r.IssueTime = s.Now()

	if st.Trace != nil {
		st.Trace.Issue(s.Now(), r.ID, st.Src, r.Dst, int(r.Priority), int(r.QoSRequested), r.Bytes)
	}
	st.Attr.Issue(s.Now(), st.Src, r.ID)
	d := st.admitter.Admit(r.Dst, r.QoSRequested, r.SizeMTUs)
	st.Stats.Issued++
	if st.Trace != nil || st.RecordPAdmit {
		r.PAdmit = 1
		if pr, ok := st.admitter.(ProbabilityReporter); ok {
			r.PAdmit = pr.AdmitProbability(r.Dst, r.QoSRequested)
		}
	}
	if st.Trace != nil {
		dec := obs.DecisionAdmit
		switch {
		case d.Drop:
			dec = obs.DecisionDrop
		case d.Downgraded:
			dec = obs.DecisionDowngrade
		}
		st.Trace.Admit(s.Now(), r.ID, st.Src, r.Dst, int(d.Class), dec, r.PAdmit)
	}
	st.Attr.Admit(s.Now(), st.Src, r.ID)
	if d.Drop {
		st.Stats.Dropped++
		st.Attr.Drop(st.Src, r.ID)
		return
	}
	r.QoSRun = d.Class
	r.Downgraded = d.Downgraded
	if d.Downgraded {
		st.Stats.Downgraded++
	}
	st.outstanding[outKey{r.Dst, r.QoSRun}]++

	if st.tracking() {
		st.issueTracked(s, r)
		return
	}
	st.ep.Send(s, &transport.Message{
		ID:       r.ID,
		Dst:      r.Dst,
		Class:    r.QoSRun,
		Bytes:    r.Bytes,
		Deadline: r.Deadline,
		OnComplete: func(s *sim.Simulator, m *transport.Message) {
			r.CompleteTime = s.Now()
			r.RNL = r.CompleteTime - m.SubmitTime
			st.outstanding[outKey{r.Dst, r.QoSRun}]--
			st.Stats.Completed++
			st.admitter.Observe(r.Dst, r.QoSRun, r.RNL, r.SizeMTUs)
			if st.Trace != nil {
				st.Trace.Complete(s.Now(), r.ID, st.Src, r.Dst, int(r.QoSRun), r.Bytes, r.RNL)
			}
			st.Attr.Complete(s.Now(), r.ID, st.Src, r.Dst, int(r.QoSRun), r.RNL)
			if st.OnComplete != nil {
				st.OnComplete(s, r)
			}
		},
	})
}
