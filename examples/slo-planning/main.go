// SLO planning: the operator-facing use of the analytical model (§4.2).
// Given WFQ weights and a traffic profile (average load µ, burst load ρ),
// the network-calculus bounds answer: how much traffic can run on QoSh at
// a given delay bound, where does priority inversion begin, and what
// admitted share is guaranteed regardless of competition?
//
// This example runs no packet simulation — it is the cmd/admissible
// workflow as library calls.
//
// Run with: go run ./examples/slo-planning
package main

import (
	"fmt"
	"log"

	"aequitas"
)

func main() {
	const (
		phi = 4.0 // QoSh:QoSl weight ratio
		rho = 1.2 // burst load
		mu  = 0.8 // average load
	)

	fmt.Printf("WFQ delay-bound profile (phi=%.0f:1, mu=%.1f, rho=%.1f)\n\n", phi, mu, rho)
	fmt.Printf("%-12s %-12s %-12s\n", "QoSh-share", "QoSh bound", "QoSl bound")
	for x := 0.1; x < 1.0; x += 0.1 {
		fmt.Printf("%-12.0f %-12.3f %-12.3f\n", x*100,
			aequitas.DelayBoundHigh(phi, rho, mu, x),
			aequitas.DelayBoundLow(phi, rho, mu, x))
	}

	fmt.Println()
	for _, bound := range []float64{0.02, 0.05, 0.1, 0.2} {
		share := aequitas.MaxShareForSLO(phi, rho, mu, bound)
		fmt.Printf("delay bound %.2f of period -> admit at most %.0f%% on QoSh\n", bound, share*100)
	}

	fmt.Println()
	weights := []float64{8, 4, 1}
	boundary, err := aequitas.AdmissibleShare(weights, []float64{2.0 / 3, 1.0 / 3}, 1.4, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-QoS (8:4:1, QoSm:QoSl=2:1, rho=1.4): no priority inversion up to QoSh-share %.0f%%\n", boundary*100)

	boundary50, err := aequitas.AdmissibleShare([]float64{50, 4, 1}, []float64{2.0 / 3, 1.0 / 3}, 1.4, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raising the QoSh weight to 50 moves the boundary to %.0f%% —\n", boundary50*100)
	fmt.Println("at the cost of a worse QoSm bound (Figure 9b).")

	fmt.Println()
	for i, name := range []string{"QoSh", "QoSm", "QoSl"} {
		g := aequitas.GuaranteedShare(weights, i, 0.8, 1.4)
		fmt.Printf("guaranteed admitted share on %s: >= %.1f%% of line rate (S5.2 bound)\n", name, g*100)
	}
}
