package aequitas

import (
	"testing"
	"time"
)

// smallCluster builds a moderate all-to-all workload for exercising the
// comparison systems end to end.
func smallCluster(system System, seed int64) SimConfig {
	return SimConfig{
		System:     system,
		Hosts:      6,
		Seed:       seed,
		Duration:   20 * time.Millisecond,
		Warmup:     5 * time.Millisecond,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []SLO{
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10},
			{Target: 100 * time.Microsecond, ReferenceBytes: 32 << 10},
		},
		Traffic: []HostTraffic{{
			AvgLoad:   0.5,
			BurstLoad: 0.9,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.5, FixedBytes: 16 << 10, Deadline: 250 * time.Microsecond},
				{Priority: NC, Share: 0.3, FixedBytes: 32 << 10, Deadline: 300 * time.Microsecond},
				{Priority: BE, Share: 0.2, FixedBytes: 64 << 10},
			},
		}},
	}
}

func TestBaselineSystemsDeliver(t *testing.T) {
	for _, system := range []System{SystemPFabric, SystemQJump, SystemD3, SystemPDQ, SystemHoma, SystemDWRR} {
		t.Run(system.String(), func(t *testing.T) {
			res, err := Run(smallCluster(system, 11))
			if err != nil {
				t.Fatal(err)
			}
			if res.Issued == 0 {
				t.Fatal("no RPCs issued")
			}
			frac := float64(res.Completed) / float64(res.Issued)
			// Deadline systems may terminate flows; everyone else should
			// complete nearly everything at 0.5 load.
			min := 0.9
			if system == SystemD3 || system == SystemPDQ {
				min = 0.5
			}
			if frac < min {
				t.Errorf("completed %.2f of issued RPCs (%d/%d)", frac, res.Completed, res.Issued)
			}
			if res.RNLQuantileUS(High, 0.5) <= 0 {
				t.Error("no QoSh latency samples")
			}
			for pr, f := range res.SLOMetBytesFraction {
				if f < 0 || f > 1 {
					t.Errorf("SLO-met fraction for %v = %v", pr, f)
				}
			}
		})
	}
}

// pFabric's defining behaviour: small RPCs beat large RPCs on tail
// latency because packets carry remaining-size priority.
func TestPFabricFavorsSmallRPCs(t *testing.T) {
	cfg := SimConfig{
		System:   SystemPFabric,
		Hosts:    4,
		Seed:     3,
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Traffic: []HostTraffic{{
			AvgLoad: 0.9,
			Classes: []TrafficClass{
				// Small RPCs marked BE, large marked PC: pFabric ignores
				// priority and favours size.
				{Priority: BE, Share: 0.3, FixedBytes: 2 << 10},
				{Priority: PC, Share: 0.7, FixedBytes: 256 << 10},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := res.RNLPriority[BE]
	large := res.RNLPriority[PC]
	if small.N == 0 || large.N == 0 {
		t.Fatal("missing samples")
	}
	// Normalised per byte, small RPCs should be served far better.
	smallPerKB := small.P99US / 2
	largePerKB := large.P99US / 256
	if smallPerKB > largePerKB*2 {
		t.Errorf("pFabric did not favour small RPCs: small %.2fus/KB large %.2fus/KB", smallPerKB, largePerKB)
	}
}

// D3 and PDQ terminate RPCs whose deadlines become infeasible under
// overload, sacrificing utilisation.
func TestDeadlineSystemsTerminate(t *testing.T) {
	for _, system := range []System{SystemD3, SystemPDQ} {
		t.Run(system.String(), func(t *testing.T) {
			cfg := SimConfig{
				System:   system,
				Hosts:    4,
				Seed:     5,
				Duration: 20 * time.Millisecond,
				Warmup:   5 * time.Millisecond,
				Traffic: []HostTraffic{{
					Hosts:   []int{0, 1, 2},
					Dsts:    []int{3},
					AvgLoad: 0.8, // 2.4x overload at the shared downlink
					Classes: []TrafficClass{
						{Priority: PC, Share: 1, FixedBytes: 64 << 10, Deadline: 100 * time.Microsecond},
					},
				}},
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Terminated == 0 {
				t.Error("no flows terminated under infeasible deadlines")
			}
			if res.Completed == 0 {
				t.Error("nothing completed either")
			}
		})
	}
}

// QJump rate-limits the high class: its latency stays tight even under
// fan-in, at the cost of throughput.
func TestQJumpBoundsHighClassLatency(t *testing.T) {
	cfg := SimConfig{
		System:   SystemQJump,
		Hosts:    4,
		Seed:     6,
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Traffic: []HostTraffic{{
			Hosts:   []int{0, 1, 2},
			Dsts:    []int{3},
			AvgLoad: 0.9,
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.1, FixedBytes: 4 << 10},
				{Priority: BE, Share: 0.9, FixedBytes: 64 << 10},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi := res.RNLQuantileUS(High, 0.99)
	lo := res.RNLQuantileUS(Low, 0.99)
	if hi <= 0 || lo <= 0 {
		t.Fatal("missing samples")
	}
	if hi > lo {
		t.Errorf("QJump high class p99 %.1fus worse than best-effort %.1fus", hi, lo)
	}
}

// Homa under fan-in: receiver-driven grants keep the fabric queue short
// and small messages finish fast. The aggregate fan-in load stays below
// the downlink capacity — under *persistent* overload SRPT would
// (correctly) starve the large class outright.
func TestHomaFanIn(t *testing.T) {
	cfg := SimConfig{
		System:   SystemHoma,
		Hosts:    5,
		Seed:     8,
		Duration: 20 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
		Traffic: []HostTraffic{{
			Hosts:   []int{0, 1, 2, 3},
			Dsts:    []int{4},
			AvgLoad: 0.2, // 0.8 aggregate at the shared downlink
			Classes: []TrafficClass{
				{Priority: PC, Share: 0.3, FixedBytes: 4 << 10},
				{Priority: NC, Share: 0.7, FixedBytes: 128 << 10},
			},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Completed)/float64(res.Issued) < 0.9 {
		t.Fatalf("completed %d of %d", res.Completed, res.Issued)
	}
	small := res.RNLPriority[PC].P99US
	large := res.RNLPriority[NC].P99US
	if small >= large {
		t.Errorf("Homa SRPT did not favour small messages: %0.1fus vs %0.1fus", small, large)
	}
}
