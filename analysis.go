package aequitas

import (
	"fmt"
	"time"

	"aequitas/internal/calculus"
	"aequitas/internal/qos"
)

// DelayBoundHigh returns the worst-case normalized WFQ delay of the high
// class in the 2-QoS burst model of §4.1 (Equation 1): phi is the
// QoSh:QoSl weight ratio, rho the burst load (>1), mu the average load,
// and x the QoSh-share of the arriving traffic. Delays are fractions of
// the arrival period.
func DelayBoundHigh(phi, rho, mu, x float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.DelayHigh(x)
}

// DelayBoundLow is the low-class counterpart (Equation 8).
func DelayBoundLow(phi, rho, mu, x float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.DelayLow(x)
}

// WorstCaseDelays generalises the bounds to any number of QoS classes via
// the fluid WFQ model: given per-class weights and a QoS-mix, it returns
// each class's worst-case normalized delay under the Figure 7 burst
// pattern.
func WorstCaseDelays(weights, mix []float64, rho, mu float64) ([]float64, error) {
	return calculus.WorstCaseDelays(weights, mix, rho, mu)
}

// QueueingBoundsUS converts the fluid-model worst-case delays into
// absolute per-class fabric-queueing bounds in microseconds, by scaling
// the normalized delays of WorstCaseDelays by the burst/arrival period.
// These are the reference values the online auditor (ObsConfig.Audit)
// checks observed queueing against.
func QueueingBoundsUS(weights, mix []float64, rho, mu float64, period time.Duration) ([]float64, error) {
	d, err := calculus.WorstCaseDelays(weights, mix, rho, mu)
	if err != nil {
		return nil, err
	}
	periodUS := float64(period) / float64(time.Microsecond)
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = v * periodUS
	}
	return out, nil
}

// deriveAuditBounds computes the auditor's per-class queueing bounds from
// the first Traffic entry: its class shares (mapped through the Phase-1
// priority→QoS mapping and clamped to the configured levels) form the
// mix, and its AvgLoad/BurstLoad supply µ and ρ. The derivation assumes
// every switch port sees that entry's load, which holds for the uniform
// all-to-all pattern; other patterns need explicit Obs.AuditBoundsUS.
func (c *SimConfig) deriveAuditBounds() ([]float64, error) {
	if len(c.Traffic) == 0 {
		return nil, fmt.Errorf("no traffic to derive bounds from; set Obs.AuditBoundsUS")
	}
	ht := &c.Traffic[0]
	levels := c.levels()
	mix := make([]float64, levels)
	total := 0.0
	for _, tc := range ht.Classes {
		cl := int(qos.MapPriorityToQoS(tc.Priority))
		if cl >= levels {
			cl = levels - 1
		}
		mix[cl] += tc.Share
		total += tc.Share
	}
	if total <= 0 {
		return nil, fmt.Errorf("traffic class shares sum to %g; set Obs.AuditBoundsUS", total)
	}
	for i := range mix {
		mix[i] /= total
	}
	rho, mu := ht.BurstLoad, ht.AvgLoad
	if !(mu > 0 && rho > mu) {
		return nil, fmt.Errorf("bound derivation needs BurstLoad > AvgLoad > 0 (got rho=%g, mu=%g); set Obs.AuditBoundsUS", rho, mu)
	}
	return QueueingBoundsUS(c.QoSWeights, mix, rho, mu, c.BurstPeriod)
}

// AdmissibleShare returns the largest contiguous QoSh-share x such that
// no priority inversion occurs for any share ≤ x (Equation 3), with the
// non-QoSh remainder of the mix split by restMix (which must sum to 1
// across the remaining classes).
func AdmissibleShare(weights []float64, restMix []float64, rho, mu float64) (float64, error) {
	mixAt := func(x float64) []float64 {
		out := make([]float64, len(weights))
		out[0] = x
		for i, r := range restMix {
			out[i+1] = (1 - x) * r
		}
		return out
	}
	return calculus.AdmissibleBoundary(weights, mixAt, rho, mu, 512)
}

// MaxShareForSLO returns the largest QoSh-share admissible at the given
// normalized delay bound in the 2-QoS model — the knob an operator uses
// to pick SLOs from latency-versus-mix profiles (§4.2).
func MaxShareForSLO(phi, rho, mu, bound float64) float64 {
	return calculus.TwoQoS{Phi: phi, Rho: rho, Mu: mu}.MaxShareForDelay(bound)
}

// GuaranteedShare is the §5.2 lower bound on traffic admitted on class i
// as a fraction of line rate: (φi/Σφ)·(µ/ρ).
func GuaranteedShare(weights []float64, class int, mu, rho float64) float64 {
	return calculus.GuaranteedShare(weights, class, mu, rho)
}
