package wfq

import (
	"math"
	"testing"
	"testing/quick"
)

// testItem implements Item.
type testItem struct {
	size    int
	class   int
	urgency int64
	id      int
}

func (t *testItem) SizeBytes() int { return t.size }
func (t *testItem) QoS() int       { return t.class }
func (t *testItem) Urgency() int64 { return t.urgency }

func drainShares(s Scheduler, classes int, n int) []float64 {
	served := make([]float64, classes)
	var total float64
	for i := 0; i < n; i++ {
		it := s.Dequeue()
		if it == nil {
			break
		}
		served[it.QoS()] += float64(it.SizeBytes())
		total += float64(it.SizeBytes())
	}
	for i := range served {
		served[i] /= total
	}
	return served
}

// fill enqueues count packets per class of the given size.
func fill(s Scheduler, classes, count, size int) (dropped int) {
	for i := 0; i < count; i++ {
		for c := 0; c < classes; c++ {
			dropped += len(s.Enqueue(&testItem{size: size, class: c}))
		}
	}
	return dropped
}

func TestWFQWeightedShares(t *testing.T) {
	// With all classes persistently backlogged, the long-run service
	// shares must match the weights 4:1.
	w := NewWFQ([]float64{4, 1}, 0)
	fill(w, 2, 1000, 1500)
	shares := drainShares(w, 2, 500)
	if math.Abs(shares[0]-0.8) > 0.02 || math.Abs(shares[1]-0.2) > 0.02 {
		t.Errorf("WFQ shares = %v, want ~[0.8 0.2]", shares)
	}
}

func TestWFQThreeClassShares(t *testing.T) {
	w := NewWFQ([]float64{8, 4, 1}, 0)
	fill(w, 3, 1000, 1500)
	shares := drainShares(w, 3, 1300)
	want := []float64{8.0 / 13, 4.0 / 13, 1.0 / 13}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 0.02 {
			t.Errorf("class %d share = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestWFQWorkConserving(t *testing.T) {
	// A lone backlogged class gets the full link even with tiny weight.
	w := NewWFQ([]float64{8, 4, 1}, 0)
	for i := 0; i < 10; i++ {
		w.Enqueue(&testItem{size: 100, class: 2})
	}
	for i := 0; i < 10; i++ {
		it := w.Dequeue()
		if it == nil || it.QoS() != 2 {
			t.Fatalf("dequeue %d = %v", i, it)
		}
	}
	if w.Dequeue() != nil {
		t.Error("expected empty")
	}
}

func TestWFQFIFOWithinClass(t *testing.T) {
	w := NewWFQ([]float64{1}, 0)
	for i := 0; i < 5; i++ {
		w.Enqueue(&testItem{size: 100, class: 0, id: i})
	}
	for i := 0; i < 5; i++ {
		it := w.Dequeue().(*testItem)
		if it.id != i {
			t.Fatalf("out of order: got %d at %d", it.id, i)
		}
	}
}

func TestWFQDropTail(t *testing.T) {
	w := NewWFQ([]float64{4, 1}, 1000)
	var dropped int
	for i := 0; i < 20; i++ {
		dropped += len(w.Enqueue(&testItem{size: 300, class: 0}))
	}
	if dropped != 17 { // 3 × 300 = 900 fit; the rest drop
		t.Errorf("dropped %d, want 17", dropped)
	}
	if w.BytesFor(0) != 900 {
		t.Errorf("BytesFor(0) = %d", w.BytesFor(0))
	}
	// The other class has its own capacity.
	if got := w.Enqueue(&testItem{size: 300, class: 1}); len(got) != 0 {
		t.Error("independent class capacity violated")
	}
}

func TestWFQVirtualTimeResetWhenIdle(t *testing.T) {
	w := NewWFQ([]float64{4, 1}, 0)
	fill(w, 2, 10, 1500)
	for w.Dequeue() != nil {
	}
	// After going idle, a fresh burst must behave like a fresh system:
	// 4:1 shares again (tags reset rather than carrying stale credit).
	fill(w, 2, 1000, 1500)
	shares := drainShares(w, 2, 500)
	if math.Abs(shares[0]-0.8) > 0.02 {
		t.Errorf("post-idle shares = %v", shares)
	}
}

func TestWFQOutOfRangeClassGoesLowest(t *testing.T) {
	w := NewWFQ([]float64{4, 1}, 0)
	w.Enqueue(&testItem{size: 100, class: 7})
	if got := w.BytesFor(1); got != 100 {
		t.Errorf("out-of-range class bytes = %d, want 100 in lowest", got)
	}
}

func TestDWRRWeightedShares(t *testing.T) {
	d := NewDWRR([]float64{4, 1}, 1500, 0)
	fill(d, 2, 2000, 1500)
	shares := drainShares(d, 2, 1000)
	if math.Abs(shares[0]-0.8) > 0.02 || math.Abs(shares[1]-0.2) > 0.02 {
		t.Errorf("DWRR shares = %v, want ~[0.8 0.2]", shares)
	}
}

func TestDWRRVariablePacketSizes(t *testing.T) {
	// Byte-level fairness: class 0 sends 300 B packets, class 1 sends
	// 1500 B packets, equal weights → equal byte shares.
	d := NewDWRR([]float64{1, 1}, 1500, 0)
	for i := 0; i < 5000; i++ {
		d.Enqueue(&testItem{size: 300, class: 0})
	}
	for i := 0; i < 1000; i++ {
		d.Enqueue(&testItem{size: 1500, class: 1})
	}
	served := make([]float64, 2)
	var total float64
	for total < 1e6 {
		it := d.Dequeue()
		if it == nil {
			break
		}
		served[it.QoS()] += float64(it.SizeBytes())
		total += float64(it.SizeBytes())
	}
	if math.Abs(served[0]/total-0.5) > 0.05 {
		t.Errorf("byte shares = %v/%v", served[0]/total, served[1]/total)
	}
}

func TestDWRRSmallQuantumLiveness(t *testing.T) {
	// Quantum far below packet size must still make progress.
	d := NewDWRR([]float64{1, 1}, 10, 0)
	d.Enqueue(&testItem{size: 1500, class: 0})
	if it := d.Dequeue(); it == nil {
		t.Fatal("DWRR stalled with small quantum")
	}
}

func TestDWRRDropTail(t *testing.T) {
	d := NewDWRR([]float64{1}, 1500, 500)
	if got := d.Enqueue(&testItem{size: 400, class: 0}); len(got) != 0 {
		t.Fatal("first packet dropped")
	}
	if got := d.Enqueue(&testItem{size: 400, class: 0}); len(got) != 1 {
		t.Fatal("overflow packet not dropped")
	}
}

func TestSPQStrictOrdering(t *testing.T) {
	s := NewSPQ(3, 0)
	s.Enqueue(&testItem{size: 100, class: 2, id: 1})
	s.Enqueue(&testItem{size: 100, class: 0, id: 2})
	s.Enqueue(&testItem{size: 100, class: 1, id: 3})
	s.Enqueue(&testItem{size: 100, class: 0, id: 4})
	order := []int{2, 4, 3, 1}
	for i, want := range order {
		it := s.Dequeue().(*testItem)
		if it.id != want {
			t.Fatalf("dequeue %d = id %d, want %d", i, it.id, want)
		}
	}
}

func TestSPQStarvation(t *testing.T) {
	// SPQ's defining pathology: a persistent high class starves the low
	// class entirely.
	s := NewSPQ(2, 0)
	for i := 0; i < 100; i++ {
		s.Enqueue(&testItem{size: 100, class: 0})
		s.Enqueue(&testItem{size: 100, class: 1})
	}
	for i := 0; i < 100; i++ {
		if it := s.Dequeue(); it.QoS() != 0 {
			t.Fatalf("low class served at %d while high backlogged", i)
		}
	}
}

func TestFIFOOrderAndCap(t *testing.T) {
	f := NewFIFO(250)
	f.Enqueue(&testItem{size: 100, class: 0, id: 1})
	f.Enqueue(&testItem{size: 100, class: 1, id: 2})
	if got := f.Enqueue(&testItem{size: 100, class: 0, id: 3}); len(got) != 1 {
		t.Fatal("FIFO overflow not dropped")
	}
	if f.QueuedBytes() != 200 || f.QueuedItems() != 2 {
		t.Errorf("bytes/items = %d/%d", f.QueuedBytes(), f.QueuedItems())
	}
	if f.Dequeue().(*testItem).id != 1 || f.Dequeue().(*testItem).id != 2 {
		t.Error("FIFO order violated")
	}
}

func TestPriorityQueueUrgencyOrder(t *testing.T) {
	p := NewPriorityQueue(0)
	p.Enqueue(&testItem{size: 100, urgency: 30, id: 1})
	p.Enqueue(&testItem{size: 100, urgency: 10, id: 2})
	p.Enqueue(&testItem{size: 100, urgency: 20, id: 3})
	p.Enqueue(&testItem{size: 100, urgency: 10, id: 4}) // FIFO among equals
	order := []int{2, 4, 3, 1}
	for i, want := range order {
		it := p.Dequeue().(*testItem)
		if it.id != want {
			t.Fatalf("dequeue %d = id %d, want %d", i, it.id, want)
		}
	}
}

func TestPriorityQueueDropsLeastUrgent(t *testing.T) {
	p := NewPriorityQueue(300)
	p.Enqueue(&testItem{size: 100, urgency: 1, id: 1})
	p.Enqueue(&testItem{size: 100, urgency: 50, id: 2})
	p.Enqueue(&testItem{size: 100, urgency: 20, id: 3})
	// Full. A more urgent arrival evicts the least urgent (id 2).
	dropped := p.Enqueue(&testItem{size: 100, urgency: 5, id: 4})
	if len(dropped) != 1 || dropped[0].(*testItem).id != 2 {
		t.Fatalf("dropped = %v, want id 2", dropped)
	}
	// A less urgent arrival than everything queued is itself dropped.
	dropped = p.Enqueue(&testItem{size: 100, urgency: 100, id: 5})
	if len(dropped) != 1 || dropped[0].(*testItem).id != 5 {
		t.Fatalf("dropped = %v, want the arrival itself", dropped)
	}
	if p.QueuedBytes() != 300 {
		t.Errorf("QueuedBytes = %d", p.QueuedBytes())
	}
}

func TestPriorityQueueBytesFor(t *testing.T) {
	p := NewPriorityQueue(0)
	p.Enqueue(&testItem{size: 100, class: 0, urgency: 1})
	p.Enqueue(&testItem{size: 200, class: 1, urgency: 2})
	if p.BytesFor(0) != 100 || p.BytesFor(1) != 200 || p.BytesFor(2) != 0 {
		t.Errorf("BytesFor = %d/%d/%d", p.BytesFor(0), p.BytesFor(1), p.BytesFor(2))
	}
}

// Conservation property: for every scheduler, bytes in = bytes out +
// bytes dropped + bytes queued.
func TestSchedulerConservationProperty(t *testing.T) {
	mk := map[string]func() Scheduler{
		"wfq":  func() Scheduler { return NewWFQ([]float64{4, 2, 1}, 2000) },
		"dwrr": func() Scheduler { return NewDWRR([]float64{4, 2, 1}, 1500, 2000) },
		"spq":  func() Scheduler { return NewSPQ(3, 2000) },
		"fifo": func() Scheduler { return NewFIFO(2000) },
		"pq":   func() Scheduler { return NewPriorityQueue(2000) },
	}
	for name, factory := range mk {
		f := func(ops []uint16) bool {
			s := factory()
			var in, out, drop int
			for _, op := range ops {
				if op%3 == 0 && s.QueuedItems() > 0 {
					if it := s.Dequeue(); it != nil {
						out += it.SizeBytes()
					}
					continue
				}
				size := int(op%1400) + 64
				class := int(op/3) % 3
				it := &testItem{size: size, class: class, urgency: int64(op)}
				in += size
				for _, d := range s.Enqueue(it) {
					drop += d.SizeBytes()
				}
			}
			return in == out+drop+s.QueuedBytes()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Weighted-share property across random weight vectors for WFQ and DWRR.
func TestWeightedShareProperty(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		a := float64(w1%15) + 1
		b := float64(w2%15) + 1
		for _, s := range []Scheduler{
			NewWFQ([]float64{a, b}, 0),
			NewDWRR([]float64{a, b}, 1500, 0),
		} {
			fill(s, 2, 800, 1500)
			shares := drainShares(s, 2, 600)
			want := a / (a + b)
			if math.Abs(shares[0]-want) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// mustPanic asserts that f panics; the ISSUE's divide-by-zero guard.
func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestNewWFQValidatesWeights(t *testing.T) {
	bad := [][]float64{nil, {}, {0, 1}, {4, -1}, {math.Inf(1)}, {math.NaN()}}
	for _, w := range bad {
		w := w
		mustPanic(t, "NewWFQ", func() { NewWFQ(w, 0) })
		mustPanic(t, "NewDWRR", func() { NewDWRR(w, 1500, 0) })
	}
	// Valid weights still construct, and finish tags stay finite.
	w := NewWFQ([]float64{4, 1}, 0)
	w.Enqueue(&testItem{size: 1500, class: 0})
	w.Enqueue(&testItem{size: 1500, class: 1})
	for it := w.Dequeue(); it != nil; it = w.Dequeue() {
	}
	if w.virt != 0 && (math.IsInf(w.virt, 0) || math.IsNaN(w.virt)) {
		t.Errorf("virtual time corrupted: %v", w.virt)
	}
}
