package aequitas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aequitas/internal/obs/flight"
	"aequitas/internal/sim"
)

// TestFlightDumpEndToEnd runs one instrumented simulation with a fault
// plan and checks the flight stream: schema-valid NDJSON, a fault-trigger
// dump per fault onset, and a final dump at run end.
func TestFlightDumpEndToEnd(t *testing.T) {
	plan, err := FaultPreset("flapcrash", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := faultTestConfig(7, plan)
	cfg.Obs.FlightNDJSON = &buf
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	dumps, records, err := flight.ValidateDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if dumps < 2 {
		t.Fatalf("got %d dumps, want at least one fault trigger plus the final dump", dumps)
	}
	if records == 0 {
		t.Fatal("flight dumps carry no records")
	}
	out := buf.String()
	for _, want := range []string{`"trigger":"fault"`, `"trigger":"final"`, `"label":"aequitas"`} {
		if !strings.Contains(out, want) {
			t.Errorf("flight stream missing %s", want)
		}
	}
}

// TestFlightEngineTriggersInSim drives the anomaly engine from the sim's
// metrics cadence: the overloaded run misses SLOs far beyond the tiny
// budget, so a burn-rate dump must fire mid-run.
func TestFlightEngineTriggersInSim(t *testing.T) {
	var buf bytes.Buffer
	cfg := obsTestConfig(7)
	cfg.Obs.FlightNDJSON = &buf
	cfg.Obs.FlightEngine = &flight.EngineConfig{
		ShortWindow: 200 * sim.Microsecond,
		LongWindow:  sim.Millisecond,
		SLOBudget:   0.001,
		MinSamples:  20,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, err := flight.ValidateDump(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("flight dump invalid: %v", err)
	}
	if !strings.Contains(buf.String(), `"trigger":"burn_rate"`) {
		t.Fatal("overloaded run never fired the burn-rate trigger")
	}
}

// TestFlightDeterministicUnderParallel is the tentpole's golden
// criterion: with the flight recorder and a fault plan active, sweeping
// the same configs on 1, 4, and 8 workers produces byte-identical flight
// dumps — recording draws no randomness and reads only simulated time.
func TestFlightDeterministicUnderParallel(t *testing.T) {
	plan, err := FaultPreset("flapcrash", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	systems := []System{SystemAequitas, SystemBaseline}
	sweep := func(workers int) []string {
		bufs := make([]bytes.Buffer, len(systems))
		_, err := Sweep(len(systems), func(i int) SimConfig {
			cfg := faultTestConfig(7, plan)
			cfg.System = systems[i]
			cfg.Obs.FlightNDJSON = &bufs[i]
			return cfg
		}, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(systems))
		for i := range systems {
			out[i] = bufs[i].String()
		}
		return out
	}
	ref := sweep(1)
	for i, d := range ref {
		if d == "" {
			t.Fatalf("config %d: empty flight stream", i)
		}
		if _, _, err := flight.ValidateDump(strings.NewReader(d)); err != nil {
			t.Fatalf("config %d: flight dump invalid: %v", i, err)
		}
	}
	for _, workers := range []int{4, 8} {
		got := sweep(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("config %d: flight dump differs between 1 and %d workers", i, workers)
			}
		}
	}
}
