// Package qos models network Quality-of-Service classes and the mapping
// between application RPC priority classes and QoS levels (Phase 1 of
// Aequitas, §5).
//
// The paper uses three levels — QoSh, QoSm, QoSl — served by weighted fair
// queues in switches, and three RPC priority classes — performance-critical
// (PC), non-critical (NC), and best-effort (BE). The design "organically
// extends to larger numbers of QoS priority classes", so this package is
// parameterised over the number of levels.
package qos

import "fmt"

// Class identifies a network QoS level. Lower values are higher priority
// (class 0 has the largest WFQ weight), matching the indexing in §4 where
// lower i indicates a higher weight.
type Class int

// The three standard levels used throughout the paper.
const (
	High   Class = 0 // QoSh
	Medium Class = 1 // QoSm
	Low    Class = 2 // QoSl (scavenger; no SLO)
)

func (c Class) String() string {
	switch c {
	case High:
		return "QoSh"
	case Medium:
		return "QoSm"
	case Low:
		return "QoSl"
	default:
		return fmt.Sprintf("QoS%d", int(c))
	}
}

// Priority is an application-level RPC priority class (§2.1).
type Priority int

const (
	PC Priority = iota // performance-critical: tail latency SLOs
	NC                 // non-critical: sustained rate, looser SLOs
	BE                 // best-effort: scavenger, no SLOs
)

func (p Priority) String() string {
	switch p {
	case PC:
		return "PC"
	case NC:
		return "NC"
	case BE:
		return "BE"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// MapPriorityToQoS is the Phase-1 bijective mapping: PC→QoSh, NC→QoSm,
// BE→QoSl (Algorithm 1 line 6).
func MapPriorityToQoS(p Priority) Class { return Class(p) }

// MapQoSToPriority inverts the Phase-1 mapping.
func MapQoSToPriority(c Class) Priority { return Priority(c) }

// Weights holds WFQ weights per QoS class, index 0 = highest class.
type Weights []float64

// StandardWeights2 and StandardWeights3 are the weights used in the paper's
// experiments: 4:1 for two levels and 8:4:1 for three.
func StandardWeights2() Weights { return Weights{4, 1} }
func StandardWeights3() Weights { return Weights{8, 4, 1} }

// Levels reports the number of QoS classes.
func (w Weights) Levels() int { return len(w) }

// Lowest returns the scavenger class (largest index).
func (w Weights) Lowest() Class { return Class(len(w) - 1) }

// Sum returns the total weight.
func (w Weights) Sum() float64 {
	var s float64
	for _, x := range w {
		s += x
	}
	return s
}

// Share returns class i's guaranteed bandwidth fraction φi/Σφ (the gi/r of
// Table 1).
func (w Weights) Share(i Class) float64 {
	if int(i) < 0 || int(i) >= len(w) {
		return 0
	}
	return w[i] / w.Sum()
}

// Validate reports an error unless every weight is positive and weights are
// non-increasing from class 0 (higher class must not have a smaller weight
// than a lower class, or the "priority" labelling is meaningless).
func (w Weights) Validate() error {
	if len(w) == 0 {
		return fmt.Errorf("qos: no weights")
	}
	for i, x := range w {
		if x <= 0 {
			return fmt.Errorf("qos: weight[%d] = %v, must be positive", i, x)
		}
		if i > 0 && x > w[i-1] {
			return fmt.Errorf("qos: weight[%d] = %v exceeds weight[%d] = %v; higher classes need larger weights", i, x, i-1, w[i-1])
		}
	}
	return nil
}

// Mix is a QoS-mix: the fraction of arriving traffic on each class
// (the N-tuple (a1/a, ..., aN/a) of §4.1). Fractions sum to 1.
type Mix []float64

// Validate reports an error unless the mix is a probability vector.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("qos: empty mix")
	}
	var s float64
	for i, x := range m {
		if x < 0 || x > 1 {
			return fmt.Errorf("qos: mix[%d] = %v out of [0,1]", i, x)
		}
		s += x
	}
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("qos: mix sums to %v, want 1", s)
	}
	return nil
}

// Share returns the fraction for class i (QoSi-share), or 0 out of range.
func (m Mix) Share(i Class) float64 {
	if int(i) < 0 || int(i) >= len(m) {
		return 0
	}
	return m[i]
}

// MixCounter tallies bytes observed per QoS class and produces the
// empirical Mix, used to report admitted QoS-mix in experiments.
type MixCounter struct {
	bytes []int64
}

// NewMixCounter returns a counter over n classes.
func NewMixCounter(n int) *MixCounter { return &MixCounter{bytes: make([]int64, n)} }

// Add records n bytes on class c.
func (mc *MixCounter) Add(c Class, n int64) {
	if int(c) >= 0 && int(c) < len(mc.bytes) {
		mc.bytes[c] += n
	}
}

// Bytes returns the byte count for class c.
func (mc *MixCounter) Bytes(c Class) int64 {
	if int(c) < 0 || int(c) >= len(mc.bytes) {
		return 0
	}
	return mc.bytes[c]
}

// Total returns the total bytes across classes.
func (mc *MixCounter) Total() int64 {
	var t int64
	for _, b := range mc.bytes {
		t += b
	}
	return t
}

// Mix returns the empirical byte-weighted mix; all-zero when no traffic.
func (mc *MixCounter) Mix() Mix {
	m := make(Mix, len(mc.bytes))
	t := mc.Total()
	if t == 0 {
		return m
	}
	for i, b := range mc.bytes {
		m[i] = float64(b) / float64(t)
	}
	return m
}
