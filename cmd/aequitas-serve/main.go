// Command aequitas-serve demonstrates the admission controller serving
// live traffic: a demo HTTP server whose handlers run behind the
// serve.Admission middleware, and a load-generating client that drives a
// mixed-class workload at it and reports what the controller did.
//
// Server (terminal 1):
//
//	aequitas-serve -mode server -addr :8080 -work 300us -slo 200us
//
// Load (terminal 2):
//
//	aequitas-serve -mode client -url http://localhost:8080 -conc 16 -duration 10s
//
// While the load runs, live metrics are on the server:
//
//	curl -s localhost:8080/metrics   # Prometheus text, padmit gauges
//	curl -s localhost:8080/snapshot  # JSON document
//
// With -work above -slo the handler can never meet the SLO, so the admit
// probability falls and the client sees X-Aequitas-Downgraded responses —
// Algorithm 1 converging on the wall clock.
//
// The hardened serving path layers on top:
//
//   - -deadlines checks each request's X-Aequitas-Deadline budget (or
//     context deadline) against the learned per-class latency floor and
//     rejects expired-before-admit work;
//   - -brownout arms the overload ladder (thin scavenger, tighten
//     p_admit, hard shed) driven by completion latency;
//   - -quota-rate grants the demo tenant a guaranteed rate through a
//     TTL-leased quota client, with -quota-policy choosing fail-open or
//     fail-closed behaviour when the quota plane is unreachable;
//   - -chaos runs a wall-clock fault plan (latency spikes, error bursts,
//     clock skew, quota outages) against the live server — the overload
//     drill in EXPERIMENTS.md walks through a full run.
//
// The server carries a flight recorder (-flight): the last N admission
// decisions ride in a lock-free ring, the burn-rate anomaly engine (and
// every brownout escalation) freezes it into an NDJSON dump, and
// /debug/flight serves the trigger status and dumps. On SIGINT/SIGTERM
// the server shuts down gracefully — in-flight requests drain and a final
// flight dump is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"aequitas"
	"aequitas/internal/core"
	"aequitas/internal/obs/flight"
	"aequitas/internal/qos"
	"aequitas/serve"
	"aequitas/serve/chaos"
)

type serverOpts struct {
	addr      string
	work      time.Duration
	slo       time.Duration
	reject    bool
	rejStatus int
	retry     time.Duration
	flightOut string
	flightDir string
	drain     time.Duration

	deadlines bool
	minBudget time.Duration
	brownout  bool
	boLatency time.Duration

	quotaRate   float64
	quotaTTL    time.Duration
	quotaPolicy string

	chaosSpec string
	chaosLen  time.Duration
}

func main() {
	var (
		mode = flag.String("mode", "server", "server | client")
		o    serverOpts

		url        = flag.String("url", "http://localhost:8080", "client: target server")
		conc       = flag.Int("conc", 16, "client: concurrent workers")
		duration   = flag.Duration("duration", 10*time.Second, "client: run length")
		reqTimeout = flag.Duration("req-timeout", 0, "client: per-request timeout, also sent as the X-Aequitas-Deadline budget (0 disables)")
	)
	flag.StringVar(&o.addr, "addr", ":8080", "server listen address")
	flag.DurationVar(&o.work, "work", 300*time.Microsecond, "server: simulated handler work per request")
	flag.DurationVar(&o.slo, "slo", 200*time.Microsecond, "server: latency SLO for the highest class (medium gets 2x)")
	flag.BoolVar(&o.reject, "reject", false, "server: reject downgraded requests instead of serving them")
	flag.IntVar(&o.rejStatus, "reject-status", 0, "server: HTTP status for rejected/shed/expired requests (default 503)")
	flag.DurationVar(&o.retry, "retry-after", 0, "server: fixed Retry-After hint; 0 derives it from the class's increment window")
	flag.StringVar(&o.flightOut, "flight", "", "server: write the final flight dump (NDJSON) here on shutdown; empty disables the recorder")
	flag.StringVar(&o.flightDir, "flight-profiles", "", "server: capture goroutine/heap profiles into this directory on anomaly triggers")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "server: graceful-shutdown drain budget")
	flag.BoolVar(&o.deadlines, "deadlines", false, "server: reject requests whose deadline budget cannot cover the latency floor")
	flag.DurationVar(&o.minBudget, "min-budget", 0, "server: static minimum deadline budget (with -deadlines)")
	flag.BoolVar(&o.brownout, "brownout", false, "server: arm the overload brownout ladder")
	flag.DurationVar(&o.boLatency, "brownout-threshold", 0, "server: brownout slow-completion threshold (default 4x -slo)")
	flag.Float64Var(&o.quotaRate, "quota-rate", 0, "server: guaranteed tenant rate in bytes/s on the highest class (0 disables quotas)")
	flag.DurationVar(&o.quotaTTL, "quota-ttl", 100*time.Millisecond, "server: quota lease TTL (0 refreshes every check)")
	flag.StringVar(&o.quotaPolicy, "quota-policy", "fail-open", "server: stale-lease policy: fail-open | fail-closed")
	flag.StringVar(&o.chaosSpec, "chaos", "", "server: chaos plan — a preset ("+strings.Join(chaos.PresetNames(), "|")+") or @file with one '<offset> <event> [arg]' per line")
	flag.DurationVar(&o.chaosLen, "chaos-duration", time.Minute, "server: run length chaos presets are scaled to")
	flag.Parse()
	switch *mode {
	case "server":
		runServer(o)
	case "client":
		runClient(*url, *conc, *duration, *reqTimeout)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want server or client)\n", *mode)
		os.Exit(2)
	}
}

// chaosPlan resolves -chaos: a preset name or "@path" to a plan file.
func chaosPlan(spec string, length time.Duration) (*chaos.Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return chaos.ParsePlan(f)
	}
	return chaos.Preset(spec, length)
}

func runServer(o serverOpts) {
	ctl, err := aequitas.NewController(aequitas.ControllerConfig{
		SLOs: []aequitas.SLO{
			{Target: o.slo},
			{Target: 2 * o.slo},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Optional quota plane: one tenant granted a rate on the highest
	// class, consumed through TTL leases so outages are survivable.
	var quotaSrv *core.QuotaServer
	if o.quotaRate > 0 {
		quotaSrv = core.NewQuotaServer(map[qos.Class]float64{qos.High: o.quotaRate})
		if err := quotaSrv.Grant("demo", qos.High, o.quotaRate); err != nil {
			log.Fatal(err)
		}
		cli := quotaSrv.Client("demo")
		cli.LeaseTTL = o.quotaTTL
		policy := core.QuotaFailOpen
		switch o.quotaPolicy {
		case "fail-open":
		case "fail-closed":
			policy = core.QuotaFailClosed
		default:
			log.Fatalf("unknown -quota-policy %q (want fail-open or fail-closed)", o.quotaPolicy)
		}
		ctl.SetQuota(cli, policy)
		log.Printf("quota: demo tenant granted %.0f B/s on QoSh, lease TTL %v, %v", o.quotaRate, o.quotaTTL, policy)
	}

	scfg := serve.Config{
		Controller:       ctl,
		RejectDowngraded: o.reject,
		RejectStatus:     o.rejStatus,
		RetryAfter:       o.retry,
	}
	if o.flightOut != "" {
		scfg.Flight = &serve.FlightConfig{
			ProfileDir: o.flightDir,
			Engine:     &flight.EngineConfig{},
		}
	}
	if o.deadlines {
		scfg.Deadline = &serve.DeadlineConfig{MinBudget: o.minBudget}
	}
	if o.brownout {
		thr := o.boLatency
		if thr <= 0 {
			thr = 4 * o.slo
		}
		scfg.Brownout = &serve.BrownoutConfig{LatencyThreshold: thr}
		log.Printf("brownout: armed (threshold %v)", thr)
	}
	adm, err := serve.New(scfg)
	if err != nil {
		log.Fatal(err)
	}

	// Optional chaos plan, pumped on the wall clock for the lifetime of
	// the server.
	plan, err := chaosPlan(o.chaosSpec, o.chaosLen)
	if err != nil {
		log.Fatal(err)
	}
	var inj *chaos.Injector
	if !plan.Empty() {
		var plane chaos.QuotaPlane
		if quotaSrv != nil {
			plane = quotaSrv
		}
		inj = chaos.NewInjector(plan, plane)
		for _, w := range plan.Windows() {
			log.Printf("chaos: %v window %v - %v", w.Kind, w.Start, w.End)
		}
	}

	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Simulated downstream work; scavenger-class requests run the
		// same code, they just ride a lower network priority in a real
		// deployment.
		time.Sleep(o.work)
		v, _ := serve.FromContext(r.Context())
		fmt.Fprintf(w, "ok class=%v downgraded=%v\n", v.Class, v.Downgraded)
	})
	var inner http.Handler = handler
	if inj != nil {
		// The injector wraps inside admission so injected latency and
		// errors land in the observed SLO, like a sick downstream would.
		inner = inj.Wrap(inner)
	}
	app := adm.Middleware(inner)

	mux := http.NewServeMux()
	metrics := adm.Handler()
	mux.Handle("/metrics", metrics)
	mux.Handle("/snapshot", metrics)
	mux.Handle("/debug/pprof/", metrics)
	mux.Handle("/debug/flight", metrics)
	mux.Handle("/", app)

	stopStats := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s := ctl.Stats()
				line := fmt.Sprintf("ctl: admitted=%d downgraded=%d expired=%d slo_met=%d slo_miss=%d triggers=%d brownout=%d",
					s.Admitted, s.Downgraded, s.Expired, s.SLOMet, s.SLOMisses, adm.FlightTriggered(), adm.BrownoutLevel())
				if qs, ok := ctl.QuotaStats(); ok {
					line += fmt.Sprintf(" quota{bypass=%d stale_passed=%d stale_dropped=%d}",
						qs.InQuotaAdmits, qs.StalePassed, qs.StaleDropped)
				}
				log.Print(line)
			case <-stopStats:
				return
			}
		}
	}()

	// Serve until SIGINT/SIGTERM, then drain in-flight requests and flush
	// the black box: Shutdown stops accepting, waits for handlers (bounded
	// by the drain budget), and only then do we freeze the final state.
	srv := &http.Server{Addr: o.addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if inj != nil {
		go inj.Run(ctx, 50*time.Millisecond)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (work=%v, SLO=%v/%v, reject=%v)", o.addr, o.work, o.slo, 2*o.slo, o.reject)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining in-flight requests (budget %v)", o.drain)
	sctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	close(stopStats)

	// Final telemetry flush: the closing counters, and the flight ring as
	// the shutdown dump.
	s := ctl.Stats()
	log.Printf("final: admitted=%d downgraded=%d dropped=%d expired=%d slo_met=%d slo_miss=%d triggers=%d",
		s.Admitted, s.Downgraded, s.Dropped, s.Expired, s.SLOMet, s.SLOMisses, adm.FlightTriggered())
	if o.flightOut != "" {
		f, err := os.Create(o.flightOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := adm.DumpFlight(f, flight.TriggerFinal, "graceful shutdown"); err != nil {
			log.Fatalf("flight dump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("flight dump written to %s", o.flightOut)
	}
}

// clientStats aggregates one load run.
type clientStats struct {
	sent, downgraded, rejected, expired, shed, timeouts, errors atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
}

func runClient(url string, conc int, duration, reqTimeout time.Duration) {
	var cs clientStats
	classes := []string{"QoSh", "QoSh", "QoSm", "QoSl"} // 2:1:1 mix
	deadline := time.Now().Add(duration)
	timeout := 5 * time.Second
	if reqTimeout > 0 {
		timeout = reqTimeout
	}
	client := &http.Client{Timeout: timeout}

	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				req, err := http.NewRequest("GET", url+"/demo", nil)
				if err != nil {
					cs.errors.Add(1)
					continue
				}
				req.Header.Set(serve.HeaderClass, classes[(w+i)%len(classes)])
				if reqTimeout > 0 {
					// Advertise the budget so the server can reject work
					// that cannot finish inside it.
					req.Header.Set(serve.HeaderDeadline, reqTimeout.String())
				}
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					// A client-side timeout is the expired budget seen
					// from the other end; count it apart from transport
					// errors.
					if errors.Is(err, context.DeadlineExceeded) || os.IsTimeout(err) {
						cs.timeouts.Add(1)
					} else {
						cs.errors.Add(1)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				elapsed := time.Since(start)
				cs.sent.Add(1)
				switch {
				case resp.Header.Get(serve.HeaderExpired) != "":
					// Rejected before the draw: the budget could not cover
					// the server's latency floor.
					cs.expired.Add(1)
				case resp.Header.Get(serve.HeaderShed) != "":
					cs.shed.Add(1)
				case resp.StatusCode >= 400:
					cs.rejected.Add(1)
				case resp.Header.Get(serve.HeaderDowngraded) == "1":
					cs.downgraded.Add(1)
				}
				resp.Body.Close()
				cs.mu.Lock()
				cs.latencies = append(cs.latencies, elapsed)
				cs.mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	sent := cs.sent.Load()
	fmt.Printf("sent=%d downgraded=%d rejected=%d expired=%d shed=%d timeouts=%d errors=%d (%.1f req/s)\n",
		sent, cs.downgraded.Load(), cs.rejected.Load(), cs.expired.Load(), cs.shed.Load(),
		cs.timeouts.Load(), cs.errors.Load(), float64(sent)/duration.Seconds())
	if len(cs.latencies) > 0 {
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p / 100 * float64(len(cs.latencies)-1))
			return cs.latencies[i]
		}
		fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
			pct(50), pct(90), pct(99), cs.latencies[len(cs.latencies)-1])
	}
}
