package flight

import (
	"fmt"
	"sync"

	"aequitas/internal/sim"
)

// TriggerKind names what fired a flight dump.
type TriggerKind uint8

const (
	// TriggerBurnRate fires when the SLO miss rate burns error budget
	// faster than the threshold over both the short and long window.
	TriggerBurnRate TriggerKind = iota + 1
	// TriggerPAdmitDrop fires when the minimum admit probability falls by
	// more than the configured amount within the short window.
	TriggerPAdmitDrop
	// TriggerFault marks a dump taken at an injected fault boundary.
	TriggerFault
	// TriggerFinal marks the dump taken when a run or server shuts down.
	TriggerFinal
	// TriggerManual marks an operator-requested dump (/debug/flight).
	TriggerManual
	// TriggerBrownout marks a dump taken when the serving-side brownout
	// controller stepped up a degradation level.
	TriggerBrownout
)

func (k TriggerKind) String() string {
	switch k {
	case TriggerBurnRate:
		return "burn_rate"
	case TriggerPAdmitDrop:
		return "padmit_drop"
	case TriggerFault:
		return "fault"
	case TriggerFinal:
		return "final"
	case TriggerManual:
		return "manual"
	case TriggerBrownout:
		return "brownout"
	default:
		return "unknown"
	}
}

// triggerKinds maps dump-header trigger names back to kinds; the
// validator and summarizer share it.
var triggerKinds = map[string]TriggerKind{
	"burn_rate":   TriggerBurnRate,
	"padmit_drop": TriggerPAdmitDrop,
	"fault":       TriggerFault,
	"final":       TriggerFinal,
	"manual":      TriggerManual,
	"brownout":    TriggerBrownout,
}

// Trigger describes one anomaly-engine firing (or synthetic dump cause).
type Trigger struct {
	Kind TriggerKind
	// At is the trigger's timestamp on the caller's clock.
	At sim.Time
	// Detail is a human-readable cause ("burn 42.0x/18.3x over 5s/60s").
	Detail string
}

// EngineConfig parameterises the anomaly engine. The zero value gives the
// 5s/60s multi-window burn-rate alert (the classic 5m/1h SRE shape scaled
// to serving-test time), a 1% SLO budget with a 10x burn threshold, and a
// 0.4 absolute p_admit drop trigger.
type EngineConfig struct {
	// ShortWindow and LongWindow are the two burn-rate windows. The alert
	// requires both to burn over threshold: the short window makes it
	// fast, the long window keeps blips from paging.
	ShortWindow sim.Duration
	LongWindow  sim.Duration
	// SLOBudget is the allowed SLO-miss fraction (the error budget).
	SLOBudget float64
	// BurnThreshold is the multiple of SLOBudget at which the miss rate
	// becomes an incident.
	BurnThreshold float64
	// MinSamples is the minimum number of completions inside the short
	// window before the burn rate is considered meaningful.
	MinSamples int64
	// PAdmitDrop triggers when the minimum admit probability observed at
	// ticks falls by at least this much (absolute) within ShortWindow.
	PAdmitDrop float64
	// Cooldown suppresses further triggers after one fires (default
	// LongWindow), bounding dump volume during a sustained incident.
	Cooldown sim.Duration
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * sim.Second
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 60 * sim.Second
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 50
	}
	if c.PAdmitDrop <= 0 {
		c.PAdmitDrop = 0.4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.LongWindow
	}
	return c
}

// engineSample is one Tick's cumulative counters.
type engineSample struct {
	ts        sim.Time
	met, miss int64
	minP      float64
}

// Engine is the SLO burn-rate anomaly detector. Feed it cumulative SLO
// counters and the minimum live admit probability on a fixed cadence via
// Tick; it reports when the window statistics cross the configured
// thresholds. Safe for concurrent use (ticks serialise on a mutex; the
// cadence makes contention irrelevant).
type Engine struct {
	cfg EngineConfig

	mu      sync.Mutex
	samples []engineSample
	fired   int
	lastAt  sim.Time
}

// NewEngine builds an engine, applying defaults to cfg.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// Fired reports how many triggers the engine has raised.
func (e *Engine) Fired() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// burnOver computes the budget burn multiple over the window ending at
// now: (miss delta / total delta) / budget against the oldest retained
// sample inside the window (or the oldest overall while history is still
// shorter than the window — an incident in a young process still counts).
// ok is false when the window holds fewer than MinSamples completions.
func (e *Engine) burnOver(now sim.Time, w sim.Duration, cur engineSample) (burn float64, ok bool) {
	base := e.samples[0]
	for _, s := range e.samples {
		if s.ts < now-w {
			base = s
			continue
		}
		break
	}
	dMiss := cur.miss - base.miss
	dTotal := dMiss + cur.met - base.met
	if dTotal < e.cfg.MinSamples {
		return 0, false
	}
	return float64(dMiss) / float64(dTotal) / e.cfg.SLOBudget, true
}

// Tick feeds one sample: ts on the caller's clock, the controller's
// cumulative SLO-met/missed counters, and the minimum admit probability
// across live channels (pass 1 when no channel exists yet). It returns a
// trigger when an anomaly condition crosses its threshold and the engine
// is out of cooldown.
func (e *Engine) Tick(ts sim.Time, sloMet, sloMiss int64, minPAdmit float64) (Trigger, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := engineSample{ts: ts, met: sloMet, miss: sloMiss, minP: minPAdmit}
	e.samples = append(e.samples, cur)
	// Prune history older than the long window, always keeping one sample
	// at or beyond the boundary so window deltas span the full window.
	cut := 0
	for cut+1 < len(e.samples) && e.samples[cut+1].ts <= ts-e.cfg.LongWindow {
		cut++
	}
	if cut > 0 {
		e.samples = append(e.samples[:0], e.samples[cut:]...)
	}
	if e.fired > 0 && ts-e.lastAt < e.cfg.Cooldown {
		return Trigger{}, false
	}

	if burnS, okS := e.burnOver(ts, e.cfg.ShortWindow, cur); okS && burnS >= e.cfg.BurnThreshold {
		if burnL, okL := e.burnOver(ts, e.cfg.LongWindow, cur); okL && burnL >= e.cfg.BurnThreshold {
			e.fired++
			e.lastAt = ts
			return Trigger{
				Kind: TriggerBurnRate,
				At:   ts,
				Detail: fmt.Sprintf("burn %.1fx/%.1fx over %v/%v (budget %g, threshold %gx)",
					burnS, burnL, e.cfg.ShortWindow.Std(), e.cfg.LongWindow.Std(), e.cfg.SLOBudget, e.cfg.BurnThreshold),
			}, true
		}
	}

	// p_admit drop: the highest minimum seen within the short window
	// versus now. A collapse from 1.0 to 0.5 inside one window is the
	// paper's overload signature.
	maxMin := minPAdmit
	for _, s := range e.samples {
		if s.ts >= ts-e.cfg.ShortWindow && s.minP > maxMin {
			maxMin = s.minP
		}
	}
	if drop := maxMin - minPAdmit; drop >= e.cfg.PAdmitDrop {
		e.fired++
		e.lastAt = ts
		return Trigger{
			Kind: TriggerPAdmitDrop,
			At:   ts,
			Detail: fmt.Sprintf("min p_admit fell %.2f (%.2f to %.2f) within %v",
				drop, maxMin, minPAdmit, e.cfg.ShortWindow.Std()),
		}, true
	}
	return Trigger{}, false
}
