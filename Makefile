GO ?= go

.PHONY: all build test race vet check bench bench-save bench-compare bench-gate figures trace-check chaos-check export-check serve-check chaos-serve-check

# BENCH is the tracked benchmark snapshot for this PR; bump the number
# each PR so the trajectory stays reviewable in-tree (see EXPERIMENTS.md,
# "Performance").
BENCH ?= BENCH_10.json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race-enabled suite covers the parallel sweep engine (RunMany) and
# the concurrent-Run test; it is the gate for changes touching run.go,
# parallel.go, or internal/sim. Race instrumentation is ~10x slower, so
# give the root package's simulation suite room on small machines.
race:
	$(GO) test -race -timeout 45m ./...

vet:
	$(GO) vet ./...

check: vet build race trace-check chaos-check export-check serve-check chaos-serve-check

# trace-check runs a short instrumented simulation and validates every
# observability artifact against the schemas in internal/obs: the NDJSON
# lifecycle trace, the metrics CSV (including the -tail windowed
# quantile columns), the obsreport JSON joined from all three, and the
# flight-recorder dump stream from a faulted run (fault-trigger dumps
# plus the final dump) against aequitas.flight/v1.
trace-check: build
	@mkdir -p out
	$(GO) run ./cmd/aequitas-sim -hosts 4 -dur 3ms -trace out/trace-check.ndjson \
	    -metrics out/trace-check.csv -tail -attribution-csv out/trace-check-attr.csv > /dev/null
	$(GO) run ./cmd/obsreport -label trace-check -trace out/trace-check.ndjson \
	    -metrics out/trace-check.csv -attr out/trace-check-attr.csv \
	    -json out/trace-check-report.json -md out/trace-check-report.md
	$(GO) run ./cmd/tracecheck -metrics out/trace-check.csv \
	    -report out/trace-check-report.json out/trace-check.ndjson
	$(GO) run ./cmd/aequitas-sim -hosts 4 -dur 3ms -faults flapcrash -rpc-timeout 300us \
	    -trace out/trace-check-faults.ndjson -flight out/trace-check-flight.ndjson > /dev/null
	$(GO) run ./cmd/obsreport -label trace-check-faults -flight out/trace-check-flight.ndjson \
	    -json out/trace-check-flight-report.json -md out/trace-check-flight-report.md
	$(GO) run ./cmd/tracecheck -flight out/trace-check-flight.ndjson \
	    -report out/trace-check-flight-report.json out/trace-check-faults.ndjson

# export-check is the live-telemetry smoke: a short run published into an
# httptest server, with /metrics parsed as Prometheus text format and
# /snapshot as schema-tagged JSON.
export-check:
	$(GO) test -run 'TestExportSmoke|TestExportDisabledUntouched' -count=1 .

# chaos-check is the seeded fault-injection smoke: a link flap plus a host
# crash/restart under the race detector, exercising blackholes, timeouts,
# retries, hedging, and the degradation metrics end to end.
chaos-check:
	$(GO) test -race -run Chaos -timeout 10m .

# serve-check is the live serving smoke: mixed-class HTTP load through the
# serve.Admission middleware on the wall clock must produce downgrades
# under an unmeetable SLO, the live /metrics endpoint must emit valid
# Prometheus text, and synthetic overload must fire the flight recorder's
# burn-rate trigger with a valid dump at /debug/flight.
serve-check:
	$(GO) test -race -run 'TestServeOverloadSmoke|TestServeConcurrent|TestServeFlight' -count=1 -timeout 10m ./serve

# chaos-serve-check is the hardened-serving smoke: a race-enabled httptest
# server with deadline budgets, brownout, a fail-open quota plane, and a
# wall-clock chaos plan (latency spike, error burst, quota outage) driven
# through it — every request must be accounted for across served /
# expired / shed / rejected / errored, and /metrics must stay parseable.
chaos-serve-check:
	$(GO) test -race -run TestChaosServeWallClockSmoke -count=1 -timeout 10m ./serve

# bench runs the tracked benchmark families (end-to-end Run, raw sim
# loop, WFQ dequeue, transport send, histogram record/quantile, /metrics
# render) with full iterations and memory stats; `make bench` is the
# quick human-readable form.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRun|BenchmarkSimLoop|BenchmarkWFQDequeue|BenchmarkTransportSend|BenchmarkHist|BenchmarkMetricsRender|BenchmarkAdmitDecision|BenchmarkObserve|BenchmarkServeMiddleware' \
	    -benchmem . ./internal/sim ./internal/wfq ./internal/transport ./internal/stats ./internal/obs ./internal/core ./serve

# bench-save records the same suite into $(BENCH) via cmd/benchjson,
# preserving any existing baseline section in the file. Best-of-3 runs:
# wall-clock noise on shared machines is one-sided (co-tenants only ever
# slow you down), so the minimum is the honest per-benchmark number and
# the only one stable enough for bench-gate's threshold.
bench-save:
	$(GO) run ./cmd/benchjson -pr 10 -benchtime 300ms -count 3 -out $(BENCH)

# bench-compare diffs two snapshots: make bench-compare OLD=a.json NEW=b.json
OLD ?= $(BENCH)
NEW ?= $(BENCH)
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# bench-gate re-measures the tracked suite and fails on regression against
# the checked-in $(BENCH): ns/op growing more than GATE_PCT percent, any
# allocs/op appearing on an allocation-free benchmark, or a tracked
# benchmark disappearing. The default tolerance is wide because even
# same-machine timings swing with virtualized-host frequency scaling
# (sub-10ns benchmarks measurably double run-to-run); the gate's job is
# catching order-of-magnitude bit-rot, and the allocation gate stays
# strict everywhere since allocs/op is machine-independent. CI widens
# GATE_PCT further because the snapshot was measured on different
# hardware.
GATE_PCT ?= 100
GATE_BENCHTIME ?= 300ms
GATE_COUNT ?= 3
bench-gate:
	@mkdir -p out
	$(GO) run ./cmd/benchjson -benchtime $(GATE_BENCHTIME) -count $(GATE_COUNT) -out out/bench-gate.json
	$(GO) run ./cmd/benchjson -compare -gate -gate-pct $(GATE_PCT) $(BENCH) out/bench-gate.json

figures: build
	$(GO) run ./cmd/figures -fig all
