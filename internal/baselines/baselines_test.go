package baselines

import (
	"testing"

	"aequitas/internal/netsim"
	"aequitas/internal/qos"
	"aequitas/internal/sim"
	"aequitas/internal/transport"
	"aequitas/internal/wfq"
)

func buildNet(t *testing.T, hosts int, sched netsim.SchedulerFactory) *netsim.Network {
	t.Helper()
	net, err := netsim.New(netsim.Config{Hosts: hosts, SwitchSched: sched})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestQJumpRates(t *testing.T) {
	rates := QJumpRates(3, 100*sim.Gbps, 16)
	if len(rates) != 3 {
		t.Fatalf("len = %d", len(rates))
	}
	if rates[0] == 0 || rates[1] == 0 {
		t.Error("SLO levels must be rate limited")
	}
	if rates[2] != 0 {
		t.Error("lowest level must be unlimited")
	}
}

func TestQJumpPassesUnlimitedLevelThrough(t *testing.T) {
	net := buildNet(t, 2, func() wfq.Scheduler { return wfq.NewSPQ(3, 2<<20) })
	s := sim.New(1)
	eps := make([]*transport.Endpoint, 2)
	for i := range eps {
		eps[i] = transport.NewEndpoint(net, net.Host(i), transport.Config{
			NewCC: func() transport.CC { return transport.Fixed{W: 64} },
		})
	}
	qj := NewQJump(eps[0], QJumpConfig{LevelRates: []sim.Rate{1 * sim.Gbps, 0, 0}})
	done := 0
	qj.Send(s, &transport.Message{ID: 1, Dst: 1, Class: qos.Low, Bytes: 1 << 20,
		OnComplete: func(*sim.Simulator, *transport.Message) { done++ }})
	s.Run()
	if done != 1 {
		t.Fatal("unlimited level message did not complete")
	}
	// 1 MB at ~100 Gbps takes ~85 µs; far below the 8 ms a 1 Gbps
	// limiter would impose.
	if s.Now() > sim.Time(1*sim.Millisecond) {
		t.Errorf("unlimited level took %v; rate limit leaked", s.Now())
	}
}

func TestQJumpThrottlesLimitedLevel(t *testing.T) {
	net := buildNet(t, 2, func() wfq.Scheduler { return wfq.NewSPQ(3, 2<<20) })
	s := sim.New(1)
	eps := make([]*transport.Endpoint, 2)
	for i := range eps {
		eps[i] = transport.NewEndpoint(net, net.Host(i), transport.Config{
			NewCC: func() transport.CC { return transport.Fixed{W: 64} },
		})
	}
	qj := NewQJump(eps[0], QJumpConfig{
		LevelRates:  []sim.Rate{1 * sim.Gbps, 0, 0},
		BucketBytes: 64 << 10,
	})
	completions := 0
	var last sim.Time
	// 10 × 64 KB on the 1 Gbps level: sustained rate is bucket-limited,
	// so total time ≈ (10−1)×64KB / 1Gbps ≈ 4.7 ms.
	for i := 0; i < 10; i++ {
		qj.Send(s, &transport.Message{ID: uint64(i + 1), Dst: 1, Class: qos.High, Bytes: 64 << 10,
			OnComplete: func(s *sim.Simulator, _ *transport.Message) { completions++; last = s.Now() }})
	}
	s.Run()
	if completions != 10 {
		t.Fatalf("completed %d of 10", completions)
	}
	if last < sim.Time(4*sim.Millisecond) {
		t.Errorf("10 throttled messages finished in %v; limiter ineffective", last)
	}
}

func TestHomaDelivers(t *testing.T) {
	net := buildNet(t, 3, func() wfq.Scheduler { return wfq.NewPriorityQueue(6 << 20) })
	s := sim.New(1)
	homas := make([]*Homa, 3)
	for i := range homas {
		homas[i] = NewHoma(net.Host(i), HomaConfig{})
	}
	done := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		id := uint64(i + 1)
		homas[i%2].Send(s, &transport.Message{
			ID: id, Dst: 2, Class: qos.High, Bytes: int64(1+i) * 10240,
			OnComplete: func(_ *sim.Simulator, m *transport.Message) { done[m.ID] = true },
		})
	}
	s.Run()
	if len(done) != 20 {
		t.Fatalf("completed %d of 20", len(done))
	}
}

func TestHomaUnscheduledWindow(t *testing.T) {
	net := buildNet(t, 2, func() wfq.Scheduler { return wfq.NewPriorityQueue(6 << 20) })
	s := sim.New(1)
	h0 := NewHoma(net.Host(0), HomaConfig{RTTBytes: 10 << 10})
	NewHoma(net.Host(1), HomaConfig{RTTBytes: 10 << 10})
	// A message within RTTBytes completes without any grants.
	ok := false
	h0.Send(s, &transport.Message{ID: 1, Dst: 1, Class: qos.High, Bytes: 8 << 10,
		OnComplete: func(*sim.Simulator, *transport.Message) { ok = true }})
	s.Run()
	if !ok {
		t.Fatal("unscheduled-only message did not complete")
	}
}

func TestHomaSRPTOrdering(t *testing.T) {
	// Two concurrent messages to the same receiver: the small one must
	// complete first even though it was sent second.
	net := buildNet(t, 3, func() wfq.Scheduler { return wfq.NewPriorityQueue(6 << 20) })
	s := sim.New(1)
	hs := make([]*Homa, 3)
	for i := range hs {
		hs[i] = NewHoma(net.Host(i), HomaConfig{RTTBytes: 8 << 10})
	}
	var order []uint64
	rec := func(_ *sim.Simulator, m *transport.Message) { order = append(order, m.ID) }
	hs[0].Send(s, &transport.Message{ID: 1, Dst: 2, Class: qos.High, Bytes: 1 << 20, OnComplete: rec})
	hs[1].Send(s, &transport.Message{ID: 2, Dst: 2, Class: qos.High, Bytes: 32 << 10, OnComplete: rec})
	s.Run()
	if len(order) != 2 || order[0] != 2 {
		t.Errorf("completion order %v, want small message (2) first", order)
	}
}

func TestHomaLossRecovery(t *testing.T) {
	// Tiny switch buffer forces drops; the resend timer must still
	// complete every message.
	net := buildNet(t, 3, func() wfq.Scheduler { return wfq.NewPriorityQueue(16 * 1500) })
	s := sim.New(1)
	hs := make([]*Homa, 3)
	for i := range hs {
		hs[i] = NewHoma(net.Host(i), HomaConfig{ResendTimeout: 1 * sim.Millisecond})
	}
	done := 0
	for i := 0; i < 6; i++ {
		hs[i%2].Send(s, &transport.Message{ID: uint64(i + 1), Dst: 2, Class: qos.High, Bytes: 128 << 10,
			OnComplete: func(*sim.Simulator, *transport.Message) { done++ }})
	}
	s.Run()
	if done != 6 {
		t.Fatalf("completed %d of 6 with losses", done)
	}
}

func deadlineSetup(t *testing.T, policy DeadlinePolicy, hosts int) (*sim.Simulator, *DeadlineFabric, []*DeadlineSender) {
	t.Helper()
	net := buildNet(t, hosts, func() wfq.Scheduler { return wfq.NewFIFO(6 << 20) })
	s := sim.New(1)
	f := NewDeadlineFabric(hosts, DeadlineConfig{Policy: policy})
	senders := make([]*DeadlineSender, hosts)
	for i := range senders {
		senders[i] = NewDeadlineSender(f, net.Host(i))
	}
	return s, f, senders
}

func TestD3MeetsFeasibleDeadlines(t *testing.T) {
	s, f, senders := deadlineSetup(t, PolicyD3, 3)
	var completed []sim.Time
	var deadlines []sim.Time
	for i := 0; i < 5; i++ {
		dl := s.Now() + sim.Time(200*sim.Microsecond)
		deadlines = append(deadlines, dl)
		senders[i%2].Send(s, &transport.Message{
			ID: uint64(i + 1), Dst: 2, Class: qos.High, Bytes: 32 << 10, Deadline: dl,
			OnComplete: func(s *sim.Simulator, _ *transport.Message) { completed = append(completed, s.Now()) },
		})
	}
	s.Run()
	if len(completed) != 5 {
		t.Fatalf("completed %d of 5 (terminated %d)", len(completed), f.Terminated)
	}
	for i, ct := range completed {
		if ct > deadlines[i]+sim.Time(50*sim.Microsecond) {
			t.Errorf("flow %d finished at %v, deadline %v", i, ct, deadlines[i])
		}
	}
}

func TestPDQEDFPreference(t *testing.T) {
	s, _, senders := deadlineSetup(t, PolicyPDQ, 3)
	var order []uint64
	rec := func(_ *sim.Simulator, m *transport.Message) { order = append(order, m.ID) }
	// Same size; the tighter deadline must finish first under EDF even
	// though it was submitted second.
	senders[0].Send(s, &transport.Message{ID: 1, Dst: 2, Class: qos.High, Bytes: 256 << 10,
		Deadline: sim.Time(10 * sim.Millisecond), OnComplete: rec})
	senders[1].Send(s, &transport.Message{ID: 2, Dst: 2, Class: qos.High, Bytes: 256 << 10,
		Deadline: sim.Time(1 * sim.Millisecond), OnComplete: rec})
	s.Run()
	if len(order) != 2 || order[0] != 2 {
		t.Errorf("completion order %v, want EDF flow (2) first", order)
	}
}

func TestDeadlineTerminationInfeasible(t *testing.T) {
	s, f, senders := deadlineSetup(t, PolicyD3, 3)
	// 10 MB with a 10 µs deadline cannot complete at 100 Gbps.
	senders[0].Send(s, &transport.Message{ID: 1, Dst: 2, Class: qos.High, Bytes: 10 << 20,
		Deadline: sim.Time(10 * sim.Microsecond)})
	s.Run()
	if f.Terminated != 1 {
		t.Errorf("Terminated = %d, want 1", f.Terminated)
	}
}

func TestDeadlinelessFlowsGetLeftover(t *testing.T) {
	s, f, senders := deadlineSetup(t, PolicyD3, 3)
	done := 0
	senders[0].Send(s, &transport.Message{ID: 1, Dst: 2, Class: qos.Low, Bytes: 256 << 10,
		OnComplete: func(*sim.Simulator, *transport.Message) { done++ }})
	s.Run()
	if done != 1 {
		t.Fatalf("deadline-less flow starved (terminated %d)", f.Terminated)
	}
}

// Atomic two-link grants: concurrent cross traffic (0→2 and 1→0) must
// both progress — the regression that starved PDQ when links were
// allocated independently.
func TestCrossTrafficBothProgress(t *testing.T) {
	s, _, senders := deadlineSetup(t, PolicyPDQ, 3)
	done := map[uint64]bool{}
	rec := func(_ *sim.Simulator, m *transport.Message) { done[m.ID] = true }
	senders[0].Send(s, &transport.Message{ID: 1, Dst: 2, Class: qos.High, Bytes: 512 << 10,
		Deadline: sim.Time(5 * sim.Millisecond), OnComplete: rec})
	senders[1].Send(s, &transport.Message{ID: 2, Dst: 0, Class: qos.High, Bytes: 512 << 10,
		Deadline: sim.Time(5 * sim.Millisecond), OnComplete: rec})
	s.Run()
	if !done[1] || !done[2] {
		t.Errorf("cross traffic stalled: %v", done)
	}
}
