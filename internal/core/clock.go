package core

import (
	"math"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"aequitas/internal/sim"
)

// Clock is the controller's time-and-randomness source. Decoupling the
// algorithm from the simulator is what lets the same Controller serve
// live traffic: in a simulation the clock is the event loop's virtual
// time and seeded RNG, in a real process it is the monotonic wall clock
// and a scalable uniform source.
//
// Now supplies timestamps for the additive-increase window; Float64
// supplies the uniform draw behind each probabilistic admit (Algorithm 1
// line 7). Implementations used with a concurrent Controller must be
// safe for concurrent use.
type Clock interface {
	Now() sim.Time
	Float64() float64
}

// SimClock adapts a discrete-event simulator as a Clock: virtual time
// and the simulator's deterministic RNG stream. It is single-threaded by
// construction, like the simulator itself, and draws exactly one RNG
// value per Float64 call so the sim's draw sequence is byte-identical to
// the pre-Clock controller.
type SimClock struct {
	S *sim.Simulator
}

// Now implements Clock.
func (c SimClock) Now() sim.Time { return c.S.Now() }

// Float64 implements Clock.
func (c SimClock) Float64() float64 { return c.S.Rand().Float64() }

// WallClock is the serving-mode Clock: monotonic wall time relative to
// the clock's creation, and math/rand/v2's lock-free per-thread uniform
// source. Both methods are safe for concurrent use and allocation-free,
// so the admit fast path scales across cores.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a WallClock whose zero time is now.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock. time.Since reads the monotonic clock, so
// admission windows are immune to wall-time steps (NTP, manual resets).
func (w *WallClock) Now() sim.Time { return sim.FromStd(time.Since(w.epoch)) }

// Float64 implements Clock via the runtime's per-thread random source:
// no lock, no allocation, safe under arbitrary concurrency.
func (w *WallClock) Float64() float64 { return rand.Float64() }

// ManualClock is a hand-advanced Clock for tests: a settable time and a
// settable draw value. It is safe for concurrent use.
type ManualClock struct {
	t    atomic.Int64
	draw atomic.Uint64
}

// SetNow moves the clock to t.
func (m *ManualClock) SetNow(t sim.Time) { m.t.Store(int64(t)) }

// SetDraw fixes the value every Float64 call returns.
func (m *ManualClock) SetDraw(d float64) { m.draw.Store(math.Float64bits(d)) }

// Now implements Clock.
func (m *ManualClock) Now() sim.Time { return sim.Time(m.t.Load()) }

// Float64 implements Clock.
func (m *ManualClock) Float64() float64 { return math.Float64frombits(m.draw.Load()) }
