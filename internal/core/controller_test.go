package core

import (
	"math"
	"testing"
	"testing/quick"

	"aequitas/internal/qos"
	"aequitas/internal/sim"
)

func target() sim.Duration { return 2 * sim.Microsecond }

// newCtlSim binds a default controller to the simulator's clock and RNG so
// tests drive virtual time explicitly and draws are deterministic per seed.
func newCtlSim(t *testing.T, s *sim.Simulator) *Controller {
	t.Helper()
	return newCtlCfg(t, Defaults3(target(), 2*target()), s)
}

func newCtlCfg(t *testing.T, cfg Config, s *sim.Simulator) *Controller {
	t.Helper()
	c, err := NewWithClock(cfg, SimClock{S: s})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := Defaults3(target(), 2*target()).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Config{
		{Levels: 1},
		{Levels: 3, LatencyTargets: []sim.Duration{1, 1}, TargetPercentiles: []float64{99, 99, 0}},
		{Levels: 3, LatencyTargets: []sim.Duration{1, 1, 0}, TargetPercentiles: []float64{99, 99}},
		{Levels: 3, LatencyTargets: []sim.Duration{0, 1, 0}, TargetPercentiles: []float64{99, 99, 0}, Alpha: 0.01, Beta: 0.01},
		{Levels: 3, LatencyTargets: []sim.Duration{1, 1, 0}, TargetPercentiles: []float64{100, 99, 0}, Alpha: 0.01, Beta: 0.01},
		func() Config { c := Defaults3(target(), 2*target()); c.Alpha = 0; return c }(),
		func() Config { c := Defaults3(target(), 2*target()); c.Beta = 2; return c }(),
		func() Config { c := Defaults3(target(), 2*target()); c.Floor = 1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestIncrementWindow(t *testing.T) {
	cfg := Defaults3(15*sim.Microsecond, 25*sim.Microsecond)
	// 99.9th percentile: window = target × 1000.
	if got, want := cfg.incrementWindow(0), 15*sim.Millisecond; got != want {
		t.Errorf("window = %v, want %v", got, want)
	}
	cfg.TargetPercentiles[0] = 99
	if got, want := cfg.incrementWindow(0), 1500*sim.Microsecond; got != want {
		t.Errorf("99th-p window = %v, want %v", got, want)
	}
	// A stricter (higher) percentile must produce a longer window: the
	// algorithm is more conservative for higher tails (§5.1).
	cfg99 := cfg.incrementWindow(0)
	cfg.TargetPercentiles[0] = 99.9
	if cfg.incrementWindow(0) <= cfg99 {
		t.Error("99.9th-p window not longer than 99th-p window")
	}
}

func TestInitialAdmitProbabilityIsOne(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	if got := ct.AdmitProbability(5, qos.High); got != 1 {
		t.Errorf("initial p_admit = %v, want 1", got)
	}
	// The lowest class always reports 1.
	if got := ct.AdmitProbability(5, qos.Low); got != 1 {
		t.Errorf("lowest class p_admit = %v", got)
	}
}

func TestAdmitAtFullProbability(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	for i := 0; i < 100; i++ {
		d := ct.Admit(1, qos.High, 1)
		if d.Downgraded || d.Drop || d.Class != qos.High {
			t.Fatalf("RPC downgraded at p_admit = 1: %+v", d)
		}
	}
}

func TestLowestClassAlwaysAdmitted(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	for i := 0; i < 100; i++ {
		d := ct.Admit(1, qos.Low, 1)
		if d.Downgraded || d.Drop || d.Class != qos.Low {
			t.Fatalf("lowest-class RPC not admitted: %+v", d)
		}
	}
}

func TestMultiplicativeDecreaseOnMiss(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	// One SLO miss of a 10-MTU RPC decreases p by β×10.
	ct.Observe(1, qos.High, 100*target(), 10)
	want := 1 - 0.01*10
	if got := ct.AdmitProbability(1, qos.High); math.Abs(got-want) > 1e-12 {
		t.Errorf("p_admit = %v, want %v", got, want)
	}
	if ct.Stats.SLOMisses != 1 {
		t.Errorf("SLOMisses = %d", ct.Stats.SLOMisses)
	}
}

func TestSizeMissEquivalence(t *testing.T) {
	// An SLO miss on a 10-MTU RPC must decrease p_admit exactly as much
	// as ten misses on 1-MTU RPCs (§5.1).
	s := sim.New(1)
	a, b := newCtlSim(t, s), newCtlSim(t, s)
	a.Observe(1, qos.High, 100*target(), 10)
	for i := 0; i < 10; i++ {
		b.Observe(1, qos.High, 100*target(), 1)
	}
	if pa, pb := a.AdmitProbability(1, qos.High), b.AdmitProbability(1, qos.High); math.Abs(pa-pb) > 1e-12 {
		t.Errorf("10-MTU miss %v != 10×1-MTU miss %v", pa, pb)
	}
}

func TestNormalizedTargetScalesWithSize(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	// 10 MTUs with latency 15×target: per-MTU latency 1.5×target → miss.
	ct.Observe(1, qos.High, 15*target(), 10)
	if ct.Stats.SLOMisses != 1 {
		t.Error("per-MTU normalisation failed: large RPC over per-MTU target not a miss")
	}
	// 10 MTUs with latency 5×target: per-MTU latency 0.5×target → met.
	ct.Observe(1, qos.High, 5*target(), 10)
	if ct.Stats.SLOMet != 1 {
		t.Error("per-MTU normalisation failed: large RPC under scaled target flagged as miss")
	}
}

func TestAdditiveIncreaseOncePerWindow(t *testing.T) {
	s := sim.New(1)
	ct := newCtlSim(t, s)
	// Drive p down first.
	for i := 0; i < 30; i++ {
		ct.Observe(1, qos.High, 100*target(), 1)
	}
	p0 := ct.AdmitProbability(1, qos.High)
	// Many compliant completions at the same instant: only one increase.
	for i := 0; i < 50; i++ {
		ct.Observe(1, qos.High, target()/2, 1)
	}
	p1 := ct.AdmitProbability(1, qos.High)
	if math.Abs(p1-(p0+0.01)) > 1e-12 {
		t.Errorf("p after burst of good completions = %v, want single increment %v", p1, p0+0.01)
	}
	// After the window passes, another increase is allowed.
	window := ct.Config().incrementWindow(0)
	s.AtFunc(s.Now()+window+1, func(*sim.Simulator) {
		ct.Observe(1, qos.High, target()/2, 1)
	})
	s.Run()
	if got := ct.AdmitProbability(1, qos.High); math.Abs(got-(p1+0.01)) > 1e-12 {
		t.Errorf("p after window = %v, want %v", got, p1+0.01)
	}
}

func TestNoIncrementWindowAblation(t *testing.T) {
	cfg := Defaults3(target(), 2*target())
	cfg.NoIncrementWindow = true
	ct := newCtlCfg(t, cfg, sim.New(1))
	for i := 0; i < 30; i++ {
		ct.Observe(1, qos.High, 100*target(), 1)
	}
	p0 := ct.AdmitProbability(1, qos.High)
	for i := 0; i < 10; i++ {
		ct.Observe(1, qos.High, target()/2, 1)
	}
	if got := ct.AdmitProbability(1, qos.High); math.Abs(got-(p0+0.1)) > 1e-9 {
		t.Errorf("ablation: p = %v, want %v (increase every completion)", got, p0+0.1)
	}
}

func TestNoSizeScaledMDAblation(t *testing.T) {
	cfg := Defaults3(target(), 2*target())
	cfg.NoSizeScaledMD = true
	ct := newCtlCfg(t, cfg, sim.New(1))
	ct.Observe(1, qos.High, 100*target(), 10)
	if got := ct.AdmitProbability(1, qos.High); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("ablation: p = %v, want 0.99 (constant β)", got)
	}
}

func TestFloorPreventsStarvation(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	for i := 0; i < 10000; i++ {
		ct.Observe(1, qos.High, 100*target(), 64)
	}
	if got := ct.AdmitProbability(1, qos.High); got != ct.Config().Floor {
		t.Errorf("p_admit = %v, want floor %v", got, ct.Config().Floor)
	}
}

func TestDowngradeGoesToLowestClass(t *testing.T) {
	cfg := Defaults3(target(), 2*target())
	cfg.Floor = 0.0
	ct := newCtlCfg(t, cfg, sim.New(1))
	for i := 0; i < 1000; i++ {
		ct.Observe(1, qos.Medium, 100*target(), 10)
	}
	downgrades := 0
	for i := 0; i < 100; i++ {
		d := ct.Admit(1, qos.Medium, 1)
		if d.Downgraded {
			downgrades++
			if d.Class != qos.Low {
				t.Fatalf("downgraded to %v, want QoSl", d.Class)
			}
		}
	}
	if downgrades == 0 {
		t.Error("no downgrades at p_admit = 0")
	}
}

func TestDropAblation(t *testing.T) {
	cfg := Defaults3(target(), 2*target())
	cfg.DropInsteadOfDowngrade = true
	cfg.Floor = 0
	ct := newCtlCfg(t, cfg, sim.New(1))
	for i := 0; i < 1000; i++ {
		ct.Observe(1, qos.High, 100*target(), 10)
	}
	drops := 0
	for i := 0; i < 100; i++ {
		if d := ct.Admit(1, qos.High, 1); d.Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("drop ablation never dropped")
	}
	if ct.Stats.Dropped == 0 {
		t.Error("drop counter not incremented")
	}
}

func TestPerDestinationIndependence(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	ct.Observe(1, qos.High, 100*target(), 10)
	if got := ct.AdmitProbability(2, qos.High); got != 1 {
		t.Errorf("dst 2 affected by dst 1 misses: p = %v", got)
	}
	if got := ct.AdmitProbability(1, qos.High); got == 1 {
		t.Error("dst 1 not affected by its own misses")
	}
}

func TestPerClassIndependence(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	ct.Observe(1, qos.High, 100*target(), 10)
	if got := ct.AdmitProbability(1, qos.Medium); got != 1 {
		t.Errorf("QoSm affected by QoSh misses: p = %v", got)
	}
}

func TestScavengerObservationsIgnored(t *testing.T) {
	ct := newCtlSim(t, sim.New(1))
	ct.Observe(1, qos.Low, 1000*target(), 10)
	if ct.Stats.SLOMisses != 0 {
		t.Error("scavenger-class latency counted as SLO miss")
	}
}

// Property: p_admit always stays within [floor, 1] under arbitrary
// observation sequences.
func TestPAdmitBoundsProperty(t *testing.T) {
	f := func(events []uint16) bool {
		s := sim.New(3)
		ct, err := NewWithClock(Defaults3(target(), 2*target()), SimClock{S: s})
		if err != nil {
			panic(err)
		}
		now := sim.Time(0)
		for _, e := range events {
			now += sim.Time(e) * sim.Microsecond
			s.AtFunc(now, func(*sim.Simulator) {
				lat := sim.Duration(e%4000) * sim.Nanosecond
				size := int64(e%20) + 1
				ct.Observe(int(e%3), qos.Class(e%2), lat, size)
			})
		}
		s.Run()
		for dst := 0; dst < 3; dst++ {
			for _, cl := range []qos.Class{qos.High, qos.Medium} {
				p := ct.AdmitProbability(dst, cl)
				if p < ct.Config().Floor-1e-12 || p > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the admitted fraction over many trials tracks p_admit.
func TestAdmitFractionTracksProbability(t *testing.T) {
	ct := newCtlSim(t, sim.New(7))
	// Drive p to ~0.6.
	for i := 0; i < 40; i++ {
		ct.Observe(1, qos.High, 100*target(), 1)
	}
	p := ct.AdmitProbability(1, qos.High)
	if math.Abs(p-0.6) > 1e-9 {
		t.Fatalf("setup failed: p = %v", p)
	}
	admitted := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if d := ct.Admit(1, qos.High, 1); !d.Downgraded {
			admitted++
		}
	}
	frac := float64(admitted) / trials
	if math.Abs(frac-p) > 0.02 {
		t.Errorf("admitted fraction %v, want ~%v", frac, p)
	}
}
