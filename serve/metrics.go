package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aequitas"
	"aequitas/internal/obs"
	"aequitas/internal/stats"
)

// maxClasses bounds the per-class metric arrays; classes beyond it fold
// into the last slot (the paper uses 2-4 levels).
const maxClasses = 8

// metrics aggregates serving-side observability: decision counters
// (atomic, updated on the admit path), per-class latency histograms
// (mutex-guarded, updated on completion), and the exporter the HTTP
// handler publishes through.
type metrics struct {
	start      time.Time
	admitted   atomic.Int64
	downgraded atomic.Int64
	rejected   atomic.Int64
	done       atomic.Int64

	mu  sync.Mutex
	lat [maxClasses]*stats.Hist // completion latency in µs, per run class

	exp *obs.Exporter
}

func (m *metrics) init() {
	m.start = time.Now()
	m.exp = obs.NewExporter()
}

func classSlot(c aequitas.Class) int {
	if c < 0 {
		return 0
	}
	if int(c) >= maxClasses {
		return maxClasses - 1
	}
	return int(c)
}

func (m *metrics) decided(v Verdict, reject bool) {
	if !v.Downgraded {
		m.admitted.Add(1)
		return
	}
	if reject {
		m.rejected.Add(1)
		return
	}
	m.downgraded.Add(1)
}

func (m *metrics) completed(class aequitas.Class, elapsed time.Duration) {
	m.done.Add(1)
	slot := classSlot(class)
	m.mu.Lock()
	h := m.lat[slot]
	if h == nil {
		h = stats.NewHist()
		m.lat[slot] = h
	}
	h.Record(float64(elapsed) / float64(time.Microsecond))
	m.mu.Unlock()
}

// snapshot freezes the serving state into an exportable document:
// middleware counters, the controller's cumulative Algorithm 1 counters,
// live per-(peer, class) admit probabilities as gauges, and per-class
// latency histograms.
func (m *metrics) snapshot(ctl *aequitas.AdmissionController) *obs.Snapshot {
	s := &obs.Snapshot{
		Schema:   obs.SnapshotSchema,
		Label:    "serve",
		SimTimeS: time.Since(m.start).Seconds(),
	}
	cs := ctl.Stats()
	s.Counters = []obs.NamedValue{
		{Name: "serve_admitted", Value: float64(m.admitted.Load())},
		{Name: "serve_downgraded", Value: float64(m.downgraded.Load())},
		{Name: "serve_rejected", Value: float64(m.rejected.Load())},
		{Name: "serve_completed", Value: float64(m.done.Load())},
		{Name: "ctl_admitted", Value: float64(cs.Admitted)},
		{Name: "ctl_downgraded", Value: float64(cs.Downgraded)},
		{Name: "ctl_dropped", Value: float64(cs.Dropped)},
		{Name: "ctl_slo_misses", Value: float64(cs.SLOMisses)},
		{Name: "ctl_slo_met", Value: float64(cs.SLOMet)},
	}
	ctl.ForEachProbability(func(peer string, class aequitas.Class, p float64) {
		s.Gauges = append(s.Gauges, obs.NamedValue{
			Name:  fmt.Sprintf("padmit.%s.q%d", peer, int(class)),
			Value: p,
		})
	})
	m.mu.Lock()
	for slot, h := range m.lat {
		if h == nil {
			continue
		}
		s.Hists = append(s.Hists,
			obs.SnapHist("serve_latency_us", "class", aequitas.Class(slot).String(), h))
	}
	m.mu.Unlock()
	return s
}

// Handler serves this admission layer's observability endpoints:
// Prometheus text on /metrics, the JSON document on /snapshot, pprof under
// /debug/pprof/, and the flight recorder on /debug/flight (trigger status
// as JSON; the ring as an NDJSON dump with ?format=ndjson). A fresh
// snapshot is published per scrape, so readers always see current state
// without the serving path paying for publication.
func (a *Admission) Handler() http.Handler {
	inner := a.m.exp.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/debug/flight" {
			a.serveFlight(w, r)
			return
		}
		a.m.exp.Publish(a.m.snapshot(a.ctl))
		inner.ServeHTTP(w, r)
	})
}

// Snapshot returns a freshly built observability document — the same view
// /snapshot serves.
func (a *Admission) Snapshot() *obs.Snapshot { return a.m.snapshot(a.ctl) }
