package aequitas

import (
	"math"
	"strings"
	"testing"
	"time"
)

func testClock() (func() time.Time, func(time.Duration)) {
	now := time.Unix(0, 0)
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func newPublicController(t *testing.T) (*AdmissionController, func(time.Duration)) {
	t.Helper()
	clock, advance := testClock()
	c, err := NewController(ControllerConfig{
		SLOs: []SLO{
			{Target: 15 * time.Microsecond, ReferenceBytes: 32 << 10},
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10},
		},
		Now:  clock,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, advance
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(ControllerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewController(ControllerConfig{SLOs: []SLO{{Target: -time.Second}}}); err == nil {
		t.Error("negative target accepted")
	}
}

func TestControllerAdmitsInitially(t *testing.T) {
	c, _ := newPublicController(t)
	for i := 0; i < 50; i++ {
		d := c.Admit("server-1", High, 32<<10)
		if d.Downgraded || d.Class != High {
			t.Fatalf("initial admit failed: %+v", d)
		}
	}
	if p := c.AdmitProbability("server-1", High); p != 1 {
		t.Errorf("initial p = %v", p)
	}
}

func TestControllerDowngradesAfterMisses(t *testing.T) {
	c, advance := newPublicController(t)
	for i := 0; i < 50; i++ {
		c.Observe("server-1", High, 10*time.Millisecond, 32<<10)
		advance(time.Millisecond)
	}
	if p := c.AdmitProbability("server-1", High); p > 0.2 {
		t.Fatalf("p after misses = %v", p)
	}
	downgrades := 0
	for i := 0; i < 200; i++ {
		if d := c.Admit("server-1", High, 32<<10); d.Downgraded {
			downgrades++
			if d.Class != Low {
				t.Fatalf("downgraded to %v", d.Class)
			}
		}
	}
	if downgrades < 100 {
		t.Errorf("only %d/200 downgrades at low p_admit", downgrades)
	}
	// Another peer is unaffected.
	if p := c.AdmitProbability("server-2", High); p != 1 {
		t.Errorf("peer isolation broken: p = %v", p)
	}
}

func TestControllerRecovers(t *testing.T) {
	c, advance := newPublicController(t)
	for i := 0; i < 50; i++ {
		c.Observe("s", High, 10*time.Millisecond, 32<<10)
	}
	low := c.AdmitProbability("s", High)
	// Compliant completions spaced beyond the increment window raise p.
	for i := 0; i < 20; i++ {
		advance(20 * time.Millisecond)
		c.Observe("s", High, time.Microsecond, 32<<10)
	}
	if got := c.AdmitProbability("s", High); got <= low {
		t.Errorf("no recovery: %v -> %v", low, got)
	}
}

func TestControllerPerMTUSLO(t *testing.T) {
	clock, _ := testClock()
	c, err := NewController(ControllerConfig{
		SLOs: []SLO{{Target: time.Microsecond}}, // per-MTU directly
		Now:  clock,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 10-MTU RPC at 5 µs is compliant (0.5 µs/MTU)...
	c.Observe("s", High, 5*time.Microsecond, 10*1436)
	if p := c.AdmitProbability("s", High); p != 1 {
		t.Errorf("compliant observation decreased p to %v", p)
	}
	// ...but at 20 µs it misses (2 µs/MTU).
	c.Observe("s", High, 20*time.Microsecond, 10*1436)
	if p := c.AdmitProbability("s", High); p >= 1 {
		t.Error("miss did not decrease p")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{T: []float64{0, 1, 2, 3}, V: []float64{0, 10, 20, 20}}
	if got := s.Final(-1); got != 20 {
		t.Errorf("Final = %v", got)
	}
	if got := (Series{}).Final(-1); got != -1 {
		t.Errorf("empty Final = %v", got)
	}
	if got := s.MeanAfter(2); got != 20 {
		t.Errorf("MeanAfter = %v", got)
	}
	if got := s.MeanAfter(99); !math.IsNaN(got) {
		t.Errorf("MeanAfter beyond range = %v, want NaN", got)
	}
	if _, ok := s.MeanAfterOK(99); ok {
		t.Error("MeanAfterOK beyond range reported ok")
	}
	if got, ok := s.MeanAfterOK(2); !ok || got != 20 {
		t.Errorf("MeanAfterOK = %v, %v", got, ok)
	}
	if got := s.SettlingTime(0.5); got != 2 {
		t.Errorf("SettlingTime = %v", got)
	}
}

func TestLatencySummaryString(t *testing.T) {
	l := LatencySummary{N: 10, MeanUS: 1.5, P50US: 1, P90US: 2, P99US: 3, P999US: 4, MaxUS: 5}
	s := l.String()
	if s == "" {
		t.Error("empty String")
	}
	// Every field must appear — P90US was historically omitted.
	for _, want := range []string{"n=10", "mean=1.5us", "p50=1.0us", "p90=2.0us", "p99=3.0us", "p99.9=4.0us", "max=5.0us"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSLOPerMTUConversion(t *testing.T) {
	s := SLO{Target: 22 * time.Microsecond, ReferenceBytes: 22 * 1436}
	perMTU := s.perMTU()
	if got := float64(perMTU) / 1e6; math.Abs(got-1) > 1e-9 { // 1 µs in ps
		t.Errorf("perMTU = %v ps, want 1us", perMTU)
	}
	direct := SLO{Target: time.Microsecond}
	if direct.perMTU() != s.perMTU() {
		t.Error("ReferenceBytes normalisation inconsistent")
	}
}
