package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"aequitas"
	"aequitas/internal/stats"
)

func init() {
	register("loadstep", "convergence: p_admit re-converges after a 2x load step", figLoadStep)
}

// figLoadStep doubles the offered load mid-run and tracks the admit
// probability per class: Aequitas reacts by cutting p_admit for the
// high classes and settles on a new, lower operating point — the
// load-shape counterpart of the Fig 15 mix convergence.
func figLoadStep(o options) error {
	stepAt := o.dur
	horizon := 2 * o.dur
	cfg := aequitas.SimConfig{
		System: aequitas.SystemAequitas, Hosts: o.nodes, Seed: o.seed,
		Duration: horizon, Warmup: o.dur / 4,
		QoSWeights: []float64{8, 4, 1},
		SLOs: []aequitas.SLO{
			{Target: 25 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
			{Target: 50 * time.Microsecond, ReferenceBytes: 32 << 10, Percentile: 99.9},
		},
		Traffic: []aequitas.HostTraffic{{
			AvgLoad: 0.45, BurstLoad: 0.8,
			Shape: aequitas.StepLoad(stepAt, 2),
			Classes: []aequitas.TrafficClass{
				{Priority: aequitas.PC, Share: 0.5, FixedBytes: 32 << 10},
				{Priority: aequitas.NC, Share: 0.3, FixedBytes: 32 << 10},
				{Priority: aequitas.BE, Share: 0.2, FixedBytes: 32 << 10},
			},
		}},
		Probes: []aequitas.Probe{
			{Src: 0, Dst: 1, Class: aequitas.High},
			{Src: 0, Dst: 1, Class: aequitas.Medium},
		},
		SampleEvery: horizon / 400,
	}
	res, err := aequitas.Run(cfg)
	if err != nil {
		return err
	}
	high, med := res.Probes[0].AdmitProbability, res.Probes[1].AdmitProbability

	// Time-bucketed p_admit around the step.
	const buckets = 16
	tb := stats.NewTable("t(ms)", "p_admit QoSh", "p_admit QoSm")
	w := horizon.Seconds() / buckets
	for i := 0; i < buckets; i++ {
		t0, t1 := float64(i)*w, float64(i+1)*w
		h := high.MeanBetween(t0, t1)
		if math.IsNaN(h) {
			continue // before warmup: probes not yet sampled
		}
		tb.AddRow(fmt.Sprintf("%5.1f%s", 1e3*t0, stepMark(t0, t1, stepAt.Seconds())),
			h, med.MeanBetween(t0, t1))
	}
	tb.Write(os.Stdout)

	pre := high.MeanBetween(0.5*stepAt.Seconds(), stepAt.Seconds())
	post := high.MeanBetween(stepAt.Seconds(), 1.5*stepAt.Seconds())
	final := high.MeanBetween(1.75*stepAt.Seconds(), horizon.Seconds())
	fmt.Printf("QoSh p_admit: %.2f before the step, %.2f during re-convergence, %.2f settled\n",
		pre, post, final)
	settle := high.SettlingTime(0.1)
	if !math.IsNaN(settle) && settle > stepAt.Seconds() {
		fmt.Printf("re-stabilised within 10%% of the final value %.1fms after the step\n",
			1e3*(settle-stepAt.Seconds()))
	}
	fmt.Println("doubling offered load halves the admissible QoSh share; the controller")
	fmt.Println("finds the new operating point without restarting (load-shape engine)")
	return nil
}

// stepMark annotates the bucket containing the load step.
func stepMark(t0, t1, step float64) string {
	if t0 <= step && step < t1 {
		return " <-step"
	}
	return ""
}
