package aequitas

import (
	"fmt"
	"sort"

	"aequitas/internal/obs"
	"aequitas/internal/sim"
)

// snapshot assembles the live-export view of the run at now: lifecycle
// and robustness counters, the metrics registry's latest gauge row,
// per-probe admit probabilities, the overall goodput fraction, and the
// cumulative per-class RNL histograms. Runs on the simulator thread; the
// returned Snapshot is freshly allocated and never mutated after
// Publish, so HTTP readers need no further coordination.
func (st *runState) snapshot(now sim.Time, final bool) *obs.Snapshot {
	col := st.col
	s := &obs.Snapshot{
		Schema:   obs.SnapshotSchema,
		Label:    st.cfg.Obs.ExportLabel,
		SimTimeS: now.Seconds(),
		Final:    final,
	}
	if s.Label == "" {
		s.Label = st.cfg.System.String()
	}

	counter := func(name string, v int64) {
		s.Counters = append(s.Counters, obs.NamedValue{Name: name, Value: float64(v)})
	}
	counter("rpcs_issued_total", col.issued)
	counter("rpcs_completed_total", col.completed)
	counter("rpcs_downgraded_total", col.downgraded)
	counter("rpcs_dropped_total", col.dropped)
	counter("completed_payload_bytes_total", col.completedPayloadBytes)
	counter("faults_applied_total", int64(len(col.faultMarks)))
	var timedOut, retried, hedged, failed int64
	for _, stack := range col.stacks {
		timedOut += stack.Stats.TimedOut
		retried += stack.Stats.Retried
		hedged += stack.Stats.Hedged
		failed += stack.Stats.Failed
	}
	counter("rpcs_timed_out_total", timedOut)
	counter("rpcs_retried_total", retried)
	counter("rpcs_hedged_total", hedged)
	counter("rpcs_failed_total", failed)

	// Goodput so far: completed payload bytes over offered bytes (whole
	// run, not warmup-gated — this is a live progress gauge, not the
	// measurement-window result).
	var offered int64
	for _, g := range col.gens {
		offered += g.Offered.Total()
	}
	if offered > 0 {
		s.Gauges = append(s.Gauges, obs.NamedValue{
			Name:  "goodput.fraction",
			Value: float64(col.completedPayloadBytes) / float64(offered),
		})
	}
	for _, ps := range col.probes {
		p := 1.0
		if ctl := st.controllers[ps.p.Src]; ctl != nil {
			p = ctl.AdmitProbability(ps.p.Dst, ps.p.Class)
		}
		s.Gauges = append(s.Gauges, obs.NamedValue{
			Name:  probeGaugeName(ps.p),
			Value: p,
		})
	}
	st.registry.LatestGauges(func(name string, v float64) {
		s.Gauges = append(s.Gauges, obs.NamedValue{Name: name, Value: v})
	})

	classes := make([]Class, 0, len(col.expRNL))
	for cl := range col.expRNL {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, cl := range classes {
		s.Hists = append(s.Hists, obs.SnapHist("rnl_us", "class", cl.String(), col.expRNL[cl]))
	}
	return s
}

// probeGaugeName names a probe's admit-probability gauge in the dotted
// registry convention.
func probeGaugeName(p Probe) string {
	return fmt.Sprintf("p_admit.s%d.d%d.q%d", p.Src, p.Dst, int(p.Class))
}
